# Empty compiler generated dependencies file for impacc.
# This may be replaced when dependencies are built.
