file(REMOVE_RECURSE
  "libimpacc.a"
)
