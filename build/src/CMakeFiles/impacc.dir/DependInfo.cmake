
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acc/api.cpp" "src/CMakeFiles/impacc.dir/acc/api.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/acc/api.cpp.o.d"
  "/root/repo/src/acc/dataenv.cpp" "src/CMakeFiles/impacc.dir/acc/dataenv.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/acc/dataenv.cpp.o.d"
  "/root/repo/src/acc/present_table.cpp" "src/CMakeFiles/impacc.dir/acc/present_table.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/acc/present_table.cpp.o.d"
  "/root/repo/src/apps/dgemm.cpp" "src/CMakeFiles/impacc.dir/apps/dgemm.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/apps/dgemm.cpp.o.d"
  "/root/repo/src/apps/ep.cpp" "src/CMakeFiles/impacc.dir/apps/ep.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/apps/ep.cpp.o.d"
  "/root/repo/src/apps/jacobi.cpp" "src/CMakeFiles/impacc.dir/apps/jacobi.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/apps/jacobi.cpp.o.d"
  "/root/repo/src/apps/lulesh/driver.cpp" "src/CMakeFiles/impacc.dir/apps/lulesh/driver.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/apps/lulesh/driver.cpp.o.d"
  "/root/repo/src/apps/lulesh/hydro.cpp" "src/CMakeFiles/impacc.dir/apps/lulesh/hydro.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/apps/lulesh/hydro.cpp.o.d"
  "/root/repo/src/apps/lulesh/mesh.cpp" "src/CMakeFiles/impacc.dir/apps/lulesh/mesh.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/apps/lulesh/mesh.cpp.o.d"
  "/root/repo/src/apps/stencil2d.cpp" "src/CMakeFiles/impacc.dir/apps/stencil2d.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/apps/stencil2d.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/impacc.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/common/log.cpp.o.d"
  "/root/repo/src/common/nas_rng.cpp" "src/CMakeFiles/impacc.dir/common/nas_rng.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/common/nas_rng.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/impacc.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/config.cpp.o.d"
  "/root/repo/src/core/directives.cpp" "src/CMakeFiles/impacc.dir/core/directives.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/directives.cpp.o.d"
  "/root/repo/src/core/handler.cpp" "src/CMakeFiles/impacc.dir/core/handler.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/handler.cpp.o.d"
  "/root/repo/src/core/heap.cpp" "src/CMakeFiles/impacc.dir/core/heap.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/heap.cpp.o.d"
  "/root/repo/src/core/launch.cpp" "src/CMakeFiles/impacc.dir/core/launch.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/launch.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/CMakeFiles/impacc.dir/core/mapping.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/mapping.cpp.o.d"
  "/root/repo/src/core/pinned_pool.cpp" "src/CMakeFiles/impacc.dir/core/pinned_pool.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/pinned_pool.cpp.o.d"
  "/root/repo/src/core/pinning.cpp" "src/CMakeFiles/impacc.dir/core/pinning.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/pinning.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/CMakeFiles/impacc.dir/core/runtime.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/runtime.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/CMakeFiles/impacc.dir/core/task.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/task.cpp.o.d"
  "/root/repo/src/core/uvas.cpp" "src/CMakeFiles/impacc.dir/core/uvas.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/core/uvas.cpp.o.d"
  "/root/repo/src/dev/copyengine.cpp" "src/CMakeFiles/impacc.dir/dev/copyengine.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/dev/copyengine.cpp.o.d"
  "/root/repo/src/dev/device.cpp" "src/CMakeFiles/impacc.dir/dev/device.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/dev/device.cpp.o.d"
  "/root/repo/src/dev/memarena.cpp" "src/CMakeFiles/impacc.dir/dev/memarena.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/dev/memarena.cpp.o.d"
  "/root/repo/src/dev/stream.cpp" "src/CMakeFiles/impacc.dir/dev/stream.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/dev/stream.cpp.o.d"
  "/root/repo/src/mpi/cart.cpp" "src/CMakeFiles/impacc.dir/mpi/cart.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/mpi/cart.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/impacc.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/impacc.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/CMakeFiles/impacc.dir/mpi/datatype.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/mpi/datatype.cpp.o.d"
  "/root/repo/src/mpi/matcher.cpp" "src/CMakeFiles/impacc.dir/mpi/matcher.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/mpi/matcher.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/CMakeFiles/impacc.dir/mpi/p2p.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/mpi/p2p.cpp.o.d"
  "/root/repo/src/sim/costmodel.cpp" "src/CMakeFiles/impacc.dir/sim/costmodel.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/sim/costmodel.cpp.o.d"
  "/root/repo/src/sim/netmodel.cpp" "src/CMakeFiles/impacc.dir/sim/netmodel.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/sim/netmodel.cpp.o.d"
  "/root/repo/src/sim/systems.cpp" "src/CMakeFiles/impacc.dir/sim/systems.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/sim/systems.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/impacc.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/sim/topology.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/impacc.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/sim/trace.cpp.o.d"
  "/root/repo/src/trans/codegen.cpp" "src/CMakeFiles/impacc.dir/trans/codegen.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/trans/codegen.cpp.o.d"
  "/root/repo/src/trans/lexer.cpp" "src/CMakeFiles/impacc.dir/trans/lexer.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/trans/lexer.cpp.o.d"
  "/root/repo/src/trans/pragma_parser.cpp" "src/CMakeFiles/impacc.dir/trans/pragma_parser.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/trans/pragma_parser.cpp.o.d"
  "/root/repo/src/trans/translator.cpp" "src/CMakeFiles/impacc.dir/trans/translator.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/trans/translator.cpp.o.d"
  "/root/repo/src/ult/fiber.cpp" "src/CMakeFiles/impacc.dir/ult/fiber.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/ult/fiber.cpp.o.d"
  "/root/repo/src/ult/scheduler.cpp" "src/CMakeFiles/impacc.dir/ult/scheduler.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/ult/scheduler.cpp.o.d"
  "/root/repo/src/ult/sync.cpp" "src/CMakeFiles/impacc.dir/ult/sync.cpp.o" "gcc" "src/CMakeFiles/impacc.dir/ult/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
