
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acc_test.cpp" "tests/CMakeFiles/impacc_tests.dir/acc_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/acc_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/impacc_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/impacc_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/impacc_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/dev_test.cpp" "tests/CMakeFiles/impacc_tests.dir/dev_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/dev_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/impacc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mpi_test.cpp" "tests/CMakeFiles/impacc_tests.dir/mpi_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/mpi_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/impacc_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/impacc_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/trans_test.cpp" "tests/CMakeFiles/impacc_tests.dir/trans_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/trans_test.cpp.o.d"
  "/root/repo/tests/ult_test.cpp" "tests/CMakeFiles/impacc_tests.dir/ult_test.cpp.o" "gcc" "tests/CMakeFiles/impacc_tests.dir/ult_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impacc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
