file(REMOVE_RECURSE
  "CMakeFiles/impacc_tests.dir/acc_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/acc_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/apps_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/apps_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/common_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/common_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/core_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/core_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/dev_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/dev_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/integration_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/mpi_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/mpi_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/sim_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/sim_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/stress_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/stress_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/trans_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/trans_test.cpp.o.d"
  "CMakeFiles/impacc_tests.dir/ult_test.cpp.o"
  "CMakeFiles/impacc_tests.dir/ult_test.cpp.o.d"
  "impacc_tests"
  "impacc_tests.pdb"
  "impacc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impacc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
