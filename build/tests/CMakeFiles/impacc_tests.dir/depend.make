# Empty dependencies file for impacc_tests.
# This may be replaced when dependencies are built.
