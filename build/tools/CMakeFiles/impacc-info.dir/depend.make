# Empty dependencies file for impacc-info.
# This may be replaced when dependencies are built.
