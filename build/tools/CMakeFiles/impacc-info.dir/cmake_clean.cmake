file(REMOVE_RECURSE
  "CMakeFiles/impacc-info.dir/impacc_info.cpp.o"
  "CMakeFiles/impacc-info.dir/impacc_info.cpp.o.d"
  "impacc-info"
  "impacc-info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impacc-info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
