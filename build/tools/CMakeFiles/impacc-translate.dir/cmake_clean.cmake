file(REMOVE_RECURSE
  "CMakeFiles/impacc-translate.dir/impacc_translate.cpp.o"
  "CMakeFiles/impacc-translate.dir/impacc_translate.cpp.o.d"
  "impacc-translate"
  "impacc-translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impacc-translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
