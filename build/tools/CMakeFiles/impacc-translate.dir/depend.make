# Empty dependencies file for impacc-translate.
# This may be replaced when dependencies are built.
