# Empty compiler generated dependencies file for fig12_ep.
# This may be replaced when dependencies are built.
