file(REMOVE_RECURSE
  "CMakeFiles/fig12_ep.dir/fig12_ep.cpp.o"
  "CMakeFiles/fig12_ep.dir/fig12_ep.cpp.o.d"
  "fig12_ep"
  "fig12_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
