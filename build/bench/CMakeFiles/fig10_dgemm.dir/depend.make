# Empty dependencies file for fig10_dgemm.
# This may be replaced when dependencies are built.
