file(REMOVE_RECURSE
  "CMakeFiles/fig10_dgemm.dir/fig10_dgemm.cpp.o"
  "CMakeFiles/fig10_dgemm.dir/fig10_dgemm.cpp.o.d"
  "fig10_dgemm"
  "fig10_dgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
