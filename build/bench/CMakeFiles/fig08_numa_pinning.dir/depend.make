# Empty dependencies file for fig08_numa_pinning.
# This may be replaced when dependencies are built.
