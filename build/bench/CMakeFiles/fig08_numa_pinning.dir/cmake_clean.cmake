file(REMOVE_RECURSE
  "CMakeFiles/fig08_numa_pinning.dir/fig08_numa_pinning.cpp.o"
  "CMakeFiles/fig08_numa_pinning.dir/fig08_numa_pinning.cpp.o.d"
  "fig08_numa_pinning"
  "fig08_numa_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_numa_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
