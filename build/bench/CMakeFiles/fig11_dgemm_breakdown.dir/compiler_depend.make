# Empty compiler generated dependencies file for fig11_dgemm_breakdown.
# This may be replaced when dependencies are built.
