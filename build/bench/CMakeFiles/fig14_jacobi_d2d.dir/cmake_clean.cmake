file(REMOVE_RECURSE
  "CMakeFiles/fig14_jacobi_d2d.dir/fig14_jacobi_d2d.cpp.o"
  "CMakeFiles/fig14_jacobi_d2d.dir/fig14_jacobi_d2d.cpp.o.d"
  "fig14_jacobi_d2d"
  "fig14_jacobi_d2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_jacobi_d2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
