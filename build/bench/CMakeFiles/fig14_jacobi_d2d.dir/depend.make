# Empty dependencies file for fig14_jacobi_d2d.
# This may be replaced when dependencies are built.
