file(REMOVE_RECURSE
  "CMakeFiles/fig15_lulesh.dir/fig15_lulesh.cpp.o"
  "CMakeFiles/fig15_lulesh.dir/fig15_lulesh.cpp.o.d"
  "fig15_lulesh"
  "fig15_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
