# Empty compiler generated dependencies file for fig15_lulesh.
# This may be replaced when dependencies are built.
