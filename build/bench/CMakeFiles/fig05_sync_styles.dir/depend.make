# Empty dependencies file for fig05_sync_styles.
# This may be replaced when dependencies are built.
