file(REMOVE_RECURSE
  "CMakeFiles/fig05_sync_styles.dir/fig05_sync_styles.cpp.o"
  "CMakeFiles/fig05_sync_styles.dir/fig05_sync_styles.cpp.o.d"
  "fig05_sync_styles"
  "fig05_sync_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sync_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
