file(REMOVE_RECURSE
  "CMakeFiles/fig09_p2p.dir/fig09_p2p.cpp.o"
  "CMakeFiles/fig09_p2p.dir/fig09_p2p.cpp.o.d"
  "fig09_p2p"
  "fig09_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
