# Empty compiler generated dependencies file for fig09_p2p.
# This may be replaced when dependencies are built.
