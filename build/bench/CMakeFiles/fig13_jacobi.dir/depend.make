# Empty dependencies file for fig13_jacobi.
# This may be replaced when dependencies are built.
