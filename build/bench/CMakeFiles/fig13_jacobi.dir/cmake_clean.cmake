file(REMOVE_RECURSE
  "CMakeFiles/fig13_jacobi.dir/fig13_jacobi.cpp.o"
  "CMakeFiles/fig13_jacobi.dir/fig13_jacobi.cpp.o.d"
  "fig13_jacobi"
  "fig13_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
