file(REMOVE_RECURSE
  "CMakeFiles/translated_pipeline.dir/translated_pipeline.cpp.o"
  "CMakeFiles/translated_pipeline.dir/translated_pipeline.cpp.o.d"
  "ring_translated.inc"
  "translated_pipeline"
  "translated_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translated_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
