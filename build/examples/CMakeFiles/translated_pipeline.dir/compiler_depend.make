# Empty compiler generated dependencies file for translated_pipeline.
# This may be replaced when dependencies are built.
