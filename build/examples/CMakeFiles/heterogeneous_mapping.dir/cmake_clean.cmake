file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_mapping.dir/heterogeneous_mapping.cpp.o"
  "CMakeFiles/heterogeneous_mapping.dir/heterogeneous_mapping.cpp.o.d"
  "heterogeneous_mapping"
  "heterogeneous_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
