# Empty dependencies file for heterogeneous_mapping.
# This may be replaced when dependencies are built.
