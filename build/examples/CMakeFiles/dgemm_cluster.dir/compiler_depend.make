# Empty compiler generated dependencies file for dgemm_cluster.
# This may be replaced when dependencies are built.
