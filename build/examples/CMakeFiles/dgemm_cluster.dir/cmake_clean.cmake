file(REMOVE_RECURSE
  "CMakeFiles/dgemm_cluster.dir/dgemm_cluster.cpp.o"
  "CMakeFiles/dgemm_cluster.dir/dgemm_cluster.cpp.o.d"
  "dgemm_cluster"
  "dgemm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgemm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
