file(REMOVE_RECURSE
  "CMakeFiles/jacobi_cluster.dir/jacobi_cluster.cpp.o"
  "CMakeFiles/jacobi_cluster.dir/jacobi_cluster.cpp.o.d"
  "jacobi_cluster"
  "jacobi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
