# Empty dependencies file for jacobi_cluster.
# This may be replaced when dependencies are built.
