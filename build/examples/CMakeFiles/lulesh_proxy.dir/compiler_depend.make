# Empty compiler generated dependencies file for lulesh_proxy.
# This may be replaced when dependencies are built.
