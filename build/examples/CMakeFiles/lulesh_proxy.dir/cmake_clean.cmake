file(REMOVE_RECURSE
  "CMakeFiles/lulesh_proxy.dir/lulesh_proxy.cpp.o"
  "CMakeFiles/lulesh_proxy.dir/lulesh_proxy.cpp.o.d"
  "lulesh_proxy"
  "lulesh_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lulesh_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
