// The paper's Figure 4 in runnable form: three ways to overlap a kernel,
// a send, a receive, and another kernel — and what each costs.
//
//  (a) synchronous:  blocking MPI + synchronous kernels (implicit waits)
//  (b) asynchronous: non-blocking MPI + async kernels, but the two
//      streamlines still need acc wait / MPI_Waitall sync points
//  (c) IMPACC unified activity queue: MPI ops enqueued onto the same
//      device queue — no host-side synchronization at all
//
// Run it to see the simulated timelines shrink from (a) to (c),
// reproducing Figure 5's message.
#include <cstdio>
#include <vector>

#include "impacc.h"

namespace {

using namespace impacc;

constexpr long kN = 1 << 18;
constexpr int kRounds = 8;

enum class Style { kSync, kAsync, kUnified };

const char* style_name(Style s) {
  switch (s) {
    case Style::kSync: return "(a) synchronous";
    case Style::kAsync: return "(b) async + sync points";
    case Style::kUnified: return "(c) IMPACC unified queue";
  }
  return "?";
}

sim::Time run_style(Style style) {
  core::LaunchOptions options;
  options.cluster = sim::make_psg();
  options.mode = core::ExecMode::kModelOnly;  // timing demo

  const LaunchResult result = launch(options, [style] {
    auto comm = mpi::world();
    const int rank = mpi::comm_rank(comm);
    if (rank > 1) return;  // a producer/consumer pair
    const int peer = 1 - rank;

    auto* buf0 = static_cast<double*>(node_malloc(kN * 8));
    auto* buf1 = static_cast<double*>(node_malloc(kN * 8));
    acc::copyin(buf0, kN * 8);
    acc::copyin(buf1, kN * 8);
    const sim::WorkEstimate est{10.0 * kN, 16.0 * kN};
    const int n = static_cast<int>(kN);

    for (int round = 0; round < kRounds; ++round) {
      switch (style) {
        case Style::kSync: {
          // Fig. 4 (a): every step blocks the host. (Blocking exchanges
          // are rank-ordered, as correct MPI code must be for rendezvous
          // messages.)
          acc::parallel_loop("produce", kN, {}, est);
          acc::update_self(buf0, kN * 8);
          if (rank == 0) {
            mpi::send(buf0, n, mpi::Datatype::kDouble, peer, 1, comm);
            mpi::recv(buf1, n, mpi::Datatype::kDouble, peer, 1, comm);
          } else {
            mpi::recv(buf1, n, mpi::Datatype::kDouble, peer, 1, comm);
            mpi::send(buf0, n, mpi::Datatype::kDouble, peer, 1, comm);
          }
          acc::update_device(buf1, kN * 8);
          acc::parallel_loop("consume", kN, {}, est);
          break;
        }
        case Style::kAsync: {
          // Fig. 4 (b): async pieces, glued with explicit sync points.
          acc::parallel_loop("produce", kN, {}, est, 1);
          acc::update_self(buf0, kN * 8, 1);
          acc::wait(1);  // <- required sync point
          mpi::Request reqs[2];
          reqs[0] = mpi::isend(buf0, n, mpi::Datatype::kDouble, peer, 1, comm);
          reqs[1] = mpi::irecv(buf1, n, mpi::Datatype::kDouble, peer, 1, comm);
          mpi::waitall(reqs, 2);  // <- required sync point
          acc::update_device(buf1, kN * 8, 1);
          acc::parallel_loop("consume", kN, {}, est, 1);
          acc::wait(1);
          break;
        }
        case Style::kUnified: {
          // Fig. 4 (c): everything rides activity queue 1; the host never
          // blocks inside the round.
          acc::parallel_loop("produce", kN, {}, est, 1);
          acc::mpi({.send_device = true, .async = 1});
          mpi::isend(buf0, n, mpi::Datatype::kDouble, peer, 1, comm);
          acc::mpi({.recv_device = true, .async = 1});
          mpi::irecv(buf1, n, mpi::Datatype::kDouble, peer, 1, comm);
          acc::parallel_loop("consume", kN, {}, est, 1);
          break;
        }
      }
    }
    if (style == Style::kUnified) acc::wait(1);
    acc::del(buf0);
    acc::del(buf1);
    node_free(buf0);
    node_free(buf1);
  });
  return result.makespan;
}

}  // namespace

int main() {
  std::printf("Figure 4/5 demo: %d pipelined rounds between two tasks\n\n",
              kRounds);
  const sim::Time a = run_style(Style::kSync);
  const sim::Time b = run_style(Style::kAsync);
  const sim::Time c = run_style(Style::kUnified);
  std::printf("%-28s %8.3f ms\n", style_name(Style::kSync), sim::to_ms(a));
  std::printf("%-28s %8.3f ms\n", style_name(Style::kAsync), sim::to_ms(b));
  std::printf("%-28s %8.3f ms\n", style_name(Style::kUnified), sim::to_ms(c));
  std::printf("\nunified queue vs synchronous: %.2fx faster\n", a / c);
  std::printf("unified queue vs async+sync:  %.2fx faster\n", b / c);
  return 0;
}
