/*
 * MPI+OpenACC source with IMPACC directives (section 3.5 syntax).
 *
 * This file is NOT compiled directly: the build runs it through
 * `impacc-translate`, and the generated C++ is included into
 * translated_pipeline.cpp. It exercises the full directive surface the
 * translator supports: data regions, kernels loops with device-pointer
 * substitution, update clauses, the unified activity queue via
 * `#pragma acc mpi ... async`, and plain MPI rewriting.
 */
int rank, size;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
int next = (rank + 1) % size;
int prev = (rank + size - 1) % size;

for (long j = 0; j < n; j++) { data[j] = rank; incoming[j] = -1.0; }

#pragma acc data copyin(data[0:n]) copy(incoming[0:n])
{
#pragma acc parallel loop present(data[0:n]) async(1)
  for (i = 0; i < n; i++) { data[i] = data[i] * 2.0 + 1.0; }

#pragma acc mpi sendbuf(device) async(1)
  MPI_Isend(data, n, MPI_DOUBLE, next, 3, MPI_COMM_WORLD, &req[0]);

#pragma acc mpi recvbuf(device) async(1)
  MPI_Irecv(incoming, n, MPI_DOUBLE, prev, 3, MPI_COMM_WORLD, &req[1]);

#pragma acc parallel loop present(incoming[0:n]) async(1)
  for (i = 0; i < n; i++) { incoming[i] = incoming[i] + 0.5; }

#pragma acc wait(1)
}

double local_sum = 0.0;
for (long j = 0; j < n; j++) local_sum += incoming[j];
MPI_Allreduce(&local_sum, &total, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
MPI_Barrier(MPI_COMM_WORLD);
