// End-to-end compiler pipeline demo: `ring_acc_source.c` (MPI+OpenACC
// with IMPACC directives) is translated by impacc-translate AT BUILD TIME
// and the generated C++ is compiled straight into this executable — the
// full source-to-source + runtime path the paper's Figure 1 sketches.
#include <cmath>
#include <cstdio>
#include <vector>

#include "impacc.h"

namespace {

using namespace impacc;

constexpr long kN = 1 << 12;

bool run_task() {
  // Declarations the translated body expects (a real compiler would carry
  // them over from the surrounding C function).
  const long n = kN;
  long i = 0;
  (void)i;
  mpi::Request req[2];
  double total = 0.0;
  auto* data = static_cast<double*>(node_malloc(n * sizeof(double)));
  auto* incoming = static_cast<double*>(node_malloc(n * sizeof(double)));

#include "ring_translated.inc"

  node_free(data);
  node_free(incoming);

  // Every task received prev*2+1.5 in each slot; the allreduce saw all of
  // them.
  double expect = 0;
  const int sz = mpi::comm_size(mpi::world());
  for (int r = 0; r < sz; ++r) expect += n * (r * 2.0 + 1.5);
  return std::abs(total - expect) < 1e-6;
}

}  // namespace

int main() {
  core::LaunchOptions options;
  options.cluster = sim::make_psg();
  int failures = 0;
  const LaunchResult result = launch(options, [&failures] {
    if (!run_task()) ++failures;  // single worker: no data race
  });
  std::printf("translated MPI+OpenACC ring on %d tasks: %s "
              "(makespan %.3f ms)\n",
              result.num_tasks, failures == 0 ? "VERIFIED" : "FAILED",
              sim::to_ms(result.makespan));
  return failures == 0 ? 0 : 1;
}
