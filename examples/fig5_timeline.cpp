// Figure 5, for real: emit Chrome-trace timelines of the three
// synchronization styles of Figure 4 and print where the time goes.
//
// Open the generated *.json files in chrome://tracing or
// https://ui.perfetto.dev to see the host / activity-queue / message rows
// the paper sketches.
#include <cstdio>
#include <map>
#include <string>

#include "impacc.h"

namespace {

using namespace impacc;

constexpr long kN = 1 << 18;

sim::Time run_traced(bool unified, const std::string& trace_path) {
  core::LaunchOptions options;
  options.cluster = sim::make_psg();
  options.mode = core::ExecMode::kModelOnly;
  options.trace_path = trace_path;

  const LaunchResult result = launch(options, [unified] {
    auto comm = mpi::world();
    const int rank = mpi::comm_rank(comm);
    if (rank > 1) return;
    const int peer = 1 - rank;
    auto* buf0 = static_cast<double*>(node_malloc(kN * 8));
    auto* buf1 = static_cast<double*>(node_malloc(kN * 8));
    acc::copyin(buf0, kN * 8);
    acc::copyin(buf1, kN * 8);
    const sim::WorkEstimate est{10.0 * kN, 16.0 * kN};
    const int n = static_cast<int>(kN);

    for (int round = 0; round < 4; ++round) {
      if (unified) {
        acc::parallel_loop("produce", kN, {}, est, 1);
        acc::mpi({.send_device = true, .async = 1});
        mpi::isend(buf0, n, mpi::Datatype::kDouble, peer, 1, comm);
        acc::mpi({.recv_device = true, .async = 1});
        mpi::irecv(buf1, n, mpi::Datatype::kDouble, peer, 1, comm);
        acc::parallel_loop("consume", kN, {}, est, 1);
      } else {
        acc::parallel_loop("produce", kN, {}, est, 1);
        acc::update_self(buf0, kN * 8, 1);
        acc::wait(1);
        mpi::Request reqs[2];
        reqs[0] = mpi::isend(buf0, n, mpi::Datatype::kDouble, peer, 1, comm);
        reqs[1] = mpi::irecv(buf1, n, mpi::Datatype::kDouble, peer, 1, comm);
        mpi::waitall(reqs, 2);
        acc::update_device(buf1, kN * 8, 1);
        acc::parallel_loop("consume", kN, {}, est, 1);
        acc::wait(1);
      }
    }
    if (unified) acc::wait(1);
    acc::del(buf0);
    acc::del(buf1);
    node_free(buf0);
    node_free(buf1);
  });

  // Summarize the trace: virtual time per category.
  std::map<std::string, sim::Time> by_category;
  for (const auto& e : result.trace->snapshot()) {
    by_category[e.category] += e.end - e.start;
  }
  std::printf("  %-38s makespan %7.3f ms, %zu trace events -> %s\n",
              unified ? "(c) unified activity queue" : "(b) async + waits",
              sim::to_ms(result.makespan), result.trace->size(),
              trace_path.c_str());
  for (const auto& [category, time] : by_category) {
    std::printf("      %-12s %8.3f ms (summed across rows)\n",
                category.c_str(), sim::to_ms(time));
  }
  return result.makespan;
}

}  // namespace

int main() {
  std::printf("Reproducing the Fig. 5 timelines as Chrome traces:\n");
  const sim::Time waits = run_traced(false, "fig5_async_waits.json");
  const sim::Time unified = run_traced(true, "fig5_unified_queue.json");
  std::printf("\nremoving the host sync points: %.2fx faster\n",
              waits / unified);
  std::printf("open the .json files in chrome://tracing to compare.\n");
  return 0;
}
