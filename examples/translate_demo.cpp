// The IMPACC "compiler" surface: translate an MPI+OpenACC source snippet
// (the paper's Fig. 4 (c) with the #pragma acc mpi extension) into
// runtime API calls and print the result.
#include <cstdio>

#include "trans/translator.h"

int main() {
  const char* source = R"(/* Fig. 4 (c): IMPACC unified activity queue */
#pragma acc data create(buf0[0:n]) create(buf1[0:n])
{
#pragma acc kernels loop copyout(buf0[0:n]) async(1)
for (i = 0; i < n; i++) { buf0[i] = produce(i); }

#pragma acc mpi sendbuf(device) async(1)
MPI_Isend(buf0, n, MPI_DOUBLE, another_task, 5, MPI_COMM_WORLD, &req[0]);

#pragma acc mpi recvbuf(device) async(1)
MPI_Irecv(buf1, n, MPI_DOUBLE, another_task, 5, MPI_COMM_WORLD, &req[1]);

#pragma acc kernels loop copyin(buf1[0:n]) async(1)
for (i = 0; i < n; i++) { consume(buf1[i]); }

#pragma acc wait(1)
}
)";

  std::printf("---- input (MPI+OpenACC with IMPACC directives) ----\n%s\n",
              source);
  const auto result = impacc::trans::translate_source(source);
  if (!result.ok) {
    for (const auto& e : result.errors) {
      std::fprintf(stderr, "error: %s\n", e.c_str());
    }
    return 1;
  }
  std::printf("---- output (%d directives, %d MPI calls translated) ----\n%s\n",
              result.directives_translated, result.mpi_calls_translated,
              result.output.c_str());
  return 0;
}
