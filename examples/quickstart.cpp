// Quickstart: the smallest complete IMPACC program.
//
// Launches one MPI task per accelerator of a simulated PSG node, computes
// on each task's device, exchanges results over a ring with the unified
// MPI routines (device buffers, no explicit staging), and reduces a
// checksum. Prints the simulated makespan.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "impacc.h"

int main() {
  using namespace impacc;

  core::LaunchOptions options;
  options.cluster = sim::make_psg();  // 1 node, 8 GPUs -> 8 tasks

  const LaunchResult result = launch(options, [] {
    auto comm = mpi::world();
    const int rank = mpi::comm_rank(comm);
    const int size = mpi::comm_size(comm);

    // Host data, mapped and copied to this task's accelerator.
    constexpr long kN = 1 << 16;
    std::vector<double> data(kN);
    acc::copyin(data.data(), kN * sizeof(double));
    auto* dev = static_cast<double*>(acc::deviceptr(data.data()));

    // A compute region on the device (gang/worker/vector parallelism is
    // modeled by the roofline estimate).
    acc::parallel_loop(
        "init", kN, [dev, rank](long i) { dev[i] = rank + i * 1e-6; },
        {2.0 * kN, 16.0 * kN});

    // Ring exchange straight from device memory: the runtime detects the
    // buffer location, fuses the intra-node pair into one DtoD copy.
    std::vector<double> incoming(kN);
    acc::copyin(incoming.data(), kN * sizeof(double));
    const int next = (rank + 1) % size;
    const int prev = (rank + size - 1) % size;
    acc::mpi({.recv_device = true});
    mpi::Request r =
        mpi::irecv(incoming.data(), kN, mpi::Datatype::kDouble, prev, 0, comm);
    acc::mpi({.send_device = true});
    mpi::send(data.data(), kN, mpi::Datatype::kDouble, next, 0, comm);
    mpi::wait(r);

    // Verify on the host.
    acc::update_self(incoming.data(), kN * sizeof(double));
    double local = incoming[100] - prev - 100 * 1e-6;  // ~0
    double max_err = 0;
    mpi::allreduce(&local, &max_err, 1, mpi::Datatype::kDouble, mpi::Op::kMax,
                   comm);
    if (rank == 0) {
      std::printf("ring exchange max error: %.3g\n", max_err);
    }
    acc::del(data.data());
    acc::del(incoming.data());
  });

  std::printf("tasks: %d\n", result.num_tasks);
  std::printf("simulated makespan: %.3f ms\n",
              impacc::sim::to_ms(result.makespan));
  return 0;
}
