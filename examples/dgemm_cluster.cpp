// DGEMM on a simulated cluster: the paper's first benchmark application
// as a library user would run it, with verification and a side-by-side
// IMPACC vs MPI+OpenACC comparison (node heap aliasing of the read-only
// inputs is what makes the difference at this size).
#include <cstdio>

#include "apps/dgemm.h"
#include "impacc.h"

int main() {
  using namespace impacc;

  apps::DgemmConfig config;
  config.n = 96;
  config.verify = true;

  for (const auto fw :
       {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
    core::LaunchOptions options;
    options.cluster = sim::make_psg();
    options.framework = fw;
    const apps::DgemmResult r = apps::run_dgemm(options, config);
    std::printf("%-12s n=%ld  verified=%s  aliases=%llu  makespan=%.3f ms\n",
                core::framework_name(fw), config.n,
                r.verified ? "yes" : "NO",
                static_cast<unsigned long long>(r.launch.total.heap_aliases),
                sim::to_ms(r.launch.makespan));
  }
  return 0;
}
