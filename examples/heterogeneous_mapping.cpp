// Figure 2 in runnable form: automatic task-device mapping on a
// heterogeneous cluster (different nodes with different accelerators).
//
// The user provides only the node list; IMPACC creates one MPI task per
// selected accelerator. IMPACC_ACC_DEVICE_TYPE (or the option below)
// picks which accelerator kinds participate, and each task discovers its
// device type at run time to balance work manually — the paper's recipe
// for heterogeneous load distribution.
#include <cstdio>
#include <string>

#include "impacc.h"
#include "ult/sync.h"

namespace {

using namespace impacc;

void show_mapping(const char* label, unsigned mask) {
  core::LaunchOptions options;
  options.cluster = sim::make_heterogeneous_demo();  // the Fig. 2 cluster
  options.device_type_mask = mask;

  ult::SpinLock lock;
  std::string rows;
  const LaunchResult result = launch(options, [&lock, &rows] {
    const int rank = mpi::comm_rank(mpi::world());
    // acc_get_device_type(): the paper's hook for manual load balancing.
    const char* kind = sim::device_kind_name(acc::get_device_type());
    // Workload share: give GPUs 4x and MICs 2x a CPU's share.
    int share = 1;
    if (acc::get_device_type() == sim::DeviceKind::kNvidiaGpu) share = 4;
    if (acc::get_device_type() == sim::DeviceKind::kXeonPhi) share = 2;
    char line[96];
    std::snprintf(line, sizeof(line),
                  "  task %d -> device %d (%s), workload share %d\n", rank,
                  acc::get_device_num(), kind, share);
    lock.lock();
    rows += line;
    lock.unlock();
    // acc_set_device_num() is ignored: the mapping is fixed (section 3.2).
    acc::set_device_num(0);
    mpi::barrier(mpi::world());
  });
  std::printf("%s -> %d tasks\n%s", label, result.num_tasks, rows.c_str());
}

}  // namespace

int main() {
  std::printf("Fig. 2 cluster: node0 = 2 GPUs, node1 = GPU + 2 MICs, "
              "node2 = CPU only\n\n");
  show_mapping("(a) acc_device_default", core::kAccDeviceDefault);
  show_mapping("(b) acc_device_nvidia", core::kAccDeviceNvidia);
  show_mapping("(c) acc_device_cpu", core::kAccDeviceCpu);
  show_mapping("(d) acc_device_xeonphi", core::kAccDeviceXeonPhi);
  show_mapping("(e) nvidia | xeonphi",
               core::kAccDeviceNvidia | core::kAccDeviceXeonPhi);
  return 0;
}
