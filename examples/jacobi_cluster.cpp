// 2-D Jacobi with device-resident halo exchange: the unified MPI routines
// send boundary rows straight from accelerator memory, and matched
// intra-node pairs become direct device-to-device PCIe copies. Prints the
// per-path copy statistics so the Fig. 6 paths are visible.
#include <cstdio>

#include "apps/jacobi.h"
#include "dev/copyengine.h"
#include "impacc.h"

// The directive-level shape of the timestep loop the runner below
// simulates. impacc-lint verifies this snippet exactly at 4 ranks with
// the default unroll: each of the four sweeps posts its receive, the
// ring of sends matches, and the queue wait completes both requests —
// no widening, no poisoned trace (see the deep-lint CI job and the
// JacobiTimestepExchangeIsProvenExact test).
static const char* const kTimestepExchangeSource = R"lint(
/* Fig. 6 path: device-resident Jacobi timestep loop. Every sweep
 * relaxes the interior on the device, then circulates the updated
 * boundary row around the ring straight from accelerator memory. */
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
int next = (rank + 1) % size;
int prev = (rank + size - 1) % size;
#pragma acc data copyin(u[0:n]) copy(halo[0:m])
{
  for (int step = 0; step < 4; step++) {
#pragma acc parallel loop present(u[0:n]) async(1)
    for (i = 0; i < n; i++) { u[i] = 0.25 * u[i]; }
#pragma acc mpi sendbuf(device) async(1)
    MPI_Isend(u, m, MPI_DOUBLE, next, step, MPI_COMM_WORLD, &sreq);
#pragma acc mpi recvbuf(device) async(1)
    MPI_Irecv(halo, m, MPI_DOUBLE, prev, step, MPI_COMM_WORLD, &rreq);
#pragma acc wait(1)
  }
}
MPI_Allreduce(MPI_IN_PLACE, &residual, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
)lint";

int main() {
  using namespace impacc;

  std::printf("---- timestep exchange (verified by impacc-lint) ----\n%s\n",
              kTimestepExchangeSource);

  apps::JacobiConfig config;
  config.n = 64;
  config.iterations = 8;
  config.verify = true;

  for (const auto fw :
       {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
    core::LaunchOptions options;
    options.cluster = sim::make_psg();
    options.framework = fw;
    const apps::JacobiResult r = apps::run_jacobi(options, config);
    std::printf("%-12s verified=%s makespan=%.3f ms\n",
                core::framework_name(fw), r.verified ? "yes" : "NO",
                sim::to_ms(r.launch.makespan));
    for (int k = 0; k < 6; ++k) {
      const auto count = r.launch.total.copy_count[static_cast<std::size_t>(k)];
      if (count == 0) continue;
      std::printf("    %-12s x%-5llu %8.3f ms\n",
                  dev::copy_path_name(static_cast<dev::CopyPathKind>(k)),
                  static_cast<unsigned long long>(count),
                  sim::to_ms(
                      r.launch.total.copy_time[static_cast<std::size_t>(k)]));
    }
  }
  return 0;
}
