// 2-D Jacobi with device-resident halo exchange: the unified MPI routines
// send boundary rows straight from accelerator memory, and matched
// intra-node pairs become direct device-to-device PCIe copies. Prints the
// per-path copy statistics so the Fig. 6 paths are visible.
#include <cstdio>

#include "apps/jacobi.h"
#include "dev/copyengine.h"
#include "impacc.h"

int main() {
  using namespace impacc;

  apps::JacobiConfig config;
  config.n = 64;
  config.iterations = 8;
  config.verify = true;

  for (const auto fw :
       {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
    core::LaunchOptions options;
    options.cluster = sim::make_psg();
    options.framework = fw;
    const apps::JacobiResult r = apps::run_jacobi(options, config);
    std::printf("%-12s verified=%s makespan=%.3f ms\n",
                core::framework_name(fw), r.verified ? "yes" : "NO",
                sim::to_ms(r.launch.makespan));
    for (int k = 0; k < 6; ++k) {
      const auto count = r.launch.total.copy_count[static_cast<std::size_t>(k)];
      if (count == 0) continue;
      std::printf("    %-12s x%-5llu %8.3f ms\n",
                  dev::copy_path_name(static_cast<dev::CopyPathKind>(k)),
                  static_cast<unsigned long long>(count),
                  sim::to_ms(
                      r.launch.total.copy_time[static_cast<std::size_t>(k)]));
    }
  }
  return 0;
}
