// The LULESH proxy on a simulated Titan slice: weak-scaled shock
// hydrodynamics over a 3-D Cartesian topology with 26-neighbour surface
// exchange, verified against the serial reference.
#include <cstdio>

#include "apps/lulesh/driver.h"
#include "impacc.h"

int main() {
  using namespace impacc;

  apps::LuleshConfig config;
  config.s = 6;        // 6^3 elements per task
  config.iterations = 6;
  config.verify = true;

  for (int nodes : {1, 8, 27}) {
    core::LaunchOptions options;
    options.cluster = sim::make_titan(nodes);  // one task per node
    const apps::LuleshResult r = apps::run_lulesh(options, config);
    std::printf(
        "%2d tasks (%dx%dx%d): energy=%.9f dt=%.6f verified=%s "
        "makespan=%.3f ms\n",
        r.launch.num_tasks, nodes == 1 ? 1 : (nodes == 8 ? 2 : 3),
        nodes == 1 ? 1 : (nodes == 8 ? 2 : 3),
        nodes == 1 ? 1 : (nodes == 8 ? 2 : 3), r.total_energy, r.final_dt,
        r.verified ? "yes" : "NO", sim::to_ms(r.launch.makespan));
  }
  std::printf("\n'verified=yes' means the decomposed run matches the serial "
              "reference of the same global mesh:\nthe 26-neighbour "
              "exchange is exact.\n");
  return 0;
}
