// impacc-info: inspect system presets and the automatic task-device
// mapping (the runtime-side view of Fig. 2).
//
//   impacc-info <system> [nodes] [device-type-mask]
//     system: psg | beacon | titan | hetero
//     mask:   e.g. "nvidia|xeonphi" (default: acc_device_default)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/mapping.h"
#include "core/pinning.h"
#include "impacc.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <psg|beacon|titan|hetero> [nodes] [mask]\n",
                 argv[0]);
    return 2;
  }
  const std::string system = argv[1];
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 0;
  const unsigned mask =
      argc > 3 ? impacc::core::parse_device_type_mask(argv[3]) : 0;

  const impacc::sim::ClusterDesc cluster =
      impacc::sim::make_system(system, nodes);
  std::printf("system: %s (%d nodes), fabric %s%s\n", cluster.name.c_str(),
              cluster.num_nodes(), cluster.fabric.name.c_str(),
              cluster.fabric.gpudirect_rdma ? " [GPUDirect RDMA]" : "");

  const int shown_nodes = std::min(cluster.num_nodes(), 4);
  for (int n = 0; n < shown_nodes; ++n) {
    const auto& node = cluster.nodes[static_cast<std::size_t>(n)];
    std::printf("node %d: %d sockets x %d cores, %llu GB\n", n, node.sockets,
                node.cores_per_socket,
                static_cast<unsigned long long>(node.host_mem_bytes >> 30));
    for (const auto& line : impacc::core::sysfs_pci_affinity(node)) {
      std::printf("  sysfs: %s\n", line.c_str());
    }
    for (std::size_t d = 0; d < node.devices.size(); ++d) {
      const auto& dev = node.devices[d];
      std::printf("  dev %zu: %-28s socket %d, rc %d, %llu GB, "
                  "%.2f TF DP, PCIe %.1f GB/s\n",
                  d, dev.model.c_str(), dev.socket, dev.root_complex,
                  static_cast<unsigned long long>(dev.mem_bytes >> 30),
                  dev.flops_dp / 1e12, dev.pcie.bandwidth / 1e9);
    }
  }
  if (cluster.num_nodes() > shown_nodes) {
    std::printf("... (%d identical nodes omitted)\n",
                cluster.num_nodes() - shown_nodes);
  }

  const auto placements = impacc::core::map_tasks(cluster, mask);
  std::printf("\ntask-device mapping (mask=%s): %zu tasks\n",
              argc > 3 ? argv[3] : "default", placements.size());
  const std::size_t shown =
      std::min<std::size_t>(placements.size(), 16);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& p = placements[i];
    std::printf("  rank %zu -> node %d, device %d (%s)%s\n", i, p.node,
                p.local_index, impacc::sim::device_kind_name(p.device.kind),
                p.synthesized_cpu ? " [synthesized CPU accelerator]" : "");
  }
  if (placements.size() > shown) {
    std::printf("  ... (%zu more)\n", placements.size() - shown);
  }
  return 0;
}
