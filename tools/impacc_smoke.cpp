// impacc-smoke: self-validating observability smoke run (ISSUE 3).
//
// Runs a 2-node Titan staged point-to-point workload (GPUDirect off, so
// every message pipelines DtoH -> wire -> HtoD through the pinned pool)
// with tracing and metrics on, then checks the run's own telemetry:
//
//   - the trace is loadable JSON with one ph:"s"/"f" flow pair per
//     internode message and counter tracks for the handler queue and the
//     pinned pool,
//   - the metrics snapshot's per-phase histogram totals reconcile with
//     the TaskStats the breakdown figures use.
//
// Exit status 0 = all checks pass. CI runs this and archives the two
// output files; tools/metrics_diff.sh diffs the snapshot against the
// committed BENCH_metrics.json baseline.
//
// The critical-path profiler (ISSUE 8) runs as part of the smoke: the
// sum of the critpath.<category>.seconds gauges must equal the makespan
// exactly, and --graph PATH dumps the dependency graph for impacc-prof.
//
//   impacc-smoke [--trace PATH] [--metrics PATH[,format]] [--graph PATH]
//                [--jacobi]
//
// Paths default to "-" (in memory only). --jacobi swaps the workload
// for the Fig. 14 Jacobi configuration (one PSG node, 8 devices,
// n = 2048, 3 sweeps) so its measured critical-path graph can be
// compared against the static lint prediction
// (tests/lint_fixtures/perf_jacobi.c via impacc-prof --compare).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/jacobi.h"
#include "dev/copyengine.h"
#include "impacc.h"
#include "obs/critpath.h"

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("%-58s %s\n", what, ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

void check_near(double a, double b, const char* what) {
  const bool ok = std::fabs(a - b) <= 1e-12 + 1e-9 * std::fabs(b);
  if (!ok) std::printf("  (%.17g vs %.17g)\n", a, b);
  check(ok, what);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace impacc;

  std::string trace_path = "-";
  std::string metrics_path = "-";
  std::string graph_path;
  bool jacobi = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--graph") == 0 && i + 1 < argc) {
      graph_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jacobi") == 0) {
      jacobi = true;
    } else {
      std::fprintf(stderr,
                   "usage: impacc-smoke [--trace PATH] "
                   "[--metrics PATH[,format]] [--graph PATH] [--jacobi]\n");
      return 2;
    }
  }

  if (jacobi) {
    core::LaunchOptions o;
    o.cluster = sim::make_system("psg", 1);
    o.mode = core::ExecMode::kModelOnly;
    o.scheduler_workers = 1;
    o.metrics_path = metrics_path;
    o.critpath = true;
    o.critpath_graph_path = graph_path;
    apps::JacobiConfig cfg;
    cfg.n = 2048;
    cfg.iterations = 3;
    const auto r = apps::run_jacobi(o, cfg);
    std::printf(
        "impacc-smoke --jacobi: Fig.14 config (psg, n=2048, 3 sweeps), "
        "makespan %.3f ms\n\n",
        sim::to_ms(r.launch.makespan));
    double sum = 0;
    for (int c = 0; c < obs::kCritCategoryCount; ++c) {
      const auto cat = static_cast<obs::CritCategory>(c);
      sum += r.launch.metrics.value(std::string("critpath.") +
                                    obs::crit_category_slug(cat) +
                                    ".seconds");
    }
    check_near(sum, r.launch.makespan,
               "sum(critpath.*.seconds) == makespan");
    std::printf("\nimpacc-smoke: %s (%d failure%s)\n",
                g_failures == 0 ? "PASS" : "FAIL", g_failures,
                g_failures == 1 ? "" : "s");
    return g_failures == 0 ? 0 : 1;
  }

  constexpr int kMsgs = 8;
  constexpr std::uint64_t kBytes = 8ull << 20;

  core::LaunchOptions o;
  o.cluster = sim::make_system("titan", 2);
  o.mode = core::ExecMode::kFunctional;
  o.scheduler_workers = 1;
  o.features.gpudirect_rdma = false;  // force the staged pipeline
  o.trace_path = trace_path;
  o.metrics_path = metrics_path;
  o.critpath = true;
  o.critpath_graph_path = graph_path;

  const auto result = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    auto* buf = static_cast<char*>(node_malloc(kBytes));
    if (r == 0) {
      for (std::uint64_t i = 0; i < kBytes; ++i) {
        buf[i] = static_cast<char>(i * 31 + 7);
      }
    }
    acc::copyin(buf, kBytes);
    const int count = static_cast<int>(kBytes);
    for (int m = 0; m < kMsgs; ++m) {
      if (r == 0) {
        acc::mpi({.send_device = true});
        mpi::send(buf, count, mpi::Datatype::kByte, 1, m, w);
      } else if (r == 1) {
        acc::mpi({.recv_device = true});
        mpi::recv(buf, count, mpi::Datatype::kByte, 0, m, w);
      }
    }
    if (r == 1) {
      acc::copyout(buf);
      // Functional mode really moved the bytes: spot-check the payload.
      bool payload_ok = true;
      for (std::uint64_t i = 0; i < kBytes; i += kBytes / 64) {
        if (buf[i] != static_cast<char>(i * 31 + 7)) payload_ok = false;
      }
      if (!payload_ok) {
        std::fprintf(stderr, "payload verification failed\n");
        std::exit(1);
      }
    } else {
      acc::del(buf);
    }
    node_free(buf);
  });

  std::printf("impacc-smoke: %d staged %lluMiB messages, makespan %.3f ms\n\n",
              kMsgs, static_cast<unsigned long long>(kBytes >> 20),
              sim::to_ms(result.makespan));

  // --- Trace checks ---------------------------------------------------------
  check(result.trace != nullptr, "trace collected");
  if (result.trace != nullptr) {
    int flow_starts = 0;
    int flow_finishes = 0;
    int internode_slices = 0;
    int critpath_slices = 0;
    bool handler_depth = false;
    bool pinned_track = false;
    bool stream_depth = false;
    for (const auto& e : result.trace->snapshot()) {
      if (e.phase == 's') ++flow_starts;
      if (e.phase == 'f') ++flow_finishes;
      if (e.phase == 'X' && e.category.rfind("internode", 0) == 0) {
        ++internode_slices;
      }
      if (e.phase == 'X' && e.category == "critpath") ++critpath_slices;
      if (e.phase == 'C') {
        if (e.name == "handler queue depth") handler_depth = true;
        if (e.name == "pinned pool bytes") pinned_track = true;
        if (e.name.rfind("dev", 0) == 0) stream_depth = true;
      }
    }
    check(flow_starts == kMsgs, "one flow start per internode message");
    check(flow_finishes == kMsgs, "one flow finish per internode message");
    // Each message shows a send-side and a recv-side slice.
    check(internode_slices == 2 * kMsgs, "send+recv slice per message");
    check(critpath_slices > 0, "critical-path overlay slices in trace");
    check(handler_depth, "handler queue depth counter track");
    check(pinned_track, "pinned pool counter track");
    check(stream_depth, "activity-queue depth counter track");

    const std::string json = result.trace->to_chrome_json();
    check(!json.empty() && json.front() == '[' &&
              json.find("\"ph\":\"s\"") != std::string::npos &&
              json.find("\"bp\":\"e\"") != std::string::npos,
          "chrome json has flow events");
  }

  // --- Metrics checks -------------------------------------------------------
  const obs::MetricsSnapshot& m = result.metrics;
  check(!m.empty(), "metrics snapshot collected");
  check(m.value("mpi.msgs.internode") == kMsgs, "internode message count");
  check(m.value("mpi.msg.phase.total.count") == kMsgs,
        "per-message lifecycle histogram count");
  check(m.value("mpi.msg.phase.wire.sum") > 0, "wire phase time recorded");
  check(m.value("mpi.msg.phase.stage_dtoh.sum") > 0,
        "DtoH staging phase recorded");
  check(m.value("mpi.msg.phase.stage_htod.sum") > 0,
        "HtoD staging phase recorded");
  check(m.value("core.pinned_pool.bytes_in_use_peak") > 0,
        "pinned pool peak recorded");

  // Reconciliation: the histograms and the TaskStats totals are fed by the
  // same accounting sites, so their sums must agree (acceptance criterion).
  for (int i = 0; i < 6; ++i) {
    const auto kind = static_cast<impacc::dev::CopyPathKind>(i);
    const std::string name =
        std::string("dev.copy.") + impacc::dev::copy_path_slug(kind);
    check_near(m.value(name + ".seconds.sum"),
               result.total.copy_time[static_cast<std::size_t>(i)],
               (name + ".seconds.sum == TaskStats copy_time").c_str());
  }
  check_near(m.value("mpi.wait.seconds.sum"), result.total.mpi_wait,
             "mpi.wait.seconds.sum == TaskStats mpi_wait");
  check_near(m.value("core.makespan_seconds"), result.makespan,
             "core.makespan_seconds == LaunchResult makespan");

  // Critical-path reconciliation (acceptance criterion): every instant of
  // the makespan is attributed to exactly one category.
  double critpath_sum = 0;
  for (int c = 0; c < obs::kCritCategoryCount; ++c) {
    const auto cat = static_cast<obs::CritCategory>(c);
    critpath_sum += m.value(std::string("critpath.") +
                            obs::crit_category_slug(cat) + ".seconds");
  }
  check_near(critpath_sum, result.makespan,
             "sum(critpath.*.seconds) == makespan");
  check(m.value("core.node0.handler_socket", -1) >= 0,
        "handler socket pinning gauge published");

  std::printf("\nimpacc-smoke: %s (%d failure%s)\n",
              g_failures == 0 ? "PASS" : "FAIL", g_failures,
              g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}
