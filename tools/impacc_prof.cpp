// impacc-prof: offline critical-path analyzer (ISSUE 8).
//
// Re-analyzes a critical-path graph dumped by a run with
// IMPACC_PROF_GRAPH=path (or impacc-smoke --graph): recomputes the
// makespan attribution, prints the same report the in-process
// IMPACC_PROF=path hook writes — per-category seconds, top-N critical
// operations, what-if estimates ("wire -> 0 => makespan -23%") — and
// verifies the reconciliation invariant
//
//   sum(critpath.<category>.seconds) == makespan
//
// exiting nonzero when it does not hold, so CI can gate on it.
//
//   impacc-prof GRAPH [--top N]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/critpath.h"

int main(int argc, char** argv) {
  using impacc::obs::CritPath;

  std::string graph_path;
  int top_n = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-' && graph_path.empty()) {
      graph_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: impacc-prof GRAPH [--top N]\n");
      return 2;
    }
  }
  if (graph_path.empty()) {
    std::fprintf(stderr, "usage: impacc-prof GRAPH [--top N]\n");
    return 2;
  }

  CritPath cp;
  impacc::sim::Time makespan = 0;
  std::uint32_t end_node = 0;
  if (!CritPath::load_graph(graph_path, &cp, &makespan, &end_node)) {
    std::fprintf(stderr, "impacc-prof: cannot load graph %s\n",
                 graph_path.c_str());
    return 2;
  }

  const CritPath::Report rep = cp.analyze(makespan, end_node);
  std::fputs(cp.format_report(rep, top_n).c_str(), stdout);

  const double total = rep.total();
  const bool reconciles =
      std::fabs(total - makespan) <= 1e-12 + 1e-9 * std::fabs(makespan);
  if (!reconciles) {
    std::fprintf(stderr,
                 "impacc-prof: RECONCILIATION FAILED: sum of category "
                 "attributions %.17g != makespan %.17g\n",
                 total, makespan);
    return 1;
  }
  std::printf("reconciliation: sum(critpath.*.seconds) == makespan  ok\n");
  return 0;
}
