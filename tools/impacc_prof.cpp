// impacc-prof: offline critical-path analyzer (ISSUE 8).
//
// Re-analyzes a critical-path graph dumped by a run with
// IMPACC_PROF_GRAPH=path (or impacc-smoke --graph): recomputes the
// makespan attribution, prints the same report the in-process
// IMPACC_PROF=path hook writes — per-category seconds, top-N critical
// operations, what-if estimates ("wire -> 0 => makespan -23%") — and
// verifies the reconciliation invariant
//
//   sum(critpath.<category>.seconds) == makespan
//
// exiting nonzero when it does not hold, so CI can gate on it.
//
//   impacc-prof GRAPH [--top N] [--compare LINT_JSON [--factor F]]
//
// --compare closes the loop with the static perf pass: it reads the
// `predicted_makespan` block from an `impacc-lint --perf --json` report
// and checks that the static prediction and the measured makespan agree
// within a factor F (default 3; see docs/LINT.md "Performance rules"
// for why 3x bounds the model's known error sources). Exit 1 when they
// diverge by more, so CI catches a cost model drifting from the runtime.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/critpath.h"

namespace {

/// Pull the first `"predicted_makespan": {... "seconds": S ...}` out of
/// an impacc-lint --perf --json report. Returns false when the report
/// has no perf block.
bool read_predicted_makespan(const std::string& path, double* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::size_t block = text.find("\"predicted_makespan\"");
  if (block == std::string::npos) return false;
  const std::size_t key = text.find("\"seconds\":", block);
  if (key == std::string::npos) return false;
  *out = std::strtod(text.c_str() + key + 10, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using impacc::obs::CritPath;

  std::string graph_path;
  std::string compare_path;
  double factor = 3.0;
  int top_n = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (std::strcmp(argv[i], "--factor") == 0 && i + 1 < argc) {
      factor = std::atof(argv[++i]);
      if (!(factor >= 1.0)) {
        std::fprintf(stderr, "impacc-prof: --factor must be >= 1\n");
        return 2;
      }
    } else if (argv[i][0] != '-' && graph_path.empty()) {
      graph_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: impacc-prof GRAPH [--top N] "
                   "[--compare LINT_JSON [--factor F]]\n");
      return 2;
    }
  }
  if (graph_path.empty()) {
    std::fprintf(stderr,
                 "usage: impacc-prof GRAPH [--top N] "
                 "[--compare LINT_JSON [--factor F]]\n");
    return 2;
  }

  CritPath cp;
  impacc::sim::Time makespan = 0;
  std::uint32_t end_node = 0;
  if (!CritPath::load_graph(graph_path, &cp, &makespan, &end_node)) {
    std::fprintf(stderr, "impacc-prof: cannot load graph %s\n",
                 graph_path.c_str());
    return 2;
  }

  const CritPath::Report rep = cp.analyze(makespan, end_node);
  std::fputs(cp.format_report(rep, top_n).c_str(), stdout);

  const double total = rep.total();
  const bool reconciles =
      std::fabs(total - makespan) <= 1e-12 + 1e-9 * std::fabs(makespan);
  if (!reconciles) {
    std::fprintf(stderr,
                 "impacc-prof: RECONCILIATION FAILED: sum of category "
                 "attributions %.17g != makespan %.17g\n",
                 total, makespan);
    return 1;
  }
  std::printf("reconciliation: sum(critpath.*.seconds) == makespan  ok\n");

  if (!compare_path.empty()) {
    double predicted = 0.0;
    if (!read_predicted_makespan(compare_path, &predicted)) {
      std::fprintf(stderr,
                   "impacc-prof: no predicted_makespan block in %s "
                   "(run impacc-lint --perf --json)\n",
                   compare_path.c_str());
      return 2;
    }
    if (predicted <= 0.0 || makespan <= 0.0) {
      std::fprintf(stderr,
                   "impacc-prof: cannot compare nonpositive makespans "
                   "(predicted %.17g, measured %.17g)\n",
                   predicted, static_cast<double>(makespan));
      return 1;
    }
    const double ratio = predicted > makespan ? predicted / makespan
                                              : makespan / predicted;
    std::printf(
        "compare: static prediction %.6g s vs measured %.6g s "
        "(ratio %.3g, budget %.3gx)\n",
        predicted, static_cast<double>(makespan), ratio, factor);
    if (ratio > factor) {
      std::fprintf(stderr,
                   "impacc-prof: COMPARISON FAILED: static prediction "
                   "and measured makespan diverge by %.3gx (> %.3gx)\n",
                   ratio, factor);
      return 1;
    }
  }
  return 0;
}
