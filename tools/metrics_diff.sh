#!/usr/bin/env bash
# Diff two flat metrics-snapshot JSON files (the IMPACC_METRICS json
# format: one "name": value per line) with a relative tolerance, so CI can
# gate on a committed baseline without tripping on float noise.
#
#   tools/metrics_diff.sh baseline.json current.json [tolerance] [ignore-regex]
#
# tolerance     relative (default 0.15; counts compare exactly when both
#               sides are integers and tolerance is 0)
# ignore-regex  metric names to skip (default: ult.sched.* — run-queue
#               depths and fiber wall-clock sampling are scheduling
#               dependent, not model outputs — and critpath.* — path
#               attribution can flip between near-tied chains when
#               wall-clock wake order shifts NIC reservation order)
#
# Exit 0 when every shared metric is within tolerance and the key sets
# match; 1 otherwise, with a line per discrepancy.
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 baseline.json current.json [tolerance] [ignore-regex]" >&2
  exit 2
fi

python3 - "$1" "$2" "${3:-0.15}" "${4:-^(ult\.sched\.|critpath\.)}" <<'EOF'
import json, re, sys

base_path, cur_path, tol_s, ignore_s = sys.argv[1:5]
tol = float(tol_s)
ignore = re.compile(ignore_s)

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {k: float(v) for k, v in data.items() if not ignore.search(k)}

base = load(base_path)
cur = load(cur_path)

fail = 0
for name in sorted(base.keys() - cur.keys()):
    print(f"MISSING  {name} (in baseline only)")
    fail += 1
for name in sorted(cur.keys() - base.keys()):
    print(f"NEW      {name} (not in baseline)")
    fail += 1
for name in sorted(base.keys() & cur.keys()):
    b, c = base[name], cur[name]
    denom = max(abs(b), abs(c))
    if denom == 0:
        continue
    rel = abs(b - c) / denom
    if rel > tol:
        print(f"DRIFT    {name}: baseline {b:g} vs current {c:g} "
              f"({rel:.1%} > {tol:.0%})")
        fail += 1

total = len(base.keys() | cur.keys())
if fail:
    print(f"metrics_diff: {fail} discrepancies over {total} metrics")
    sys.exit(1)
print(f"metrics_diff: OK ({total} metrics within {tol:.0%})")
EOF
