// impacc-lint: static directive data-flow verifier for MPI+OpenACC
// sources using the paper's `#pragma acc mpi` extension.
//
//   impacc-lint [options] [file...]          (stdin when no files)
//     --format text|json|sarif   output format (default text)
//     --json                     shorthand for --format json
//     --sarif                    shorthand for --format sarif
//     --werror                   treat warnings as errors
//     --ranks N                  symbolic ranks for the multi-rank
//                                pass (default 4; < 2 disables it)
//     --unroll K                 loop iterations to unroll exactly in
//                                the rank simulation (default 4;
//                                0 = every loop widens)
//     --baseline FILE            drop findings recorded in FILE; only
//                                new findings are reported and counted
//     --write-baseline FILE      record current findings as file:line:
//                                rule keys into FILE and exit 0
//     --perf                     run the cost-model perf pass: predicted
//                                makespan + rules IMP030-IMP037
//     --no-perf                  disable the perf pass (the default)
//     --perf-system NAME         system preset pricing the perf pass:
//                                psg (default), beacon, titan
//     --perf-tpn N               ranks per node for the perf pass
//                                (default 0 = the preset's device count)
//     --explain IMPnnn           print the documentation of one rule
//                                and exit
//     -q, --quiet                suppress the summary line
//
// Exit status (most severe wins):
//   0  clean
//   1  warnings only
//   2  at least one error, or a bad option value (usage error)
//   3  parse failure (IMP012) or an I/O / unknown-option problem
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "trans/analysis/lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format text|json|sarif] [--json] [--sarif] "
               "[--werror] [--ranks N] [--unroll K] [--baseline FILE] "
               "[--write-baseline FILE] [--perf] [--no-perf] "
               "[--perf-system psg|beacon|titan] [--perf-tpn N] "
               "[--explain IMPnnn] [-q] [file...]\n"
               "  rule ids: IMP001..IMP024 (correctness), "
               "IMP030..IMP037 (performance)\n",
               argv0);
  return 3;
}

/// Parse a bounded integer option value. Returns false (with a message
/// naming the option, the offending value, and the accepted range) on
/// malformed input or out-of-range values.
bool parse_bounded(const char* opt, const char* text, long lo, long hi,
                   int* out) {
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  if (end == text || end == nullptr || *end != '\0' || n < lo || n > hi) {
    std::fprintf(stderr,
                 "impacc-lint: invalid value '%s' for %s: expected an "
                 "integer in %ld..%ld\n",
                 text, opt, lo, hi);
    return false;
  }
  *out = static_cast<int>(n);
  return true;
}

bool read_all(const std::string& path, std::string* out) {
  if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *out = ss.str();
    return true;
  }
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string finding_key(const std::string& file,
                        const impacc::trans::analysis::Diagnostic& d) {
  return file + ":" + std::to_string(d.line) + ":" + d.code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace impacc::trans::analysis;

  std::string format = "text";
  LintOptions options;
  bool quiet = false;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string explain_code;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format") {
      if (i + 1 >= argc) return usage(argv[0]);
      format = argv[++i];
    } else if (arg == "--json") {
      format = "json";
    } else if (arg == "--sarif") {
      format = "sarif";
    } else if (arg == "--werror") {
      options.warnings_as_errors = true;
    } else if (arg == "--ranks") {
      if (i + 1 >= argc) return usage(argv[0]);
      if (!parse_bounded("--ranks", argv[++i], 0, 64, &options.ranks)) {
        return 2;  // usage error: bad option value
      }
    } else if (arg == "--unroll") {
      if (i + 1 >= argc) return usage(argv[0]);
      if (!parse_bounded("--unroll", argv[++i], 0, 64, &options.unroll)) {
        return 2;
      }
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) return usage(argv[0]);
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      if (i + 1 >= argc) return usage(argv[0]);
      write_baseline_path = argv[++i];
    } else if (arg == "--perf") {
      options.perf = true;
    } else if (arg == "--no-perf") {
      options.perf = false;
    } else if (arg == "--perf-system") {
      if (i + 1 >= argc) return usage(argv[0]);
      options.perf_system = argv[++i];
      if (options.perf_system != "psg" && options.perf_system != "beacon" &&
          options.perf_system != "titan") {
        std::fprintf(stderr,
                     "impacc-lint: unknown system '%s' for --perf-system: "
                     "expected psg, beacon, or titan\n",
                     options.perf_system.c_str());
        return 2;
      }
    } else if (arg == "--perf-tpn") {
      if (i + 1 >= argc) return usage(argv[0]);
      if (!parse_bounded("--perf-tpn", argv[++i], 0, 1024,
                         &options.perf_tasks_per_node)) {
        return 2;
      }
    } else if (arg == "--explain") {
      if (i + 1 >= argc) return usage(argv[0]);
      explain_code = argv[++i];
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (!explain_code.empty()) {
    const RuleInfo* info = find_rule(explain_code);
    const RuleDoc* doc = find_rule_doc(explain_code);
    if (info == nullptr || doc == nullptr) {
      std::fprintf(stderr,
                   "impacc-lint: unknown rule '%s' for --explain: valid "
                   "rule ids are IMP001..IMP024 (correctness) and "
                   "IMP030..IMP037 (performance)\n",
                   explain_code.c_str());
      return 2;
    }
    std::printf("%s (%s): %s\n\n%s\n\nexample:\n%s\n\nfix: %s\n",
                info->code, severity_name(info->default_severity),
                info->summary, doc->doc, doc->example, doc->fix);
    return 0;
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return usage(argv[0]);
  }
  if (!baseline_path.empty() && !write_baseline_path.empty()) {
    std::fprintf(stderr,
                 "impacc-lint: --baseline and --write-baseline are "
                 "mutually exclusive\n");
    return 2;
  }
  if (inputs.empty()) inputs.push_back("");  // stdin

  std::vector<FileDiagnostics> files;
  for (const auto& path : inputs) {
    std::string source;
    if (!read_all(path, &source)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 3;
    }
    const LintResult result = lint_source(source, options);
    FileDiagnostics fd;
    fd.file = path.empty() ? "<stdin>" : path;
    fd.diagnostics = result.diagnostics;
    if (result.perf.ran) {
      fd.has_perf = true;
      fd.predicted_makespan = result.perf.makespan;
      fd.perf_exact = result.perf.exact;
      fd.perf_system = result.perf.system;
      fd.perf_ranks = result.perf.ranks;
    }
    files.push_back(std::move(fd));
  }

  // Snapshot mode: record every finding as a stable file:line:rule key.
  if (!write_baseline_path.empty()) {
    std::vector<std::string> keys;
    for (const auto& f : files) {
      for (const auto& d : f.diagnostics) {
        keys.push_back(finding_key(f.file, d));
      }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n",
                   write_baseline_path.c_str());
      return 3;
    }
    for (const auto& k : keys) out << k << "\n";
    if (!quiet) {
      std::fprintf(stderr, "wrote %zu finding(s) to %s\n", keys.size(),
                   write_baseline_path.c_str());
    }
    return 0;
  }

  // Compare mode: findings already in the baseline are dropped before
  // reporting and exit-code accounting, so only regressions fail CI.
  int baselined = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot open baseline %s\n",
                   baseline_path.c_str());
      return 3;
    }
    std::set<std::string> known;
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() &&
             (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (!line.empty()) known.insert(line);
    }
    for (auto& f : files) {
      std::vector<Diagnostic> kept;
      kept.reserve(f.diagnostics.size());
      for (auto& d : f.diagnostics) {
        if (known.count(finding_key(f.file, d)) != 0) {
          ++baselined;
        } else {
          kept.push_back(std::move(d));
        }
      }
      f.diagnostics = std::move(kept);
    }
  }

  int total_errors = 0;
  int total_warnings = 0;
  int total_parse_failures = 0;
  for (const auto& f : files) {
    for (const auto& d : f.diagnostics) {
      if (d.code == "IMP012") ++total_parse_failures;
      switch (d.severity) {
        case Severity::kError:
          ++total_errors;
          break;
        case Severity::kWarning:
          ++total_warnings;
          break;
        case Severity::kNote:
          break;
      }
    }
  }

  if (format == "json") {
    std::fputs(to_json(files).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(to_sarif(files).c_str(), stdout);
  } else {
    for (const auto& f : files) {
      for (const auto& d : f.diagnostics) {
        std::printf("%s\n", render_text(d, f.file).c_str());
      }
      if (f.has_perf) {
        std::printf("%s: predicted makespan %.6g s (%s, %d ranks, %s)\n",
                    f.file.c_str(), f.predicted_makespan,
                    f.perf_system.c_str(), f.perf_ranks,
                    f.perf_exact ? "exact model" : "approximate model");
      }
    }
    if (!quiet) {
      if (baselined > 0) {
        std::fprintf(stderr,
                     "%d error(s), %d warning(s) in %zu file(s) "
                     "(%d baselined)\n",
                     total_errors, total_warnings, files.size(),
                     baselined);
      } else {
        std::fprintf(stderr, "%d error(s), %d warning(s) in %zu file(s)\n",
                     total_errors, total_warnings, files.size());
      }
    }
  }
  if (total_parse_failures > 0) return 3;
  if (total_errors > 0) return 2;
  if (total_warnings > 0) return 1;
  return 0;
}
