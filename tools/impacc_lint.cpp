// impacc-lint: static directive data-flow verifier for MPI+OpenACC
// sources using the paper's `#pragma acc mpi` extension.
//
//   impacc-lint [options] [file...]          (stdin when no files)
//     --format text|json|sarif   output format (default text)
//     --json                     shorthand for --format json
//     --sarif                    shorthand for --format sarif
//     --werror                   treat warnings as errors
//     --ranks N                  symbolic ranks for the multi-rank
//                                pass (default 4; < 2 disables it)
//     -q, --quiet                suppress the summary line
//
// Exit status (most severe wins):
//   0  clean
//   1  warnings only
//   2  at least one error
//   3  parse failure (IMP012) or a usage / I/O problem
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "trans/analysis/lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format text|json|sarif] [--json] [--sarif] "
               "[--werror] [--ranks N] [-q] [file...]\n",
               argv0);
  return 3;
}

bool read_all(const std::string& path, std::string* out) {
  if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *out = ss.str();
    return true;
  }
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace impacc::trans::analysis;

  std::string format = "text";
  LintOptions options;
  bool quiet = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format") {
      if (i + 1 >= argc) return usage(argv[0]);
      format = argv[++i];
    } else if (arg == "--json") {
      format = "json";
    } else if (arg == "--sarif") {
      format = "sarif";
    } else if (arg == "--werror") {
      options.warnings_as_errors = true;
    } else if (arg == "--ranks") {
      if (i + 1 >= argc) return usage(argv[0]);
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 0 || n > 64) {
        std::fprintf(stderr, "--ranks expects an integer in 0..64\n");
        return usage(argv[0]);
      }
      options.ranks = static_cast<int>(n);
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return usage(argv[0]);
  }
  if (inputs.empty()) inputs.push_back("");  // stdin

  std::vector<FileDiagnostics> files;
  int total_errors = 0;
  int total_warnings = 0;
  int total_parse_failures = 0;
  for (const auto& path : inputs) {
    std::string source;
    if (!read_all(path, &source)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 3;
    }
    const LintResult result = lint_source(source, options);
    total_errors += result.errors;
    total_warnings += result.warnings;
    total_parse_failures += result.parse_failures;
    files.push_back(
        {path.empty() ? "<stdin>" : path, result.diagnostics});
  }

  if (format == "json") {
    std::fputs(to_json(files).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(to_sarif(files).c_str(), stdout);
  } else {
    for (const auto& f : files) {
      for (const auto& d : f.diagnostics) {
        std::printf("%s\n", render_text(d, f.file).c_str());
      }
    }
    if (!quiet) {
      std::fprintf(stderr, "%d error(s), %d warning(s) in %zu file(s)\n",
                   total_errors, total_warnings, files.size());
    }
  }
  if (total_parse_failures > 0) return 3;
  if (total_errors > 0) return 2;
  if (total_warnings > 0) return 1;
  return 0;
}
