#!/usr/bin/env python3
"""Lint MPI+OpenACC snippets embedded in C++ raw string literals.

Sources like examples/translate_demo.cpp carry directive programs inside
R"(...)" literals, invisible to impacc-lint's file-level scanner. This
gate extracts every raw string that contains an `#pragma acc` directive,
writes it to a temp file, and runs impacc-lint over it with the caller's
flags. Files ending in `.c` (e.g. examples/ring_acc_source.c, which is
translated rather than compiled) are linted whole, under their real
path. Exit code is the maximum lint exit code over all snippets (so the
0/1/2/3 severity scheme survives aggregation).

Usage: lint_embedded.py --lint <impacc-lint> [lint flags --] file...
"""
import re
import subprocess
import sys
import tempfile

RAW_STRING = re.compile(r'R"([A-Za-z_]{0,16})\((.*?)\)\1"', re.S)


def main(argv):
    if len(argv) < 3 or argv[1] != "--lint":
        print(__doc__, file=sys.stderr)
        return 3
    lint = argv[2]
    rest = argv[3:]
    if "--" in rest:
        split = rest.index("--")
        flags, files = rest[:split], rest[split + 1:]
    else:
        flags, files = [], rest

    worst = 0
    snippets = 0
    for path in files:
        try:
            text = open(path, encoding="utf-8", errors="replace").read()
        except OSError as err:
            print(f"lint_embedded: cannot read {path}: {err}",
                  file=sys.stderr)
            return 3
        if path.endswith(".c"):
            # Raw directive sources are a lint input as-is: no
            # extraction, and findings keep their real path/line.
            snippets += 1
            proc = subprocess.run([lint, *flags, path],
                                  capture_output=True, text=True)
            if proc.returncode != 0:
                print(f"-- findings in {path} --")
                sys.stdout.write(proc.stdout)
                sys.stderr.write(proc.stderr)
            worst = max(worst, proc.returncode)
            continue
        for i, m in enumerate(RAW_STRING.finditer(text)):
            body = m.group(2)
            if "#pragma acc" not in body:
                continue
            snippets += 1
            line = text.count("\n", 0, m.start()) + 1
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".c", delete=False) as tmp:
                tmp.write(body)
                name = tmp.name
            proc = subprocess.run([lint, *flags, name],
                                  capture_output=True, text=True)
            if proc.returncode != 0:
                label = f"{path}:{line} (embedded snippet #{i})"
                print(f"-- findings in {label} --")
                sys.stdout.write(
                    proc.stdout.replace(name, label))
                sys.stderr.write(
                    proc.stderr.replace(name, label))
            worst = max(worst, proc.returncode)
    print(f"lint_embedded: {snippets} snippet(s) checked, "
          f"worst exit {worst}")
    return worst


if __name__ == "__main__":
    sys.exit(main(sys.argv))
