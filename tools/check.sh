#!/usr/bin/env bash
# Pre-merge gate: warnings-as-errors build, the full test suite, the
# linter over every shipped MPI+OpenACC source, and the test suite again
# under AddressSanitizer and UBSan. Run from anywhere inside the repo.
#
#   tools/check.sh            # everything
#   tools/check.sh --fast     # skip the sanitizer builds
#
# Build trees go under build-check/ so a developer's normal build/ is
# never touched.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

jobs="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n== %s ==\n' "$*"; }

# --- 1. strict build + tests -------------------------------------------------
step "configure + build (IMPACC_WERROR=ON)"
cmake -B build-check/werror -S . -DIMPACC_WERROR=ON >/dev/null
cmake --build build-check/werror -j "$jobs"

step "test suite"
ctest --test-dir build-check/werror --output-on-failure --repeat until-pass:2 -j "$jobs"

# --- 2. lint the shipped directive sources -----------------------------------
step "impacc-lint over shipped sources (multi-rank pass on)"
lint="build-check/werror/tools/impacc-lint"
fail=0
for f in examples/*.c tests/lint_fixtures/clean_*.c; do
  [[ -e "$f" ]] || continue
  if ! "$lint" -q --werror --ranks 4 "$f"; then
    echo "lint FAILED: $f"
    fail=1
  fi
done
[[ "$fail" -eq 0 ]] || { echo "lint gate failed"; exit 1; }

step "impacc-lint over embedded directive snippets + raw sources"
python3 tools/lint_embedded.py --lint "$lint" --werror --ranks 4 -- \
  examples/*.cpp examples/*.c

step "impacc-lint golden fixtures exit with the documented code"
# Exit scheme: 0 clean, 1 warnings, 2 errors, 3 parse failure.
for f in tests/lint_fixtures/imp0*.c; do
  rc=0
  "$lint" -q "$f" 2>/dev/null || rc=$?
  case "$(basename "$f")" in
    imp012*) want=3 ;;
    imp006*|imp007*|imp009*|imp011*|imp020*|imp022*|imp024*) want=1 ;;
    *) want=2 ;;
  esac
  if [[ "$rc" -ne "$want" ]]; then
    echo "fixture $f: exit $rc, expected $want"
    exit 1
  fi
done

step "impacc-lint --werror promotes warning fixtures to exit 2"
rc=0
"$lint" -q --werror tests/lint_fixtures/imp006_async_never_waited.c \
  2>/dev/null || rc=$?
[[ "$rc" -eq 2 ]] || { echo "--werror should exit 2, got $rc"; exit 1; }

step "impacc-lint baseline round-trip (snapshot suppresses known findings)"
base="build-check/lint_baseline.txt"
mkdir -p build-check
"$lint" -q --ranks 4 --write-baseline "$base" tests/lint_fixtures/imp0*.c \
  >/dev/null 2>&1 || true
rc=0
"$lint" -q --ranks 4 --baseline "$base" tests/lint_fixtures/imp0*.c \
  >/dev/null 2>&1 || rc=$?
# Every finding in the snapshot is known, so the re-run is clean.
[[ "$rc" -eq 0 ]] || { echo "baselined run should exit 0, got $rc"; exit 1; }
# A finding not in the snapshot still fails.
rc=0
"$lint" -q --ranks 4 --baseline <(grep -v IMP021 "$base") \
  tests/lint_fixtures/imp021_buffer_reuse_loop.c >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 2 ]] || { echo "new finding should survive the baseline (exit 2), got $rc"; exit 1; }

# --- 2b. clang-tidy (when available) -----------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (bugprone / concurrency / performance)"
  cmake -B build-check/werror -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null
  git ls-files 'src/*.cpp' 'tools/*.cpp' \
    | xargs -P "$jobs" -n 8 clang-tidy -p build-check/werror --quiet
else
  step "clang-tidy not installed — skipping (CI runs it)"
fi

# --- 3. observability smoke ---------------------------------------------------
step "impacc-smoke (trace + metrics + critical-path self-validation)"
mkdir -p build-check/obs
build-check/werror/tools/impacc-smoke \
  --trace build-check/obs/smoke_trace.json \
  --metrics build-check/obs/smoke_metrics.json \
  --graph build-check/obs/smoke_graph.cpg

step "trace/metrics JSON lint"
python3 -m json.tool build-check/obs/smoke_trace.json >/dev/null
python3 -m json.tool build-check/obs/smoke_metrics.json >/dev/null

step "impacc-prof over the smoke graph (reconciliation gate)"
build-check/werror/tools/impacc-prof build-check/obs/smoke_graph.cpg --top 5

step "metrics_diff vs committed baseline"
tools/metrics_diff.sh BENCH_metrics.json build-check/obs/smoke_metrics.json

# --- 4. benchmark JSON snapshots (smoke) -------------------------------------
step "bench_json.sh --smoke"
tools/bench_json.sh --smoke --build-dir build-check/werror \
  --out-dir build-check/bench

# --- 5. sanitizers -----------------------------------------------------------
if [[ "$fast" -eq 0 ]]; then
  for san in address undefined thread; do
    step "test suite under -fsanitize=$san"
    cmake -B "build-check/$san" -S . -DIMPACC_SANITIZE="$san" >/dev/null
    cmake --build "build-check/$san" -j "$jobs"
    ctest --test-dir "build-check/$san" --output-on-failure --repeat until-pass:2 -j "$jobs"
  done
fi

step "all checks passed"
