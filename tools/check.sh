#!/usr/bin/env bash
# Pre-merge gate: warnings-as-errors build, the full test suite, the
# linter over every shipped MPI+OpenACC source, and the test suite again
# under AddressSanitizer and UBSan. Run from anywhere inside the repo.
#
#   tools/check.sh            # everything
#   tools/check.sh --fast     # skip the sanitizer builds
#
# Build trees go under build-check/ so a developer's normal build/ is
# never touched.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

jobs="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n== %s ==\n' "$*"; }

# --- 1. strict build + tests -------------------------------------------------
step "configure + build (IMPACC_WERROR=ON)"
cmake -B build-check/werror -S . -DIMPACC_WERROR=ON >/dev/null
cmake --build build-check/werror -j "$jobs"

step "test suite"
ctest --test-dir build-check/werror --output-on-failure --repeat until-pass:2 -j "$jobs"

# --- 2. lint the shipped directive sources -----------------------------------
step "impacc-lint over shipped sources (multi-rank pass on)"
lint="build-check/werror/tools/impacc-lint"
fail=0
for f in examples/*.c tests/lint_fixtures/clean_*.c; do
  [[ -e "$f" ]] || continue
  if ! "$lint" -q --werror --ranks 4 "$f"; then
    echo "lint FAILED: $f"
    fail=1
  fi
done
[[ "$fail" -eq 0 ]] || { echo "lint gate failed"; exit 1; }

step "impacc-lint over embedded directive snippets + raw sources"
python3 tools/lint_embedded.py --lint "$lint" --werror --ranks 4 -- \
  examples/*.cpp examples/*.c

step "impacc-lint golden fixtures exit with the documented code"
# Exit scheme: 0 clean, 1 warnings, 2 errors, 3 parse failure.
for f in tests/lint_fixtures/imp0*.c; do
  rc=0
  "$lint" -q "$f" 2>/dev/null || rc=$?
  case "$(basename "$f")" in
    imp012*) want=3 ;;
    imp006*|imp007*|imp009*|imp011*|imp020*|imp022*|imp024*) want=1 ;;
    imp03*) want=0 ;;  # perf fixtures only fire under --perf (checked below)
    *) want=2 ;;
  esac
  if [[ "$rc" -ne "$want" ]]; then
    echo "fixture $f: exit $rc, expected $want"
    exit 1
  fi
done

step "impacc-lint --werror promotes warning fixtures to exit 2"
rc=0
"$lint" -q --werror tests/lint_fixtures/imp006_async_never_waited.c \
  2>/dev/null || rc=$?
[[ "$rc" -eq 2 ]] || { echo "--werror should exit 2, got $rc"; exit 1; }

step "impacc-lint baseline round-trip (snapshot suppresses known findings)"
base="build-check/lint_baseline.txt"
mkdir -p build-check
"$lint" -q --ranks 4 --write-baseline "$base" tests/lint_fixtures/imp0*.c \
  >/dev/null 2>&1 || true
rc=0
"$lint" -q --ranks 4 --baseline "$base" tests/lint_fixtures/imp0*.c \
  >/dev/null 2>&1 || rc=$?
# Every finding in the snapshot is known, so the re-run is clean.
[[ "$rc" -eq 0 ]] || { echo "baselined run should exit 0, got $rc"; exit 1; }
# A finding not in the snapshot still fails.
rc=0
"$lint" -q --ranks 4 --baseline <(grep -v IMP021 "$base") \
  tests/lint_fixtures/imp021_buffer_reuse_loop.c >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 2 ]] || { echo "new finding should survive the baseline (exit 2), got $rc"; exit 1; }

# --- 2b. perf lint (--perf): prediction + IMP030-IMP037 ----------------------
step "impacc-lint --perf predicts a makespan for every example"
for f in examples/*.c; do
  out="$("$lint" --perf --ranks 4 "$f")" \
    || { echo "perf lint FAILED: $f"; exit 1; }
  grep -q "predicted makespan" <<<"$out" \
    || { echo "no predicted makespan for $f"; exit 1; }
done

step "impacc-lint --perf golden fixtures (fire seeded, silent on clean)"
perf_case() {  # file expected-exit extra-flags...
  local f="$1" want="$2"; shift 2
  local rc=0
  "$lint" -q --perf "$@" "tests/lint_fixtures/$f" >/dev/null 2>&1 || rc=$?
  [[ "$rc" -eq "$want" ]] \
    || { echo "perf fixture $f: exit $rc, expected $want"; exit 1; }
}
perf_case imp030_blocking_pair.c 1
perf_case imp031_full_update.c 1
perf_case imp032_loop_copyin.c 1
perf_case imp033_p2p_allgather.c 1 --perf-tpn 2
perf_case imp034_flat_collective.c 1 --perf-system titan --perf-tpn 1
perf_case imp035_serialized_sends.c 1
perf_case imp036_chunking_off.c 1 --perf-system titan --perf-tpn 1
perf_case imp037_early_wait.c 1
perf_case clean_perf_overlap.c 0
perf_case clean_update_subarray.c 0
perf_case clean_loop_copyin_needed.c 0
perf_case clean_neighbor_ring.c 0 --perf-tpn 2
perf_case clean_flat_small.c 0 --perf-system titan --perf-tpn 1
perf_case clean_two_queues.c 0
perf_case clean_chunked.c 0 --perf-system titan --perf-tpn 1
perf_case clean_late_wait.c 0

step "impacc-lint --perf baseline round-trip"
pbase="build-check/lint_perf_baseline.txt"
mkdir -p build-check
"$lint" -q --perf --write-baseline "$pbase" \
  tests/lint_fixtures/imp030_blocking_pair.c >/dev/null 2>&1 || true
rc=0
"$lint" -q --perf --baseline "$pbase" \
  tests/lint_fixtures/imp030_blocking_pair.c >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 0 ]] || { echo "baselined --perf run should exit 0, got $rc"; exit 1; }

step "impacc-lint --no-perf output is byte-identical to flag-off"
"$lint" examples/ring_acc_source.c > build-check/lint_plain.out 2>&1 || true
"$lint" --no-perf examples/ring_acc_source.c \
  > build-check/lint_noperf.out 2>&1 || true
cmp build-check/lint_plain.out build-check/lint_noperf.out \
  || { echo "--no-perf output differs from flag-off output"; exit 1; }

# --- 2c. clang-tidy (when available) -----------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (bugprone / concurrency / performance)"
  cmake -B build-check/werror -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null
  git ls-files 'src/*.cpp' 'tools/*.cpp' \
    | xargs -P "$jobs" -n 8 clang-tidy -p build-check/werror --quiet
else
  step "clang-tidy not installed — skipping (CI runs it)"
fi

# --- 3. observability smoke ---------------------------------------------------
step "impacc-smoke (trace + metrics + critical-path self-validation)"
mkdir -p build-check/obs
build-check/werror/tools/impacc-smoke \
  --trace build-check/obs/smoke_trace.json \
  --metrics build-check/obs/smoke_metrics.json \
  --graph build-check/obs/smoke_graph.cpg

step "trace/metrics JSON lint"
python3 -m json.tool build-check/obs/smoke_trace.json >/dev/null
python3 -m json.tool build-check/obs/smoke_metrics.json >/dev/null

step "impacc-prof over the smoke graph (reconciliation gate)"
build-check/werror/tools/impacc-prof build-check/obs/smoke_graph.cpg --top 5

step "impacc-prof --compare (static prediction vs measured critical path)"
# perf_staged_p2p.c is the smoke workload in source form; the static
# prediction must land within the documented factor (docs/LINT.md) of
# the measured makespan recorded in the smoke graph.
"$lint" --perf --ranks 2 --unroll 8 --perf-system titan --perf-tpn 1 \
  --format json tests/lint_fixtures/perf_staged_p2p.c \
  > build-check/obs/staged_p2p_perf.json || true
build-check/werror/tools/impacc-prof build-check/obs/smoke_graph.cpg \
  --compare build-check/obs/staged_p2p_perf.json
# Same gate on the Fig. 14 Jacobi configuration.
build-check/werror/tools/impacc-smoke --jacobi \
  --graph build-check/obs/jacobi_graph.cpg >/dev/null
"$lint" --perf --ranks 8 --perf-system psg --perf-tpn 8 --format json \
  tests/lint_fixtures/perf_jacobi.c \
  > build-check/obs/jacobi_perf.json || true
build-check/werror/tools/impacc-prof build-check/obs/jacobi_graph.cpg \
  --compare build-check/obs/jacobi_perf.json

step "metrics_diff vs committed baseline"
tools/metrics_diff.sh BENCH_metrics.json build-check/obs/smoke_metrics.json

# --- 3b. fault-injection matrix ----------------------------------------------
# Each point kills a different victim at a different time (fixed node and
# device targets plus seeds 1-3) and aborts unless the recovered run
# reproduces the fault-free checksum bit-for-bit with a quiescent
# teardown. The same seeds drive CI's fault-matrix job.
step "fault-injection seed sweep (checksum-gated recovery)"
IMPACC_BENCH_SMOKE=1 build-check/werror/bench/ft_recovery \
  --benchmark_format=console >/dev/null

# --- 4. benchmark JSON snapshots (smoke) -------------------------------------
step "bench_json.sh --smoke"
tools/bench_json.sh --smoke --build-dir build-check/werror \
  --out-dir build-check/bench

# --- 5. sanitizers -----------------------------------------------------------
if [[ "$fast" -eq 0 ]]; then
  for san in address undefined thread; do
    step "test suite under -fsanitize=$san"
    cmake -B "build-check/$san" -S . -DIMPACC_SANITIZE="$san" >/dev/null
    cmake --build "build-check/$san" -j "$jobs"
    ctest --test-dir "build-check/$san" --output-on-failure --repeat until-pass:2 -j "$jobs"
  done
fi

step "all checks passed"
