// impacc-translate: the IMPACC compiler driver (directive surface).
//
// Translates an MPI+OpenACC C-like source file — including the paper's
// #pragma acc mpi extension — into impacc runtime API calls.
//
//   impacc-translate [options] [input.c]     (stdin when omitted)
//     -o <file>            output file (stdout when omitted)
//     --flops-per-iter <f> work-estimate flops per loop iteration
//     --bytes-per-iter <f> work-estimate bytes per loop iteration
//     --namespace <ns>     API namespace prefix (default "impacc")
//     --lint               run impacc-lint first; refuse to lower sources
//                          with error-level diagnostics
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "trans/translator.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-o out.cpp] [--flops-per-iter F] "
               "[--bytes-per-iter B] [--namespace NS] [--lint] [input.c]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  impacc::trans::TranslateOptions options;
  std::string input_path;
  std::string output_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-o") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      output_path = v;
    } else if (arg == "--flops-per-iter") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.flops_per_iter = std::atof(v);
    } else if (arg == "--bytes-per-iter") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.bytes_per_iter = std::atof(v);
    } else if (arg == "--namespace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.api_ns = v;
    } else if (arg == "--lint") {
      options.lint = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      input_path = arg;
    }
  }

  std::string source;
  if (input_path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(input_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  const auto result = impacc::trans::translate_source(source, options);
  for (const auto& w : result.warnings) {
    std::fprintf(stderr, "%s: warning: %s\n",
                 input_path.empty() ? "<stdin>" : input_path.c_str(),
                 w.c_str());
  }
  for (const auto& e : result.errors) {
    std::fprintf(stderr, "%s: error: %s\n",
                 input_path.empty() ? "<stdin>" : input_path.c_str(),
                 e.c_str());
  }
  if (!result.ok) return 1;

  if (output_path.empty()) {
    std::fputs(result.output.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
      return 1;
    }
    out << result.output;
  }
  std::fprintf(stderr, "%d directives, %d MPI calls translated\n",
               result.directives_translated, result.mpi_calls_translated);
  return 0;
}
