#!/usr/bin/env bash
# Machine-readable benchmark snapshots.
#
# Runs the p2p bandwidth bench (fig09, including the chunk-pipeline
# sweep), the Jacobi speedup bench (fig13), the collective-latency bench
# (two-level vs flat), and the handler ping-storm bench (batched rings vs
# per-message loop; real wall-clock, not simulated time) with
# --benchmark_format=json, then distills each google-benchmark report
# into a flat { "<benchmark name>": <seconds> } map:
#
#   BENCH_p2p.json     from fig09_p2p
#   BENCH_jacobi.json  from fig13_jacobi
#   BENCH_coll.json    from coll_latency
#   BENCH_handler.json from handler_storm
#   BENCH_ft.json      from ft_recovery (checksum-gated fault recovery)
#
#   tools/bench_json.sh [--smoke] [--build-dir DIR] [--out-dir DIR]
#
# --smoke sets IMPACC_BENCH_SMOKE=1 so every series runs only at its
# cheapest points (the CI configuration). The committed top-level
# BENCH_*.json files are produced by a full (non-smoke) run.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"

build="build"
out="$repo"
smoke=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1; shift ;;
    --build-dir) build="$2"; shift 2 ;;
    --out-dir) out="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

mkdir -p "$out"

# Distill a google-benchmark JSON report into { name: seconds }.
distill() {
  local raw="$1" dest="$2"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$raw" "$dest" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
series = {
    b["name"]: b["real_time"] * scale.get(b.get("time_unit", "ns"), 1e-9)
    for b in doc.get("benchmarks", [])
}
with open(sys.argv[2], "w") as f:
    json.dump(series, f, indent=2, sort_keys=True)
    f.write("\n")
EOF
  else
    # awk fallback: benchmark objects list "name" before "real_time" and
    # "time_unit"; "run_name" does not match the anchored "name" pattern.
    awk '
      /^[[:space:]]*"name":/ {
        s = $0
        sub(/^[[:space:]]*"name":[[:space:]]*"/, "", s); sub(/",?$/, "", s)
        name = s; next
      }
      /^[[:space:]]*"real_time":/ {
        s = $0
        sub(/^[[:space:]]*"real_time":[[:space:]]*/, "", s); sub(/,?$/, "", s)
        rt = s + 0; next
      }
      /^[[:space:]]*"time_unit":/ && name != "" {
        s = $0
        sub(/^[[:space:]]*"time_unit":[[:space:]]*"/, "", s); sub(/",?$/, "", s)
        scale = s == "ns" ? 1e-9 : s == "us" ? 1e-6 : s == "ms" ? 1e-3 : 1
        if (n++ > 0) printf(",\n")
        printf("  \"%s\": %.9g", name, rt * scale)
        name = ""
      }
      BEGIN { printf("{\n") }
      END   { printf("\n}\n") }
    ' "$raw" > "$dest"
  fi
}

snapshot() {
  local bin="$1" dest="$2"
  [[ -x "$build/bench/$bin" ]] || {
    echo "missing $build/bench/$bin — build the bench targets first" >&2
    exit 1
  }
  local raw
  raw="$(mktemp)"
  echo "== $bin -> $dest"
  IMPACC_BENCH_SMOKE="$smoke" "$build/bench/$bin" \
    --benchmark_format=json > "$raw"
  distill "$raw" "$dest"
  rm -f "$raw"
}

snapshot fig09_p2p "$out/BENCH_p2p.json"
snapshot fig13_jacobi "$out/BENCH_jacobi.json"
snapshot coll_latency "$out/BENCH_coll.json"
snapshot handler_storm "$out/BENCH_handler.json"
snapshot ft_recovery "$out/BENCH_ft.json"
echo "== benchmark snapshots written to $out"
