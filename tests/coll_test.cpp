// Tests for the node-aware hierarchical collectives (section 3.5):
// conformance against reference implementations with hier_collectives on
// and off, operator/datatype coverage, device-clause buffers, overflow
// guards, fabric-traffic accounting, and the closed-form cost bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <type_traits>
#include <vector>

// GoogleTest < 1.12 has no GTEST_FLAG_SET; fall back to assigning the
// legacy ::testing::FLAGS_gtest_* variable directly.
#ifndef GTEST_FLAG_SET
#define GTEST_FLAG_SET(name, value) \
  (void)(::testing::GTEST_FLAG(name) = (value))
#endif

#include "impacc.h"
#include "sim/costmodel.h"

namespace impacc::mpi {
namespace {

core::LaunchOptions options_for(sim::ClusterDesc cluster, bool hier,
                                core::ExecMode mode =
                                    core::ExecMode::kFunctional) {
  core::LaunchOptions o;
  o.cluster = std::move(cluster);
  o.scheduler_workers = 1;  // keep gtest assertions single-threaded
  o.features.hier_collectives = hier;
  o.mode = mode;
  return o;
}

/// Three nodes with 3, 1 and 5 accelerators: odd, uneven ranks-per-node,
/// so group/leader bookkeeping cannot rely on uniform node sizes.
sim::ClusterDesc odd_cluster() {
  sim::ClusterDesc c = sim::make_psg(3);
  c.nodes[0].devices.resize(3);
  c.nodes[1].devices.resize(1);
  c.nodes[2].devices.resize(5);
  return c;
}

/// Operator-aware element values, small enough that every reduction result
/// is exact in every datatype (products stay <= 2^12, sums stay small;
/// logical inputs mix zeros and ones).
int gen(Op op, int rank, int i) {
  switch (op) {
    case Op::kProd:
      return 1 + ((rank + i) & 1);
    case Op::kLand:
    case Op::kLor:
      return (rank * 3 + i) % 3 == 0 ? 0 : 1;
    default:
      return (rank * 7 + i * 3) % 5 + 1;
  }
}

/// Reference combine with the same typed arithmetic as apply_op, so
/// wrapping integer types agree too.
template <typename T>
T ref_combine(Op op, T a, T b) {
  switch (op) {
    case Op::kSum: return static_cast<T>(a + b);
    case Op::kProd: return static_cast<T>(a * b);
    case Op::kMax: return a < b ? b : a;
    case Op::kMin: return b < a ? b : a;
    case Op::kLand: return static_cast<T>(a != T{} && b != T{});
    case Op::kLor: return static_cast<T>(a != T{} || b != T{});
    case Op::kBand:
    case Op::kBor:
      if constexpr (std::is_integral_v<T>) {
        return op == Op::kBand ? static_cast<T>(a & b)
                               : static_cast<T>(a | b);
      }
      break;
  }
  return a;
}

/// Reductions (allreduce, reduce to two roots, scan, reduce_scatter_block)
/// against rank-order reference folds. All inputs are exact, so any
/// association the algorithms use must give bit-equal answers.
template <typename T>
void check_reductions(Comm c, Datatype dt, Op op) {
  const int size = comm_size(c);
  const int rank = comm_rank(c);
  constexpr int kCount = 5;
  std::vector<T> in(kCount), out(kCount), ref(kCount);
  for (int i = 0; i < kCount; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<T>(gen(op, rank, i));
  }
  for (int i = 0; i < kCount; ++i) {
    T acc = static_cast<T>(gen(op, 0, i));
    for (int r = 1; r < size; ++r) {
      acc = ref_combine(op, acc, static_cast<T>(gen(op, r, i)));
    }
    ref[static_cast<std::size_t>(i)] = acc;
  }

  std::fill(out.begin(), out.end(), T{});
  allreduce(in.data(), out.data(), kCount, dt, op, c);
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(+out[static_cast<std::size_t>(i)],
              +ref[static_cast<std::size_t>(i)])
        << "allreduce size=" << size << " i=" << i;
  }

  for (const int root : {0, size - 1}) {
    std::fill(out.begin(), out.end(), T{});
    reduce(in.data(), out.data(), kCount, dt, op, root, c);
    if (rank == root) {
      for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(+out[static_cast<std::size_t>(i)],
                  +ref[static_cast<std::size_t>(i)])
            << "reduce size=" << size << " root=" << root << " i=" << i;
      }
    }
  }

  std::fill(out.begin(), out.end(), T{});
  scan(in.data(), out.data(), kCount, dt, op, c);
  for (int i = 0; i < kCount; ++i) {
    T acc = static_cast<T>(gen(op, 0, i));
    for (int r = 1; r <= rank; ++r) {
      acc = ref_combine(op, acc, static_cast<T>(gen(op, r, i)));
    }
    EXPECT_EQ(+out[static_cast<std::size_t>(i)], +acc)
        << "scan size=" << size << " i=" << i;
  }

  constexpr int kBlk = 2;
  std::vector<T> vin(static_cast<std::size_t>(kBlk * size));
  std::vector<T> vout(kBlk, T{});
  for (int i = 0; i < kBlk * size; ++i) {
    vin[static_cast<std::size_t>(i)] = static_cast<T>(gen(op, rank, i));
  }
  reduce_scatter_block(vin.data(), vout.data(), kBlk, dt, op, c);
  for (int i = 0; i < kBlk; ++i) {
    const int e = rank * kBlk + i;
    T acc = static_cast<T>(gen(op, 0, e));
    for (int r = 1; r < size; ++r) {
      acc = ref_combine(op, acc, static_cast<T>(gen(op, r, e)));
    }
    EXPECT_EQ(+vout[static_cast<std::size_t>(i)], +acc)
        << "reduce_scatter_block size=" << size << " i=" << i;
  }
}

/// Data-movement collectives (bcast, gather(v), scatter(v), allgather,
/// alltoall, barrier) against directly computed expectations.
void check_movement(Comm c) {
  const int size = comm_size(c);
  const int rank = comm_rank(c);
  constexpr int kB = 3;  // elements per rank block
  auto val = [](int r, int i) { return r * 1000 + i; };

  for (const int root : {0, size / 2, size - 1}) {
    std::vector<int> buf(kB * 4);
    if (rank == root) {
      for (int i = 0; i < kB * 4; ++i) {
        buf[static_cast<std::size_t>(i)] = val(root, i);
      }
    }
    bcast(buf.data(), kB * 4, Datatype::kInt, root, c);
    for (int i = 0; i < kB * 4; ++i) {
      EXPECT_EQ(buf[static_cast<std::size_t>(i)], val(root, i))
          << "bcast size=" << size << " root=" << root;
    }
  }

  std::vector<int> mine(kB);
  for (int i = 0; i < kB; ++i) {
    mine[static_cast<std::size_t>(i)] = val(rank, i);
  }
  for (const int root : {0, size - 1}) {
    std::vector<int> all(static_cast<std::size_t>(kB * size), -1);
    gather(mine.data(), kB, Datatype::kInt, all.data(), kB, Datatype::kInt,
           root, c);
    if (rank == root) {
      for (int r = 0; r < size; ++r) {
        for (int i = 0; i < kB; ++i) {
          EXPECT_EQ(all[static_cast<std::size_t>(r * kB + i)], val(r, i))
              << "gather size=" << size << " root=" << root;
        }
      }
    }
  }

  // gatherv / scatterv with reversed displacements.
  {
    const int root = size / 2;
    std::vector<int> counts(static_cast<std::size_t>(size), kB);
    std::vector<int> displs(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      displs[static_cast<std::size_t>(r)] = (size - 1 - r) * kB;
    }
    std::vector<int> all(static_cast<std::size_t>(kB * size), -1);
    gatherv(mine.data(), kB, Datatype::kInt, all.data(), counts.data(),
            displs.data(), Datatype::kInt, root, c);
    if (rank == root) {
      for (int r = 0; r < size; ++r) {
        for (int i = 0; i < kB; ++i) {
          EXPECT_EQ(all[static_cast<std::size_t>((size - 1 - r) * kB + i)],
                    val(r, i))
              << "gatherv size=" << size;
        }
      }
    }
    std::vector<int> packed(static_cast<std::size_t>(kB * size));
    if (rank == root) {
      for (int r = 0; r < size; ++r) {
        for (int i = 0; i < kB; ++i) {
          packed[static_cast<std::size_t>((size - 1 - r) * kB + i)] =
              val(r, i) + 7;
        }
      }
    }
    std::vector<int> block(kB, -1);
    scatterv(packed.data(), counts.data(), displs.data(), Datatype::kInt,
             block.data(), kB, Datatype::kInt, root, c);
    for (int i = 0; i < kB; ++i) {
      EXPECT_EQ(block[static_cast<std::size_t>(i)], val(rank, i) + 7)
          << "scatterv size=" << size;
    }
  }

  for (const int root : {0, size - 1}) {
    std::vector<int> packed(static_cast<std::size_t>(kB * size));
    if (rank == root) {
      for (int r = 0; r < size; ++r) {
        for (int i = 0; i < kB; ++i) {
          packed[static_cast<std::size_t>(r * kB + i)] = val(r, i) + 13;
        }
      }
    }
    std::vector<int> block(kB, -1);
    scatter(packed.data(), kB, Datatype::kInt, block.data(), kB,
            Datatype::kInt, root, c);
    for (int i = 0; i < kB; ++i) {
      EXPECT_EQ(block[static_cast<std::size_t>(i)], val(rank, i) + 13)
          << "scatter size=" << size << " root=" << root;
    }
  }

  {
    std::vector<int> all(static_cast<std::size_t>(kB * size), -1);
    allgather(mine.data(), kB, Datatype::kInt, all.data(), kB,
              Datatype::kInt, c);
    for (int r = 0; r < size; ++r) {
      for (int i = 0; i < kB; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(r * kB + i)], val(r, i))
            << "allgather size=" << size;
      }
    }
  }

  {
    std::vector<int> sbuf(static_cast<std::size_t>(kB * size));
    std::vector<int> rbuf(static_cast<std::size_t>(kB * size), -1);
    for (int j = 0; j < size; ++j) {
      for (int i = 0; i < kB; ++i) {
        sbuf[static_cast<std::size_t>(j * kB + i)] =
            rank * 10000 + j * 100 + i;
      }
    }
    alltoall(sbuf.data(), kB, Datatype::kInt, rbuf.data(), kB,
             Datatype::kInt, c);
    for (int j = 0; j < size; ++j) {
      for (int i = 0; i < kB; ++i) {
        EXPECT_EQ(rbuf[static_cast<std::size_t>(j * kB + i)],
                  j * 10000 + rank * 100 + i)
            << "alltoall size=" << size;
      }
    }
  }

  barrier(c);
}

/// Sweep sub-communicator sizes 1..9 carved out of the world with
/// comm_split, running the whole conformance battery on each.
void conformance_sweep() {
  auto w = world();
  const int wsize = comm_size(w);
  const int wrank = comm_rank(w);
  const int max_size = std::min(9, wsize);
  for (int s = 1; s <= max_size; ++s) {
    Comm c = comm_split(w, wrank < s ? 0 : -1, wrank);
    if (c == nullptr) continue;
    ASSERT_EQ(comm_size(c), s);
    check_movement(c);
    check_reductions<int>(c, Datatype::kInt, Op::kSum);
    check_reductions<double>(c, Datatype::kDouble, Op::kSum);
  }
}

TEST(CollConformance, SweepMultiNodeUniform) {
  for (const bool hier : {false, true}) {
    launch(options_for(sim::make_beacon(3), hier), [] {
      conformance_sweep();
    });
  }
}

TEST(CollConformance, SweepOddRanksPerNode) {
  for (const bool hier : {false, true}) {
    launch(options_for(odd_cluster(), hier), [] { conformance_sweep(); });
  }
}

TEST(CollConformance, SweepOneRankPerNode) {
  for (const bool hier : {false, true}) {
    launch(options_for(sim::make_titan(6), hier), [] {
      conformance_sweep();
    });
  }
}

TEST(CollConformance, SweepSingleNode) {
  for (const bool hier : {false, true}) {
    launch(options_for(sim::make_psg(1), hier), [] { conformance_sweep(); });
  }
}

TEST(CollConformance, AllOpsAllDatatypes) {
  for (const bool hier : {false, true}) {
    launch(options_for(sim::make_beacon(3), hier), [] {
      auto w = world();
      for (const Op op : {Op::kSum, Op::kProd, Op::kMax, Op::kMin, Op::kLand,
                          Op::kLor, Op::kBand, Op::kBor}) {
        const bool bitwise = op == Op::kBand || op == Op::kBor;
        check_reductions<unsigned char>(w, Datatype::kByte, op);
        check_reductions<unsigned char>(w, Datatype::kChar, op);
        check_reductions<int>(w, Datatype::kInt, op);
        check_reductions<long>(w, Datatype::kLong, op);
        check_reductions<std::uint64_t>(w, Datatype::kUint64, op);
        if (!bitwise) {  // bitwise ops on floating datatypes abort
          check_reductions<float>(w, Datatype::kFloat, op);
          check_reductions<double>(w, Datatype::kDouble, op);
        }
      }
    });
  }
}

TEST(CollConformance, DeviceClauseBcastDelivers) {
  for (const bool hier : {false, true}) {
    launch(options_for(sim::make_psg(2), hier), [] {
      auto w = world();
      const int r = comm_rank(w);
      constexpr int kN = 256;
      constexpr std::uint64_t kBytes = kN * sizeof(int);
      std::vector<int> host(kN, 0);
      if (r == 0) std::iota(host.begin(), host.end(), 500);
      acc::copyin(host.data(), kBytes);
      if (r == 0) {
        acc::mpi({.send_device = true});
      } else {
        acc::mpi({.recv_device = true});
      }
      bcast(host.data(), kN, Datatype::kInt, 0, w);
      // The payload lands in the device copies; bring it back to check.
      acc::update_self(host.data(), kBytes);
      for (int i = 0; i < kN; ++i) {
        ASSERT_EQ(host[static_cast<std::size_t>(i)], 500 + i) << "rank " << r;
      }
      acc::del(host.data());
    });
  }
}

TEST(CollEdge, BarrierNonPowerOfTwoAndSingleton) {
  // 9 ranks over 3/1/5 nodes, 7 leaders on titan, and size-1 communicators
  // all complete (regression for the flat barrier's precedence bug, which
  // only showed on non-power-of-two layouts).
  for (const bool hier : {false, true}) {
    launch(options_for(odd_cluster(), hier), [] {
      auto w = world();
      barrier(w);
      // Singleton communicators: every rank its own color.
      Comm mine = comm_split(w, comm_rank(w), 0);
      ASSERT_NE(mine, nullptr);
      ASSERT_EQ(comm_size(mine), 1);
      barrier(mine);
      barrier(w);
    });
    const auto r = launch(
        options_for(sim::make_titan(7), hier, core::ExecMode::kModelOnly),
        [] { barrier(world()); });
    EXPECT_GT(r.makespan, 0.0);
  }
}

TEST(CollEdge, NearIntMaxCountsSucceed) {
  // count * size must be computed in 64-bit: counts near INT_MAX / size
  // stay legal in both the hierarchical and the flat algorithms.
  for (const bool hier : {false, true}) {
    launch(options_for(sim::make_titan(4), hier, core::ExecMode::kModelOnly),
           [] {
             auto w = world();  // 4 ranks
             const int count = INT_MAX / 4 - 8;
             reduce_scatter_block(nullptr, nullptr, count, Datatype::kInt,
                                  Op::kSum, w);
             allgather(nullptr, count, Datatype::kInt, nullptr, count,
                       Datatype::kInt, w);
           });
  }
}

using CollDeathTest = ::testing::Test;

TEST(CollDeathTest, ReduceScatterBlockCountOverflowAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        launch(options_for(sim::make_psg(1), true,
                           core::ExecMode::kModelOnly),
               [] {
                 reduce_scatter_block(nullptr, nullptr, INT_MAX / 4,
                                      Datatype::kInt, Op::kSum, world());
               });
      },
      "overflows");
}

TEST(CollDeathTest, AllgatherCountOverflowAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        launch(options_for(sim::make_psg(1), false,
                           core::ExecMode::kModelOnly),
               [] {
                 allgather(nullptr, INT_MAX / 4, Datatype::kInt, nullptr,
                           INT_MAX / 4, Datatype::kInt, world());
               });
      },
      "overflows");
}

LaunchResult run_with_metrics(sim::ClusterDesc cluster, bool hier,
                              const std::function<void()>& body) {
  auto o = options_for(std::move(cluster), hier);
  o.metrics_path = "-";
  return launch(o, body);
}

TEST(CollTraffic, HierPayloadCrossesFabricOncePerNode) {
  // psg(3): 3 nodes x 8 ranks. The node-aware algorithms put each payload
  // on the wire the minimum number of times; the counters are exact.
  const int G = 3;
  const int P = 24;
  {
    constexpr int kCount = 1024;  // 4 KiB broadcast payload
    const auto r = run_with_metrics(sim::make_psg(3), true, [] {
      std::vector<int> buf(1024, 1);
      bcast(buf.data(), 1024, Datatype::kInt, 0, world());
    });
    EXPECT_DOUBLE_EQ(r.metrics.value("coll.internode.bytes"),
                     (G - 1) * kCount * 4.0);
    EXPECT_DOUBLE_EQ(r.metrics.value("coll.bcast.seconds.count"),
                     static_cast<double>(P));
  }
  {
    constexpr int kBlk = 256;  // 1 KiB per-rank block
    const auto r = run_with_metrics(sim::make_psg(3), true, [] {
      std::vector<int> mine(kBlk, 2), all(kBlk * 24);
      allgather(mine.data(), kBlk, Datatype::kInt, all.data(), kBlk,
                Datatype::kInt, world());
    });
    // Ring of per-node bundles: every node's data crosses to each other
    // node exactly once -> (G-1) * total payload.
    EXPECT_DOUBLE_EQ(r.metrics.value("coll.internode.bytes"),
                     (G - 1) * static_cast<double>(P) * kBlk * 4.0);
  }
  {
    constexpr int kBlk = 64;
    const auto r = run_with_metrics(sim::make_psg(3), true, [] {
      std::vector<int> in(kBlk * 24, 1), out(kBlk);
      reduce_scatter_block(in.data(), out.data(), kBlk, Datatype::kInt,
                           Op::kSum, world());
    });
    // Pairwise block exchange: each rank's block crosses once to the node
    // that owns it -> (G-1) * total payload.
    EXPECT_DOUBLE_EQ(r.metrics.value("coll.internode.bytes"),
                     (G - 1) * static_cast<double>(P) * kBlk * 4.0);
  }
  {
    constexpr int kCount = 128;
    const auto r = run_with_metrics(sim::make_psg(3), true, [] {
      std::vector<double> in(kCount, 1.0), out(kCount);
      allreduce(in.data(), out.data(), kCount, Datatype::kDouble, Op::kSum,
                world());
    });
    // Recursive doubling over leaders: at most 2*(G-1) full payloads.
    EXPECT_LE(r.metrics.value("coll.internode.bytes"),
              2.0 * (G - 1) * kCount * 8.0);
    EXPECT_GT(r.metrics.value("coll.internode.msgs"), 0.0);
  }
}

TEST(CollTraffic, HierBeatsFlatOnUnevenLayout) {
  // On an uneven 3/1/5 layout the flat trees cross node boundaries more
  // than once per payload; the two-level forms do not.
  auto bytes_of = [](bool hier, const std::function<void()>& body) {
    return run_with_metrics(odd_cluster(), hier, body)
        .metrics.value("coll.internode.bytes");
  };
  auto msgs_of = [](bool hier, const std::function<void()>& body) {
    return run_with_metrics(odd_cluster(), hier, body)
        .metrics.value("coll.internode.msgs");
  };
  const auto do_allreduce = [] {
    std::vector<double> in(512, 1.0), out(512);
    allreduce(in.data(), out.data(), 512, Datatype::kDouble, Op::kSum,
              world());
  };
  const auto do_allgather = [] {
    std::vector<int> mine(128, 3), all(128 * 9);
    allgather(mine.data(), 128, Datatype::kInt, all.data(), 128,
              Datatype::kInt, world());
  };
  const auto do_rsb = [] {
    std::vector<int> in(32 * 9, 1), out(32);
    reduce_scatter_block(in.data(), out.data(), 32, Datatype::kInt, Op::kSum,
                         world());
  };
  EXPECT_LT(bytes_of(true, do_allreduce), bytes_of(false, do_allreduce));
  EXPECT_LT(bytes_of(true, do_allgather), bytes_of(false, do_allgather));
  EXPECT_LT(bytes_of(true, do_rsb), bytes_of(false, do_rsb));
  // Barrier moves no payload; the hierarchy still saves fabric messages.
  const auto do_barrier = [] { barrier(world()); };
  EXPECT_LT(msgs_of(true, do_barrier), msgs_of(false, do_barrier));
}

TEST(CollBounds, RoundsAndBoundSanity) {
  EXPECT_EQ(sim::collective_rounds(1), 0);
  EXPECT_EQ(sim::collective_rounds(2), 1);
  EXPECT_EQ(sim::collective_rounds(3), 2);
  EXPECT_EQ(sim::collective_rounds(8), 3);
  EXPECT_EQ(sim::collective_rounds(9), 4);

  const auto c = sim::make_titan(8);
  const auto& node = c.nodes[0];
  // Bounds grow with payload and with node count.
  EXPECT_LT(sim::hier_bcast_bound(node, c.fabric, 8, 1, 1 << 10, c.costs),
            sim::hier_bcast_bound(node, c.fabric, 8, 1, 1 << 20, c.costs));
  EXPECT_LT(sim::hier_bcast_bound(node, c.fabric, 2, 1, 1 << 20, c.costs),
            sim::hier_bcast_bound(node, c.fabric, 64, 1, 1 << 20, c.costs));
  EXPECT_LT(
      sim::hier_allreduce_bound(node, c.fabric, 8, 1, 1 << 10, c.costs),
      sim::hier_allreduce_bound(node, c.fabric, 8, 1, 1 << 22, c.costs));
  EXPECT_LT(
      sim::hier_allgather_bound(node, c.fabric, 8, 1, 1 << 10, c.costs),
      sim::hier_allgather_bound(node, c.fabric, 8, 1, 1 << 18, c.costs));
  // More ranks per node adds intra-node phases.
  EXPECT_LT(sim::hier_bcast_bound(node, c.fabric, 8, 1, 1 << 20, c.costs),
            sim::hier_bcast_bound(node, c.fabric, 8, 8, 1 << 20, c.costs));
}

/// Marginal virtual-time cost of one collective: reps amortize the launch
/// and teardown overheads away.
double marginal_makespan(const sim::ClusterDesc& cluster,
                         const std::function<void()>& coll) {
  auto run = [&](int reps) {
    auto o = options_for(cluster, true, core::ExecMode::kModelOnly);
    return launch(o, [&coll, reps] {
             for (int i = 0; i < reps; ++i) coll();
           })
        .makespan;
  };
  return (run(3) - run(1)) / 2.0;
}

TEST(CollBounds, ModelTimeStaysUnderClosedForms) {
  const auto c = sim::make_titan(8);  // 1 rank/node: pure inter-node phase
  const auto& node = c.nodes[0];
  constexpr int kCount = 1 << 18;  // 1 MiB of ints
  constexpr std::uint64_t kBytes = kCount * 4ull;
  const double bcast_t = marginal_makespan(c, [] {
    bcast(nullptr, kCount, Datatype::kInt, 0, world());
  });
  EXPECT_LE(bcast_t,
            sim::hier_bcast_bound(node, c.fabric, 8, 1, kBytes, c.costs));
  const double allreduce_t = marginal_makespan(c, [] {
    allreduce(nullptr, nullptr, kCount, Datatype::kDouble, Op::kSum,
              world());
  });
  EXPECT_LE(allreduce_t, sim::hier_allreduce_bound(node, c.fabric, 8, 1,
                                                   kCount * 8ull, c.costs));
  constexpr int kBlk = 1 << 15;  // 128 KiB per-rank block
  const double allgather_t = marginal_makespan(c, [] {
    allgather(nullptr, kBlk, Datatype::kInt, nullptr, kBlk, Datatype::kInt,
              world());
  });
  EXPECT_LE(allgather_t, sim::hier_allgather_bound(node, c.fabric, 8, 1,
                                                   kBlk * 4ull, c.costs));

  // Multi-rank nodes: the intra-node phases are covered by the bound too.
  const auto p = sim::make_psg(3);
  const double p_bcast = marginal_makespan(p, [] {
    bcast(nullptr, kCount, Datatype::kInt, 0, world());
  });
  EXPECT_LE(p_bcast,
            sim::hier_bcast_bound(p.nodes[0], p.fabric, 3, 8, kBytes,
                                  p.costs));
}

TEST(CollBounds, HierBeatsFlatModelTime) {
  // Titan-like config, large payloads: the two-level algorithms finish
  // earlier in virtual time than the flat ones.
  auto time_of = [](bool hier, const std::function<void()>& body) {
    return launch(options_for(sim::make_titan(8), hier,
                              core::ExecMode::kModelOnly),
                  body)
        .makespan;
  };
  const auto big_allreduce = [] {
    allreduce(nullptr, nullptr, 1 << 20, Datatype::kDouble, Op::kSum,
              world());
  };
  const auto big_allgather = [] {
    allgather(nullptr, 1 << 16, Datatype::kInt, nullptr, 1 << 16,
              Datatype::kInt, world());
  };
  EXPECT_LT(time_of(true, big_allreduce), time_of(false, big_allreduce));
  EXPECT_LT(time_of(true, big_allgather), time_of(false, big_allgather));
}

TEST(CollConfig, FlagOffDeterministicAndEnvOverride) {
  const auto workload = [] {
    auto w = world();
    std::vector<double> in(64, 1.5), out(64);
    allreduce(in.data(), out.data(), 64, Datatype::kDouble, Op::kSum, w);
    barrier(w);
    std::vector<int> mine(8, comm_rank(w));
    std::vector<int> all(static_cast<std::size_t>(8 * comm_size(w)));
    allgather(mine.data(), 8, Datatype::kInt, all.data(), 8, Datatype::kInt,
              w);
  };
  auto run = [&](bool hier) {
    return launch(options_for(sim::make_psg(2), hier), workload);
  };
  const auto off1 = run(false);
  const auto off2 = run(false);
  const auto on1 = run(true);
  EXPECT_EQ(off1.makespan, off2.makespan);  // exact, not NEAR
  ASSERT_EQ(off1.task_times.size(), off2.task_times.size());
  for (std::size_t i = 0; i < off1.task_times.size(); ++i) {
    EXPECT_EQ(off1.task_times[i], off2.task_times[i]);
  }

  // IMPACC_HIER_COLLECTIVES=0 forces the flag off regardless of options.
  setenv("IMPACC_HIER_COLLECTIVES", "0", 1);
  const auto env_off = run(true);
  unsetenv("IMPACC_HIER_COLLECTIVES");
  EXPECT_EQ(env_off.makespan, off1.makespan);
  const auto on2 = run(true);
  EXPECT_EQ(on2.makespan, on1.makespan);

  // The baseline process framework always uses the flat algorithms; the
  // flag must not change it at all.
  auto baseline = [&](bool hier) {
    auto o = options_for(sim::make_psg(2), hier);
    o.framework = core::Framework::kMpiOpenacc;
    return launch(o, workload).makespan;
  };
  EXPECT_EQ(baseline(true), baseline(false));
}

}  // namespace
}  // namespace impacc::mpi
