/* Interprocedural: the halo exchange lives in a helper that the
 * timestep loop calls by name. The simulator inlines the call into each
 * unrolled iteration, so the exchange is verified exactly — receive
 * posted, matched send, completed request, every round. */
int rank;
int size;

void exchange_halos(double* a, double* b, int n) {
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Request rq;
  MPI_Irecv(b, n, MPI_DOUBLE, prev, 3, MPI_COMM_WORLD, &rq);
  MPI_Send(a, n, MPI_DOUBLE, next, 3, MPI_COMM_WORLD);
  MPI_Wait(&rq, MPI_STATUS_IGNORE);
}

void timestep(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  for (int it = 0; it < 4; it++) {
    exchange_halos(a, b, n);
  }
}
