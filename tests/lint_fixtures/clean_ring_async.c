/* Clean: the ring exchange of imp013_deadlock_ring.c rewritten with
 * nonblocking acc mpi operations on one async queue. The unified
 * activity queue posts both transfers before the wait, so every send
 * meets its receive and the wait-for graph is acyclic — the deadlock
 * analysis must prove this ring deadlock-free. */
void ring_async(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
#pragma acc data copyin(a[0:n]) copyout(b[0:n])
  {
#pragma acc mpi sendbuf(device) async(1)
    MPI_Isend(a, n, MPI_DOUBLE, next, 7, MPI_COMM_WORLD, &sreq);
#pragma acc mpi recvbuf(device) async(1)
    MPI_Irecv(b, n, MPI_DOUBLE, prev, 7, MPI_COMM_WORLD, &rreq);
#pragma acc wait(1)
  }
  MPI_Barrier(MPI_COMM_WORLD);
}
