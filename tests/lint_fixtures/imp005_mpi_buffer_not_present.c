/* IMP005: acc mpi sendbuf(device) but the buffer was never copied in. */
#pragma acc mpi sendbuf(device)
MPI_Send(data, n, MPI_DOUBLE, peer, 1, MPI_COMM_WORLD);
