/* IMP036: an 8 MiB internode device send with chunk(0) — the chunk
 * pipeline is disabled, so the PCIe staging copy and the fabric
 * transfer serialize instead of overlapping chunk by chunk. */
void monolithic_send(double* big) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int peer = rank % 2 == 0 ? rank + 1 : rank - 1;
  if (rank % 2 == 0) {
#pragma acc data copyin(big[0:1048576])
    {
#pragma acc mpi sendbuf(device) chunk(0)
      MPI_Send(big, 1048576, MPI_DOUBLE, peer, 9, MPI_COMM_WORLD);
    }
  } else {
    MPI_Recv(big, 1048576, MPI_DOUBLE, peer, 9, MPI_COMM_WORLD, &st);
  }
}
