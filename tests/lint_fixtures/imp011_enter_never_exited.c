/* IMP011: enter data with no matching exit data — the device copy leaks
 * for the rest of the program. */
#pragma acc enter data copyin(grid[0:n])

#pragma acc parallel loop present(grid[0:n])
for (i = 0; i < n; i++) { grid[i] = 0.0; }
