/* IMP008: dst was handed to the runtime readonly, then received into
 * again without the readonly hint — the runtime-owned snapshot is
 * silently overwritten. */
#pragma acc data copyin(dst[0:n])
{
#pragma acc mpi recvbuf(readonly)
  MPI_Recv(dst, n, MPI_DOUBLE, 0, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);

#pragma acc mpi recvbuf(device)
  MPI_Recv(dst, n, MPI_DOUBLE, 0, 10, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}
