/* IMP033: every rank sends its block to every other rank with one
 * count and datatype — a hand-rolled allgather. Peers are ring offsets
 * so the pattern is symmetric at any size; with 4 ranks each rank
 * reaches all 3 others. */
void gather_by_hand(double* mine, double* in1, double* in2, double* in3) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int p1 = (rank + 1) % size;
  int p2 = (rank + 2) % size;
  int p3 = (rank + 3) % size;
  MPI_Isend(mine, 32768, MPI_DOUBLE, p1, 3, MPI_COMM_WORLD, &rq0);
  MPI_Isend(mine, 32768, MPI_DOUBLE, p2, 3, MPI_COMM_WORLD, &rq1);
  MPI_Isend(mine, 32768, MPI_DOUBLE, p3, 3, MPI_COMM_WORLD, &rq2);
  MPI_Irecv(in1, 32768, MPI_DOUBLE, p1, 3, MPI_COMM_WORLD, &rq3);
  MPI_Irecv(in2, 32768, MPI_DOUBLE, p2, 3, MPI_COMM_WORLD, &rq4);
  MPI_Irecv(in3, 32768, MPI_DOUBLE, p3, 3, MPI_COMM_WORLD, &rq5);
  MPI_Wait(&rq0, &st);
  MPI_Wait(&rq1, &st);
  MPI_Wait(&rq2, &st);
  MPI_Wait(&rq3, &st);
  MPI_Wait(&rq4, &st);
  MPI_Wait(&rq5, &st);
}
