/* IMP012: malformed directives. */
#pragma acc bogus_directive copyin(a)
#pragma acc mpi sendbuf(device)
not_an_mpi_call();
