/* Clean counterpart of imp022: two in-flight receives, one request
 * array element each. Distinct elements (&rq[0] / &rq[1]) are distinct
 * handles, not an overwrite, and MPI_Waitall completes both. */
void exchange2(double* a, double* b, double* c, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Request rq[2];
  MPI_Irecv(b, n, MPI_DOUBLE, prev, 0, MPI_COMM_WORLD, &rq[0]);
  MPI_Irecv(c, n, MPI_DOUBLE, prev, 1, MPI_COMM_WORLD, &rq[1]);
  MPI_Send(a, n, MPI_DOUBLE, next, 0, MPI_COMM_WORLD);
  MPI_Send(a, n, MPI_DOUBLE, next, 1, MPI_COMM_WORLD);
  MPI_Waitall(2, rq, MPI_STATUSES_IGNORE);
}
