/* IMP017: the matched pair disagrees on the element count — rank 0
 * sends 8 doubles but rank 1 only receives 4, truncating the message. */
void short_recv(double* a, double* b) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  if (rank == 0) MPI_Send(a, 8, MPI_DOUBLE, 1, 5, MPI_COMM_WORLD);
  if (rank == 1)
    MPI_Recv(b, 4, MPI_DOUBLE, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}
