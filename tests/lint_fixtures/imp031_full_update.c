/* IMP031: rank 0 copies the whole 4096-element array back to the host
 * although the send right after it covers only the first 64 elements
 * (a boundary row); the other 4032 elements cross PCIe for nothing. */
void boundary_send(double* u) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
#pragma acc data copy(u[0:4096])
  {
    if (rank == 0) {
#pragma acc update self(u[0:4096])
      MPI_Send(u, 64, MPI_DOUBLE, 1, 9, MPI_COMM_WORLD);
    }
    if (rank == 1) {
      MPI_Recv(u, 64, MPI_DOUBLE, 0, 9, MPI_COMM_WORLD, &st);
    }
  }
}
