/* IMP006: queue 1 has work enqueued but is never waited on. */
#pragma acc data copyin(v[0:n])
{
#pragma acc parallel loop present(v[0:n]) async(1)
  for (i = 0; i < n; i++) { v[i] = v[i] * 2.0; }
}
