/* Clean counterpart of imp021/imp022: the timestep loop receives into
 * `b`, sends out of a *different* buffer `a`, and completes the request
 * inside the loop before the next repost. The simulator unrolls all
 * four iterations exactly and proves the pattern deadlock-free. */
void halo_steps(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Request rq;
  for (int it = 0; it < 4; it++) {
    MPI_Irecv(b, n, MPI_DOUBLE, prev, it, MPI_COMM_WORLD, &rq);
    MPI_Send(a, n, MPI_DOUBLE, next, it, MPI_COMM_WORLD);
    MPI_Wait(&rq, MPI_STATUS_IGNORE);
  }
}
