/* Clean (IMP034): forcing the flat algorithm is fine below the 64 KiB
 * crossover — latency dominates there and the flat schedule has fewer
 * software legs. 1024 doubles = 8 KiB. */
void small_flat_reduce(double* x, double* y) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
#pragma acc mpi flat
  MPI_Allreduce(x, y, 1024, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
}
