/* IMP003: update on a buffer that is not present on the device. */
#pragma acc update device(x[0:n])
