/* IMP030: every rank runs a blocking send directly followed by a
 * blocking receive of an independent buffer (parity-ordered, so there
 * is no deadlock). The two transfers could overlap; back-to-back
 * blocking calls serialize them. */
void pairwise_exchange(double* a, double* b) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int peer = rank % 2 == 0 ? rank + 1 : rank - 1;
  if (rank % 2 == 0) {
    MPI_Send(a, 1048576, MPI_DOUBLE, peer, 7, MPI_COMM_WORLD);
    MPI_Recv(b, 1048576, MPI_DOUBLE, peer, 8, MPI_COMM_WORLD, &st);
  } else {
    MPI_Recv(b, 1048576, MPI_DOUBLE, peer, 7, MPI_COMM_WORLD, &st);
    MPI_Send(a, 1048576, MPI_DOUBLE, peer, 8, MPI_COMM_WORLD);
  }
}
