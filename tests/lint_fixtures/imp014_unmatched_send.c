/* IMP014: rank 0 sends to rank 1, but no rank ever posts a matching
 * receive (same source, tag, communicator). */
void orphan_send(double* a, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  if (rank == 0) {
#pragma acc data copyin(a[0:n])
    {
#pragma acc mpi sendbuf(device) async(1)
      MPI_Isend(a, n, MPI_DOUBLE, 1, 7, MPI_COMM_WORLD, &req);
#pragma acc wait(1)
    }
  }
}
