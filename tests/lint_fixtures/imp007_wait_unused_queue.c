/* IMP007: waiting on queue 3, but everything ran on queue 1. */
#pragma acc data copyin(v[0:n])
{
#pragma acc parallel loop present(v[0:n]) async(1)
  for (i = 0; i < n; i++) { v[i] = v[i] * 2.0; }
#pragma acc wait(1)
#pragma acc wait(3)
}
