/* Clean counterpart of imp023: the same collectives inside the same
 * timestep loop, but unguarded — identical on every rank in every
 * iteration. The unrolled sequences line up in all four rounds. */
void relax_steps(double* a, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  for (int it = 0; it < 4; it++) {
    MPI_Allreduce(MPI_IN_PLACE, a, n, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    MPI_Barrier(MPI_COMM_WORLD);
  }
}
