/* IMP013: every rank does a blocking MPI_Send to its right neighbour
 * before posting the matching receive — with rendezvous semantics no
 * send can complete, so the ring of waits is a deadlock cycle.
 * Rewriting these as `#pragma acc mpi ... async(1)` nonblocking ops
 * (see clean_ring_async.c) breaks the cycle. */
void ring(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Send(a, n, MPI_DOUBLE, next, 7, MPI_COMM_WORLD);
  MPI_Recv(b, n, MPI_DOUBLE, prev, 7, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}
