/* Clean (IMP037): the unrelated table push happens while the halo
 * receive is still in flight; the wait sits directly before the first
 * real use of the data. */
void late_wait(double* halo, double* table) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int peer = rank % 2 == 0 ? rank + 1 : rank - 1;
  if (rank % 2 == 0) {
#pragma acc data copy(halo[0:65536]) copyin(table[0:1048576])
    {
#pragma acc mpi recvbuf(device) async(1)
      MPI_Irecv(halo, 65536, MPI_DOUBLE, peer, 4, MPI_COMM_WORLD, &rq0);
#pragma acc update device(table[0:1048576])
#pragma acc wait(1)
#pragma acc update self(halo[0:65536])
    }
  } else {
    MPI_Send(halo, 65536, MPI_DOUBLE, peer, 4, MPI_COMM_WORLD);
  }
}
