/* Clean (IMP030): the same pairwise exchange posted nonblocking, so
 * the two transfers already overlap; the perf rules stay silent. */
void pairwise_exchange(double* a, double* b) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int peer = rank % 2 == 0 ? rank + 1 : rank - 1;
  int tag_out = rank % 2 == 0 ? 7 : 8;
  int tag_in = rank % 2 == 0 ? 8 : 7;
  MPI_Isend(a, 1048576, MPI_DOUBLE, peer, tag_out, MPI_COMM_WORLD, &rq0);
  MPI_Irecv(b, 1048576, MPI_DOUBLE, peer, tag_in, MPI_COMM_WORLD, &rq1);
  MPI_Wait(&rq0, &st);
  MPI_Wait(&rq1, &st);
}
