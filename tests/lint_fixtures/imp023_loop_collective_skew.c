/* IMP023: the reduction is guarded by a condition that depends on both
 * the rank AND the loop iteration, so in any given round some ranks
 * enter the Allreduce while others skip straight to the barrier — the
 * collective sequences drift apart iteration by iteration. */
void relax_steps(double* a, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  for (int it = 0; it < 4; it++) {
    if ((rank + it) % 2 == 0) {
      MPI_Allreduce(MPI_IN_PLACE, a, n, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    }
    MPI_Barrier(MPI_COMM_WORLD);
  }
}
