/* IMP032: the coefficient table crosses PCIe on every iteration of the
 * time loop although nothing in the loop ever modifies it; the copyin
 * is loop-invariant and hoistable. */
void resend_coefficients(double* coef) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  for (int it = 0; it < 4; ++it) {
    if (rank == 0) {
#pragma acc data copyin(coef[0:65536])
      {
#pragma acc mpi sendbuf(device)
        MPI_Send(coef, 65536, MPI_DOUBLE, 1, 5, MPI_COMM_WORLD);
      }
    }
    if (rank == 1) {
      MPI_Recv(coef, 65536, MPI_DOUBLE, 0, 5, MPI_COMM_WORLD, &st);
    }
  }
}
