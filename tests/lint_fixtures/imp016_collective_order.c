/* IMP016: only rank 0 enters the reduction, so the ranks disagree on
 * which collective comes first — rank 0 sits in MPI_Reduce while the
 * others are already in MPI_Barrier. */
void skewed_reduce(double* x, double* y) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  if (rank == 0) {
    MPI_Reduce(x, y, 4, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
  }
  MPI_Barrier(MPI_COMM_WORLD);
}
