/* IMP013 (loop-carried): the blocking ring of imp013_deadlock_ring.c,
 * but inside a timestep loop. With the default --unroll 4 the loop
 * unrolls exactly and the first round's sends already form the wait-for
 * cycle: every rank blocks in MPI_Send before any receive is posted. */
void ring_steps(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  for (int it = 0; it < 4; it++) {
    MPI_Send(a, n, MPI_DOUBLE, next, it, MPI_COMM_WORLD);
    MPI_Recv(b, n, MPI_DOUBLE, prev, it, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  }
}
