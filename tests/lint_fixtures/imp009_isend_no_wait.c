/* IMP009: host-path nonblocking send whose request is never completed. */
MPI_Isend(data, n, MPI_DOUBLE, next, 3, MPI_COMM_WORLD, &req);
MPI_Barrier(MPI_COMM_WORLD);
