/* A clean source exercising the directive surface: must lint with zero
 * diagnostics. Mirrors the paper's Fig. 4 (c) unified-activity-queue
 * pipeline plus unstructured data and host_data idioms. */
int rank, size;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);

#pragma acc enter data copyin(halo[0:m])
#pragma acc update device(halo[0:m])

#pragma acc data copyin(data[0:n]) copy(incoming[0:n])
{
#pragma acc parallel loop present(data[0:n]) async(1)
  for (i = 0; i < n; i++) { data[i] = data[i] * 2.0 + 1.0; }

#pragma acc mpi sendbuf(device) async(1)
  MPI_Isend(data, n, MPI_DOUBLE, next, 3, MPI_COMM_WORLD, &req[0]);

#pragma acc mpi recvbuf(device) async(1)
  MPI_Irecv(incoming, n, MPI_DOUBLE, prev, 3, MPI_COMM_WORLD, &req[1]);

#pragma acc wait(1)

#pragma acc host_data use_device(data)
  {
    MPI_Send(data, 1, MPI_DOUBLE, next, 4, MPI_COMM_WORLD);
  }
}

MPI_Irecv(extra, 1, MPI_DOUBLE, prev, 4, MPI_COMM_WORLD, &req[2]);
MPI_Wait(&req[2], MPI_STATUS_IGNORE);

#pragma acc exit data delete(halo[0:m])

MPI_Allreduce(&local_sum, &total, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
MPI_Barrier(MPI_COMM_WORLD);
