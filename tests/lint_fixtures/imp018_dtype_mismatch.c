/* IMP018: sender and receiver of one matched message use different
 * basic MPI datatypes (MPI_DOUBLE vs MPI_FLOAT). */
void wrong_type(double* a, float* b) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  if (rank == 0) MPI_Send(a, 6, MPI_DOUBLE, 1, 2, MPI_COMM_WORLD);
  if (rank == 1)
    MPI_Recv(b, 6, MPI_FLOAT, 0, 2, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}
