/* IMP019: the update writes `field`'s device copy on async queue 2,
 * and the host-path MPI_Send reads the buffer before any wait orders
 * the two — the send may ship stale data. */
void host_race(double* field, int n, int peer) {
#pragma acc enter data copyin(field[0:n])
#pragma acc update device(field[0:n]) async(2)
  MPI_Send(field, n, MPI_DOUBLE, peer, 0, MPI_COMM_WORLD);
#pragma acc wait(2)
#pragma acc exit data delete(field[0:n])
}
