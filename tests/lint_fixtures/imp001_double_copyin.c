/* IMP001: double enter-data copyin leaks a device reference. */
#pragma acc enter data copyin(a[0:n])

#pragma acc parallel loop present(a[0:n])
for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }

#pragma acc enter data copyin(a[0:n])

#pragma acc exit data delete(a[0:n])
