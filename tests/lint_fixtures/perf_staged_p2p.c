/* Static-model mirror of the impacc-smoke workload (2 Titan nodes,
 * GPUDirect off): rank 0 pushes 8 x 8 MiB messages to rank 1 straight
 * from device memory, each staged DtoH -> wire -> HtoD through the
 * chunk pipeline. Lint with --ranks 2 --unroll 8 --perf-system titan
 * --perf-tpn 1; the predicted makespan is compared against the
 * measured critical path of the real run. */
void staged_p2p(char* buf) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
#pragma acc data copy(buf[0:8388608])
  {
    for (int m = 0; m < 8; ++m) {
      if (rank == 0) {
#pragma acc mpi sendbuf(device)
        MPI_Send(buf, 8388608, MPI_BYTE, 1, m, MPI_COMM_WORLD);
      }
      if (rank == 1) {
#pragma acc mpi recvbuf(device)
        MPI_Recv(buf, 8388608, MPI_BYTE, 0, m, MPI_COMM_WORLD, &st);
      }
    }
  }
}
