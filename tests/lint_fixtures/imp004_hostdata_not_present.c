/* IMP004: host_data use_device on a buffer with no device copy. */
#pragma acc host_data use_device(sendbuf)
{
  MPI_Send(sendbuf, n, MPI_DOUBLE, peer, 0, MPI_COMM_WORLD);
}
