/* Clean: even/odd pairing — even ranks send first then receive, odd
 * ranks receive first then send, so every blocking operation meets an
 * already-posted partner. The partner expression exercises the
 * evaluator's ternary and modulo handling, and the `size` guard keeps
 * the last even rank quiet when it has no odd partner. */
void evenodd(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int partner = rank % 2 == 0 ? rank + 1 : rank - 1;
  if (rank % 2 == 0 && partner < size) {
    MPI_Send(a, n, MPI_DOUBLE, partner, 2, MPI_COMM_WORLD);
    MPI_Recv(b, n, MPI_DOUBLE, partner, 2, MPI_COMM_WORLD,
             MPI_STATUS_IGNORE);
  } else if (rank % 2 == 1) {
    MPI_Recv(b, n, MPI_DOUBLE, partner, 2, MPI_COMM_WORLD,
             MPI_STATUS_IGNORE);
    MPI_Send(a, n, MPI_DOUBLE, partner, 2, MPI_COMM_WORLD);
  }
  MPI_Barrier(MPI_COMM_WORLD);
}
