/* IMP010: send and receive buffers alias the same object within one
 * acc mpi directive. */
#pragma acc data copyin(x[0:n])
{
#pragma acc mpi sendbuf(device) recvbuf(device)
  MPI_Allreduce(x, x, n, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
}
