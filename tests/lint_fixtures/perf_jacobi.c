/* Static-model mirror of the Fig. 14 Jacobi configuration (one PSG
 * node, 8 devices, n = 2048, 3 sweeps): every rank owns a 256-row
 * block with halo rows, exchanges boundary rows with its neighbours
 * straight from device memory on the unified queue, and runs the sweep
 * on the same queue. Lint with --ranks 8 --perf-system psg
 * --perf-tpn 8; the predicted makespan is compared against the
 * measured critical path of the real run. */
void jacobi(double* u, double* unew, double* local, double* total) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int up = rank > 0 ? rank - 1 : MPI_PROC_NULL;
  int down = rank < size - 1 ? rank + 1 : MPI_PROC_NULL;
#pragma acc enter data copyin(u[0:528384]) copyin(unew[0:528384])
  for (int it = 0; it < 3; ++it) {
#pragma acc mpi recvbuf(device) async(1)
    MPI_Irecv(u, 2048, MPI_DOUBLE, up, 22, MPI_COMM_WORLD, &rq0);
#pragma acc mpi sendbuf(device) async(1)
    MPI_Isend(u, 2048, MPI_DOUBLE, up, 21, MPI_COMM_WORLD, &rq1);
#pragma acc mpi recvbuf(device) async(1)
    MPI_Irecv(u, 2048, MPI_DOUBLE, down, 21, MPI_COMM_WORLD, &rq2);
#pragma acc mpi sendbuf(device) async(1)
    MPI_Isend(u, 2048, MPI_DOUBLE, down, 22, MPI_COMM_WORLD, &rq3);
#pragma acc parallel loop present(u[0:528384], unew[0:528384]) async(1)
    for (int i = 1; i <= 256; ++i) {
      unew[i] = 0.25 * u[i];
    }
#pragma acc wait(1)
  }
#pragma acc update self(u[0:524288])
#pragma acc exit data delete(u[0:528384]) delete(unew[0:528384])
  MPI_Reduce(local, total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
  MPI_Barrier(MPI_COMM_WORLD);
}
