/* IMP037: the wait completes the in-flight halo receive, then the rank
 * pushes an unrelated 8 MiB table to the device before first touching
 * the received data — that push could overlap the transfer if the wait
 * moved down. */
void early_wait(double* halo, double* table) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int peer = rank % 2 == 0 ? rank + 1 : rank - 1;
  if (rank % 2 == 0) {
#pragma acc data copy(halo[0:65536]) copyin(table[0:1048576])
    {
#pragma acc mpi recvbuf(device) async(1)
      MPI_Irecv(halo, 65536, MPI_DOUBLE, peer, 4, MPI_COMM_WORLD, &rq0);
#pragma acc wait(1)
#pragma acc update device(table[0:1048576])
#pragma acc update self(halo[0:65536])
    }
  } else {
    MPI_Send(halo, 65536, MPI_DOUBLE, peer, 4, MPI_COMM_WORLD);
  }
}
