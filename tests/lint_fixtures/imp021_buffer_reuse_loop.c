/* IMP021: every iteration posts MPI_Irecv into `b` and then sends out
 * of the same `b` while the receive is still in flight — the send can
 * read half-updated data. Waiting before the send, or sending from a
 * second buffer (clean_loop_halo_wait.c), fixes it. */
void halo_steps(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Request rq;
  for (int it = 0; it < 4; it++) {
    MPI_Irecv(b, n, MPI_DOUBLE, prev, 5, MPI_COMM_WORLD, &rq);
    MPI_Send(b, n, MPI_DOUBLE, next, 5, MPI_COMM_WORLD);
    MPI_Wait(&rq, MPI_STATUS_IGNORE);
  }
}
