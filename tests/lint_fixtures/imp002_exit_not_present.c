/* IMP002: exit data for a buffer that was never made present. */
#pragma acc enter data copyin(a[0:n])
#pragma acc exit data delete(a[0:n])
#pragma acc exit data copyout(b[0:n])
