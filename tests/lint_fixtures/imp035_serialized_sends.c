/* IMP035: two independent device sends share async queue 1, so their
 * PCIe stagings run back-to-back although only the fabric is a shared
 * resource; distinct queues would overlap them. */
void two_sends_one_queue(double* a, double* b) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int peer = rank % 2 == 0 ? rank + 1 : rank - 1;
  if (rank % 2 == 0) {
#pragma acc data copyin(a[0:262144]) copyin(b[0:262144])
    {
#pragma acc mpi sendbuf(device) async(1)
      MPI_Isend(a, 262144, MPI_DOUBLE, peer, 1, MPI_COMM_WORLD, &rq0);
#pragma acc mpi sendbuf(device) async(1)
      MPI_Isend(b, 262144, MPI_DOUBLE, peer, 2, MPI_COMM_WORLD, &rq1);
#pragma acc wait(1)
    }
  } else {
    MPI_Recv(a, 262144, MPI_DOUBLE, peer, 1, MPI_COMM_WORLD, &st);
    MPI_Recv(b, 262144, MPI_DOUBLE, peer, 2, MPI_COMM_WORLD, &st);
  }
}
