/* IMP015: rank 1 waits for a message from rank 0 that is never sent. */
void orphan_recv(double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  if (rank == 1) {
#pragma acc data copyout(b[0:n])
    {
#pragma acc mpi recvbuf(device) async(1)
      MPI_Irecv(b, n, MPI_DOUBLE, 0, 9, MPI_COMM_WORLD, &req);
#pragma acc wait(1)
    }
  }
}
