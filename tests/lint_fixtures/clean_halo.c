/* Clean: a 1-D halo stencil exchange. Boundary ranks aim their missing
 * neighbour at MPI_PROC_NULL (the evaluator resolves the ternaries per
 * rank and drops those no-op transfers), interior ranks exchange both
 * halos on one async queue, device-to-device. */
void halo(double* u, double* lo, double* hi, int n, int m) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int up = rank == 0 ? MPI_PROC_NULL : rank - 1;
  int down = rank == size - 1 ? MPI_PROC_NULL : rank + 1;
#pragma acc data copyin(u[0:n]) copy(lo[0:m]) copy(hi[0:m])
  {
#pragma acc mpi sendbuf(device) async(1)
    MPI_Isend(u, m, MPI_DOUBLE, up, 11, MPI_COMM_WORLD, &req0);
#pragma acc mpi sendbuf(device) async(1)
    MPI_Isend(u, m, MPI_DOUBLE, down, 12, MPI_COMM_WORLD, &req1);
#pragma acc mpi recvbuf(device) async(1)
    MPI_Irecv(lo, m, MPI_DOUBLE, up, 12, MPI_COMM_WORLD, &req2);
#pragma acc mpi recvbuf(device) async(1)
    MPI_Irecv(hi, m, MPI_DOUBLE, down, 11, MPI_COMM_WORLD, &req3);
#pragma acc wait(1)
  }
  MPI_Barrier(MPI_COMM_WORLD);
}
