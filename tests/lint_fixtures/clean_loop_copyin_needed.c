/* Clean (IMP032): the copied buffer is refreshed by a receive on every
 * iteration, so the per-iteration copyin is genuinely needed. */
void stream_updates(double* coef) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  for (int it = 0; it < 4; ++it) {
    if (rank == 0) {
      MPI_Recv(coef, 65536, MPI_DOUBLE, 1, 5, MPI_COMM_WORLD, &st);
#pragma acc data copyin(coef[0:65536])
      {
      }
    }
    if (rank == 1) {
      MPI_Send(coef, 65536, MPI_DOUBLE, 0, 5, MPI_COMM_WORLD);
    }
  }
}
