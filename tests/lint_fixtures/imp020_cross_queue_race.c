/* IMP020: queue 1 is still writing `out` (update device) when the
 * compute construct on queue 2 also writes it; the two queues have no
 * ordering edge, so the final contents depend on scheduling. */
void queue_race(double* out, int n) {
#pragma acc enter data create(out[0:n])
#pragma acc update device(out[0:n]) async(1)
#pragma acc parallel loop copyout(out[0:n]) async(2)
  for (int i = 0; i < n; ++i) {
    out[i] = i;
  }
#pragma acc wait
#pragma acc exit data delete(out[0:n])
}
