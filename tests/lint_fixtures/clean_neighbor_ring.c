/* Clean (IMP033): each rank talks only to its two ring neighbours —
 * a genuine stencil exchange, not a collective in disguise. */
void ring_exchange(double* mine, double* lo, double* hi) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int up = (rank + 1) % size;
  int down = (rank + size - 1) % size;
  MPI_Isend(mine, 32768, MPI_DOUBLE, up, 3, MPI_COMM_WORLD, &rq0);
  MPI_Isend(mine, 32768, MPI_DOUBLE, down, 4, MPI_COMM_WORLD, &rq1);
  MPI_Irecv(lo, 32768, MPI_DOUBLE, down, 3, MPI_COMM_WORLD, &rq2);
  MPI_Irecv(hi, 32768, MPI_DOUBLE, up, 4, MPI_COMM_WORLD, &rq3);
  MPI_Wait(&rq0, &st);
  MPI_Wait(&rq1, &st);
  MPI_Wait(&rq2, &st);
  MPI_Wait(&rq3, &st);
}
