/* IMP034: the user forces the flat single-level allreduce on an 8 MiB
 * payload — far above the 64 KiB Rabenseifner crossover, where the
 * hierarchical reduce-scatter schedule is strictly cheaper. */
void big_flat_reduce(double* x, double* y) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
#pragma acc mpi flat
  MPI_Allreduce(x, y, 1048576, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
}
