/* IMP024: tags at or above 1<<24 are reserved for the runtime's
 * hierarchical collectives (src/mpi/collectives.cpp); user p2p traffic
 * in that window can match the runtime's internal messages. Fires on
 * both endpoints of the exchange. */
void exchange(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Request rq;
  MPI_Irecv(b, n, MPI_DOUBLE, prev, (1 << 24) + 7, MPI_COMM_WORLD, &rq);
  MPI_Send(a, n, MPI_DOUBLE, next, (1 << 24) + 7, MPI_COMM_WORLD);
  MPI_Wait(&rq, MPI_STATUS_IGNORE);
}
