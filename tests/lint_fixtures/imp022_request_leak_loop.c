/* IMP022: the request handle is overwritten by the next iteration's
 * MPI_Irecv before anyone waits on it — only the last receive can ever
 * be completed by the MPI_Wait after the loop; the earlier ones leak.
 * Waiting inside the loop (clean_loop_halo_wait.c) fixes it. */
void gather_steps(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Request rq;
  for (int it = 0; it < 4; it++) {
    MPI_Irecv(b, n, MPI_DOUBLE, prev, it, MPI_COMM_WORLD, &rq);
    MPI_Send(a, n, MPI_DOUBLE, next, it, MPI_COMM_WORLD);
  }
  MPI_Wait(&rq, MPI_STATUS_IGNORE);
}
