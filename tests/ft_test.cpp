// Fault tolerance (DESIGN.md section 12, ROADMAP item 4): seeded fault
// injection, coordinated checkpoint/restart, sender-retention replay, and
// shrinking recovery — plus the strict-env-parsing hardening pass that
// rode along (IMPACC_WATCHDOG and friends must never silently disable on
// a malformed value).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/jacobi.h"
#include "core/mapping.h"
#include "core/runtime.h"
#include "core/task.h"
#include "impacc.h"
#include "test_helpers.h"
#include "ult/sync.h"

namespace impacc {
namespace {

/// Scoped environment variable: set on construction, restore on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// --- fault-plan parsing ---------------------------------------------------------

TEST(FaultPlanParse, AcceptsNodeDeviceAndSeedTokens) {
  sim::FaultPlan plan;
  EXPECT_TRUE(sim::parse_fault_plan("node:1@0.002;dev:0.3@1.5e-3;seed:42@0.004",
                                    &plan));
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].node, 1);
  EXPECT_EQ(plan.events[0].device, -1);
  EXPECT_DOUBLE_EQ(plan.events[0].time, 0.002);
  EXPECT_EQ(plan.events[1].node, 0);
  EXPECT_EQ(plan.events[1].device, 3);
  EXPECT_DOUBLE_EQ(plan.events[1].time, 1.5e-3);
  ASSERT_EQ(plan.seeds.size(), 1u);
  EXPECT_EQ(plan.seeds[0].seed, 42u);
  EXPECT_DOUBLE_EQ(plan.seeds[0].horizon, 0.004);
}

TEST(FaultPlanParse, MalformedTokensAreSkippedNotSilentlyDropped) {
  // The hardening rule: a bad token warns and returns false, but every
  // valid token in the same spec still lands — a typo must never disarm
  // the whole plan.
  sim::FaultPlan plan;
  EXPECT_FALSE(sim::parse_fault_plan("node:1@0.002;bogus;node:0@x", &plan));
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].node, 1);
}

TEST(FaultPlanParse, RejectsTrailingGarbageAndNegatives) {
  sim::FaultPlan plan;
  EXPECT_FALSE(sim::parse_fault_plan("node:1@0.002ms", &plan));  // no units
  EXPECT_FALSE(sim::parse_fault_plan("node:-1@0.002", &plan));
  EXPECT_FALSE(sim::parse_fault_plan("dev:0@0.002", &plan));  // missing .d
  EXPECT_FALSE(sim::parse_fault_plan("node:1@-0.5", &plan));
  EXPECT_TRUE(plan.events.empty());
  EXPECT_TRUE(plan.seeds.empty());
}

TEST(FaultPlanParse, EmptySpecIsValidAndEmpty) {
  sim::FaultPlan plan;
  EXPECT_TRUE(sim::parse_fault_plan("", &plan));
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanSeeds, MaterializeIsDeterministicPerSeed) {
  sim::FaultPlan a;
  ASSERT_TRUE(sim::parse_fault_plan("seed:7@0.01", &a));
  sim::FaultPlan b = a;
  sim::materialize_seeds(&a, 4);
  sim::materialize_seeds(&b, 4);
  ASSERT_EQ(a.events.size(), 1u);
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_EQ(a.events[0].node, b.events[0].node);
  EXPECT_EQ(a.events[0].time, b.events[0].time);
  EXPECT_TRUE(a.seeds.empty());  // consumed
  // Kill time stays inside the advertised fraction of the horizon.
  EXPECT_GE(a.events[0].time, 0.15 * 0.01);
  EXPECT_LE(a.events[0].time, 0.85 * 0.01);
  EXPECT_GE(a.events[0].node, 0);
  EXPECT_LT(a.events[0].node, 4);
}

// --- strict env parsing (the silent-failure hardening pass) ---------------------

TEST(StrictEnvParse, DoubleConsumesWholeToken) {
  double v = -1;
  EXPECT_TRUE(core::parse_env_double("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(core::parse_env_double("1e-3", &v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_FALSE(core::parse_env_double("10 ", &v));  // strict: no whitespace
  EXPECT_FALSE(core::parse_env_double("2.5s", &v));
  EXPECT_FALSE(core::parse_env_double("", &v));
  EXPECT_FALSE(core::parse_env_double("abc", &v));
  EXPECT_FALSE(core::parse_env_double("nan", &v));
}

TEST(StrictEnvParse, IntRejectsPartialAndOverflow) {
  long v = -1;
  EXPECT_TRUE(core::parse_env_int("65536", &v));
  EXPECT_EQ(v, 65536);
  EXPECT_FALSE(core::parse_env_int("64k", &v));
  EXPECT_FALSE(core::parse_env_int("", &v));
  EXPECT_FALSE(core::parse_env_int("999999999999999999999999", &v));
}

TEST(StrictEnvParse, BoolAcceptsTheUsualSpellings) {
  bool v = false;
  for (const char* on : {"1", "on", "true", "yes", "ON", "True"}) {
    v = false;
    EXPECT_TRUE(core::parse_env_bool(on, &v)) << on;
    EXPECT_TRUE(v) << on;
  }
  for (const char* off : {"0", "off", "false", "no"}) {
    v = true;
    EXPECT_TRUE(core::parse_env_bool(off, &v)) << off;
    EXPECT_FALSE(v) << off;
  }
  EXPECT_FALSE(core::parse_env_bool("2", &v));
  EXPECT_FALSE(core::parse_env_bool("maybe", &v));
}

TEST(StrictEnvParse, MalformedWatchdogFallsBackToDefaultNotDisabled) {
  // Regression: this used to go through std::atof, where "30s" parsed as
  // 30 by luck and "abc" parsed as 0 — silently disabling the watchdog.
  // Setting the variable expresses intent to enable it, so a malformed
  // value now falls back to the default timeout instead of 0.
  ScopedEnv env("IMPACC_WATCHDOG", "garbage");
  core::LaunchOptions o;
  o.cluster = sim::make_system("psg", 1);
  o.scheduler_workers = 1;
  core::Runtime rt(o);
  EXPECT_DOUBLE_EQ(rt.options().watchdog_seconds,
                   core::kDefaultWatchdogSeconds);
}

TEST(StrictEnvParse, WellFormedWatchdogIsHonoured) {
  ScopedEnv env("IMPACC_WATCHDOG", "12.5");
  core::LaunchOptions o;
  o.cluster = sim::make_system("psg", 1);
  o.scheduler_workers = 1;
  core::Runtime rt(o);
  EXPECT_DOUBLE_EQ(rt.options().watchdog_seconds, 12.5);
}

TEST(StrictEnvParse, MalformedChunkSizeFallsBackToDefault) {
  ScopedEnv env("IMPACC_CHUNK_SIZE", "64x");  // bad suffix
  core::LaunchOptions o;
  o.cluster = sim::make_system("psg", 1);
  o.scheduler_workers = 1;
  core::Runtime rt(o);
  EXPECT_EQ(rt.options().chunk_bytes, core::kDefaultChunkBytes);
}

TEST(StrictEnvParse, WellFormedChunkSizeSuffixIsHonoured) {
  ScopedEnv env("IMPACC_CHUNK_SIZE", "64KiB");
  core::LaunchOptions o;
  o.cluster = sim::make_system("psg", 1);
  o.scheduler_workers = 1;
  core::Runtime rt(o);
  EXPECT_EQ(rt.options().chunk_bytes, 64u << 10);
}

// --- shrinking remap ------------------------------------------------------------

std::vector<core::Placement> four_placements() {
  // Two nodes, two slots each.
  auto cluster = sim::make_system("psg", 2);
  std::vector<core::Placement> p;
  for (int n = 0; n < 2; ++n) {
    for (int d = 0; d < 2; ++d) {
      core::Placement pl;
      pl.node = n;
      pl.device = cluster.nodes[0].devices[0];
      pl.local_index = d;
      p.push_back(pl);
    }
  }
  return p;
}

TEST(RemapTasks, DeadNodeRanksLandRoundRobinOnSurvivors) {
  core::DeadResources dead;
  dead.nodes.push_back(1);
  const auto out = core::remap_tasks(four_placements(), dead);
  ASSERT_EQ(out.size(), 4u);
  // Ranks 0 and 1 (node 0) keep their slots.
  EXPECT_EQ(out[0].node, 0);
  EXPECT_EQ(out[0].local_index, 0);
  EXPECT_EQ(out[1].node, 0);
  EXPECT_EQ(out[1].local_index, 1);
  // Ranks 2 and 3 are re-admitted on node 0 with fresh local indices.
  EXPECT_EQ(out[2].node, 0);
  EXPECT_EQ(out[3].node, 0);
  EXPECT_EQ(out[2].local_index, 2);
  EXPECT_EQ(out[3].local_index, 3);
}

TEST(RemapTasks, DeadSlotKeepsRestOfNodeAlive) {
  core::DeadResources dead;
  dead.slots.emplace_back(0, 1);
  const auto out = core::remap_tasks(four_placements(), dead);
  EXPECT_EQ(out[0].node, 0);
  EXPECT_EQ(out[0].local_index, 0);
  // Rank 1's slot died; it lands on the first survivor (rank 0's host)
  // with a local index past the node's existing maximum.
  EXPECT_EQ(out[1].node, 0);
  EXPECT_EQ(out[1].local_index, 2);
  EXPECT_EQ(out[2].node, 1);
  EXPECT_EQ(out[3].node, 1);
}

TEST(RemapTasks, SurvivorOrderIsRankDeterministic) {
  core::DeadResources dead;
  dead.nodes.push_back(0);
  const auto a = core::remap_tasks(four_placements(), dead);
  const auto b = core::remap_tasks(four_placements(), dead);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << i;
    EXPECT_EQ(a[i].local_index, b[i].local_index) << i;
  }
}

// --- end-to-end recovery --------------------------------------------------------

core::LaunchOptions ft_opts(int nodes) {
  core::LaunchOptions o;
  o.cluster = sim::make_system("psg", nodes);
  o.deterministic = true;
  return o;
}

apps::JacobiConfig jacobi_cfg() {
  apps::JacobiConfig cfg;
  cfg.n = 96;
  cfg.iterations = 8;
  cfg.checkpoint_every = 2;
  return cfg;
}

TEST(FaultRecovery, KillNodeMidJacobiConvergesToFaultFreeChecksum) {
  const auto cfg = jacobi_cfg();
  const auto base = apps::run_jacobi(ft_opts(2), cfg);
  ASSERT_GT(base.launch.makespan, 0);
  IMPACC_EXPECT_QUIESCENT(base.launch);

  auto o = ft_opts(2);
  sim::FaultEvent ev;
  ev.node = 1;
  ev.time = base.launch.makespan * 0.5;
  o.faults.events.push_back(ev);
  const auto r = apps::run_jacobi(o, cfg);
  EXPECT_EQ(r.checksum, base.checksum);  // bit-for-bit
  IMPACC_EXPECT_QUIESCENT(r.launch);
  EXPECT_EQ(r.launch.ft.faults, 1u);
  EXPECT_EQ(r.launch.ft.recoveries, 1u);
  EXPECT_GT(r.launch.ft.checkpoints, 0u);
  EXPECT_GT(r.launch.ft.lost_seconds, 0.0);
  EXPECT_GT(r.launch.ft.recovery_seconds, 0.0);
  // The recovered run pays for the fault: restart latency + rolled-back
  // progress push the makespan past the fault-free one.
  EXPECT_GT(r.launch.makespan, base.launch.makespan);
}

TEST(FaultRecovery, KillDeviceMidJacobiConvergesToFaultFreeChecksum) {
  const auto cfg = jacobi_cfg();
  const auto base = apps::run_jacobi(ft_opts(2), cfg);

  auto o = ft_opts(2);
  sim::FaultEvent ev;
  ev.node = 0;
  ev.device = 2;  // one task dies; its node survives
  ev.time = base.launch.makespan * 0.6;
  o.faults.events.push_back(ev);
  const auto r = apps::run_jacobi(o, cfg);
  EXPECT_EQ(r.checksum, base.checksum);
  IMPACC_EXPECT_QUIESCENT(r.launch);
  EXPECT_EQ(r.launch.ft.recoveries, 1u);
}

TEST(FaultRecovery, SeedSweepConvergesUnderThreeDistinctSeeds) {
  // The headline acceptance test: three seeded kills at different times
  // against different victims, each recovering to the exact fault-free
  // checksum with a quiescent teardown.
  const auto cfg = jacobi_cfg();
  const auto base = apps::run_jacobi(ft_opts(2), cfg);
  for (unsigned seed : {1u, 2u, 3u}) {
    auto o = ft_opts(2);
    o.faults.seeds.push_back({seed, base.launch.makespan});
    const auto r = apps::run_jacobi(o, cfg);
    EXPECT_EQ(r.checksum, base.checksum) << "seed " << seed;
    IMPACC_EXPECT_QUIESCENT(r.launch);
    EXPECT_EQ(r.launch.ft.faults, 1u) << "seed " << seed;
  }
}

TEST(FaultRecovery, FaultBeforeFirstCheckpointRestartsFromScratch) {
  const auto cfg = jacobi_cfg();
  const auto base = apps::run_jacobi(ft_opts(2), cfg);

  auto o = ft_opts(2);
  sim::FaultEvent ev;
  ev.node = 1;
  ev.time = base.launch.makespan * 1e-3;  // long before epoch 1 commits
  o.faults.events.push_back(ev);
  const auto r = apps::run_jacobi(o, cfg);
  EXPECT_EQ(r.checksum, base.checksum);
  IMPACC_EXPECT_QUIESCENT(r.launch);
}

TEST(FaultRecovery, EnvSpecDrivesInjection) {
  const auto cfg = jacobi_cfg();
  const auto base = apps::run_jacobi(ft_opts(2), cfg);
  const std::string spec =
      "node:1@" + std::to_string(base.launch.makespan * 0.5);
  ScopedEnv env("IMPACC_FAULT", spec.c_str());
  const auto r = apps::run_jacobi(ft_opts(2), cfg);
  EXPECT_EQ(r.launch.ft.faults, 1u);
  EXPECT_EQ(r.checksum, base.checksum);
  IMPACC_EXPECT_QUIESCENT(r.launch);
}

TEST(FaultRecovery, VerifiesPointwiseAgainstSerialReferenceAfterRecovery) {
  auto cfg = jacobi_cfg();
  cfg.verify = true;
  const auto base = apps::run_jacobi(ft_opts(2), cfg);
  ASSERT_TRUE(base.verified);

  auto o = ft_opts(2);
  sim::FaultEvent ev;
  ev.node = 1;
  ev.time = base.launch.makespan * 0.5;
  o.faults.events.push_back(ev);
  const auto r = apps::run_jacobi(o, cfg);
  EXPECT_TRUE(r.verified);
  IMPACC_EXPECT_QUIESCENT(r.launch);
}

TEST(FaultRecovery, ArmedButNeverFiringLeavesVirtualTimesBitIdentical) {
  // The flag-off invariant, one notch stronger: even an *armed* plan must
  // not perturb committed virtual times until an event actually fires
  // (observation is free; retention copies payloads but charges nothing).
  auto cfg = jacobi_cfg();
  cfg.checkpoint_every = 0;  // no checkpoints — those do cost time
  const auto plain = apps::run_jacobi(ft_opts(2), cfg);

  auto o = ft_opts(2);
  sim::FaultEvent ev;
  ev.node = 1;
  ev.time = plain.launch.makespan * 1e3;  // never reached
  o.faults.events.push_back(ev);
  const auto armed = apps::run_jacobi(o, cfg);
  EXPECT_EQ(armed.launch.ft.faults, 0u);
  ASSERT_EQ(armed.launch.task_times.size(), plain.launch.task_times.size());
  for (std::size_t i = 0; i < plain.launch.task_times.size(); ++i) {
    EXPECT_EQ(armed.launch.task_times[i], plain.launch.task_times[i]) << i;
  }
  EXPECT_EQ(armed.checksum, plain.checksum);
}

TEST(FaultRecovery, CheckpointsWithoutFaultsPreserveTheResult) {
  // checkpoint_every > 0 against a never-firing plan: the snapshots cost
  // virtual time but must not change the computation.
  auto cfg = jacobi_cfg();
  cfg.checkpoint_every = 0;
  const auto plain = apps::run_jacobi(ft_opts(2), cfg);

  auto o = ft_opts(2);
  sim::FaultEvent ev;
  ev.node = 1;
  ev.time = plain.launch.makespan * 1e3;
  o.faults.events.push_back(ev);
  auto ck = jacobi_cfg();  // checkpoint_every = 2
  const auto r = apps::run_jacobi(o, ck);
  EXPECT_EQ(r.checksum, plain.checksum);
  EXPECT_GT(r.launch.ft.checkpoints, 0u);
  EXPECT_GT(r.launch.makespan, plain.launch.makespan);
  IMPACC_EXPECT_QUIESCENT(r.launch);
}

// --- sender retention / replay --------------------------------------------------

struct ReplayShared {
  ult::SpinLock lock;
  double t_exchanged = 0;  // receiver's clock after the recv (first run)
  int recv_value = 0;
  int sends = 0;  // times the send actually executed
};

/// Rank 0 sends an eager message *before* the coordinated checkpoint;
/// rank 1 receives it *after*. The message is in flight across the cut,
/// so recovery must re-inject it from the retention log — the restored
/// sender is already past its send.
void replay_body(ReplayShared* sh) {
  core::Task& t = core::require_task("replay");
  auto w = mpi::world();
  const int rank = mpi::comm_rank(w);
  int slot = 0;
  ft_protect("slot", &slot, sizeof(slot));
  const int epoch = ft_restore();
  if (rank == 0 && epoch == 0) {
    int v = 4242;
    mpi::send(&v, 1, mpi::Datatype::kInt, 1, 7, w);
    sh->lock.lock();
    sh->sends++;
    sh->lock.unlock();
  }
  ft_checkpoint();  // every rank; commits with the message in flight
  if (rank == 1) {
    int v = 0;
    mpi::recv(&v, 1, mpi::Datatype::kInt, 0, 7, w);
    sh->lock.lock();
    sh->recv_value = v;
    if (sh->t_exchanged == 0) sh->t_exchanged = t.clock.now();
    sh->lock.unlock();
  }
  // Tail work so the fault has room to land after the exchange.
  for (int i = 0; i < 40; ++i) mpi::barrier(w);
}

TEST(FaultRecovery, EagerMessageAcrossTheCutIsReplayedExactlyOnce) {
  ReplayShared clean;
  const auto base = launch(ft_opts(2), [&clean] { replay_body(&clean); });
  ASSERT_EQ(clean.recv_value, 4242);
  ASSERT_GT(clean.t_exchanged, 0);
  IMPACC_EXPECT_QUIESCENT(base);

  auto o = ft_opts(2);
  sim::FaultEvent ev;
  ev.node = 1;
  ev.time =
      clean.t_exchanged + (base.makespan - clean.t_exchanged) * 0.5;
  o.faults.events.push_back(ev);
  ReplayShared sh;
  const auto r = launch(o, [&sh] { replay_body(&sh); });
  EXPECT_EQ(sh.recv_value, 4242);  // payload delivered from the log
  EXPECT_EQ(sh.sends, 1);          // the restored sender did not re-send
  EXPECT_GE(r.ft.replayed_msgs, 1u);
  EXPECT_GT(r.ft.retained_msgs, 0u);
  IMPACC_EXPECT_QUIESCENT(r);
}

// --- observability --------------------------------------------------------------

TEST(FaultRecovery, PublishesFtMetricsAndRecoverySpan) {
  const auto cfg = jacobi_cfg();
  const auto base = apps::run_jacobi(ft_opts(2), cfg);

  auto o = ft_opts(2);
  o.metrics_path = "-";
  sim::FaultEvent ev;
  ev.node = 1;
  ev.time = base.launch.makespan * 0.5;
  o.faults.events.push_back(ev);
  const auto r = apps::run_jacobi(o, cfg);
  ASSERT_FALSE(r.launch.metrics.empty());
  EXPECT_DOUBLE_EQ(r.launch.metrics.value("ft.faults"), 1.0);
  EXPECT_DOUBLE_EQ(r.launch.metrics.value("ft.recoveries"), 1.0);
  EXPECT_GT(r.launch.metrics.value("ft.checkpoints"), 0.0);
  EXPECT_GT(r.launch.metrics.value("ft.checkpoint_bytes"), 0.0);
  EXPECT_GT(r.launch.metrics.value("ft.retained_msgs"), 0.0);
  EXPECT_GT(r.launch.metrics.value("ft.recovery_seconds"), 0.0);
}

}  // namespace
}  // namespace impacc
