// Unit tests for the user-level thread substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ult/scheduler.h"
#include "ult/sync.h"

namespace impacc::ult {
namespace {

TEST(Ult, RunsAndFinishesFibers) {
  Scheduler sched(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    sched.spawn([&count] { count.fetch_add(1); });
  }
  sched.wait_all();
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(sched.fibers_finished(), 10u);
}

TEST(Ult, CurrentIsNullOutsideFibers) { EXPECT_EQ(Scheduler::current(), nullptr); }

TEST(Ult, CurrentIsSetInsideFiber) {
  Scheduler sched(1);
  std::atomic<bool> ok{false};
  Fiber* spawned = sched.spawn([&ok] {
    ok.store(Scheduler::current() != nullptr);
  });
  sched.wait_all();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(spawned->state(), FiberState::kDone);
}

TEST(Ult, YieldInterleavesOnOneWorker) {
  // With a single worker, two yielding fibers must alternate. Both are
  // spawned from a parent fiber so they enter the run queue back-to-back
  // (spawning from the main thread races the worker picking up the first).
  Scheduler sched(1);
  std::vector<int> order;
  sched.spawn([&sched, &order] {
    for (int id = 0; id < 2; ++id) {
      sched.spawn([&sched, &order, id] {
        for (int i = 0; i < 3; ++i) {
          order.push_back(id);
          sched.yield();
        }
      });
    }
  });
  sched.wait_all();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Ult, BlockUnblockRoundTrip) {
  Scheduler sched(2);
  std::atomic<Fiber*> sleeper{nullptr};
  std::atomic<bool> woke{false};
  sched.spawn([&] {
    sleeper.store(Scheduler::current());
    Scheduler::current()->scheduler()->block();
    woke.store(true);
  });
  sched.spawn([&] {
    while (sleeper.load() == nullptr) {
      Scheduler::current()->scheduler()->yield();
    }
    // Unblock may race the sleeper's park; the protocol latches it.
    sched.unblock(sleeper.load());
  });
  sched.wait_all();
  EXPECT_TRUE(woke.load());
}

TEST(Ult, ManyFibersCheapStacks) {
  // Thousands of fibers must work (the runtime spawns one per MPI task;
  // Titan-scale runs use 8192). MAP_NORESERVE keeps this cheap.
  Scheduler sched(2);
  std::atomic<int> count{0};
  constexpr int kFibers = 3000;
  for (int i = 0; i < kFibers; ++i) {
    sched.spawn([&count] { count.fetch_add(1); });
  }
  sched.wait_all();
  EXPECT_EQ(count.load(), kFibers);
}

TEST(Ult, UserDataRoundTrip) {
  Scheduler sched(1);
  int payload = 42;
  std::atomic<int> got{0};
  sched.spawn([&got, &payload] {
    Scheduler::current()->set_user_data(&payload);
    got.store(*static_cast<int*>(Scheduler::current()->user_data()));
  });
  sched.wait_all();
  EXPECT_EQ(got.load(), 42);
}

// --- FiberMutex ----------------------------------------------------------------

TEST(UltSync, MutexProvidesMutualExclusion) {
  Scheduler sched(4);
  FiberMutex mutex;
  long counter = 0;  // unsynchronized on purpose; the mutex must protect it
  constexpr int kFibers = 16;
  constexpr int kIters = 500;
  for (int i = 0; i < kFibers; ++i) {
    sched.spawn([&] {
      for (int k = 0; k < kIters; ++k) {
        FiberLock lock(mutex);
        const long v = counter;
        if (k % 8 == 0) Scheduler::current()->scheduler()->yield();
        counter = v + 1;
      }
    });
  }
  sched.wait_all();
  EXPECT_EQ(counter, static_cast<long>(kFibers) * kIters);
}

TEST(UltSync, TryLock) {
  Scheduler sched(1);
  FiberMutex mutex;
  std::atomic<int> phase{0};
  sched.spawn([&] {
    EXPECT_TRUE(mutex.try_lock());
    EXPECT_FALSE(mutex.try_lock());
    mutex.unlock();
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
    phase.store(1);
  });
  sched.wait_all();
  EXPECT_EQ(phase.load(), 1);
}

// --- FiberCondVar ---------------------------------------------------------------

TEST(UltSync, CondVarPredicateWait) {
  Scheduler sched(2);
  FiberMutex mutex;
  FiberCondVar cv;
  int stage = 0;
  std::vector<int> log;
  sched.spawn([&] {
    FiberLock lock(mutex);
    cv.wait(mutex, [&stage] { return stage == 1; });
    log.push_back(2);
  });
  sched.spawn([&] {
    FiberLock lock(mutex);
    stage = 1;
    log.push_back(1);
    cv.notify_all();
  });
  sched.wait_all();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 1);
  EXPECT_EQ(log[1], 2);
}

// --- FiberBarrier ---------------------------------------------------------------

TEST(UltSync, BarrierSynchronizesGenerations) {
  Scheduler sched(3);
  constexpr int kParties = 8;
  constexpr int kRounds = 20;
  FiberBarrier barrier(kParties);
  std::atomic<int> in_round[kRounds] = {};
  std::atomic<bool> violation{false};
  for (int f = 0; f < kParties; ++f) {
    sched.spawn([&] {
      for (int r = 0; r < kRounds; ++r) {
        in_round[r].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every fiber must have entered round r.
        if (in_round[r].load() != kParties) violation.store(true);
      }
    });
  }
  sched.wait_all();
  EXPECT_FALSE(violation.load());
}

TEST(UltSync, BarrierElectsOneLeaderPerGeneration) {
  Scheduler sched(2);
  constexpr int kParties = 5;
  constexpr int kRounds = 10;
  FiberBarrier barrier(kParties);
  std::atomic<int> leaders{0};
  for (int f = 0; f < kParties; ++f) {
    sched.spawn([&] {
      for (int r = 0; r < kRounds; ++r) {
        if (barrier.arrive_and_wait()) leaders.fetch_add(1);
      }
    });
  }
  sched.wait_all();
  EXPECT_EQ(leaders.load(), kRounds);
}

// --- FiberLatch / FiberEvent ------------------------------------------------------

TEST(UltSync, LatchReleasesAtZero) {
  Scheduler sched(2);
  FiberLatch latch(3);
  std::atomic<int> released{0};
  for (int i = 0; i < 2; ++i) {
    sched.spawn([&] {
      latch.wait();
      released.fetch_add(1);
    });
  }
  sched.spawn([&] {
    EXPECT_EQ(released.load(), 0);
    latch.count_down(2);
    latch.count_down(1);
  });
  sched.wait_all();
  EXPECT_EQ(released.load(), 2);
}

TEST(UltSync, EventSetBeforeWaitDoesNotBlock) {
  Scheduler sched(1);
  FiberEvent ev;
  std::atomic<bool> done{false};
  sched.spawn([&] {
    ev.set();
    ev.wait_and_reset();  // already set: returns immediately
    done.store(true);
  });
  sched.wait_all();
  EXPECT_TRUE(done.load());
}

TEST(UltSync, EventWakesWaiter) {
  Scheduler sched(2);
  FiberEvent ev;
  std::atomic<int> seq{0};
  sched.spawn([&] {
    ev.wait_and_reset();
    EXPECT_EQ(seq.load(), 1);
    seq.store(2);
  });
  sched.spawn([&] {
    seq.store(1);
    ev.set();
  });
  sched.wait_all();
  EXPECT_EQ(seq.load(), 2);
}

}  // namespace
}  // namespace impacc::ult

namespace impacc::ult {
namespace {

TEST(Ult, SpawnFromWithinAFiber) {
  Scheduler sched(2);
  std::atomic<int> grandchildren{0};
  sched.spawn([&sched, &grandchildren] {
    for (int i = 0; i < 8; ++i) {
      sched.spawn([&sched, &grandchildren] {
        sched.spawn([&grandchildren] { grandchildren.fetch_add(1); });
      });
    }
  });
  sched.wait_all();
  EXPECT_EQ(grandchildren.load(), 8);
  EXPECT_EQ(sched.fibers_spawned(), 17u);  // 1 + 8 + 8
}

TEST(Ult, WaitAllReturnsOnlyWhenEveryFiberFinished) {
  // Regression test for the done-accounting race: fibers that block and
  // then finish on a different worker must be counted exactly once.
  for (int round = 0; round < 20; ++round) {
    Scheduler sched(4);
    std::atomic<int> done{0};
    FiberEvent gate;
    constexpr int kWaiters = 12;
    for (int i = 0; i < kWaiters; ++i) {
      sched.spawn([&gate, &done] {
        gate.wait_and_reset();
        gate.set();  // chain-release the next waiter
        done.fetch_add(1);
      });
    }
    sched.spawn([&gate] { gate.set(); });
    sched.wait_all();
    ASSERT_EQ(done.load(), kWaiters) << "round " << round;
  }
}

}  // namespace
}  // namespace impacc::ult
