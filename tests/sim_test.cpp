// Unit tests for the virtual-time substrate: cost models, topology
// presets (Table 1), interconnect model.
#include <gtest/gtest.h>

#include "sim/costmodel.h"
#include "sim/netmodel.h"
#include "sim/systems.h"
#include "sim/vclock.h"

namespace impacc::sim {
namespace {

TEST(VClock, AdvanceAndMerge) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance(-1.0);  // negative durations are ignored
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.merge(1.0);  // merging an earlier time is a no-op
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.merge(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
}

TEST(LinkModel, LatencyDominatesSmallBandwidthDominatesLarge) {
  LinkModel link{from_us(10), 10e9};
  // 64 B: essentially latency.
  EXPECT_NEAR(link.time(64), from_us(10), from_us(0.1));
  // 1 GB: essentially bandwidth.
  EXPECT_NEAR(link.time(1000000000), 0.1, 0.001);
  // Effective bandwidth grows monotonically with size (Fig. 8/9 curves).
  double prev = 0;
  for (std::uint64_t s = 64; s <= (1u << 30); s *= 4) {
    const double bw = gbps(static_cast<double>(s), link.time(s));
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(CostModel, NearBeatsFarOnMultiSocketNodes) {
  const ClusterDesc psg = make_psg();
  const NodeDesc& node = psg.nodes[0];
  const DeviceDesc& dev = node.devices[0];
  for (std::uint64_t bytes : {64ull, 1ull << 20, 1ull << 30}) {
    EXPECT_LT(pcie_copy_time(node, dev, bytes, true),
              pcie_copy_time(node, dev, bytes, false));
  }
  // Large-transfer ratio approaches 1/numa_far_bw_factor (paper: up to
  // 3.5x on Beacon, Fig. 8).
  const ClusterDesc beacon = make_beacon(1);
  const NodeDesc& bnode = beacon.nodes[0];
  const DeviceDesc& bdev = bnode.devices[0];
  const double ratio = pcie_copy_time(bnode, bdev, 1ull << 30, false) /
                       pcie_copy_time(bnode, bdev, 1ull << 30, true);
  EXPECT_NEAR(ratio, 1.0 / bnode.numa_far_bw_factor, 0.2);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(CostModel, SingleSocketNodesHaveNoNumaPenalty) {
  const ClusterDesc titan = make_titan(1);
  const NodeDesc& node = titan.nodes[0];
  const DeviceDesc& dev = node.devices[0];
  EXPECT_DOUBLE_EQ(pcie_copy_time(node, dev, 1 << 20, true),
                   pcie_copy_time(node, dev, 1 << 20, false));
}

TEST(CostModel, PeerCopyEligibility) {
  const ClusterDesc psg = make_psg();
  const auto& devs = psg.nodes[0].devices;
  // Devices 0-3 share root complex 0; 4-7 share root complex 1.
  EXPECT_TRUE(peer_copy_possible(devs[0], devs[1]));
  EXPECT_TRUE(peer_copy_possible(devs[4], devs[7]));
  EXPECT_FALSE(peer_copy_possible(devs[0], devs[4]));
  // OpenCL-backed MICs never peer-copy (no GPUDirect analog).
  const ClusterDesc beacon = make_beacon(1);
  EXPECT_FALSE(
      peer_copy_possible(beacon.nodes[0].devices[0], beacon.nodes[0].devices[1]));
}

TEST(CostModel, PeerDtoDSubstantiallyBeatsBaselineStagedDtoD) {
  // Fig. 9 (c): IMPACC shows ~8x higher DtoD bandwidth on PSG because the
  // baseline pays DtoH + 2x HtoH (IPC) + HtoD.
  const ClusterDesc psg = make_psg();
  const NodeDesc& node = psg.nodes[0];
  const auto& d0 = node.devices[0];
  const auto& d1 = node.devices[1];
  const std::uint64_t bytes = 64ull << 20;
  const Time peer = peer_copy_time(d0, d1, bytes);
  const Time baseline = staged_dtod_time(node, d0, d1, bytes, true) +
                        psg.costs.ipc_message_overhead +
                        host_copy_time(node, bytes);
  EXPECT_GT(baseline / peer, 4.0);
}

TEST(CostModel, KernelRoofline) {
  DeviceDesc dev;
  dev.flops_dp = 1e12;
  dev.mem_bandwidth = 1e11;
  dev.kernel_launch_overhead = from_us(8);
  // Compute-bound kernel.
  EXPECT_NEAR(kernel_time(dev, 1e9, 1e3), from_us(8) + 1e-3, 1e-6);
  // Memory-bound kernel.
  EXPECT_NEAR(kernel_time(dev, 1e3, 1e9), from_us(8) + 1e-2, 1e-6);
  // Launch overhead floors tiny kernels.
  EXPECT_GE(kernel_time(dev, 1, 1), from_us(8));
}

TEST(NetModel, RdmaSkipsHostStaging) {
  const ClusterDesc titan = make_titan(2);
  const NodeDesc& node = titan.nodes[0];
  BufferPlace dev_src{&node, &node.devices[0], true};
  BufferPlace dev_dst{&node, &node.devices[0], true};
  BufferPlace host{&node, nullptr, true};
  const std::uint64_t bytes = 4 << 20;

  FabricDesc rdma = titan.fabric;
  rdma.gpudirect_rdma = true;
  FabricDesc staged = titan.fabric;
  staged.gpudirect_rdma = false;

  const Time t_rdma = internode_transfer_time(rdma, dev_src, dev_dst, bytes);
  const Time t_staged =
      internode_transfer_time(staged, dev_src, dev_dst, bytes);
  const Time t_host = internode_transfer_time(rdma, host, host, bytes);
  EXPECT_LT(t_rdma, t_staged);
  // With RDMA, device buffers ride the wire like host buffers.
  EXPECT_DOUBLE_EQ(t_rdma, t_host);
  // Staging adds exactly two PCIe hops.
  EXPECT_NEAR(t_staged - t_rdma,
              2 * pcie_copy_time(node, node.devices[0], bytes, true), 1e-12);
}

// --- Chunk pipeline (section 3.5) ---------------------------------------------------

TEST(ChunkPipeline, StageLinksMatchTheMonolithicCostFunctions) {
  // staging_link/wire_link are the per-chunk forms of pcie_copy_time and
  // fabric_time; at any single size they must charge the same cost.
  const ClusterDesc psg = make_psg();
  const NodeDesc& node = psg.nodes[0];
  const DeviceDesc& dev = node.devices[0];
  for (std::uint64_t bytes : {64ull, 1ull << 20, 64ull << 20}) {
    for (bool near : {true, false}) {
      EXPECT_NEAR(staging_link(node, dev, near).time(bytes),
                  pcie_copy_time(node, dev, bytes, near), 1e-15);
    }
    EXPECT_NEAR(wire_link(psg.fabric).time(bytes),
                fabric_time(psg.fabric, bytes), 1e-15);
  }
}

TEST(ChunkPipeline, SingleChunkIsTheSumOfStageTimes) {
  // Chunk count 1 (chunk >= message): no overlap is possible, the pipeline
  // degenerates to the sequential staged transfer.
  const std::vector<LinkModel> stages = {
      {from_us(11), 6.0e9}, {from_us(2.6), 5.2e9}, {from_us(11), 6.0e9}};
  const std::uint64_t bytes = 1 << 20;
  Time expect = 0;
  for (const LinkModel& s : stages) expect += s.time(bytes);
  EXPECT_NEAR(pipelined_transfer_time(stages, bytes, bytes), expect, 1e-15);
  EXPECT_NEAR(pipelined_transfer_time(stages, bytes, 2 * bytes), expect,
              1e-15);
}

TEST(ChunkPipeline, UniformChunksMatchTheClosedForm) {
  // n uniform chunks through a linear pipeline with unlimited buffering:
  // total = sum_i t_i(C) + (n-1) * max_i t_i(C) — fill the pipe once, then
  // every further chunk costs one bottleneck-stage service time.
  const std::vector<LinkModel> stages = {
      {from_us(11), 6.0e9}, {from_us(2.6), 5.2e9}, {from_us(9), 12.0e9}};
  const std::uint64_t chunk = 256 << 10;
  for (int n : {2, 7, 64}) {
    const std::uint64_t bytes = static_cast<std::uint64_t>(n) * chunk;
    Time sum = 0;
    Time bottleneck = 0;
    for (const LinkModel& s : stages) {
      sum += s.time(chunk);
      bottleneck = std::max(bottleneck, s.time(chunk));
    }
    EXPECT_NEAR(pipelined_transfer_time(stages, bytes, chunk),
                sum + (n - 1) * bottleneck, 1e-12)
        << n << " chunks";
  }
}

TEST(ChunkPipeline, NonDivisibleTailMatchesTheClosedForm) {
  // 2.5 chunks through [fast, slow]: with the second stage the strict
  // bottleneck at every chunk size, it runs back to back, so the total is
  // the fill time of the first chunk plus the bottleneck's busy time.
  const LinkModel fast{0, 10e9};
  const LinkModel slow{0, 1e9};
  const std::vector<LinkModel> stages = {fast, slow};
  const std::uint64_t chunk = 1 << 20;
  const std::uint64_t bytes = 2 * chunk + chunk / 2;
  const Time expect = fast.time(chunk) + chunked_stage_total(slow, bytes, chunk);
  EXPECT_NEAR(pipelined_transfer_time(stages, bytes, chunk), expect, 1e-12);
  // The tail chunk is charged at its own size, not padded to a full chunk.
  EXPECT_NEAR(chunked_stage_total(slow, bytes, chunk),
              3 * slow.latency + static_cast<double>(bytes) / slow.bandwidth,
              1e-12);
}

TEST(ChunkPipeline, StageAvailabilityAndStartAreHonored) {
  // A busy wire (stage_avail) delays every chunk behind it; a late start
  // delays the first stage.
  const LinkModel stages[2] = {{0, 10e9}, {0, 1e9}};
  const Time avail[2] = {0, from_ms(5)};
  const std::uint64_t chunk = 1 << 20;
  const std::uint64_t bytes = 4 * chunk;
  const auto finishes = chunk_pipeline_finishes(stages, 2, avail,
                                                /*start=*/from_ms(1), bytes,
                                                chunk);
  ASSERT_EQ(finishes.size(), 4u);
  // Wire opens at 5 ms (after every chunk's first stage is done), then
  // streams the chunks back to back.
  for (std::size_t j = 0; j < finishes.size(); ++j) {
    EXPECT_NEAR(finishes[j],
                from_ms(5) + (static_cast<double>(j + 1) * chunk) / 1e9,
                1e-12);
  }
  // Per-chunk finishes are strictly increasing.
  for (std::size_t j = 1; j < finishes.size(); ++j) {
    EXPECT_GT(finishes[j], finishes[j - 1]);
  }
}

TEST(NetModel, EagerThreshold) {
  const ClusterDesc psg = make_psg();
  EXPECT_TRUE(is_eager(psg.fabric, 1024));
  EXPECT_TRUE(is_eager(psg.fabric, kEagerThreshold));
  EXPECT_FALSE(is_eager(psg.fabric, kEagerThreshold + 1));
}

// --- Table 1 presets ------------------------------------------------------------

TEST(Systems, PsgMatchesTable1) {
  const ClusterDesc c = make_psg();
  EXPECT_EQ(c.name, "PSG");
  ASSERT_EQ(c.num_nodes(), 1);
  const NodeDesc& n = c.nodes[0];
  EXPECT_EQ(n.sockets, 2);                      // 2x E5-2698 v3
  EXPECT_EQ(n.host_mem_bytes, 256ull << 30);    // 256 GB
  ASSERT_EQ(n.devices.size(), 8u);              // 8x GK210
  for (const auto& d : n.devices) {
    EXPECT_EQ(d.kind, DeviceKind::kNvidiaGpu);
    EXPECT_EQ(d.backend, BackendKind::kCudaLike);
    EXPECT_EQ(d.mem_bytes, 12ull << 30);        // 12 GB GDDR5
    EXPECT_NEAR(d.pcie.bandwidth, 12e9, 1e9);   // PCIe gen3 x16
  }
  EXPECT_EQ(c.fabric.name, "Mellanox InfiniBand FDR");
  EXPECT_FALSE(c.fabric.gpudirect_rdma);
  EXPECT_TRUE(c.mpi_thread_multiple);  // MVAPICH2 2.0
}

TEST(Systems, BeaconMatchesTable1) {
  const ClusterDesc c = make_beacon();
  EXPECT_EQ(c.name, "Beacon");
  ASSERT_EQ(c.num_nodes(), 32);  // paper uses 32 of 48 nodes
  const NodeDesc& n = c.nodes[0];
  ASSERT_EQ(n.devices.size(), 4u);  // 4x Xeon Phi 5110P
  for (const auto& d : n.devices) {
    EXPECT_EQ(d.kind, DeviceKind::kXeonPhi);
    EXPECT_EQ(d.backend, BackendKind::kOpenClLike);
    EXPECT_EQ(d.mem_bytes, 8ull << 30);        // 8 GB
    EXPECT_NEAR(d.pcie.bandwidth, 6e9, 1e9);   // PCIe gen2 x16
    EXPECT_EQ(d.exec_units, 60);               // 60 x86 cores
  }
  EXPECT_TRUE(c.mpi_thread_multiple);  // Intel MPI 5.0
}

TEST(Systems, TitanMatchesTable1) {
  const ClusterDesc c = make_titan();
  EXPECT_EQ(c.name, "Titan");
  ASSERT_EQ(c.num_nodes(), 8192);  // paper uses 8192 of 18688 nodes
  const NodeDesc& n = c.nodes[0];
  EXPECT_EQ(n.sockets, 1);                    // AMD Opteron 6274
  EXPECT_EQ(n.host_mem_bytes, 32ull << 30);   // 32 GB
  ASSERT_EQ(n.devices.size(), 1u);            // 1x K20x
  EXPECT_EQ(n.devices[0].mem_bytes, 6ull << 30);
  EXPECT_EQ(c.fabric.name, "Cray Gemini");
  EXPECT_TRUE(c.fabric.gpudirect_rdma);  // exploited via Cray MPICH2
}

TEST(Systems, HeterogeneousDemoMatchesFig2) {
  const ClusterDesc c = make_heterogeneous_demo();
  ASSERT_EQ(c.num_nodes(), 3);
  EXPECT_EQ(c.nodes[0].devices.size(), 2u);  // 2 GPUs
  EXPECT_EQ(c.nodes[1].devices.size(), 3u);  // GPU + 2 MICs
  EXPECT_EQ(c.nodes[2].devices.size(), 1u);  // CPU-only node
  EXPECT_EQ(c.nodes[2].devices[0].kind, DeviceKind::kCpu);
}

TEST(Systems, LookupByName) {
  EXPECT_EQ(make_system("psg").name, "PSG");
  EXPECT_EQ(make_system("beacon", 4).num_nodes(), 4);
  EXPECT_EQ(make_system("titan", 16).num_nodes(), 16);
}

TEST(Systems, CpuDeviceIsHostShared) {
  const DeviceDesc d = make_cpu_device(0, 16, 2.3);
  EXPECT_EQ(d.kind, DeviceKind::kCpu);
  EXPECT_EQ(d.backend, BackendKind::kHostShared);
  EXPECT_GT(d.flops_dp, 0);
}

}  // namespace
}  // namespace impacc::sim

#include "sim/trace.h"

namespace impacc::sim {
namespace {

TEST(TraceSink, RecordsAndSerializes) {
  TraceSink sink;
  EXPECT_EQ(sink.size(), 0u);
  sink.record(0, "dev0 q1", "kernel-a", "kernel", from_us(10), from_us(25));
  sink.record(1, "mpi", "msg 0->1 (64B)", "intranode", from_us(5),
              from_us(7));
  ASSERT_EQ(sink.size(), 2u);
  const auto events = sink.snapshot();
  EXPECT_EQ(events[0].pid, 0);
  EXPECT_EQ(events[0].tid, "dev0 q1");
  EXPECT_DOUBLE_EQ(events[1].end - events[1].start, from_us(2));
  const std::string json = sink.to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"kernel-a\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15.000"), std::string::npos);
}

TEST(TraceSink, EscapesJsonSpecials) {
  TraceSink sink;
  sink.record(0, "t", "quote\"back\\slash\nnl", "c", 0, 1);
  const std::string json = sink.to_chrome_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnl"), std::string::npos);
}

TEST(TraceSink, EscapesHostileNamesEverywhere) {
  // ISSUE 3 satellite: names with quotes, backslashes, and control
  // characters must never break the JSON — in any string field of any
  // event phase.
  TraceSink sink;
  sink.record(0, "tid\"q", "name\\b", "cat\tx", 0, 1);
  sink.record_flow(true, 7, 0, "t\"i", "n\rm", "c\x01z", 0);
  sink.record_counter(0, "cnt\"r", "ser\"ies\n", 0, 1.5);
  const std::string json = sink.to_chrome_json();
  // No raw quote may survive inside a value: every '"' in the output is
  // either structural or escaped. Check the specific translations.
  EXPECT_NE(json.find("tid\\\"q"), std::string::npos);
  EXPECT_NE(json.find("name\\\\b"), std::string::npos);
  EXPECT_NE(json.find("cat\\tx"), std::string::npos);
  EXPECT_NE(json.find("n\\rm"), std::string::npos);
  EXPECT_NE(json.find("c\\u0001z"), std::string::npos);
  EXPECT_NE(json.find("ser\\\"ies\\n"), std::string::npos);
  // No raw control characters anywhere in the serialized form except the
  // structural newline between events.
  for (const char ch : json) {
    if (ch == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
  }
}

TEST(TraceSink, FlowAndCounterEventShapes) {
  TraceSink sink;
  sink.record_flow(true, 42, 0, "mpi", "msg", "mpi", from_us(10));
  sink.record_flow(false, 42, 1, "mpi", "msg", "mpi", from_us(30));
  sink.record_counter(1, "queue depth", "commands", from_us(5), 3.0);
  const std::string json = sink.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  // Flow finish binds to the enclosing slice (bp:"e").
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"commands\":3"), std::string::npos);
}

TEST(TraceSink, WritesFile) {
  TraceSink sink;
  sink.record(2, "x", "op", "copy", 0, from_us(1));
  const std::string path = "/tmp/impacc_trace_test.json";
  ASSERT_TRUE(sink.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[512] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(n, 2u);
  EXPECT_EQ(buf[0], '[');
  EXPECT_NE(std::string(buf).find("\"pid\":2"), std::string::npos);
}

}  // namespace
}  // namespace impacc::sim
