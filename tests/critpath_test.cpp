// Critical-path profiler and hang watchdog (ISSUE 8, DESIGN.md §10).
//
// Covers the recorder in isolation (closed-form DAG, what-if estimates,
// graph round trip), the runtime integration (Σ critpath.*.seconds ==
// makespan on the smoke and Fig.14 workloads; flag-off runs bit-for-bit
// identical), the handler-socket pinning satellite, the trace terminal
// samples, and the watchdog's exit code + diagnostics dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "apps/jacobi.h"
#include "core/pinning.h"
#include "core/runtime.h"
#include "impacc.h"
#include "obs/critpath.h"
#include "sim/trace.h"

namespace impacc {
namespace {

core::LaunchOptions opts(const char* system, int nodes) {
  core::LaunchOptions o;
  o.cluster = sim::make_system(system, nodes);
  o.mode = core::ExecMode::kModelOnly;
  o.scheduler_workers = 1;
  return o;
}

// --- Recorder in isolation --------------------------------------------------

using obs::CritCategory;
using obs::CritPath;

/// Hand-built chain with gaps:
///   n1 compute [0,1]                      (chain head)
///   n2 kernel  [2,5]  pred n1, gap sched  (1s scheduling gap before it)
///   n3 wire    [5,9]  pred n2
///   n4 compute [9,10] pred n3
/// Backward from n4 at makespan 10 the attribution is closed-form.
std::uint32_t build_chain(CritPath* cp) {
  const auto n1 = cp->add(CritCategory::kCompute, 0, 1);
  const auto n2 = cp->add(CritCategory::kKernel, 2, 5, n1, 0, 0,
                          CritCategory::kSchedStall);
  const auto n3 = cp->add(CritCategory::kWire, 5, 9, n2);
  return cp->add(CritCategory::kCompute, 9, 10, n3);
}

TEST(CritPathDag, ClosedFormAttribution) {
  CritPath cp;
  const std::uint32_t end_node = build_chain(&cp);
  const CritPath::Report r = cp.analyze(10.0, end_node);

  // compute: [0,1] + [9,10]; kernel: [2,5]; wire: [5,9]; the [1,2] gap
  // books to n2's gap category (sched_stall). Every value is an exact sum
  // of integer-valued doubles.
  EXPECT_DOUBLE_EQ(r.seconds[static_cast<int>(CritCategory::kCompute)], 2.0);
  EXPECT_DOUBLE_EQ(r.seconds[static_cast<int>(CritCategory::kKernel)], 3.0);
  EXPECT_DOUBLE_EQ(r.seconds[static_cast<int>(CritCategory::kWire)], 4.0);
  EXPECT_DOUBLE_EQ(r.seconds[static_cast<int>(CritCategory::kSchedStall)],
                   1.0);
  EXPECT_DOUBLE_EQ(r.total(), 10.0);
  ASSERT_EQ(r.path.size(), 4u);  // walk order: makespan -> 0
  EXPECT_EQ(r.path.front().id, end_node);
  EXPECT_EQ(r.path.back().id, 1u);
}

TEST(CritPathDag, WhatIfEstimates) {
  CritPath cp;
  build_chain(&cp);

  // Baseline (-1) re-schedules with nothing zeroed and reproduces the
  // recorded makespan (exactly here: integer arithmetic).
  EXPECT_DOUBLE_EQ(cp.whatif_makespan(-1), 10.0);
  // Zeroing wire removes its 4s; the start delays (1s before n2) stay.
  EXPECT_DOUBLE_EQ(
      cp.whatif_makespan(static_cast<int>(CritCategory::kWire)), 6.0);
  EXPECT_DOUBLE_EQ(
      cp.whatif_makespan(static_cast<int>(CritCategory::kKernel)), 7.0);
}

TEST(CritPathDag, ReportMentionsEveryCategoryOnPath) {
  CritPath cp;
  const std::uint32_t end_node = build_chain(&cp);
  const std::string rep = cp.format_report(cp.analyze(10.0, end_node), 10);
  EXPECT_NE(rep.find("compute"), std::string::npos);
  EXPECT_NE(rep.find("kernel"), std::string::npos);
  EXPECT_NE(rep.find("wire"), std::string::npos);
  EXPECT_NE(rep.find("sched_stall"), std::string::npos);
  EXPECT_NE(rep.find("what-if"), std::string::npos);
}

TEST(CritPathDag, GraphSaveLoadRoundTrip) {
  CritPath cp;
  const std::uint32_t end_node = build_chain(&cp);
  const std::string path =
      testing::TempDir() + "/critpath_roundtrip.cpg";

  ASSERT_TRUE(cp.save_graph(path, 10.0, end_node));
  CritPath loaded;
  sim::Time makespan = 0;
  std::uint32_t loaded_end = 0;
  ASSERT_TRUE(CritPath::load_graph(path, &loaded, &makespan, &loaded_end));
  std::remove(path.c_str());

  EXPECT_DOUBLE_EQ(makespan, 10.0);
  EXPECT_EQ(loaded_end, end_node);
  ASSERT_EQ(loaded.num_nodes(), cp.num_nodes());
  for (std::uint32_t id = 1; id <= cp.num_nodes(); ++id) {
    const obs::CritNode a = cp.node(id);
    const obs::CritNode b = loaded.node(id);
    EXPECT_DOUBLE_EQ(a.start, b.start) << "node " << id;
    EXPECT_DOUBLE_EQ(a.end, b.end) << "node " << id;
    EXPECT_EQ(a.pred[0], b.pred[0]) << "node " << id;
    EXPECT_EQ(a.cat, b.cat) << "node " << id;
    EXPECT_EQ(a.gap_cat, b.gap_cat) << "node " << id;
    EXPECT_EQ(a.owner, b.owner) << "node " << id;
  }
  // Same attribution after the round trip.
  const CritPath::Report r1 = cp.analyze(10.0, end_node);
  const CritPath::Report r2 = loaded.analyze(makespan, loaded_end);
  for (int c = 0; c < obs::kCritCategoryCount; ++c) {
    EXPECT_DOUBLE_EQ(r1.seconds[c], r2.seconds[c]);
  }
}

TEST(CritPathDag, LoadGraphRejectsMissingFile) {
  CritPath cp;
  sim::Time makespan = 0;
  std::uint32_t end_node = 0;
  EXPECT_FALSE(CritPath::load_graph(testing::TempDir() + "/no_such.cpg", &cp,
                                    &makespan, &end_node));
}

// --- Runtime integration ----------------------------------------------------

double critpath_sum(const obs::MetricsSnapshot& m) {
  double sum = 0;
  for (int c = 0; c < obs::kCritCategoryCount; ++c) {
    const auto cat = static_cast<CritCategory>(c);
    sum += m.value(std::string("critpath.") + obs::crit_category_slug(cat) +
                   ".seconds");
  }
  return sum;
}

void expect_reconciled(const LaunchResult& result) {
  const double sum = critpath_sum(result.metrics);
  EXPECT_NEAR(sum, result.makespan,
              1e-12 + 1e-9 * std::fabs(result.makespan));
  EXPECT_GT(sum, 0.0);
  // Fractions mirror seconds / makespan; spot-check they sum to ~1.
  double frac = 0;
  for (int c = 0; c < obs::kCritCategoryCount; ++c) {
    const auto cat = static_cast<CritCategory>(c);
    frac += result.metrics.value(std::string("critpath.") +
                                 obs::crit_category_slug(cat) + ".fraction");
  }
  EXPECT_NEAR(frac, 1.0, 1e-9);
}

/// The smoke workload: staged internode p2p (GPUDirect off) on Titan, so
/// the path crosses stage_dtoh -> wire -> stage_htod and the handler.
LaunchResult run_staged_p2p(bool critpath) {
  auto o = opts("titan", 2);
  o.features.gpudirect_rdma = false;
  o.critpath = critpath;
  constexpr int kMsgs = 4;
  constexpr std::uint64_t kBytes = 1 << 20;
  return launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    auto* buf = static_cast<char*>(node_malloc(kBytes));
    acc::copyin(buf, kBytes);
    for (int m = 0; m < kMsgs; ++m) {
      if (r == 0) {
        acc::mpi({.send_device = true});
        mpi::send(buf, kBytes, mpi::Datatype::kByte, 1, m, w);
      } else if (r == 1) {
        acc::mpi({.recv_device = true});
        mpi::recv(buf, kBytes, mpi::Datatype::kByte, 0, m, w);
      }
    }
    acc::del(buf);
    node_free(buf);
  });
}

TEST(CritPathRun, StagedP2PReconciles) {
  expect_reconciled(run_staged_p2p(true));
}

TEST(CritPathRun, Fig14JacobiReconciles) {
  // The Fig. 14 configuration: multi-device Jacobi with halo exchange.
  auto o = opts("psg", 1);
  apps::JacobiConfig cfg;
  cfg.n = 2048;
  cfg.iterations = 3;
  const auto r = apps::run_jacobi([&] {
    auto with_cp = o;
    with_cp.critpath = true;
    return with_cp;
  }(), cfg);
  expect_reconciled(r.launch);
}

TEST(CritPathRun, FlagOffIsBitForBitIdentical) {
  // Recording must not perturb the simulation: the same workload with the
  // profiler off and on yields the exact same doubles (not just close).
  const LaunchResult off = run_staged_p2p(false);
  const LaunchResult on = run_staged_p2p(true);
  EXPECT_EQ(off.makespan, on.makespan);
  ASSERT_EQ(off.task_times.size(), on.task_times.size());
  for (std::size_t i = 0; i < off.task_times.size(); ++i) {
    EXPECT_EQ(off.task_times[i], on.task_times[i]) << "task " << i;
  }
  // And off really is off: no recorder, no critpath gauges.
  EXPECT_EQ(off.metrics.find("critpath.compute.seconds"), nullptr);
  EXPECT_NE(on.metrics.find("critpath.compute.seconds"), nullptr);
}

TEST(CritPathRun, TraceGetsOnPathOverlay) {
  auto o = opts("titan", 2);
  o.features.gpudirect_rdma = false;
  o.critpath = true;
  o.trace_path = "-";
  const auto result = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    char buf[4096];
    if (r == 0) {
      mpi::send(buf, sizeof buf, mpi::Datatype::kByte, 1, 0, w);
    } else if (r == 1) {
      mpi::recv(buf, sizeof buf, mpi::Datatype::kByte, 0, 0, w);
    }
  });
  ASSERT_NE(result.trace, nullptr);
  int overlay = 0;
  int overlay_pid = -1;
  for (const auto& e : result.trace->snapshot()) {
    if (e.phase == 'X' && e.category == "critpath") {
      ++overlay;
      overlay_pid = e.pid;
    }
  }
  EXPECT_GT(overlay, 0);
  // The overlay lives on its own pid row past the per-node rows (pid
  // num_nodes()+1), so it never disturbs the per-node slice counts.
  EXPECT_EQ(overlay_pid, 3);
}

// --- Satellites -------------------------------------------------------------

TEST(HandlerSocket, PinsToDeviceMajoritySocket) {
  sim::NodeDesc node;
  node.sockets = 2;
  EXPECT_EQ(core::choose_handler_socket(node), 0);  // no devices

  sim::DeviceDesc d0;
  d0.socket = 1;
  node.devices = {d0, d0};
  EXPECT_EQ(core::choose_handler_socket(node), 1);  // all on socket 1

  sim::DeviceDesc d1;
  d1.socket = 0;
  node.devices = {d0, d1, d0};
  EXPECT_EQ(core::choose_handler_socket(node), 1);  // majority wins

  node.devices = {d0, d1};
  EXPECT_EQ(core::choose_handler_socket(node), 0);  // tie -> lowest index

  node.sockets = 1;
  node.devices = {d0, d0};
  EXPECT_EQ(core::choose_handler_socket(node), 0);  // single socket
}

TEST(HandlerSocket, GaugePublishedPerNode) {
  auto o = opts("titan", 2);
  o.metrics_path = "-";  // bring observability up without a file
  const auto result = launch(o, [] {});
  EXPECT_GE(result.metrics.value("core.node0.handler_socket", -1), 0);
  EXPECT_GE(result.metrics.value("core.node1.handler_socket", -1), 0);
}

TEST(TraceSink, FinalizeCountersAppendsTerminalSamples) {
  sim::TraceSink t;
  t.record_counter(0, "handler queue depth", "depth", 1.0, 3);
  t.record_counter(0, "handler queue depth", "depth", 2.0, 0);
  t.record_counter(0, "spin (wall clock)", "s", 1.0, 5);  // different base
  t.finalize_counters(10.0);

  int depth_samples = 0;
  sim::Time depth_last = 0;
  int wall_samples = 0;
  for (const auto& e : t.snapshot()) {
    if (e.phase != 'C') continue;
    if (e.name == "handler queue depth") {
      ++depth_samples;
      depth_last = std::max(depth_last, e.start);
    }
    if (e.name == "spin (wall clock)") ++wall_samples;
  }
  // One terminal sample at the makespan for the virtual-time track; the
  // wall-clock track is on a different time base and must be left alone.
  EXPECT_EQ(depth_samples, 3);
  EXPECT_DOUBLE_EQ(depth_last, 10.0);
  EXPECT_EQ(wall_samples, 1);

  // Idempotent: a second call finds every track already terminated.
  t.finalize_counters(10.0);
  EXPECT_EQ(t.snapshot().size(), 4u);
}

TEST(TraceSink, MetadataEventsReachChromeJson) {
  sim::TraceSink t;
  t.record_meta(3, "process_name", "critical path");
  const std::string json = t.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("critical path"), std::string::npos);
}

// --- Watchdog ---------------------------------------------------------------

TEST(WatchdogDeathTest, DeadlockDumpsDiagnosticsAndExits86) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Mutual synchronous sends across nodes: a textbook deadlock. Virtual
  // time freezes, the wall-clock watchdog fires, dumps both blocked wait
  // sites, and exits with the distinct hang code.
  auto run = [] {
    auto o = opts("titan", 2);
    o.watchdog_seconds = 0.3;
    launch(o, [] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      int buf[16] = {};
      mpi::ssend(buf, 16, mpi::Datatype::kInt, 1 - r, 7, w);
    });
  };
  EXPECT_EXIT(run(), testing::ExitedWithCode(core::kWatchdogExitCode),
              "blocked tasks: 0 1");
}

}  // namespace
}  // namespace impacc
