// Application-level tests: the four paper benchmarks compute correct,
// decomposition-independent, framework-independent results.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/dgemm.h"
#include "apps/ep.h"
#include "apps/jacobi.h"
#include "apps/lulesh/driver.h"
#include "apps/lulesh/mesh.h"
#include "dev/copyengine.h"
#include "sim/systems.h"
#include "test_helpers.h"

namespace impacc::apps {
namespace {

core::LaunchOptions opts(const char* system, int nodes,
                         core::Framework fw = core::Framework::kImpacc) {
  core::LaunchOptions o;
  o.cluster = sim::make_system(system, nodes);
  o.framework = fw;
  o.scheduler_workers = 1;
  return o;
}

// --- DGEMM ----------------------------------------------------------------------

class DgemmBothFrameworks : public ::testing::TestWithParam<core::Framework> {};

TEST_P(DgemmBothFrameworks, VerifiesAgainstSerialReference) {
  DgemmConfig cfg;
  cfg.n = 64;
  cfg.verify = true;
  const auto r = run_dgemm(opts("psg", 1, GetParam()), cfg);
  EXPECT_TRUE(r.verified);
  IMPACC_EXPECT_QUIESCENT(r.launch);
  EXPECT_GT(r.launch.makespan, 0);
}

INSTANTIATE_TEST_SUITE_P(Frameworks, DgemmBothFrameworks,
                         ::testing::Values(core::Framework::kImpacc,
                                           core::Framework::kMpiOpenacc));

TEST(Dgemm, ChecksumIdenticalAcrossFrameworksAndSystems) {
  DgemmConfig cfg;
  cfg.n = 48;
  const auto a = run_dgemm(opts("psg", 1), cfg);
  const auto b = run_dgemm(opts("psg", 1, core::Framework::kMpiOpenacc), cfg);
  const auto c = run_dgemm(opts("titan", 4), cfg);
  EXPECT_EQ(a.checksum, b.checksum);  // same decomposition: bitwise equal
  EXPECT_GT(std::abs(a.checksum), 0);
  // Different decomposition: same within floating reassociation noise.
  EXPECT_NEAR(a.checksum, c.checksum, 1e-6 * std::abs(a.checksum));
}

TEST(Dgemm, ImpaccAliasesReadOnlyInputsOnTheRootNode) {
  DgemmConfig cfg;
  cfg.n = 32;
  const auto r = run_dgemm(opts("psg", 1), cfg);
  // 7 non-root tasks alias A's row block and B: 14 aliases.
  EXPECT_EQ(r.launch.total.heap_aliases, 14u);
  const auto base = run_dgemm(opts("psg", 1, core::Framework::kMpiOpenacc), cfg);
  EXPECT_EQ(base.launch.total.heap_aliases, 0u);
}

TEST(Dgemm, ImpaccIsFasterOnCommunicationBoundSizes) {
  // Fig. 10 (a): at small N the baseline's communication dominates.
  DgemmConfig cfg;
  cfg.n = 256;
  const auto im = run_dgemm(opts("psg", 1), cfg);
  const auto base = run_dgemm(opts("psg", 1, core::Framework::kMpiOpenacc), cfg);
  EXPECT_LT(im.launch.makespan, base.launch.makespan);
}

// --- EP -------------------------------------------------------------------------

TEST(Ep, MatchesSerialReferenceAcrossTaskCounts) {
  EpConfig cfg;
  cfg.m = 16;
  const auto ref = ep_reference(cfg.m);
  for (const char* sys : {"psg", "beacon"}) {
    const auto r = run_ep(opts(sys, 1), cfg);
    EXPECT_EQ(r.accepted, ref.accepted) << sys;
    EXPECT_NEAR(r.sx, ref.sx, 1e-9) << sys;
    EXPECT_NEAR(r.sy, ref.sy, 1e-9) << sys;
    EXPECT_EQ(r.q, ref.q) << sys;
  }
}

TEST(Ep, GaussianTailCountsDecayMonotonically) {
  const auto ref = ep_reference(18);
  // The annulus counts q[k] fall off sharply (property of the Gaussian).
  for (int k = 0; k + 1 < 6; ++k) {
    EXPECT_GT(ref.q[static_cast<std::size_t>(k)],
              ref.q[static_cast<std::size_t>(k + 1)]);
  }
  // Acceptance rate of the polar method is pi/4.
  const double rate =
      static_cast<double>(ref.accepted) / static_cast<double>(1ll << 18);
  EXPECT_NEAR(rate, 0.785, 0.01);
}

TEST(Ep, FrameworksAgreeBitwise) {
  EpConfig cfg;
  cfg.m = 14;
  const auto a = run_ep(opts("psg", 1), cfg);
  const auto b = run_ep(opts("psg", 1, core::Framework::kMpiOpenacc), cfg);
  EXPECT_EQ(a.sx, b.sx);
  EXPECT_EQ(a.q, b.q);
}

// --- Jacobi ----------------------------------------------------------------------

class JacobiBothFrameworks : public ::testing::TestWithParam<core::Framework> {
};

TEST_P(JacobiBothFrameworks, VerifiesAgainstSerialSweeps) {
  JacobiConfig cfg;
  cfg.n = 40;
  cfg.iterations = 6;
  cfg.verify = true;
  const auto r = run_jacobi(opts("psg", 1, GetParam()), cfg);
  EXPECT_TRUE(r.verified);
  IMPACC_EXPECT_QUIESCENT(r.launch);
}

INSTANTIATE_TEST_SUITE_P(Frameworks, JacobiBothFrameworks,
                         ::testing::Values(core::Framework::kImpacc,
                                           core::Framework::kMpiOpenacc));

TEST(Jacobi, VerifiesOnMultiNodeBeacon) {
  JacobiConfig cfg;
  cfg.n = 36;
  cfg.iterations = 4;
  cfg.verify = true;
  const auto r = run_jacobi(opts("beacon", 2), cfg);  // 8 tasks, 2 nodes
  EXPECT_TRUE(r.verified);
}

TEST(Jacobi, DeviceToDeviceHalosUseDirectCopiesUnderImpacc) {
  JacobiConfig cfg;
  cfg.n = 64;
  cfg.iterations = 3;
  const auto r = run_jacobi(opts("psg", 1), cfg);
  const auto peer =
      r.launch.total.copy_count[static_cast<int>(dev::CopyPathKind::kDevToDevPeer)];
  const auto staged = r.launch.total.copy_count[static_cast<int>(
      dev::CopyPathKind::kDevToDevStaged)];
  EXPECT_GT(peer + staged, 0u);  // halos moved device-to-device (Fig. 14)
  const auto base = run_jacobi(opts("psg", 1, core::Framework::kMpiOpenacc), cfg);
  EXPECT_EQ(base.launch.total.copy_count[static_cast<int>(
                dev::CopyPathKind::kDevToDevPeer)],
            0u);
  EXPECT_LT(r.launch.makespan, base.launch.makespan);  // Fig. 13
}

// --- LULESH ----------------------------------------------------------------------

TEST(LuleshMesh, DirectionsCoverAll26WithStableIndices) {
  const auto& dirs = lulesh::all_directions();
  bool seen[26] = {};
  for (const auto& d : dirs) {
    ASSERT_GE(d.index(), 0);
    ASSERT_LT(d.index(), 26);
    EXPECT_FALSE(seen[d.index()]);
    seen[d.index()] = true;
    // index(opposite) is the partner tag.
    EXPECT_EQ(d.opposite().dx, -d.dx);
    EXPECT_NE(d.opposite().index(), d.index());
  }
  // Cell counts: 6 faces of s^2, 12 edges of s, 8 corners of 1.
  long faces = 0;
  long edges = 0;
  long corners = 0;
  for (const auto& d : dirs) {
    const long c = d.cells(4);
    if (c == 16) ++faces;
    if (c == 4) ++edges;
    if (c == 1) ++corners;
  }
  EXPECT_EQ(faces, 6);
  EXPECT_EQ(edges, 12);
  EXPECT_EQ(corners, 8);
}

TEST(LuleshMesh, NeighborsAndCoords) {
  const lulesh::Decomp3D dec(3, 4);
  EXPECT_EQ(dec.rank_at(0, 0, 0), 0);
  EXPECT_EQ(dec.rank_at(2, 2, 2), 26);
  const auto c = dec.coords(14);
  EXPECT_EQ(dec.rank_at(c[0], c[1], c[2]), 14);
  EXPECT_EQ(dec.neighbor(0, {-1, 0, 0}), -1);  // domain edge
  EXPECT_EQ(dec.neighbor(0, {1, 0, 0}), 9);
  EXPECT_EQ(dec.neighbor(13, {1, 1, 1}), 26);
}

TEST(LuleshMesh, PackUnpackGeometryIsConsistent) {
  const lulesh::Decomp3D dec(2, 3);
  for (const auto& d : lulesh::all_directions()) {
    const auto pack = dec.pack_indices(d);
    const auto unpack = dec.unpack_indices(d);
    ASSERT_EQ(pack.size(), unpack.size());
    ASSERT_EQ(static_cast<long>(pack.size()), d.cells(3));
    // Pack reads interior cells; unpack writes halo cells.
    const long hs = dec.halo_side();
    for (long idx : pack) {
      const long z = idx % hs;
      const long y = (idx / hs) % hs;
      const long x = idx / (hs * hs);
      EXPECT_TRUE(x >= 1 && x <= 3 && y >= 1 && y <= 3 && z >= 1 && z <= 3);
    }
    for (long idx : unpack) {
      const long z = idx % hs;
      const long y = (idx / hs) % hs;
      const long x = idx / (hs * hs);
      EXPECT_TRUE(x == 0 || x == hs - 1 || y == 0 || y == hs - 1 || z == 0 ||
                  z == hs - 1);
    }
  }
}

TEST(LuleshMesh, SendLayerFacesTheNeighbor) {
  // A task's pack layer toward +x must be its x == s interior plane, and
  // the receiving neighbour unpacks it into its x == 0 halo plane.
  const lulesh::Decomp3D dec(2, 2);
  const lulesh::Direction d{1, 0, 0};
  const long hs = dec.halo_side();
  for (long idx : dec.pack_indices(d)) {
    EXPECT_EQ(idx / (hs * hs), 2);  // x == s
  }
  for (long idx : dec.unpack_indices(d.opposite())) {
    EXPECT_EQ(idx / (hs * hs), 0);  // neighbour's x == 0 halo
  }
}

TEST(Lulesh, SingleTaskMatchesSerialReference) {
  LuleshConfig cfg;
  cfg.s = 6;
  cfg.iterations = 4;
  cfg.verify = true;
  const auto r = run_lulesh(opts("titan", 1), cfg);
  EXPECT_TRUE(r.verified);
  IMPACC_EXPECT_QUIESCENT(r.launch);
  EXPECT_GT(r.total_energy, 0);
}

TEST(Lulesh, DecompositionIndependentResults) {
  // The true test of the 26-neighbour exchange: 8 tasks must reproduce the
  // single-mesh evolution.
  LuleshConfig cfg;
  cfg.s = 4;
  cfg.iterations = 5;
  cfg.verify = true;
  const auto r8 = run_lulesh(opts("titan", 8), cfg);  // 2x2x2 tasks
  EXPECT_TRUE(r8.verified);
  const auto r27 = run_lulesh(opts("titan", 27), cfg);  // 3x3x3 tasks
  EXPECT_TRUE(r27.verified);
}

TEST(Lulesh, FrameworksAgreeBitwiseOnSameDecomposition) {
  LuleshConfig cfg;
  cfg.s = 4;
  cfg.iterations = 3;
  const auto a = run_lulesh(opts("psg", 1), cfg);  // 8 tasks on one node
  const auto b = run_lulesh(opts("psg", 1, core::Framework::kMpiOpenacc), cfg);
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.final_dt, b.final_dt);
}

TEST(Lulesh, TimestepAdaptsViaCourantReduction) {
  LuleshConfig cfg;
  cfg.s = 4;
  cfg.iterations = 3;
  const auto r = run_lulesh(opts("titan", 8), cfg);
  EXPECT_GT(r.final_dt, 0);
  EXPECT_NE(r.final_dt, 0.01);  // moved off the initial guess
}

}  // namespace
}  // namespace impacc::apps

#include "apps/stencil2d.h"

namespace impacc::apps {
namespace {

// --- 2-D stencil with derived-datatype column halos (extension) -------------------

TEST(Stencil2d, GridFactorization) {
  EXPECT_EQ(stencil2d_grid(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(stencil2d_grid(8), (std::pair<int, int>{4, 2}));
  EXPECT_EQ(stencil2d_grid(12), (std::pair<int, int>{4, 3}));
  EXPECT_EQ(stencil2d_grid(7), (std::pair<int, int>{7, 1}));
  EXPECT_EQ(stencil2d_grid(16), (std::pair<int, int>{4, 4}));
}

class Stencil2dLayouts
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(Stencil2dLayouts, VerifiesAgainstSerialSweeps) {
  Stencil2dConfig cfg;
  cfg.n = 36;
  cfg.iterations = 5;
  cfg.verify = true;
  const auto [system, nodes] = GetParam();
  const auto r = run_stencil2d(opts(system, nodes), cfg);
  EXPECT_TRUE(r.verified) << system << " grid " << r.px << "x" << r.py;
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, Stencil2dLayouts,
    ::testing::Values(std::pair<const char*, int>{"titan", 1},   // 1x1
                      std::pair<const char*, int>{"titan", 4},   // 2x2
                      std::pair<const char*, int>{"psg", 1},     // 4x2
                      std::pair<const char*, int>{"beacon", 3})); // 4x3

TEST(Stencil2d, FrameworksAgreeBitwise) {
  Stencil2dConfig cfg;
  cfg.n = 24;
  cfg.iterations = 4;
  const auto a = run_stencil2d(opts("psg", 1), cfg);
  const auto b = run_stencil2d(opts("psg", 1, core::Framework::kMpiOpenacc), cfg);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_NE(a.checksum, 0.0);
}

}  // namespace
}  // namespace impacc::apps

namespace impacc::apps {
namespace {

TEST(Ep, ClassExponentsMatchNas) {
  EXPECT_EQ(ep_class_m('S'), 24);
  EXPECT_EQ(ep_class_m('A'), 28);
  EXPECT_EQ(ep_class_m('B'), 30);
  EXPECT_EQ(ep_class_m('C'), 32);
  EXPECT_EQ(ep_class_m('D'), 36);
  EXPECT_EQ(ep_class_m('E'), 40);
}

TEST(Jacobi, DecompositionIndependentWithinTolerance) {
  JacobiConfig cfg;
  cfg.n = 40;
  cfg.iterations = 6;
  const auto a = run_jacobi(opts("titan", 2), cfg);   // 2-way split
  const auto b = run_jacobi(opts("titan", 5), cfg);   // 5-way split
  EXPECT_NEAR(a.checksum, b.checksum, 1e-9 * std::abs(a.checksum));
}

TEST(Lulesh, ReferenceEnergyGrowsWithMeshAndStaysFinite) {
  const double e1 = lulesh_reference(1, 4, 3);
  const double e2 = lulesh_reference(2, 4, 3);
  EXPECT_GT(e1, 0);
  EXPECT_GT(e2, e1);  // 8x the volume of background energy
  EXPECT_TRUE(std::isfinite(e1));
}

}  // namespace
}  // namespace impacc::apps
