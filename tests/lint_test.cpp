// Tests for impacc-lint: golden fixture tests (every IMP0xx code fires
// on its seeded-violation fixture and stays silent on clean sources),
// the data-flow building blocks, and the JSON/SARIF emitters — the JSON
// report is round-tripped through a schema check with a minimal parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "trans/analysis/commgraph.h"
#include "trans/analysis/dataflow.h"
#include "trans/analysis/diagnostics.h"
#include "trans/analysis/hbclock.h"
#include "trans/analysis/lint.h"
#include "trans/analysis/ranksim.h"
#include "trans/translator.h"

namespace impacc::trans::analysis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(LINT_FIXTURE_DIR) + "/" + name);
}

bool has_code(const LintResult& r, const std::string& code) {
  for (const auto& d : r.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

// --- golden fixture tests ---------------------------------------------------

struct GoldenCase {
  const char* file;
  const char* code;
  Severity severity;
};

class LintGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(LintGolden, FixtureFiresItsDocumentedCode) {
  const GoldenCase& c = GetParam();
  const LintResult r = lint_source(fixture(c.file));
  ASSERT_TRUE(has_code(r, c.code))
      << c.file << " did not produce " << c.code;
  for (const auto& d : r.diagnostics) {
    if (d.code != c.code) continue;
    EXPECT_EQ(d.severity, c.severity) << c.file;
    EXPECT_GT(d.line, 0) << c.file;
    EXPECT_GE(d.column, 1) << c.file;
    EXPECT_FALSE(d.message.empty()) << c.file;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, LintGolden,
    ::testing::Values(
        GoldenCase{"imp001_double_copyin.c", "IMP001", Severity::kError},
        GoldenCase{"imp002_exit_not_present.c", "IMP002", Severity::kError},
        GoldenCase{"imp003_update_not_present.c", "IMP003",
                   Severity::kError},
        GoldenCase{"imp004_hostdata_not_present.c", "IMP004",
                   Severity::kError},
        GoldenCase{"imp005_mpi_buffer_not_present.c", "IMP005",
                   Severity::kError},
        GoldenCase{"imp006_async_never_waited.c", "IMP006",
                   Severity::kWarning},
        GoldenCase{"imp007_wait_unused_queue.c", "IMP007",
                   Severity::kWarning},
        GoldenCase{"imp008_readonly_recv_mutated.c", "IMP008",
                   Severity::kError},
        GoldenCase{"imp009_isend_no_wait.c", "IMP009", Severity::kWarning},
        GoldenCase{"imp010_sendrecv_alias.c", "IMP010", Severity::kError},
        GoldenCase{"imp011_enter_never_exited.c", "IMP011",
                   Severity::kWarning},
        GoldenCase{"imp012_malformed.c", "IMP012", Severity::kError},
        GoldenCase{"imp013_deadlock_ring.c", "IMP013", Severity::kError},
        GoldenCase{"imp014_unmatched_send.c", "IMP014", Severity::kError},
        GoldenCase{"imp015_unmatched_recv.c", "IMP015", Severity::kError},
        GoldenCase{"imp016_collective_order.c", "IMP016",
                   Severity::kError},
        GoldenCase{"imp017_count_mismatch.c", "IMP017", Severity::kError},
        GoldenCase{"imp018_dtype_mismatch.c", "IMP018", Severity::kError},
        GoldenCase{"imp019_host_async_race.c", "IMP019", Severity::kError},
        GoldenCase{"imp020_cross_queue_race.c", "IMP020",
                   Severity::kWarning},
        GoldenCase{"imp021_buffer_reuse_loop.c", "IMP021",
                   Severity::kError},
        GoldenCase{"imp022_request_leak_loop.c", "IMP022",
                   Severity::kWarning},
        GoldenCase{"imp023_loop_collective_skew.c", "IMP023",
                   Severity::kError},
        GoldenCase{"imp024_reserved_tag.c", "IMP024",
                   Severity::kWarning}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return info.param.code;
    });

TEST(LintGoldenClean, CleanFixtureIsSilent) {
  const LintResult r = lint_source(fixture("clean_pipeline.c"));
  EXPECT_TRUE(r.clean()) << (r.diagnostics.empty()
                                 ? ""
                                 : render_text(r.diagnostics[0], "clean"));
}

TEST(LintGoldenClean, RingExampleSourceIsSilent) {
  const LintResult r = lint_source(
      read_file(std::string(IMPACC_EXAMPLES_DIR) + "/ring_acc_source.c"));
  EXPECT_TRUE(r.clean()) << (r.diagnostics.empty()
                                 ? ""
                                 : render_text(r.diagnostics[0], "ring"));
}

TEST(LintGoldenClean, IsolatedFixturesFireExactlyOneCode) {
  // These fixtures are constructed so the documented code is the ONLY
  // diagnostic; the others intentionally cascade (e.g. a double copyin
  // also leaks).
  for (const char* f :
       {"imp002_exit_not_present.c", "imp003_update_not_present.c",
        "imp004_hostdata_not_present.c", "imp005_mpi_buffer_not_present.c",
        "imp006_async_never_waited.c", "imp007_wait_unused_queue.c",
        "imp008_readonly_recv_mutated.c", "imp009_isend_no_wait.c",
        "imp010_sendrecv_alias.c", "imp011_enter_never_exited.c",
        "imp013_deadlock_ring.c", "imp014_unmatched_send.c",
        "imp015_unmatched_recv.c", "imp016_collective_order.c",
        "imp017_count_mismatch.c", "imp018_dtype_mismatch.c",
        "imp019_host_async_race.c", "imp020_cross_queue_race.c",
        "imp013_loop_blocking_ring.c", "imp021_buffer_reuse_loop.c",
        "imp022_request_leak_loop.c", "imp023_loop_collective_skew.c"}) {
    const LintResult r = lint_source(fixture(f));
    EXPECT_EQ(r.diagnostics.size(), 1u) << f;
  }
}

// --- multi-rank golden tests ------------------------------------------------

TEST(LintMultiRank, FixturesFireAtTheSeededLine) {
  struct LineCase {
    const char* file;
    const char* code;
    int line;
  };
  for (const LineCase& c : std::vector<LineCase>{
           {"imp013_deadlock_ring.c", "IMP013", 13},
           {"imp014_unmatched_send.c", "IMP014", 11},
           {"imp015_unmatched_recv.c", "IMP015", 10},
           {"imp016_collective_order.c", "IMP016", 12},
           {"imp017_count_mismatch.c", "IMP017", 10},
           {"imp018_dtype_mismatch.c", "IMP018", 10},
           {"imp019_host_async_race.c", "IMP019", 7},
           {"imp020_cross_queue_race.c", "IMP020", 7},
           {"imp013_loop_blocking_ring.c", "IMP013", 13},
           {"imp021_buffer_reuse_loop.c", "IMP021", 15},
           {"imp022_request_leak_loop.c", "IMP022", 14},
           {"imp023_loop_collective_skew.c", "IMP023", 14},
           {"imp024_reserved_tag.c", "IMP024", 13}}) {
    const LintResult r = lint_source(fixture(c.file));
    bool found = false;
    for (const auto& d : r.diagnostics) {
      if (d.code == c.code && d.line == c.line) found = true;
    }
    EXPECT_TRUE(found) << c.file << " should report " << c.code
                       << " at line " << c.line;
  }
}

TEST(LintMultiRank, CleanMultiRankFixturesAreSilent) {
  // Ring exchange, even/odd pairing, and halo stencil written correctly:
  // the rank simulator must resolve their guards and neighbour
  // expressions per rank and find nothing to report.
  for (const char* f :
       {"clean_ring_async.c", "clean_evenodd.c", "clean_halo.c",
        "clean_loop_halo_wait.c", "clean_loop_reqarray.c",
        "clean_loop_collectives.c", "clean_tag_window.c",
        "clean_interproc_halo.c"}) {
    const LintResult r = lint_source(fixture(f));
    EXPECT_TRUE(r.clean())
        << f << ": "
        << (r.diagnostics.empty() ? ""
                                  : render_text(r.diagnostics[0], f));
  }
}

TEST(LintMultiRank, AsyncRewriteProvesTheRingDeadlockFree) {
  // Acceptance pair: the blocking ring deadlocks; the same ring on a
  // unified async queue (Isend/Irecv + wait) is proven deadlock-free.
  EXPECT_TRUE(
      has_code(lint_source(fixture("imp013_deadlock_ring.c")), "IMP013"));
  EXPECT_TRUE(lint_source(fixture("clean_ring_async.c")).clean());
}

TEST(LintMultiRank, RanksBelowTwoDisablesThePass) {
  LintOptions opts;
  opts.ranks = 0;
  const LintResult r =
      lint_source(fixture("imp013_deadlock_ring.c"), opts);
  EXPECT_FALSE(has_code(r, "IMP013"));
}

TEST(LintMultiRank, DeadlockScalesToOtherRankCounts) {
  LintOptions opts;
  opts.ranks = 2;
  EXPECT_TRUE(has_code(
      lint_source(fixture("imp013_deadlock_ring.c"), opts), "IMP013"));
  opts.ranks = 8;
  EXPECT_TRUE(has_code(
      lint_source(fixture("imp013_deadlock_ring.c"), opts), "IMP013"));
  EXPECT_TRUE(lint_source(fixture("clean_ring_async.c"), opts).clean());
}

// --- loop & interprocedural tests -------------------------------------------

TEST(LintLoops, UnrollSweepFindingsAreMonotone) {
  // Raising --unroll only ever adds findings: with the loop widened
  // (unroll 0) or rolled back after one round (unroll 1 on a 4-trip
  // loop) the lifetime pass soundly stays quiet; at unroll 4 the
  // intra-iteration buffer reuse becomes visible.
  std::map<int, std::vector<std::string>> codes_at;
  for (int u : {0, 1, 4}) {
    LintOptions opts;
    opts.ranks = 4;
    opts.unroll = u;
    const LintResult r =
        lint_source(fixture("imp021_buffer_reuse_loop.c"), opts);
    for (const auto& d : r.diagnostics) codes_at[u].push_back(d.code);
  }
  // Monotone: every finding at a lower unroll persists at a higher one.
  for (const auto& c : codes_at[0]) {
    EXPECT_NE(std::find(codes_at[1].begin(), codes_at[1].end(), c),
              codes_at[1].end());
  }
  for (const auto& c : codes_at[1]) {
    EXPECT_NE(std::find(codes_at[4].begin(), codes_at[4].end(), c),
              codes_at[4].end());
  }
  EXPECT_NE(std::find(codes_at[4].begin(), codes_at[4].end(), "IMP021"),
            codes_at[4].end());
}

TEST(LintLoops, SuppressionCommentWorksInsideLoopBody) {
  const LintResult r = lint_source(R"(
void f(double* a, double* b, int n) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  int next = (rank + 1) % size;
  int prev = (rank + size - 1) % size;
  MPI_Request rq;
  for (int it = 0; it < 4; it++) {
    MPI_Irecv(b, n, MPI_DOUBLE, prev, 5, MPI_COMM_WORLD, &rq);
    /* impacc-lint: allow(IMP021) */
    MPI_Send(b, n, MPI_DOUBLE, next, 5, MPI_COMM_WORLD);
    MPI_Wait(&rq, MPI_STATUS_IGNORE);
  }
}
)");
  EXPECT_FALSE(has_code(r, "IMP021"))
      << "allow(IMP021) in the loop body must suppress every unrolled "
         "iteration";
}

TEST(LintLoops, InterproceduralHaloIsExactAndClean) {
  // exchange_halos() is called (not open-coded) from the timestep loop;
  // the inliner must make its Irecv/Send/Wait visible in every unrolled
  // iteration and keep the trace exact.
  const LintResult r = lint_source(fixture("clean_interproc_halo.c"));
  EXPECT_TRUE(r.clean())
      << (r.diagnostics.empty()
              ? ""
              : render_text(r.diagnostics[0], "interproc"));
  EXPECT_TRUE(r.multirank_exact)
      << "the inlined halo exchange should stay exact";
}

TEST(LintLoops, LoopFixturesAreExactNotWidened) {
  // The seeded loop fixtures must be proven, not guessed: their finding
  // comes out of an exact unrolled trace.
  for (const char* f :
       {"imp013_loop_blocking_ring.c", "imp021_buffer_reuse_loop.c",
        "imp022_request_leak_loop.c", "clean_loop_halo_wait.c",
        "clean_loop_reqarray.c", "clean_loop_collectives.c"}) {
    const LintResult r = lint_source(fixture(f));
    EXPECT_TRUE(r.multirank_exact) << f;
  }
}

TEST(LintLoops, RanksZeroMatchesSingleRankBehavior) {
  // --ranks 0 must behave exactly as before this pass existed: no
  // multi-rank or lifetime diagnostics on the loop fixtures, loops or
  // not.
  LintOptions opts;
  opts.ranks = 0;
  for (const char* f :
       {"imp013_loop_blocking_ring.c", "imp021_buffer_reuse_loop.c",
        "imp022_request_leak_loop.c", "imp023_loop_collective_skew.c",
        "imp024_reserved_tag.c"}) {
    const LintResult r = lint_source(fixture(f), opts);
    for (const auto& d : r.diagnostics) {
      EXPECT_LT(d.code, std::string("IMP013"))
          << f << " produced " << d.code << " with ranks=0";
    }
  }
}

TEST(LintLoops, JacobiTimestepExchangeIsProvenExact) {
  // Acceptance: the Jacobi cluster example's timestep exchange loop is
  // verified deadlock-free at 4 ranks with the default unroll — the
  // trace stays exact (no widening, no unknown guards).
  const std::string src = read_file(std::string(IMPACC_EXAMPLES_DIR) +
                                    "/jacobi_cluster.cpp");
  const std::string open = "R\"lint(";
  const std::string close = ")lint\"";
  const size_t b = src.find(open);
  ASSERT_NE(b, std::string::npos)
      << "jacobi_cluster.cpp must embed its exchange loop as R\"lint(...)\"";
  const size_t e = src.find(close, b);
  ASSERT_NE(e, std::string::npos);
  const std::string snippet = src.substr(b + open.size(), e - b - open.size());
  LintOptions opts;
  opts.ranks = 4;
  opts.unroll = 4;
  const LintResult r = lint_source(snippet, opts);
  EXPECT_TRUE(r.clean())
      << (r.diagnostics.empty() ? ""
                                : render_text(r.diagnostics[0], "jacobi"));
  EXPECT_TRUE(r.multirank_exact)
      << "jacobi exchange loop must be verified exactly, not widened";
}

TEST(LintMultiRank, ChainPatternWithSizeGuardsIsClean) {
  // Guards referencing `size`: a left-to-right chain — everyone but the
  // last sends right, everyone but the first receives left. Receives
  // post before sends rank-by-rank, which is deadlock-free because the
  // chain is acyclic (rank 0 has no receive).
  const LintResult r = lint_source(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
if (rank > 0) {
  MPI_Recv(b, 16, MPI_DOUBLE, rank - 1, 1, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
}
if (rank < size - 1) {
  MPI_Send(a, 16, MPI_DOUBLE, rank + 1, 1, MPI_COMM_WORLD);
}
)");
  EXPECT_TRUE(r.clean())
      << (r.diagnostics.empty() ? ""
                                : render_text(r.diagnostics[0], "chain"));
}

TEST(LintMultiRank, RankPlusKWraparoundResolvesAcrossTheBoundary) {
  // Stride-2 neighbours with modulo wraparound: every rank r sends to
  // (r+2)%size and receives from (r+size-2)%size on distinct queues, so
  // the match analysis must pair rank 3's send with rank 1's receive.
  const LintResult r = lint_source(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
int fwd = (rank + 2) % size;
int bwd = (rank + size - 2) % size;
MPI_Isend(a, 4, MPI_DOUBLE, fwd, 3, MPI_COMM_WORLD, &s);
MPI_Irecv(b, 4, MPI_DOUBLE, bwd, 3, MPI_COMM_WORLD, &t);
MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE);
)");
  EXPECT_FALSE(has_code(r, "IMP014"));
  EXPECT_FALSE(has_code(r, "IMP015"));
  EXPECT_FALSE(has_code(r, "IMP013"));
}

TEST(LintMultiRank, NestedTernaryTagStillMatches) {
  // The tag itself is a nested ternary over the rank; both sides reduce
  // to the same value per pair, so everything matches.
  const LintResult r = lint_source(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
if (rank == 0) {
  MPI_Send(a, 8, MPI_DOUBLE, 1, rank == 0 ? (size > 2 ? 10 : 20) : 30,
           MPI_COMM_WORLD);
}
if (rank == 1) {
  MPI_Recv(b, 8, MPI_DOUBLE, 0, size > 2 ? 10 : 20, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
}
)");
  EXPECT_FALSE(has_code(r, "IMP014"));
  EXPECT_FALSE(has_code(r, "IMP015"));
}

TEST(LintMultiRank, MismatchedTernaryTagIsUnmatched) {
  // Same shape, but the receiver computes a different tag: with exact
  // peers and tags on both sides the pass must flag both endpoints.
  const LintResult r = lint_source(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
if (rank == 0) {
  MPI_Send(a, 8, MPI_DOUBLE, 1, size > 2 ? 10 : 20, MPI_COMM_WORLD);
}
if (rank == 1) {
  MPI_Recv(b, 8, MPI_DOUBLE, 0, size > 2 ? 11 : 21, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
}
)");
  EXPECT_TRUE(has_code(r, "IMP014"));
  EXPECT_TRUE(has_code(r, "IMP015"));
}

TEST(LintMultiRank, AnySourceAnyTagReceivesMatchEverything) {
  const LintResult r = lint_source(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
if (rank != 0) {
  MPI_Send(a, 4, MPI_DOUBLE, 0, rank, MPI_COMM_WORLD);
}
if (rank == 0) {
  MPI_Recv(b, 4, MPI_DOUBLE, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
  MPI_Recv(b, 4, MPI_DOUBLE, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
  MPI_Recv(b, 4, MPI_DOUBLE, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
}
)");
  EXPECT_FALSE(has_code(r, "IMP014"));
  EXPECT_FALSE(has_code(r, "IMP015"));
}

// --- rank-expression evaluator ----------------------------------------------

TEST(RankExprEval, ArithmeticAndPrecedence) {
  const IntEnv env{{"rank", 3}, {"size", 4}};
  EXPECT_EQ(eval_int_expr("(rank + 1) % size", env), 0);
  EXPECT_EQ(eval_int_expr("(rank + size - 1) % size", env), 2);
  EXPECT_EQ(eval_int_expr("rank * 2 + 1", env), 7);
  EXPECT_EQ(eval_int_expr("1 << rank", env), 8);
  EXPECT_EQ(eval_int_expr("rank ^ 1", env), 2);
}

TEST(RankExprEval, NestedTernaries) {
  const IntEnv env{{"rank", 0}, {"size", 4}};
  EXPECT_EQ(eval_int_expr("rank == 0 ? (size > 2 ? 10 : 20) : 30", env),
            10);
  EXPECT_EQ(
      eval_int_expr("rank % 2 == 0 ? rank + 1 : rank - 1", env), 1);
  // Unknown condition: decidable only when both arms agree.
  EXPECT_EQ(eval_int_expr("mystery ? 5 : 5", env), 5);
  EXPECT_EQ(eval_int_expr("mystery ? 5 : 6", env), std::nullopt);
}

TEST(RankExprEval, ShortCircuitDoesNotPoisonDecidableGuards) {
  const IntEnv env{{"rank", 0}};
  EXPECT_EQ(eval_int_expr("rank != 0 && mystery", env), 0);
  EXPECT_EQ(eval_int_expr("rank == 0 || mystery", env), 1);
  EXPECT_EQ(eval_int_expr("rank == 0 && mystery", env), std::nullopt);
}

TEST(RankExprEval, MpiSentinelsAndFailureModes) {
  const IntEnv env{{"rank", 0}, {"size", 2}};
  EXPECT_EQ(eval_int_expr("rank == 0 ? MPI_PROC_NULL : rank - 1", env),
            kMpiProcNull);
  EXPECT_EQ(eval_int_expr("MPI_ANY_SOURCE", env), kMpiAnySource);
  EXPECT_EQ(eval_int_expr("MPI_ANY_TAG", env), kMpiAnyTag);
  EXPECT_EQ(eval_int_expr("rank / (size - 2)", env), std::nullopt);
  EXPECT_EQ(eval_int_expr("unbound_var", env), std::nullopt);
  EXPECT_EQ(eval_int_expr("rank +", env), std::nullopt);
}

// --- rank simulator ---------------------------------------------------------

TEST(RankSim, GuardsDifferentiateTraces) {
  const DirectiveStream s = extract_stream(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
if (rank == 0) {
  MPI_Send(a, 4, MPI_DOUBLE, 1, 5, MPI_COMM_WORLD);
} else if (rank == 1) {
  MPI_Recv(b, 4, MPI_DOUBLE, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}
)");
  const RankSimResult sim = simulate_ranks(s, 4);
  EXPECT_TRUE(sim.has_rank_size);
  EXPECT_TRUE(sim.comm_exact);
  ASSERT_EQ(sim.traces.size(), 4u);
  ASSERT_EQ(sim.traces[0].ops.size(), 1u);
  EXPECT_EQ(sim.traces[0].ops[0].kind, RankOpKind::kSend);
  EXPECT_EQ(sim.traces[0].ops[0].peer, 1);
  EXPECT_EQ(sim.traces[0].ops[0].tag, 5);
  ASSERT_EQ(sim.traces[1].ops.size(), 1u);
  EXPECT_EQ(sim.traces[1].ops[0].kind, RankOpKind::kRecv);
  EXPECT_TRUE(sim.traces[2].ops.empty());
  EXPECT_TRUE(sim.traces[3].ops.empty());
}

TEST(RankSim, UnresolvedPeerPoisonsCommExactness) {
  const DirectiveStream s = extract_stream(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
MPI_Send(a, 4, MPI_DOUBLE, peer_from_argv, 5, MPI_COMM_WORLD);
)");
  const RankSimResult sim = simulate_ranks(s, 4);
  EXPECT_TRUE(sim.has_rank_size);
  EXPECT_FALSE(sim.comm_exact);
  std::vector<Diagnostic> out;
  check_comm_graph(sim, &out);
  EXPECT_TRUE(out.empty());  // gated: never accuse what it cannot see
}

TEST(RankSim, CommGraphMatchesPairsAcrossRanks) {
  const DirectiveStream s = extract_stream(R"(
int rank = 0;
int size = 0;
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
if (rank == 0) {
  MPI_Send(a, 4, MPI_DOUBLE, 1, 5, MPI_COMM_WORLD);
}
if (rank == 1) {
  MPI_Recv(b, 4, MPI_DOUBLE, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}
)");
  const RankSimResult sim = simulate_ranks(s, 4);
  const CommGraph g = build_comm_graph(sim.traces);
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_EQ(g.edges[0].send.first, 0);
  EXPECT_EQ(g.edges[0].recv.first, 1);
  EXPECT_TRUE(g.unmatched_sends.empty());
  EXPECT_TRUE(g.unmatched_recvs.empty());
}

// --- vector clocks ----------------------------------------------------------

TEST(HbClock, MergeAndLeq) {
  VectorClock host;
  VectorClock q1;
  host.tick("host");
  EXPECT_TRUE(q1.leq(host));   // empty clock precedes everything
  EXPECT_FALSE(host.leq(q1));
  q1.tick("q:1");
  EXPECT_FALSE(host.leq(q1));  // concurrent: neither precedes the other
  EXPECT_FALSE(q1.leq(host));
  VectorClock joined = host;
  joined.merge(q1);
  EXPECT_TRUE(host.leq(joined));
  EXPECT_TRUE(q1.leq(joined));
  EXPECT_EQ(joined.at("host"), 1);
  EXPECT_EQ(joined.at("q:1"), 1);
  EXPECT_EQ(joined.at("q:2"), 0);
}

// --- suppression comments ---------------------------------------------------

TEST(LintSuppression, AllowCommentSilencesTheNamedCode) {
  const char* loud_src = R"(
#pragma acc enter data copyin(a[0:n])
#pragma acc update device(b[0:n])
#pragma acc exit data delete(a[0:n])
)";
  const LintResult loud = lint_source(loud_src);
  EXPECT_TRUE(has_code(loud, "IMP003"));

  const char* quiet_src = R"(
#pragma acc enter data copyin(a[0:n])
/* impacc-lint: allow(IMP003) */
#pragma acc update device(b[0:n])
#pragma acc exit data delete(a[0:n])
)";
  const LintResult quiet = lint_source(quiet_src);
  EXPECT_FALSE(has_code(quiet, "IMP003"));
  EXPECT_EQ(quiet.suppressed, 1);
}

TEST(LintSuppression, AllowCommentOnlyCoversTheNamedCode) {
  const char* src = R"(
#pragma acc enter data copyin(a[0:n])
/* impacc-lint: allow(IMP006) */
#pragma acc update device(b[0:n])
#pragma acc exit data delete(a[0:n])
)";
  const LintResult r = lint_source(src);
  EXPECT_TRUE(has_code(r, "IMP003"));  // different code: still reported
}

// --- werror -----------------------------------------------------------------

TEST(LintWerror, PromotesWarningsToErrors) {
  LintOptions opts;
  opts.warnings_as_errors = true;
  const LintResult r =
      lint_source(fixture("imp006_async_never_waited.c"), opts);
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.warnings, 0);
}

// --- behavioural details ----------------------------------------------------

TEST(Lint, StructuredRegionCopyinIsNotADoubleCopyin) {
  // present_or_copyin semantics: a structured data clause over an
  // already-present buffer is legal.
  const LintResult r = lint_source(R"(
#pragma acc enter data copyin(a[0:n])
#pragma acc data copyin(a[0:n])
{
#pragma acc parallel loop present(a[0:n])
for (i = 0; i < n; i++) { a[i] = 0; }
}
#pragma acc exit data delete(a[0:n])
)");
  EXPECT_FALSE(has_code(r, "IMP001"));
  EXPECT_TRUE(r.clean());
}

TEST(Lint, StructuredRegionScopesPresence) {
  // `a` stops being present when its data region closes.
  const LintResult r = lint_source(R"(
#pragma acc data copyin(a[0:n])
{
#pragma acc update device(a[0:n])
}
#pragma acc update device(a[0:n])
)");
  int imp003 = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == "IMP003") ++imp003;
  }
  EXPECT_EQ(imp003, 1);
  EXPECT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].line, 6);
}

TEST(Lint, BareWaitCoversAllQueues) {
  const LintResult r = lint_source(R"(
#pragma acc data copyin(v[0:n])
{
#pragma acc parallel loop present(v[0:n]) async(1)
for (i = 0; i < n; i++) { v[i] = 0; }
#pragma acc parallel loop present(v[0:n]) async(2)
for (i = 0; i < n; i++) { v[i] = 1; }
#pragma acc wait
}
)");
  EXPECT_FALSE(has_code(r, "IMP006"));
  EXPECT_TRUE(r.clean());
}

TEST(Lint, AsyncAfterLastWaitIsFlagged) {
  const LintResult r = lint_source(R"(
#pragma acc data copyin(v[0:n])
{
#pragma acc parallel loop present(v[0:n]) async(1)
for (i = 0; i < n; i++) { v[i] = 0; }
#pragma acc wait(1)
#pragma acc parallel loop present(v[0:n]) async(1)
for (i = 0; i < n; i++) { v[i] = 1; }
}
)");
  EXPECT_TRUE(has_code(r, "IMP006"));
}

TEST(Lint, AsyncAttachedNonblockingNeedsNoHostWait) {
  // The paper's unified-activity-queue idiom: Isend on queue 1, queue 1
  // waited — no MPI_Wait needed.
  const LintResult r = lint_source(R"(
#pragma acc data copyin(d[0:n])
{
#pragma acc mpi sendbuf(device) async(1)
MPI_Isend(d, n, MPI_DOUBLE, peer, 3, MPI_COMM_WORLD, &req);
#pragma acc wait(1)
}
)");
  EXPECT_FALSE(has_code(r, "IMP009"));
  EXPECT_TRUE(r.clean());
}

TEST(Lint, WaitallCompletesRequestArrays) {
  const LintResult r = lint_source(R"(
MPI_Isend(a, n, MPI_DOUBLE, p, 1, MPI_COMM_WORLD, &req[0]);
MPI_Irecv(b, n, MPI_DOUBLE, p, 1, MPI_COMM_WORLD, &req[1]);
MPI_Waitall(2, req, MPI_STATUSES_IGNORE);
)");
  EXPECT_FALSE(has_code(r, "IMP009"));
}

TEST(Lint, WarningsAsErrorsPromotes) {
  const LintResult r =
      lint_source("#pragma acc wait(9)\n", LintOptions{true});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Severity::kError);
  EXPECT_TRUE(r.has_errors());
}

TEST(Lint, DiagnosticsAreSortedByLine) {
  const LintResult r = lint_source(R"(
#pragma acc update device(z[0:n])
#pragma acc update self(y[0:n])
)");
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_LT(r.diagnostics[0].line, r.diagnostics[1].line);
}

// --- data-flow building blocks ----------------------------------------------

TEST(SymbolicPresentTableTest, RefcountsAndOrigins) {
  SymbolicPresentTable t;
  EXPECT_EQ(t.enter("a", 1, false), 0);
  EXPECT_EQ(t.enter("a", 2, false), 1);  // double unstructured enter
  EXPECT_TRUE(t.present("a"));
  EXPECT_TRUE(t.exit("a", false));
  EXPECT_TRUE(t.present("a"));  // one reference left
  EXPECT_TRUE(t.exit("a", false));
  EXPECT_FALSE(t.present("a"));
  EXPECT_FALSE(t.exit("a", false));  // nothing left to release
}

TEST(SymbolicPresentTableTest, StructuredEnterDoesNotCountAsDouble) {
  SymbolicPresentTable t;
  EXPECT_EQ(t.enter("a", 1, true), 0);
  EXPECT_EQ(t.enter("a", 2, true), 0);  // nested regions are fine
  EXPECT_EQ(t.enter("a", 3, false), 0);  // enter data over structured: ok
  EXPECT_EQ(t.live_unstructured().size(), 1u);
  EXPECT_TRUE(t.exit("a", false));
  EXPECT_TRUE(t.live_unstructured().empty());
}

TEST(QueueTrackerTest, WaitCoversEarlierUsesOnly) {
  QueueTracker q;
  q.use("1", 10);
  q.wait("1", 20);
  q.use("1", 30);
  EXPECT_FALSE(q.fully_waited("1"));
  ASSERT_EQ(q.unwaited().size(), 1u);
  EXPECT_EQ(q.unwaited()[0].line, 30);
  q.wait_all(40);
  EXPECT_TRUE(q.fully_waited("1"));
  EXPECT_TRUE(q.unwaited().empty());
}

TEST(QueueTrackerTest, UsedBeforeRespectsOrder) {
  QueueTracker q;
  q.use("2", 15);
  EXPECT_FALSE(q.used_before("2", 10));
  EXPECT_TRUE(q.used_before("2", 15));
  EXPECT_FALSE(q.used_before("3", 100));
}

TEST(DataflowHelpers, BaseIdentifier) {
  EXPECT_EQ(base_identifier("buf"), "buf");
  EXPECT_EQ(base_identifier("&x"), "x");
  EXPECT_EQ(base_identifier("a[0]"), "a");
  EXPECT_EQ(base_identifier("(p)"), "p");
  EXPECT_EQ(base_identifier(" &req[i] "), "req");
  EXPECT_EQ(base_identifier("buf + off"), "buf");
  EXPECT_EQ(base_identifier("42"), "42");
  EXPECT_EQ(base_identifier(""), "");
}

TEST(DataflowHelpers, MpiBufferRoles) {
  auto send = mpi_buffer_roles("MPI_Isend");
  ASSERT_TRUE(send.has_value());
  EXPECT_EQ(send->send_arg, 0);
  EXPECT_EQ(send->recv_arg, -1);
  auto red = mpi_buffer_roles("MPI_Allreduce");
  ASSERT_TRUE(red.has_value());
  EXPECT_EQ(red->send_arg, 0);
  EXPECT_EQ(red->recv_arg, 1);
  auto gather = mpi_buffer_roles("MPI_Gather");
  ASSERT_TRUE(gather.has_value());
  EXPECT_EQ(gather->recv_arg, 3);
  EXPECT_FALSE(mpi_buffer_roles("MPI_Barrier").has_value());
}

TEST(ExtractStream, EventsInSourceOrderWithRegions) {
  const DirectiveStream s = extract_stream(R"(
#pragma acc data copyin(a[0:n])
{
#pragma acc update device(a[0:n])
MPI_Barrier(MPI_COMM_WORLD);
}
)");
  ASSERT_EQ(s.events.size(), 4u);
  EXPECT_EQ(s.events[0].kind, EventKind::kRegionEnter);
  EXPECT_EQ(s.events[1].kind, EventKind::kDirective);
  EXPECT_EQ(s.events[1].directive.kind, DirectiveKind::kUpdate);
  EXPECT_EQ(s.events[2].kind, EventKind::kMpiCall);
  EXPECT_EQ(s.events[2].call.name, "MPI_Barrier");
  EXPECT_EQ(s.events[3].kind, EventKind::kRegionExit);
  EXPECT_EQ(s.events[0].region_id, s.events[3].region_id);
  EXPECT_TRUE(s.scan_diagnostics.empty());
}

TEST(ExtractStream, AttachedMpiCallIsParsed) {
  const DirectiveStream s = extract_stream(
      "#pragma acc mpi sendbuf(device) async(1)\n"
      "MPI_Isend(d, n, MPI_DOUBLE, peer, 3, MPI_COMM_WORLD, &req);\n");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].directive.kind, DirectiveKind::kMpi);
  ASSERT_TRUE(s.events[0].call.valid);
  EXPECT_EQ(s.events[0].call.name, "MPI_Isend");
  ASSERT_EQ(s.events[0].call.args.size(), 7u);
  EXPECT_EQ(s.events[0].call.args[0], "d");
  EXPECT_EQ(s.events[0].call.args[6], "&req");
}

TEST(ExtractStream, CommentsAndStringsAreSkipped) {
  const DirectiveStream s = extract_stream(
      "// MPI_Send(a, 1) in a comment\n"
      "const char* t = \"MPI_Recv(b)\";\n"
      "/* #pragma acc wait(1) */\n");
  // Commented-out directives and calls inside string literals must not
  // become directive or MPI events (host-code assignment events are
  // fine; the rank simulator consumes those).
  for (const auto& ev : s.events) {
    EXPECT_TRUE(ev.kind == EventKind::kAssign ||
                ev.kind == EventKind::kGuardEnter ||
                ev.kind == EventKind::kGuardExit)
        << static_cast<int>(ev.kind);
  }
  EXPECT_TRUE(s.scan_diagnostics.empty());
}

// --- JSON / SARIF emitters --------------------------------------------------

// Minimal recursive-descent JSON parser, just enough to round-trip the
// reports the emitters produce and check them against the schema.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    static const JsonValue null;
    auto it = object.find(key);
    return it == object.end() ? null : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string_body(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Report files only escape control chars; keep the code
            // point's low byte, which is all the emitter produces.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out->push_back(
                static_cast<char>(std::stoi(hex, nullptr, 16) & 0xff));
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return string_body(&out->str);
    }
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_body(&key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue v;
        if (!value(&v)) return false;
        out->object.emplace(std::move(key), std::move(v));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == '}') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
      while (true) {
        JsonValue v;
        if (!value(&v)) return false;
        out->array.push_back(std::move(v));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == ']') { ++pos_; return true; }
        return false;
      }
    }
    if (c == 't') { out->type = JsonValue::Type::kBool; out->boolean = true;
                    return literal("true"); }
    if (c == 'f') { out->type = JsonValue::Type::kBool; return literal("false"); }
    if (c == 'n') { return literal("null"); }
    // number
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool is_valid_code(const std::string& code) {
  if (code.size() != 6 || code.compare(0, 3, "IMP") != 0) return false;
  return std::isdigit(static_cast<unsigned char>(code[3])) &&
         std::isdigit(static_cast<unsigned char>(code[4])) &&
         std::isdigit(static_cast<unsigned char>(code[5]));
}

// Schema check for one parsed impacc-lint JSON report.
void check_report_schema(const JsonValue& root) {
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  ASSERT_TRUE(root.has("tool"));
  EXPECT_EQ(root.at("tool").str, "impacc-lint");
  ASSERT_TRUE(root.has("version"));
  EXPECT_EQ(root.at("version").type, JsonValue::Type::kNumber);
  ASSERT_TRUE(root.has("files"));
  ASSERT_EQ(root.at("files").type, JsonValue::Type::kArray);
  for (const auto& file : root.at("files").array) {
    ASSERT_EQ(file.type, JsonValue::Type::kObject);
    ASSERT_TRUE(file.has("file"));
    EXPECT_EQ(file.at("file").type, JsonValue::Type::kString);
    EXPECT_FALSE(file.at("file").str.empty());
    ASSERT_TRUE(file.has("diagnostics"));
    ASSERT_EQ(file.at("diagnostics").type, JsonValue::Type::kArray);
    for (const auto& d : file.at("diagnostics").array) {
      ASSERT_EQ(d.type, JsonValue::Type::kObject);
      EXPECT_TRUE(is_valid_code(d.at("code").str)) << d.at("code").str;
      EXPECT_TRUE(find_rule(d.at("code").str) != nullptr)
          << "code not in catalog: " << d.at("code").str;
      const std::string sev = d.at("severity").str;
      EXPECT_TRUE(sev == "note" || sev == "warning" || sev == "error")
          << sev;
      ASSERT_EQ(d.at("line").type, JsonValue::Type::kNumber);
      EXPECT_GE(d.at("line").number, 0.0);
      ASSERT_EQ(d.at("column").type, JsonValue::Type::kNumber);
      EXPECT_GE(d.at("column").number, 1.0);
      EXPECT_EQ(d.at("message").type, JsonValue::Type::kString);
      EXPECT_FALSE(d.at("message").str.empty());
      if (d.has("fixit")) {
        EXPECT_EQ(d.at("fixit").type, JsonValue::Type::kString);
      }
    }
  }
}

TEST(LintReport, JsonRoundTripsThroughSchemaCheck) {
  // Lint every fixture into one multi-file report and round-trip it.
  std::vector<FileDiagnostics> files;
  for (const char* f :
       {"imp001_double_copyin.c", "imp005_mpi_buffer_not_present.c",
        "imp006_async_never_waited.c", "imp012_malformed.c",
        "clean_pipeline.c"}) {
    FileDiagnostics fd;
    fd.file = f;
    fd.diagnostics = lint_source(fixture(f)).diagnostics;
    files.push_back(std::move(fd));
  }
  const std::string json = to_json(files);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(&root)) << json;
  check_report_schema(root);

  // The parsed report matches what the linter produced.
  ASSERT_EQ(root.at("files").array.size(), files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const JsonValue& file = root.at("files").array[i];
    EXPECT_EQ(file.at("file").str, files[i].file);
    const auto& diags = file.at("diagnostics").array;
    ASSERT_EQ(diags.size(), files[i].diagnostics.size());
    for (std::size_t j = 0; j < diags.size(); ++j) {
      EXPECT_EQ(diags[j].at("code").str, files[i].diagnostics[j].code);
      EXPECT_EQ(static_cast<int>(diags[j].at("line").number),
                files[i].diagnostics[j].line);
      EXPECT_EQ(diags[j].at("message").str,
                files[i].diagnostics[j].message);
    }
  }
}

TEST(LintReport, JsonEscapesHostileStrings) {
  FileDiagnostics fd;
  fd.file = "we\"ird\\path\nname.c";
  Diagnostic d = make_diagnostic("IMP012", 1, 1, "msg with \"quotes\"\tand\ntabs");
  fd.diagnostics.push_back(d);
  const std::string json = to_json({fd});
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(&root)) << json;
  EXPECT_EQ(root.at("files").array[0].at("file").str, fd.file);
  EXPECT_EQ(root.at("files").array[0].at("diagnostics").array[0]
                .at("message").str,
            d.message);
}

TEST(LintReport, SarifHasRunsRulesAndResults) {
  FileDiagnostics fd;
  fd.file = "demo.c";
  fd.diagnostics = lint_source(fixture("imp003_update_not_present.c")).diagnostics;
  ASSERT_FALSE(fd.diagnostics.empty());
  const std::string sarif = to_sarif({fd});
  JsonValue root;
  ASSERT_TRUE(JsonParser(sarif).parse(&root)) << sarif;
  EXPECT_EQ(root.at("version").str, "2.1.0");
  ASSERT_EQ(root.at("runs").type, JsonValue::Type::kArray);
  ASSERT_EQ(root.at("runs").array.size(), 1u);
  const JsonValue& run = root.at("runs").array[0];
  const JsonValue& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").str, "impacc-lint");
  // Every fired code appears exactly once in the rules table.
  const auto& rules = driver.at("rules").array;
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].at("id").str, "IMP003");
  const auto& results = run.at("results").array;
  ASSERT_EQ(results.size(), fd.diagnostics.size());
  const JsonValue& r0 = results[0];
  EXPECT_EQ(r0.at("ruleId").str, "IMP003");
  const JsonValue& loc =
      r0.at("locations").array[0].at("physicalLocation");
  EXPECT_EQ(loc.at("artifactLocation").at("uri").str, "demo.c");
  EXPECT_EQ(static_cast<int>(loc.at("region").at("startLine").number),
            fd.diagnostics[0].line);
}

TEST(LintReport, RuleCatalogIsWellFormed) {
  int n = 0;
  for (const RuleInfo* r = rule_catalog(); r->code != nullptr; ++r, ++n) {
    EXPECT_TRUE(is_valid_code(r->code)) << r->code;
    EXPECT_NE(r->summary, nullptr);
    EXPECT_GT(std::string(r->summary).size(), 10u) << r->code;
    EXPECT_EQ(find_rule(r->code), r);
  }
  EXPECT_EQ(n, 32);  // IMP001..IMP024 correctness + IMP030..IMP037 perf
  EXPECT_EQ(find_rule("IMP999"), nullptr);
  // Every cataloged rule has an --explain doc entry, and vice versa.
  int docs = 0;
  for (const RuleDoc* d = rule_doc_table(); d->code != nullptr; ++d, ++docs) {
    EXPECT_NE(find_rule(d->code), nullptr) << d->code;
    EXPECT_GT(std::string(d->doc).size(), 20u) << d->code;
    EXPECT_NE(d->example, nullptr) << d->code;
    EXPECT_NE(d->fix, nullptr) << d->code;
  }
  EXPECT_EQ(docs, 32);
  EXPECT_EQ(find_rule_doc("IMP001"), rule_doc_table());
  EXPECT_EQ(find_rule_doc("IMP999"), nullptr);
}

TEST(LintReport, RenderTextCarriesPositionCodeAndFixit) {
  Diagnostic d = make_diagnostic("IMP003", 7, 13, "update of x", "add x");
  const std::string text = render_text(d, "f.c");
  EXPECT_NE(text.find("f.c:7:13:"), std::string::npos) << text;
  EXPECT_NE(text.find("error:"), std::string::npos) << text;
  EXPECT_NE(text.find("[IMP003]"), std::string::npos) << text;
  EXPECT_NE(text.find("fix-it"), std::string::npos) << text;
}

// --- translate_source --lint integration ------------------------------------

TEST(TranslateLint, RefusesToLowerDiagnosedSource) {
  TranslateOptions opt;
  opt.lint = true;
  const auto r =
      translate_source("#pragma acc update device(x[0:n])\n", opt);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("IMP003"), std::string::npos);
  EXPECT_TRUE(r.output.empty());  // nothing was lowered
}

TEST(TranslateLint, PassesWarningsThroughAndLowers) {
  TranslateOptions opt;
  opt.lint = true;
  const auto r = translate_source(
      "#pragma acc data copyin(v[0:n])\n"
      "{\n"
      "#pragma acc parallel loop present(v[0:n]) async(1)\n"
      "for (i = 0; i < n; i++) { v[i] = 0; }\n"
      "}\n",
      opt);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  ASSERT_FALSE(r.warnings.empty());  // IMP006: queue 1 never waited
  EXPECT_NE(r.warnings[0].find("IMP006"), std::string::npos);
  EXPECT_NE(r.output.find("impacc::acc::parallel_loop"), std::string::npos);
}

TEST(TranslateLint, CleanSourceTranslatesWithoutNoise) {
  TranslateOptions opt;
  opt.lint = true;
  const auto r = translate_source(
      "#pragma acc enter data copyin(x[0:n])\n"
      "#pragma acc update device(x[0:n])\n"
      "#pragma acc exit data delete(x[0:n])\n",
      opt);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.warnings.empty());
  EXPECT_TRUE(r.errors.empty());
}

}  // namespace
}  // namespace impacc::trans::analysis
