// Unit tests for the simulated-device substrate: memory arenas, devices,
// activity queues, copy planning.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "dev/copyengine.h"
#include "dev/device.h"
#include "dev/memarena.h"
#include "dev/stream.h"
#include "sim/systems.h"
#include "ult/scheduler.h"

namespace impacc::dev {
namespace {

// --- MemArena --------------------------------------------------------------------

TEST(MemArena, AllocFreeBasics) {
  MemArena arena(1 << 20, ArenaMode::kReal);
  void* a = arena.alloc(1000);
  void* b = arena.alloc(2000);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_TRUE(arena.contains(b));
  EXPECT_EQ(arena.alloc_size(a), 1000u);
  EXPECT_EQ(arena.bytes_in_use(), 3000u);
  arena.free(a);
  arena.free(b);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(MemArena, RealModeIsDereferenceable) {
  MemArena arena(1 << 20, ArenaMode::kReal);
  auto* p = static_cast<int*>(arena.alloc(256 * sizeof(int)));
  for (int i = 0; i < 256; ++i) p[i] = i * 3;
  for (int i = 0; i < 256; ++i) ASSERT_EQ(p[i], i * 3);
  arena.free(p);
}

TEST(MemArena, AlignmentHonored) {
  MemArena arena(1 << 20, ArenaMode::kReal);
  for (std::uint64_t align : {8ull, 64ull, 256ull, 4096ull}) {
    void* p = arena.alloc(10, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    arena.free(p);
  }
}

TEST(MemArena, ExhaustionReturnsNull) {
  MemArena arena(8192, ArenaMode::kReal);
  void* a = arena.alloc(4096);
  void* b = arena.alloc(4096);
  EXPECT_NE(a, nullptr);
  // Alignment padding may consume part of the region; at least the
  // oversized request must fail.
  EXPECT_EQ(arena.alloc(8192), nullptr);
  arena.free(a);
  if (b != nullptr) arena.free(b);
}

TEST(MemArena, CoalescingAllowsFullReuse) {
  MemArena arena(1 << 16, ArenaMode::kReal);
  void* p[4];
  for (auto& q : p) q = arena.alloc(8192);
  for (auto& q : p) ASSERT_NE(q, nullptr);
  // Free in an order that exercises both-neighbor coalescing.
  arena.free(p[1]);
  arena.free(p[2]);
  arena.free(p[0]);
  arena.free(p[3]);
  // The whole region must be reusable as one block again.
  void* big = arena.alloc((1 << 16) - 4096);
  EXPECT_NE(big, nullptr);
  arena.free(big);
}

TEST(MemArena, VirtualModeUniqueRanges) {
  MemArena a(1 << 20, ArenaMode::kVirtual);
  MemArena b(1 << 20, ArenaMode::kVirtual);
  EXPECT_FALSE(a.dereferenceable());
  // Ranges from distinct virtual arenas never overlap.
  EXPECT_TRUE(a.base() + a.capacity() <= b.base() ||
              b.base() + b.capacity() <= a.base());
  void* p = a.alloc(100);
  EXPECT_TRUE(a.contains(p));
  EXPECT_FALSE(b.contains(p));
  a.free(p);
}

TEST(MemArenaProperty, RandomAllocFreeMatchesReferenceAccounting) {
  // Property test: after any interleaving of allocs/frees, bytes_in_use
  // matches a reference model and no two live blocks overlap.
  std::mt19937 rng(1234);
  MemArena arena(1 << 20, ArenaMode::kReal);
  std::map<std::uintptr_t, std::uint64_t> live;
  std::uint64_t used = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng() % 2 == 0) {
      const std::uint64_t size = 1 + rng() % 5000;
      void* p = arena.alloc(size);
      if (p == nullptr) continue;  // exhausted this round
      const auto addr = reinterpret_cast<std::uintptr_t>(p);
      // No overlap with any live block.
      auto it = live.upper_bound(addr);
      if (it != live.end()) {
        ASSERT_LE(addr + size, it->first);
      }
      if (it != live.begin()) {
        --it;
        ASSERT_GE(addr, it->first + it->second);
      }
      live[addr] = size;
      used += size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng() % live.size()));
      arena.free(reinterpret_cast<void*>(it->first));
      used -= it->second;
      live.erase(it);
    }
    ASSERT_EQ(arena.bytes_in_use(), used);
  }
}

// --- Device ---------------------------------------------------------------------

TEST(Device, CudaLikeBuffersHaveNoHandles) {
  sim::DeviceDesc desc = sim::make_psg().nodes[0].devices[0];
  Device dev(desc, 0, 0, 0, /*functional=*/true);
  const DeviceBuffer buf = dev.alloc(4096);
  EXPECT_NE(buf.dptr, nullptr);
  EXPECT_EQ(buf.handle, 0u);  // UVA pointer, no cl_mem (Fig. 3 Task 0)
  EXPECT_TRUE(dev.owns(buf.dptr));
  dev.free(buf);
}

TEST(Device, OpenClLikeBuffersCarryHandles) {
  sim::DeviceDesc desc = sim::make_beacon(1).nodes[0].devices[0];
  Device dev(desc, 0, 0, 0, /*functional=*/true);
  const DeviceBuffer a = dev.alloc(4096);
  const DeviceBuffer b = dev.alloc(4096);
  EXPECT_NE(a.handle, 0u);  // cl_mem-style object id (Fig. 3 Task 1)
  EXPECT_NE(b.handle, a.handle);
  dev.free(a);
  dev.free(b);
}

TEST(Device, StreamsAreCreatedLazilyAndCached) {
  sim::DeviceDesc desc = sim::make_titan(1).nodes[0].devices[0];
  Device dev(desc, 0, 0, 0, true);
  Stream* s1 = dev.stream(1);
  Stream* s2 = dev.stream(2);
  EXPECT_NE(s1, nullptr);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(dev.stream(1), s1);  // cached
  EXPECT_EQ(dev.streams().size(), 2u);
}

TEST(Device, KernelCostUsesRoofline) {
  sim::DeviceDesc desc = sim::make_titan(1).nodes[0].devices[0];
  Device dev(desc, 0, 0, 0, true);
  const sim::Time small = dev.kernel_cost({1e6, 1e3});
  const sim::Time big = dev.kernel_cost({1e12, 1e3});
  EXPECT_LT(small, big);
  EXPECT_NEAR(big, desc.kernel_launch_overhead + 1e12 / desc.flops_dp, 1e-9);
}

// --- Stream ---------------------------------------------------------------------

TEST(Stream, ExecutesOpsInOrderAndAdvancesClock) {
  Stream s(0, 1);
  std::vector<int> order;
  CompletionRecord done;
  for (int i = 0; i < 3; ++i) {
    StreamOp op;
    op.kind = StreamOp::Kind::kKernel;
    op.model_cost = 1.0;
    op.body = [&order, i] { order.push_back(i); };
    if (i == 2) op.completion = &done;
    s.enqueue(std::move(op));
  }
  EXPECT_FALSE(s.advance(/*functional=*/true));  // drains fully
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  sim::Time t = 0;
  EXPECT_TRUE(done.poll(&t));
  EXPECT_DOUBLE_EQ(t, 3.0);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_TRUE(s.idle());
}

TEST(Stream, FunctionalMemcpyMovesBytes) {
  Stream s(0, 0);
  const char src[] = "payload";
  char dst[8] = {};
  StreamOp op;
  op.kind = StreamOp::Kind::kMemcpy;
  op.dst = dst;
  op.src = src;
  op.bytes = sizeof(src);
  op.functional = true;
  op.model_cost = 0.5;
  s.enqueue(std::move(op));
  s.advance(true);
  EXPECT_STREQ(dst, "payload");
}

TEST(Stream, ModelOnlySkipsDataButRunsCallbacks) {
  Stream s(0, 0);
  char dst[8] = {};
  bool callback_ran = false;
  StreamOp copy;
  copy.kind = StreamOp::Kind::kMemcpy;
  copy.dst = dst;
  copy.src = nullptr;  // would crash if dereferenced
  copy.bytes = 8;
  copy.functional = false;
  s.enqueue(std::move(copy));
  StreamOp cb;
  cb.kind = StreamOp::Kind::kCallback;
  cb.body = [&callback_ran] { callback_ran = true; };
  s.enqueue(std::move(cb));
  s.advance(/*functional=*/false);
  EXPECT_TRUE(callback_ran);  // control flow runs even in model mode
}

TEST(Stream, AsyncExternalInitiatesInOrderWithoutBlockingTheQueue) {
  // The Fig. 4(c) shape: two MPI ops then a kernel. Both MPI ops must be
  // initiated before the kernel runs, and the kernel must wait for both
  // completions.
  Stream s(0, 1);
  std::vector<std::string> events;
  for (int i = 0; i < 2; ++i) {
    StreamOp op;
    op.kind = StreamOp::Kind::kAsyncExternal;
    op.begin_async = [&events, i](sim::Time, std::uint32_t) {
      events.push_back("init" + std::to_string(i));
    };
    s.enqueue(std::move(op));
  }
  StreamOp k;
  k.kind = StreamOp::Kind::kKernel;
  k.model_cost = 1.0;
  k.body = [&events] { events.push_back("kernel"); };
  s.enqueue(std::move(k));

  EXPECT_TRUE(s.advance(true));  // stalls on the kernel
  EXPECT_EQ(events, (std::vector<std::string>{"init0", "init1"}));
  EXPECT_FALSE(s.idle());

  EXPECT_FALSE(s.complete_inflight(5.0));  // one still outstanding
  EXPECT_TRUE(s.complete_inflight(7.0));   // now runnable again
  EXPECT_FALSE(s.advance(true));           // kernel executes
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2], "kernel");
  // Kernel started after the latest completion (7.0) and took 1.0.
  EXPECT_DOUBLE_EQ(s.now(), 8.0);
}

TEST(CompletionRecord, PollAndCompleteOnce) {
  CompletionRecord rec;
  EXPECT_FALSE(rec.poll());
  rec.complete(2.5);
  sim::Time t = 0;
  EXPECT_TRUE(rec.poll(&t));
  EXPECT_DOUBLE_EQ(t, 2.5);
}

// --- Copy planning (Fig. 6) --------------------------------------------------------

class CopyPlanTest : public ::testing::Test {
 protected:
  CopyPlanTest()
      : cluster_(sim::make_psg()),
        node_(cluster_.nodes[0]),
        d0_(node_.devices[0], 0, 0, 0, true),
        d1_(node_.devices[1], 0, 1, 1, true),
        d4_(node_.devices[4], 0, 4, 4, true) {}

  sim::ClusterDesc cluster_;
  const sim::NodeDesc& node_;
  Device d0_;
  Device d1_;
  Device d4_;
};

TEST_F(CopyPlanTest, HostToHostFusedIsSingleCopy) {
  const auto plan = plan_fused_copy(node_, cluster_.costs, nullptr, nullptr,
                                    1 << 20, true, true, true);
  EXPECT_EQ(plan.kind, CopyPathKind::kHostToHost);
  const auto base = plan_baseline_copy(node_, cluster_.costs, 1 << 20);
  EXPECT_EQ(base.kind, CopyPathKind::kBaselineIpc);
  // One copy beats two copies + IPC (message fusion, Fig. 6).
  EXPECT_LT(plan.cost, base.cost);
}

TEST_F(CopyPlanTest, SameRootComplexUsesPeerPath) {
  const auto plan = plan_fused_copy(node_, cluster_.costs, &d0_, &d1_,
                                    1 << 20, true, true, true);
  EXPECT_EQ(plan.kind, CopyPathKind::kDevToDevPeer);
}

TEST_F(CopyPlanTest, CrossRootComplexStagesThroughHost) {
  const auto plan = plan_fused_copy(node_, cluster_.costs, &d0_, &d4_,
                                    1 << 20, true, true, true);
  EXPECT_EQ(plan.kind, CopyPathKind::kDevToDevStaged);
}

TEST_F(CopyPlanTest, PeerDisabledFallsBackToStaging) {
  const auto plan = plan_fused_copy(node_, cluster_.costs, &d0_, &d1_,
                                    1 << 20, true, true, /*allow_peer=*/false);
  EXPECT_EQ(plan.kind, CopyPathKind::kDevToDevStaged);
  const auto peer = plan_fused_copy(node_, cluster_.costs, &d0_, &d1_,
                                    1 << 20, true, true, true);
  EXPECT_GT(plan.cost, peer.cost);
}

TEST_F(CopyPlanTest, MixedPathsPickPcieDirection) {
  const auto h2d = plan_fused_copy(node_, cluster_.costs, nullptr, &d0_,
                                   1 << 20, true, true, true);
  const auto d2h = plan_fused_copy(node_, cluster_.costs, &d0_, nullptr,
                                   1 << 20, true, true, true);
  EXPECT_EQ(h2d.kind, CopyPathKind::kHostToDev);
  EXPECT_EQ(d2h.kind, CopyPathKind::kDevToHost);
}

TEST_F(CopyPlanTest, FarPinningRaisesCost) {
  const auto near = plan_fused_copy(node_, cluster_.costs, nullptr, &d0_,
                                    1 << 20, true, true, true);
  const auto far = plan_fused_copy(node_, cluster_.costs, nullptr, &d0_,
                                   1 << 20, true, false, true);
  EXPECT_GT(far.cost, near.cost);
}

TEST(CopyBytes, FunctionalGuard) {
  char src[8] = "abc";
  char dst[8] = {};
  copy_bytes(dst, src, 4, /*functional=*/false);
  EXPECT_EQ(dst[0], '\0');  // untouched
  copy_bytes(dst, src, 4, /*functional=*/true);
  EXPECT_STREQ(dst, "abc");
}

}  // namespace
}  // namespace impacc::dev
