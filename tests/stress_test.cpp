// Stress and property tests: randomized message storms, multi-worker
// scheduler pressure, eager/rendezvous boundary sweeps, collective
// sequences — the failure modes unit tests are too polite to hit.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "apps/dgemm.h"
#include "common/checksum.h"
#include "common/mpsc_queue.h"
#include "impacc.h"
#include "ult/sync.h"

namespace impacc {
namespace {

core::LaunchOptions opts(const char* system, int nodes, int workers = 1) {
  core::LaunchOptions o;
  o.cluster = sim::make_system(system, nodes);
  o.scheduler_workers = workers;
  return o;
}

/// Deterministic payload for (src, sequence) so receivers can verify
/// without any side channel.
std::uint64_t payload(int src, int seq) {
  return fnv1a(&src, sizeof(src)) ^ (static_cast<std::uint64_t>(seq) << 32 |
                                     static_cast<unsigned>(seq));
}

TEST(Stress, RandomMessageStormDeliversExactlyOnce) {
  // Every rank draws the SAME seeded schedule of (src, dst, size, tag)
  // messages, so each receiver knows exactly what to post — the storm
  // covers random sizes straddling the eager threshold, self-sends, and
  // interleaved posting orders.
  constexpr int kMessages = 300;
  std::atomic<int> errors{0};
  launch(opts("psg", 1), [&errors] {
    auto w = mpi::world();
    const int rank = mpi::comm_rank(w);
    const int size = mpi::comm_size(w);

    struct Msg {
      int src;
      int dst;
      int words;
      int tag;
    };
    std::mt19937 rng(20160531);  // HPDC'16 ;-)
    std::vector<Msg> schedule;
    schedule.reserve(kMessages);
    for (int m = 0; m < kMessages; ++m) {
      Msg msg;
      msg.src = static_cast<int>(rng() % static_cast<unsigned>(size));
      msg.dst = static_cast<int>(rng() % static_cast<unsigned>(size));
      // 1 word .. ~4K words: straddles the 8 KiB eager threshold.
      msg.words = 1 + static_cast<int>(rng() % 4096);
      msg.tag = static_cast<int>(rng() % 64);
      schedule.push_back(msg);
    }

    // Post every receive first (non-blocking), then every send.
    std::vector<std::vector<std::uint64_t>> inboxes;
    std::vector<mpi::Request> recvs;
    std::vector<int> recv_ids;
    for (int m = 0; m < kMessages; ++m) {
      if (schedule[static_cast<std::size_t>(m)].dst != rank) continue;
      const Msg& msg = schedule[static_cast<std::size_t>(m)];
      inboxes.emplace_back(static_cast<std::size_t>(msg.words), 0);
      recvs.push_back(mpi::irecv(inboxes.back().data(), msg.words,
                                 mpi::Datatype::kUint64, msg.src,
                                 msg.tag * 1000 + m, w));
      recv_ids.push_back(m);
    }
    std::vector<std::vector<std::uint64_t>> outboxes;
    std::vector<mpi::Request> sends;
    for (int m = 0; m < kMessages; ++m) {
      if (schedule[static_cast<std::size_t>(m)].src != rank) continue;
      const Msg& msg = schedule[static_cast<std::size_t>(m)];
      outboxes.emplace_back(static_cast<std::size_t>(msg.words),
                            payload(msg.src, m));
      sends.push_back(mpi::isend(outboxes.back().data(), msg.words,
                                 mpi::Datatype::kUint64, msg.dst,
                                 msg.tag * 1000 + m, w));
    }
    mpi::waitall(sends);
    mpi::waitall(recvs);

    for (std::size_t i = 0; i < inboxes.size(); ++i) {
      const Msg& msg = schedule[static_cast<std::size_t>(recv_ids[i])];
      const std::uint64_t expect = payload(msg.src, recv_ids[i]);
      for (std::uint64_t v : inboxes[i]) {
        if (v != expect) {
          errors.fetch_add(1);
          break;
        }
      }
    }
    mpi::barrier(w);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(Stress, MultiWorkerSchedulerKeepsResultsExact) {
  // Four OS workers under the fiber scheduler: the park/unpark and
  // done-accounting protocols get real concurrency. Results must be
  // bit-identical to the single-worker run.
  auto run = [](int workers) {
    apps::DgemmConfig cfg;
    cfg.n = 48;
    auto o = opts("psg", 1, workers);
    return apps::run_dgemm(o, cfg).checksum;
  };
  const double single = run(1);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(run(4), single) << "repeat " << repeat;
  }
}

TEST(Stress, ManyFibersMutexCondvarPingPong) {
  constexpr int kPairs = 64;
  constexpr int kRounds = 100;
  // Pair state outlives the scheduler (declared first, destroyed last);
  // fibers only touch it while running, and wait_all() below guarantees
  // every fiber has finished before anything is torn down.
  struct Pair {
    ult::FiberMutex mutex;
    ult::FiberCondVar cv;
    int turn = 0;
  };
  std::vector<std::unique_ptr<Pair>> pairs;
  for (int p = 0; p < kPairs; ++p) pairs.push_back(std::make_unique<Pair>());

  ult::Scheduler sched(4);
  std::atomic<long> total{0};
  for (int p = 0; p < kPairs; ++p) {
    Pair* pr = pairs[static_cast<std::size_t>(p)].get();
    for (int side = 0; side < 2; ++side) {
      sched.spawn([pr, side, &total] {
        for (int r = 0; r < kRounds; ++r) {
          ult::FiberLock lock(pr->mutex);
          pr->cv.wait(pr->mutex, [pr, side] { return pr->turn % 2 == side; });
          ++pr->turn;
          total.fetch_add(1);
          pr->cv.notify_all();
        }
      });
    }
  }
  sched.wait_all();
  EXPECT_EQ(total.load(), 2L * kPairs * kRounds);
}

TEST(Stress, EagerRendezvousBoundarySweep) {
  // Byte sizes straddling the 8 KiB eager threshold, intra- and
  // internode; data must arrive intact on both protocol paths.
  for (const char* system : {"psg", "titan"}) {
    const int nodes = system[0] == 't' ? 2 : 1;
    std::atomic<int> errors{0};
    launch(opts(system, nodes), [&errors] {
      auto w = mpi::world();
      const int rank = mpi::comm_rank(w);
      for (int bytes :
           {1, 8, 8191, 8192, 8193, 65536, 1 << 20}) {
        const int n = bytes;  // kByte elements
        if (rank == 0) {
          std::vector<unsigned char> buf(static_cast<std::size_t>(n));
          for (int i = 0; i < n; ++i) {
            buf[static_cast<std::size_t>(i)] =
                static_cast<unsigned char>((i * 13 + bytes) & 0xff);
          }
          mpi::send(buf.data(), n, mpi::Datatype::kByte, 1, bytes & 0xffff, w);
        } else if (rank == 1) {
          std::vector<unsigned char> buf(static_cast<std::size_t>(n), 0);
          mpi::recv(buf.data(), n, mpi::Datatype::kByte, 0, bytes & 0xffff, w);
          for (int i = 0; i < n; ++i) {
            if (buf[static_cast<std::size_t>(i)] !=
                static_cast<unsigned char>((i * 13 + bytes) & 0xff)) {
              errors.fetch_add(1);
              break;
            }
          }
        }
      }
    });
    EXPECT_EQ(errors.load(), 0) << system;
  }
}

TEST(Stress, RandomCollectiveSequence) {
  // A seeded sequence of collectives with varying roots and sizes; every
  // result is checkable from rank ids alone.
  std::atomic<int> errors{0};
  launch(opts("beacon", 2), [&errors] {
    auto w = mpi::world();
    const int rank = mpi::comm_rank(w);
    const int size = mpi::comm_size(w);
    std::mt19937 rng(7);  // same stream on every rank
    for (int step = 0; step < 40; ++step) {
      const int kind = static_cast<int>(rng() % 5);
      const int root = static_cast<int>(rng() % static_cast<unsigned>(size));
      const int count = 1 + static_cast<int>(rng() % 128);
      switch (kind) {
        case 0: {
          std::vector<long> buf(static_cast<std::size_t>(count),
                                rank == root ? step : -1);
          mpi::bcast(buf.data(), count, mpi::Datatype::kLong, root, w);
          if (buf[0] != step || buf.back() != step) errors.fetch_add(1);
          break;
        }
        case 1: {
          long v = rank + step;
          long sum = 0;
          mpi::allreduce(&v, &sum, 1, mpi::Datatype::kLong, mpi::Op::kSum, w);
          const long expect =
              static_cast<long>(size) * step + size * (size - 1) / 2;
          if (sum != expect) errors.fetch_add(1);
          break;
        }
        case 2: {
          long v = rank * 2 + step;
          long mx = 0;
          mpi::reduce(&v, &mx, 1, mpi::Datatype::kLong, mpi::Op::kMax, root,
                      w);
          if (rank == root && mx != (size - 1) * 2 + step) errors.fetch_add(1);
          break;
        }
        case 3: {
          long v = rank + 1;
          long prefix = 0;
          mpi::scan(&v, &prefix, 1, mpi::Datatype::kLong, mpi::Op::kSum, w);
          if (prefix != static_cast<long>(rank + 1) * (rank + 2) / 2) {
            errors.fetch_add(1);
          }
          break;
        }
        default:
          mpi::barrier(w);
          break;
      }
    }
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(Stress, MpscQueueMultiProducerHammer) {
  // Raw OS threads hammering the Vyukov queue — the shape the message
  // handler depends on, and the test ThreadSanitizer has to certify:
  // N producers pushing concurrently, one consumer draining. Checks
  // exactly-once delivery and per-producer FIFO order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;

  struct Item : MpscNode {
    int producer = 0;
    int seq = 0;
  };
  // Nodes hold an atomic (immovable), so build them in place.
  std::vector<std::unique_ptr<Item[]>> items;
  items.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    items.emplace_back(new Item[kPerProducer]);
  }

  MpscQueue queue;
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int s = 0; s < kPerProducer; ++s) {
        Item& it = items[static_cast<std::size_t>(p)][s];
        it.producer = p;
        it.seq = s;
        queue.push(&it);
      }
    });
  }

  go.store(true, std::memory_order_release);
  int received = 0;
  int last_seq[kProducers];
  for (int& s : last_seq) s = -1;
  int order_errors = 0;
  while (received < kProducers * kPerProducer) {
    MpscNode* n = queue.pop();
    if (n == nullptr) continue;  // in-flight push; documented behaviour
    auto* it = static_cast<Item*>(n);
    if (it->seq != last_seq[it->producer] + 1) ++order_errors;
    last_seq[it->producer] = it->seq;
    ++received;
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(order_errors, 0);
  EXPECT_EQ(received, kProducers * kPerProducer);
  EXPECT_EQ(queue.pop(), nullptr);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seq[p], kPerProducer - 1) << "producer " << p;
  }
}

TEST(Stress, HandlerHammeredByManyWorkers) {
  // Every task floods rank 0 through the node's single handler while
  // four OS workers drive the fibers: the MPSC command queues, the
  // handler's matching structures, and the park/unpark protocol all see
  // genuine cross-thread contention (the TSan job's main quarry).
  constexpr int kRounds = 50;
  std::atomic<int> errors{0};
  launch(opts("psg", 1, 4), [&errors] {
    auto w = mpi::world();
    const int rank = mpi::comm_rank(w);
    const int size = mpi::comm_size(w);
    if (rank == 0) {
      std::vector<mpi::Request> recvs;
      std::vector<long> inbox(
          static_cast<std::size_t>((size - 1) * kRounds), 0);
      std::size_t slot = 0;
      for (int src = 1; src < size; ++src) {
        for (int r = 0; r < kRounds; ++r) {
          recvs.push_back(mpi::irecv(&inbox[slot++], 1,
                                     mpi::Datatype::kLong, src, r, w));
        }
      }
      mpi::waitall(recvs);
      slot = 0;
      for (int src = 1; src < size; ++src) {
        for (int r = 0; r < kRounds; ++r) {
          if (inbox[slot++] != static_cast<long>(src) * 1000 + r) {
            errors.fetch_add(1);
          }
        }
      }
    } else {
      for (int r = 0; r < kRounds; ++r) {
        long v = static_cast<long>(rank) * 1000 + r;
        mpi::send(&v, 1, mpi::Datatype::kLong, 0, r, w);
      }
    }
    mpi::barrier(w);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(Stress, BatchedHandlerMatchesUnbatchedBitForBit) {
  // The flag contract of DESIGN.md section 9: features.handler_batching
  // changes only how the handler drains its queue, never what it computes.
  // The same messaging-heavy workload must produce byte-identical results
  // AND bit-identical virtual time with the flag on and off.
  auto run = [](bool batching, double* checksum) {
    auto o = opts("titan", 2, 2);
    o.features.handler_batching = batching;
    std::atomic<std::uint64_t> sum{0};
    const auto r = launch(o, [&sum] {
      auto w = mpi::world();
      const int rank = mpi::comm_rank(w);
      const int size = mpi::comm_size(w);
      constexpr int kRounds = 40;
      std::uint64_t local = 0;
      // Mixed traffic: a flood into rank 0 (wildcard receives), plus a
      // neighbour ring exchange so non-zero ranks also match pairs.
      if (rank == 0) {
        std::vector<long> inbox(
            static_cast<std::size_t>((size - 1) * kRounds), 0);
        std::vector<mpi::Request> recvs;
        for (std::size_t i = 0; i < inbox.size(); ++i) {
          recvs.push_back(mpi::irecv(&inbox[i], 1, mpi::Datatype::kLong,
                                     mpi::kAnySource, mpi::kAnyTag, w));
        }
        mpi::waitall(recvs);
        for (long v : inbox) local += static_cast<std::uint64_t>(v);
      } else {
        for (int r2 = 0; r2 < kRounds; ++r2) {
          long v = static_cast<long>(rank) * 1000 + r2;
          mpi::send(&v, 1, mpi::Datatype::kLong, 0, r2 % 7, w);
        }
      }
      const int right = (rank + 1) % size;
      const int left = (rank + size - 1) % size;
      for (int r2 = 0; r2 < 20; ++r2) {
        long out = rank * 37 + r2;
        long in = -1;
        mpi::sendrecv(&out, 1, mpi::Datatype::kLong, right, 3, &in, 1,
                      mpi::Datatype::kLong, left, 3, w);
        local += static_cast<std::uint64_t>(in);
      }
      long total = 0;
      long mine = static_cast<long>(local & 0x7fffffff);
      mpi::allreduce(&mine, &total, 1, mpi::Datatype::kLong, mpi::Op::kSum,
                     w);
      sum.fetch_add(static_cast<std::uint64_t>(total));
    });
    *checksum = static_cast<double>(sum.load());
    return r.makespan;
  };
  double sum_on = 0;
  double sum_off = 0;
  const auto makespan_on = run(true, &sum_on);
  const auto makespan_off = run(false, &sum_off);
  EXPECT_EQ(sum_on, sum_off);
  EXPECT_EQ(makespan_on, makespan_off);  // virtual time, bit for bit
}

TEST(Stress, BackToBackLaunchesAreIndependent) {
  // Runtimes must tear down completely: repeated launches on one process
  // (the pattern every benchmark binary uses) cannot leak state.
  for (int i = 0; i < 5; ++i) {
    const auto r = launch(opts("titan", 3), [] {
      auto w = mpi::world();
      int v = mpi::comm_rank(w);
      int sum = 0;
      mpi::allreduce(&v, &sum, 1, mpi::Datatype::kInt, mpi::Op::kSum, w);
    });
    EXPECT_EQ(r.num_tasks, 3);
    EXPECT_GT(r.makespan, 0);
  }
}

}  // namespace
}  // namespace impacc
