// Tests for the cost-model-backed performance lint (--perf): the static
// critical-path prediction (closed-form two-rank check, JSON/SARIF
// shape), the IMP030-IMP037 golden fixtures (each rule fires on its
// seeded-regression fixture and stays silent on the clean twin), the
// finding dedup, and the static-vs-measured comparison on the staged
// p2p and Fig. 14 Jacobi workloads (within the documented factor, see
// docs/LINT.md "Performance rules").
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi.h"
#include "core/runtime.h"
#include "impacc.h"
#include "trans/analysis/diagnostics.h"
#include "trans/analysis/lint.h"
#include "trans/analysis/perfmodel.h"

namespace impacc::trans::analysis {
namespace {

/// Documented error budget of the static prediction (docs/LINT.md).
constexpr double kComparisonFactor = 3.0;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(LINT_FIXTURE_DIR) + "/" + name);
}

LintOptions perf_opts(const std::string& system, int tpn, int ranks = 4,
                      int unroll = 4) {
  LintOptions o;
  o.perf = true;
  o.perf_system = system;
  o.perf_tasks_per_node = tpn;
  o.ranks = ranks;
  o.unroll = unroll;
  return o;
}

int count_code(const LintResult& r, const std::string& code) {
  int n = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

// --- closed-form prediction -------------------------------------------------

// Two ranks on separate PSG nodes, one host-to-host 8 KiB message. The
// replay charges exactly one MPI call overhead (both ranks post at the
// same clock) plus the monolithic p2p transfer price, so the makespan
// is closed-form in the cost model.
TEST(PerfModel, TwoRankPingPongIsClosedForm) {
  const std::string src = R"(
void pingpong(double* a) {
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  if (rank == 0) {
    MPI_Send(a, 1024, MPI_DOUBLE, 1, 3, MPI_COMM_WORLD);
  }
  if (rank == 1) {
    MPI_Recv(a, 1024, MPI_DOUBLE, 0, 3, MPI_COMM_WORLD, &st);
  }
}
)";
  const LintResult r = lint_source(src, perf_opts("psg", 1, /*ranks=*/2));
  ASSERT_TRUE(r.perf.ran);
  EXPECT_TRUE(r.perf.exact);
  EXPECT_EQ(r.perf.ranks, 2);
  EXPECT_EQ(r.perf.system, "psg");

  const PerfParams p = make_perf_params("psg", 1);
  const double expected =
      p.costs.mpi_call_overhead +
      p2p_transfer_seconds(p, 1024 * 8, /*src=*/0, /*dst=*/1,
                           /*dev_send=*/false, /*dev_recv=*/false,
                           p.chunk_bytes);
  EXPECT_NEAR(r.perf.makespan, expected, 1e-15 + 1e-12 * expected);
}

TEST(PerfModel, RanFalseWhenPerfOff) {
  const LintResult r = lint_source(fixture("imp030_blocking_pair.c"));
  EXPECT_FALSE(r.perf.ran);
  EXPECT_EQ(count_code(r, "IMP030"), 0);
}

// --- golden fixtures --------------------------------------------------------

struct PerfGoldenCase {
  const char* file;
  const char* code;   // nullptr = clean fixture, expects zero findings
  const char* system;
  int tpn;
};

class PerfGolden : public ::testing::TestWithParam<PerfGoldenCase> {};

TEST_P(PerfGolden, FiringFixtureProducesItsCodeCleanStaysSilent) {
  const PerfGoldenCase& c = GetParam();
  const LintResult r =
      lint_source(fixture(c.file), perf_opts(c.system, c.tpn));
  ASSERT_TRUE(r.perf.ran) << c.file;
  EXPECT_GT(r.perf.makespan, 0.0) << c.file;
  if (c.code == nullptr) {
    EXPECT_TRUE(r.diagnostics.empty())
        << c.file << " produced " << r.diagnostics.size() << " finding(s)";
    return;
  }
  ASSERT_GT(count_code(r, c.code), 0)
      << c.file << " did not produce " << c.code;
  for (const auto& d : r.diagnostics) {
    EXPECT_EQ(d.code, c.code) << c.file << " also produced " << d.code;
    EXPECT_EQ(d.severity, Severity::kWarning) << c.file;
    EXPECT_GT(d.seconds_saved, 0.0) << c.file;
    EXPECT_GT(d.line, 0) << c.file;
    EXPECT_FALSE(d.message.empty()) << c.file;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPerfRules, PerfGolden,
    ::testing::Values(
        PerfGoldenCase{"imp030_blocking_pair.c", "IMP030", "psg", 0},
        PerfGoldenCase{"clean_perf_overlap.c", nullptr, "psg", 0},
        PerfGoldenCase{"imp031_full_update.c", "IMP031", "psg", 0},
        PerfGoldenCase{"clean_update_subarray.c", nullptr, "psg", 0},
        PerfGoldenCase{"imp032_loop_copyin.c", "IMP032", "psg", 0},
        PerfGoldenCase{"clean_loop_copyin_needed.c", nullptr, "psg", 0},
        PerfGoldenCase{"imp033_p2p_allgather.c", "IMP033", "psg", 2},
        PerfGoldenCase{"clean_neighbor_ring.c", nullptr, "psg", 2},
        PerfGoldenCase{"imp034_flat_collective.c", "IMP034", "titan", 1},
        PerfGoldenCase{"clean_flat_small.c", nullptr, "titan", 1},
        PerfGoldenCase{"imp035_serialized_sends.c", "IMP035", "psg", 0},
        PerfGoldenCase{"clean_two_queues.c", nullptr, "psg", 0},
        PerfGoldenCase{"imp036_chunking_off.c", "IMP036", "titan", 1},
        PerfGoldenCase{"clean_chunked.c", nullptr, "titan", 1},
        PerfGoldenCase{"imp037_early_wait.c", "IMP037", "psg", 0},
        PerfGoldenCase{"clean_late_wait.c", nullptr, "psg", 0}));

// --- dedup ------------------------------------------------------------------

TEST(PerfDedup, IdenticalRankFindingsCollapseWithOccurrenceCount) {
  // Both even ranks produce the same IMP030 pair at the same site; the
  // report carries one finding per site with occurrences == 2.
  const LintResult r =
      lint_source(fixture("imp030_blocking_pair.c"), perf_opts("psg", 0));
  ASSERT_GT(count_code(r, "IMP030"), 0);
  for (const auto& d : r.diagnostics) {
    EXPECT_EQ(d.occurrences, 2) << "line " << d.line;
  }
  // No two surviving findings are identical.
  for (std::size_t i = 0; i + 1 < r.diagnostics.size(); ++i) {
    const auto& a = r.diagnostics[i];
    const auto& b = r.diagnostics[i + 1];
    EXPECT_FALSE(a.code == b.code && a.line == b.line &&
                 a.column == b.column && a.message == b.message)
        << "duplicate finding survived dedup at line " << a.line;
  }
}

// --- JSON / SARIF shape -----------------------------------------------------

FileDiagnostics lint_file_diags(const char* file, const LintOptions& o) {
  const LintResult r = lint_source(fixture(file), o);
  FileDiagnostics fd;
  fd.file = file;
  fd.diagnostics = r.diagnostics;
  fd.has_perf = r.perf.ran;
  fd.predicted_makespan = r.perf.makespan;
  fd.perf_exact = r.perf.exact;
  fd.perf_system = r.perf.system;
  fd.perf_ranks = r.perf.ranks;
  return fd;
}

TEST(PerfReport, JsonCarriesMakespanAndSavings) {
  const FileDiagnostics fd =
      lint_file_diags("imp034_flat_collective.c", perf_opts("titan", 1));
  ASSERT_TRUE(fd.has_perf);
  const std::string json = to_json({fd});
  EXPECT_NE(json.find("\"predicted_makespan\""), std::string::npos);
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"model\": \"titan\""), std::string::npos);
  EXPECT_NE(json.find("\"estimated_seconds_saved\""), std::string::npos);
}

TEST(PerfReport, SarifCarriesPropertiesBags) {
  const FileDiagnostics fd =
      lint_file_diags("imp034_flat_collective.c", perf_opts("titan", 1));
  ASSERT_TRUE(fd.has_perf);
  ASSERT_FALSE(fd.diagnostics.empty());
  const std::string sarif = to_sarif({fd});
  // Per-result property bag with the estimated saving, and the run-level
  // predictedMakespan summary.
  EXPECT_NE(sarif.find("\"estimatedSecondsSaved\""), std::string::npos);
  EXPECT_NE(sarif.find("\"predictedMakespan\""), std::string::npos);
  EXPECT_NE(sarif.find("\"properties\""), std::string::npos);
  // The rule id is present as a SARIF rule.
  EXPECT_NE(sarif.find("\"IMP034\""), std::string::npos);
}

TEST(PerfReport, NoPerfOutputIsUnchangedShape) {
  // Without --perf the emitters must not mention any perf key at all —
  // the byte-identity guarantee for flag-off runs.
  LintOptions o;
  const LintResult r = lint_source(fixture("imp001_double_copyin.c"), o);
  FileDiagnostics fd;
  fd.file = "imp001_double_copyin.c";
  fd.diagnostics = r.diagnostics;
  const std::string json = to_json({fd});
  EXPECT_EQ(json.find("predicted_makespan"), std::string::npos);
  EXPECT_EQ(json.find("estimated_seconds_saved"), std::string::npos);
  const std::string sarif = to_sarif({fd});
  EXPECT_EQ(sarif.find("predictedMakespan"), std::string::npos);
  EXPECT_EQ(sarif.find("estimatedSecondsSaved"), std::string::npos);
}

// --- static vs measured -----------------------------------------------------

double comparison_ratio(double predicted, double measured) {
  EXPECT_GT(predicted, 0.0);
  EXPECT_GT(measured, 0.0);
  return std::max(predicted / measured, measured / predicted);
}

/// The impacc-smoke workload: 8 x 8 MiB staged device-to-device
/// messages across two Titan nodes with GPUDirect off — the same
/// program tests/lint_fixtures/perf_staged_p2p.c spells in source form.
TEST(PerfCompare, StagedP2PWithinDocumentedFactor) {
  core::LaunchOptions o;
  o.cluster = sim::make_system("titan", 2);
  o.mode = core::ExecMode::kModelOnly;
  o.scheduler_workers = 1;
  o.features.gpudirect_rdma = false;
  const LaunchResult measured = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    constexpr std::uint64_t kBytes = 8u << 20;
    auto* buf = static_cast<char*>(node_malloc(kBytes));
    acc::copyin(buf, kBytes);
    for (int m = 0; m < 8; ++m) {
      if (r == 0) {
        acc::mpi({.send_device = true});
        mpi::send(buf, kBytes, mpi::Datatype::kByte, 1, m, w);
      } else if (r == 1) {
        acc::mpi({.recv_device = true});
        mpi::recv(buf, kBytes, mpi::Datatype::kByte, 0, m, w);
      }
    }
    acc::del(buf);
    node_free(buf);
  });

  const LintResult r = lint_source(
      fixture("perf_staged_p2p.c"),
      perf_opts("titan", 1, /*ranks=*/2, /*unroll=*/8));
  ASSERT_TRUE(r.perf.ran);
  EXPECT_TRUE(r.perf.exact);
  EXPECT_LE(comparison_ratio(r.perf.makespan, measured.makespan),
            kComparisonFactor)
      << "predicted " << r.perf.makespan << " s vs measured "
      << measured.makespan << " s";
}

/// The Fig. 14 configuration: 8-device Jacobi on one PSG node, n = 2048,
/// 3 sweeps — mirrored by tests/lint_fixtures/perf_jacobi.c.
TEST(PerfCompare, Fig14JacobiWithinDocumentedFactor) {
  core::LaunchOptions o;
  o.cluster = sim::make_system("psg", 1);
  o.mode = core::ExecMode::kModelOnly;
  o.scheduler_workers = 1;
  apps::JacobiConfig cfg;
  cfg.n = 2048;
  cfg.iterations = 3;
  const apps::JacobiResult measured = apps::run_jacobi(o, cfg);

  const LintResult r = lint_source(
      fixture("perf_jacobi.c"),
      perf_opts("psg", 8, /*ranks=*/8));
  ASSERT_TRUE(r.perf.ran);
  EXPECT_LE(
      comparison_ratio(r.perf.makespan, measured.launch.makespan),
      kComparisonFactor)
      << "predicted " << r.perf.makespan << " s vs measured "
      << measured.launch.makespan << " s";
}

}  // namespace
}  // namespace impacc::trans::analysis
