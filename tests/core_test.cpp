// Tests for the IMPACC core runtime: automatic task-device mapping
// (Fig. 2), NUMA pinning, the unified node VAS, node heap aliasing
// (section 3.8), unified MPI routines and activity queues, ablations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/mapping.h"
#include "core/pinning.h"
#include "core/runtime.h"
#include "dev/copyengine.h"
#include "impacc.h"
#include "ult/sync.h"

namespace impacc::core {
namespace {

// --- Automatic task-device mapping (Fig. 2) ---------------------------------------

sim::ClusterDesc hetero() { return sim::make_heterogeneous_demo(); }

TEST(Mapping, DefaultSelectsAllDiscreteAcceleratorsPlusCpuFallback) {
  // Fig. 2 (a): default -> 2 GPU tasks on node 0, 3 tasks on node 1
  // (GPU + 2 MICs), and the CPU-only node 2 still hosts tasks.
  const auto p = map_tasks(hetero(), kAccDeviceDefault);
  ASSERT_EQ(p.size(), 6u);  // 2 GPUs + (GPU + 2 MICs) + node 2's CPU device
  EXPECT_EQ(p[0].node, 0);
  EXPECT_EQ(p[1].node, 0);
  EXPECT_EQ(p[2].node, 1);
  EXPECT_EQ(p[5].node, 2);
  EXPECT_EQ(p[5].device.kind, sim::DeviceKind::kCpu);
  // Ranks are dense per node (Fig. 2 numbering).
  EXPECT_EQ(p[2].local_index, 0);
  EXPECT_EQ(p[4].local_index, 2);
}

TEST(Mapping, NvidiaOnly) {
  // Fig. 2 (b): only the GPUs; node 2 hosts no task.
  const auto p = map_tasks(hetero(), kAccDeviceNvidia);
  ASSERT_EQ(p.size(), 3u);
  for (const auto& pl : p) {
    EXPECT_EQ(pl.device.kind, sim::DeviceKind::kNvidiaGpu);
  }
  EXPECT_EQ(p[2].node, 1);
}

TEST(Mapping, CpuOnly) {
  // Fig. 2 (c): CPU-cores accelerators on every node — one per socket on
  // nodes without an explicit CPU device, the declared one on node 2.
  const auto p = map_tasks(hetero(), kAccDeviceCpu);
  ASSERT_EQ(p.size(), 5u);  // 2 + 2 synthesized + 1 explicit
  for (const auto& pl : p) {
    EXPECT_EQ(pl.device.kind, sim::DeviceKind::kCpu);
    EXPECT_EQ(pl.device.backend, sim::BackendKind::kHostShared);
  }
  EXPECT_TRUE(p[0].synthesized_cpu);
  EXPECT_FALSE(p[4].synthesized_cpu);  // node 2's declared device
}

TEST(Mapping, XeonPhiOnly) {
  // Fig. 2 (d).
  const auto p = map_tasks(hetero(), kAccDeviceXeonPhi);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].node, 1);
  EXPECT_EQ(p[1].node, 1);
}

TEST(Mapping, NvidiaOrXeonPhi) {
  // Fig. 2 (e): nvidia | xeonphi.
  const auto p = map_tasks(hetero(), kAccDeviceNvidia | kAccDeviceXeonPhi);
  ASSERT_EQ(p.size(), 5u);
}

TEST(Mapping, MaskParsing) {
  EXPECT_EQ(parse_device_type_mask("nvidia"), kAccDeviceNvidia);
  EXPECT_EQ(parse_device_type_mask("acc_device_xeonphi"), kAccDeviceXeonPhi);
  EXPECT_EQ(parse_device_type_mask("nvidia|xeonphi"),
            kAccDeviceNvidia | kAccDeviceXeonPhi);
  EXPECT_EQ(parse_device_type_mask("default"), kAccDeviceDefault);
  EXPECT_EQ(parse_device_type_mask("cpu|nvidia"),
            kAccDeviceCpu | kAccDeviceNvidia);
}

TEST(Mapping, EnvironmentVariableSelectsDevices) {
  // IMPACC_ACC_DEVICE_TYPE drives the mapping (section 3.2).
  ::setenv("IMPACC_ACC_DEVICE_TYPE", "xeonphi", 1);
  LaunchOptions o;
  o.cluster = hetero();
  o.scheduler_workers = 1;
  const auto result = launch(o, [] {
    EXPECT_EQ(acc::get_device_type(), sim::DeviceKind::kXeonPhi);
  });
  ::unsetenv("IMPACC_ACC_DEVICE_TYPE");
  EXPECT_EQ(result.num_tasks, 2);
}

// --- NUMA pinning (section 3.3) ------------------------------------------------------

TEST(Pinning, SysfsTableListsEveryDeviceWithItsSocket) {
  const auto node = sim::make_psg().nodes[0];
  const auto lines = sysfs_pci_affinity(node);
  ASSERT_EQ(lines.size(), 8u);
  // Devices 0-3 on socket 0, 4-7 on socket 1.
  EXPECT_NE(lines[0].find("cpulistaffinity 0"), std::string::npos);
  EXPECT_NE(lines[7].find("cpulistaffinity 1"), std::string::npos);
}

TEST(Pinning, NumaFriendlyPicksTheDeviceSocket) {
  const auto node = sim::make_psg().nodes[0];
  for (std::size_t d = 0; d < node.devices.size(); ++d) {
    const int s = choose_socket(node, node.devices[d], true,
                                static_cast<int>(d));
    EXPECT_EQ(s, node.devices[d].socket);
    EXPECT_TRUE(socket_is_near(node, node.devices[d], s));
  }
}

TEST(Pinning, UnpinnedRoundRobinStrandsHalfTheTasks) {
  const auto node = sim::make_psg().nodes[0];
  int far = 0;
  for (std::size_t d = 0; d < node.devices.size(); ++d) {
    const int s = choose_socket(node, node.devices[d], false,
                                static_cast<int>(d));
    if (!socket_is_near(node, node.devices[d], s)) ++far;
  }
  EXPECT_EQ(far, 4);  // half of 8 land on the wrong socket
}

TEST(Pinning, SingleSocketIsAlwaysNear) {
  const auto node = sim::make_titan(1).nodes[0];
  EXPECT_TRUE(socket_is_near(node, node.devices[0], 0));
  EXPECT_EQ(choose_socket(node, node.devices[0], false, 3), 0);
}

// --- Unified node VAS + unified MPI routines -----------------------------------------

LaunchOptions psg_opts(Framework fw = Framework::kImpacc) {
  LaunchOptions o;
  o.cluster = sim::make_psg();
  o.framework = fw;
  o.scheduler_workers = 1;
  return o;
}

TEST(UnifiedComm, RawDevicePointersAreDetectedByAddress) {
  // Section 3.5, first method: MPI_Send(acc_deviceptr(x), ...).
  launch(psg_opts(), [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<double> host(64, r == 0 ? 1.25 : 0.0);
    acc::copyin(host.data(), 512);
    void* dev = acc::deviceptr(host.data());
    if (r == 0) {
      mpi::send(dev, 64, mpi::Datatype::kDouble, 1, 4, w);
    } else if (r == 1) {
      mpi::recv(dev, 64, mpi::Datatype::kDouble, 0, 4, w);
      acc::update_self(host.data(), 512);
      EXPECT_DOUBLE_EQ(host[10], 1.25);
    }
    acc::del(host.data());
  });
}

TEST(UnifiedComm, DirectiveResolvesDevicePointerFromHostAddress) {
  // Section 3.5, portable method: #pragma acc mpi sendbuf(device).
  const auto result = launch(psg_opts(), [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<int> host(256, r);
    acc::copyin(host.data(), 1024);
    if (r == 0) {
      acc::mpi({.send_device = true});
      mpi::send(host.data(), 256, mpi::Datatype::kInt, 1, 6, w);
    } else if (r == 1) {
      acc::mpi({.recv_device = true});
      mpi::recv(host.data(), 256, mpi::Datatype::kInt, 0, 6, w);
      acc::update_self(host.data(), 1024);
      EXPECT_EQ(host[100], 0);
    }
    acc::del(host.data());
  });
  // Devices 0 and 1 share a PCIe root complex: the fused pair must have
  // used the direct DtoD path (Fig. 6 right).
  const auto& stats = result.task_stats[1];
  EXPECT_EQ(stats.copy_count[static_cast<int>(dev::CopyPathKind::kDevToDevPeer)],
            1u);
}

TEST(UnifiedComm, CrossRootComplexDeviceToDeviceStages) {
  const auto result = launch(psg_opts(), [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<int> host(256, r);
    acc::copyin(host.data(), 1024);
    if (r == 0) {  // device 0 (root complex 0) -> device 5 (root complex 1)
      acc::mpi({.send_device = true});
      mpi::send(host.data(), 256, mpi::Datatype::kInt, 5, 6, w);
    } else if (r == 5) {
      acc::mpi({.recv_device = true});
      mpi::recv(host.data(), 256, mpi::Datatype::kInt, 0, 6, w);
    }
    acc::del(host.data());
  });
  const auto& stats = result.task_stats[5];
  EXPECT_EQ(
      stats.copy_count[static_cast<int>(dev::CopyPathKind::kDevToDevStaged)],
      1u);
}

TEST(UnifiedComm, BaselineFrameworkStagesThroughIpc) {
  const auto result = launch(psg_opts(Framework::kMpiOpenacc), [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<int> buf(8192, r);  // above eager threshold
    if (r == 0) {
      mpi::send(buf.data(), 8192, mpi::Datatype::kInt, 1, 2, w);
    } else if (r == 1) {
      mpi::recv(buf.data(), 8192, mpi::Datatype::kInt, 0, 2, w);
      EXPECT_EQ(buf[17], 0);
    }
  });
  const auto& stats = result.task_stats[1];
  EXPECT_EQ(stats.copy_count[static_cast<int>(dev::CopyPathKind::kBaselineIpc)],
            1u);
}

TEST(UnifiedComm, FusionAblationFallsBackToIpcPath) {
  auto o = psg_opts();
  o.features.message_fusion = false;
  const auto result = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<int> buf(8192, r);
    if (r == 0) {
      mpi::send(buf.data(), 8192, mpi::Datatype::kInt, 1, 2, w);
    } else if (r == 1) {
      mpi::recv(buf.data(), 8192, mpi::Datatype::kInt, 0, 2, w);
    }
  });
  const auto& stats = result.task_stats[1];
  EXPECT_EQ(stats.copy_count[static_cast<int>(dev::CopyPathKind::kBaselineIpc)],
            1u);
}

// --- Node heap aliasing (section 3.8) ---------------------------------------------

NodeHeap make_heap() { return NodeHeap(1 << 20, /*functional=*/true); }

TEST(NodeHeap, AllocFreeRefcounts) {
  NodeHeap heap = make_heap();
  void* p = heap.alloc(100);
  EXPECT_EQ(heap.refcount_of(p), 1);
  EXPECT_EQ(heap.block_count(), 1u);
  // free() looks the block up by containment, not exact address.
  heap.free(static_cast<char*>(p) + 50);
  EXPECT_EQ(heap.block_count(), 0u);
}

TEST(NodeHeap, AliasRewritesPointerAndTransfersReference) {
  // The Fig. 7 scenario: src of 100 doubles, dst of 10, recv at offset.
  NodeHeap heap = make_heap();
  auto* src = static_cast<double*>(heap.alloc(800));
  for (int i = 0; i < 100; ++i) src[i] = i;
  auto* dst = static_cast<double*>(heap.alloc(80));
  void* recv_ptr = dst;
  ASSERT_TRUE(heap.alias(&recv_ptr, dst, 80, src + 30));
  EXPECT_EQ(recv_ptr, src + 30);
  EXPECT_EQ(heap.block_count(), 1u);       // dst block released
  EXPECT_EQ(heap.refcount_of(src), 2);     // src gained a reference
  EXPECT_DOUBLE_EQ(static_cast<double*>(recv_ptr)[0], 30.0);
  // Receiver frees its aliased pointer: src must survive.
  heap.free(recv_ptr);
  EXPECT_EQ(heap.refcount_of(src), 1);
  heap.free(src);
  EXPECT_EQ(heap.block_count(), 0u);
}

TEST(NodeHeap, AliasRejectsPartialOverwrite) {
  // Requirement 5: the receive must fully overwrite the receive buffer.
  NodeHeap heap = make_heap();
  void* src = heap.alloc(800);
  void* dst = heap.alloc(80);
  void* recv_ptr = dst;
  EXPECT_FALSE(heap.alias(&recv_ptr, dst, 40, src));  // only half of dst
  EXPECT_EQ(recv_ptr, dst);
  EXPECT_EQ(heap.block_count(), 2u);
  heap.free(src);
  heap.free(dst);
}

TEST(NodeHeap, AliasRejectsNonHeapBuffers) {
  // Requirement 2: both buffers must live in the host heap.
  NodeHeap heap = make_heap();
  void* dst = heap.alloc(80);
  double stack_buf[10];
  void* recv_ptr = dst;
  EXPECT_FALSE(heap.alias(&recv_ptr, dst, 80, stack_buf));
  heap.free(dst);
}

TEST(NodeHeap, AliasRejectsInteriorReceivePointer) {
  NodeHeap heap = make_heap();
  void* src = heap.alloc(800);
  auto* dst = static_cast<char*>(heap.alloc(160));
  void* recv_ptr = dst + 16;  // not the block start: not a whole block
  EXPECT_FALSE(heap.alias(&recv_ptr, dst + 16, 80, src));
  heap.free(src);
  heap.free(dst);
}

TEST(HeapAliasing, EndToEndRequiresBothReadonlyHints) {
  // Without the recv-side readonly+pointer hint the runtime must copy.
  const auto result = launch(psg_opts(), [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    if (r == 0) {
      auto* src = static_cast<double*>(node_malloc(800));
      for (int i = 0; i < 100; ++i) src[i] = i;
      acc::mpi({.send_readonly = true});
      mpi::send(src, 100, mpi::Datatype::kDouble, 1, 1, w);
      mpi::barrier(w);
      node_free(src);
    } else {
      auto* dst = static_cast<double*>(node_malloc(800));
      if (r == 1) {
        mpi::recv(dst, 100, mpi::Datatype::kDouble, 0, 1, w);  // no hint
        EXPECT_DOUBLE_EQ(dst[99], 99.0);
      }
      mpi::barrier(w);
      node_free(dst);
    }
  });
  EXPECT_EQ(result.total.heap_aliases, 0u);
}

TEST(HeapAliasing, EndToEndAliasesAndSharesData) {
  const auto result = launch(psg_opts(), [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    if (r == 0) {
      auto* src = static_cast<double*>(node_malloc(800));
      for (int i = 0; i < 100; ++i) src[i] = i * 2.0;
      acc::mpi({.send_readonly = true});
      mpi::send(src, 100, mpi::Datatype::kDouble, 1, 1, w);
      mpi::barrier(w);
      node_free(src);
    } else {
      auto* dst = static_cast<double*>(node_malloc(800));
      if (r == 1) {
        acc::mpi({.recv_readonly = true,
                  .recv_ptr_addr = reinterpret_cast<void**>(&dst)});
        mpi::recv(dst, 100, mpi::Datatype::kDouble, 0, 1, w);
        EXPECT_DOUBLE_EQ(dst[50], 100.0);  // reading the sender's block
      }
      mpi::barrier(w);
      node_free(dst);
    }
  });
  EXPECT_EQ(result.total.heap_aliases, 1u);
}

TEST(HeapAliasing, AblationDisablesSharing) {
  auto o = psg_opts();
  o.features.heap_aliasing = false;
  const auto result = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    if (r == 0) {
      auto* src = static_cast<double*>(node_malloc(80));
      for (int i = 0; i < 10; ++i) src[i] = i;
      acc::mpi({.send_readonly = true});
      mpi::send(src, 10, mpi::Datatype::kDouble, 1, 1, w);
      mpi::barrier(w);
      node_free(src);
    } else {
      auto* dst = static_cast<double*>(node_malloc(80));
      if (r == 1) {
        acc::mpi({.recv_readonly = true,
                  .recv_ptr_addr = reinterpret_cast<void**>(&dst)});
        mpi::recv(dst, 10, mpi::Datatype::kDouble, 0, 1, w);
        EXPECT_DOUBLE_EQ(dst[9], 9.0);  // copied, not aliased
      }
      mpi::barrier(w);
      node_free(dst);
    }
  });
  EXPECT_EQ(result.total.heap_aliases, 0u);
}

// --- Unified activity queue (section 3.6) -------------------------------------------

TEST(UnifiedQueue, Fig4cPatternRunsWithoutHostSync) {
  // kernel -> isend -> irecv -> kernel, all on queue 1, both tasks.
  launch(psg_opts(), [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    if (r > 1) return;
    const int peer = 1 - r;
    const long n = 4096;  // rendezvous-sized
    std::vector<double> buf0(static_cast<std::size_t>(n));
    std::vector<double> buf1(static_cast<std::size_t>(n));
    acc::copyin(buf0.data(), static_cast<std::uint64_t>(n) * 8);
    acc::copyin(buf1.data(), static_cast<std::uint64_t>(n) * 8);
    auto* d0 = static_cast<double*>(acc::deviceptr(buf0.data()));
    auto* d1 = static_cast<double*>(acc::deviceptr(buf1.data()));
    acc::parallel_loop(
        "produce", n, [d0, r](long i) { d0[i] = r * 1000.0 + i; },
        {static_cast<double>(n), static_cast<double>(n) * 8}, 1);
    acc::mpi({.send_device = true, .async = 1});
    mpi::isend(buf0.data(), static_cast<int>(n), mpi::Datatype::kDouble, peer,
               5, w);
    acc::mpi({.recv_device = true, .async = 1});
    mpi::irecv(buf1.data(), static_cast<int>(n), mpi::Datatype::kDouble, peer,
               5, w);
    acc::parallel_loop(
        "consume", n, [d1](long i) { d1[i] += 0.5; },
        {static_cast<double>(n), static_cast<double>(n) * 8}, 1);
    acc::wait(1);
    acc::update_self(buf1.data(), static_cast<std::uint64_t>(n) * 8);
    EXPECT_DOUBLE_EQ(buf1[7], peer * 1000.0 + 7 + 0.5);
    acc::del(buf0.data());
    acc::del(buf1.data());
  });
}

TEST(UnifiedQueue, AblationIgnoresAsyncClause) {
  // With the unified queue disabled, the async clause on the directive is
  // ignored and the call behaves like a plain host-path isend/irecv.
  auto o = psg_opts();
  o.features.unified_queue = false;
  launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    if (r > 1) return;
    const int peer = 1 - r;
    int out = r;
    int in = -1;
    acc::mpi({.async = 1});
    mpi::Request sr = mpi::isend(&out, 1, mpi::Datatype::kInt, peer, 3, w);
    acc::mpi({.async = 1});
    mpi::Request rr = mpi::irecv(&in, 1, mpi::Datatype::kInt, peer, 3, w);
    mpi::wait(sr);
    mpi::wait(rr);
    EXPECT_EQ(in, peer);
  });
}

// --- Makespan / stats sanity ---------------------------------------------------------

TEST(Runtime, MakespanIsMaxTaskTime) {
  const auto result = launch(psg_opts(), [] {
    acc::parallel_loop("k", 10, [](long) {}, {1e9, 1e3});  // ~0.7 ms on GK210
  });
  EXPECT_EQ(result.num_tasks, 8);
  double max_t = 0;
  for (double t : result.task_times) max_t = std::max(max_t, t);
  EXPECT_DOUBLE_EQ(result.makespan, max_t);
  EXPECT_GT(result.makespan, 1e-9 / 1.45e12);
  EXPECT_GT(result.total.kernel_busy, 0.0);
}

TEST(Runtime, ModelOnlyModeProducesSameTimingWithoutTouchingData) {
  auto fo = psg_opts();
  auto mo = psg_opts();
  mo.mode = ExecMode::kModelOnly;
  auto body = [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    auto* buf = static_cast<double*>(node_malloc(1 << 20));
    acc::copyin(buf, 1 << 20);
    acc::parallel_loop("k", 1, [](long) {}, {1e8, 1e6});
    if (r == 0) {
      mpi::send(buf, 1 << 17, mpi::Datatype::kDouble, 1, 1, w);
    } else if (r == 1) {
      mpi::recv(buf, 1 << 17, mpi::Datatype::kDouble, 0, 1, w);
    }
    acc::del(buf);
    mpi::barrier(w);
    node_free(buf);
  };
  const auto rf = launch(fo, body);
  const auto rm = launch(mo, body);
  EXPECT_NEAR(rf.makespan, rm.makespan, 1e-12);
}

}  // namespace
}  // namespace impacc::core

namespace impacc::core {
namespace {

// --- Pre-pinned staging buffer pool (section 3.7) ----------------------------------

TEST(PinnedPool, ReusesBuffersBestFit) {
  PinnedPool pool(/*functional=*/true);
  auto a = pool.acquire(1000);
  auto b = pool.acquire(4000);
  EXPECT_NE(a.ptr, nullptr);
  EXPECT_NE(a.ptr, b.ptr);
  pool.release(a);
  pool.release(b);
  // A 900-byte request reuses the 1000-byte buffer (smallest fit), not
  // the 4000-byte one.
  auto c = pool.acquire(900);
  EXPECT_EQ(c.ptr, a.ptr);
  EXPECT_EQ(c.bytes, 1000u);
  // A 2000-byte request reuses the 4000-byte buffer.
  auto d = pool.acquire(2000);
  EXPECT_EQ(d.ptr, b.ptr);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 4u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.buffers_created, 2u);
  EXPECT_EQ(stats.bytes_allocated, 5000u);
  pool.release(c);
  pool.release(d);
}

TEST(PinnedPool, GrowsOnlyOnMiss) {
  PinnedPool pool(/*functional=*/false);  // model-only accounting
  for (int round = 0; round < 10; ++round) {
    auto b = pool.acquire(8192);
    pool.release(b);
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 10u);
  EXPECT_EQ(stats.buffers_created, 1u);  // steady state: one pinned buffer
  EXPECT_EQ(stats.hits, 9u);
  EXPECT_EQ(stats.bytes_allocated, 8192u);
}

TEST(PinnedPool, OversizeFreeBuffersAreNotReused) {
  PinnedPool pool(/*functional=*/false);
  auto big = pool.acquire(1 << 20);
  pool.release(big);
  // The only free buffer is 256x the request; handing it out would waste
  // pinned memory — allocate exact instead.
  auto small = pool.acquire(4096);
  EXPECT_NE(small.ptr, big.ptr);
  EXPECT_EQ(small.bytes, 4096u);
  auto s = pool.stats();
  EXPECT_EQ(s.oversize_rejects, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.buffers_created, 2u);
  // Up to 2x the request is still acceptable reuse.
  pool.release(small);
  auto half = pool.acquire(2048);
  EXPECT_EQ(half.ptr, small.ptr);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().oversize_rejects, 1u);
}

TEST(PinnedPool, TrimEvictsLargestFreeBuffersPastTheCap) {
  PinnedPool pool(/*functional=*/true);
  pool.set_retain_limit(10000);
  auto a = pool.acquire(6000);
  auto b = pool.acquire(4000);
  auto c = pool.acquire(3000);
  pool.release(c);
  pool.release(b);
  EXPECT_EQ(pool.stats().trims, 0u);
  EXPECT_EQ(pool.stats().bytes_retained, 7000u);
  // 13000 retained exceeds the cap: the largest buffer (a) goes first and
  // one eviction is enough.
  pool.release(a);
  auto s = pool.stats();
  EXPECT_EQ(s.trims, 1u);
  EXPECT_EQ(s.bytes_trimmed, 6000u);
  EXPECT_EQ(s.bytes_retained, 7000u);
  // The survivors are still reusable.
  auto b2 = pool.acquire(4000);
  EXPECT_EQ(b2.ptr, b.ptr);
  // Lowering the cap trims immediately.
  pool.set_retain_limit(1000);
  EXPECT_EQ(pool.stats().bytes_retained, 0u);
  EXPECT_EQ(pool.stats().trims, 2u);
  EXPECT_EQ(pool.stats().bytes_trimmed, 9000u);
  pool.release(b2);  // 4000 > cap: unpinned right away, not leaked
  EXPECT_EQ(pool.stats().bytes_retained, 0u);
}

TEST(PinnedPool, InternodeDeviceStagingUsesThePool) {
  // Without RDMA, every internode device send stages through the pool;
  // repeated sends recycle one buffer.
  LaunchOptions o;
  o.cluster = sim::make_titan(2);
  o.features.gpudirect_rdma = false;  // force staging
  o.scheduler_workers = 1;
  Runtime rt(o);
  rt.run([] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<double> buf(4096, 1.0);
    acc::copyin(buf.data(), 32768);
    for (int m = 0; m < 5; ++m) {
      if (r == 0) {
        acc::mpi({.send_device = true});
        mpi::send(buf.data(), 4096, mpi::Datatype::kDouble, 1, m, w);
      } else {
        mpi::recv(buf.data(), 4096, mpi::Datatype::kDouble, 0, m, w);
      }
    }
    acc::del(buf.data());
  });
  const auto stats = rt.node(0).pinned.stats();
  EXPECT_EQ(stats.acquires, 5u);
  EXPECT_EQ(stats.buffers_created, 1u);
  EXPECT_EQ(stats.hits, 4u);
}

// --- Chunked internode pipeline (section 3.5) --------------------------------------

TEST(ChunkPipeline, StagingMemoryPeaksAtTwoChunks) {
  // A chunked device send double-buffers through the pool: each chunk's
  // bounce buffer is released once the next one is in hand, so an 8 MiB
  // message pins 2 MiB of staging memory, not 8.
  LaunchOptions o;
  o.cluster = sim::make_titan(2);
  o.features.gpudirect_rdma = false;  // force staging
  o.chunk_bytes = 1 << 20;
  o.scheduler_workers = 1;
  Runtime rt(o);
  const std::uint64_t bytes = 8ull << 20;
  rt.run([bytes] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    auto* buf = static_cast<char*>(node_malloc(bytes));
    acc::copyin(buf, bytes);
    if (r == 0) {
      acc::mpi({.send_device = true});
      mpi::send(buf, static_cast<int>(bytes), mpi::Datatype::kByte, 1, 1, w);
    } else {
      mpi::recv(buf, static_cast<int>(bytes), mpi::Datatype::kByte, 0, 1, w);
    }
    acc::del(buf);
    node_free(buf);
  });
  const auto stats = rt.node(0).pinned.stats();
  EXPECT_EQ(stats.acquires, 8u);          // one per chunk
  EXPECT_EQ(stats.buffers_created, 2u);   // double buffering
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.bytes_allocated, 2ull << 20);
}

TEST(ChunkPipeline, ChunkedMsgStatAndFlagGate) {
  auto run = [](bool enabled) {
    LaunchOptions o;
    o.cluster = sim::make_titan(2);
    o.mode = ExecMode::kModelOnly;
    o.features.gpudirect_rdma = false;
    o.features.chunk_pipeline = enabled;
    o.scheduler_workers = 1;
    return launch(o, [] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      auto* buf = static_cast<char*>(node_malloc(4 << 20));
      acc::copyin(buf, 4 << 20);
      if (r == 0) {
        acc::mpi({.send_device = true});
        mpi::send(buf, 4 << 20, mpi::Datatype::kByte, 1, 1, w);
      } else {
        acc::mpi({.recv_device = true});
        mpi::recv(buf, 4 << 20, mpi::Datatype::kByte, 0, 1, w);
      }
      acc::del(buf);
      node_free(buf);
    });
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_EQ(on.total.chunked_msgs, 1u);
  EXPECT_EQ(off.total.chunked_msgs, 0u);
  EXPECT_LT(on.makespan, off.makespan);  // the pipeline overlaps the stages
}

namespace {
/// Functional internode device-to-device transfer of a patterned buffer;
/// returns the bytes the receiver ended up with.
std::vector<unsigned char> d2d_transfer_result(bool chunk_pipeline,
                                               std::uint64_t chunk_bytes,
                                               std::uint64_t bytes) {
  std::vector<unsigned char> received(bytes, 0);
  LaunchOptions o;
  o.cluster = sim::make_titan(2);
  o.features.gpudirect_rdma = false;
  o.features.chunk_pipeline = chunk_pipeline;
  o.chunk_bytes = chunk_bytes;
  o.scheduler_workers = 1;
  launch(o, [bytes, &received] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    auto* buf = static_cast<unsigned char*>(node_malloc(bytes));
    if (r == 0) {
      for (std::uint64_t i = 0; i < bytes; ++i) {
        buf[i] = static_cast<unsigned char>((i * 131) ^ (i >> 8));
      }
      acc::copyin(buf, bytes);
      acc::mpi({.send_device = true});
      mpi::send(buf, static_cast<int>(bytes), mpi::Datatype::kByte, 1, 1, w);
      acc::del(buf);
    } else {
      acc::create(buf, bytes);
      acc::mpi({.recv_device = true});
      mpi::recv(buf, static_cast<int>(bytes), mpi::Datatype::kByte, 0, 1, w);
      acc::update_self(buf, bytes);
      std::copy(buf, buf + bytes, received.begin());
      acc::del(buf);
    }
    node_free(buf);
  });
  return received;
}
}  // namespace

TEST(ChunkPipeline, ChunkedTransferIsChecksumIdenticalToMonolithic) {
  // Odd size: 3 MiB + 12345 exercises the non-divisible tail chunk.
  const std::uint64_t bytes = (3ull << 20) + 12345;
  const auto monolithic = d2d_transfer_result(false, 1 << 20, bytes);
  const auto chunked = d2d_transfer_result(true, 256 << 10, bytes);
  ASSERT_EQ(monolithic.size(), chunked.size());
  EXPECT_TRUE(monolithic == chunked);
  // And the pattern actually made it across (not two all-zero buffers).
  EXPECT_EQ(chunked[12345], static_cast<unsigned char>((12345 * 131) ^ 48));
}

TEST(ChunkPipeline, DerivedDatatypeUnpackMatchesAcrossChunkSettings) {
  // Derived datatypes travel packed on host buffers; the chunk-eligible
  // marking must not disturb the receiver's strided unpack.
  auto run = [](bool enabled) {
    std::vector<double> received;
    LaunchOptions o;
    o.cluster = sim::make_titan(2);
    o.features.chunk_pipeline = enabled;
    o.chunk_bytes = 64 << 10;
    o.scheduler_workers = 1;
    launch(o, [&received] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      constexpr int kRows = 1 << 14;  // column payload 128 KiB > chunk
      constexpr int kCols = 4;
      const mpi::Datatype col =
          mpi::type_vector(kRows, 1, kCols, mpi::Datatype::kDouble);
      if (r == 0) {
        std::vector<double> m(static_cast<std::size_t>(kRows) * kCols);
        for (std::size_t i = 0; i < m.size(); ++i) {
          m[i] = static_cast<double>(i) * 0.5;
        }
        mpi::send(&m[1], 1, col, 1, 7, w);  // column 1
      } else if (r == 1) {
        std::vector<double> m(static_cast<std::size_t>(kRows) * kCols, -1.0);
        mpi::recv(&m[2], 1, col, 0, 7, w);  // into column 2
        received = m;
      }
    });
    return received;
  };
  const auto mono = run(false);
  const auto chunked = run(true);
  ASSERT_EQ(mono.size(), chunked.size());
  EXPECT_TRUE(mono == chunked);
  // Spot-check the unpack itself: column 2 holds column 1's data, the
  // other columns stayed -1.
  EXPECT_DOUBLE_EQ(chunked[5 * 4 + 2], (5 * 4 + 1) * 0.5);
  EXPECT_DOUBLE_EQ(chunked[5 * 4 + 3], -1.0);
}

}  // namespace
}  // namespace impacc::core
