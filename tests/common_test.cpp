// Unit tests for src/common: MPSC queue, math helpers, NAS RNG, checksums.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/math_utils.h"
#include "common/mpsc_queue.h"
#include "common/nas_rng.h"

namespace impacc {

// Test-only backdoor (befriended by MpscQueue): performs the two halves of
// push() separately, replicating a producer preempted between its head
// exchange and its next-pointer store — the "in-flight push" window the
// consumer-side comments promise to handle.
struct MpscQueueTestPeer {
  /// First half of push(): publish the node at the head WITHOUT linking it.
  /// Returns the previous head; the chain stays disconnected until
  /// finish_push() stores the link.
  static MpscNode* begin_push(MpscQueue& q, MpscNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    return q.head_.exchange(node, std::memory_order_acq_rel);
  }

  /// Second half of push(): make the link visible.
  static void finish_push(MpscNode* prev, MpscNode* node) {
    prev->next.store(node, std::memory_order_release);
  }
};

namespace {

// --- math_utils --------------------------------------------------------------

TEST(MathUtils, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
}

TEST(MathUtils, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(MathUtils, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(MathUtils, CubeRoot) {
  EXPECT_EQ(icbrt(1), 1);
  EXPECT_EQ(icbrt(8), 2);
  EXPECT_EQ(icbrt(27), 3);
  EXPECT_EQ(icbrt(8000), 20);
  EXPECT_TRUE(is_perfect_cube(3375));
  EXPECT_FALSE(is_perfect_cube(3374));
}

TEST(MathUtils, ChunkBeginPartitionsExactly) {
  // Chunks cover [0, total) without gaps and differ in size by at most 1.
  for (int total : {1, 7, 64, 100}) {
    for (int parts : {1, 3, 7, 8}) {
      EXPECT_EQ(chunk_begin(total, parts, 0), 0);
      EXPECT_EQ(chunk_begin(total, parts, parts), total);
      long min_size = total;
      long max_size = 0;
      for (int i = 0; i < parts; ++i) {
        const long size =
            chunk_begin(total, parts, i + 1) - chunk_begin(total, parts, i);
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
      }
      EXPECT_LE(max_size - min_size, 1);
    }
  }
}

// --- MPSC queue ---------------------------------------------------------------

struct TestNode : MpscNode {
  int producer = 0;
  int seq = 0;
};

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue q;
  std::deque<TestNode> nodes(100);
  for (int i = 0; i < 100; ++i) {
    nodes[static_cast<std::size_t>(i)].seq = i;
    q.push(&nodes[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 100; ++i) {
    auto* n = static_cast<TestNode*>(q.pop());
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->seq, i);
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, EmptyHint) {
  MpscQueue q;
  EXPECT_TRUE(q.empty_hint());
  TestNode n;
  q.push(&n);
  EXPECT_FALSE(q.empty_hint());
  EXPECT_EQ(q.pop(), &n);
  EXPECT_TRUE(q.empty_hint());
}

TEST(MpscQueue, MultiProducerPreservesPerProducerOrder) {
  // The paper requires in-order multi-producer queues (section 3.7):
  // elements from one producer must be consumed in push order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscQueue q;
  std::vector<std::deque<TestNode>> nodes(kProducers);
  for (auto& v : nodes) v.resize(kPerProducer);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto& n = nodes[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
        n.producer = p;
        n.seq = i;
        q.push(&n);
      }
    });
  }

  int consumed = 0;
  std::vector<int> last_seq(kProducers, -1);
  while (consumed < kProducers * kPerProducer) {
    auto* n = static_cast<TestNode*>(q.pop());
    if (n == nullptr) continue;  // in-flight push; retry
    EXPECT_EQ(n->seq, last_seq[static_cast<std::size_t>(n->producer)] + 1);
    last_seq[static_cast<std::size_t>(n->producer)] = n->seq;
    ++consumed;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, EmptyHintIsConstCallable) {
  // empty_hint() reads only atomics — it must be callable through a const
  // reference without const_cast tricks.
  MpscQueue q;
  const MpscQueue& cq = q;
  EXPECT_TRUE(cq.empty_hint());
  TestNode n;
  q.push(&n);
  EXPECT_FALSE(cq.empty_hint());
  EXPECT_EQ(q.pop(), &n);
  EXPECT_TRUE(cq.empty_hint());
}

TEST(MpscQueue, InFlightPushWindowPopReturnsNullThenElement) {
  // A producer preempted between its head exchange and its link store
  // leaves the queue momentarily disconnected: pop() must report "nothing
  // visible" (nullptr) rather than spin or crash, and must deliver the
  // element once the link lands.
  MpscQueue q;
  TestNode a;
  MpscNode* prev = MpscQueueTestPeer::begin_push(q, &a);
  EXPECT_FALSE(q.empty_hint());  // the head moved, so not observably empty
  EXPECT_EQ(q.pop(), nullptr);   // but the element is not reachable yet
  EXPECT_EQ(q.pop(), nullptr);
  MpscQueueTestPeer::finish_push(prev, &a);
  EXPECT_EQ(q.pop(), &a);
  EXPECT_TRUE(q.empty_hint());

  // Same window one element deeper: even the fully pushed b is withheld,
  // because handing out the current tail requires advancing past it and
  // its successor link (c) hasn't landed yet. Both appear, in order, once
  // the producer's store completes.
  TestNode b;
  TestNode c;
  q.push(&b);
  MpscNode* prev2 = MpscQueueTestPeer::begin_push(q, &c);
  EXPECT_EQ(q.pop(), nullptr);  // b blocked behind the in-flight push of c
  MpscQueueTestPeer::finish_push(prev2, &c);
  EXPECT_EQ(q.pop(), &b);
  EXPECT_EQ(q.pop(), &c);
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, PopAllDrainsInPushOrder) {
  MpscQueue q;
  EXPECT_TRUE(q.pop_all().empty());  // empty queue -> empty batch
  std::deque<TestNode> nodes(100);
  for (int i = 0; i < 100; ++i) {
    nodes[static_cast<std::size_t>(i)].seq = i;
    q.push(&nodes[static_cast<std::size_t>(i)]);
  }
  auto batch = q.pop_all();
  int expect = 0;
  for (MpscNode* m = batch.take(); m != nullptr; m = batch.take()) {
    EXPECT_EQ(static_cast<TestNode*>(m)->seq, expect++);
  }
  EXPECT_EQ(expect, 100);
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(q.empty_hint());
  EXPECT_TRUE(q.pop_all().empty());
}

TEST(MpscQueue, PopAllSkipsRecycledStub) {
  // pop() of the last element re-inserts the stub into the live chain; a
  // later pop_all() detaches a chain with that stub buried in it and must
  // skip it, handing back only real elements.
  MpscQueue q;
  TestNode a;
  TestNode b;
  q.push(&a);
  EXPECT_EQ(q.pop(), &a);  // stub now re-inserted at the head
  q.push(&b);
  auto batch = q.pop_all();
  EXPECT_EQ(batch.take(), &b);
  EXPECT_EQ(batch.take(), nullptr);
  // And the flip is reusable: the queue keeps working across many drains.
  for (int round = 0; round < 8; ++round) {
    q.push(&a);
    q.push(&b);
    auto batch2 = q.pop_all();
    EXPECT_EQ(batch2.take(), &a);
    EXPECT_EQ(batch2.take(), &b);
    EXPECT_EQ(batch2.take(), nullptr);
  }
}

TEST(MpscQueue, PopAllTakeSpinsAcrossInFlightPush) {
  // pop_all() can detach a chain with a hole in it (producer preempted
  // mid-push after the chain end was already captured by the head
  // exchange). Batch::take() must wait the hole out: the chain end is
  // known, so the missing link is guaranteed to land.
  MpscQueue q;
  TestNode a;
  TestNode b;
  q.push(&a);
  MpscNode* prev = MpscQueueTestPeer::begin_push(q, &b);
  auto batch = q.pop_all();  // detached chain: stub -> a -> (hole) -> b
  std::thread linker([prev, &b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MpscQueueTestPeer::finish_push(prev, &b);
  });
  EXPECT_EQ(batch.take(), &a);  // spins across the hole, then proceeds
  EXPECT_EQ(batch.take(), &b);
  EXPECT_EQ(batch.take(), nullptr);
  linker.join();
  EXPECT_TRUE(q.empty_hint());
}

TEST(MpscQueue, PopAllMultiProducerPreservesPerProducerOrder) {
  // FIFO property test for the batch drain (DESIGN.md section 9): across
  // repeated pop_all() batches — interleaved with single pop()s — every
  // producer's elements arrive in push order. This is the MPI
  // non-overtaking guarantee the batched handler relies on.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue q;
  std::vector<std::deque<TestNode>> nodes(kProducers);
  for (auto& v : nodes) v.resize(kPerProducer);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto& n = nodes[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
        n.producer = p;
        n.seq = i;
        q.push(&n);
      }
    });
  }

  int consumed = 0;
  int rounds = 0;
  std::vector<int> last_seq(kProducers, -1);
  while (consumed < kProducers * kPerProducer) {
    if (++rounds % 7 == 0) {  // mix in the one-at-a-time path
      auto* n = static_cast<TestNode*>(q.pop());
      if (n == nullptr) continue;
      EXPECT_EQ(n->seq, last_seq[static_cast<std::size_t>(n->producer)] + 1);
      last_seq[static_cast<std::size_t>(n->producer)] = n->seq;
      ++consumed;
      continue;
    }
    auto batch = q.pop_all();
    for (MpscNode* m = batch.take(); m != nullptr; m = batch.take()) {
      auto* n = static_cast<TestNode*>(m);
      EXPECT_EQ(n->seq, last_seq[static_cast<std::size_t>(n->producer)] + 1);
      last_seq[static_cast<std::size_t>(n->producer)] = n->seq;
      ++consumed;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.pop_all().empty());
  EXPECT_EQ(q.pop(), nullptr);
}

// --- NAS RNG ------------------------------------------------------------------

TEST(NasRng, MatchesIterativePower) {
  // a^k mod 2^46 computed by powmod equals repeated multiplication.
  std::uint64_t iter = 1;
  for (int k = 0; k <= 20; ++k) {
    EXPECT_EQ(nas::RandLc::powmod(nas::RandLc::kA, static_cast<std::uint64_t>(k)),
              iter);
    iter = nas::RandLc::mulmod(iter, nas::RandLc::kA);
  }
}

TEST(NasRng, SkipAheadEqualsSequentialAdvance) {
  // The EP decomposition relies on skip(k) == k sequential next() calls.
  for (std::uint64_t k : {1ull, 7ull, 100ull, 12345ull}) {
    nas::RandLc a;
    nas::RandLc b;
    for (std::uint64_t i = 0; i < k; ++i) a.next();
    b.skip(k);
    EXPECT_EQ(a.state(), b.state()) << "k=" << k;
  }
}

TEST(NasRng, UniformRange) {
  nas::RandLc rng;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next();
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(NasRng, DeterministicAcrossInstances) {
  nas::RandLc a;
  nas::RandLc b;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

// --- checksums ----------------------------------------------------------------

TEST(Checksum, Fnv1aDiffersOnContent) {
  const char a[] = "hello world";
  const char b[] = "hello worle";
  EXPECT_NE(fnv1a(a, sizeof(a)), fnv1a(b, sizeof(b)));
  EXPECT_EQ(fnv1a(a, sizeof(a)), fnv1a(a, sizeof(a)));
}

TEST(Checksum, KahanSumIsAccurate) {
  // 1 + 1e-16 * 10^7 loses everything with naive summation.
  std::vector<double> v(10000001, 1e-16);
  v[0] = 1.0;
  const double s = kahan_sum(v.data(), v.size());
  EXPECT_NEAR(s, 1.0 + 1e-9, 1e-15);
}

}  // namespace
}  // namespace impacc
