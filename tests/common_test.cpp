// Unit tests for src/common: MPSC queue, math helpers, NAS RNG, checksums.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/math_utils.h"
#include "common/mpsc_queue.h"
#include "common/nas_rng.h"

namespace impacc {
namespace {

// --- math_utils --------------------------------------------------------------

TEST(MathUtils, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
}

TEST(MathUtils, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(MathUtils, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(MathUtils, CubeRoot) {
  EXPECT_EQ(icbrt(1), 1);
  EXPECT_EQ(icbrt(8), 2);
  EXPECT_EQ(icbrt(27), 3);
  EXPECT_EQ(icbrt(8000), 20);
  EXPECT_TRUE(is_perfect_cube(3375));
  EXPECT_FALSE(is_perfect_cube(3374));
}

TEST(MathUtils, ChunkBeginPartitionsExactly) {
  // Chunks cover [0, total) without gaps and differ in size by at most 1.
  for (int total : {1, 7, 64, 100}) {
    for (int parts : {1, 3, 7, 8}) {
      EXPECT_EQ(chunk_begin(total, parts, 0), 0);
      EXPECT_EQ(chunk_begin(total, parts, parts), total);
      long min_size = total;
      long max_size = 0;
      for (int i = 0; i < parts; ++i) {
        const long size =
            chunk_begin(total, parts, i + 1) - chunk_begin(total, parts, i);
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
      }
      EXPECT_LE(max_size - min_size, 1);
    }
  }
}

// --- MPSC queue ---------------------------------------------------------------

struct TestNode : MpscNode {
  int producer = 0;
  int seq = 0;
};

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue q;
  std::deque<TestNode> nodes(100);
  for (int i = 0; i < 100; ++i) {
    nodes[static_cast<std::size_t>(i)].seq = i;
    q.push(&nodes[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 100; ++i) {
    auto* n = static_cast<TestNode*>(q.pop());
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->seq, i);
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, EmptyHint) {
  MpscQueue q;
  EXPECT_TRUE(q.empty_hint());
  TestNode n;
  q.push(&n);
  EXPECT_FALSE(q.empty_hint());
  EXPECT_EQ(q.pop(), &n);
  EXPECT_TRUE(q.empty_hint());
}

TEST(MpscQueue, MultiProducerPreservesPerProducerOrder) {
  // The paper requires in-order multi-producer queues (section 3.7):
  // elements from one producer must be consumed in push order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscQueue q;
  std::vector<std::deque<TestNode>> nodes(kProducers);
  for (auto& v : nodes) v.resize(kPerProducer);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto& n = nodes[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
        n.producer = p;
        n.seq = i;
        q.push(&n);
      }
    });
  }

  int consumed = 0;
  std::vector<int> last_seq(kProducers, -1);
  while (consumed < kProducers * kPerProducer) {
    auto* n = static_cast<TestNode*>(q.pop());
    if (n == nullptr) continue;  // in-flight push; retry
    EXPECT_EQ(n->seq, last_seq[static_cast<std::size_t>(n->producer)] + 1);
    last_seq[static_cast<std::size_t>(n->producer)] = n->seq;
    ++consumed;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.pop(), nullptr);
}

// --- NAS RNG ------------------------------------------------------------------

TEST(NasRng, MatchesIterativePower) {
  // a^k mod 2^46 computed by powmod equals repeated multiplication.
  std::uint64_t iter = 1;
  for (int k = 0; k <= 20; ++k) {
    EXPECT_EQ(nas::RandLc::powmod(nas::RandLc::kA, static_cast<std::uint64_t>(k)),
              iter);
    iter = nas::RandLc::mulmod(iter, nas::RandLc::kA);
  }
}

TEST(NasRng, SkipAheadEqualsSequentialAdvance) {
  // The EP decomposition relies on skip(k) == k sequential next() calls.
  for (std::uint64_t k : {1ull, 7ull, 100ull, 12345ull}) {
    nas::RandLc a;
    nas::RandLc b;
    for (std::uint64_t i = 0; i < k; ++i) a.next();
    b.skip(k);
    EXPECT_EQ(a.state(), b.state()) << "k=" << k;
  }
}

TEST(NasRng, UniformRange) {
  nas::RandLc rng;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next();
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(NasRng, DeterministicAcrossInstances) {
  nas::RandLc a;
  nas::RandLc b;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

// --- checksums ----------------------------------------------------------------

TEST(Checksum, Fnv1aDiffersOnContent) {
  const char a[] = "hello world";
  const char b[] = "hello worle";
  EXPECT_NE(fnv1a(a, sizeof(a)), fnv1a(b, sizeof(b)));
  EXPECT_EQ(fnv1a(a, sizeof(a)), fnv1a(a, sizeof(a)));
}

TEST(Checksum, KahanSumIsAccurate) {
  // 1 + 1e-16 * 10^7 loses everything with naive summation.
  std::vector<double> v(10000001, 1e-16);
  v[0] = 1.0;
  const double s = kahan_sum(v.data(), v.size());
  EXPECT_NEAR(s, 1.0 + 1e-9, 1e-15);
}

}  // namespace
}  // namespace impacc
