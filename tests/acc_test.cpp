// Unit tests for the OpenACC runtime layer: present-table AVL trees,
// data environment reference counting, acc API semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "acc/present_table.h"
#include "impacc.h"

namespace impacc::acc {
namespace {

// --- AVL tree property tests -------------------------------------------------------

PresentEntry make_entry(std::uintptr_t host, std::uintptr_t dev,
                        std::uint64_t bytes) {
  PresentEntry e;
  e.host = host;
  e.dev = dev;
  e.bytes = bytes;
  return e;
}

TEST(AddrAvlTree, InsertFindErase) {
  detail::AddrAvlTree tree([](const PresentEntry* e) { return e->host; });
  std::vector<PresentEntry> entries;
  entries.reserve(10);
  for (int i = 0; i < 10; ++i) {
    entries.push_back(make_entry(1000u * static_cast<unsigned>(i + 1), 0, 100));
  }
  for (auto& e : entries) tree.insert(&e);
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_TRUE(tree.check_invariants());
  // Containment lookups: inside, at start, at end-1, outside.
  EXPECT_EQ(tree.find_containing(1000), &entries[0]);
  EXPECT_EQ(tree.find_containing(1099), &entries[0]);
  EXPECT_EQ(tree.find_containing(1100), nullptr);
  EXPECT_EQ(tree.find_containing(999), nullptr);
  EXPECT_EQ(tree.find_containing(5050), &entries[4]);
  tree.erase(&entries[4]);
  EXPECT_EQ(tree.find_containing(5050), nullptr);
  EXPECT_EQ(tree.size(), 9u);
  EXPECT_TRUE(tree.check_invariants());
}

TEST(AddrAvlTree, HeightStaysLogarithmic) {
  // The paper chose balanced trees "to reduce the worst-case search time";
  // insertion in sorted order is the classic worst case for a plain BST.
  detail::AddrAvlTree tree([](const PresentEntry* e) { return e->host; });
  std::vector<PresentEntry> entries;
  constexpr int kN = 1024;
  entries.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    entries.push_back(make_entry(64u * static_cast<unsigned>(i + 1), 0, 64));
  }
  for (auto& e : entries) tree.insert(&e);
  EXPECT_TRUE(tree.check_invariants());
  // AVL height bound: 1.44 * log2(n + 2).
  EXPECT_LE(tree.height(), 15);
}

class AvlRandomOps : public ::testing::TestWithParam<unsigned> {};

TEST_P(AvlRandomOps, MatchesReferenceMap) {
  std::mt19937 rng(GetParam());
  detail::AddrAvlTree tree([](const PresentEntry* e) { return e->host; });
  std::map<std::uintptr_t, PresentEntry*> ref;
  std::vector<std::unique_ptr<PresentEntry>> owned;

  for (int step = 0; step < 3000; ++step) {
    const bool insert = ref.empty() || rng() % 3 != 0;
    if (insert) {
      // Non-overlapping slots of width 16 on a 16-aligned grid.
      const std::uintptr_t key = 16u * (1 + rng() % 4096);
      if (ref.count(key) != 0) continue;
      owned.push_back(std::make_unique<PresentEntry>(make_entry(key, 0, 16)));
      tree.insert(owned.back().get());
      ref[key] = owned.back().get();
    } else {
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng() % ref.size()));
      tree.erase(it->second);
      ref.erase(it);
    }
    ASSERT_EQ(tree.size(), ref.size());
    if (step % 256 == 0) {
      ASSERT_TRUE(tree.check_invariants());
      // Spot-check lookups against the reference.
      for (int probe = 0; probe < 32; ++probe) {
        const std::uintptr_t addr = rng() % (16 * 4100);
        auto it = ref.upper_bound(addr);
        PresentEntry* expected = nullptr;
        if (it != ref.begin()) {
          --it;
          if (addr < it->first + 16) expected = it->second;
        }
        ASSERT_EQ(tree.find_containing(addr), expected) << "addr=" << addr;
      }
    }
  }
  // Keys must come out sorted.
  const auto keys = tree.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlRandomOps,
                         ::testing::Values(1u, 42u, 777u, 31337u));

TEST(AddrAvlTree, FindFirstInRange) {
  detail::AddrAvlTree tree([](const PresentEntry* e) { return e->host; });
  PresentEntry a = make_entry(100, 0, 10);
  PresentEntry b = make_entry(300, 0, 10);
  tree.insert(&a);
  tree.insert(&b);
  EXPECT_EQ(tree.find_first_in(0, 100), nullptr);
  EXPECT_EQ(tree.find_first_in(0, 101), &a);
  EXPECT_EQ(tree.find_first_in(150, 400), &b);
  EXPECT_EQ(tree.find_first_in(301, 400), nullptr);
}

// --- PresentTable --------------------------------------------------------------------

TEST(PresentTable, DeviceptrHostptrWithOffsets) {
  PresentTable pt;
  char host[256];
  char dev[256];
  pt.insert(host, dev, 256, 7);
  EXPECT_EQ(pt.deviceptr(host), dev);
  EXPECT_EQ(pt.deviceptr(host + 100), dev + 100);
  EXPECT_EQ(pt.hostptr(dev + 255), host + 255);
  EXPECT_EQ(pt.deviceptr(host + 256), nullptr);  // one past the end
  EXPECT_EQ(pt.hostptr(host), nullptr);          // host addr in dev tree
  const PresentEntry* e = pt.find_host(host + 10);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, 7u);  // cl_mem-style handle preserved (Fig. 3)
}

TEST(PresentTable, BothTreesStayConsistent) {
  PresentTable pt;
  std::vector<std::vector<char>> hosts;
  std::vector<std::vector<char>> devs;
  std::vector<PresentEntry*> entries;
  for (int i = 0; i < 64; ++i) {
    hosts.emplace_back(128);
    devs.emplace_back(128);
    entries.push_back(pt.insert(hosts.back().data(), devs.back().data(), 128,
                                static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(pt.size(), 64u);
  EXPECT_TRUE(pt.host_tree().check_invariants());
  EXPECT_TRUE(pt.dev_tree().check_invariants());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(pt.deviceptr(hosts[static_cast<std::size_t>(i)].data() + 5),
              devs[static_cast<std::size_t>(i)].data() + 5);
  }
  for (int i = 0; i < 64; i += 2) pt.erase(entries[static_cast<std::size_t>(i)]);
  EXPECT_EQ(pt.size(), 32u);
  for (int i = 0; i < 64; ++i) {
    void* expect = i % 2 == 0 ? nullptr
                              : static_cast<void*>(
                                    devs[static_cast<std::size_t>(i)].data());
    EXPECT_EQ(pt.deviceptr(hosts[static_cast<std::size_t>(i)].data()), expect);
  }
}

TEST(PresentTable, MemoCacheCountsHitsAndMisses) {
  PresentTable pt;
  char h0[256];
  char d0[256];
  char h1[256];
  char d1[256];
  PresentEntry* e0 = pt.insert(h0, d0, 256, 0);
  PresentEntry* e1 = pt.insert(h1, d1, 256, 1);
  // First lookup walks the tree (the inserts invalidated the memo
  // shards); repeats at the SAME address hit that address's shard. (A
  // different offset inside the entry can map to a neighbouring shard
  // when the buffer straddles a page, so only same-address repeats have
  // deterministic counts.)
  EXPECT_EQ(pt.find_host(h0), e0);
  EXPECT_EQ(pt.find_host(h0), e0);
  EXPECT_EQ(pt.find_host(h0), e0);
  EXPECT_EQ(pt.cache_stats().host_misses, 1u);
  EXPECT_EQ(pt.cache_stats().host_hits, 2u);
  // A different buffer walks the tree once — whether it lands in its own
  // shard or evicts h0's — then hits again.
  EXPECT_EQ(pt.find_host(h1), e1);
  EXPECT_EQ(pt.find_host(h1), e1);
  EXPECT_EQ(pt.cache_stats().host_misses, 2u);
  EXPECT_EQ(pt.cache_stats().host_hits, 3u);
  // Failed lookups count as misses and must not poison any memo shard:
  // the follow-up lookup of h1 is still answered by its retained memo.
  char elsewhere[8];
  EXPECT_EQ(pt.find_host(elsewhere), nullptr);
  EXPECT_EQ(pt.find_host(h1), e1);
  EXPECT_EQ(pt.cache_stats().host_misses, 3u);
  EXPECT_EQ(pt.cache_stats().host_hits, 4u);
  // The device tree has its own independent memo shards.
  EXPECT_EQ(pt.find_dev(d0 + 10), e0);
  EXPECT_EQ(pt.find_dev(d0 + 10), e0);
  EXPECT_EQ(pt.cache_stats().dev_misses, 1u);
  EXPECT_EQ(pt.cache_stats().dev_hits, 1u);
}

TEST(PresentTable, ConcurrentLookupsAgreeAndDontRace) {
  // The sharded lookup path is the one surface of the per-task table that
  // other fibers (the node handler) touch concurrently: hammer find_host /
  // find_dev from several OS threads while the owner interleaves
  // structural churn. Under TSan/ASan this certifies the reader lock +
  // atomic memo shards; functionally every lookup must agree with the
  // table contents at the time it ran (entries are only erased after the
  // readers stop, so found pointers stay valid).
  PresentTable pt;
  constexpr int kEntries = 16;
  constexpr int kLookups = 20000;
  std::vector<std::vector<char>> hosts;
  std::vector<std::vector<char>> devs;
  std::vector<PresentEntry*> entries;
  for (int i = 0; i < kEntries; ++i) {
    hosts.emplace_back(4096);
    devs.emplace_back(4096);
    entries.push_back(pt.insert(hosts.back().data(), devs.back().data(),
                                4096, static_cast<std::uint64_t>(i)));
  }
  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(static_cast<unsigned>(1000 + r));
      for (int i = 0; i < kLookups; ++i) {
        const int e = static_cast<int>(rng() % kEntries);
        const std::size_t off = rng() % 4096;
        if ((rng() & 1u) != 0) {
          if (pt.find_host(hosts[static_cast<std::size_t>(e)].data() + off) !=
              entries[static_cast<std::size_t>(e)]) {
            wrong.fetch_add(1);
          }
        } else {
          if (pt.find_dev(devs[static_cast<std::size_t>(e)].data() + off) !=
              entries[static_cast<std::size_t>(e)]) {
            wrong.fetch_add(1);
          }
        }
      }
    });
  }
  // Owner thread: churn DISJOINT scratch mappings while the readers run —
  // insert/erase must serialize against lookups without corrupting them.
  std::vector<char> scratch_h(4096);
  std::vector<char> scratch_d(4096);
  for (int i = 0; i < 500; ++i) {
    PresentEntry* s =
        pt.insert(scratch_h.data(), scratch_d.data(), 4096, 999);
    pt.erase(s);
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(pt.size(), static_cast<std::size_t>(kEntries));
  const auto cs = pt.cache_stats();
  EXPECT_EQ(cs.hits() + cs.misses(),
            static_cast<std::uint64_t>(4 * kLookups));
}

TEST(PresentTable, MemoCacheInvalidatedOnEraseOfCachedEntry) {
  PresentTable pt;
  char h0[64];
  char d0[64];
  char h1[64];
  char d1[64];
  PresentEntry* e0 = pt.insert(h0, d0, 64, 0);
  PresentEntry* e1 = pt.insert(h1, d1, 64, 1);
  ASSERT_EQ(pt.find_host(h0), e0);  // e0 is now the memo
  ASSERT_EQ(pt.find_dev(d0), e0);
  const std::uint64_t inval_before = pt.cache_stats().invalidations;
  pt.erase(e0);
  EXPECT_GT(pt.cache_stats().invalidations, inval_before);
  // The dead entry must not be resurrected from the memo.
  EXPECT_EQ(pt.find_host(h0), nullptr);
  EXPECT_EQ(pt.find_dev(d0), nullptr);
  EXPECT_EQ(pt.find_host(h1), e1);
  // Insert also invalidates: a fresh entry covering the old range is found.
  PresentEntry* e2 = pt.insert(h0, d0, 64, 2);
  EXPECT_EQ(pt.find_host(h0 + 3), e2);
}

TEST(PresentTable, MemoCacheAgreesWithTreeUnderRandomChurn) {
  // Property test: interleave insert/erase/lookup and require every lookup
  // to agree with a plain reference map, regardless of memo state.
  std::mt19937 rng(20160601);
  PresentTable pt;
  constexpr std::uintptr_t kHostBase = 0x100000;
  constexpr std::uintptr_t kDevBase = 0x9000000;
  constexpr std::uint64_t kSlot = 0x1000;   // slot stride
  constexpr std::uint64_t kBytes = 0x800;   // mapping size (gaps between)
  constexpr int kSlots = 32;
  std::array<PresentEntry*, kSlots> live{};
  std::uint64_t lookups = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const int slot = static_cast<int>(rng() % kSlots);
    const std::uintptr_t host = kHostBase + static_cast<std::uintptr_t>(slot) * kSlot;
    const std::uintptr_t dev = kDevBase + static_cast<std::uintptr_t>(slot) * kSlot;
    switch (rng() % 4) {
      case 0:
        if (live[static_cast<std::size_t>(slot)] == nullptr) {
          live[static_cast<std::size_t>(slot)] =
              pt.insert(reinterpret_cast<void*>(host),
                        reinterpret_cast<void*>(dev), kBytes,
                        static_cast<std::uint64_t>(slot));
        }
        break;
      case 1:
        if (live[static_cast<std::size_t>(slot)] != nullptr) {
          pt.erase(live[static_cast<std::size_t>(slot)]);
          live[static_cast<std::size_t>(slot)] = nullptr;
        }
        break;
      default: {
        // Probe inside, at the edges, and in the gap after the mapping.
        const std::uint64_t offsets[] = {0, 1, kBytes / 2, kBytes - 1,
                                         kBytes, kSlot - 1};
        const std::uint64_t off = offsets[rng() % 6];
        PresentEntry* expect =
            off < kBytes ? live[static_cast<std::size_t>(slot)] : nullptr;
        ASSERT_EQ(pt.find_host(reinterpret_cast<void*>(host + off)), expect)
            << "iter " << iter;
        ASSERT_EQ(pt.find_dev(reinterpret_cast<void*>(dev + off)), expect)
            << "iter " << iter;
        lookups += 2;
        break;
      }
    }
  }
  EXPECT_TRUE(pt.host_tree().check_invariants());
  EXPECT_TRUE(pt.dev_tree().check_invariants());
  // Every lookup is accounted as exactly one hit or one miss.
  EXPECT_EQ(pt.cache_stats().hits() + pt.cache_stats().misses(), lookups);
  EXPECT_GT(pt.cache_stats().hits(), 0u);
}

// --- Data environment inside a run -----------------------------------------------------

core::LaunchOptions psg_options() {
  core::LaunchOptions o;
  o.cluster = sim::make_psg();
  return o;
}

TEST(DataEnv, CopyinRoundTrip) {
  launch(psg_options(), [] {
    std::vector<double> host(100, 3.5);
    void* dev = acc::copyin(host.data(), 800);
    ASSERT_NE(dev, nullptr);
    EXPECT_TRUE(acc::is_present(host.data()));
    EXPECT_EQ(acc::deviceptr(host.data()), dev);
    EXPECT_EQ(acc::hostptr(dev), host.data());
    // Device memory holds the data (the simulated arena is real memory).
    EXPECT_DOUBLE_EQ(static_cast<double*>(dev)[50], 3.5);
    acc::del(host.data());
    EXPECT_FALSE(acc::is_present(host.data()));
  });
}

TEST(DataEnv, PresentOrCopyinRefCounts) {
  launch(psg_options(), [] {
    std::vector<double> host(64, 1.0);
    void* d1 = acc::copyin(host.data(), 512);
    void* d2 = acc::copyin(host.data(), 512);  // present: no new mapping
    EXPECT_EQ(d1, d2);
    acc::del(host.data());
    EXPECT_TRUE(acc::is_present(host.data()));  // one reference remains
    acc::del(host.data());
    EXPECT_FALSE(acc::is_present(host.data()));
  });
}

TEST(DataEnv, UpdateDeviceAndSelfMovePartialRanges) {
  launch(psg_options(), [] {
    std::vector<int> host(100, 1);
    acc::copyin(host.data(), 400);
    auto* dev = static_cast<int*>(acc::deviceptr(host.data()));
    // Mutate host; push a partial range to the device.
    for (int i = 10; i < 20; ++i) host[static_cast<std::size_t>(i)] = 7;
    acc::update_device(host.data() + 10, 40);
    EXPECT_EQ(dev[10], 7);
    EXPECT_EQ(dev[9], 1);
    // Mutate device; pull a partial range back.
    dev[15] = 42;
    acc::update_self(host.data() + 15, 4);
    EXPECT_EQ(host[15], 42);
    acc::del(host.data());
  });
}

TEST(DataEnv, CopyoutWritesBackOnLastReference) {
  launch(psg_options(), [] {
    std::vector<float> host(32, 0.0f);
    acc::copyin(host.data(), 128);
    auto* dev = static_cast<float*>(acc::deviceptr(host.data()));
    for (int i = 0; i < 32; ++i) dev[i] = 2.0f;
    acc::copyout(host.data());
    EXPECT_FALSE(acc::is_present(host.data()));
    EXPECT_FLOAT_EQ(host[0], 2.0f);
    EXPECT_FLOAT_EQ(host[31], 2.0f);
  });
}

TEST(DataEnv, CreateDoesNotCopy) {
  launch(psg_options(), [] {
    std::vector<int> host(16, 9);
    acc::create(host.data(), 64);
    auto* dev = static_cast<int*>(acc::deviceptr(host.data()));
    ASSERT_NE(dev, nullptr);
    dev[0] = 5;  // fresh device memory, host unaffected
    EXPECT_EQ(host[0], 9);
    acc::del(host.data());
  });
}

TEST(DataEnv, AsyncOpsCompleteAtWait) {
  launch(psg_options(), [] {
    std::vector<double> host(1000, 1.0);
    acc::copyin(host.data(), 8000, 3);
    auto* dev = static_cast<double*>(acc::deviceptr(host.data()));
    acc::parallel_loop(
        "double", 1000, [dev](long i) { dev[i] *= 2.0; }, {2000, 16000}, 3);
    acc::update_self(host.data(), 8000, 3);
    acc::wait(3);
    EXPECT_DOUBLE_EQ(host[999], 2.0);
    acc::del(host.data());
  });
}

TEST(DataEnv, HostSharedDeviceElidesMapping) {
  // CPU-as-accelerator (integrated): device pointer IS the host pointer.
  core::LaunchOptions o = psg_options();
  o.device_type_mask = core::kAccDeviceCpu;
  launch(o, [] {
    EXPECT_EQ(acc::get_device_type(), sim::DeviceKind::kCpu);
    std::vector<double> host(10, 1.0);
    void* dev = acc::copyin(host.data(), 80);
    EXPECT_EQ(dev, host.data());
    acc::del(host.data());
  });
}

TEST(AccApi, DeviceQueries) {
  launch(psg_options(), [] {
    EXPECT_EQ(acc::get_device_type(), sim::DeviceKind::kNvidiaGpu);
    const int num = acc::get_device_num();
    EXPECT_GE(num, 0);
    EXPECT_LT(num, 8);
    acc::set_device_num((num + 1) % 8);          // ignored (section 3.2)
    EXPECT_EQ(acc::get_device_num(), num);        // mapping is fixed
  });
}

TEST(AccApi, WaitAllDrainsEveryQueue) {
  launch(psg_options(), [] {
    std::vector<int> a(256, 0);
    std::vector<int> b(256, 0);
    acc::copyin(a.data(), 1024, 1);
    acc::copyin(b.data(), 1024, 2);
    auto* da = static_cast<int*>(acc::deviceptr(a.data()));
    auto* db = static_cast<int*>(acc::deviceptr(b.data()));
    acc::parallel_loop("fa", 256, [da](long i) { da[i] = 1; }, {256, 2048}, 1);
    acc::parallel_loop("fb", 256, [db](long i) { db[i] = 2; }, {256, 2048}, 2);
    acc::update_self(a.data(), 1024, 1);
    acc::update_self(b.data(), 1024, 2);
    acc::wait_all();
    EXPECT_EQ(a[100], 1);
    EXPECT_EQ(b[100], 2);
    acc::del(a.data());
    acc::del(b.data());
  });
}

}  // namespace
}  // namespace impacc::acc

namespace impacc::acc {
namespace {

TEST(DataRegionRaii, EntryAndExitActionsInOrder) {
  core::LaunchOptions o;
  o.cluster = sim::make_psg();
  o.scheduler_workers = 1;
  launch(o, [] {
    std::vector<double> a(16, 1.0);  // copy: in + out
    std::vector<double> b(16, 2.0);  // copyin: in only
    std::vector<double> c(16, 0.0);  // copyout: created, written back
    {
      DataRegion region;
      region.copy(a.data(), 128).copyin(b.data(), 128).copyout(c.data(), 128);
      EXPECT_TRUE(is_present(a.data()));
      EXPECT_TRUE(is_present(b.data()));
      EXPECT_TRUE(is_present(c.data()));
      auto* da = static_cast<double*>(deviceptr(a.data()));
      auto* db = static_cast<double*>(deviceptr(b.data()));
      auto* dc = static_cast<double*>(deviceptr(c.data()));
      parallel_loop(
          "combine", 16, [da, db, dc](long i) { dc[i] = da[i] + db[i]; },
          {32, 384});
      da[0] = 42.0;  // device-side change: must flow back via copy()
    }
    EXPECT_FALSE(is_present(a.data()));
    EXPECT_FALSE(is_present(b.data()));
    EXPECT_FALSE(is_present(c.data()));
    EXPECT_DOUBLE_EQ(a[0], 42.0);  // copy(): written back
    EXPECT_DOUBLE_EQ(b[0], 2.0);   // copyin(): not written back
    EXPECT_DOUBLE_EQ(c[5], 3.0);   // copyout(): kernel result visible
  });
}

TEST(Trace, RecordsKernelsCopiesAndMessages) {
  core::LaunchOptions o;
  o.cluster = sim::make_psg();
  o.scheduler_workers = 1;
  o.trace_path = "-";  // keep in memory, don't write a file
  const auto result = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<double> buf(1024, 1.0);
    copyin(buf.data(), 8192, 1);
    auto* d = static_cast<double*>(deviceptr(buf.data()));
    parallel_loop("trace-kernel", 1024, [d](long i) { d[i] *= 2; },
                  {2048, 16384}, 1);
    wait(1);
    if (r == 0) {
      mpi::send(buf.data(), 1024, mpi::Datatype::kDouble, 1, 1, w);
    } else if (r == 1) {
      mpi::recv(buf.data(), 1024, mpi::Datatype::kDouble, 0, 1, w);
    }
    del(buf.data());
  });
  ASSERT_NE(result.trace, nullptr);
  bool saw_kernel = false;
  bool saw_copy = false;
  bool saw_msg = false;
  for (const auto& e : result.trace->snapshot()) {
    if (e.phase == 'X') {
      EXPECT_GE(e.end, e.start);  // slices only
    }
    if (e.category == "kernel" && e.name == "trace-kernel") saw_kernel = true;
    if (e.category == "copy") saw_copy = true;
    if (e.category == "intranode") saw_msg = true;
  }
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_copy);
  EXPECT_TRUE(saw_msg);
  // The JSON serialization is well formed enough for chrome://tracing:
  // one object per event, balanced brackets.
  const std::string json = result.trace->to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":\"dev"), std::string::npos);
}

TEST(Trace, DisabledByDefault) {
  core::LaunchOptions o;
  o.cluster = sim::make_titan(1);
  o.scheduler_workers = 1;
  const auto result = launch(o, [] {});
  EXPECT_EQ(result.trace, nullptr);
}

}  // namespace
}  // namespace impacc::acc

namespace impacc::acc {
namespace {

TEST(RawDeviceApi, MallocMemcpyRoundTrip) {
  core::LaunchOptions o;
  o.cluster = sim::make_psg();
  o.scheduler_workers = 1;
  launch(o, [] {
    std::vector<int> host(64);
    for (int i = 0; i < 64; ++i) host[static_cast<std::size_t>(i)] = i * 3;
    void* dev = device_malloc(256);
    ASSERT_NE(dev, nullptr);
    memcpy_to_device(dev, host.data(), 256);
    std::vector<int> back(64, 0);
    memcpy_from_device(back.data(), dev, 256);
    EXPECT_EQ(back[63], 189);
    device_free(dev);
  });
}

TEST(RawDeviceApi, MapDataExposesExistingDeviceMemory) {
  core::LaunchOptions o;
  o.cluster = sim::make_psg();
  o.scheduler_workers = 1;
  launch(o, [] {
    std::vector<double> host(32, 1.5);
    auto* dev = static_cast<double*>(device_malloc(256));
    map_data(host.data(), dev, 256);
    EXPECT_TRUE(is_present(host.data()));
    EXPECT_EQ(deviceptr(host.data() + 4), dev + 4);
    // update clauses work on mapped data like on copyin'd data.
    update_device(host.data(), 256);
    EXPECT_DOUBLE_EQ(dev[10], 1.5);
    dev[10] = 9.5;
    update_self(host.data() + 10, 8);
    EXPECT_DOUBLE_EQ(host[10], 9.5);
    unmap_data(host.data());
    EXPECT_FALSE(is_present(host.data()));
    device_free(dev);  // still the application's to free
  });
}

TEST(RawDeviceApi, MappedDataParticipatesInUnifiedComm) {
  // A device buffer the app allocated itself can be the target of the
  // unified MPI routines via its mapping.
  core::LaunchOptions o;
  o.cluster = sim::make_psg();
  o.scheduler_workers = 1;
  launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    std::vector<int> host(16, r);
    auto* dev = static_cast<int*>(device_malloc(64));
    map_data(host.data(), dev, 64);
    update_device(host.data(), 64);
    if (r == 0) {
      acc::mpi({.send_device = true});
      mpi::send(host.data(), 16, mpi::Datatype::kInt, 1, 4, w);
    } else if (r == 1) {
      acc::mpi({.recv_device = true});
      mpi::recv(host.data(), 16, mpi::Datatype::kInt, 0, 4, w);
      update_self(host.data(), 64);
      EXPECT_EQ(host[7], 0);
    }
    unmap_data(host.data());
    device_free(dev);
  });
}

}  // namespace
}  // namespace impacc::acc
