// Shared assertions for runtime-level tests.
#pragma once

#include <gtest/gtest.h>

#include "core/launch.h"

// Stray-message quiescence check (DESIGN.md section 12): after any run —
// clean or recovered — no matcher entry may be half-matched and no
// handler command may sit undrained. Assert this at the teardown of every
// integration-style test that holds a LaunchResult.
#define IMPACC_EXPECT_QUIESCENT(result)                       \
  EXPECT_EQ((result).stray_messages, 0u)                      \
      << "stray messages after teardown:\n" << (result).stray_report
