// Observability tests (ISSUE 3): metrics registry primitives, snapshot
// exporters, spec parsing, TaskStats/ PinnedPool stat invariants, the
// logging prefix, and launch-level integration — flow-linked trace rows,
// counter tracks, and the reconciliation of per-phase histograms with
// TaskStats totals.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "core/pinned_pool.h"
#include "impacc.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace impacc::obs {
namespace {

TEST(Histogram, SummarizesCountSumMinMax) {
  Histogram h(HistUnit::kSeconds);
  EXPECT_EQ(h.summarize().count, 0u);
  EXPECT_DOUBLE_EQ(h.summarize().min, 0.0);  // empty: no infinities leak
  h.record(1e-3);
  h.record(2e-3);
  h.record(4e-3);
  const HistogramSummary s = h.summarize();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 7e-3);
  EXPECT_DOUBLE_EQ(s.min, 1e-3);
  EXPECT_DOUBLE_EQ(s.max, 4e-3);
  // Quantiles are interpolated within power-of-two buckets but always
  // clamped to the observed range.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p50, s.max);
  EXPECT_GE(s.p99, s.p50);
  EXPECT_LE(s.p99, s.max);
}

TEST(Histogram, QuantilesOfUniformSamplesLandInBucket) {
  Histogram h(HistUnit::kCount);
  for (int i = 1; i <= 1000; ++i) h.record(i);
  const HistogramSummary s = h.summarize();
  EXPECT_EQ(s.count, 1000u);
  // ~2x bucket resolution: p50 of 1..1000 is 500, its bucket is [512,1024)
  // or [256,512); either way within a factor of two.
  EXPECT_GT(s.p50, 250.0);
  EXPECT_LT(s.p50, 1000.0);
  EXPECT_GT(s.p95, s.p50);
  EXPECT_LE(s.p99, 1000.0);
}

TEST(Histogram, IgnoresSignAndNanGracefully) {
  Histogram h(HistUnit::kSeconds);
  h.record(0.0);
  h.record(-1.0);  // negative: clamped into bucket 0, still counted
  const HistogramSummary s = h.summarize();
  EXPECT_EQ(s.count, 2u);
}

TEST(Registry, FindOrCreateReturnsStableHandles) {
  Registry reg;
  Counter* c1 = reg.counter("a.b");
  Counter* c2 = reg.counter("a.b");
  EXPECT_EQ(c1, c2);
  c1->add(3);
  EXPECT_EQ(c2->value(), 3u);
  Gauge* g = reg.gauge("a.g");
  g->set(2.5);
  g->add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
  Histogram* h1 = reg.histogram("a.h", HistUnit::kBytes);
  Histogram* h2 = reg.histogram("a.h", HistUnit::kBytes);
  EXPECT_EQ(h1, h2);
}

TEST(Registry, SnapshotIsSortedAndAddressable) {
  Registry reg;
  reg.counter("z.last")->add(7);
  reg.gauge("a.first")->set(1.5);
  reg.histogram("m.mid", HistUnit::kSeconds)->record(2.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "a.first");
  EXPECT_EQ(snap.entries[2].name, "z.last");
  EXPECT_DOUBLE_EQ(snap.value("z.last"), 7.0);
  EXPECT_DOUBLE_EQ(snap.value("a.first"), 1.5);
  // Histogram sub-values via the ".field" suffix.
  EXPECT_DOUBLE_EQ(snap.value("m.mid.count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("m.mid.sum"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("m.mid.min"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(snap.value("m.mid.bogus", -2.0), -2.0);
}

TEST(Snapshot, JsonAndPrometheusFormats) {
  Registry reg;
  reg.counter("mpi.msgs.internode")->add(4);
  reg.gauge("core.makespan_seconds")->set(0.25);
  reg.histogram("mpi.wait.seconds", HistUnit::kSeconds)->record(1e-3);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"mpi.msgs.internode\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"core.makespan_seconds\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"mpi.wait.seconds.count\": 1"), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("impacc_mpi_msgs_internode 4"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE impacc_mpi_msgs_internode counter"),
            std::string::npos);
  EXPECT_NE(prom.find("impacc_mpi_wait_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("impacc_mpi_wait_seconds_count 1"), std::string::npos);
}

TEST(Snapshot, WriteFileRoundTrip) {
  Registry reg;
  reg.counter("a.b")->add(1);
  const MetricsSnapshot snap = reg.snapshot();
  const std::string path = "/tmp/impacc_obs_test_metrics.json";
  ASSERT_TRUE(snap.write_file(path, SnapshotFormat::kJson));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(buf[0], '{');
  EXPECT_NE(std::string(buf).find("\"a.b\": 1"), std::string::npos);
  EXPECT_FALSE(snap.write_file("/nonexistent-dir/x.json",
                               SnapshotFormat::kJson));
}

TEST(MetricsSpec, ParsesPathAndFormat) {
  EXPECT_EQ(parse_metrics_spec("m.json").path, "m.json");
  EXPECT_EQ(parse_metrics_spec("m.json").format, SnapshotFormat::kJson);
  EXPECT_EQ(parse_metrics_spec("m.prom,prom").path, "m.prom");
  EXPECT_EQ(parse_metrics_spec("m.prom,prom").format,
            SnapshotFormat::kPrometheus);
  EXPECT_EQ(parse_metrics_spec("m.txt,prometheus").format,
            SnapshotFormat::kPrometheus);
  EXPECT_EQ(parse_metrics_spec("-").path, "-");
  EXPECT_EQ(parse_metrics_spec("-,prom").path, "-");
  // Unknown suffix: the comma is part of the filename.
  EXPECT_EQ(parse_metrics_spec("weird,name").path, "weird,name");
}

}  // namespace
}  // namespace impacc::obs

namespace impacc::core {
namespace {

TEST(TaskStats, PlusEqualsSumsEveryField) {
  // The static_assert in config.cpp pins sizeof(TaskStats); this test pins
  // the semantics: every field participates in operator+=.
  TaskStats a;
  a.kernel_busy = 1;
  for (int i = 0; i < 6; ++i) {
    a.copy_time[static_cast<std::size_t>(i)] = 10.0 + i;
    a.copy_count[static_cast<std::size_t>(i)] = 20u + static_cast<unsigned>(i);
  }
  a.mpi_wait = 2;
  a.msgs_sent = 3;
  a.msgs_recv = 4;
  a.bytes_sent = 5;
  a.heap_aliases = 6;
  a.chunked_msgs = 7;
  a.present_cache_hits = 8;
  a.present_cache_misses = 9;

  TaskStats b;
  b.kernel_busy = 100;
  for (int i = 0; i < 6; ++i) {
    b.copy_time[static_cast<std::size_t>(i)] = 1000.0 + i;
    b.copy_count[static_cast<std::size_t>(i)] =
        2000u + static_cast<unsigned>(i);
  }
  b.mpi_wait = 200;
  b.msgs_sent = 300;
  b.msgs_recv = 400;
  b.bytes_sent = 500;
  b.heap_aliases = 600;
  b.chunked_msgs = 700;
  b.present_cache_hits = 800;
  b.present_cache_misses = 900;

  a += b;
  EXPECT_DOUBLE_EQ(a.kernel_busy, 101.0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.copy_time[static_cast<std::size_t>(i)],
                     1010.0 + 2 * i);
    EXPECT_EQ(a.copy_count[static_cast<std::size_t>(i)],
              2020u + 2 * static_cast<unsigned>(i));
  }
  EXPECT_DOUBLE_EQ(a.mpi_wait, 202.0);
  EXPECT_EQ(a.msgs_sent, 303u);
  EXPECT_EQ(a.msgs_recv, 404u);
  EXPECT_EQ(a.bytes_sent, 505u);
  EXPECT_EQ(a.heap_aliases, 606u);
  EXPECT_EQ(a.chunked_msgs, 707u);
  EXPECT_EQ(a.present_cache_hits, 808u);
  EXPECT_EQ(a.present_cache_misses, 909u);
}

TEST(PinnedPoolStats, ConsistentUnderConcurrentAcquireRelease) {
  PinnedPool pool(/*functional=*/false);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t bytes =
            1024u << ((static_cast<unsigned>(i) + static_cast<unsigned>(t)) %
                      4u);
        PinnedPool::Buffer a = pool.acquire(bytes);
        PinnedPool::Buffer b = pool.acquire(bytes * 2);
        pool.release(b);
        pool.release(a);
      }
    });
  }
  for (auto& th : threads) th.join();

  const PinnedPool::Stats s = pool.stats();
  EXPECT_EQ(s.acquires, static_cast<std::uint64_t>(kThreads) * kIters * 2);
  // Every acquire is either a free-list hit or a fresh pin.
  EXPECT_EQ(s.acquires, s.hits + s.buffers_created);
  // Everything was released: nothing is in use, and the peak saw at least
  // one thread's two concurrent buffers.
  EXPECT_EQ(s.bytes_in_use, 0u);
  EXPECT_GE(s.bytes_in_use_peak, 3 * 1024u);
  // Retained free bytes never exceed what was ever allocated.
  EXPECT_LE(s.bytes_retained, s.bytes_allocated);
}

}  // namespace
}  // namespace impacc::core

namespace impacc::log {
namespace {

TEST(Log, PrefixCarriesTimestampAndContext) {
  set_level(Level::kInfo);
  set_context_provider(
      +[](char* buf, std::size_t cap) -> int {
        return std::snprintf(buf, cap, "n7/t42");
      });
  testing::internal::CaptureStderr();
  IMPACC_LOG_INFO("hello %d", 5);
  std::string out = testing::internal::GetCapturedStderr();
  set_context_provider(nullptr);
  set_level(Level::kWarn);
  // "[impacc HH:MM:SS.mmm I n7/t42] hello 5"
  ASSERT_NE(out.find("[impacc "), std::string::npos);
  EXPECT_NE(out.find(" I n7/t42] hello 5"), std::string::npos);
  // Timestamp shape: 2 colons and a dot inside the bracket prefix.
  const std::size_t bracket = out.find(']');
  ASSERT_NE(bracket, std::string::npos);
  const std::string prefix = out.substr(0, bracket);
  EXPECT_EQ(std::count(prefix.begin(), prefix.end(), ':'), 2);
  EXPECT_NE(prefix.find('.'), std::string::npos);
}

TEST(Log, NoContextProviderOmitsField) {
  set_level(Level::kWarn);
  set_context_provider(nullptr);
  testing::internal::CaptureStderr();
  IMPACC_LOG_WARN("plain");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find(" W] plain"), std::string::npos);
}

}  // namespace
}  // namespace impacc::log

namespace impacc {
namespace {

core::LaunchOptions staged_opts() {
  core::LaunchOptions o;
  o.cluster = sim::make_system("titan", 2);
  o.mode = core::ExecMode::kModelOnly;
  o.scheduler_workers = 1;
  o.features.gpudirect_rdma = false;  // force host staging
  return o;
}

/// 2-node staged device-to-device exchange: `msgs` rendezvous messages of
/// `bytes` each, device buffers on both ends.
void staged_p2p_body(std::uint64_t bytes, int msgs) {
  auto w = mpi::world();
  const int r = mpi::comm_rank(w);
  auto* buf = static_cast<char*>(node_malloc(bytes));
  acc::copyin(buf, bytes);
  const int count = static_cast<int>(bytes);
  for (int m = 0; m < msgs; ++m) {
    if (r == 0) {
      acc::mpi({.send_device = true});
      mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
    } else if (r == 1) {
      acc::mpi({.recv_device = true});
      mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
    }
  }
  acc::del(buf);
  node_free(buf);
}

TEST(ObsIntegration, StagedP2pTraceHasFlowsAndCounters) {
  auto o = staged_opts();
  o.trace_path = "-";
  o.metrics_path = "-";
  constexpr int kMsgs = 3;
  const auto result =
      launch(o, [] { staged_p2p_body(8 << 20, kMsgs); });
  ASSERT_NE(result.trace, nullptr);

  int flow_starts = 0;
  int flow_finishes = 0;
  bool saw_handler_depth = false;
  bool saw_pinned = false;
  bool saw_stream_depth = false;
  std::vector<std::uint64_t> start_ids;
  std::vector<std::uint64_t> finish_ids;
  for (const auto& e : result.trace->snapshot()) {
    if (e.phase == 's') {
      ++flow_starts;
      start_ids.push_back(e.flow_id);
    }
    if (e.phase == 'f') {
      ++flow_finishes;
      finish_ids.push_back(e.flow_id);
    }
    if (e.phase == 'C') {
      if (e.name == "handler queue depth") saw_handler_depth = true;
      if (e.name == "pinned pool bytes") saw_pinned = true;
      if (e.name.find("depth") != std::string::npos &&
          e.name.rfind("dev", 0) == 0) {
        saw_stream_depth = true;
      }
    }
  }
  // One flow pair per internode message, ids matching 1:1.
  EXPECT_EQ(flow_starts, kMsgs);
  EXPECT_EQ(flow_finishes, kMsgs);
  std::sort(start_ids.begin(), start_ids.end());
  std::sort(finish_ids.begin(), finish_ids.end());
  EXPECT_EQ(start_ids, finish_ids);
  EXPECT_TRUE(saw_handler_depth);
  EXPECT_TRUE(saw_pinned);
  EXPECT_TRUE(saw_stream_depth);

  // The serialized JSON carries the flow/counter phases.
  const std::string json = result.trace->to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  // Metrics side of the same run.
  const obs::MetricsSnapshot& m = result.metrics;
  ASSERT_FALSE(m.empty());
  EXPECT_DOUBLE_EQ(m.value("mpi.msgs.internode"), kMsgs);
  EXPECT_DOUBLE_EQ(m.value("mpi.msg.bytes.count"), kMsgs);
  EXPECT_DOUBLE_EQ(m.value("mpi.msg.bytes.max"),
                   static_cast<double>(8 << 20));
  EXPECT_EQ(m.value("mpi.msg.phase.total.count"), kMsgs);
  EXPECT_GT(m.value("mpi.msg.phase.wire.sum"), 0.0);
  EXPECT_GT(m.value("mpi.msg.phase.stage_dtoh.sum"), 0.0);
  EXPECT_GT(m.value("mpi.msg.phase.stage_htod.sum"), 0.0);
  EXPECT_GT(m.value("core.pinned_pool.bytes_in_use_peak"), 0.0);
}

TEST(ObsIntegration, HistogramsReconcileWithTaskStats) {
  auto o = staged_opts();
  o.metrics_path = "-";  // metrics only, no tracing
  const auto result = launch(o, [] { staged_p2p_body(4 << 20, 2); });
  const obs::MetricsSnapshot& m = result.metrics;
  ASSERT_FALSE(m.empty());

  // Copy accounting goes through core::account_copy, which feeds both
  // TaskStats and the dev.copy.* histograms — the sums must agree exactly
  // (same additions, same order, per path kind).
  const char* slugs[6] = {"htoh",       "htod",        "dtoh",
                          "dtod_peer",  "dtod_staged", "ipc_staged"};
  for (int i = 0; i < 6; ++i) {
    const std::string name = std::string("dev.copy.") + slugs[i];
    EXPECT_NEAR(m.value(name + ".seconds.sum"),
                result.total.copy_time[static_cast<std::size_t>(i)],
                1e-12 + 1e-9 * result.total.copy_time[static_cast<std::size_t>(
                                    i)])
        << name;
    EXPECT_DOUBLE_EQ(
        m.value(name + ".seconds.count"),
        static_cast<double>(
            result.total.copy_count[static_cast<std::size_t>(i)]))
        << name;
    // The end-of-run gauges mirror the same totals.
    EXPECT_DOUBLE_EQ(m.value(name + ".model_count"),
                     static_cast<double>(result.total.copy_count[
                         static_cast<std::size_t>(i)]))
        << name;
  }
  EXPECT_NEAR(m.value("mpi.wait.seconds.sum"), result.total.mpi_wait,
              1e-12 + 1e-9 * result.total.mpi_wait);
  EXPECT_NEAR(m.value("acc.kernel.seconds.sum"), result.total.kernel_busy,
              1e-12);
  EXPECT_DOUBLE_EQ(m.value("mpi.msgs_sent"),
                   static_cast<double>(result.total.msgs_sent));
  EXPECT_DOUBLE_EQ(m.value("core.makespan_seconds"), result.makespan);
  EXPECT_DOUBLE_EQ(m.value("core.num_tasks"),
                   static_cast<double>(result.num_tasks));
  EXPECT_GT(m.value("ult.sched.fibers_spawned"), 0.0);
}

TEST(ObsIntegration, WaitanyWaitAccountingReconciles) {
  // Rank 0 blocks ONLY in waitany (irecv is non-blocking), so a non-zero
  // mpi_wait on its task proves waitany accounts the blocked time, and the
  // reconciliation proves the histogram saw the same additions.
  auto o = staged_opts();
  o.metrics_path = "-";
  constexpr int kMsgs = 3;
  const auto result = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    const int count = 1 << 20;
    if (r == 0) {
      std::vector<mpi::Request> reqs;
      for (int m = 0; m < kMsgs; ++m) {
        reqs.push_back(
            mpi::irecv(nullptr, count, mpi::Datatype::kByte, 1, m, w));
      }
      for (int done = 0; done < kMsgs; ++done) {
        const int idx = mpi::waitany(reqs.data(), kMsgs);
        EXPECT_GE(idx, 0);
      }
    } else if (r == 1) {
      for (int m = 0; m < kMsgs; ++m) {
        mpi::send(nullptr, count, mpi::Datatype::kByte, 0, m, w);
      }
    }
  });
  const obs::MetricsSnapshot& m = result.metrics;
  ASSERT_FALSE(m.empty());
  EXPECT_GT(result.task_stats[0].mpi_wait, 0.0);
  EXPECT_NEAR(m.value("mpi.wait.seconds.sum"), result.total.mpi_wait,
              1e-12 + 1e-9 * result.total.mpi_wait);
  EXPECT_GE(m.value("mpi.wait.seconds.count"), static_cast<double>(kMsgs));
}

TEST(ObsIntegration, ProbeWaitAccountingReconciles) {
  // Rank 0 blocks in probe before the message exists; the follow-up recv
  // finds it already delivered, so the blocked time belongs to the probe.
  auto o = staged_opts();
  o.metrics_path = "-";
  const auto result = launch(o, [] {
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    const int count = 1 << 20;
    if (r == 0) {
      mpi::MpiStatus st;
      mpi::probe(1, 777, w, &st);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.bytes, static_cast<std::uint64_t>(count));
      mpi::recv(nullptr, count, mpi::Datatype::kByte, 1, 777, w);
    } else if (r == 1) {
      mpi::send(nullptr, count, mpi::Datatype::kByte, 0, 777, w);
    }
  });
  const obs::MetricsSnapshot& m = result.metrics;
  ASSERT_FALSE(m.empty());
  EXPECT_GT(result.task_stats[0].mpi_wait, 0.0);
  EXPECT_NEAR(m.value("mpi.wait.seconds.sum"), result.total.mpi_wait,
              1e-12 + 1e-9 * result.total.mpi_wait);
  EXPECT_DOUBLE_EQ(m.value("mpi.probes"), 1.0);
}

TEST(ObsIntegration, DisabledObservabilityIsBitForBitIdentical) {
  // Flag-off runs must not see any timing perturbation from the
  // instrumentation: same workload with and without metrics produces
  // bit-identical virtual times.
  auto run = [](bool metrics) {
    auto o = staged_opts();
    if (metrics) o.metrics_path = "-";
    return launch(o, [] { staged_p2p_body(2 << 20, 2); });
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_TRUE(off.metrics.empty());
  EXPECT_FALSE(on.metrics.empty());
  ASSERT_EQ(off.task_times.size(), on.task_times.size());
  for (std::size_t i = 0; i < off.task_times.size(); ++i) {
    EXPECT_EQ(off.task_times[i], on.task_times[i]);  // exact, not NEAR
  }
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.total.mpi_wait, on.total.mpi_wait);
}

TEST(ObsIntegration, MetricsFileExport) {
  const std::string path = "/tmp/impacc_obs_launch_metrics.json";
  std::remove(path.c_str());
  auto o = staged_opts();
  o.metrics_path = path;
  launch(o, [] { staged_p2p_body(1 << 20, 1); });
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(buf[0], '{');
}

}  // namespace
}  // namespace impacc
