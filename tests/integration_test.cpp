// Integration tests asserting the paper's qualitative results hold in the
// reproduction: NUMA pinning gains (Fig. 8), point-to-point bandwidth
// ordering (Fig. 9), scaling behaviour (Figs. 10-15 shapes), and the
// ablations from DESIGN.md.
#include <gtest/gtest.h>

#include "apps/dgemm.h"
#include "apps/ep.h"
#include "apps/jacobi.h"
#include "apps/lulesh/driver.h"
#include "impacc.h"
#include "sim/costmodel.h"
#include "test_helpers.h"
#include "ult/tsan_fiber.h"

namespace impacc {
namespace {

core::LaunchOptions opts(const char* system, int nodes,
                         core::Framework fw = core::Framework::kImpacc) {
  core::LaunchOptions o;
  o.cluster = sim::make_system(system, nodes);
  o.framework = fw;
  o.mode = core::ExecMode::kModelOnly;  // timing-focused tests
  o.scheduler_workers = 1;
  return o;
}

/// Measured time of an HtoD transfer of `bytes` under a pinning policy.
sim::Time h2d_time(const char* system, bool pinning, std::uint64_t bytes) {
  auto o = opts(system, 1);
  o.features.numa_pinning = pinning;
  const auto result = launch(o, [bytes] {
    if (mpi::comm_rank(mpi::world()) != 1) return;  // device 1: far socket
    auto* buf = static_cast<char*>(node_malloc(bytes));
    acc::copyin(buf, bytes);
    acc::del(buf);
    node_free(buf);
  });
  IMPACC_EXPECT_QUIESCENT(result);
  return result.task_times[1];
}

TEST(Fig8Shape, NumaFriendlyPinningBeatsUnfriendlyUpTo3x) {
  // Fig. 8: NUMA-friendly configurations deliver higher bandwidth, up to
  // 3.5x. (Task 1 lands on the wrong socket under round-robin placement.)
  for (const char* system : {"psg", "beacon"}) {
    const sim::Time near = h2d_time(system, true, 64 << 20);
    const sim::Time far = h2d_time(system, false, 64 << 20);
    EXPECT_GT(far / near, 2.0) << system;
    EXPECT_LT(far / near, 4.0) << system;
  }
}

/// Marginal intra-node p2p transfer time between ranks 0 and 1 with
/// buffers on device or host: run 1 and 4 messages and report the slope,
/// which cancels the one-time setup (copyin, mapping) costs.
sim::Time p2p_time(const char* system, core::Framework fw, bool device_bufs,
                   std::uint64_t bytes) {
  auto run = [&](int msgs) {
    auto o = opts(system, 1);
    o.framework = fw;
    const auto result = launch(o, [device_bufs, bytes, msgs] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      if (r > 1) return;
      auto* buf = static_cast<char*>(node_malloc(bytes));
      if (device_bufs) acc::copyin(buf, bytes);
      const int count = static_cast<int>(bytes);
      for (int m = 0; m < msgs; ++m) {
        if (r == 0) {
          if (device_bufs) acc::mpi({.send_device = true});
          mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
        } else {
          if (device_bufs) acc::mpi({.recv_device = true});
          mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
        }
      }
      if (device_bufs) acc::del(buf);
      node_free(buf);
    });
    IMPACC_EXPECT_QUIESCENT(result);
    return std::max(result.task_times[0], result.task_times[1]);
  };
  return (run(4) - run(1)) / 3.0;
}

TEST(Fig9Shape, IntraNodeHostToHostFusionWins) {
  // Fig. 9 (a)(d): IMPACC's fused single copy beats the baseline's
  // IPC-staged double copy.
  for (const char* system : {"psg", "beacon"}) {
    const sim::Time im = p2p_time(system, core::Framework::kImpacc, false,
                                  16 << 20);
    const sim::Time base = p2p_time(system, core::Framework::kMpiOpenacc,
                                    false, 16 << 20);
    EXPECT_LT(im, base) << system;
    EXPECT_GT(base / im, 1.5) << system;
  }
}

TEST(Fig9Shape, PsgDeviceToDeviceAboutEightTimesFaster) {
  // Fig. 9 (c): ~8x on PSG thanks to the direct PCIe peer copy. The
  // baseline must stage DtoH + HtoH (IPC) + HtoD with explicit updates.
  const std::uint64_t bytes = 64 << 20;
  const sim::Time im = p2p_time("psg", core::Framework::kImpacc, true, bytes);

  // Baseline equivalent: explicit update self/device around a host
  // message, measured marginally like p2p_time.
  auto base_run = [bytes](int msgs) {
    auto o = opts("psg", 1, core::Framework::kMpiOpenacc);
    const auto result = launch(o, [bytes, msgs] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      if (r > 1) return;
      auto* buf = static_cast<char*>(node_malloc(bytes));
      acc::copyin(buf, bytes);
      const int count = static_cast<int>(bytes);
      for (int m = 0; m < msgs; ++m) {
        if (r == 0) {
          acc::update_self(buf, bytes);
          mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
        } else {
          mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
          acc::update_device(buf, bytes);
        }
      }
      acc::del(buf);
      node_free(buf);
    });
    IMPACC_EXPECT_QUIESCENT(result);
    return std::max(result.task_times[0], result.task_times[1]);
  };
  const sim::Time base_t = (base_run(4) - base_run(1)) / 3.0;
  EXPECT_GT(base_t / im, 5.0);
  EXPECT_LT(base_t / im, 12.0);
}

TEST(Fig9Shape, TitanInternodeRdmaBeatsStaging) {
  // Fig. 9 (g)-(i): GPUDirect RDMA removes the host staging copies.
  const std::uint64_t bytes = 16 << 20;
  auto run = [bytes](bool rdma) {
    auto o = opts("titan", 2);
    o.features.gpudirect_rdma = rdma;
    const auto result = launch(o, [bytes] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      auto* buf = static_cast<char*>(node_malloc(bytes));
      acc::copyin(buf, bytes);
      const int count = static_cast<int>(bytes);
      if (r == 0) {
        acc::mpi({.send_device = true});
        mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
      } else {
        acc::mpi({.recv_device = true});
        mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
      }
      acc::del(buf);
      node_free(buf);
    });
    IMPACC_EXPECT_QUIESCENT(result);
    return result.makespan;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(ChunkPipelineShape, TitanStagedTransfersOverlapAndConvergeToSlowestStage) {
  // ISSUE 2 tentpole: a 64 MiB internode device-to-device transfer on Titan
  // with GPUDirect off stages DtoH -> wire -> HtoD. Monolithic, the stages
  // serialize; chunked, they overlap and the transfer converges to the
  // busy time of the slowest stage.
  const std::uint64_t bytes = 64 << 20;
  // makespan of the D2D exchange with `msgs` rendezvous messages; msgs == 0
  // measures the setup (malloc/copyin/teardown) so the difference isolates
  // the transfer itself.
  auto run = [bytes](bool chunk, std::uint64_t chunk_bytes, int msgs) {
    auto o = opts("titan", 2);
    o.features.gpudirect_rdma = false;  // force the staged path
    o.features.chunk_pipeline = chunk;
    o.chunk_bytes = chunk_bytes;
    const auto result = launch(o, [bytes, msgs] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      auto* buf = static_cast<char*>(node_malloc(bytes));
      acc::copyin(buf, bytes);
      const int count = static_cast<int>(bytes);
      for (int m = 0; m < msgs; ++m) {
        if (r == 0) {
          acc::mpi({.send_device = true});
          mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
        } else {
          acc::mpi({.recv_device = true});
          mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
        }
      }
      acc::del(buf);
      node_free(buf);
    });
    IMPACC_EXPECT_QUIESCENT(result);
    return result.makespan;
  };
  auto transfer = [&run](bool chunk, std::uint64_t chunk_bytes) {
    return run(chunk, chunk_bytes, 1) - run(chunk, chunk_bytes, 0);
  };

  const sim::Time mono = transfer(false, 0);
  const sim::Time chunk_1m = transfer(true, 1 << 20);
  const sim::Time chunk_256k = transfer(true, 256 << 10);
  EXPECT_LT(chunk_1m, mono);
  EXPECT_GT(mono / chunk_256k, 2.0);

  // Convergence: at 256 KiB chunks the transfer sits just above the busy
  // time of the slowest stage (PCIe at this chunk size, where per-chunk
  // latency matters), never more than 5% over.
  const auto cluster = sim::make_system("titan", 2);
  const sim::LinkModel pcie = cluster.nodes[0].devices[0].pcie;
  const sim::LinkModel wire = sim::wire_link(cluster.fabric);
  const sim::Time bound =
      std::max(sim::chunked_stage_total(pcie, bytes, 256 << 10),
               sim::chunked_stage_total(wire, bytes, 256 << 10));
  EXPECT_GT(chunk_256k, bound);
  EXPECT_LT(chunk_256k / bound, 1.05);

  // Flag off — and flag on with chunks at least the message size — must
  // reproduce today's monolithic timing bit-for-bit.
  EXPECT_EQ(run(false, 0, 1), run(true, bytes, 1));
  EXPECT_EQ(run(false, 0, 1), run(false, 256 << 10, 1));
}

// --- Scaling shapes -----------------------------------------------------------------

TEST(Fig10Shape, DgemmImpaccScalesWhereBaselineDegrades) {
  // Fig. 10 (a): with 1K matrices the baseline loses its speedup at 8
  // tasks; IMPACC keeps scaling fairly.
  apps::DgemmConfig cfg;
  cfg.n = 1024;
  auto time_for = [&cfg](core::Framework fw, const char* sys, int nodes) {
    return run_dgemm(opts(sys, nodes, fw), cfg).launch.makespan;
  };
  // Single-task baseline on PSG (the paper's normalization).
  auto single = opts("psg", 1, core::Framework::kMpiOpenacc);
  single.device_type_mask = core::kAccDeviceNvidia;
  single.cluster.nodes[0].devices.resize(1);
  const sim::Time t1 =
      run_dgemm(single, cfg).launch.makespan;

  const sim::Time im8 = time_for(core::Framework::kImpacc, "psg", 1);
  const sim::Time base8 = time_for(core::Framework::kMpiOpenacc, "psg", 1);
  const double speedup_im = t1 / im8;
  const double speedup_base = t1 / base8;
  EXPECT_GT(speedup_im, speedup_base);
  EXPECT_GT(speedup_im, 1.0);  // IMPACC still gains at 8 tasks
}

TEST(Fig12Shape, EpScalesLinearlyAndFrameworksTie) {
  // Fig. 12: EP has almost no communication; IMPACC == MPI+OpenACC and
  // speedup is near-linear for large classes.
  apps::EpConfig cfg;
  cfg.m = 30;  // class B
  auto one = opts("psg", 1);
  one.cluster.nodes[0].devices.resize(1);
  const sim::Time t1 = run_ep(one, cfg).launch.makespan;
  const sim::Time t8_im = run_ep(opts("psg", 1), cfg).launch.makespan;
  const sim::Time t8_base =
      run_ep(opts("psg", 1, core::Framework::kMpiOpenacc), cfg).launch.makespan;
  EXPECT_GT(t1 / t8_im, 6.0);  // near-linear on 8 devices
  EXPECT_NEAR(t8_im / t8_base, 1.0, 0.05);  // "almost same performances"
}

TEST(Fig13Shape, JacobiCommunicationDominatesAtScaleAndImpaccWins) {
  apps::JacobiConfig cfg;
  cfg.n = 2048;
  cfg.iterations = 5;
  const sim::Time im =
      run_jacobi(opts("psg", 1), cfg).launch.makespan;
  const sim::Time base =
      run_jacobi(opts("psg", 1, core::Framework::kMpiOpenacc), cfg)
          .launch.makespan;
  EXPECT_LT(im, base);
}

TEST(Fig15Shape, LuleshBeaconShowsSmallImpaccOverheadOrParity) {
  // Fig. 15 (Beacon): IMPACC within ~±10% of the baseline for the
  // host-to-host-only LULESH (paper reports ~5% regression).
  apps::LuleshConfig cfg;
  cfg.s = 8;
  cfg.iterations = 2;
  const sim::Time im = run_lulesh(opts("beacon", 2), cfg).launch.makespan;
  const sim::Time base =
      run_lulesh(opts("beacon", 2, core::Framework::kMpiOpenacc), cfg)
          .launch.makespan;
  EXPECT_NEAR(im / base, 1.0, 0.25);
}

// --- Ablations ------------------------------------------------------------------------

TEST(Ablation, EachFeatureContributesToDgemm) {
  apps::DgemmConfig cfg;
  cfg.n = 512;
  const sim::Time full = run_dgemm(opts("psg", 1), cfg).launch.makespan;

  auto with = [&cfg](auto mutate) {
    auto o = opts("psg", 1);
    mutate(o.features);
    return run_dgemm(o, cfg).launch.makespan;
  };
  const sim::Time no_alias =
      with([](core::Features& f) { f.heap_aliasing = false; });
  const sim::Time no_fusion =
      with([](core::Features& f) { f.message_fusion = false; });
  EXPECT_GT(no_alias, full);
  EXPECT_GT(no_fusion, full);
}

TEST(Ablation, SerializedInternodeMpiHurtsScaling) {
  // Section 3.7: without MPI_THREAD_MULTIPLE the runtime serializes
  // internode communication per node. The per-node MPI lock is granted
  // in real arrival order, so individual makespans jitter with thread
  // scheduling; a communication-heavy workload and a best-of-three on
  // each side keep the comparison out of the noise.
#if IMPACC_TSAN
  // The contrast rides on real lock-arrival order; TSan serializes
  // threads so heavily that the serialized-vs-multiple gap drowns in
  // scheduling noise. The race coverage TSan is here for lives in the
  // runtime itself, not in this timing property.
  GTEST_SKIP() << "timing-contrast assertion is noise under TSan";
#endif
  apps::JacobiConfig cfg;
  cfg.n = 4096;
  cfg.iterations = 8;
  auto best = [&cfg](bool thread_multiple) {
    sim::Time best_time = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto o = opts("beacon", 4);
      o.cluster.mpi_thread_multiple = thread_multiple;
      const sim::Time t = run_jacobi(o, cfg).launch.makespan;
      if (rep == 0 || t < best_time) best_time = t;
    }
    return best_time;
  };
  EXPECT_GE(best(false), best(true));
}

TEST(Ablation, PinningOffSlowsTransferHeavyRuns) {
  apps::JacobiConfig cfg;
  cfg.n = 2048;
  cfg.iterations = 3;
  auto o_off = opts("beacon", 1);
  o_off.features.numa_pinning = false;
  const sim::Time on = run_jacobi(opts("beacon", 1), cfg).launch.makespan;
  const sim::Time off = run_jacobi(o_off, cfg).launch.makespan;
  EXPECT_GT(off, on);
}

// --- Model-only scale ------------------------------------------------------------------

TEST(Scale, TitanSizedModelOnlyRunCompletes) {
  // 512 nodes = 512 tasks through the full runtime in model-only mode; a
  // smoke check that Titan-scale benchmark points are feasible.
  apps::EpConfig cfg;
  cfg.m = 36;
  const auto r = run_ep(opts("titan", 512), cfg);
  EXPECT_EQ(r.launch.num_tasks, 512);
  EXPECT_GT(r.launch.makespan, 0);
}

TEST(Scale, MakespanScalesDownWithMoreNodes) {
  apps::EpConfig cfg;
  cfg.m = 36;
  const sim::Time t64 = run_ep(opts("titan", 64), cfg).launch.makespan;
  const sim::Time t256 = run_ep(opts("titan", 256), cfg).launch.makespan;
  EXPECT_GT(t64 / t256, 3.0);  // near-linear for EP
}

}  // namespace
}  // namespace impacc
