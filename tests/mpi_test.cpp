// Tests for the threaded-MPI library: point-to-point semantics,
// collectives, communicators, Cartesian topology.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

// GoogleTest < 1.12 has no GTEST_FLAG_SET; fall back to assigning the
// legacy ::testing::FLAGS_gtest_* variable directly.
#ifndef GTEST_FLAG_SET
#define GTEST_FLAG_SET(name, value) \
  (void)(::testing::GTEST_FLAG(name) = (value))
#endif

#include "impacc.h"
#include "ult/sync.h"

namespace impacc::mpi {
namespace {

core::LaunchOptions options_psg() {
  core::LaunchOptions o;
  o.cluster = sim::make_psg();
  o.scheduler_workers = 1;  // keep gtest assertions single-threaded
  return o;
}

core::LaunchOptions options_titan(int nodes) {
  core::LaunchOptions o;
  o.cluster = sim::make_titan(nodes);
  o.scheduler_workers = 1;
  return o;
}

TEST(Mpi, WorldRankAndSize) {
  std::vector<int> seen(8, 0);
  launch(options_psg(), [&seen] {
    auto w = world();
    EXPECT_EQ(comm_size(w), 8);  // PSG: 8 GPUs -> 8 tasks
    const int r = comm_rank(w);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 8);
    seen[static_cast<std::size_t>(r)] += 1;
  });
  for (int c : seen) EXPECT_EQ(c, 1);  // every rank exactly once
}

TEST(Mpi, BlockingSendRecvCarriesDataAndStatus) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      std::vector<int> data(50);
      std::iota(data.begin(), data.end(), 100);
      send(data.data(), 50, Datatype::kInt, 1, 42, w);
    } else if (r == 1) {
      std::vector<int> data(64, 0);  // larger recv buffer is legal
      MpiStatus st;
      recv(data.data(), 64, Datatype::kInt, 0, 42, w, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, 200u);
      EXPECT_EQ(data[0], 100);
      EXPECT_EQ(data[49], 149);
    }
  });
}

TEST(Mpi, NonOvertakingOrderSameTag) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      for (int i = 0; i < 20; ++i) send(&i, 1, Datatype::kInt, 1, 5, w);
    } else if (r == 1) {
      for (int i = 0; i < 20; ++i) {
        int v = -1;
        recv(&v, 1, Datatype::kInt, 0, 5, w);
        EXPECT_EQ(v, i);  // MPI FIFO per (src, dst, tag)
      }
    }
  });
}

TEST(Mpi, TagSelectionAcrossReorderedSends) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      const int a = 1;
      const int b = 2;
      send(&a, 1, Datatype::kInt, 1, 10, w);
      send(&b, 1, Datatype::kInt, 1, 20, w);
    } else if (r == 1) {
      int v20 = 0;
      int v10 = 0;
      recv(&v20, 1, Datatype::kInt, 0, 20, w);  // picks the tag-20 message
      recv(&v10, 1, Datatype::kInt, 0, 10, w);
      EXPECT_EQ(v20, 2);
      EXPECT_EQ(v10, 1);
    }
  });
}

TEST(Mpi, WildcardSourceAndTag) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    if (r == 0) {
      int sum = 0;
      for (int i = 1; i < size; ++i) {
        int v = 0;
        MpiStatus st;
        recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag, w, &st);
        EXPECT_EQ(st.source, v);   // each task sends its own rank
        EXPECT_EQ(st.tag, v + 7);  // with tag rank+7
        sum += v;
      }
      EXPECT_EQ(sum, size * (size - 1) / 2);
    } else {
      send(&r, 1, Datatype::kInt, 0, r + 7, w);
    }
  });
}

TEST(Mpi, EagerSendBufferReusableImmediately) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      int v = 111;
      send(&v, 1, Datatype::kInt, 1, 1, w);  // eager: completes pre-match
      v = 999;  // reuse must not corrupt the in-flight message
      send(&v, 1, Datatype::kInt, 1, 2, w);
    } else if (r == 1) {
      int a = 0;
      int b = 0;
      recv(&a, 1, Datatype::kInt, 0, 1, w);
      recv(&b, 1, Datatype::kInt, 0, 2, w);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 999);
    }
  });
}

TEST(Mpi, LargeRendezvousMessage) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    constexpr int kN = 1 << 16;  // 256 KB > eager threshold
    if (r == 2) {
      std::vector<int> data(kN);
      std::iota(data.begin(), data.end(), 0);
      send(data.data(), kN, Datatype::kInt, 3, 9, w);
    } else if (r == 3) {
      std::vector<int> data(kN, -1);
      recv(data.data(), kN, Datatype::kInt, 2, 9, w);
      EXPECT_EQ(data[0], 0);
      EXPECT_EQ(data[kN - 1], kN - 1);
    }
  });
}

TEST(Mpi, IsendIrecvWaitallAndTest) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    const int peer = r ^ 1;
    if (peer >= size) return;
    std::vector<double> out(128, static_cast<double>(r));
    std::vector<double> in(128, -1);
    Request rr = irecv(in.data(), 128, Datatype::kDouble, peer, 3, w);
    Request sr = isend(out.data(), 128, Datatype::kDouble, peer, 3, w);
    std::vector<Request> reqs = {sr, rr};
    waitall(reqs);
    EXPECT_DOUBLE_EQ(in[64], static_cast<double>(peer));
    // A consumed request behaves like MPI_REQUEST_NULL.
    EXPECT_TRUE(reqs[0].null());
    Request null_req;
    EXPECT_TRUE(test(null_req));
  });
}

TEST(Mpi, SendToSelf) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    int v = r * 3;
    int got = -1;
    Request rr = irecv(&got, 1, Datatype::kInt, r, 8, w);
    send(&v, 1, Datatype::kInt, r, 8, w);
    wait(rr);
    EXPECT_EQ(got, r * 3);
  });
}

TEST(Mpi, InternodeTransfersOnTitan) {
  launch(options_titan(4), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    EXPECT_EQ(size, 4);  // 1 GPU per Titan node
    // Ring of large (rendezvous) messages across nodes.
    std::vector<long> out(10000, r);
    std::vector<long> in(10000, -1);
    sendrecv(out.data(), 10000, Datatype::kLong, (r + 1) % size, 1, in.data(),
             10000, Datatype::kLong, (r + size - 1) % size, 1, w);
    EXPECT_EQ(in[0], (r + size - 1) % size);
    EXPECT_EQ(in[9999], (r + size - 1) % size);
  });
}

// --- Collectives, parameterized over task layouts --------------------------------

struct CollectiveCase {
  const char* system;
  int nodes;
};

class Collectives : public ::testing::TestWithParam<CollectiveCase> {
 protected:
  core::LaunchOptions opts() {
    core::LaunchOptions o;
    o.cluster = sim::make_system(GetParam().system, GetParam().nodes);
    o.scheduler_workers = 1;
    return o;
  }
};

TEST_P(Collectives, Barrier) {
  ult::SpinLock lock;
  int arrived = 0;
  bool violation = false;
  launch(opts(), [&] {
    auto w = world();
    const int size = comm_size(w);
    for (int round = 0; round < 3; ++round) {
      lock.lock();
      ++arrived;
      lock.unlock();
      barrier(w);
      lock.lock();
      if (arrived < size * (round + 1)) violation = true;
      lock.unlock();
      barrier(w);
    }
  });
  EXPECT_FALSE(violation);
}

TEST_P(Collectives, BcastFromEveryRoot) {
  launch(opts(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    for (int root = 0; root < std::min(size, 4); ++root) {
      std::vector<int> buf(33, r == root ? root * 100 : -1);
      bcast(buf.data(), 33, Datatype::kInt, root, w);
      EXPECT_EQ(buf[0], root * 100);
      EXPECT_EQ(buf[32], root * 100);
    }
  });
}

TEST_P(Collectives, ReduceAndAllreduce) {
  launch(opts(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    double v[2] = {static_cast<double>(r), 1.0};
    double sum[2] = {0, 0};
    reduce(v, sum, 2, Datatype::kDouble, Op::kSum, 0, w);
    if (r == 0) {
      EXPECT_DOUBLE_EQ(sum[0], size * (size - 1) / 2.0);
      EXPECT_DOUBLE_EQ(sum[1], size);
    }
    double mx = 0;
    double vr = static_cast<double>(r);
    allreduce(&vr, &mx, 1, Datatype::kDouble, Op::kMax, w);
    EXPECT_DOUBLE_EQ(mx, size - 1.0);
    long mn = 0;
    long lr = 10 + r;
    allreduce(&lr, &mn, 1, Datatype::kLong, Op::kMin, w);
    EXPECT_EQ(mn, 10);
  });
}

TEST_P(Collectives, GatherScatterRoundTrip) {
  launch(opts(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    // Root scatters r*10+? chunks; everyone returns them via gather.
    std::vector<int> sbuf;
    if (r == 0) {
      sbuf.resize(static_cast<std::size_t>(size) * 4);
      for (int i = 0; i < size * 4; ++i) sbuf[static_cast<std::size_t>(i)] = i;
    }
    std::vector<int> chunk(4, -1);
    scatter(sbuf.data(), 4, Datatype::kInt, chunk.data(), 4, Datatype::kInt, 0,
            w);
    EXPECT_EQ(chunk[0], r * 4);
    for (auto& c : chunk) c += 1000;
    std::vector<int> gbuf(r == 0 ? static_cast<std::size_t>(size) * 4 : 0);
    gather(chunk.data(), 4, Datatype::kInt, gbuf.data(), 4, Datatype::kInt, 0,
           w);
    if (r == 0) {
      for (int i = 0; i < size * 4; ++i) {
        EXPECT_EQ(gbuf[static_cast<std::size_t>(i)], 1000 + i);
      }
    }
  });
}

TEST_P(Collectives, AllgatherAndAlltoall) {
  launch(opts(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    std::vector<int> mine(2, r);
    std::vector<int> all(static_cast<std::size_t>(size) * 2, -1);
    allgather(mine.data(), 2, Datatype::kInt, all.data(), 2, Datatype::kInt,
              w);
    for (int i = 0; i < size; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * i)], i);
    }
    std::vector<int> out(static_cast<std::size_t>(size));
    std::vector<int> in(static_cast<std::size_t>(size), -1);
    for (int i = 0; i < size; ++i) {
      out[static_cast<std::size_t>(i)] = r * 100 + i;
    }
    alltoall(out.data(), 1, Datatype::kInt, in.data(), 1, Datatype::kInt, w);
    for (int i = 0; i < size; ++i) {
      EXPECT_EQ(in[static_cast<std::size_t>(i)], i * 100 + r);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, Collectives,
    ::testing::Values(CollectiveCase{"psg", 1},      // 8 tasks, one node
                      CollectiveCase{"titan", 5},    // 5 tasks, 5 nodes
                      CollectiveCase{"beacon", 3},   // 12 tasks, 3 nodes
                      CollectiveCase{"hetero", 0})); // Fig. 2 layout

TEST(Mpi, ApplyOpCoversOperators) {
  int a[3] = {1, 4, 0};
  const int b[3] = {3, 2, 0};
  apply_op(a, b, 3, Datatype::kInt, Op::kSum);
  EXPECT_EQ(a[0], 4);
  apply_op(a, b, 3, Datatype::kInt, Op::kMax);
  EXPECT_EQ(a[1], 6);
  int c[2] = {0b1100, 0b1010};
  const int d[2] = {0b1010, 0b0110};
  apply_op(c, d, 2, Datatype::kInt, Op::kBand);
  EXPECT_EQ(c[0], 0b1000);
  apply_op(c, d, 2, Datatype::kInt, Op::kBor);
  EXPECT_EQ(c[1], 0b0110);  // (0b1010 & 0b0110) | 0b0110
  double e[1] = {2.0};
  const double f[1] = {3.0};
  apply_op(e, f, 1, Datatype::kDouble, Op::kProd);
  EXPECT_DOUBLE_EQ(e[0], 6.0);
}

// --- Communicators ----------------------------------------------------------------

TEST(Comm, DupIsolatesMatching) {
  launch(options_psg(), [] {
    auto w = world();
    auto w2 = comm_dup(w);
    const int r = comm_rank(w);
    EXPECT_EQ(comm_rank(w2), r);
    EXPECT_EQ(comm_size(w2), comm_size(w));
    // A message on w2 must not match a recv on w.
    if (r == 0) {
      int v1 = 1;
      int v2 = 2;
      send(&v1, 1, Datatype::kInt, 1, 77, w2);
      send(&v2, 1, Datatype::kInt, 1, 77, w);
    } else if (r == 1) {
      int got_w = 0;
      int got_w2 = 0;
      recv(&got_w, 1, Datatype::kInt, 0, 77, w);
      recv(&got_w2, 1, Datatype::kInt, 0, 77, w2);
      EXPECT_EQ(got_w, 2);
      EXPECT_EQ(got_w2, 1);
    }
  });
}

TEST(Comm, SplitByParity) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    auto sub = comm_split(w, r % 2, r);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(comm_size(sub), 4);
    EXPECT_EQ(comm_rank(sub), r / 2);
    // Reduction stays within the split group.
    int v = 1;
    int total = 0;
    allreduce(&v, &total, 1, Datatype::kInt, Op::kSum, sub);
    EXPECT_EQ(total, 4);
  });
}

TEST(Comm, SplitUndefinedColor) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    auto sub = comm_split(w, r == 0 ? -1 : 0, r);
    if (r == 0) {
      EXPECT_EQ(sub, nullptr);
    } else {
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(comm_size(sub), comm_size(w) - 1);
    }
  });
}

// --- Cartesian topology ------------------------------------------------------------

TEST(Cart, CoordsRanksAndShifts) {
  launch(options_psg(), [] {
    auto w = world();
    auto* cart = cart_create(w, {2, 2, 2}, {0, 0, 0});
    const int r = comm_rank(w);
    const auto c = cart->coords(r);
    EXPECT_EQ(cart->rank_at(c), r);
    int src = 0;
    int dst = 0;
    cart->shift(r, 0, 1, &src, &dst);
    if (c[0] == 0) {
      EXPECT_EQ(src, -1);  // MPI_PROC_NULL analog
      EXPECT_EQ(dst, cart->rank_at({1, c[1], c[2]}));
    }
    if (c[0] == 1) {
      EXPECT_EQ(dst, -1);
    }
  });
}

TEST(Cart, PeriodicWraps) {
  launch(options_titan(4), [] {
    auto w = world();
    auto* cart = cart_create(w, {4}, {1});
    const int r = comm_rank(w);
    int src = 0;
    int dst = 0;
    cart->shift(r, 0, 1, &src, &dst);
    EXPECT_EQ(dst, (r + 1) % 4);
    EXPECT_EQ(src, (r + 3) % 4);
    // Neighbour exchange over the periodic ring.
    int got = -1;
    sendrecv(&r, 1, Datatype::kInt, dst, 2, &got, 1, Datatype::kInt, src, 2,
             cart);
    EXPECT_EQ(got, (r + 3) % 4);
  });
}

}  // namespace
}  // namespace impacc::mpi

namespace impacc::mpi {
namespace {

// --- Extended p2p surface ------------------------------------------------------------

TEST(MpiExt, SsendForcesRendezvousCompletion) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      // A small message that would normally be eager: ssend must not
      // complete before the receive is posted, but must still carry data.
      int v = 77;
      ssend(&v, 1, Datatype::kInt, 1, 3, w);
    } else if (r == 1) {
      int got = 0;
      recv(&got, 1, Datatype::kInt, 0, 3, w);
      EXPECT_EQ(got, 77);
    }
  });
}

TEST(MpiExt, WaitanyReturnsACompletedRequest) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      int v = 5;
      send(&v, 1, Datatype::kInt, 1, 9, w);
    } else if (r == 1) {
      int a = 0;
      int b = 0;
      Request reqs[2];
      reqs[0] = irecv(&a, 1, Datatype::kInt, 1, 8, w);  // never satisfied yet
      reqs[1] = irecv(&b, 1, Datatype::kInt, 0, 9, w);
      MpiStatus st;
      const int idx = waitany(reqs, 2, &st);
      EXPECT_EQ(idx, 1);
      EXPECT_EQ(b, 5);
      EXPECT_EQ(st.tag, 9);
      EXPECT_TRUE(reqs[1].null());
      EXPECT_FALSE(reqs[0].null());
      // Satisfy the dangling receive (a self-send) so the run drains.
      int v = 1;
      Request sr = isend(&v, 1, Datatype::kInt, 1, 8, w);
      wait(reqs[0]);
      wait(sr);
      EXPECT_EQ(a, 1);
    }
  });
}

TEST(MpiExt, WaitanyAllNullReturnsUndefined) {
  launch(options_psg(), [] {
    Request reqs[3];
    EXPECT_EQ(waitany(reqs, 3), -1);
  });
}

TEST(MpiExt, TestallConsumesOnlyWhenAllDone) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r > 1) return;
    const int peer = 1 - r;
    int out = r;
    int in = -1;
    Request reqs[2];
    reqs[0] = isend(&out, 1, Datatype::kInt, peer, 4, w);
    reqs[1] = irecv(&in, 1, Datatype::kInt, peer, 4, w);
    while (!testall(reqs, 2)) {
      // progress happens on the handler; spin through the scheduler
    }
    EXPECT_TRUE(reqs[0].null());
    EXPECT_TRUE(reqs[1].null());
    EXPECT_EQ(in, peer);
  });
}

TEST(MpiExt, ProbeReportsPendingMessageWithoutReceiving) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      double vals[3] = {1, 2, 3};
      send(vals, 3, Datatype::kDouble, 1, 21, w);
    } else if (r == 1) {
      MpiStatus st;
      probe(0, 21, w, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 21);
      // MPI_Get_count idiom: size the receive from the probe.
      const int count = get_count(st, Datatype::kDouble);
      EXPECT_EQ(count, 3);
      std::vector<double> buf(static_cast<std::size_t>(count));
      recv(buf.data(), count, Datatype::kDouble, 0, 21, w);
      EXPECT_DOUBLE_EQ(buf[2], 3.0);
    }
  });
}

TEST(MpiExt, ProbeBlocksUntilMessageArrives) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 2) {
      MpiStatus st;
      probe(kAnySource, kAnyTag, w, &st);  // posted before the send exists
      EXPECT_EQ(st.source, 3);
      int v = 0;
      recv(&v, 1, Datatype::kInt, st.source, st.tag, w);
      EXPECT_EQ(v, 42);
    } else if (r == 3) {
      int v = 42;
      send(&v, 1, Datatype::kInt, 2, 5, w);
    }
  });
}

TEST(MpiExt, IprobeAnswersWithoutBlocking) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    if (r == 0) {
      // Nothing has been sent to us: iprobe must say no and return.
      EXPECT_FALSE(iprobe(1, 7, w));
      int v = 1;
      send(&v, 1, Datatype::kInt, 1, 7, w);
    } else if (r == 1) {
      // Wait for the message to be pending, then iprobe must say yes.
      MpiStatus st;
      while (!iprobe(0, 7, w, &st)) {
      }
      EXPECT_EQ(st.bytes, 4u);
      int v = 0;
      recv(&v, 1, Datatype::kInt, 0, 7, w);
    }
  });
}

// --- Extended collectives --------------------------------------------------------------

TEST_P(Collectives, ScanComputesInclusivePrefix) {
  launch(opts(), [] {
    auto w = world();
    const int r = comm_rank(w);
    long v[2] = {static_cast<long>(r) + 1, 1};
    long prefix[2] = {0, 0};
    scan(v, prefix, 2, Datatype::kLong, Op::kSum, w);
    EXPECT_EQ(prefix[0], static_cast<long>(r + 1) * (r + 2) / 2);
    EXPECT_EQ(prefix[1], r + 1);
    double m = static_cast<double>(r);
    double mx = -1;
    scan(&m, &mx, 1, Datatype::kDouble, Op::kMax, w);
    EXPECT_DOUBLE_EQ(mx, static_cast<double>(r));
  });
}

TEST_P(Collectives, ReduceScatterBlock) {
  launch(opts(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    // Every rank contributes vector [0, 1, 2, ...*size*2) scaled by 1;
    // block i reduces to size * (2i, 2i+1).
    std::vector<int> contrib(static_cast<std::size_t>(2 * size));
    for (int i = 0; i < 2 * size; ++i) {
      contrib[static_cast<std::size_t>(i)] = i;
    }
    int mine[2] = {-1, -1};
    reduce_scatter_block(contrib.data(), mine, 2, Datatype::kInt, Op::kSum, w);
    EXPECT_EQ(mine[0], size * (2 * r));
    EXPECT_EQ(mine[1], size * (2 * r + 1));
  });
}

}  // namespace
}  // namespace impacc::mpi

#include "mpi/datatype.h"

namespace impacc::mpi {
namespace {

// --- Derived datatypes -----------------------------------------------------------------

TEST(DerivedTypes, SizeAndExtent) {
  const Datatype col = type_vector(4, 1, 8, Datatype::kDouble);
  EXPECT_TRUE(is_derived(col));
  EXPECT_FALSE(is_derived(Datatype::kDouble));
  EXPECT_EQ(type_size(col), 4u * 8);            // 4 packed doubles
  EXPECT_EQ(type_extent(col), (3u * 8 + 1) * 8);  // spans 25 doubles
  const Datatype cont = type_contiguous(6, Datatype::kInt);
  EXPECT_EQ(type_size(cont), 24u);
  EXPECT_EQ(type_extent(cont), 24u);
  EXPECT_EQ(type_size(Datatype::kFloat), 4u);
}

TEST(DerivedTypes, PackUnpackRoundTrip) {
  // A 4x4 matrix column: 4 blocks of 1, stride 4.
  const Datatype col = type_vector(4, 1, 4, Datatype::kInt);
  int m[16];
  for (int i = 0; i < 16; ++i) m[i] = i;
  int packed[4] = {};
  type_pack(packed, m + 1, 1, col);  // column 1
  EXPECT_EQ(packed[0], 1);
  EXPECT_EQ(packed[1], 5);
  EXPECT_EQ(packed[2], 9);
  EXPECT_EQ(packed[3], 13);
  int out[16] = {};
  type_unpack(out + 2, packed, 1, col);  // into column 2
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[6], 5);
  EXPECT_EQ(out[14], 13);
  EXPECT_EQ(out[0], 0);  // untouched
}

TEST(DerivedTypes, ColumnExchangeBetweenTasks) {
  // Send a matrix column; receive it into a different column — the
  // classic 2-D-decomposition halo pattern derived types exist for.
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    constexpr int kN = 8;
    const Datatype col = type_vector(kN, 1, kN, Datatype::kDouble);
    if (r == 0) {
      double m[kN * kN];
      for (int i = 0; i < kN * kN; ++i) m[i] = i;
      send(&m[3], 1, col, 1, 6, w);  // column 3
    } else if (r == 1) {
      double m[kN * kN] = {};
      MpiStatus st;
      recv(&m[0], 1, col, 0, 6, w, &st);  // into column 0
      EXPECT_EQ(get_count(st, Datatype::kDouble), kN);
      for (int row = 0; row < kN; ++row) {
        EXPECT_DOUBLE_EQ(m[row * kN], row * kN + 3.0) << "row " << row;
        if (row > 0) {
          EXPECT_DOUBLE_EQ(m[row * kN + 1], 0.0);  // untouched
        }
      }
    }
  });
}

TEST(DerivedTypes, StridedToContiguousAndBack) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const Datatype vec = type_vector(3, 2, 5, Datatype::kInt);  // 6 ints
    if (r == 0) {
      int src[15];
      for (int i = 0; i < 15; ++i) src[i] = 100 + i;
      send(src, 1, vec, 1, 1, w);  // strided -> wire
    } else if (r == 1) {
      int flat[6] = {};
      recv(flat, 6, Datatype::kInt, 0, 1, w);  // wire -> contiguous
      const int expect[6] = {100, 101, 105, 106, 110, 111};
      for (int i = 0; i < 6; ++i) EXPECT_EQ(flat[i], expect[i]);
      // And back out as strided on the next exchange.
      send(flat, 6, Datatype::kInt, 2, 2, w);
    } else if (r == 2) {
      int dst[15] = {};
      recv(dst, 1, vec, 1, 2, w);  // contiguous wire -> strided
      EXPECT_EQ(dst[0], 100);
      EXPECT_EQ(dst[1], 101);
      EXPECT_EQ(dst[5], 105);
      EXPECT_EQ(dst[10], 110);
      EXPECT_EQ(dst[2], 0);  // gap untouched
    }
  });
}

TEST(DerivedTypes, MultipleInstances) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    // Two instances of (2 blocks of 1, stride 2): covers instance-extent
    // addressing.
    const Datatype t = type_vector(2, 1, 2, Datatype::kInt);
    if (r == 0) {
      int src[8] = {0, 1, 2, 3, 4, 5, 6, 7};
      send(src, 2, t, 1, 9, w);  // packs {0,2} and {4,6}... wait: see below
    } else if (r == 1) {
      int flat[4] = {};
      recv(flat, 4, Datatype::kInt, 0, 9, w);
      // Instance 0 starts at 0: elements 0 and 2. Instance 1 starts at
      // extent (3 ints... i.e. element 3): elements 3 and 5.
      EXPECT_EQ(flat[0], 0);
      EXPECT_EQ(flat[1], 2);
      EXPECT_EQ(flat[2], 3);
      EXPECT_EQ(flat[3], 5);
    }
  });
}

}  // namespace
}  // namespace impacc::mpi

#include "core/message.h"
#include "mpi/matcher.h"

namespace impacc::mpi {
namespace {

// --- Matcher unit tests (direct, no runtime) ---------------------------------------

core::MsgCommand* make_send(int src, int dst, int tag, int ctx = 1) {
  auto* c = new core::MsgCommand;
  c->kind = core::MsgCommand::Kind::kSend;
  c->src_task = src;
  c->dst_task = dst;
  c->tag = tag;
  c->context_id = ctx;
  return c;
}

core::MsgCommand* make_recv(int src, int dst, int tag, int ctx = 1) {
  auto* c = new core::MsgCommand;
  c->kind = core::MsgCommand::Kind::kRecv;
  c->src_task = src;
  c->dst_task = dst;
  c->src_match_tag = tag;
  c->context_id = ctx;
  return c;
}

TEST(Matcher, FifoPerSourceAndTag) {
  Matcher m;
  auto* s1 = make_send(0, 1, 5);
  auto* s2 = make_send(0, 1, 5);
  EXPECT_EQ(m.submit(s1), nullptr);
  EXPECT_EQ(m.submit(s2), nullptr);
  EXPECT_EQ(m.pending_sends(1), 2u);
  auto* r1 = make_recv(0, 1, 5);
  EXPECT_EQ(m.submit(r1), s1);  // the OLDER send matches first
  auto* r2 = make_recv(0, 1, 5);
  EXPECT_EQ(m.submit(r2), s2);
  EXPECT_TRUE(m.drained());
  delete s1; delete s2; delete r1; delete r2;
}

TEST(Matcher, WildcardsAndContextIsolation) {
  Matcher m;
  auto* other_ctx = make_send(0, 1, 5, /*ctx=*/2);
  EXPECT_EQ(m.submit(other_ctx), nullptr);
  auto* r_any = make_recv(kAnySource, 1, kAnyTag, /*ctx=*/1);
  // The context-2 send must NOT match a context-1 wildcard receive.
  EXPECT_EQ(m.submit(r_any), nullptr);
  auto* s = make_send(3, 1, 9, /*ctx=*/1);
  EXPECT_EQ(m.submit(s), r_any);  // wildcard matches src 3 / tag 9
  EXPECT_EQ(m.pending_sends(1), 1u);  // the foreign-context send remains
  delete other_ctx; delete r_any; delete s;
}

TEST(Matcher, ProbesSeePendingSendsWithoutConsuming) {
  Matcher m;
  auto* s = make_send(2, 4, 7);
  m.submit(s);
  core::MsgCommand probe;
  probe.kind = core::MsgCommand::Kind::kProbe;
  probe.src_task = 2;
  probe.dst_task = 4;
  probe.src_match_tag = 7;
  probe.context_id = 1;
  EXPECT_EQ(m.find_pending_send(probe), s);
  EXPECT_EQ(m.pending_sends(4), 1u);  // still queued
  probe.src_match_tag = 8;
  EXPECT_EQ(m.find_pending_send(probe), nullptr);
  delete s;
}

TEST(Matcher, ParkedProbesWakeOnMatchingSend) {
  Matcher m;
  auto* p = new core::MsgCommand;
  p->kind = core::MsgCommand::Kind::kProbe;
  p->src_task = kAnySource;
  p->dst_task = 3;
  p->src_match_tag = kAnyTag;
  p->context_id = 1;
  m.store_probe(p);
  auto* s = make_send(1, 3, 2);
  const auto woken = m.take_matching_probes(*s);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], p);
  EXPECT_TRUE(m.take_matching_probes(*s).empty());  // consumed
  delete p; delete s;
}

TEST(Matcher, FastPathUnitSemanticsMatchLegacy) {
  // The four scenarios above, replayed against the hash-bucket path.
  for (int round = 0; round < 2; ++round) {
    Matcher m;
    m.set_fast_path(true);
    auto* s1 = make_send(0, 1, 5);
    auto* s2 = make_send(0, 1, 5);
    EXPECT_EQ(m.submit(s1), nullptr);
    EXPECT_EQ(m.submit(s2), nullptr);
    EXPECT_EQ(m.pending_sends(1), 2u);
    auto* r1 = make_recv(0, 1, 5);
    EXPECT_EQ(m.submit(r1), s1);  // FIFO within the bucket
    auto* r_any = make_recv(kAnySource, 1, kAnyTag);
    EXPECT_EQ(m.submit(r_any), s2);  // wildcard scans the send list
    EXPECT_TRUE(m.drained());
    EXPECT_GT(m.stats().fastpath_hits, 0u);
    delete s1; delete s2; delete r1; delete r_any;
  }
}

TEST(Matcher, FastPathMatchesLegacyOnRandomWorkload) {
  // Equivalence property test (DESIGN.md section 9): feed the SAME random
  // submit sequence — exact and wildcard receives, multiple contexts,
  // sources, and tags — to a legacy matcher and a fast-path matcher.
  // Every submit must pick the identical partner (pointer equality: the
  // commands are shared between the two, neither path mutates them), so
  // the simulated virtual times cannot depend on the flag.
  Matcher legacy;
  Matcher fast;
  fast.set_fast_path(true);
  std::mt19937 rng(20160608);
  std::vector<core::MsgCommand*> owned;
  constexpr int kSteps = 6000;
  for (int step = 0; step < kSteps; ++step) {
    const int dst = static_cast<int>(rng() % 3u);
    const int ctx = 1 + static_cast<int>(rng() % 2u);
    core::MsgCommand* c;
    if (rng() % 2u == 0) {
      c = make_send(static_cast<int>(rng() % 4u), dst,
                    static_cast<int>(rng() % 5u), ctx);
    } else {
      const int src =
          rng() % 4u == 0 ? kAnySource : static_cast<int>(rng() % 4u);
      const int tag =
          rng() % 4u == 0 ? kAnyTag : static_cast<int>(rng() % 5u);
      c = make_recv(src, dst, tag, ctx);
    }
    owned.push_back(c);
    core::MsgCommand* a = legacy.submit(c);
    core::MsgCommand* b = fast.submit(c);
    ASSERT_EQ(a, b) << "divergent match at step " << step;
    ASSERT_EQ(legacy.pending_sends(dst), fast.pending_sends(dst));
    ASSERT_EQ(legacy.posted_recvs(dst), fast.posted_recvs(dst));
    // Probing must see the same head-of-line send on both paths.
    core::MsgCommand probe;
    probe.kind = core::MsgCommand::Kind::kProbe;
    probe.src_task = step % 2 == 0 ? kAnySource : 1;
    probe.dst_task = dst;
    probe.src_match_tag = step % 3 == 0 ? kAnyTag : 2;
    probe.context_id = ctx;
    ASSERT_EQ(legacy.find_pending_send(probe), fast.find_pending_send(probe));
  }
  EXPECT_EQ(legacy.stats().matched, fast.stats().matched);
  EXPECT_EQ(legacy.stats().unexpected_queued, fast.stats().unexpected_queued);
  EXPECT_EQ(legacy.stats().recvs_queued, fast.stats().recvs_queued);
  EXPECT_EQ(legacy.stats().fastpath_hits, 0u);  // legacy never fast-paths
  EXPECT_GT(fast.stats().fastpath_hits, 0u);
  EXPECT_EQ(legacy.drained(), fast.drained());
  for (auto* c : owned) delete c;
}

// --- Misuse aborts (the runtime's contract checks) -----------------------------------

using MpiDeathTest = ::testing::Test;

TEST(MpiDeathTest, TruncationAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        core::LaunchOptions o;
        o.cluster = sim::make_psg();
        o.scheduler_workers = 1;
        launch(o, [] {
          auto w = world();
          const int r = comm_rank(w);
          if (r == 0) {
            int big[8] = {};
            send(big, 8, Datatype::kInt, 1, 1, w);
          } else if (r == 1) {
            int tiny[2];
            recv(tiny, 2, Datatype::kInt, 0, 1, w);  // too small: abort
          }
        });
      },
      "truncation");
}

TEST(MpiDeathTest, InvalidRankAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        core::LaunchOptions o;
        o.cluster = sim::make_titan(2);
        o.scheduler_workers = 1;
        launch(o, [] {
          int v = 0;
          send(&v, 1, Datatype::kInt, 99, 1, world());  // no rank 99
        });
      },
      "");
}

}  // namespace
}  // namespace impacc::mpi

namespace impacc::mpi {
namespace {

TEST(Mpi, GathervScattervWithUnevenCounts) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    const int size = comm_size(w);
    // Rank i contributes i+1 ints.
    std::vector<int> counts(static_cast<std::size_t>(size));
    std::vector<int> displs(static_cast<std::size_t>(size));
    int total = 0;
    for (int i = 0; i < size; ++i) {
      counts[static_cast<std::size_t>(i)] = i + 1;
      displs[static_cast<std::size_t>(i)] = total;
      total += i + 1;
    }
    std::vector<int> mine(static_cast<std::size_t>(r + 1), r * 10);
    std::vector<int> all(static_cast<std::size_t>(r == 0 ? total : 0));
    gatherv(mine.data(), r + 1, Datatype::kInt, all.data(), counts.data(),
            displs.data(), Datatype::kInt, 0, w);
    if (r == 0) {
      for (int i = 0; i < size; ++i) {
        for (int k = 0; k < i + 1; ++k) {
          EXPECT_EQ(all[static_cast<std::size_t>(
                        displs[static_cast<std::size_t>(i)] + k)],
                    i * 10);
        }
      }
      // Mutate and scatter back.
      for (int& v : all) v += 1;
    }
    std::vector<int> back(static_cast<std::size_t>(r + 1), -1);
    scatterv(all.data(), counts.data(), displs.data(), Datatype::kInt,
             back.data(), r + 1, Datatype::kInt, 0, w);
    EXPECT_EQ(back[0], r * 10 + 1);
    EXPECT_EQ(back[static_cast<std::size_t>(r)], r * 10 + 1);
  });
}

TEST(Comm, SplitOrdersByKeyThenParentRank) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    // Everyone in one color, keys reversed: new rank order flips.
    auto sub = comm_split(w, 0, comm_size(w) - r);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(comm_rank(sub), comm_size(w) - 1 - r);
  });
}

TEST(Mpi, SendrecvWithSelfAndDistinctTags) {
  launch(options_psg(), [] {
    auto w = world();
    const int r = comm_rank(w);
    double out = r * 1.5;
    double in = -1;
    sendrecv(&out, 1, Datatype::kDouble, r, 11, &in, 1, Datatype::kDouble, r,
             11, w);
    EXPECT_DOUBLE_EQ(in, r * 1.5);
  });
}

}  // namespace
}  // namespace impacc::mpi
