// Tests for the directive translator: lexer, pragma parser, code
// generation, MPI rewriting, and whole-source translation of the paper's
// Fig. 4 (c) example.
#include <gtest/gtest.h>

#include "trans/lexer.h"
#include "trans/pragma_parser.h"
#include "trans/translator.h"

namespace impacc::trans {
namespace {

// --- lexer -----------------------------------------------------------------------

TEST(Lexer, TokenizesIdentifiersNumbersPunct) {
  const auto toks = tokenize("acc mpi sendbuf(device) async(1)");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].text, "acc");
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[3].text, "(");
  EXPECT_EQ(toks[3].kind, TokKind::kPunct);
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(Lexer, MatchDelimHandlesNestingAndStrings) {
  const std::string s = R"(f(a, g(b, ")("), 'x'))";
  const std::size_t close = match_delim(s, 1);
  EXPECT_EQ(close, s.size() - 1);
  EXPECT_EQ(match_delim("(unbalanced", 0), std::string::npos);
}

TEST(Lexer, SplitArgsRespectsNesting) {
  const auto args = split_args("a, f(b, c), d[1, 2], \"e,f\"");
  ASSERT_EQ(args.size(), 4u);
  EXPECT_EQ(args[0], "a");
  EXPECT_EQ(args[1], "f(b, c)");
  EXPECT_EQ(args[2], "d[1, 2]");
}

// --- pragma parser -----------------------------------------------------------------

TEST(PragmaParser, ParsesKernelsLoopWithClauses) {
  std::string err;
  auto d = parse_pragma("acc kernels loop copyout(buf0[0:n]) async(1)", 1,
                        &err);
  ASSERT_TRUE(d.has_value()) << err;
  EXPECT_EQ(d->kind, DirectiveKind::kParallelLoop);
  const Clause* co = d->find("copyout");
  ASSERT_NE(co, nullptr);
  ASSERT_EQ(co->subarrays.size(), 1u);
  EXPECT_EQ(co->subarrays[0].var, "buf0");
  EXPECT_EQ(co->subarrays[0].first, "0");
  EXPECT_EQ(co->subarrays[0].count, "n");
  const Clause* as = d->find("async");
  ASSERT_NE(as, nullptr);
  EXPECT_EQ(as->args[0], "1");
}

TEST(PragmaParser, ParsesTheImpaccMpiDirective) {
  // The exact syntax of section 3.5.
  std::string err;
  auto d = parse_pragma("acc mpi sendbuf(device, readonly) async(2)", 3, &err);
  ASSERT_TRUE(d.has_value()) << err;
  EXPECT_EQ(d->kind, DirectiveKind::kMpi);
  const Clause* sb = d->find("sendbuf");
  ASSERT_NE(sb, nullptr);
  ASSERT_EQ(sb->args.size(), 2u);
  EXPECT_EQ(sb->args[0], "device");
  EXPECT_EQ(sb->args[1], "readonly");
}

TEST(PragmaParser, ParsesDataAndUpdateAndWait) {
  std::string err;
  auto data = parse_pragma("acc data copyin(a[0:n]) copyout(b[0:m])", 1, &err);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->kind, DirectiveKind::kData);

  auto update = parse_pragma("acc update self(x[0:k]) async(3)", 2, &err);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(update->kind, DirectiveKind::kUpdate);

  auto wait = parse_pragma("acc wait(1)", 3, &err);
  ASSERT_TRUE(wait.has_value());
  EXPECT_EQ(wait->kind, DirectiveKind::kWait);
  ASSERT_NE(wait->find("wait"), nullptr);
  EXPECT_EQ(wait->find("wait")->args[0], "1");

  auto enter = parse_pragma("acc enter data copyin(y[0:2])", 4, &err);
  ASSERT_TRUE(enter.has_value());
  EXPECT_EQ(enter->kind, DirectiveKind::kEnterData);
}

TEST(PragmaParser, RejectsNonAccAndMalformed) {
  std::string err;
  EXPECT_FALSE(parse_pragma("omp parallel for", 1, &err).has_value());
  EXPECT_TRUE(err.empty());  // not ours, no error
  EXPECT_FALSE(parse_pragma("acc bogus_directive", 1, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(PragmaParser, ParsesMultiDimensionalSubarrays) {
  std::string err;
  auto d = parse_pragma("acc data copyin(a[0:n][0:m])", 1, &err);
  ASSERT_TRUE(d.has_value()) << err;
  const Clause* ci = d->find("copyin");
  ASSERT_NE(ci, nullptr);
  ASSERT_EQ(ci->subarrays.size(), 1u);
  const SubArray& sa = ci->subarrays[0];
  EXPECT_EQ(sa.var, "a");
  ASSERT_EQ(sa.dims.size(), 2u);
  EXPECT_EQ(sa.dims[0].first, "0");
  EXPECT_EQ(sa.dims[0].count, "n");
  EXPECT_EQ(sa.dims[1].first, "0");
  EXPECT_EQ(sa.dims[1].count, "m");
  // Back-compat: first/count mirror the outermost dimension.
  EXPECT_EQ(sa.first, "0");
  EXPECT_EQ(sa.count, "n");
}

TEST(PragmaParser, SubarrayBoundsMayBeExpressions) {
  std::string err;
  auto d = parse_pragma(
      "acc update device(a[(i*2):(n-i)], b[idx[0]:cnt], c[n])", 1, &err);
  ASSERT_TRUE(d.has_value()) << err;
  const Clause* dev = d->find("device");
  ASSERT_NE(dev, nullptr);
  ASSERT_EQ(dev->subarrays.size(), 3u);
  EXPECT_EQ(dev->subarrays[0].first, "(i*2)");
  EXPECT_EQ(dev->subarrays[0].count, "(n-i)");
  // The ':' inside idx[0] is not a top-level split point... there is
  // none; the bound itself contains a bracketed expression.
  EXPECT_EQ(dev->subarrays[1].var, "b");
  EXPECT_EQ(dev->subarrays[1].first, "idx[0]");
  EXPECT_EQ(dev->subarrays[1].count, "cnt");
  // OpenACC's length-only shorthand a[n] means [0:n].
  EXPECT_EQ(dev->subarrays[2].var, "c");
  EXPECT_EQ(dev->subarrays[2].first, "0");
  EXPECT_EQ(dev->subarrays[2].count, "n");
}

TEST(PragmaParser, UnbalancedSubarrayFallsBackToBareName) {
  std::string err;
  auto d = parse_pragma("acc enter data copyin(a[0:n)", 1, &err);
  // The clause arguments themselves are balanced at the paren level or
  // the parse fails outright; either way nothing crashes.
  if (d.has_value()) {
    const Clause* ci = d->find("copyin");
    ASSERT_NE(ci, nullptr);
    for (const auto& sa : ci->subarrays) EXPECT_TRUE(sa.dims.empty());
  } else {
    EXPECT_FALSE(err.empty());
  }
}

TEST(PragmaParser, RejectsMalformedClauses) {
  std::string err;
  // Unbalanced clause argument list.
  EXPECT_FALSE(parse_pragma("acc data copyin(a[0:n]", 1, &err).has_value());
  EXPECT_FALSE(err.empty());
  err.clear();
  // Garbage where a clause name should be.
  EXPECT_FALSE(parse_pragma("acc data ???", 1, &err).has_value());
  EXPECT_FALSE(err.empty());
  err.clear();
  // Unbalanced wait argument.
  EXPECT_FALSE(parse_pragma("acc wait(1", 1, &err).has_value());
  EXPECT_FALSE(err.empty());
  err.clear();
  // 'enter'/'exit' must be followed by 'data'.
  EXPECT_FALSE(parse_pragma("acc enter region", 1, &err).has_value());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(parse_pragma("acc exit", 1, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(PragmaParser, AccMpiClauseGrammar) {
  std::string err;
  auto d = parse_pragma(
      "acc mpi sendbuf(device) recvbuf(device, readonly) async(q+1)", 1,
      &err);
  ASSERT_TRUE(d.has_value()) << err;
  EXPECT_EQ(d->kind, DirectiveKind::kMpi);
  ASSERT_NE(d->find("sendbuf"), nullptr);
  ASSERT_NE(d->find("recvbuf"), nullptr);
  ASSERT_EQ(d->find("recvbuf")->args.size(), 2u);
  EXPECT_EQ(d->find("recvbuf")->args[1], "readonly");
  // Symbolic queue expressions survive verbatim.
  ASSERT_NE(d->find("async"), nullptr);
  EXPECT_EQ(d->find("async")->args[0], "q+1");

  // Bare acc mpi (no clauses) is legal; the runtime applies defaults.
  auto bare = parse_pragma("acc mpi", 2, &err);
  ASSERT_TRUE(bare.has_value()) << err;
  EXPECT_TRUE(bare->clauses.empty());
}

TEST(PragmaParser, CommaSeparatedClauseListIsAccepted) {
  std::string err;
  auto d = parse_pragma("acc data copyin(a[0:n]), copyout(b[0:n])", 1, &err);
  ASSERT_TRUE(d.has_value()) << err;
  EXPECT_NE(d->find("copyin"), nullptr);
  EXPECT_NE(d->find("copyout"), nullptr);
}

// --- codegen / whole source ----------------------------------------------------------

TEST(Translator, Fig4cUnifiedActivityQueueExample) {
  // The paper's Fig. 4 (c) — the IMPACC unified activity queue version.
  const char* src = R"(
#pragma acc kernels loop copyout(buf0[0:n]) async(1)
for (i = 0; i < n; i++) { buf0[i] = produce(i); }
#pragma acc mpi sendbuf(device) async(1)
MPI_Isend(buf0, n, MPI_DOUBLE, peer, 5, MPI_COMM_WORLD, &req[0]);
#pragma acc mpi recvbuf(device) async(1)
MPI_Irecv(buf1, n, MPI_DOUBLE, peer, 5, MPI_COMM_WORLD, &req[1]);
#pragma acc kernels loop copyin(buf1[0:n]) async(1)
for (i = 0; i < n; i++) { consume(buf1[i]); }
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.directives_translated, 4);
  EXPECT_EQ(r.mpi_calls_translated, 2);
  EXPECT_NE(r.output.find("impacc::acc::parallel_loop"), std::string::npos);
  EXPECT_NE(r.output.find(
                "impacc::acc::mpi({.send_device = true, .async = 1})"),
            std::string::npos);
  EXPECT_NE(r.output.find(
                "impacc::acc::mpi({.recv_device = true, .async = 1})"),
            std::string::npos);
  EXPECT_NE(r.output.find("req[0] = impacc::mpi::isend(buf0, n, "
                          "impacc::mpi::Datatype::kDouble, peer, 5, "
                          "impacc::mpi::world())"),
            std::string::npos);
  // Device-pointer substitution in the kernel body.
  EXPECT_NE(r.output.find("buf0 = static_cast<decltype(buf0)>("
                          "impacc::acc::deviceptr(buf0))"),
            std::string::npos);
}

TEST(Translator, ReadonlyRecvCapturesPointerAddress) {
  const char* src = R"(
#pragma acc mpi recvbuf(readonly)
MPI_Recv(dst, 10, MPI_DOUBLE, 0, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.output.find(".recv_readonly = true"), std::string::npos);
  EXPECT_NE(r.output.find(".recv_ptr_addr = reinterpret_cast<void**>(&(dst))"),
            std::string::npos);
}

TEST(Translator, DataRegionEmitsEnterAndExitAtBraces) {
  const char* src = R"(
#pragma acc data copyin(a[0:n]) copyout(c[0:n])
{
  use(a, c);
}
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok);
  const auto enter = r.output.find("impacc::acc::copyin(a");
  const auto use = r.output.find("use(a, c);");
  const auto exit = r.output.find("impacc::acc::copyout(c");
  const auto del = r.output.find("impacc::acc::del(a)");
  ASSERT_NE(enter, std::string::npos);
  ASSERT_NE(use, std::string::npos);
  ASSERT_NE(exit, std::string::npos);
  ASSERT_NE(del, std::string::npos);
  EXPECT_LT(enter, use);
  EXPECT_LT(use, exit);
}

TEST(Translator, UpdateAndWaitAndEnterExitData) {
  const char* src = R"(
#pragma acc enter data copyin(x[0:n])
#pragma acc update device(x[0:n]) async(2)
#pragma acc update self(x[5:10])
#pragma acc wait(2)
#pragma acc exit data delete(x[0:n])
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.output.find("impacc::acc::update_device(x, (n) * sizeof(*(x)), 2)"),
            std::string::npos);
  EXPECT_NE(r.output.find("impacc::acc::update_self((x) + (5), (10) * "
                          "sizeof(*(x))"),
            std::string::npos);
  EXPECT_NE(r.output.find("impacc::acc::wait(2)"), std::string::npos);
  EXPECT_NE(r.output.find("impacc::acc::del(x)"), std::string::npos);
}

TEST(Translator, PlainMpiCallsAndConstantsAreRewritten) {
  const char* src = R"(
int rank, size;
MPI_Init(&argc, &argv);
MPI_Comm_rank(MPI_COMM_WORLD, &rank);
MPI_Comm_size(MPI_COMM_WORLD, &size);
MPI_Allreduce(in, out, 4, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
MPI_Barrier(MPI_COMM_WORLD);
MPI_Finalize();
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.mpi_calls_translated, 6);
  EXPECT_NE(r.output.find("rank = impacc::mpi::comm_rank(impacc::mpi::world())"),
            std::string::npos);
  EXPECT_NE(r.output.find("impacc::mpi::Op::kSum"), std::string::npos);
  EXPECT_NE(r.output.find("/* MPI_Init handled by impacc::launch */"),
            std::string::npos);
}

TEST(Translator, ForLoopWithDeclarationAndLessEqual) {
  const char* src = R"(
#pragma acc parallel loop present(v)
for (int j = 2; j <= m; j++) v[j] = j;
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_NE(r.output.find("((m) + 1) - (2)"), std::string::npos);
  EXPECT_NE(r.output.find("long j = (2) + j__it"), std::string::npos);
}

TEST(Translator, ReportsErrors) {
  const auto bad_loop = translate_source(
      "#pragma acc parallel loop\nwhile (x) { }\n");
  EXPECT_FALSE(bad_loop.ok);
  ASSERT_FALSE(bad_loop.errors.empty());
  EXPECT_NE(bad_loop.errors[0].find("for loop"), std::string::npos);

  const auto bad_mpi = translate_source(
      "#pragma acc mpi sendbuf(device)\nnot_mpi();\n");
  EXPECT_FALSE(bad_mpi.ok);

  const auto bad_routine =
      translate_source("MPI_Put(a, b, c);\n");
  EXPECT_FALSE(bad_routine.ok);
  EXPECT_NE(bad_routine.errors[0].find("unsupported MPI routine"),
            std::string::npos);
}

TEST(Translator, LeavesUnrelatedCodeIntact) {
  const char* src =
      "// MPI_Send in a comment stays\n"
      "const char* s = \"MPI_Recv in a string stays\";\n"
      "int x = compute(1, 2);\n";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.output.find("MPI_Send in a comment stays"), std::string::npos);
  EXPECT_NE(r.output.find("MPI_Recv in a string stays"), std::string::npos);
  EXPECT_NE(r.output.find("int x = compute(1, 2);"), std::string::npos);
  EXPECT_EQ(r.mpi_calls_translated, 0);
}

TEST(Translator, CustomNamespacePrefix) {
  TranslateOptions opt;
  opt.api_ns = "myimpacc";
  const auto r = translate_source("MPI_Barrier(MPI_COMM_WORLD);\n", opt);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.output.find("myimpacc::mpi::barrier(myimpacc::mpi::world())"),
            std::string::npos);
}

}  // namespace
}  // namespace impacc::trans

namespace impacc::trans {
namespace {

TEST(Translator, HostDataUseDeviceShadowsVariables) {
  // The standard GPU-aware-MPI idiom: inside host_data use_device(x),
  // host code (e.g. MPI calls) sees the device address of x.
  const char* src = R"(
#pragma acc host_data use_device(sendbuf, recvbuf)
{
  MPI_Send(sendbuf, n, MPI_DOUBLE, peer, 0, MPI_COMM_WORLD);
  MPI_Recv(recvbuf, n, MPI_DOUBLE, peer, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
}
after(sendbuf);
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  // Device pointers picked up in the outer scope...
  EXPECT_NE(r.output.find("auto __impacc_hd_sendbuf = "
                          "static_cast<decltype(sendbuf)>("
                          "impacc::acc::deviceptr(sendbuf))"),
            std::string::npos);
  // ...shadow declarations inside the region...
  EXPECT_NE(r.output.find("auto sendbuf = __impacc_hd_sendbuf;"),
            std::string::npos);
  // ...and the MPI calls were rewritten too.
  EXPECT_EQ(r.mpi_calls_translated, 2);
  // Code after the region is untouched.
  EXPECT_NE(r.output.find("after(sendbuf);"), std::string::npos);
}

TEST(Translator, HostDataBracesBalance) {
  const char* src =
      "#pragma acc host_data use_device(x)\n{ use(x); }\ntail();\n";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok);
  long depth = 0;
  for (char c : r.output) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(r.output.find("tail();"), std::string::npos);
}

TEST(Translator, NestedDataRegions) {
  const char* src = R"(
#pragma acc data copyin(a[0:n])
{
#pragma acc data copyout(b[0:m])
  {
    use(a, b);
  }
}
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  // Inner region exits (copyout b) before the outer (del a).
  const auto out_b = r.output.find("impacc::acc::copyout(b");
  const auto del_a = r.output.find("impacc::acc::del(a)");
  ASSERT_NE(out_b, std::string::npos);
  ASSERT_NE(del_a, std::string::npos);
  EXPECT_LT(out_b, del_a);
}

TEST(Translator, UnclosedDataRegionIsAnError) {
  const auto r = translate_source("#pragma acc data copyin(a[0:n])\n{ x();\n");
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("unclosed"), std::string::npos);
}

TEST(Translator, SsendAndAllgatherRewrites) {
  const auto r = translate_source(
      "MPI_Allgather(s, 1, MPI_INT, r, 1, MPI_INT, MPI_COMM_WORLD);\n"
      "MPI_Scatter(s, 1, MPI_INT, r, 1, MPI_INT, 0, MPI_COMM_WORLD);\n");
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_NE(r.output.find("impacc::mpi::allgather("), std::string::npos);
  EXPECT_NE(r.output.find("impacc::mpi::scatter("), std::string::npos);
}

}  // namespace
}  // namespace impacc::trans

namespace impacc::trans {
namespace {

TEST(Translator, ExtendedMpiRoutineRewrites) {
  const char* src = R"(
MPI_Ssend(buf, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);
MPI_Scan(in, out, 2, MPI_LONG, MPI_SUM, MPI_COMM_WORLD);
MPI_Probe(0, 5, MPI_COMM_WORLD, &st);
MPI_Iprobe(0, 5, MPI_COMM_WORLD, &flag, &st);
MPI_Get_count(&st, MPI_DOUBLE, &count);
MPI_Waitany(4, reqs, &idx, MPI_STATUS_IGNORE);
MPI_Type_vector(4, 1, 8, MPI_DOUBLE, &coltype);
MPI_Type_commit(&coltype);
MPI_Type_contiguous(3, MPI_INT, &trip);
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_NE(r.output.find("impacc::mpi::ssend(buf"), std::string::npos);
  EXPECT_NE(r.output.find("impacc::mpi::scan(in, out"), std::string::npos);
  EXPECT_NE(r.output.find("impacc::mpi::probe(0, 5"), std::string::npos);
  EXPECT_NE(r.output.find("flag = impacc::mpi::iprobe(0, 5"),
            std::string::npos);
  EXPECT_NE(r.output.find("count = impacc::mpi::get_count(st, "
                          "impacc::mpi::Datatype::kDouble)"),
            std::string::npos);
  EXPECT_NE(r.output.find("idx = impacc::mpi::waitany(reqs, 4, nullptr)"),
            std::string::npos);
  EXPECT_NE(r.output.find("coltype = impacc::mpi::type_vector(4, 1, 8, "
                          "impacc::mpi::Datatype::kDouble)"),
            std::string::npos);
  EXPECT_NE(r.output.find("trip = impacc::mpi::type_contiguous(3"),
            std::string::npos);
  EXPECT_NE(r.output.find("MPI_Type_commit: types are immediately usable"),
            std::string::npos);
}

}  // namespace
}  // namespace impacc::trans

namespace impacc::trans {
namespace {

TEST(Translator, BackslashContinuationLines) {
  const char* src =
      "#pragma acc parallel loop \\\n"
      "    copyin(v[0:n]) \\\n"
      "    async(2)\n"
      "for (i = 0; i < n; i++) { f(v[i]); }\n";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_NE(r.output.find("impacc::acc::copyin(v"), std::string::npos);
  EXPECT_NE(r.output.find(", 2);"), std::string::npos);
}

TEST(Translator, NonAccPragmasPassThrough) {
  const char* src = "#pragma once\n#pragma omp parallel\nint x;\n";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.output.find("#pragma once"), std::string::npos);
  EXPECT_NE(r.output.find("#pragma omp parallel"), std::string::npos);
}

TEST(Translator, SingleStatementLoopBody) {
  const char* src =
      "#pragma acc kernels loop present(a)\n"
      "for (k = 1; k < m; k++) a[k] = a[k - 1];\n";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_NE(r.output.find("(m) - (1)"), std::string::npos);
  EXPECT_NE(r.output.find("long k = (1) + k__it"), std::string::npos);
}

}  // namespace
}  // namespace impacc::trans

namespace impacc::trans {
namespace {

TEST(Translator, ReductionClauseCapturesByReference) {
  const char* src = R"(
#pragma acc parallel loop present(v[0:n]) reduction(+:sum) reduction(max:peak)
for (i = 0; i < n; i++) { sum += v[i]; if (v[i] > peak) peak = v[i]; }
)";
  const auto r = translate_source(src);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  // Reduction variables captured by reference; data vars as device ptrs.
  EXPECT_NE(r.output.find(", &sum"), std::string::npos);
  EXPECT_NE(r.output.find(", &peak"), std::string::npos);
  EXPECT_NE(r.output.find("v = static_cast<decltype(v)>"), std::string::npos);
}

}  // namespace
}  // namespace impacc::trans
