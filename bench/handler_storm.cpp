// Handler ping-storm: wall-clock throughput of the message-handler hot
// path, batched rings vs the legacy per-message loop (DESIGN.md
// section 9).
//
// Not a paper figure — the simulated virtual times are bit-identical with
// features.handler_batching on and off (that is the flag's contract), so
// this series measures what the batching actually buys: HOST wall-clock
// msgs/sec through one node handler at saturation. The workload is
// adversarial for the legacy path: rank 0 pre-posts every receive with
// ascending tags and the senders emit descending tags, so each arriving
// send scans almost the whole posted-receive deque (O(n^2) total) where
// the hash-bucket matcher answers in O(1) per message.
#include <chrono>
#include <map>

#include "bench_common.h"

namespace impacc::bench {
namespace {

/// One storm: (size-1) senders flood rank 0 with `msgs_per_sender` eager
/// messages each; rank 0 pre-posts all receives. Model-only, so the run
/// cost is dominated by the handler/matching machinery under test.
/// Returns wall-clock seconds for the whole launch.
double run_storm(bool batched, int msgs_per_sender, bool critpath = false) {
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  o.features.handler_batching = batched;
  o.critpath = critpath;
  const auto t0 = std::chrono::steady_clock::now();
  launch(o, [msgs_per_sender] {
    auto w = mpi::world();
    const int rank = mpi::comm_rank(w);
    const int size = mpi::comm_size(w);
    if (rank == 0) {
      const int total = (size - 1) * msgs_per_sender;
      std::vector<mpi::Request> recvs;
      recvs.reserve(static_cast<std::size_t>(total));
      // Ascending tags per source; senders go descending, so the legacy
      // matcher's linear scan walks ~all earlier-posted receives.
      for (int src = 1; src < size; ++src) {
        for (int m = 0; m < msgs_per_sender; ++m) {
          recvs.push_back(
              mpi::irecv(nullptr, 1, mpi::Datatype::kLong, src, m, w));
        }
      }
      mpi::waitall(recvs);
    } else {
      for (int m = msgs_per_sender - 1; m >= 0; --m) {
        mpi::send(nullptr, 1, mpi::Datatype::kLong, 0, m, w);
      }
    }
    mpi::barrier(w);
  });
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void register_benchmarks() {
  const std::vector<int> sweep =
      bench_smoke() ? std::vector<int>{64} : std::vector<int>{1024, 4096};
  const int iterations = bench_smoke() ? 1 : 3;
  for (const int msgs : sweep) {
    for (const bool batched : {true, false}) {
      // psg is a single 8-task node: 7 senders per storm.
      const std::uint64_t storm_msgs = 7ull * static_cast<unsigned>(msgs);
      const std::string name = std::string("HandlerStorm/psg/") +
                               (batched ? "batched" : "unbatched") + "/" +
                               std::to_string(msgs);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [batched, msgs, storm_msgs](benchmark::State& st) {
            // Rates accumulated across the batched/unbatched pair so the
            // summary table can show them side by side (the batched
            // variant registers — and therefore runs — first).
            static std::map<int, double> batched_rate;
            std::uint64_t total = 0;
            double seconds = 0;
            for (auto _ : st) {
              seconds += run_storm(batched, msgs);
              total += storm_msgs;
            }
            const double rate =
                seconds > 0 ? static_cast<double>(total) / seconds : 0;
            st.counters["msgs_per_sec"] = benchmark::Counter(
                static_cast<double>(total), benchmark::Counter::kIsRate);
            if (batched) {
              batched_rate[msgs] = rate;
            } else {
              add_row("HandlerStorm psg 8t",
                      std::to_string(msgs) + " msg/sender",
                      batched_rate[msgs] / 1e6, rate / 1e6,
                      "Mmsg/s wall (batched vs unbatched)");
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iterations)
          ->UseRealTime();
    }
  }

  // Critical-path profiler ablation (ISSUE 8): same storm on the batched
  // matcher with recording off vs on. The recorder appends ~3 graph nodes
  // per message (~50ns each behind a spinlock), i.e. ~0.3us/msg of wall
  // cost. Against real MPI latencies (>=10us/msg) that is well under the
  // 5% leave-it-on-in-CI target; against this model-only storm, whose
  // whole simulated hot path is itself ~1us/msg, it reads as ~20%, which
  // bounds the recorder's absolute cost rather than its realistic share.
  {
    const int msgs = bench_smoke() ? 64 : 1024;
    const std::uint64_t storm_msgs = 7ull * static_cast<unsigned>(msgs);
    for (const bool critpath : {false, true}) {
      const std::string name = std::string("CritPathOverhead/psg/") +
                               (critpath ? "profiler" : "baseline") + "/" +
                               std::to_string(msgs);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [critpath, msgs, storm_msgs](benchmark::State& st) {
            static double baseline_rate = 0;  // off registers and runs first
            std::uint64_t total = 0;
            double seconds = 0;
            for (auto _ : st) {
              seconds += run_storm(true, msgs, critpath);
              total += storm_msgs;
            }
            const double rate =
                seconds > 0 ? static_cast<double>(total) / seconds : 0;
            st.counters["msgs_per_sec"] = benchmark::Counter(
                static_cast<double>(total), benchmark::Counter::kIsRate);
            if (!critpath) {
              baseline_rate = rate;
            } else {
              add_row("CritPathOverhead psg 8t",
                      std::to_string(msgs) + " msg/sender",
                      baseline_rate / 1e6, rate / 1e6,
                      "Mmsg/s wall (profiler off vs on)");
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iterations)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("HandlerStorm",
                  "message-handler wall-clock throughput, batched rings vs "
                  "per-message loop")
