// Ablation study: the contribution of each IMPACC design choice
// (DESIGN.md section 6). Not a paper figure — the paper never isolates
// its mechanisms — but each row quantifies one of its claims.
#include <map>

#include "apps/dgemm.h"
#include "apps/jacobi.h"
#include "apps/lulesh/driver.h"
#include "apps/stencil2d.h"
#include "bench_common.h"
#include "core/runtime.h"
#include "core/task.h"

namespace impacc::bench {
namespace {

using Mutator = void (*)(core::LaunchOptions&);

struct Variant {
  const char* name;
  Mutator mutate;
};

const Variant kVariants[] = {
    {"full", [](core::LaunchOptions&) {}},
    {"no-fusion",
     [](core::LaunchOptions& o) { o.features.message_fusion = false; }},
    {"no-peer-dtod",
     [](core::LaunchOptions& o) { o.features.peer_dtod = false; }},
    {"no-aliasing",
     [](core::LaunchOptions& o) { o.features.heap_aliasing = false; }},
    {"no-unified-queue",
     [](core::LaunchOptions& o) { o.features.unified_queue = false; }},
    {"no-pinning",
     [](core::LaunchOptions& o) { o.features.numa_pinning = false; }},
    {"no-rdma",
     [](core::LaunchOptions& o) { o.features.gpudirect_rdma = false; }},
    {"no-chunking",
     [](core::LaunchOptions& o) { o.features.chunk_pipeline = false; }},
    {"no-hier-collectives",
     [](core::LaunchOptions& o) { o.features.hier_collectives = false; }},
    {"serialized-mpi",
     [](core::LaunchOptions& o) { o.cluster.mpi_thread_multiple = false; }},
    {"baseline",
     [](core::LaunchOptions& o) {
       o.framework = core::Framework::kMpiOpenacc;
     }},
};

sim::Time dgemm_run(const Variant& v) {
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  v.mutate(o);
  apps::DgemmConfig cfg;
  cfg.n = 1024;
  return apps::run_dgemm(o, cfg).launch.makespan;
}

sim::Time jacobi_run(const Variant& v) {
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  v.mutate(o);
  apps::JacobiConfig cfg;
  cfg.n = 4096;
  cfg.iterations = 10;
  return apps::run_jacobi(o, cfg).launch.makespan;
}

sim::Time lulesh_titan_run(const Variant& v) {
  auto o = model_options("titan", 64, core::Framework::kImpacc);
  v.mutate(o);
  apps::LuleshConfig cfg;
  cfg.s = 16;
  cfg.iterations = 3;
  return apps::run_lulesh(o, cfg).launch.makespan;
}

sim::Time staged_p2p_titan_run(const Variant& v) {
  // Repeated 64 MiB internode device-to-device messages with GPUDirect
  // off (a pre-RDMA fabric): every byte stages DtoH -> wire -> HtoD, so
  // the chunk pipeline is the lever here.
  auto o = model_options("titan", 2, core::Framework::kImpacc);
  o.features.gpudirect_rdma = false;
  v.mutate(o);
  const std::uint64_t bytes = 64 << 20;
  const auto result = launch(o, [bytes] {
    const bool im = core::require_task("staged-p2p").rt->is_impacc();
    auto w = mpi::world();
    const int r = mpi::comm_rank(w);
    if (r > 1) return;
    auto* buf = static_cast<char*>(node_malloc(bytes));
    acc::copyin(buf, bytes);
    const int count = static_cast<int>(bytes);
    for (int m = 0; m < 8; ++m) {
      if (r == 0) {
        if (im) {
          acc::mpi({.send_device = true});
        } else {
          acc::update_self(buf, bytes);
        }
        mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
      } else {
        if (im) acc::mpi({.recv_device = true});
        mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
        if (!im) acc::update_device(buf, bytes);
      }
    }
    acc::del(buf);
    node_free(buf);
  });
  return result.makespan;
}

sim::Time stencil2d_run(const Variant& v) {
  // 2-D decomposition with derived-datatype column halos (extension app):
  // host-staged halos make pinning and fusion the levers.
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  v.mutate(o);
  apps::Stencil2dConfig cfg;
  cfg.n = 4096;
  cfg.iterations = 10;
  return apps::run_stencil2d(o, cfg).launch.makespan;
}

template <typename Fn>
void sweep(const char* app, Fn run) {
  const sim::Time full = run(kVariants[0]);
  for (const Variant& v : kVariants) {
    const sim::Time t = run(v);
    add_row(std::string("Ablation ") + app, v.name, t / full, 0,
            "time relative to full IMPACC");
    benchmark::RegisterBenchmark(
        (std::string("Ablation/") + app + "/" + v.name).c_str(),
        [t, full](benchmark::State& st) {
          for (auto _ : st) {
            st.SetIterationTime(t);
            st.counters["vs_full"] = t / full;
          }
        })
        ->UseManualTime()
        ->Iterations(1);
  }
}

void register_benchmarks() {
  sweep("dgemm-psg-1K", dgemm_run);
  sweep("jacobi-psg-4K", jacobi_run);
  sweep("lulesh-titan-64", lulesh_titan_run);
  sweep("staged-p2p-titan-2n", staged_p2p_titan_run);
  sweep("stencil2d-psg-4K", stencil2d_run);
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Ablations", "per-feature contribution of IMPACC mechanisms")
