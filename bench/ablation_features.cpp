// Ablation study: the contribution of each IMPACC design choice
// (DESIGN.md section 6). Not a paper figure — the paper never isolates
// its mechanisms — but each row quantifies one of its claims.
#include <map>

#include "apps/dgemm.h"
#include "apps/jacobi.h"
#include "apps/lulesh/driver.h"
#include "apps/stencil2d.h"
#include "bench_common.h"

namespace impacc::bench {
namespace {

using Mutator = void (*)(core::LaunchOptions&);

struct Variant {
  const char* name;
  Mutator mutate;
};

const Variant kVariants[] = {
    {"full", [](core::LaunchOptions&) {}},
    {"no-fusion",
     [](core::LaunchOptions& o) { o.features.message_fusion = false; }},
    {"no-peer-dtod",
     [](core::LaunchOptions& o) { o.features.peer_dtod = false; }},
    {"no-aliasing",
     [](core::LaunchOptions& o) { o.features.heap_aliasing = false; }},
    {"no-unified-queue",
     [](core::LaunchOptions& o) { o.features.unified_queue = false; }},
    {"no-pinning",
     [](core::LaunchOptions& o) { o.features.numa_pinning = false; }},
    {"no-rdma",
     [](core::LaunchOptions& o) { o.features.gpudirect_rdma = false; }},
    {"serialized-mpi",
     [](core::LaunchOptions& o) { o.cluster.mpi_thread_multiple = false; }},
    {"baseline",
     [](core::LaunchOptions& o) {
       o.framework = core::Framework::kMpiOpenacc;
     }},
};

sim::Time dgemm_run(const Variant& v) {
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  v.mutate(o);
  apps::DgemmConfig cfg;
  cfg.n = 1024;
  return apps::run_dgemm(o, cfg).launch.makespan;
}

sim::Time jacobi_run(const Variant& v) {
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  v.mutate(o);
  apps::JacobiConfig cfg;
  cfg.n = 4096;
  cfg.iterations = 10;
  return apps::run_jacobi(o, cfg).launch.makespan;
}

sim::Time lulesh_titan_run(const Variant& v) {
  auto o = model_options("titan", 64, core::Framework::kImpacc);
  v.mutate(o);
  apps::LuleshConfig cfg;
  cfg.s = 16;
  cfg.iterations = 3;
  return apps::run_lulesh(o, cfg).launch.makespan;
}

sim::Time stencil2d_run(const Variant& v) {
  // 2-D decomposition with derived-datatype column halos (extension app):
  // host-staged halos make pinning and fusion the levers.
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  v.mutate(o);
  apps::Stencil2dConfig cfg;
  cfg.n = 4096;
  cfg.iterations = 10;
  return apps::run_stencil2d(o, cfg).launch.makespan;
}

template <typename Fn>
void sweep(const char* app, Fn run) {
  const sim::Time full = run(kVariants[0]);
  for (const Variant& v : kVariants) {
    const sim::Time t = run(v);
    add_row(std::string("Ablation ") + app, v.name, t / full, 0,
            "time relative to full IMPACC");
    benchmark::RegisterBenchmark(
        (std::string("Ablation/") + app + "/" + v.name).c_str(),
        [t, full](benchmark::State& st) {
          for (auto _ : st) {
            st.SetIterationTime(t);
            st.counters["vs_full"] = t / full;
          }
        })
        ->UseManualTime()
        ->Iterations(1);
  }
}

void register_benchmarks() {
  sweep("dgemm-psg-1K", dgemm_run);
  sweep("jacobi-psg-4K", jacobi_run);
  sweep("lulesh-titan-64", lulesh_titan_run);
  sweep("stencil2d-psg-4K", stencil2d_run);
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Ablations", "per-feature contribution of IMPACC mechanisms")
