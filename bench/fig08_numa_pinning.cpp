// Figure 8: NUMA-friendly task-CPU pinning.
//
// Bandwidth of HtoD and DtoH accelerator memory copies, block sizes from
// 64 B to 256 MB, on the multi-socket systems (PSG and Beacon), with the
// task pinned near vs far from its accelerator. The paper reports the
// NUMA-friendly configuration winning by up to 3.5x.
#include <map>

#include "bench_common.h"

namespace impacc::bench {
namespace {

struct Point {
  std::string system;
  bool to_device;  // HtoD vs DtoH
  bool near;       // NUMA-friendly vs unfriendly pinning
  std::uint64_t bytes;
};

/// Marginal time of one update (4 transfers vs 1 cancels setup costs).
/// Rank 1 drives: under round-robin (unpinned) placement it lands on the
/// socket far from its accelerator.
sim::Time transfer_time(const Point& p) {
  static std::map<std::string, sim::Time> cache;
  const std::string key = p.system + std::to_string(p.to_device) +
                          std::to_string(p.near) + std::to_string(p.bytes);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto run = [&p](int reps) {
    auto o = model_options(p.system, 1, core::Framework::kImpacc);
    o.features.numa_pinning = p.near;
    const auto result = launch(o, [&p, reps] {
      if (mpi::comm_rank(mpi::world()) != 1) return;
      auto* buf = static_cast<char*>(node_malloc(p.bytes));
      acc::copyin(buf, p.bytes);
      for (int i = 0; i < reps; ++i) {
        if (p.to_device) {
          acc::update_device(buf, p.bytes);
        } else {
          acc::update_self(buf, p.bytes);
        }
      }
      acc::del(buf);
      node_free(buf);
    });
    return result.task_times[1];
  };
  const sim::Time t = (run(4) - run(1)) / 3.0;
  cache[key] = t;
  return t;
}

void bench_point(benchmark::State& state, Point p) {
  double gbs = 0;
  for (auto _ : state) {
    const sim::Time near_t = transfer_time(p);
    state.SetIterationTime(near_t);
    gbs = bw_gbps(static_cast<double>(p.bytes), near_t);
  }
  state.counters["GB/s"] = gbs;
  state.SetBytesProcessed(static_cast<std::int64_t>(p.bytes));
}

void register_benchmarks() {
  const std::vector<std::uint64_t> sizes = {
      64,        4096,       65536,       1 << 20,
      16 << 20,  64 << 20,   256ull << 20};
  for (const char* system : {"psg", "beacon"}) {
    for (bool to_device : {true, false}) {
      const char* dir = to_device ? "HtoD" : "DtoH";
      for (std::uint64_t bytes : sizes) {
        for (bool near : {true, false}) {
          const std::string name = std::string("Fig08/") + system + "/" +
                                   dir + "/" + (near ? "near" : "far") + "/" +
                                   std::to_string(bytes);
          benchmark::RegisterBenchmark(name.c_str(),
                                       [=](benchmark::State& st) {
                                         bench_point(
                                             st, Point{system, to_device,
                                                       near, bytes});
                                       })
              ->UseManualTime()
              ->Iterations(1);
        }
        // Summary row: bandwidth near vs far at this size.
        const Point pn{system, to_device, true, bytes};
        const Point pf{system, to_device, false, bytes};
        const double near_bw =
            bw_gbps(static_cast<double>(bytes), transfer_time(pn));
        const double far_bw =
            bw_gbps(static_cast<double>(bytes), transfer_time(pf));
        add_row(std::string("Fig08 ") + system + " " + dir,
                std::to_string(bytes) + "B", near_bw, far_bw,
                "GB/s (IMPACC col = near, MPI+X col = far)");
      }
    }
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 8", "NUMA-friendly task-CPU pinning bandwidth")
