// Figure 10: strong scalability of DGEMM.
//
// (a)-(d): PSG, matrices 1K..8K, 1..8 tasks, speedup normalized to the
// MPI+OpenACC single-task run. (e): Beacon, 1..128 tasks. (f): Titan,
// 24K matrices, 128..8192 nodes, normalized to MPI+OpenACC at 128 tasks.
// IMPACC keeps scaling on communication-bound points (node heap aliasing
// of the broadcast inputs + unified activity queues) where the baseline
// degrades.
#include <map>

#include "apps/dgemm.h"
#include "bench_common.h"

namespace impacc::bench {
namespace {

sim::Time dgemm_time(const std::string& system, int nodes, int devices,
                     core::Framework fw, long n) {
  // Memoized: each point is evaluated once even though it feeds both the
  // google-benchmark entry and the summary table.
  static std::map<std::string, sim::Time> cache;
  const std::string key = system + "/" + std::to_string(nodes) + "/" +
                          std::to_string(devices) + "/" +
                          std::to_string(static_cast<int>(fw)) + "/" +
                          std::to_string(n);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto o = model_options(system, nodes, fw);
  if (devices > 0) limit_devices(o, devices);
  apps::DgemmConfig cfg;
  cfg.n = n;
  const sim::Time t = apps::run_dgemm(o, cfg).launch.makespan;
  cache[key] = t;
  return t;
}

/// Baseline normalization: MPI+OpenACC with a single task (paper's 1-task
/// runs use one device of the node).
double reference_time(const std::string& system, long n, int ref_tasks) {
  static std::map<std::string, double> cache;
  const std::string key = system + "/" + std::to_string(n) + "/" +
                          std::to_string(ref_tasks);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  double t = 0;
  if (system == "psg") {
    t = dgemm_time("psg", 1, ref_tasks, core::Framework::kMpiOpenacc, n);
  } else if (system == "beacon") {
    t = dgemm_time("beacon", (ref_tasks + 3) / 4, ref_tasks,
                   core::Framework::kMpiOpenacc, n);
  } else {
    t = dgemm_time("titan", ref_tasks, 0, core::Framework::kMpiOpenacc, n);
  }
  cache[key] = t;
  return t;
}

void register_benchmarks() {
  // (a)-(d): PSG.
  for (long n : {1024L, 2048L, 4096L, 8192L}) {
    for (int tasks : {1, 2, 4, 8}) {
      for (core::Framework fw :
           {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
        const std::string name = "Fig10/psg/n" + std::to_string(n) + "/" +
                                 std::to_string(tasks) + "tasks/" +
                                 core::framework_name(fw);
        benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
          for (auto _ : st) {
            const sim::Time t = dgemm_time("psg", 1, tasks, fw, n);
            st.SetIterationTime(t);
            st.counters["speedup"] = reference_time("psg", n, 1) / t;
          }
        })->UseManualTime()->Iterations(1);
      }
      const double ref = reference_time("psg", n, 1);
      add_row("Fig10 PSG " + std::to_string(n / 1024) + "Kx" +
                  std::to_string(n / 1024) + "K",
              std::to_string(tasks) + " tasks",
              ref / dgemm_time("psg", 1, tasks, core::Framework::kImpacc, n),
              ref / dgemm_time("psg", 1, tasks, core::Framework::kMpiOpenacc,
                               n),
              "speedup vs MPI+X 1-task");
    }
  }
  // (e): Beacon, 4 MICs per node, up to 128 tasks over 32 nodes.
  for (int tasks : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const int nodes = (tasks + 3) / 4;
    const long n = 8192;
    const double ref = reference_time("beacon", n, 1);
    for (core::Framework fw :
         {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
      const std::string name = "Fig10/beacon/" + std::to_string(tasks) +
                               "tasks/" + core::framework_name(fw);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
        for (auto _ : st) {
          const sim::Time t = dgemm_time("beacon", nodes, tasks, fw, n);
          st.SetIterationTime(t);
          st.counters["speedup"] = ref / t;
        }
      })->UseManualTime()->Iterations(1);
    }
    add_row("Fig10 Beacon 8Kx8K", std::to_string(tasks) + " tasks",
            ref / dgemm_time("beacon", nodes, tasks, core::Framework::kImpacc,
                             n),
            ref / dgemm_time("beacon", nodes, tasks,
                             core::Framework::kMpiOpenacc, n),
            "speedup vs MPI+X 1-task");
  }
  // (f): Titan, 24K matrices, 128..8192 nodes (1 GPU per node),
  // normalized to the MPI+OpenACC 128-task run.
  for (int nodes : {128, 256, 512, 1024, 2048, 4096, 8192}) {
    const long n = 24576;
    const double ref = reference_time("titan", n, 128);
    for (core::Framework fw :
         {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
      const std::string name = "Fig10/titan/" + std::to_string(nodes) +
                               "nodes/" + core::framework_name(fw);
      benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
        for (auto _ : st) {
          const sim::Time t = dgemm_time("titan", nodes, 0, fw, n);
          st.SetIterationTime(t);
          st.counters["speedup"] = ref / t;
        }
      })->UseManualTime()->Iterations(1);
    }
    add_row("Fig10 Titan 24Kx24K", std::to_string(nodes) + " nodes",
            ref / dgemm_time("titan", nodes, 0, core::Framework::kImpacc, n),
            ref / dgemm_time("titan", nodes, 0, core::Framework::kMpiOpenacc,
                             n),
            "speedup vs MPI+X 128-task");
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 10", "DGEMM strong scalability")
