// Figure 9: point-to-point communication bandwidth, IMPACC vs
// MPI+OpenACC.
//
// (a)-(c) intra-node HtoH / HtoD / DtoD on PSG; (d)-(f) the same on
// Beacon; (g)-(i) internode HtoH / HtoD / DtoD on Titan. IMPACC fuses
// intra-node pairs into single copies (direct PCIe peer transfers for
// DtoD, ~8x on PSG) and rides GPUDirect RDMA internode on Titan; the
// baseline stages everything through host memory with explicit updates.
#include <map>

#include "bench_common.h"

namespace impacc::bench {
namespace {

enum class Pattern { kHtoH, kHtoD, kDtoD };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kHtoH: return "HtoH";
    case Pattern::kHtoD: return "HtoD";
    case Pattern::kDtoD: return "DtoD";
  }
  return "?";
}

struct Point {
  std::string system;
  int nodes;       // 1 = intra-node pair, 2 = internode pair
  Pattern pattern;
  core::Framework fw;
  std::uint64_t bytes;
};

/// Marginal one-way message time between ranks 0 and 1, measured with a
/// ping-pong (the standard p2p bandwidth methodology: each message must
/// complete before the next starts, so staging costs are not hidden by
/// pipelining). IMPACC uses the unified routines (device hints); the
/// baseline performs explicit update self/device staging.
sim::Time message_time(const Point& p) {
  static std::map<std::string, sim::Time> cache;
  const std::string key = p.system + std::to_string(p.nodes) +
                          std::to_string(static_cast<int>(p.pattern)) +
                          std::to_string(static_cast<int>(p.fw)) +
                          std::to_string(p.bytes);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto run = [&p](int msgs) {
    auto o = model_options(p.system, p.nodes, p.fw);
    if (p.nodes > 1) {
      // Internode pair: rank 1 must live on the second node.
      limit_devices(o, 1);
    }
    const auto result = launch(o, [&p, msgs] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      if (r > 1) return;
      // Buffer placement per pattern: HtoH = both host; HtoD = host
      // sender, device receiver; DtoD = both device. Ping-pong swaps the
      // roles each half-round.
      const bool send_dev = p.pattern == Pattern::kDtoD;
      const bool recv_dev = p.pattern != Pattern::kHtoH;
      const bool impacc = p.fw == core::Framework::kImpacc;
      // In the reverse direction of the ping-pong, rank 1 sends from the
      // buffer it received into and rank 0 receives into its send buffer.
      const bool my_send_dev = r == 0 ? send_dev : recv_dev;
      const bool my_recv_dev = r == 0 ? send_dev : recv_dev;
      const bool my_dev = my_send_dev || my_recv_dev;
      auto* buf = static_cast<char*>(node_malloc(p.bytes));
      if (my_dev) acc::copyin(buf, p.bytes);
      const int count = static_cast<int>(p.bytes);
      for (int m = 0; m < msgs; ++m) {
        if (r == 0) {
          if (my_dev && impacc) {
            acc::mpi({.send_device = true});
          } else if (my_dev) {
            acc::update_self(buf, p.bytes);
          }
          mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
          if (my_dev && impacc) acc::mpi({.recv_device = true});
          mpi::recv(buf, count, mpi::Datatype::kByte, 1, 2, w);
          if (my_dev && !impacc) acc::update_device(buf, p.bytes);
        } else {
          if (my_dev && impacc) acc::mpi({.recv_device = true});
          mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
          if (my_dev && !impacc) acc::update_device(buf, p.bytes);
          if (my_dev && impacc) {
            acc::mpi({.send_device = true});
          } else if (my_dev) {
            acc::update_self(buf, p.bytes);
          }
          mpi::send(buf, count, mpi::Datatype::kByte, 0, 2, w);
        }
      }
      if (my_dev) acc::del(buf);
      node_free(buf);
    });
    return std::max(result.task_times[0], result.task_times[1]);
  };
  // Marginal round-trip over 3 extra rounds; two messages per round.
  const sim::Time t = (run(4) - run(1)) / 3.0 / 2.0;
  cache[key] = t;
  return t;
}

void bench_point(benchmark::State& state, Point p) {
  double gbs = 0;
  for (auto _ : state) {
    const sim::Time t = message_time(p);
    state.SetIterationTime(t);
    gbs = bw_gbps(static_cast<double>(p.bytes), t);
  }
  state.counters["GB/s"] = gbs;
  state.SetBytesProcessed(static_cast<std::int64_t>(p.bytes));
}

/// One-way staged internode DtoD transfer time on Titan with GPUDirect
/// off, under a chunk-pipeline setting. A zero-message run is subtracted
/// so only the rendezvous transfer remains.
sim::Time staged_d2d_time(std::uint64_t bytes, bool chunk,
                          std::uint64_t chunk_bytes) {
  auto run = [&](int msgs) {
    auto o = model_options("titan", 2, core::Framework::kImpacc);
    limit_devices(o, 1);
    o.features.gpudirect_rdma = false;  // force host staging
    o.features.chunk_pipeline = chunk;
    o.chunk_bytes = chunk_bytes;
    const auto result = launch(o, [bytes, msgs] {
      auto w = mpi::world();
      const int r = mpi::comm_rank(w);
      auto* buf = static_cast<char*>(node_malloc(bytes));
      acc::copyin(buf, bytes);
      const int count = static_cast<int>(bytes);
      for (int m = 0; m < msgs; ++m) {
        if (r == 0) {
          acc::mpi({.send_device = true});
          mpi::send(buf, count, mpi::Datatype::kByte, 1, 1, w);
        } else {
          acc::mpi({.recv_device = true});
          mpi::recv(buf, count, mpi::Datatype::kByte, 0, 1, w);
        }
      }
      acc::del(buf);
      node_free(buf);
    });
    return result.makespan;
  };
  return run(1) - run(0);
}

/// Chunk-pipeline sweep at the 64 MiB Titan internode DtoD point: how the
/// transfer time converges to the slowest stage as the chunk shrinks.
void register_chunk_sweep() {
  const std::uint64_t bytes = 64 << 20;
  struct ChunkVariant {
    const char* label;
    bool enabled;
    std::uint64_t chunk_bytes;
  };
  const std::vector<ChunkVariant> variants = {
      {"off", false, 0},
      {"256K", true, 256 << 10},
      {"1M", true, 1 << 20},
      {"4M", true, 4 << 20},
      {"16M", true, 16 << 20},
  };
  const sim::Time mono = staged_d2d_time(bytes, false, 0);
  for (const ChunkVariant& v : variants) {
    const sim::Time t = staged_d2d_time(bytes, v.enabled, v.chunk_bytes);
    add_row("Fig09+ Titan staged DtoD", std::string("chunk ") + v.label,
            bw_gbps(static_cast<double>(bytes), t), mono / t,
            "GB/s (ratio vs monolithic)");
    const std::string name =
        std::string("Fig09/titan/inter/DtoD-staged/chunk-") + v.label + "/" +
        std::to_string(bytes);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [t, mono, bytes](benchmark::State& st) {
          for (auto _ : st) {
            st.SetIterationTime(t);
            st.counters["GB/s"] = bw_gbps(static_cast<double>(bytes), t);
            st.counters["vs_monolithic"] = mono / t;
          }
        })
        ->UseManualTime()
        ->Iterations(1);
  }
}

void register_benchmarks() {
  struct Panel {
    const char* label;
    const char* system;
    int nodes;
    Pattern pattern;
  };
  // The nine panels of Fig. 9.
  const std::vector<Panel> panels = {
      {"Fig09(a) PSG intra", "psg", 1, Pattern::kHtoH},
      {"Fig09(b) PSG intra", "psg", 1, Pattern::kHtoD},
      {"Fig09(c) PSG intra", "psg", 1, Pattern::kDtoD},
      {"Fig09(d) Beacon intra", "beacon", 1, Pattern::kHtoH},
      {"Fig09(e) Beacon intra", "beacon", 1, Pattern::kHtoD},
      {"Fig09(f) Beacon intra", "beacon", 1, Pattern::kDtoD},
      {"Fig09(g) Titan inter", "titan", 2, Pattern::kHtoH},
      {"Fig09(h) Titan inter", "titan", 2, Pattern::kHtoD},
      {"Fig09(i) Titan inter", "titan", 2, Pattern::kDtoD},
  };
  const std::vector<std::uint64_t> sizes =
      bench_smoke() ? std::vector<std::uint64_t>{4096, 16 << 20}
                    : std::vector<std::uint64_t>{4096, 1 << 20, 16 << 20,
                                                 64 << 20};
  for (const Panel& panel : panels) {
    for (std::uint64_t bytes : sizes) {
      for (core::Framework fw :
           {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
        const std::string name =
            std::string("Fig09/") + panel.system + "/" +
            (panel.nodes > 1 ? "inter/" : "intra/") +
            pattern_name(panel.pattern) + "/" +
            core::framework_name(fw) + "/" + std::to_string(bytes);
        const Point p{panel.system, panel.nodes, panel.pattern, fw, bytes};
        benchmark::RegisterBenchmark(
            name.c_str(), [p](benchmark::State& st) { bench_point(st, p); })
            ->UseManualTime()
            ->Iterations(1);
      }
      const Point pi{panel.system, panel.nodes, panel.pattern,
                     core::Framework::kImpacc, bytes};
      const Point pb{panel.system, panel.nodes, panel.pattern,
                     core::Framework::kMpiOpenacc, bytes};
      add_row(std::string(panel.label) + " " + pattern_name(panel.pattern),
              std::to_string(bytes >> 10) + "KB",
              bw_gbps(static_cast<double>(bytes), message_time(pi)),
              bw_gbps(static_cast<double>(bytes), message_time(pb)), "GB/s");
    }
  }
  register_chunk_sweep();
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 9", "point-to-point communication bandwidth")
