// Collective latency: the node-aware two-level algorithms (section 3.5)
// against the flat schedules they replace.
//
// Not a paper figure — the paper reports collective effects only through
// the applications — but the two-level rework needs its own series: each
// (system, collective, payload) point runs with hier_collectives on and
// off and reports the simulated time of one call, measured marginally so
// launch and teardown overheads cancel.
#include <map>

#include "bench_common.h"

namespace impacc::bench {
namespace {

enum class Coll { kBarrier, kBcast, kAllreduce, kAllgather, kReduceScatter };

const char* coll_name(Coll c) {
  switch (c) {
    case Coll::kBarrier: return "barrier";
    case Coll::kBcast: return "bcast";
    case Coll::kAllreduce: return "allreduce";
    case Coll::kAllgather: return "allgather";
    case Coll::kReduceScatter: return "reduce_scatter";
  }
  return "?";
}

/// One collective call. `bytes` is the payload a rank contributes (the
/// per-rank block for allgather / reduce_scatter_block); model-only runs
/// accept null buffers, the counts are what the cost model sees.
void call_coll(Coll c, std::uint64_t bytes) {
  auto w = mpi::world();
  const int count = static_cast<int>(bytes);
  switch (c) {
    case Coll::kBarrier:
      mpi::barrier(w);
      break;
    case Coll::kBcast:
      mpi::bcast(nullptr, count, mpi::Datatype::kByte, 0, w);
      break;
    case Coll::kAllreduce:
      mpi::allreduce(nullptr, nullptr, count, mpi::Datatype::kByte,
                     mpi::Op::kSum, w);
      break;
    case Coll::kAllgather:
      mpi::allgather(nullptr, count, mpi::Datatype::kByte, nullptr, count,
                     mpi::Datatype::kByte, w);
      break;
    case Coll::kReduceScatter:
      mpi::reduce_scatter_block(nullptr, nullptr, count,
                                mpi::Datatype::kByte, mpi::Op::kSum, w);
      break;
  }
}

/// Marginal simulated time of one collective call on the given system.
sim::Time coll_time(const std::string& system, int nodes, bool hier, Coll c,
                    std::uint64_t bytes) {
  static std::map<std::string, sim::Time> cache;
  const std::string key = system + std::to_string(nodes) +
                          std::to_string(hier) +
                          std::to_string(static_cast<int>(c)) +
                          std::to_string(bytes);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto run = [&](int reps) {
    auto o = model_options(system, nodes, core::Framework::kImpacc);
    o.features.hier_collectives = hier;
    return launch(o, [c, bytes, reps] {
             for (int i = 0; i < reps; ++i) call_coll(c, bytes);
           })
        .makespan;
  };
  const sim::Time t = (run(3) - run(1)) / 2.0;
  cache[key] = t;
  return t;
}

void register_benchmarks() {
  struct System {
    const char* label;
    const char* name;
    int nodes;
  };
  // Titan-like: one GPU per node, the inter-node phase dominates. PSG x3:
  // eight ranks per node, the shared-memory phase matters too.
  const std::vector<System> systems = {
      {"Coll titan 8n", "titan", 8},
      {"Coll psg 3nx8", "psg", 3},
  };
  const std::vector<Coll> colls = {Coll::kBarrier, Coll::kBcast,
                                   Coll::kAllreduce, Coll::kAllgather,
                                   Coll::kReduceScatter};
  const std::vector<std::uint64_t> sizes =
      bench_smoke() ? std::vector<std::uint64_t>{4096}
                    : std::vector<std::uint64_t>{4096, 256 << 10, 4 << 20};
  for (const System& s : systems) {
    for (const Coll c : colls) {
      // Barrier carries no payload; run it at a single size point.
      const std::vector<std::uint64_t> pts =
          c == Coll::kBarrier ? std::vector<std::uint64_t>{0} : sizes;
      for (const std::uint64_t bytes : pts) {
        const sim::Time hier_t = coll_time(s.name, s.nodes, true, c, bytes);
        const sim::Time flat_t = coll_time(s.name, s.nodes, false, c, bytes);
        add_row(std::string(s.label) + " " + coll_name(c),
                std::to_string(bytes >> 10) + "KB", hier_t * 1e3,
                flat_t * 1e3, "ms simulated (hier vs flat)");
        for (const bool hier : {true, false}) {
          const sim::Time t = hier ? hier_t : flat_t;
          const std::string name = std::string("Coll/") + s.name + "/" +
                                   std::to_string(s.nodes) + "n/" +
                                   coll_name(c) + "/" +
                                   (hier ? "hier" : "flat") + "/" +
                                   std::to_string(bytes);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [t, hier_t, flat_t](benchmark::State& st) {
                for (auto _ : st) {
                  st.SetIterationTime(t);
                  st.counters["vs_flat"] = flat_t > 0 ? t / flat_t : 1.0;
                  st.counters["hier_speedup"] =
                      hier_t > 0 ? flat_t / hier_t : 1.0;
                }
              })
              ->UseManualTime()
              ->Iterations(1);
        }
      }
    }
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Collectives", "two-level (node-aware) vs flat collective latency")
