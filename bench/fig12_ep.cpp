// Figure 12: speedup of NAS EP.
//
// (a)-(e): classes A..E on PSG, 1..8 tasks. (f): class E on Beacon,
// 1..128 tasks. (g): a 64x-class-E problem on Titan, 128..8192 nodes.
// EP has essentially no communication: IMPACC and MPI+OpenACC tie, and
// large classes scale nearly linearly — exactly the paper's point.
#include <map>

#include "apps/ep.h"
#include "bench_common.h"

namespace impacc::bench {
namespace {

sim::Time ep_time(const std::string& system, int nodes, int devices,
                  core::Framework fw, int m) {
  static std::map<std::string, sim::Time> cache;
  const std::string key = system + "/" + std::to_string(nodes) + "/" +
                          std::to_string(devices) + "/" +
                          std::to_string(static_cast<int>(fw)) + "/" +
                          std::to_string(m);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto o = model_options(system, nodes, fw);
  if (devices > 0) limit_devices(o, devices);
  apps::EpConfig cfg;
  cfg.m = m;
  const sim::Time t = apps::run_ep(o, cfg).launch.makespan;
  cache[key] = t;
  return t;
}

void add_point(const std::string& series, const std::string& system,
               int nodes, int devices, int m, double ref) {
  const sim::Time ti =
      ep_time(system, nodes, devices, core::Framework::kImpacc, m);
  const sim::Time tb =
      ep_time(system, nodes, devices, core::Framework::kMpiOpenacc, m);
  const std::string point = devices > 0
                                ? std::to_string(devices) + " tasks"
                                : std::to_string(nodes) + " nodes";
  add_row(series, point, ref / ti, ref / tb, "speedup");
  for (core::Framework fw :
       {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
    const std::string name = "Fig12/" + system + "/m" + std::to_string(m) +
                             "/" + point + "/" + core::framework_name(fw);
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
      for (auto _ : st) {
        const sim::Time t = ep_time(system, nodes, devices, fw, m);
        st.SetIterationTime(t);
        st.counters["speedup"] = ref / t;
      }
    })->UseManualTime()->Iterations(1);
  }
}

void register_benchmarks() {
  // (a)-(e): PSG, classes A..E.
  for (char cls : {'A', 'B', 'C', 'D', 'E'}) {
    const int m = apps::ep_class_m(cls);
    const double ref =
        ep_time("psg", 1, 1, core::Framework::kMpiOpenacc, m);
    for (int tasks : {1, 2, 4, 8}) {
      add_point(std::string("Fig12 PSG class ") + cls, "psg", 1, tasks, m,
                ref);
    }
  }
  // (f): Beacon, class E, up to 128 tasks (4 per node).
  {
    const int m = apps::ep_class_m('E');
    const double ref =
        ep_time("beacon", 1, 1, core::Framework::kMpiOpenacc, m);
    for (int tasks : {1, 4, 16, 64, 128}) {
      add_point("Fig12 Beacon class E", "beacon", (tasks + 3) / 4, tasks, m,
                ref);
    }
  }
  // (g): Titan, 64x class E (m = 46), normalized to 128 tasks.
  {
    const int m = apps::ep_class_m('E') + 6;
    const double ref =
        ep_time("titan", 128, 0, core::Framework::kMpiOpenacc, m);
    for (int nodes : {128, 512, 2048, 8192}) {
      add_point("Fig12 Titan 64xE", "titan", nodes, 0, m, ref);
    }
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 12", "EP speedup")
