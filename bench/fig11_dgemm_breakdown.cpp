// Figure 11: execution time breakdown for DGEMM in PSG.
//
// For each (matrix size, task count), total execution time normalized to
// the MPI+OpenACC 1-task run for that size, split into kernel time and
// communication time. On small matrices IMPACC dramatically cuts the
// communication share; on large ones kernel time dominates and the two
// frameworks converge.
#include <map>

#include "apps/dgemm.h"
#include "bench_common.h"

namespace impacc::bench {
namespace {

struct Breakdown {
  sim::Time total = 0;
  sim::Time kernel = 0;  // critical-path kernel time (max over tasks)
  sim::Time comm = 0;    // everything else
};

Breakdown dgemm_breakdown(core::Framework fw, long n, int tasks) {
  static std::map<std::string, Breakdown> cache;
  const std::string key = std::to_string(static_cast<int>(fw)) + "/" +
                          std::to_string(n) + "/" + std::to_string(tasks);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto o = model_options("psg", 1, fw);
  limit_devices(o, tasks);
  apps::DgemmConfig cfg;
  cfg.n = n;
  const auto r = apps::run_dgemm(o, cfg);
  Breakdown b;
  b.total = r.launch.makespan;
  for (const auto& s : r.launch.task_stats) {
    b.kernel = std::max(b.kernel, s.kernel_busy);
  }
  b.comm = b.total - b.kernel;
  if (b.comm < 0) b.comm = 0;
  cache[key] = b;
  return b;
}

/// Observability cross-check (ISSUE 3): rerun one representative point
/// with the metrics registry on and report the live histogram totals next
/// to the TaskStats the breakdown is computed from. The two are collected
/// by independent code paths, so a drift here means the breakdown bars no
/// longer measure what the runtime actually did. With
/// IMPACC_BENCH_METRICS set the snapshot is also written to disk for
/// tools/metrics_diff.sh.
void register_metrics_selfcheck() {
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  limit_devices(o, 2);
  o.metrics_path = bench_metrics_spec();
  apps::DgemmConfig cfg;
  cfg.n = 1024;
  const auto r = apps::run_dgemm(o, cfg);
  const obs::MetricsSnapshot& m = r.launch.metrics;
  add_row("Fig11 metrics self-check", "kernel s",
          m.value("acc.kernel.seconds.sum"), r.launch.total.kernel_busy,
          "hist sum vs TaskStats");
  add_row("Fig11 metrics self-check", "mpi wait s",
          m.value("mpi.wait.seconds.sum"), r.launch.total.mpi_wait,
          "hist sum vs TaskStats");
}

void register_benchmarks() {
  register_metrics_selfcheck();
  for (long n : {1024L, 2048L, 4096L, 8192L}) {
    const Breakdown ref =
        dgemm_breakdown(core::Framework::kMpiOpenacc, n, 1);
    for (int tasks : {1, 2, 4, 8}) {
      for (core::Framework fw :
           {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
        const std::string name = "Fig11/psg/n" + std::to_string(n) + "/" +
                                 std::to_string(tasks) + "tasks/" +
                                 core::framework_name(fw);
        benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
          for (auto _ : st) {
            const Breakdown b = dgemm_breakdown(fw, n, tasks);
            st.SetIterationTime(b.total);
            st.counters["kernel_frac_of_ref"] = b.kernel / ref.total;
            st.counters["comm_frac_of_ref"] = b.comm / ref.total;
            st.counters["total_norm"] = b.total / ref.total;
          }
        })->UseManualTime()->Iterations(1);
      }
      const Breakdown bi = dgemm_breakdown(core::Framework::kImpacc, n, tasks);
      const Breakdown bb =
          dgemm_breakdown(core::Framework::kMpiOpenacc, n, tasks);
      add_row("Fig11 PSG " + std::to_string(n / 1024) + "K comm-share",
              std::to_string(tasks) + " tasks", bi.comm / bi.total,
              bb.comm / bb.total, "fraction of own total");
    }
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 11", "DGEMM execution time breakdown (PSG)")
