// Figure 15: performance scaling of LULESH (weak scaling).
//
// Perfect-cube task counts; each task keeps an s^3 block as the task
// count grows. PSG: 1 and 8 tasks. Beacon: up to 64 tasks. Titan: up to
// 1000 nodes by default (the paper reaches 8000; pass --lulesh-big to add
// 3375, at the cost of several wall-clock minutes on one core). All
// communication is host-to-host (unmodified LULESH); IMPACC gains come
// from message fusion and pinning, with a small handler overhead on
// Beacon (the paper's ~5% regression).
#include <cstring>
#include <map>

#include "apps/lulesh/driver.h"
#include "bench_common.h"

namespace impacc::bench {
namespace {

constexpr int kIterations = 5;
bool g_big = false;

sim::Time lulesh_time(const std::string& system, int tasks,
                      core::Framework fw, long s) {
  static std::map<std::string, sim::Time> cache;
  const std::string key = system + "/" + std::to_string(tasks) + "/" +
                          std::to_string(static_cast<int>(fw)) + "/" +
                          std::to_string(s);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  // Node count: PSG fits 8 tasks in one node; Beacon packs 4 per node;
  // Titan runs one per node.
  int nodes = tasks;
  if (system == "psg") nodes = 1;
  if (system == "beacon") nodes = (tasks + 3) / 4;
  auto o = model_options(system, nodes, fw);
  if (system == "psg" || system == "beacon") {
    // Limit devices so exactly `tasks` tasks exist.
    int remaining = tasks;
    for (auto& node : o.cluster.nodes) {
      const int here = std::min<int>(
          remaining, static_cast<int>(node.devices.size()));
      node.devices.resize(static_cast<std::size_t>(here));
      remaining -= here;
    }
  }
  apps::LuleshConfig cfg;
  cfg.s = s;
  cfg.iterations = kIterations;
  const sim::Time t = apps::run_lulesh(o, cfg).launch.makespan;
  cache[key] = t;
  return t;
}

void add_point(const std::string& series, const std::string& system,
               int tasks, long s, double ref) {
  const sim::Time ti = lulesh_time(system, tasks, core::Framework::kImpacc, s);
  const sim::Time tb =
      lulesh_time(system, tasks, core::Framework::kMpiOpenacc, s);
  // Weak scaling: report time normalized to the reference (1.0 = perfect).
  add_row(series, std::to_string(tasks) + " tasks", ti / ref, tb / ref,
          "normalized time (lower=better)");
  for (core::Framework fw :
       {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
    benchmark::RegisterBenchmark(
        ("Fig15/" + system + "/" + std::to_string(tasks) + "tasks/" +
            core::framework_name(fw)).c_str(),
        [=](benchmark::State& st) {
          for (auto _ : st) {
            const sim::Time t = lulesh_time(system, tasks, fw, s);
            st.SetIterationTime(t);
            st.counters["norm_time"] = t / ref;
          }
        })
        ->UseManualTime()
        ->Iterations(1);
  }
}

void register_benchmarks() {
  // PSG: problem size 48^3 per task (paper runs large per-task meshes).
  {
    const long s = 48;
    const double ref =
        lulesh_time("psg", 1, core::Framework::kMpiOpenacc, s);
    for (int tasks : {1, 8}) add_point("Fig15 PSG s=48", "psg", tasks, s, ref);
  }
  // Beacon: 32^3 per task, cubes up to 64.
  {
    const long s = 32;
    const double ref =
        lulesh_time("beacon", 1, core::Framework::kMpiOpenacc, s);
    for (int tasks : {1, 8, 27, 64}) {
      add_point("Fig15 Beacon s=32", "beacon", tasks, s, ref);
    }
  }
  // Titan: 24^3 per task, cubes 125..1000 (paper: 125..8000), normalized
  // to MPI+OpenACC at 125 tasks.
  {
    const long s = 24;
    const double ref =
        lulesh_time("titan", 125, core::Framework::kMpiOpenacc, s);
    std::vector<int> counts = {125, 216, 512, 1000};
    if (g_big) counts.push_back(3375);
    for (int tasks : counts) {
      add_point("Fig15 Titan s=24", "titan", tasks, s, ref);
    }
  }
}

}  // namespace
}  // namespace impacc::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lulesh-big") == 0) {
      impacc::bench::g_big = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  impacc::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  impacc::bench::print_summary("Figure 15", "LULESH weak scaling");
  benchmark::Shutdown();
  return 0;
}
