// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary reproduces one table or figure from the paper's evaluation
// (section 4): it sweeps the same parameters, runs both frameworks where
// the figure compares them, reports simulated time through
// google-benchmark's manual-time mode, and prints a paper-style series
// table at the end (captured into EXPERIMENTS.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "impacc.h"

namespace impacc::bench {

/// Launch options for a benchmark point: model-only (timing) runs with a
/// generous virtual node heap for the big matrices.
inline core::LaunchOptions model_options(const std::string& system, int nodes,
                                         core::Framework fw) {
  core::LaunchOptions o;
  o.cluster = sim::make_system(system, nodes);
  o.framework = fw;
  o.mode = core::ExecMode::kModelOnly;
  o.node_heap_bytes = 256ull << 30;  // virtual; never materialized
  return o;
}

/// Restrict a single-node system to its first `devices` accelerators
/// (the paper's PSG task sweeps use 1..8 of the node's GPUs).
inline void limit_devices(core::LaunchOptions& o, int devices) {
  for (auto& node : o.cluster.nodes) {
    if (static_cast<int>(node.devices.size()) > devices) {
      node.devices.resize(static_cast<std::size_t>(devices));
    }
  }
}

/// One row of the end-of-run summary table.
struct Row {
  std::string series;  // e.g. "Fig10(a) PSG 1Kx1K"
  std::string x;       // sweep point, e.g. "4 tasks"
  double impacc = 0;   // metric for IMPACC
  double baseline = 0; // metric for MPI+OpenACC (0 when not applicable)
  std::string unit;
};

/// Global summary accumulated while benchmarks run; printed by
/// print_summary() after RunSpecifiedBenchmarks.
std::vector<Row>& summary();

inline std::vector<Row>& summary() {
  static std::vector<Row> rows;
  return rows;
}

inline void add_row(std::string series, std::string x, double impacc,
                    double baseline, std::string unit) {
  summary().push_back(
      {std::move(series), std::move(x), impacc, baseline, std::move(unit)});
}

/// Print the accumulated series in a fixed-width table.
inline void print_summary(const char* figure, const char* caption) {
  std::printf("\n=== %s: %s ===\n", figure, caption);
  std::printf("%-28s %-16s %14s %14s  %s\n", "series", "point", "IMPACC",
              "MPI+OpenACC", "unit");
  for (const Row& r : summary()) {
    if (r.baseline != 0) {
      std::printf("%-28s %-16s %14.4f %14.4f  %s\n", r.series.c_str(),
                  r.x.c_str(), r.impacc, r.baseline, r.unit.c_str());
    } else {
      std::printf("%-28s %-16s %14.4f %14s  %s\n", r.series.c_str(),
                  r.x.c_str(), r.impacc, "-", r.unit.c_str());
    }
  }
  std::fflush(stdout);
}

/// Effective bandwidth in GB/s for `bytes` moved in simulated `seconds`.
inline double bw_gbps(double bytes, double seconds) {
  return seconds > 0 ? bytes / seconds / 1e9 : 0.0;
}

/// Metrics spec for a benchmark's representative instrumented run:
/// IMPACC_BENCH_METRICS=path[,format] exports the snapshot there (so CI
/// can diff it against a committed baseline, tools/metrics_diff.sh);
/// unset, the snapshot stays in memory ("-") for the self-check rows.
inline std::string bench_metrics_spec() {
  const char* e = std::getenv("IMPACC_BENCH_METRICS");
  return (e != nullptr && *e != '\0') ? std::string(e) : std::string("-");
}

/// IMPACC_BENCH_SMOKE=1 shrinks the sweeps to a CI-sized subset: every
/// series still appears, but only at its cheapest points.
inline bool bench_smoke() {
  const char* e = std::getenv("IMPACC_BENCH_SMOKE");
  return e != nullptr && *e != '\0' && *e != '0';
}

/// True when argv requests a machine-readable report. The human summary
/// table must stay off stdout then, or it corrupts the JSON/CSV document.
inline bool machine_format_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark_format=", 0) == 0 &&
        arg != "--benchmark_format=console") {
      return true;
    }
  }
  return false;
}

/// Standard main: run benchmarks, then print the summary table (unless a
/// machine-readable format owns stdout).
#define IMPACC_BENCH_MAIN(figure, caption)                               \
  int main(int argc, char** argv) {                                      \
    const bool machine =                                                 \
        ::impacc::bench::machine_format_requested(argc, argv);           \
    benchmark::Initialize(&argc, argv);                                  \
    register_benchmarks();                                               \
    benchmark::RunSpecifiedBenchmarks();                                 \
    if (!machine) ::impacc::bench::print_summary(figure, caption);       \
    benchmark::Shutdown();                                               \
    return 0;                                                            \
  }

}  // namespace impacc::bench
