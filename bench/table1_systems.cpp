// Table 1: the target heterogeneous accelerator systems.
//
// Prints our encoded system presets in the paper's table layout so the
// configuration driving every other benchmark is auditable.
#include <cstdio>
#include <string>
#include <vector>

#include "impacc.h"

namespace {

using impacc::sim::ClusterDesc;

std::string device_summary(const ClusterDesc& c) {
  const auto& devs = c.nodes[0].devices;
  return std::to_string(devs.size()) + " x " + devs[0].model;
}

void print_row(const char* label, const std::string& psg,
               const std::string& beacon, const std::string& titan) {
  std::printf("%-30s %-28s %-30s %-28s\n", label, psg.c_str(), beacon.c_str(),
              titan.c_str());
}

std::string gb(std::uint64_t bytes) {
  return std::to_string(bytes >> 30) + "GB";
}

std::string gbps(double bps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fGB/s eff.", bps / 1e9);
  return buf;
}

}  // namespace

int main() {
  const ClusterDesc psg = impacc::sim::make_psg();
  const ClusterDesc beacon = impacc::sim::make_beacon();
  const ClusterDesc titan = impacc::sim::make_titan();

  std::printf("=== Table 1: The Target Heterogeneous Accelerator Systems "
              "(simulated presets) ===\n");
  print_row("System", psg.name, beacon.name, titan.name);
  print_row("Number of nodes (preset)", std::to_string(psg.num_nodes()),
            std::to_string(beacon.num_nodes()),
            std::to_string(titan.num_nodes()));
  print_row("CPU sockets x cores",
            std::to_string(psg.nodes[0].sockets) + " x " +
                std::to_string(psg.nodes[0].cores_per_socket),
            std::to_string(beacon.nodes[0].sockets) + " x " +
                std::to_string(beacon.nodes[0].cores_per_socket),
            std::to_string(titan.nodes[0].sockets) + " x " +
                std::to_string(titan.nodes[0].cores_per_socket));
  print_row("Main memory size", gb(psg.nodes[0].host_mem_bytes),
            gb(beacon.nodes[0].host_mem_bytes),
            gb(titan.nodes[0].host_mem_bytes));
  print_row("Accelerators", device_summary(psg), device_summary(beacon),
            device_summary(titan));
  print_row("Memory per accelerator", gb(psg.nodes[0].devices[0].mem_bytes),
            gb(beacon.nodes[0].devices[0].mem_bytes),
            gb(titan.nodes[0].devices[0].mem_bytes));
  print_row("PCI Express", gbps(psg.nodes[0].devices[0].pcie.bandwidth),
            gbps(beacon.nodes[0].devices[0].pcie.bandwidth),
            gbps(titan.nodes[0].devices[0].pcie.bandwidth));
  print_row("Interconnection", psg.fabric.name, beacon.fabric.name,
            titan.fabric.name);
  print_row("GPUDirect RDMA", psg.fabric.gpudirect_rdma ? "yes" : "no",
            beacon.fabric.gpudirect_rdma ? "yes" : "no",
            titan.fabric.gpudirect_rdma ? "yes" : "no");
  print_row("Accelerator API / backend", "CUDA-like (UVA)",
            "OpenCL-like (cl_mem)", "CUDA-like (UVA)");
  print_row("MPI multithreading",
            psg.mpi_thread_multiple ? "MPI_THREAD_MULTIPLE" : "serialized",
            beacon.mpi_thread_multiple ? "MPI_THREAD_MULTIPLE" : "serialized",
            titan.mpi_thread_multiple ? "MPI_THREAD_MULTIPLE" : "serialized");
  print_row("Device peak DP",
            std::to_string(psg.nodes[0].devices[0].flops_dp / 1e12) + " TF",
            std::to_string(beacon.nodes[0].devices[0].flops_dp / 1e12) + " TF",
            std::to_string(titan.nodes[0].devices[0].flops_dp / 1e12) + " TF");
  return 0;
}
