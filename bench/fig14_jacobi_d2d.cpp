// Figure 14: device-to-device communication time breakdown for Jacobi in
// PSG.
//
// IMPACC moves each halo with a single direct DtoD PCIe transfer; the
// baseline pays DtoH + HtoH (IPC) + HtoD. The per-path copy-time stats
// the runtime keeps reproduce the stacked bars directly.
#include <map>

#include "apps/jacobi.h"
#include "bench_common.h"
#include "dev/copyengine.h"

namespace impacc::bench {
namespace {

constexpr int kIterations = 10;

core::TaskStats jacobi_stats(core::Framework fw, long n, int tasks) {
  static std::map<std::string, core::TaskStats> cache;
  const std::string key = std::to_string(static_cast<int>(fw)) + "/" +
                          std::to_string(n) + "/" + std::to_string(tasks);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto run = [&](int iterations) {
    auto o = model_options("psg", 1, fw);
    limit_devices(o, tasks);
    apps::JacobiConfig cfg;
    cfg.n = n;
    cfg.iterations = iterations;
    return apps::run_jacobi(o, cfg).launch.total;
  };
  // Subtract a zero-iteration run so the setup copyins and the final
  // update_self drop out: what remains is pure halo traffic (the paper's
  // "communication between the tasks").
  const core::TaskStats with = run(kIterations);
  const core::TaskStats setup = run(0);
  core::TaskStats delta = with;
  for (std::size_t i = 0; i < delta.copy_time.size(); ++i) {
    delta.copy_time[i] -= setup.copy_time[i];
    delta.copy_count[i] -= setup.copy_count[i];
  }
  cache[key] = delta;
  return delta;
}

double path_time(const core::TaskStats& s, dev::CopyPathKind k) {
  return s.copy_time[static_cast<std::size_t>(k)];
}

void register_benchmarks() {
  for (long n : {2048L, 4096L, 8192L}) {
    for (int tasks : {2, 4, 8}) {
      const core::TaskStats im =
          jacobi_stats(core::Framework::kImpacc, n, tasks);
      const core::TaskStats base =
          jacobi_stats(core::Framework::kMpiOpenacc, n, tasks);
      // IMPACC: one fused DtoD per halo (peer or staged).
      const double im_d2d = path_time(im, dev::CopyPathKind::kDevToDevPeer) +
                            path_time(im, dev::CopyPathKind::kDevToDevStaged);
      // MPI+X: the explicit staging pipeline.
      const double base_d2h = path_time(base, dev::CopyPathKind::kDevToHost);
      const double base_h2h = path_time(base, dev::CopyPathKind::kBaselineIpc);
      const double base_h2d = path_time(base, dev::CopyPathKind::kHostToDev);
      const double base_total = base_d2h + base_h2h + base_h2d;

      const std::string point =
          std::to_string(tasks) + "t/" + std::to_string(n / 1024) + "K";
      add_row("Fig14 PSG DtoD time", point, sim::to_ms(im_d2d),
              sim::to_ms(base_total), "ms total (IMPACC vs MPI+X pipeline)");
      add_row("Fig14 MPI+X pipeline", point, sim::to_ms(base_d2h),
              sim::to_ms(base_h2h + base_h2d),
              "ms (DtoH | HtoH+HtoD shares)");

      benchmark::RegisterBenchmark(
          ("Fig14/psg/n" + std::to_string(n) + "/" + std::to_string(tasks) +
              "tasks").c_str(),
          [=](benchmark::State& st) {
            for (auto _ : st) {
              st.SetIterationTime(im_d2d > 0 ? im_d2d : 1e-9);
              st.counters["impacc_d2d_ms"] = sim::to_ms(im_d2d);
              st.counters["mpix_d2h_ms"] = sim::to_ms(base_d2h);
              st.counters["mpix_h2h_ms"] = sim::to_ms(base_h2h);
              st.counters["mpix_h2d_ms"] = sim::to_ms(base_h2d);
              st.counters["ratio"] = im_d2d > 0 ? base_total / im_d2d : 0;
            }
          })
          ->UseManualTime()
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 14", "Jacobi device-to-device communication breakdown")
