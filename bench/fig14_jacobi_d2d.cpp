// Figure 14: device-to-device communication time breakdown for Jacobi in
// PSG.
//
// IMPACC moves each halo with a single direct DtoD PCIe transfer; the
// baseline pays DtoH + HtoH (IPC) + HtoD. The per-path copy-time stats
// the runtime keeps reproduce the stacked bars directly.
#include <map>

#include "apps/jacobi.h"
#include "bench_common.h"
#include "dev/copyengine.h"

namespace impacc::bench {
namespace {

constexpr int kIterations = 10;

core::TaskStats jacobi_stats(core::Framework fw, long n, int tasks) {
  static std::map<std::string, core::TaskStats> cache;
  const std::string key = std::to_string(static_cast<int>(fw)) + "/" +
                          std::to_string(n) + "/" + std::to_string(tasks);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto run = [&](int iterations) {
    auto o = model_options("psg", 1, fw);
    limit_devices(o, tasks);
    apps::JacobiConfig cfg;
    cfg.n = n;
    cfg.iterations = iterations;
    return apps::run_jacobi(o, cfg).launch.total;
  };
  // Subtract a zero-iteration run so the setup copyins and the final
  // update_self drop out: what remains is pure halo traffic (the paper's
  // "communication between the tasks").
  const core::TaskStats with = run(kIterations);
  const core::TaskStats setup = run(0);
  core::TaskStats delta = with;
  for (std::size_t i = 0; i < delta.copy_time.size(); ++i) {
    delta.copy_time[i] -= setup.copy_time[i];
    delta.copy_count[i] -= setup.copy_count[i];
  }
  cache[key] = delta;
  return delta;
}

double path_time(const core::TaskStats& s, dev::CopyPathKind k) {
  return s.copy_time[static_cast<std::size_t>(k)];
}

/// Internode extension: Jacobi on Titan with GPUDirect off, so every halo
/// stages DtoH -> wire -> HtoD through the pinned pool. Sweeping the
/// chunk size shows the pipeline overlapping the stages (halos are 2 MiB
/// at this mesh, above the default 1 MiB chunk).
void register_titan_chunk_sweep() {
  // 2 MiB halo rows need n = 2^18; the K20x's 6 GB then caps each task's
  // two grid blocks, so the mesh spreads over 256 nodes.
  const long n = 1L << 18;
  const int nodes = 256;
  const int iterations = bench_smoke() ? 3 : kIterations;
  struct ChunkVariant {
    const char* label;
    bool enabled;
    std::uint64_t chunk_bytes;
  };
  const ChunkVariant variants[] = {
      {"off", false, 0},
      {"256K", true, 256 << 10},
      {"1M", true, 1 << 20},
  };
  auto makespan = [&](const ChunkVariant& v, int iters) {
    auto o = model_options("titan", nodes, core::Framework::kImpacc);
    o.features.gpudirect_rdma = false;
    o.features.chunk_pipeline = v.enabled;
    o.chunk_bytes = v.chunk_bytes;
    apps::JacobiConfig cfg;
    cfg.n = n;
    cfg.iterations = iters;
    return apps::run_jacobi(o, cfg).launch.makespan;
  };
  const sim::Time mono =
      makespan(variants[0], iterations) - makespan(variants[0], 0);
  for (const ChunkVariant& v : variants) {
    // Subtract the zero-iteration setup run; what remains is the
    // iteration loop (memory-bound sweeps + staged halo exchange), so the
    // end-to-end chunking gain is bounded by the halo share.
    const sim::Time t = makespan(v, iterations) - makespan(v, 0);
    add_row("Fig14+ Titan staged loop", std::string("chunk ") + v.label,
            sim::to_ms(t), mono > 0 ? mono / t : 0,
            "ms loop time (ratio vs monolithic)");
    benchmark::RegisterBenchmark(
        (std::string("Fig14/titan/n") + std::to_string(n) + "/" +
         std::to_string(nodes) + "nodes/chunk-" + v.label)
            .c_str(),
        [t, mono](benchmark::State& st) {
          for (auto _ : st) {
            st.SetIterationTime(t > 0 ? t : 1e-9);
            st.counters["halo_ms"] = sim::to_ms(t);
            st.counters["vs_monolithic"] = t > 0 ? mono / t : 0;
          }
        })
        ->UseManualTime()
        ->Iterations(1);
  }
}

/// Observability cross-check (ISSUE 3): one instrumented Jacobi run whose
/// dev.copy.* histogram sums must match the TaskStats copy times the
/// stacked bars are built from (both fed by core::account_copy). With
/// IMPACC_BENCH_METRICS set the snapshot is also exported for
/// tools/metrics_diff.sh.
void register_metrics_selfcheck() {
  auto o = model_options("psg", 1, core::Framework::kImpacc);
  limit_devices(o, 2);
  o.metrics_path = bench_metrics_spec();
  apps::JacobiConfig cfg;
  cfg.n = 2048;
  cfg.iterations = 3;
  const auto r = apps::run_jacobi(o, cfg);
  const obs::MetricsSnapshot& m = r.launch.metrics;
  const auto& total = r.launch.total;
  for (auto k : {dev::CopyPathKind::kDevToDevPeer,
                 dev::CopyPathKind::kDevToDevStaged,
                 dev::CopyPathKind::kHostToDev}) {
    const std::string name =
        std::string("dev.copy.") + dev::copy_path_slug(k);
    add_row("Fig14 metrics self-check", dev::copy_path_slug(k),
            m.value(name + ".seconds.sum"),
            total.copy_time[static_cast<std::size_t>(k)],
            "hist sum vs TaskStats");
  }
}

void register_benchmarks() {
  register_metrics_selfcheck();
  for (long n : bench_smoke() ? std::vector<long>{2048}
                              : std::vector<long>{2048, 4096, 8192}) {
    for (int tasks : {2, 4, 8}) {
      const core::TaskStats im =
          jacobi_stats(core::Framework::kImpacc, n, tasks);
      const core::TaskStats base =
          jacobi_stats(core::Framework::kMpiOpenacc, n, tasks);
      // IMPACC: one fused DtoD per halo (peer or staged).
      const double im_d2d = path_time(im, dev::CopyPathKind::kDevToDevPeer) +
                            path_time(im, dev::CopyPathKind::kDevToDevStaged);
      // MPI+X: the explicit staging pipeline.
      const double base_d2h = path_time(base, dev::CopyPathKind::kDevToHost);
      const double base_h2h = path_time(base, dev::CopyPathKind::kBaselineIpc);
      const double base_h2d = path_time(base, dev::CopyPathKind::kHostToDev);
      const double base_total = base_d2h + base_h2h + base_h2d;

      const std::string point =
          std::to_string(tasks) + "t/" + std::to_string(n / 1024) + "K";
      add_row("Fig14 PSG DtoD time", point, sim::to_ms(im_d2d),
              sim::to_ms(base_total), "ms total (IMPACC vs MPI+X pipeline)");
      add_row("Fig14 MPI+X pipeline", point, sim::to_ms(base_d2h),
              sim::to_ms(base_h2h + base_h2d),
              "ms (DtoH | HtoH+HtoD shares)");

      benchmark::RegisterBenchmark(
          ("Fig14/psg/n" + std::to_string(n) + "/" + std::to_string(tasks) +
              "tasks").c_str(),
          [=](benchmark::State& st) {
            for (auto _ : st) {
              st.SetIterationTime(im_d2d > 0 ? im_d2d : 1e-9);
              st.counters["impacc_d2d_ms"] = sim::to_ms(im_d2d);
              st.counters["mpix_d2h_ms"] = sim::to_ms(base_d2h);
              st.counters["mpix_h2h_ms"] = sim::to_ms(base_h2h);
              st.counters["mpix_h2d_ms"] = sim::to_ms(base_h2d);
              st.counters["ratio"] = im_d2d > 0 ? base_total / im_d2d : 0;
            }
          })
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  register_titan_chunk_sweep();
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 14", "Jacobi device-to-device communication breakdown")
