// Figure 5: synchronization timelines, quantified.
//
// The paper's Fig. 5 is an illustration; this bench measures it: the
// producer/consumer pipeline of Fig. 4 in its three forms — (a) fully
// synchronous, (b) asynchronous with host sync points, (c) the IMPACC
// unified activity queue — across message sizes and pipeline depths.
#include <map>

#include "bench_common.h"

namespace impacc::bench {
namespace {

enum class Style : int { kSync = 0, kAsyncWaits = 1, kUnified = 2 };

const char* style_name(Style s) {
  switch (s) {
    case Style::kSync: return "sync";
    case Style::kAsyncWaits: return "async+waits";
    case Style::kUnified: return "unified-queue";
  }
  return "?";
}

sim::Time pipeline_time(Style style, long n, int rounds) {
  static std::map<std::string, sim::Time> cache;
  const std::string key = std::to_string(static_cast<int>(style)) + "/" +
                          std::to_string(n) + "/" + std::to_string(rounds);
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  auto o = model_options("psg", 1, core::Framework::kImpacc);
  const auto result = launch(o, [style, n, rounds] {
    auto comm = mpi::world();
    const int rank = mpi::comm_rank(comm);
    if (rank > 1) return;
    const int peer = 1 - rank;
    auto* buf0 = static_cast<double*>(node_malloc(n * 8));
    auto* buf1 = static_cast<double*>(node_malloc(n * 8));
    acc::copyin(buf0, static_cast<std::uint64_t>(n) * 8);
    acc::copyin(buf1, static_cast<std::uint64_t>(n) * 8);
    const sim::WorkEstimate est{10.0 * n, 16.0 * n};
    const int count = static_cast<int>(n);

    for (int round = 0; round < rounds; ++round) {
      switch (style) {
        case Style::kSync:
          acc::parallel_loop("produce", n, {}, est);
          acc::update_self(buf0, static_cast<std::uint64_t>(n) * 8);
          if (rank == 0) {
            mpi::send(buf0, count, mpi::Datatype::kDouble, peer, 1, comm);
            mpi::recv(buf1, count, mpi::Datatype::kDouble, peer, 1, comm);
          } else {
            mpi::recv(buf1, count, mpi::Datatype::kDouble, peer, 1, comm);
            mpi::send(buf0, count, mpi::Datatype::kDouble, peer, 1, comm);
          }
          acc::update_device(buf1, static_cast<std::uint64_t>(n) * 8);
          acc::parallel_loop("consume", n, {}, est);
          break;
        case Style::kAsyncWaits: {
          acc::parallel_loop("produce", n, {}, est, 1);
          acc::update_self(buf0, static_cast<std::uint64_t>(n) * 8, 1);
          acc::wait(1);
          mpi::Request reqs[2];
          reqs[0] = mpi::isend(buf0, count, mpi::Datatype::kDouble, peer, 1,
                               comm);
          reqs[1] = mpi::irecv(buf1, count, mpi::Datatype::kDouble, peer, 1,
                               comm);
          mpi::waitall(reqs, 2);
          acc::update_device(buf1, static_cast<std::uint64_t>(n) * 8, 1);
          acc::parallel_loop("consume", n, {}, est, 1);
          acc::wait(1);
          break;
        }
        case Style::kUnified:
          acc::parallel_loop("produce", n, {}, est, 1);
          acc::mpi({.send_device = true, .async = 1});
          mpi::isend(buf0, count, mpi::Datatype::kDouble, peer, 1, comm);
          acc::mpi({.recv_device = true, .async = 1});
          mpi::irecv(buf1, count, mpi::Datatype::kDouble, peer, 1, comm);
          acc::parallel_loop("consume", n, {}, est, 1);
          break;
      }
    }
    if (style == Style::kUnified) acc::wait(1);
    acc::del(buf0);
    acc::del(buf1);
    node_free(buf0);
    node_free(buf1);
  });
  cache[key] = result.makespan;
  return result.makespan;
}

void register_benchmarks() {
  constexpr int kRounds = 8;
  for (long n : {1L << 12, 1L << 16, 1L << 20}) {
    const sim::Time sync = pipeline_time(Style::kSync, n, kRounds);
    for (Style style :
         {Style::kSync, Style::kAsyncWaits, Style::kUnified}) {
      const sim::Time t = pipeline_time(style, n, kRounds);
      benchmark::RegisterBenchmark(
          ("Fig05/" + std::to_string(n * 8 / 1024) + "KB/" +
           style_name(style))
              .c_str(),
          [t, sync](benchmark::State& st) {
            for (auto _ : st) {
              st.SetIterationTime(t);
              st.counters["speedup_vs_sync"] = sync / t;
            }
          })
          ->UseManualTime()
          ->Iterations(1);
    }
    add_row("Fig05 " + std::to_string(n * 8 / 1024) + "KB msgs",
            std::to_string(kRounds) + " rounds",
            sync / pipeline_time(Style::kUnified, n, kRounds),
            sync / pipeline_time(Style::kAsyncWaits, n, kRounds),
            "speedup vs (a) sync [IMPACC col = (c), MPI+X col = (b)]");
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 5", "synchronization style pipeline comparison")
