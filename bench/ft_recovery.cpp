// Fault-tolerance recovery benchmark (DESIGN.md section 12): modeled
// cost of surviving a mid-run failure, distilled into BENCH_ft.json.
//
// Not a paper figure — the paper's machines did not fail on schedule.
// Each series runs the checkpointed Jacobi workload clean, then kills a
// victim (fixed node/device targets plus a seeded sweep) and reports the
// recovered run's simulated makespan. Counters break the overhead into
// its parts: checkpoint cost, rolled-back progress (ft.lost_seconds) and
// modeled restart (ft.recovery_seconds). Every faulted run doubles as a
// correctness gate — it must reproduce the fault-free checksum
// bit-for-bit and tear down quiescent.
#include <cstdlib>

#include "apps/jacobi.h"
#include "bench_common.h"

namespace impacc::bench {
namespace {

core::LaunchOptions ft_options(int nodes) {
  // Functional mode: the checksum equality gate needs real data, and the
  // retention log needs dereferenceable payloads.
  core::LaunchOptions o;
  o.cluster = sim::make_system("psg", nodes);
  o.deterministic = true;
  return o;
}

apps::JacobiConfig ft_config() {
  apps::JacobiConfig cfg;
  cfg.n = bench_smoke() ? 128 : 512;
  cfg.iterations = 12;
  cfg.checkpoint_every = 3;
  return cfg;
}

/// Fail the whole binary loudly when a recovered run diverges — a wrong
/// answer must never become just a slow data point.
void require(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "ft_recovery: %s\n", what);
  std::abort();
}

void register_point(const std::string& name, const apps::JacobiResult& clean,
                    const core::LaunchOptions& fault_opts) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [fault_opts, name, base_makespan = clean.launch.makespan,
       base_checksum = clean.checksum](benchmark::State& st) {
        apps::JacobiResult r;
        for (auto _ : st) {
          r = apps::run_jacobi(fault_opts, ft_config());
          st.SetIterationTime(r.launch.makespan);
        }
        require(r.launch.ft.faults >= 1, "fault did not fire");
        require(r.checksum == base_checksum,
                "recovered checksum diverged from the fault-free run");
        require(r.launch.stray_messages == 0,
                "stray messages after recovery");
        st.counters["recovery_seconds"] = r.launch.ft.recovery_seconds;
        st.counters["lost_seconds"] = r.launch.ft.lost_seconds;
        st.counters["overhead_seconds"] = r.launch.makespan - base_makespan;
        st.counters["replayed_msgs"] =
            static_cast<double>(r.launch.ft.replayed_msgs);
        add_row("FtRecovery psg 2 nodes", name.substr(name.rfind('/') + 1),
                r.launch.makespan, base_makespan,
                "s virtual (recovered vs fault-free)");
      })
      ->UseManualTime()
      ->Iterations(1);
}

void register_benchmarks() {
  const auto cfg = ft_config();
  const auto opts = ft_options(2);
  const auto clean = apps::run_jacobi(opts, cfg);
  require(clean.launch.makespan > 0, "clean run produced no makespan");

  // Checkpoint overhead: same workload without the fault machinery.
  {
    auto plain_cfg = cfg;
    plain_cfg.checkpoint_every = 0;
    const auto plain = apps::run_jacobi(opts, plain_cfg);
    benchmark::RegisterBenchmark(
        "FtCheckpointOverhead/psg/2nodes",
        [makespan = clean.launch.makespan,
         plain_makespan = plain.launch.makespan](benchmark::State& st) {
          for (auto _ : st) st.SetIterationTime(makespan);
          st.counters["checkpoint_overhead_seconds"] =
              makespan - plain_makespan;
        })
        ->UseManualTime()
        ->Iterations(1);
    add_row("FtCheckpointOverhead psg", "every 3 sweeps",
            clean.launch.makespan, plain.launch.makespan,
            "s virtual (checkpointed vs plain)");
  }

  // Fixed targets: one whole node, one single device.
  {
    auto o = opts;
    sim::FaultEvent ev;
    ev.node = 1;
    ev.time = clean.launch.makespan * 0.5;
    o.faults.events.push_back(ev);
    register_point("FtRecovery/psg/2nodes/node1", clean, o);
  }
  {
    auto o = opts;
    sim::FaultEvent ev;
    ev.node = 0;
    ev.device = 2;
    ev.time = clean.launch.makespan * 0.6;
    o.faults.events.push_back(ev);
    register_point("FtRecovery/psg/2nodes/dev0.2", clean, o);
  }

  // Seeded sweep: the CI fault matrix replays these exact events.
  for (unsigned seed : {1u, 2u, 3u}) {
    auto o = opts;
    o.faults.seeds.push_back({seed, clean.launch.makespan});
    register_point("FtRecovery/psg/2nodes/seed" + std::to_string(seed), clean,
                   o);
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("FtRecovery",
                  "modeled fault-recovery cost: checkpointed Jacobi vs "
                  "node/device kills (checksum-gated)")
