// Figure 13: speedup of 2-D Jacobi.
//
// (a)-(d): PSG, meshes 1K..8K, 1..8 tasks, normalized to the MPI+OpenACC
// single-task run. (e): Beacon, 1..128 tasks. (f): Titan, 128..8192 nodes
// (strong scaling over 128 tasks). IMPACC's direct device-to-device halo
// exchange wins wherever communication matters; at very large task counts
// communication dominates for both and scaling saturates.
#include <map>

#include "apps/jacobi.h"
#include "bench_common.h"

namespace impacc::bench {
namespace {

constexpr int kIterations = 10;

sim::Time jacobi_time(const std::string& system, int nodes, int devices,
                      core::Framework fw, long n) {
  static std::map<std::string, sim::Time> cache;
  const std::string key = system + "/" + std::to_string(nodes) + "/" +
                          std::to_string(devices) + "/" +
                          std::to_string(static_cast<int>(fw)) + "/" +
                          std::to_string(n);
  if (auto it = cache.find(key); it != cache.end()) return it->second;
  auto o = model_options(system, nodes, fw);
  if (devices > 0) limit_devices(o, devices);
  apps::JacobiConfig cfg;
  cfg.n = n;
  cfg.iterations = kIterations;
  const sim::Time t = apps::run_jacobi(o, cfg).launch.makespan;
  cache[key] = t;
  return t;
}

void add_point(const std::string& series, const std::string& system,
               int nodes, int devices, long n, double ref) {
  const sim::Time ti =
      jacobi_time(system, nodes, devices, core::Framework::kImpacc, n);
  const sim::Time tb =
      jacobi_time(system, nodes, devices, core::Framework::kMpiOpenacc, n);
  const std::string point = devices > 0
                                ? std::to_string(devices) + " tasks"
                                : std::to_string(nodes) + " nodes";
  add_row(series, point, ref / ti, ref / tb, "speedup");
  for (core::Framework fw :
       {core::Framework::kImpacc, core::Framework::kMpiOpenacc}) {
    const std::string name = "Fig13/" + system + "/n" + std::to_string(n) +
                             "/" + point + "/" + core::framework_name(fw);
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
      for (auto _ : st) {
        const sim::Time t = jacobi_time(system, nodes, devices, fw, n);
        st.SetIterationTime(t);
        st.counters["speedup"] = ref / t;
      }
    })->UseManualTime()->Iterations(1);
  }
}

void register_benchmarks() {
  const bool smoke = bench_smoke();
  // (a)-(d): PSG.
  for (long n : smoke ? std::vector<long>{1024, 4096}
                      : std::vector<long>{1024, 2048, 4096, 8192}) {
    const double ref =
        jacobi_time("psg", 1, 1, core::Framework::kMpiOpenacc, n);
    for (int tasks : {1, 2, 4, 8}) {
      add_point("Fig13 PSG " + std::to_string(n / 1024) + "Kx" +
                    std::to_string(n / 1024) + "K",
                "psg", 1, tasks, n, ref);
    }
  }
  // (e): Beacon, 8K mesh.
  {
    const long n = 8192;
    const double ref =
        jacobi_time("beacon", 1, 1, core::Framework::kMpiOpenacc, n);
    for (int tasks : smoke ? std::vector<int>{1, 4, 16}
                           : std::vector<int>{1, 4, 16, 64, 128}) {
      add_point("Fig13 Beacon 8Kx8K", "beacon", (tasks + 3) / 4, tasks, n,
                ref);
    }
  }
  // (f): Titan, strong scaling over 128 tasks, 32K mesh. Smoke drops the
  // thousands-of-fibers points.
  {
    const long n = 32768;
    const double ref =
        jacobi_time("titan", 128, 0, core::Framework::kMpiOpenacc, n);
    for (int nodes : smoke ? std::vector<int>{128, 512}
                           : std::vector<int>{128, 512, 2048, 8192}) {
      add_point("Fig13 Titan 32Kx32K", "titan", nodes, 0, n, ref);
    }
  }
}

}  // namespace
}  // namespace impacc::bench

using impacc::bench::register_benchmarks;
IMPACC_BENCH_MAIN("Figure 13", "Jacobi speedup")
