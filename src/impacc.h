// IMPACC public umbrella header.
//
// A reproduction of "IMPACC: A Tightly Integrated MPI+OpenACC Framework
// Exploiting Shared Memory Parallelism" (Kim, Lee, Vetter — HPDC 2016) on
// a simulated heterogeneous accelerator cluster. See DESIGN.md for the
// mapping from paper sections to modules.
//
// Typical use:
//
//   impacc::core::LaunchOptions opts;
//   opts.cluster = impacc::sim::make_psg();
//   auto result = impacc::launch(opts, [] {
//     auto comm = impacc::mpi::world();
//     int rank = impacc::mpi::comm_rank(comm);
//     ...
//   });
//   // result.makespan is the simulated run time.
#pragma once

#include "acc/api.h"          // OpenACC-style runtime + #pragma acc mpi
#include "core/checkpoint.h"  // ft_protect / ft_checkpoint / ft_restore
#include "core/config.h"      // LaunchOptions, Framework, Features
#include "core/heap.h"        // node_malloc / node_free (hooked heap)
#include "core/launch.h"      // impacc::launch()
#include "mpi/api.h"          // threaded-MPI API
#include "mpi/datatype.h"     // derived datatypes (type_vector, ...)
#include "sim/systems.h"      // PSG / Beacon / Titan presets (Table 1)
#include "sim/trace.h"        // Chrome-trace sink (Fig. 5 timelines)
