#include <cstring>

#include "common/types.h"
#include "core/handler.h"
#include "core/pinning.h"
#include "mpi/datatype.h"
#include "sim/costmodel.h"
#include "core/runtime.h"
#include "core/task.h"
#include "mpi/api.h"

namespace impacc::mpi {

namespace {

using core::MsgCommand;
using core::Task;

/// Resolve the effective buffer and its location for an MPI call,
/// honoring the sendbuf(device)/recvbuf(device) directive clauses and the
/// unified node VAS (a raw device pointer is detected by address).
struct ResolvedBuffer {
  void* ptr = nullptr;
  dev::Device* device = nullptr;
  bool near = true;
};

ResolvedBuffer resolve_buffer(Task& t, const void* buf, std::uint64_t bytes,
                              bool device_clause, const char* what) {
  ResolvedBuffer r;
  r.ptr = const_cast<void*>(buf);
  if (device_clause) {
    // #pragma acc mpi ...buf(device): use the device copy of the host data
    // — exactly acc_deviceptr(host_data) (section 3.5). This lookup runs
    // on every device-clause MPI call, which is why PresentTable keeps a
    // one-entry memo in front of the AVL tree; resolving through the entry
    // also lets us reject messages that run past the mapping.
    IMPACC_CHECK_MSG(t.rt->is_impacc(),
                     "device-buffer MPI requires the IMPACC framework");
    const acc::PresentEntry* e = t.present.find_host(buf);
    IMPACC_CHECK_MSG(e != nullptr, "buf(device): host data not present");
    const std::uintptr_t off =
        reinterpret_cast<std::uintptr_t>(buf) - e->host;
    IMPACC_CHECK_MSG(off + bytes <= e->bytes,
                     "buf(device): message exceeds the present mapping");
    r.ptr = reinterpret_cast<void*>(e->dev + off);
  }
  if (r.ptr == nullptr) return r;  // zero-byte message
  const core::Uvas::Location loc = t.node->uvas.locate(r.ptr);
  if (loc.kind == core::Uvas::Kind::kDevice) {
    if (loc.device->backend() == sim::BackendKind::kHostShared) {
      // Integrated accelerator: device memory is host memory.
      return r;
    }
    IMPACC_CHECK_MSG(t.rt->is_impacc(), what);
    r.device = loc.device;
    r.near = core::socket_is_near(t.node_desc(), loc.device->desc(),
                                  t.pinned_socket);
  }
  return r;
}

MsgCommand* new_send_command(Task& t, const ResolvedBuffer& rb,
                             std::uint64_t bytes, int dst, int tag, Comm comm,
                             bool readonly) {
  auto* cmd = new MsgCommand;
  cmd->kind = MsgCommand::Kind::kSend;
  cmd->context_id = comm->context_id();
  cmd->tag = tag;
  cmd->src_task = t.id;
  cmd->src_comm_rank = comm->rank_of_global(t.id);
  cmd->dst_task = comm->global_of(dst);
  cmd->buf = rb.ptr;
  cmd->bytes = bytes;
  cmd->buf_dev = rb.device;
  cmd->near = rb.near;
  cmd->readonly_hint = readonly;
  cmd->owner_task = t.id;
  cmd->req = std::make_shared<RequestState>();
  cmd->req->dbg_context = cmd->context_id;
  cmd->req->dbg_peer = dst;
  cmd->req->dbg_tag = tag;
  cmd->req->dbg_bytes = bytes;
  cmd->req->dbg_is_send = true;
  return cmd;
}

/// Issue a prepared command either directly (host path) or through the
/// unified activity queue (async clause on the directive, section 3.6).
Request issue(Task& t, MsgCommand* cmd, int async, bool is_send) {
  Request r{cmd->req};
  // Sender retention (core/checkpoint.h): log every send — intra-node
  // ones included, both sides roll back on a fault — at issue time, on
  // the sender's own fiber. Doing it here rather than at routing means a
  // send that dies queued (fault before the handler routes it) is still
  // in the log and gets replayed. Replayed commands carry a nonzero
  // ft_id and are never re-retained.
  if (is_send && cmd->ft_id == 0) {
    if (core::FtState* ft = t.rt->ft()) {
      cmd->ft_id = ft->retain(*cmd, t.ft_epoch.load(std::memory_order_relaxed),
                              t.functional());
    }
  }
  const bool unified = t.rt->is_impacc() && t.rt->features().unified_queue &&
                       async != core::kNoAsync;
  if (unified) {
    cmd->stream = t.device->stream(async);
    cmd->stream_node = t.node;
    // Close the task's compute segment at issue time; the stream chain at
    // initiation arrives through begin_async's cp argument.
    cmd->cp_pred = core::cp_checkpoint(t, t.rt->critpath());
    dev::StreamOp op;
    op.kind = dev::StreamOp::Kind::kAsyncExternal;
    op.label = is_send ? "mpi-isend" : "mpi-irecv";
    // Until begin_async runs, the queued op is the command's only owner;
    // if a fault abort tears the stream down first, ~Stream reclaims it.
    op.pending_payload = cmd;
    op.drop_pending = [](void* p) { delete static_cast<MsgCommand*>(p); };
    Task* tp = &t;
    op.begin_async = [tp, cmd, is_send](sim::Time ready, std::uint32_t cp) {
      cmd->ready = ready;
      cmd->cp_pred2 = cp;
      if (is_send) {
        core::route_send(*tp, cmd, /*from_task_fiber=*/false);
      } else {
        core::route_recv(*tp, cmd);
      }
    };
    core::submit_stream_op(t, async, std::move(op));
    return r;
  }
  cmd->ready = t.clock.now();
  cmd->cp_pred = core::cp_checkpoint(t, t.rt->critpath());
  if (is_send) {
    core::route_send(t, cmd, /*from_task_fiber=*/true);
  } else {
    core::route_recv(t, cmd);
  }
  return r;
}

}  // namespace

Comm world() {
  Task& t = core::require_task("mpi::world outside a task");
  return t.rt->world();
}

int comm_rank(Comm comm) {
  Task& t = core::require_task("mpi::comm_rank outside a task");
  return comm->rank_of_global(t.id);
}

int comm_size(Comm comm) { return comm->size(); }

namespace {

Request isend_impl(const void* buf, int count, Datatype dt, int dst, int tag,
                   Comm comm, bool synchronous) {
  Task& t = core::require_task("mpi::isend outside a task");
  IMPACC_CHECK(count >= 0 && dst >= 0 && dst < comm->size() && tag >= 0);
  const core::MpiHint hint = t.take_hint();
  t.clock.advance(t.costs().mpi_call_overhead);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * type_size(dt);
  const ResolvedBuffer rb =
      resolve_buffer(t, buf, bytes, hint.send_device,
                     "MPI send from device memory requires IMPACC");
  MsgCommand* cmd =
      new_send_command(t, rb, bytes, dst, tag, comm, hint.send_readonly);
  cmd->force_rendezvous = synchronous;
  if (is_derived(dt)) {
    // Non-contiguous sends travel packed: pack here (the caller must not
    // touch the buffer until completion, so packing at post time is
    // safe), and charge the gather as a host copy.
    IMPACC_CHECK_MSG(rb.device == nullptr,
                     "derived datatypes require host buffers");
    if (t.functional() && bytes > 0) {
      cmd->eager_payload.resize(bytes);
      type_pack(cmd->eager_payload.data(), rb.ptr, count, dt);
    }
    t.clock.advance(sim::host_copy_time(t.node_desc(), bytes));
  }
  {
    std::lock_guard<std::mutex> lock(t.stats_mutex);
    t.stats.msgs_sent += 1;
    t.stats.bytes_sent += bytes;
  }
  return issue(t, cmd, hint.async, /*is_send=*/true);
}

}  // namespace

Request isend(const void* buf, int count, Datatype dt, int dst, int tag,
              Comm comm) {
  return isend_impl(buf, count, dt, dst, tag, comm, /*synchronous=*/false);
}

void ssend(const void* buf, int count, Datatype dt, int dst, int tag,
           Comm comm) {
  Request r = isend_impl(buf, count, dt, dst, tag, comm, /*synchronous=*/true);
  wait(r);
}

Request irecv(void* buf, int count, Datatype dt, int src, int tag, Comm comm) {
  Task& t = core::require_task("mpi::irecv outside a task");
  IMPACC_CHECK(count >= 0 && tag >= kAnyTag);
  IMPACC_CHECK(src == kAnySource || (src >= 0 && src < comm->size()));
  const core::MpiHint hint = t.take_hint();
  t.clock.advance(t.costs().mpi_call_overhead);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * type_size(dt);
  const ResolvedBuffer rb =
      resolve_buffer(t, buf, bytes, hint.recv_device,
                     "MPI recv into device memory requires IMPACC");
  if (is_derived(dt)) {
    IMPACC_CHECK_MSG(rb.device == nullptr,
                     "derived datatypes require host buffers");
  }

  auto* cmd = new MsgCommand;
  cmd->kind = MsgCommand::Kind::kRecv;
  cmd->recv_dtype = dt;
  cmd->recv_count = count;
  cmd->context_id = comm->context_id();
  cmd->src_task = src == kAnySource ? kAnySource : comm->global_of(src);
  cmd->src_match_tag = tag;
  cmd->dst_task = t.id;
  cmd->buf = rb.ptr;
  cmd->bytes = bytes;
  cmd->buf_dev = rb.device;
  cmd->near = rb.near;
  cmd->readonly_hint = hint.recv_readonly;
  cmd->recv_ptr_addr =
      (t.rt->is_impacc() && t.rt->features().heap_aliasing) ? hint.recv_ptr_addr
                                                            : nullptr;
  cmd->owner_task = t.id;
  cmd->req = std::make_shared<RequestState>();
  cmd->req->dbg_context = cmd->context_id;
  cmd->req->dbg_peer = src;
  cmd->req->dbg_tag = tag;
  cmd->req->dbg_bytes = bytes;
  return issue(t, cmd, hint.async, /*is_send=*/false);
}

void wait(Request& req, MpiStatus* status) {
  if (req.null()) return;
  Task& t = core::require_task("mpi::wait outside a task");
  t.clock.advance(t.costs().sync_point_overhead);
  core::wd_register(t,
                    req.state->dbg_is_send ? "mpi::wait (send)"
                                           : "mpi::wait (recv)",
                    req.state->dbg_context, req.state->dbg_peer,
                    req.state->dbg_tag, req.state->dbg_bytes);
  const sim::Time done = core::ft_wait(t, req.state->rec);
  core::wd_clear(t);
  const sim::Time before = t.clock.now();
  t.clock.merge(done);
  core::cp_join(t, t.rt->critpath(), before, req.state->rec.cp());
  const sim::Time waited = t.clock.now() - before;
  {
    std::lock_guard<std::mutex> lock(t.stats_mutex);
    t.stats.mpi_wait += waited;
  }
  if (obs::Observability* ob = t.rt->obs()) ob->mpi_wait->record(waited);
  if (status != nullptr) *status = req.state->status;
  req.state.reset();
}

void waitall(Request* reqs, int n) {
  for (int i = 0; i < n; ++i) wait(reqs[i]);
}

void waitall(std::vector<Request>& reqs) {
  waitall(reqs.data(), static_cast<int>(reqs.size()));
}

int waitany(Request* reqs, int n, MpiStatus* status) {
  Task& t = core::require_task("mpi::waitany outside a task");
  t.clock.advance(t.costs().sync_point_overhead);
  // Virtual time only moves on the final merge, so the pre-poll timestamp
  // stays valid across the yield loop; the merged-in interval is blocked
  // MPI completion time exactly like wait().
  const sim::Time before = t.clock.now();
  core::wd_register(t, "mpi::waitany", 0, kAnySource, kAnyTag, 0);
  for (;;) {
    core::ft_check(t);
    bool any_active = false;
    for (int i = 0; i < n; ++i) {
      if (reqs[i].null()) continue;
      any_active = true;
      sim::Time done = 0;
      if (reqs[i].state->rec.poll(&done)) {
        t.clock.merge(done);
        core::cp_join(t, t.rt->critpath(), before, reqs[i].state->rec.cp());
        const sim::Time waited = t.clock.now() - before;
        {
          std::lock_guard<std::mutex> lock(t.stats_mutex);
          t.stats.mpi_wait += waited;
        }
        if (obs::Observability* ob = t.rt->obs()) ob->mpi_wait->record(waited);
        if (status != nullptr) *status = reqs[i].state->status;
        reqs[i].state.reset();
        core::wd_clear(t);
        return i;
      }
    }
    if (!any_active) {
      core::wd_clear(t);
      return -1;  // all null: MPI_UNDEFINED
    }
    // Let the handler make progress, then re-poll.
    t.rt->scheduler().yield();
  }
}

bool testall(Request* reqs, int n) {
  Task& t = core::require_task("mpi::testall outside a task");
  t.clock.advance(t.costs().mpi_call_overhead);
  sim::Time latest = 0;
  std::uint32_t latest_cp = 0;
  core::ft_check(t);
  for (int i = 0; i < n; ++i) {
    if (reqs[i].null()) continue;
    sim::Time done = 0;
    if (!reqs[i].state->rec.poll(&done)) {
      t.rt->scheduler().yield();  // drive progress (see test())
      return false;
    }
    if (done >= latest) {
      latest = done;
      latest_cp = reqs[i].state->rec.cp();
    }
  }
  const sim::Time before = t.clock.now();
  t.clock.merge(latest);
  if (t.clock.now() > before) {
    core::cp_join(t, t.rt->critpath(), before, latest_cp);
  }
  for (int i = 0; i < n; ++i) reqs[i].state.reset();
  return true;
}

namespace {

Request post_probe(Task& t, int src, int tag, Comm comm, bool blocking) {
  auto* cmd = new MsgCommand;
  cmd->kind = MsgCommand::Kind::kProbe;
  cmd->context_id = comm->context_id();
  cmd->src_task = src == kAnySource ? kAnySource : comm->global_of(src);
  cmd->src_match_tag = tag;
  cmd->dst_task = t.id;
  cmd->probe_blocking = blocking;
  cmd->ready = t.clock.now();
  cmd->owner_task = t.id;
  cmd->req = std::make_shared<RequestState>();
  if (obs::Observability* ob = t.rt->obs()) ob->probes->add(1);
  Request r{cmd->req};
  t.node->post(cmd);
  return r;
}

}  // namespace

void probe(int src, int tag, Comm comm, MpiStatus* status) {
  Task& t = core::require_task("mpi::probe outside a task");
  t.clock.advance(t.costs().mpi_call_overhead);
  Request r = post_probe(t, src, tag, comm, /*blocking=*/true);
  core::wd_register(t, "mpi::probe", comm->context_id(), src, tag, 0);
  const sim::Time done = core::ft_wait(t, r.state->rec);
  core::wd_clear(t);
  const sim::Time before = t.clock.now();
  t.clock.merge(done);
  core::cp_join(t, t.rt->critpath(), before, r.state->rec.cp());
  // A blocking probe is blocked MPI time just like wait(); account it so
  // the mpi.wait histogram reconciles with TaskStats::mpi_wait.
  const sim::Time waited = t.clock.now() - before;
  {
    std::lock_guard<std::mutex> lock(t.stats_mutex);
    t.stats.mpi_wait += waited;
  }
  if (obs::Observability* ob = t.rt->obs()) ob->mpi_wait->record(waited);
  if (status != nullptr) *status = r.state->status;
}

bool iprobe(int src, int tag, Comm comm, MpiStatus* status) {
  Task& t = core::require_task("mpi::iprobe outside a task");
  t.clock.advance(t.costs().mpi_call_overhead);
  Request r = post_probe(t, src, tag, comm, /*blocking=*/false);
  const sim::Time done = core::ft_wait(t, r.state->rec);
  t.clock.merge(done);
  if (r.state->probe_found && status != nullptr) *status = r.state->status;
  return r.state->probe_found;
}

int get_count(const MpiStatus& status, Datatype dt) {
  return static_cast<int>(status.bytes / datatype_size(dt));
}

bool test(Request& req, MpiStatus* status) {
  if (req.null()) return true;
  Task& t = core::require_task("mpi::test outside a task");
  t.clock.advance(t.costs().mpi_call_overhead);
  core::ft_check(t);
  sim::Time done = 0;
  if (!req.state->rec.poll(&done)) {
    // Give the node's handler a turn, like the MPI progress engine a real
    // MPI_Test call drives — otherwise a test() polling loop on a single
    // worker would never let completions happen.
    t.rt->scheduler().yield();
    return false;
  }
  const sim::Time before = t.clock.now();
  t.clock.merge(done);
  if (t.clock.now() > before) {
    core::cp_join(t, t.rt->critpath(), before, req.state->rec.cp());
  }
  if (status != nullptr) *status = req.state->status;
  req.state.reset();
  return true;
}

void send(const void* buf, int count, Datatype dt, int dst, int tag,
          Comm comm) {
  Request r = isend(buf, count, dt, dst, tag, comm);
  wait(r);
}

void recv(void* buf, int count, Datatype dt, int src, int tag, Comm comm,
          MpiStatus* status) {
  Request r = irecv(buf, count, dt, src, tag, comm);
  wait(r, status);
}

void sendrecv(const void* sbuf, int scount, Datatype sdt, int dst, int stag,
              void* rbuf, int rcount, Datatype rdt, int src, int rtag,
              Comm comm, MpiStatus* status) {
  Request rr = irecv(rbuf, rcount, rdt, src, rtag, comm);
  Request sr = isend(sbuf, scount, sdt, dst, stag, comm);
  wait(sr);
  wait(rr, status);
}

}  // namespace impacc::mpi
