// Derived datatypes (MPI_Type_vector / MPI_Type_contiguous subset).
//
// A derived type describes a strided layout over a basic type. Messages
// travel packed: the sender packs blocks into a contiguous wire buffer,
// the receiver's handler unpacks into its (possibly strided) layout —
// what real MPI implementations do for non-contiguous types without
// hardware scatter/gather.
#pragma once

#include <cstdint>

#include "mpi/types.h"

namespace impacc::mpi {

/// Layout of one derived-type instance.
struct TypeDesc {
  Datatype base = Datatype::kByte;
  int count = 1;        // number of blocks
  int blocklength = 1;  // consecutive base elements per block
  int stride = 1;       // base elements between block starts
};

/// MPI_Type_vector: `count` blocks of `blocklength` elements, block starts
/// `stride` elements apart. The returned Datatype handle is process-global
/// and usable by any task.
Datatype type_vector(int count, int blocklength, int stride, Datatype base);

/// MPI_Type_contiguous.
Datatype type_contiguous(int count, Datatype base);

/// True for handles created by type_vector/type_contiguous.
bool is_derived(Datatype dt);

/// Layout of a derived handle (aborts on basic types).
const TypeDesc& type_desc(Datatype dt);

/// Packed size in bytes of ONE instance (basic types: their size).
std::uint64_t type_size(Datatype dt);

/// Memory span in bytes of one instance in its strided layout.
std::uint64_t type_extent(Datatype dt);

/// Pack `count` instances from `src` (strided) into `dst` (contiguous).
void type_pack(void* dst, const void* src, int count, Datatype dt);

/// Unpack `count` instances from contiguous `src` into strided `dst`.
void type_unpack(void* dst, const void* src, int count, Datatype dt);

}  // namespace impacc::mpi
