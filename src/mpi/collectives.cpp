#include <climits>
#include <cstring>
#include <vector>

#include "common/types.h"
#include "core/runtime.h"
#include "core/task.h"
#include "mpi/api.h"
#include "obs/obs.h"

namespace impacc::mpi {

namespace {

using core::Task;

// Collective operations use a reserved tag space; the per-communicator
// sequence number keeps concurrent collectives on the same communicator
// apart (MPI requires identical call order on all members).
constexpr int kCollTagBase = 1 << 24;

// Inter-node payloads above this switch from latency-optimal binomial /
// recursive-doubling schedules to bandwidth-optimal reduce-scatter based
// ones (Rabenseifner); the crossover sits a little above the fabric's
// eager threshold.
constexpr std::uint64_t kHierLargeBytes = 64u << 10;

int next_coll_tag(Task& t, Comm comm) {
  int& seq = t.collective_seq[comm->context_id()];
  const int tag = kCollTagBase + (seq & 0x7fffff);
  ++seq;
  return tag;
}

bool functional() {
  return core::require_task("collective").rt->functional();
}

/// Node-aware two-level collectives (section 3.5): enabled for the IMPACC
/// framework unless the ablation flag (or IMPACC_HIER_COLLECTIVES) turns
/// them off. The baseline process model keeps the flat algorithms.
bool hier_on(Task& t) {
  return t.rt->is_impacc() && t.rt->features().hier_collectives;
}

/// Group communicator ranks by node, preserving rank order. Used by the
/// node-aware broadcast and the hierarchical collectives.
std::vector<std::vector<int>> ranks_by_node(Task& t, Comm comm) {
  std::vector<std::vector<int>> groups(
      static_cast<std::size_t>(t.rt->num_nodes()));
  for (int r = 0; r < comm->size(); ++r) {
    const int node = t.rt->task(comm->global_of(r)).node->index;
    groups[static_cast<std::size_t>(node)].push_back(r);
  }
  std::vector<std::vector<int>> out;
  for (auto& g : groups) {
    if (!g.empty()) out.push_back(std::move(g));
  }
  return out;
}

/// Records the call's virtual duration on the calling rank into the
/// per-kind coll.*.seconds histogram. Metrics never advance the clock, so
/// instrumented runs stay bit-for-bit identical in virtual time.
class CollScope {
 public:
  CollScope(Task& t, obs::CollKind kind)
      : t_(t), kind_(kind), start_(t.clock.now()) {}
  ~CollScope() {
    if (obs::Observability* ob = t_.rt->obs()) {
      ob->coll_seconds[static_cast<int>(kind_)]->record(t_.clock.now() -
                                                        start_);
    }
  }
  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;

 private:
  Task& t_;
  obs::CollKind kind_;
  sim::Time start_;
};

/// Account a collective leg whose peer lives on another node. The
/// coll.internode.bytes counter is what the hierarchy tests assert: the
/// node-aware algorithms put each payload on the fabric at most once per
/// node, the flat ones do not.
void note_send(Task& t, Comm comm, int dst, std::uint64_t bytes) {
  obs::Observability* ob = t.rt->obs();
  if (ob == nullptr) return;
  if (t.rt->task(comm->global_of(dst)).node->index == t.node->index) return;
  ob->coll_internode_bytes->add(bytes);
  ob->coll_internode_msgs->add(1);
}

void csend(Task& t, Comm comm, const void* buf, int count, Datatype dt,
           int dst, int tag) {
  note_send(t, comm, dst, static_cast<std::uint64_t>(count) * datatype_size(dt));
  send(buf, count, dt, dst, tag, comm);
}

Request cisend(Task& t, Comm comm, const void* buf, int count, Datatype dt,
               int dst, int tag) {
  note_send(t, comm, dst, static_cast<std::uint64_t>(count) * datatype_size(dt));
  return isend(buf, count, dt, dst, tag, comm);
}

/// Per-node leader structure for the two-level algorithms. Leaders default
/// to each group's lowest rank; for rooted collectives the root replaces
/// its own node's leader so the final hop is free.
struct Hier {
  std::vector<std::vector<int>> groups;  // comm ranks grouped by node
  std::vector<int> leaders;              // leader rank of each group
  int my_group = -1;
  int root_group = -1;  // -1 for rootless collectives
  int my_leader = -1;
  bool is_leader = false;

  int n() const { return static_cast<int>(groups.size()); }
  const std::vector<int>& local() const {
    return groups[static_cast<std::size_t>(my_group)];
  }
};

Hier build_hier(Task& t, Comm comm, int rank, int root = -1) {
  Hier h;
  h.groups = ranks_by_node(t, comm);
  for (std::size_t g = 0; g < h.groups.size(); ++g) {
    for (int r : h.groups[g]) {
      if (r == rank) h.my_group = static_cast<int>(g);
      if (r == root) h.root_group = static_cast<int>(g);
    }
    h.leaders.push_back(h.groups[g].front());
  }
  IMPACC_CHECK(h.my_group >= 0);
  if (root >= 0) {
    IMPACC_CHECK(h.root_group >= 0);
    h.leaders[static_cast<std::size_t>(h.root_group)] = root;
  }
  h.my_leader = h.leaders[static_cast<std::size_t>(h.my_group)];
  h.is_leader = h.my_leader == rank;
  return h;
}

/// Fold the collected per-member vectors into vecs[0] with binomial-tree
/// association. This matches the grouping of the flat binomial reduction
/// (floating-point addition is commutative bitwise, so only the grouping
/// matters), keeping single-node IMPACC runs bitwise identical to the
/// baseline framework's flat algorithms.
void tree_fold(std::vector<std::vector<unsigned char>>& vecs, int count,
               Datatype dt, Op op) {
  const int k = static_cast<int>(vecs.size());
  for (int mask = 1; mask < k; mask <<= 1) {
    for (int i = 0; i + mask < k; i += 2 * mask) {
      apply_op(vecs[static_cast<std::size_t>(i)].data(),
               vecs[static_cast<std::size_t>(i + mask)].data(), count, dt, op);
    }
  }
}

/// Near-equal partition of `count` elements into n blocks; block b covers
/// [blk_lo(b), blk_lo(b+1)).
int blk_lo(int count, int n, int b) {
  return static_cast<int>(static_cast<std::int64_t>(count) * b / n);
}

int blk_count(int count, int n, int b) {
  return blk_lo(count, n, b + 1) - blk_lo(count, n, b);
}

/// Recursive doubling allreduce over the leaders with the standard
/// non-power-of-two fold-in: the first `rem` odd leaders hand their
/// contribution to the even neighbor before the doubling rounds and
/// collect the final vector afterwards. `acc` holds this leader's
/// intra-node reduction on entry and the global one on exit.
void leaders_allreduce_small(Task& t, Comm comm, const Hier& h, void* acc,
                             int count, Datatype dt, Op op, int tag, bool fn,
                             std::vector<unsigned char>& incoming) {
  const int n = h.n();
  const int me = h.my_group;
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;
  int vrank = -1;
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      csend(t, comm, fn ? acc : nullptr, count, dt,
            h.leaders[static_cast<std::size_t>(me - 1)], tag);
    } else {
      recv(fn ? incoming.data() : nullptr, count, dt,
           h.leaders[static_cast<std::size_t>(me + 1)], tag, comm);
      if (fn) apply_op(acc, incoming.data(), count, dt, op);
      vrank = me / 2;
    }
  } else {
    vrank = me - rem;
  }
  if (vrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int vpeer = vrank ^ mask;
      const int peer_g = vpeer < rem ? 2 * vpeer : vpeer + rem;
      const int peer = h.leaders[static_cast<std::size_t>(peer_g)];
      Request rr =
          irecv(fn ? incoming.data() : nullptr, count, dt, peer, tag, comm);
      csend(t, comm, fn ? acc : nullptr, count, dt, peer, tag);
      wait(rr);
      if (fn) apply_op(acc, incoming.data(), count, dt, op);
    }
  }
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      recv(fn ? acc : nullptr, count, dt,
           h.leaders[static_cast<std::size_t>(me - 1)], tag, comm);
    } else {
      csend(t, comm, fn ? acc : nullptr, count, dt,
            h.leaders[static_cast<std::size_t>(me + 1)], tag);
    }
  }
}

/// Pairwise reduce-scatter over element blocks of `acc` among the leaders:
/// step s sends our (unmodified) copy of block (me+s) and folds the
/// arriving contribution to block me, so afterwards every leader owns the
/// fully reduced block of its own index. Only block me is ever written.
void leaders_reduce_scatter(Task& t, Comm comm, const Hier& h, void* acc,
                            int count, Datatype dt, Op op, int tag, bool fn) {
  const int n = h.n();
  const int me = h.my_group;
  const std::uint64_t esz = datatype_size(dt);
  auto* accb = static_cast<unsigned char*>(acc);
  const int mine = blk_count(count, n, me);
  std::vector<unsigned char> tmp(
      fn ? static_cast<std::uint64_t>(mine) * esz : 0);
  for (int step = 1; step < n; ++step) {
    const int dst_g = (me + step) % n;
    const int src_g = (me - step + n) % n;
    Request rr =
        irecv(fn ? tmp.data() : nullptr, mine, dt,
              h.leaders[static_cast<std::size_t>(src_g)], tag, comm);
    csend(t, comm,
          fn ? accb + static_cast<std::uint64_t>(blk_lo(count, n, dst_g)) * esz
             : nullptr,
          blk_count(count, n, dst_g), dt,
          h.leaders[static_cast<std::size_t>(dst_g)], tag);
    wait(rr);
    if (fn && mine > 0) {
      apply_op(accb + static_cast<std::uint64_t>(blk_lo(count, n, me)) * esz,
               tmp.data(), mine, dt, op);
    }
  }
}

/// Ring allgather of the per-leader blocks of `acc` (the second half of the
/// Rabenseifner allreduce): n-1 steps, each forwarding the most recently
/// completed block to the right neighbor.
void leaders_ring_allgather(Task& t, Comm comm, const Hier& h, void* acc,
                            int count, Datatype dt, int tag, bool fn) {
  const int n = h.n();
  const int me = h.my_group;
  const std::uint64_t esz = datatype_size(dt);
  auto* accb = static_cast<unsigned char*>(acc);
  const int right = h.leaders[static_cast<std::size_t>((me + 1) % n)];
  const int left = h.leaders[static_cast<std::size_t>((me - 1 + n) % n)];
  for (int step = 0; step < n - 1; ++step) {
    const int sg = (me - step + n) % n;
    const int rg = (me - step - 1 + 2 * n) % n;
    Request rr = irecv(
        fn ? accb + static_cast<std::uint64_t>(blk_lo(count, n, rg)) * esz
           : nullptr,
        blk_count(count, n, rg), dt, left, tag, comm);
    csend(t, comm,
          fn ? accb + static_cast<std::uint64_t>(blk_lo(count, n, sg)) * esz
             : nullptr,
          blk_count(count, n, sg), dt, right, tag);
    wait(rr);
  }
}

}  // namespace

void apply_op(void* inout, const void* in, int count, Datatype dt, Op op) {
  auto combine = [op](auto& a, auto b) {
    using T = std::decay_t<decltype(a)>;
    switch (op) {
      case Op::kSum: a = static_cast<T>(a + b); break;
      case Op::kProd: a = static_cast<T>(a * b); break;
      case Op::kMax: a = a < b ? b : a; break;
      case Op::kMin: a = b < a ? b : a; break;
      case Op::kLand: a = static_cast<T>(a != T{} && b != T{}); break;
      case Op::kLor: a = static_cast<T>(a != T{} || b != T{}); break;
      case Op::kBand:
      case Op::kBor:
        if constexpr (std::is_integral_v<T>) {
          a = op == Op::kBand ? static_cast<T>(a & b) : static_cast<T>(a | b);
        } else {
          IMPACC_CHECK_MSG(false, "bitwise op on floating datatype");
        }
        break;
    }
  };
  auto loop = [&](auto* dst, const auto* src) {
    for (int i = 0; i < count; ++i) combine(dst[i], src[i]);
  };
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      loop(static_cast<unsigned char*>(inout),
           static_cast<const unsigned char*>(in));
      break;
    case Datatype::kInt:
      loop(static_cast<int*>(inout), static_cast<const int*>(in));
      break;
    case Datatype::kLong:
      loop(static_cast<long*>(inout), static_cast<const long*>(in));
      break;
    case Datatype::kUint64:
      loop(static_cast<std::uint64_t*>(inout),
           static_cast<const std::uint64_t*>(in));
      break;
    case Datatype::kFloat:
      loop(static_cast<float*>(inout), static_cast<const float*>(in));
      break;
    case Datatype::kDouble:
      loop(static_cast<double*>(inout), static_cast<const double*>(in));
      break;
  }
}

void barrier(Comm comm) {
  Task& t = core::require_task("mpi::barrier outside a task");
  CollScope scope(t, obs::CollKind::kBarrier);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  if (size == 1) return;
  if (hier_on(t)) {
    // Two-level barrier: members check in with their node leader over
    // shared memory, the leaders run a dissemination barrier over the
    // fabric, then each leader releases its node.
    const Hier h = build_hier(t, comm, rank);
    if (!h.is_leader) {
      csend(t, comm, nullptr, 0, Datatype::kByte, h.my_leader, tag);
      recv(nullptr, 0, Datatype::kByte, h.my_leader, tag, comm);
      return;
    }
    for (int r : h.local()) {
      if (r != rank) recv(nullptr, 0, Datatype::kByte, r, tag, comm);
    }
    const int n = h.n();
    const int me = h.my_group;
    for (int dist = 1; dist < n; dist <<= 1) {
      const int to = h.leaders[static_cast<std::size_t>((me + dist) % n)];
      const int from =
          h.leaders[static_cast<std::size_t>((me - dist + n) % n)];
      Request rr = irecv(nullptr, 0, Datatype::kByte, from, tag, comm);
      Request sr = cisend(t, comm, nullptr, 0, Datatype::kByte, to, tag);
      wait(sr);
      wait(rr);
    }
    std::vector<Request> reqs;
    for (int r : h.local()) {
      if (r != rank) {
        reqs.push_back(cisend(t, comm, nullptr, 0, Datatype::kByte, r, tag));
      }
    }
    waitall(reqs);
    return;
  }
  // Dissemination barrier: ceil(log2(P)) rounds of zero-byte messages.
  for (int dist = 1; dist < size; dist <<= 1) {
    const int to = (rank + dist) % size;
    const int from = (rank - dist + size) % size;
    Request rr = irecv(nullptr, 0, Datatype::kByte, from, tag, comm);
    Request sr = cisend(t, comm, nullptr, 0, Datatype::kByte, to, tag);
    wait(sr);
    wait(rr);
  }
}

void bcast(void* buf, int count, Datatype dt, int root, Comm comm) {
  Task& t = core::require_task("mpi::bcast outside a task");
  CollScope scope(t, obs::CollKind::kBcast);
  const core::MpiHint hint = t.take_hint();  // readonly / device clauses
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  if (size == 1) return;
  const int tag = next_coll_tag(t, comm);

  // Node-aware two-level broadcast (section 3.8): stage 1 is a binomial
  // tree over node leaders; stage 2 forwards within each node, where the
  // heap-aliasing requirements can be met. A device clause on the caller's
  // buffer flows through to every leg so the payload moves between the
  // device copies directly.
  const bool dev_clause = hint.send_device || hint.recv_device;
  const auto groups = ranks_by_node(t, comm);
  std::vector<int> leaders;
  leaders.reserve(groups.size());
  int my_group = -1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int r : groups[g]) {
      if (r == rank) my_group = static_cast<int>(g);
    }
    leaders.push_back(groups[g].front());
  }
  IMPACC_CHECK(my_group >= 0);
  // The root acts as its node's leader.
  int root_group = -1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int r : groups[g]) {
      if (r == root) root_group = static_cast<int>(g);
    }
  }
  std::vector<int> stage1 = leaders;
  stage1[static_cast<std::size_t>(root_group)] = root;
  const int my_leader = stage1[static_cast<std::size_t>(my_group)];

  // Stage 1: binomial tree over stage1 ranks, rooted at root's position.
  if (rank == my_leader) {
    const int n = static_cast<int>(stage1.size());
    int me = 0;
    for (int i = 0; i < n; ++i) {
      if (stage1[static_cast<std::size_t>(i)] == rank) me = i;
    }
    // Virtual ranks relative to the root's group.
    const int vme = (me - root_group + n) % n;
    int mask = 1;
    while (mask < n) {
      if (vme < mask) {
        const int vpeer = vme + mask;
        if (vpeer < n) {
          const int peer = stage1[static_cast<std::size_t>(
              (vpeer + root_group) % n)];
          if (dev_clause) {
            core::MpiHint hs;
            hs.send_device = true;
            core::set_mpi_hint(hs);
          }
          csend(t, comm, buf, count, dt, peer, tag);
        }
      } else if (vme < 2 * mask) {
        const int vpeer = vme - mask;
        const int peer =
            stage1[static_cast<std::size_t>((vpeer + root_group) % n)];
        if (dev_clause) {
          core::MpiHint hr;
          hr.recv_device = true;
          core::set_mpi_hint(hr);
        }
        recv(buf, count, dt, peer, tag, comm);
      }
      mask <<= 1;
    }
  }

  // Stage 2: the leader forwards to the other tasks on its node. Readonly
  // hints flow through so the intra-node legs can alias instead of copy.
  const auto& local = groups[static_cast<std::size_t>(my_group)];
  if (rank == my_leader) {
    // A leader's copy is read-only by the application's contract whenever
    // it attached a readonly clause to either side of its own call. The
    // forwarding legs are issued as non-blocking sends so the receivers'
    // copies progress concurrently (real shared-memory broadcasts
    // pipeline; serializing the legs would charge the leader N full
    // copies).
    const bool fwd_readonly = hint.send_readonly || hint.recv_readonly;
    std::vector<Request> reqs;
    for (int r : local) {
      if (r == my_leader || r == root) continue;
      if (fwd_readonly || dev_clause) {
        core::MpiHint h;
        h.send_readonly = fwd_readonly;
        h.send_device = dev_clause;
        core::set_mpi_hint(h);
      }
      reqs.push_back(cisend(t, comm, buf, count, dt, r, tag));
    }
    waitall(reqs);
  } else if (rank != root) {
    core::MpiHint h;
    bool set = false;
    if (hint.recv_readonly && hint.recv_ptr_addr != nullptr) {
      h.recv_readonly = true;
      h.recv_ptr_addr = hint.recv_ptr_addr;
      set = true;
    }
    if (dev_clause) {
      h.recv_device = true;
      set = true;
    }
    if (set) core::set_mpi_hint(h);
    recv(buf, count, dt, my_leader, tag, comm);
  }
}

void reduce(const void* sendbuf, void* recvbuf, int count, Datatype dt, Op op,
            int root, Comm comm) {
  Task& t = core::require_task("mpi::reduce outside a task");
  CollScope scope(t, obs::CollKind::kReduce);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * datatype_size(dt);
  const bool fn = functional();

  if (hier_on(t) && size > 1) {
    const Hier h = build_hier(t, comm, rank, root);
    if (!h.is_leader) {
      csend(t, comm, sendbuf, count, dt, h.my_leader, tag);
      return;
    }
    // Intra-node phase: collect the node's contributions and fold them
    // with binomial-tree association.
    std::vector<unsigned char> acc_buf;
    void* acc = nullptr;
    if (fn) {
      if (rank == root) {
        acc = recvbuf;
      } else {
        acc_buf.resize(bytes);
        acc = acc_buf.data();
      }
    }
    {
      const auto& local = h.local();
      std::vector<std::vector<unsigned char>> parts(local.size());
      for (std::size_t i = 0; i < local.size(); ++i) {
        const int r = local[i];
        if (fn) parts[i].resize(bytes);
        if (r == rank) {
          if (fn) std::memcpy(parts[i].data(), sendbuf, bytes);
          continue;
        }
        recv(fn ? parts[i].data() : nullptr, count, dt, r, tag, comm);
      }
      if (fn) {
        tree_fold(parts, count, dt, op);
        std::memcpy(acc, parts[0].data(), bytes);
      }
    }
    std::vector<unsigned char> incoming(fn ? bytes : 0);
    const int n = h.n();
    if (n == 1) return;  // the root's node held everything
    const int me = h.my_group;
    if (bytes <= kHierLargeBytes) {
      // Inter-node phase, short messages: binomial over the leaders,
      // rooted at the root's node.
      const int vme = (me - h.root_group + n) % n;
      int mask = 1;
      while (mask < n) {
        if ((vme & mask) == 0) {
          const int vpeer = vme | mask;
          if (vpeer < n) {
            const int peer = h.leaders[static_cast<std::size_t>(
                (vpeer + h.root_group) % n)];
            recv(fn ? incoming.data() : nullptr, count, dt, peer, tag, comm);
            if (fn) apply_op(acc, incoming.data(), count, dt, op);
          }
        } else {
          const int peer = h.leaders[static_cast<std::size_t>(
              ((vme & ~mask) + h.root_group) % n)];
          csend(t, comm, fn ? acc : nullptr, count, dt, peer, tag);
          break;
        }
        mask <<= 1;
      }
      return;
    }
    // Inter-node phase, large messages (Rabenseifner reduce halving):
    // pairwise reduce-scatter over element blocks, then the leaders funnel
    // their reduced blocks to the root.
    leaders_reduce_scatter(t, comm, h, acc, count, dt, op, tag, fn);
    const std::uint64_t esz = datatype_size(dt);
    auto* accb = static_cast<unsigned char*>(acc);
    if (rank == root) {
      std::vector<Request> reqs;
      for (int g = 0; g < n; ++g) {
        if (g == me) continue;
        reqs.push_back(irecv(
            fn ? accb + static_cast<std::uint64_t>(blk_lo(count, n, g)) * esz
               : nullptr,
            blk_count(count, n, g), dt,
            h.leaders[static_cast<std::size_t>(g)], tag, comm));
      }
      waitall(reqs);
    } else {
      csend(t, comm,
            fn ? accb + static_cast<std::uint64_t>(blk_lo(count, n, me)) * esz
               : nullptr,
            blk_count(count, n, me), dt, root, tag);
    }
    return;
  }

  // Flat path: rank-rotated binomial reduction tree.
  std::vector<unsigned char> acc_buf;
  void* acc = nullptr;
  if (fn) {
    if (rank == root) {
      acc = recvbuf;
      std::memcpy(acc, sendbuf, bytes);
    } else {
      acc_buf.resize(bytes);
      acc = acc_buf.data();
      std::memcpy(acc, sendbuf, bytes);
    }
  }
  std::vector<unsigned char> incoming(fn ? bytes : 0);

  const int vrank = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if ((vrank & mask) == 0) {
      const int vpeer = vrank | mask;
      if (vpeer < size) {
        const int peer = (vpeer + root) % size;
        recv(fn ? incoming.data() : nullptr, fn ? count : 0, dt, peer, tag,
             comm);
        if (fn) apply_op(acc, incoming.data(), count, dt, op);
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % size;
      csend(t, comm, fn ? acc : nullptr, fn ? count : 0, dt, peer, tag);
      break;
    }
    mask <<= 1;
  }
}

void allreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
               Op op, Comm comm) {
  Task& t = core::require_task("mpi::allreduce outside a task");
  CollScope scope(t, obs::CollKind::kAllreduce);
  if (!hier_on(t)) {
    reduce(sendbuf, recvbuf, count, dt, op, 0, comm);
    bcast(recvbuf, count, dt, 0, comm);
    return;
  }
  const core::MpiHint hint = t.take_hint();
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * datatype_size(dt);
  const bool fn = functional();
  if (fn) std::memcpy(recvbuf, sendbuf, bytes);
  if (size == 1) return;

  const Hier h = build_hier(t, comm, rank);
  if (!h.is_leader) {
    csend(t, comm, sendbuf, count, dt, h.my_leader, tag);
    if (hint.recv_readonly && hint.recv_ptr_addr != nullptr) {
      core::MpiHint hr;
      hr.recv_readonly = true;
      hr.recv_ptr_addr = hint.recv_ptr_addr;
      core::set_mpi_hint(hr);
    }
    recv(recvbuf, count, dt, h.my_leader, tag, comm);
    return;
  }
  // Intra-node reduction into recvbuf (binomial-tree association, see
  // tree_fold).
  void* acc = fn ? recvbuf : nullptr;
  {
    const auto& local = h.local();
    std::vector<std::vector<unsigned char>> parts(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      const int r = local[i];
      if (fn) parts[i].resize(bytes);
      if (r == rank) {
        if (fn) std::memcpy(parts[i].data(), sendbuf, bytes);
        continue;
      }
      recv(fn ? parts[i].data() : nullptr, count, dt, r, tag, comm);
    }
    if (fn) {
      tree_fold(parts, count, dt, op);
      std::memcpy(acc, parts[0].data(), bytes);
    }
  }
  std::vector<unsigned char> incoming(fn ? bytes : 0);
  // Inter-node phase over the leaders only.
  if (h.n() > 1) {
    if (bytes <= kHierLargeBytes) {
      leaders_allreduce_small(t, comm, h, acc, count, dt, op, tag, fn,
                              incoming);
    } else {
      leaders_reduce_scatter(t, comm, h, acc, count, dt, op, tag, fn);
      leaders_ring_allgather(t, comm, h, acc, count, dt, tag, fn);
    }
  }
  // Intra-node distribution, riding the same readonly-aliasing path the
  // broadcast's stage 2 uses.
  const bool fwd_readonly = hint.send_readonly || hint.recv_readonly;
  std::vector<Request> reqs;
  for (int r : h.local()) {
    if (r == rank) continue;
    if (fwd_readonly) {
      core::MpiHint hs;
      hs.send_readonly = true;
      core::set_mpi_hint(hs);
    }
    reqs.push_back(cisend(t, comm, recvbuf, count, dt, r, tag));
  }
  waitall(reqs);
}

void gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
            Datatype rdt, int root, Comm comm) {
  Task& t = core::require_task("mpi::gather outside a task");
  CollScope scope(t, obs::CollKind::kGather);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t rbytes =
      static_cast<std::uint64_t>(rcount) * datatype_size(rdt);
  const bool fn = functional();

  if (hier_on(t) && size > 1) {
    // Two-level gather: node leaders bundle their node's blocks and send
    // one message per node to the root.
    const Hier h = build_hier(t, comm, rank, root);
    if (rank == root) {
      auto* out = static_cast<unsigned char*>(rbuf);
      std::vector<std::vector<unsigned char>> bundles(
          static_cast<std::size_t>(h.n()));
      std::vector<Request> reqs;
      for (int g = 0; g < h.n(); ++g) {
        const auto& grp = h.groups[static_cast<std::size_t>(g)];
        if (g == h.my_group) {
          for (int r : grp) {
            if (r == rank) {
              if (fn && rbytes > 0) {
                std::memcpy(out + static_cast<std::uint64_t>(r) * rbytes, sbuf,
                            rbytes);
              }
              continue;
            }
            reqs.push_back(irecv(
                fn ? out + static_cast<std::uint64_t>(r) * rbytes : nullptr,
                rcount, rdt, r, tag, comm));
          }
          continue;
        }
        const std::int64_t bcount =
            static_cast<std::int64_t>(grp.size()) * rcount;
        IMPACC_CHECK_MSG(bcount <= INT_MAX,
                         "mpi::gather: node bundle element count overflows int");
        auto& b = bundles[static_cast<std::size_t>(g)];
        b.resize(fn ? grp.size() * rbytes : 0);
        reqs.push_back(irecv(fn ? b.data() : nullptr,
                             static_cast<int>(bcount), rdt,
                             h.leaders[static_cast<std::size_t>(g)], tag,
                             comm));
      }
      waitall(reqs);
      if (fn && rbytes > 0) {
        for (int g = 0; g < h.n(); ++g) {
          if (g == h.my_group) continue;
          const auto& grp = h.groups[static_cast<std::size_t>(g)];
          const auto& b = bundles[static_cast<std::size_t>(g)];
          for (std::size_t i = 0; i < grp.size(); ++i) {
            std::memcpy(
                out + static_cast<std::uint64_t>(grp[i]) * rbytes,
                b.data() + static_cast<std::uint64_t>(i) * rbytes, rbytes);
          }
        }
      }
      return;
    }
    if (!h.is_leader) {
      csend(t, comm, sbuf, scount, sdt, h.my_leader, tag);
      return;
    }
    // Leader of a non-root node: assemble the node bundle in group order.
    const auto& local = h.local();
    const std::uint64_t sbytes =
        static_cast<std::uint64_t>(scount) * datatype_size(sdt);
    const std::int64_t bcount =
        static_cast<std::int64_t>(local.size()) * scount;
    IMPACC_CHECK_MSG(bcount <= INT_MAX,
                     "mpi::gather: node bundle element count overflows int");
    std::vector<unsigned char> bundle(fn ? local.size() * sbytes : 0);
    for (std::size_t i = 0; i < local.size(); ++i) {
      const int r = local[i];
      if (r == rank) {
        if (fn && sbytes > 0) {
          std::memcpy(bundle.data() + i * sbytes, sbuf, sbytes);
        }
        continue;
      }
      recv(fn ? bundle.data() + i * sbytes : nullptr, scount, sdt, r, tag,
           comm);
    }
    csend(t, comm, fn ? bundle.data() : nullptr, static_cast<int>(bcount),
          sdt, root, tag);
    return;
  }

  // Flat path: the root exchanges directly with every rank.
  if (rank == root) {
    auto* out = static_cast<unsigned char*>(rbuf);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      if (r == rank) {
        if (fn && rbytes > 0) {
          std::memcpy(out + static_cast<std::uint64_t>(r) * rbytes, sbuf,
                      rbytes);
        }
        continue;
      }
      reqs.push_back(irecv(out + static_cast<std::uint64_t>(r) * rbytes,
                           rcount, rdt, r, tag, comm));
    }
    waitall(reqs);
  } else {
    csend(t, comm, sbuf, scount, sdt, root, tag);
  }
}

void gatherv(const void* sbuf, int scount, Datatype sdt, void* rbuf,
             const int* rcounts, const int* displs, Datatype rdt, int root,
             Comm comm) {
  Task& t = core::require_task("mpi::gatherv outside a task");
  CollScope scope(t, obs::CollKind::kGatherv);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t esz = datatype_size(rdt);
  if (rank == root) {
    auto* out = static_cast<unsigned char*>(rbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size; ++r) {
      unsigned char* dst = out + static_cast<std::uint64_t>(displs[r]) * esz;
      if (r == rank) {
        if (functional() && rcounts[r] > 0) {
          std::memcpy(dst, sbuf,
                      static_cast<std::uint64_t>(rcounts[r]) * esz);
        }
        continue;
      }
      reqs.push_back(irecv(dst, rcounts[r], rdt, r, tag, comm));
    }
    waitall(reqs);
  } else {
    csend(t, comm, sbuf, scount, sdt, root, tag);
  }
}

void scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf,
             int rcount, Datatype rdt, int root, Comm comm) {
  Task& t = core::require_task("mpi::scatter outside a task");
  CollScope scope(t, obs::CollKind::kScatter);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t sbytes =
      static_cast<std::uint64_t>(scount) * datatype_size(sdt);
  const bool fn = functional();

  if (hier_on(t) && size > 1) {
    // Two-level scatter: the root sends one bundle per node; leaders
    // unpack and hand each member its block over shared memory.
    const Hier h = build_hier(t, comm, rank, root);
    if (rank == root) {
      const auto* in = static_cast<const unsigned char*>(sbuf);
      std::vector<std::vector<unsigned char>> bundles(
          static_cast<std::size_t>(h.n()));
      std::vector<Request> reqs;
      for (int g = 0; g < h.n(); ++g) {
        const auto& grp = h.groups[static_cast<std::size_t>(g)];
        if (g == h.my_group) {
          for (int r : grp) {
            const unsigned char* src =
                in + static_cast<std::uint64_t>(r) * sbytes;
            if (r == rank) {
              if (fn && sbytes > 0) std::memcpy(rbuf, src, sbytes);
              continue;
            }
            reqs.push_back(cisend(t, comm, src, scount, sdt, r, tag));
          }
          continue;
        }
        const std::int64_t bcount =
            static_cast<std::int64_t>(grp.size()) * scount;
        IMPACC_CHECK_MSG(
            bcount <= INT_MAX,
            "mpi::scatter: node bundle element count overflows int");
        auto& b = bundles[static_cast<std::size_t>(g)];
        if (fn) {
          b.resize(grp.size() * sbytes);
          for (std::size_t i = 0; i < grp.size(); ++i) {
            std::memcpy(b.data() + i * sbytes,
                        in + static_cast<std::uint64_t>(grp[i]) * sbytes,
                        sbytes);
          }
        }
        reqs.push_back(cisend(t, comm, fn ? b.data() : nullptr,
                              static_cast<int>(bcount), sdt,
                              h.leaders[static_cast<std::size_t>(g)], tag));
      }
      waitall(reqs);
      return;
    }
    const std::uint64_t rbytes =
        static_cast<std::uint64_t>(rcount) * datatype_size(rdt);
    if (!h.is_leader) {
      recv(rbuf, rcount, rdt, h.my_leader, tag, comm);
      return;
    }
    const auto& local = h.local();
    const std::int64_t bcount =
        static_cast<std::int64_t>(local.size()) * rcount;
    IMPACC_CHECK_MSG(bcount <= INT_MAX,
                     "mpi::scatter: node bundle element count overflows int");
    std::vector<unsigned char> bundle(fn ? local.size() * rbytes : 0);
    recv(fn ? bundle.data() : nullptr, static_cast<int>(bcount), rdt, root,
         tag, comm);
    std::vector<Request> reqs;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const int r = local[i];
      if (r == rank) {
        if (fn && rbytes > 0) {
          std::memcpy(rbuf, bundle.data() + i * rbytes, rbytes);
        }
        continue;
      }
      reqs.push_back(cisend(t, comm, fn ? bundle.data() + i * rbytes : nullptr,
                            rcount, rdt, r, tag));
    }
    waitall(reqs);
    return;
  }

  // Flat path: the root exchanges directly with every rank.
  if (rank == root) {
    const auto* in = static_cast<const unsigned char*>(sbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size; ++r) {
      const unsigned char* src = in + static_cast<std::uint64_t>(r) * sbytes;
      if (r == rank) {
        if (fn && sbytes > 0) std::memcpy(rbuf, src, sbytes);
        continue;
      }
      reqs.push_back(cisend(t, comm, src, scount, sdt, r, tag));
    }
    waitall(reqs);
  } else {
    recv(rbuf, rcount, rdt, root, tag, comm);
  }
}

void scatterv(const void* sbuf, const int* scounts, const int* displs,
              Datatype sdt, void* rbuf, int rcount, Datatype rdt, int root,
              Comm comm) {
  Task& t = core::require_task("mpi::scatterv outside a task");
  CollScope scope(t, obs::CollKind::kScatterv);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t esz = datatype_size(sdt);
  if (rank == root) {
    const auto* in = static_cast<const unsigned char*>(sbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size; ++r) {
      const unsigned char* src =
          in + static_cast<std::uint64_t>(displs[r]) * esz;
      if (r == rank) {
        if (functional() && scounts[r] > 0) {
          std::memcpy(rbuf, src, static_cast<std::uint64_t>(scounts[r]) * esz);
        }
        continue;
      }
      reqs.push_back(cisend(t, comm, src, scounts[r], sdt, r, tag));
    }
    waitall(reqs);
  } else {
    recv(rbuf, rcount, rdt, root, tag, comm);
  }
}

void scan(const void* sendbuf, void* recvbuf, int count, Datatype dt, Op op,
          Comm comm) {
  Task& t = core::require_task("mpi::scan outside a task");
  CollScope scope(t, obs::CollKind::kScan);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * datatype_size(dt);
  const bool fn = functional();

  // Classic recursive-doubling inclusive scan: `recvbuf` carries the
  // running prefix, `subtotal` the reduction of the contiguous block this
  // rank has folded in so far (what it forwards upward).
  std::vector<unsigned char> subtotal(fn ? bytes : 0);
  std::vector<unsigned char> incoming(fn ? bytes : 0);
  if (fn) {
    std::memcpy(recvbuf, sendbuf, bytes);
    std::memcpy(subtotal.data(), sendbuf, bytes);
  }
  for (int dist = 1; dist < size; dist <<= 1) {
    Request sr;
    if (rank + dist < size) {
      sr = cisend(t, comm, fn ? subtotal.data() : nullptr, fn ? count : 0, dt,
                  rank + dist, tag + 1000 + dist);
    }
    if (rank - dist >= 0) {
      recv(fn ? incoming.data() : nullptr, fn ? count : 0, dt, rank - dist,
           tag + 1000 + dist, comm);
      if (fn) {
        apply_op(recvbuf, incoming.data(), count, dt, op);
        apply_op(subtotal.data(), incoming.data(), count, dt, op);
      }
    }
    wait(sr);
  }
}

void reduce_scatter_block(const void* sendbuf, void* recvbuf, int count,
                          Datatype dt, Op op, Comm comm) {
  Task& t = core::require_task("mpi::reduce_scatter_block outside a task");
  CollScope scope(t, obs::CollKind::kReduceScatter);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const std::int64_t total64 = static_cast<std::int64_t>(count) * size;
  IMPACC_CHECK_MSG(
      total64 <= INT_MAX,
      "mpi::reduce_scatter_block: count * comm size overflows int");
  const int total = static_cast<int>(total64);
  const std::uint64_t esz = datatype_size(dt);
  const std::uint64_t bytes = static_cast<std::uint64_t>(count) * esz;
  const bool fn = functional();

  if (hier_on(t) && size > 1) {
    // Two-level reduce_scatter: leaders fold their node's full vectors,
    // pairwise-exchange per-node block bundles (each block crosses the
    // fabric exactly once, to the node that owns it), then hand members
    // their blocks over shared memory.
    const int tag = next_coll_tag(t, comm);
    const Hier h = build_hier(t, comm, rank);
    if (!h.is_leader) {
      csend(t, comm, sendbuf, total, dt, h.my_leader, tag);
      recv(recvbuf, count, dt, h.my_leader, tag, comm);
      return;
    }
    const std::uint64_t tbytes = static_cast<std::uint64_t>(total) * esz;
    std::vector<unsigned char> acc(fn ? tbytes : 0);
    {
      const auto& local = h.local();
      std::vector<std::vector<unsigned char>> parts(local.size());
      for (std::size_t i = 0; i < local.size(); ++i) {
        const int r = local[i];
        if (fn) parts[i].resize(tbytes);
        if (r == rank) {
          if (fn) std::memcpy(parts[i].data(), sendbuf, tbytes);
          continue;
        }
        recv(fn ? parts[i].data() : nullptr, total, dt, r, tag, comm);
      }
      if (fn) {
        tree_fold(parts, total, dt, op);
        std::memcpy(acc.data(), parts[0].data(), tbytes);
      }
    }
    const int n = h.n();
    const int me = h.my_group;
    if (n > 1) {
      const auto& local = h.local();
      const int mcnt = static_cast<int>(local.size()) * count;
      std::vector<unsigned char> tmp(
          fn ? static_cast<std::uint64_t>(mcnt) * esz : 0);
      std::vector<unsigned char> outgoing;
      for (int step = 1; step < n; ++step) {
        const int dst_g = (me + step) % n;
        const int src_g = (me - step + n) % n;
        const auto& dgrp = h.groups[static_cast<std::size_t>(dst_g)];
        const int dcnt = static_cast<int>(dgrp.size()) * count;
        if (fn) {
          outgoing.resize(static_cast<std::uint64_t>(dcnt) * esz);
          for (std::size_t i = 0; i < dgrp.size(); ++i) {
            std::memcpy(outgoing.data() + i * bytes,
                        acc.data() + static_cast<std::uint64_t>(dgrp[i]) * bytes,
                        bytes);
          }
        }
        Request rr =
            irecv(fn ? tmp.data() : nullptr, mcnt, dt,
                  h.leaders[static_cast<std::size_t>(src_g)], tag, comm);
        csend(t, comm, fn ? outgoing.data() : nullptr, dcnt, dt,
              h.leaders[static_cast<std::size_t>(dst_g)], tag);
        wait(rr);
        if (fn) {
          for (std::size_t i = 0; i < local.size(); ++i) {
            apply_op(acc.data() + static_cast<std::uint64_t>(local[i]) * bytes,
                     tmp.data() + i * bytes, count, dt, op);
          }
        }
      }
    }
    std::vector<Request> reqs;
    for (int r : h.local()) {
      if (r == rank) {
        if (fn && bytes > 0) {
          std::memcpy(recvbuf,
                      acc.data() + static_cast<std::uint64_t>(r) * bytes,
                      bytes);
        }
        continue;
      }
      reqs.push_back(cisend(
          t, comm,
          fn ? acc.data() + static_cast<std::uint64_t>(r) * bytes : nullptr,
          count, dt, r, tag));
    }
    waitall(reqs);
    return;
  }

  // Flat path: reduce the full count*size vector at rank 0, then scatter
  // the blocks.
  std::vector<unsigned char> full(
      fn && rank == 0 ? bytes * static_cast<std::uint64_t>(size) : 0);
  reduce(sendbuf, full.data(), total, dt, op, 0, comm);
  scatter(full.data(), count, dt, recvbuf, count, dt, 0, comm);
}

void allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
               int rcount, Datatype rdt, Comm comm) {
  Task& t = core::require_task("mpi::allgather outside a task");
  CollScope scope(t, obs::CollKind::kAllgather);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const std::int64_t total64 = static_cast<std::int64_t>(rcount) * size;
  IMPACC_CHECK_MSG(total64 <= INT_MAX,
                   "mpi::allgather: rcount * comm size overflows int");
  const int total = static_cast<int>(total64);
  const std::uint64_t rbytes =
      static_cast<std::uint64_t>(rcount) * datatype_size(rdt);
  const bool fn = functional();

  if (hier_on(t) && size > 1) {
    // Two-level allgather: leaders collect their node's blocks into rbuf,
    // ring-exchange per-node bundles (each node's data crosses the fabric
    // exactly n-1 times in aggregate — once per other node), then
    // distribute the assembled vector over shared memory.
    const int tag = next_coll_tag(t, comm);
    const core::MpiHint hint = t.take_hint();
    const Hier h = build_hier(t, comm, rank);
    if (!h.is_leader) {
      csend(t, comm, sbuf, scount, sdt, h.my_leader, tag);
      if (hint.recv_readonly && hint.recv_ptr_addr != nullptr) {
        core::MpiHint hr;
        hr.recv_readonly = true;
        hr.recv_ptr_addr = hint.recv_ptr_addr;
        core::set_mpi_hint(hr);
      }
      recv(rbuf, total, rdt, h.my_leader, tag, comm);
      return;
    }
    auto* out = static_cast<unsigned char*>(rbuf);
    if (fn && rbytes > 0) {
      std::memcpy(out + static_cast<std::uint64_t>(rank) * rbytes, sbuf,
                  rbytes);
    }
    for (int r : h.local()) {
      if (r == rank) continue;
      recv(fn ? out + static_cast<std::uint64_t>(r) * rbytes : nullptr, rcount,
           rdt, r, tag, comm);
    }
    const int n = h.n();
    const int me = h.my_group;
    if (n > 1) {
      std::vector<std::vector<unsigned char>> bundles(
          static_cast<std::size_t>(n));
      if (fn) {
        auto& mine = bundles[static_cast<std::size_t>(me)];
        const auto& local = h.local();
        mine.resize(local.size() * rbytes);
        for (std::size_t i = 0; i < local.size(); ++i) {
          std::memcpy(mine.data() + i * rbytes,
                      out + static_cast<std::uint64_t>(local[i]) * rbytes,
                      rbytes);
        }
      }
      const int right = h.leaders[static_cast<std::size_t>((me + 1) % n)];
      const int left = h.leaders[static_cast<std::size_t>((me - 1 + n) % n)];
      for (int step = 0; step < n - 1; ++step) {
        const int sg = (me - step + n) % n;
        const int rg = (me - step - 1 + 2 * n) % n;
        const auto& sgrp = h.groups[static_cast<std::size_t>(sg)];
        const auto& rgrp = h.groups[static_cast<std::size_t>(rg)];
        auto& rb = bundles[static_cast<std::size_t>(rg)];
        if (fn) rb.resize(rgrp.size() * rbytes);
        Request rr =
            irecv(fn ? rb.data() : nullptr,
                  static_cast<int>(rgrp.size()) * rcount, rdt, left, tag,
                  comm);
        csend(t, comm,
              fn ? bundles[static_cast<std::size_t>(sg)].data() : nullptr,
              static_cast<int>(sgrp.size()) * rcount, rdt, right, tag);
        wait(rr);
        if (fn && rbytes > 0) {
          for (std::size_t i = 0; i < rgrp.size(); ++i) {
            std::memcpy(out + static_cast<std::uint64_t>(rgrp[i]) * rbytes,
                        rb.data() + i * rbytes, rbytes);
          }
        }
      }
    }
    const bool fwd_readonly = hint.send_readonly || hint.recv_readonly;
    std::vector<Request> reqs;
    for (int r : h.local()) {
      if (r == rank) continue;
      if (fwd_readonly) {
        core::MpiHint hs;
        hs.send_readonly = true;
        core::set_mpi_hint(hs);
      }
      reqs.push_back(cisend(t, comm, rbuf, total, rdt, r, tag));
    }
    waitall(reqs);
    return;
  }

  // Flat path: gather-to-0 + node-aware bcast — 2 log-ish phases, good
  // enough at the scales the paper's applications use allgather.
  gather(sbuf, scount, sdt, rbuf, rcount, rdt, 0, comm);
  bcast(rbuf, total, rdt, 0, comm);
}

void alltoall(const void* sbuf, int scount, Datatype sdt, void* rbuf,
              int rcount, Datatype rdt, Comm comm) {
  Task& t = core::require_task("mpi::alltoall outside a task");
  CollScope scope(t, obs::CollKind::kAlltoall);
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t sbytes =
      static_cast<std::uint64_t>(scount) * datatype_size(sdt);
  const std::uint64_t rbytes =
      static_cast<std::uint64_t>(rcount) * datatype_size(rdt);
  const auto* in = static_cast<const unsigned char*>(sbuf);
  auto* out = static_cast<unsigned char*>(rbuf);
  if (functional()) {
    std::memcpy(out + static_cast<std::uint64_t>(rank) * rbytes,
                in + static_cast<std::uint64_t>(rank) * sbytes, sbytes);
  }
  std::vector<Request> reqs;
  reqs.reserve(2 * static_cast<std::size_t>(size));
  for (int step = 1; step < size; ++step) {
    const int to = (rank + step) % size;
    const int from = (rank - step + size) % size;
    reqs.push_back(irecv(out + static_cast<std::uint64_t>(from) * rbytes,
                         rcount, rdt, from, tag, comm));
    reqs.push_back(cisend(t, comm,
                          in + static_cast<std::uint64_t>(to) * sbytes, scount,
                          sdt, to, tag));
  }
  waitall(reqs);
}

}  // namespace impacc::mpi
