#include <cstring>
#include <vector>

#include "common/types.h"
#include "core/runtime.h"
#include "core/task.h"
#include "mpi/api.h"

namespace impacc::mpi {

namespace {

using core::Task;

// Collective operations use a reserved tag space; the per-communicator
// sequence number keeps concurrent collectives on the same communicator
// apart (MPI requires identical call order on all members).
constexpr int kCollTagBase = 1 << 24;

int next_coll_tag(Task& t, Comm comm) {
  int& seq = t.collective_seq[comm->context_id()];
  const int tag = kCollTagBase + (seq & 0x7fffff);
  ++seq;
  return tag;
}

bool functional() {
  return core::require_task("collective").rt->functional();
}

/// Group communicator ranks by node, preserving rank order. Used by the
/// node-aware broadcast.
std::vector<std::vector<int>> ranks_by_node(Task& t, Comm comm) {
  std::vector<std::vector<int>> groups(
      static_cast<std::size_t>(t.rt->num_nodes()));
  for (int r = 0; r < comm->size(); ++r) {
    const int node = t.rt->task(comm->global_of(r)).node->index;
    groups[static_cast<std::size_t>(node)].push_back(r);
  }
  std::vector<std::vector<int>> out;
  for (auto& g : groups) {
    if (!g.empty()) out.push_back(std::move(g));
  }
  return out;
}

}  // namespace

void apply_op(void* inout, const void* in, int count, Datatype dt, Op op) {
  auto combine = [op](auto& a, auto b) {
    using T = std::decay_t<decltype(a)>;
    switch (op) {
      case Op::kSum: a = static_cast<T>(a + b); break;
      case Op::kProd: a = static_cast<T>(a * b); break;
      case Op::kMax: a = a < b ? b : a; break;
      case Op::kMin: a = b < a ? b : a; break;
      case Op::kLand: a = static_cast<T>(a != T{} && b != T{}); break;
      case Op::kLor: a = static_cast<T>(a != T{} || b != T{}); break;
      case Op::kBand:
      case Op::kBor:
        if constexpr (std::is_integral_v<T>) {
          a = op == Op::kBand ? static_cast<T>(a & b) : static_cast<T>(a | b);
        } else {
          IMPACC_CHECK_MSG(false, "bitwise op on floating datatype");
        }
        break;
    }
  };
  auto loop = [&](auto* dst, const auto* src) {
    for (int i = 0; i < count; ++i) combine(dst[i], src[i]);
  };
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      loop(static_cast<unsigned char*>(inout),
           static_cast<const unsigned char*>(in));
      break;
    case Datatype::kInt:
      loop(static_cast<int*>(inout), static_cast<const int*>(in));
      break;
    case Datatype::kLong:
      loop(static_cast<long*>(inout), static_cast<const long*>(in));
      break;
    case Datatype::kUint64:
      loop(static_cast<std::uint64_t*>(inout),
           static_cast<const std::uint64_t*>(in));
      break;
    case Datatype::kFloat:
      loop(static_cast<float*>(inout), static_cast<const float*>(in));
      break;
    case Datatype::kDouble:
      loop(static_cast<double*>(inout), static_cast<const double*>(in));
      break;
  }
}

void barrier(Comm comm) {
  Task& t = core::require_task("mpi::barrier outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  // Dissemination barrier: ceil(log2(P)) rounds of zero-byte messages.
  for (int dist = 1; dist < size; dist <<= 1) {
    const int to = (rank + dist) % size;
    const int from = (rank - dist % size + size) % size;
    Request rr = irecv(nullptr, 0, Datatype::kByte, from, tag, comm);
    Request sr = isend(nullptr, 0, Datatype::kByte, to, tag, comm);
    wait(sr);
    wait(rr);
  }
}

void bcast(void* buf, int count, Datatype dt, int root, Comm comm) {
  Task& t = core::require_task("mpi::bcast outside a task");
  const core::MpiHint hint = t.take_hint();  // readonly aliasing hints
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  if (size == 1) return;
  const int tag = next_coll_tag(t, comm);

  // Node-aware two-level broadcast (section 3.8): stage 1 is a binomial
  // tree over node leaders; stage 2 forwards within each node, where the
  // heap-aliasing requirements can be met.
  const auto groups = ranks_by_node(t, comm);
  std::vector<int> leaders;
  leaders.reserve(groups.size());
  int my_group = -1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int r : groups[g]) {
      if (r == rank) my_group = static_cast<int>(g);
    }
    leaders.push_back(groups[g].front());
  }
  IMPACC_CHECK(my_group >= 0);
  // The root acts as its node's leader.
  int root_group = -1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int r : groups[g]) {
      if (r == root) root_group = static_cast<int>(g);
    }
  }
  std::vector<int> stage1 = leaders;
  stage1[static_cast<std::size_t>(root_group)] = root;
  const int my_leader = stage1[static_cast<std::size_t>(my_group)];

  // Stage 1: binomial tree over stage1 ranks, rooted at root's position.
  if (rank == my_leader) {
    const int n = static_cast<int>(stage1.size());
    int me = 0;
    for (int i = 0; i < n; ++i) {
      if (stage1[static_cast<std::size_t>(i)] == rank) me = i;
    }
    // Virtual ranks relative to the root's group.
    const int vme = (me - root_group + n) % n;
    int mask = 1;
    while (mask < n) {
      if (vme < mask) {
        const int vpeer = vme + mask;
        if (vpeer < n) {
          const int peer = stage1[static_cast<std::size_t>(
              (vpeer + root_group) % n)];
          send(buf, count, dt, peer, tag, comm);
        }
      } else if (vme < 2 * mask) {
        const int vpeer = vme - mask;
        const int peer =
            stage1[static_cast<std::size_t>((vpeer + root_group) % n)];
        recv(buf, count, dt, peer, tag, comm);
      }
      mask <<= 1;
    }
  }

  // Stage 2: the leader forwards to the other tasks on its node. Readonly
  // hints flow through so the intra-node legs can alias instead of copy.
  const auto& local = groups[static_cast<std::size_t>(my_group)];
  if (rank == my_leader) {
    // A leader's copy is read-only by the application's contract whenever
    // it attached a readonly clause to either side of its own call. The
    // forwarding legs are issued as non-blocking sends so the receivers'
    // copies progress concurrently (real shared-memory broadcasts
    // pipeline; serializing the legs would charge the leader N full
    // copies).
    const bool fwd_readonly = hint.send_readonly || hint.recv_readonly;
    std::vector<Request> reqs;
    for (int r : local) {
      if (r == my_leader || r == root) continue;
      if (fwd_readonly) {
        core::MpiHint h;
        h.send_readonly = true;
        core::set_mpi_hint(h);
      }
      reqs.push_back(isend(buf, count, dt, r, tag, comm));
    }
    waitall(reqs);
  } else if (rank != root) {
    if (hint.recv_readonly && hint.recv_ptr_addr != nullptr) {
      core::MpiHint h;
      h.recv_readonly = true;
      h.recv_ptr_addr = hint.recv_ptr_addr;
      core::set_mpi_hint(h);
    }
    recv(buf, count, dt, my_leader, tag, comm);
  }
}

void reduce(const void* sendbuf, void* recvbuf, int count, Datatype dt, Op op,
            int root, Comm comm) {
  Task& t = core::require_task("mpi::reduce outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * datatype_size(dt);
  const bool fn = functional();

  // Local accumulator (rank-rotated binomial reduction tree).
  std::vector<unsigned char> acc_buf;
  void* acc = nullptr;
  if (fn) {
    if (rank == root) {
      acc = recvbuf;
      std::memcpy(acc, sendbuf, bytes);
    } else {
      acc_buf.resize(bytes);
      acc = acc_buf.data();
      std::memcpy(acc, sendbuf, bytes);
    }
  }
  std::vector<unsigned char> incoming(fn ? bytes : 0);

  const int vrank = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if ((vrank & mask) == 0) {
      const int vpeer = vrank | mask;
      if (vpeer < size) {
        const int peer = (vpeer + root) % size;
        recv(fn ? incoming.data() : nullptr, fn ? count : 0, dt, peer, tag,
             comm);
        if (fn) apply_op(acc, incoming.data(), count, dt, op);
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % size;
      send(fn ? acc : nullptr, fn ? count : 0, dt, peer, tag, comm);
      break;
    }
    mask <<= 1;
  }
}

void allreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
               Op op, Comm comm) {
  reduce(sendbuf, recvbuf, count, dt, op, 0, comm);
  bcast(recvbuf, count, dt, 0, comm);
}

void gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
            Datatype rdt, int root, Comm comm) {
  Task& t = core::require_task("mpi::gather outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t rbytes =
      static_cast<std::uint64_t>(rcount) * datatype_size(rdt);
  if (rank == root) {
    auto* out = static_cast<unsigned char*>(rbuf);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      if (r == rank) {
        if (functional() && rbytes > 0) {
          std::memcpy(out + static_cast<std::uint64_t>(r) * rbytes, sbuf,
                      rbytes);
        }
        continue;
      }
      reqs.push_back(irecv(out + static_cast<std::uint64_t>(r) * rbytes,
                           rcount, rdt, r, tag, comm));
    }
    waitall(reqs);
  } else {
    send(sbuf, scount, sdt, root, tag, comm);
  }
}

void gatherv(const void* sbuf, int scount, Datatype sdt, void* rbuf,
             const int* rcounts, const int* displs, Datatype rdt, int root,
             Comm comm) {
  Task& t = core::require_task("mpi::gatherv outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t esz = datatype_size(rdt);
  if (rank == root) {
    auto* out = static_cast<unsigned char*>(rbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size; ++r) {
      unsigned char* dst = out + static_cast<std::uint64_t>(displs[r]) * esz;
      if (r == rank) {
        if (functional() && rcounts[r] > 0) {
          std::memcpy(dst, sbuf,
                      static_cast<std::uint64_t>(rcounts[r]) * esz);
        }
        continue;
      }
      reqs.push_back(irecv(dst, rcounts[r], rdt, r, tag, comm));
    }
    waitall(reqs);
  } else {
    send(sbuf, scount, sdt, root, tag, comm);
  }
}

void scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf,
             int rcount, Datatype rdt, int root, Comm comm) {
  Task& t = core::require_task("mpi::scatter outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t sbytes =
      static_cast<std::uint64_t>(scount) * datatype_size(sdt);
  if (rank == root) {
    const auto* in = static_cast<const unsigned char*>(sbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size; ++r) {
      const unsigned char* src = in + static_cast<std::uint64_t>(r) * sbytes;
      if (r == rank) {
        if (functional() && sbytes > 0) std::memcpy(rbuf, src, sbytes);
        continue;
      }
      reqs.push_back(isend(src, scount, sdt, r, tag, comm));
    }
    waitall(reqs);
  } else {
    recv(rbuf, rcount, rdt, root, tag, comm);
  }
}

void scatterv(const void* sbuf, const int* scounts, const int* displs,
              Datatype sdt, void* rbuf, int rcount, Datatype rdt, int root,
              Comm comm) {
  Task& t = core::require_task("mpi::scatterv outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t esz = datatype_size(sdt);
  if (rank == root) {
    const auto* in = static_cast<const unsigned char*>(sbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < size; ++r) {
      const unsigned char* src =
          in + static_cast<std::uint64_t>(displs[r]) * esz;
      if (r == rank) {
        if (functional() && scounts[r] > 0) {
          std::memcpy(rbuf, src, static_cast<std::uint64_t>(scounts[r]) * esz);
        }
        continue;
      }
      reqs.push_back(isend(src, scounts[r], sdt, r, tag, comm));
    }
    waitall(reqs);
  } else {
    recv(rbuf, rcount, rdt, root, tag, comm);
  }
}

void scan(const void* sendbuf, void* recvbuf, int count, Datatype dt, Op op,
          Comm comm) {
  Task& t = core::require_task("mpi::scan outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * datatype_size(dt);
  const bool fn = functional();

  // Classic recursive-doubling inclusive scan: `recvbuf` carries the
  // running prefix, `subtotal` the reduction of the contiguous block this
  // rank has folded in so far (what it forwards upward).
  std::vector<unsigned char> subtotal(fn ? bytes : 0);
  std::vector<unsigned char> incoming(fn ? bytes : 0);
  if (fn) {
    std::memcpy(recvbuf, sendbuf, bytes);
    std::memcpy(subtotal.data(), sendbuf, bytes);
  }
  for (int dist = 1; dist < size; dist <<= 1) {
    Request sr;
    if (rank + dist < size) {
      sr = isend(fn ? subtotal.data() : nullptr, fn ? count : 0, dt,
                 rank + dist, tag + 1000 + dist, comm);
    }
    if (rank - dist >= 0) {
      recv(fn ? incoming.data() : nullptr, fn ? count : 0, dt, rank - dist,
           tag + 1000 + dist, comm);
      if (fn) {
        apply_op(recvbuf, incoming.data(), count, dt, op);
        apply_op(subtotal.data(), incoming.data(), count, dt, op);
      }
    }
    wait(sr);
  }
}

void reduce_scatter_block(const void* sendbuf, void* recvbuf, int count,
                          Datatype dt, Op op, Comm comm) {
  Task& t = core::require_task("mpi::reduce_scatter_block outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * datatype_size(dt);
  const bool fn = functional();
  // Reduce the full count*size vector at rank 0, then scatter the blocks.
  std::vector<unsigned char> full(
      fn && rank == 0 ? bytes * static_cast<std::uint64_t>(size) : 0);
  reduce(sendbuf, full.data(), count * size, dt, op, 0, comm);
  scatter(full.data(), count, dt, recvbuf, count, dt, 0, comm);
}

void allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
               int rcount, Datatype rdt, Comm comm) {
  // gather-to-0 + node-aware bcast: 2 log-ish phases, good enough at the
  // scales the paper's applications use allgather.
  gather(sbuf, scount, sdt, rbuf, rcount, rdt, 0, comm);
  bcast(rbuf, rcount * comm->size(), rdt, 0, comm);
}

void alltoall(const void* sbuf, int scount, Datatype sdt, void* rbuf,
              int rcount, Datatype rdt, Comm comm) {
  Task& t = core::require_task("mpi::alltoall outside a task");
  const int rank = comm->rank_of_global(t.id);
  const int size = comm->size();
  const int tag = next_coll_tag(t, comm);
  const std::uint64_t sbytes =
      static_cast<std::uint64_t>(scount) * datatype_size(sdt);
  const std::uint64_t rbytes =
      static_cast<std::uint64_t>(rcount) * datatype_size(rdt);
  const auto* in = static_cast<const unsigned char*>(sbuf);
  auto* out = static_cast<unsigned char*>(rbuf);
  if (functional()) {
    std::memcpy(out + static_cast<std::uint64_t>(rank) * rbytes,
                in + static_cast<std::uint64_t>(rank) * sbytes, sbytes);
  }
  std::vector<Request> reqs;
  reqs.reserve(2 * static_cast<std::size_t>(size));
  for (int step = 1; step < size; ++step) {
    const int to = (rank + step) % size;
    const int from = (rank - step + size) % size;
    reqs.push_back(irecv(out + static_cast<std::uint64_t>(from) * rbytes,
                         rcount, rdt, from, tag, comm));
    reqs.push_back(isend(in + static_cast<std::uint64_t>(to) * sbytes, scount,
                         sdt, to, tag, comm));
  }
  waitall(reqs);
}

}  // namespace impacc::mpi
