#include "mpi/comm.h"

namespace impacc::mpi {

std::vector<int> CartComm::coords(int r) const {
  IMPACC_CHECK(r >= 0 && r < size());
  std::vector<int> c(static_cast<std::size_t>(ndims()));
  for (int d = ndims() - 1; d >= 0; --d) {
    c[static_cast<std::size_t>(d)] = r % dims_[static_cast<std::size_t>(d)];
    r /= dims_[static_cast<std::size_t>(d)];
  }
  return c;
}

int CartComm::rank_at(const std::vector<int>& coords) const {
  IMPACC_CHECK(static_cast<int>(coords.size()) == ndims());
  int r = 0;
  for (int d = 0; d < ndims(); ++d) {
    int c = coords[static_cast<std::size_t>(d)];
    const int n = dims_[static_cast<std::size_t>(d)];
    if (periods_[static_cast<std::size_t>(d)] != 0) {
      c = ((c % n) + n) % n;
    } else if (c < 0 || c >= n) {
      return -1;
    }
    r = r * n + c;
  }
  return r;
}

void CartComm::shift(int r, int dim, int disp, int* rank_source,
                     int* rank_dest) const {
  std::vector<int> c = coords(r);
  std::vector<int> src = c;
  std::vector<int> dst = c;
  src[static_cast<std::size_t>(dim)] -= disp;
  dst[static_cast<std::size_t>(dim)] += disp;
  if (rank_source != nullptr) *rank_source = rank_at(src);
  if (rank_dest != nullptr) *rank_dest = rank_at(dst);
}

}  // namespace impacc::mpi
