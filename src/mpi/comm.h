// Communicators and groups.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"

namespace impacc::mpi {

/// A communicator: an ordered group of global task ids plus an isolated
/// matching context (messages never match across communicators).
class Communicator {
 public:
  Communicator(int context_id, std::vector<int> members)
      : context_id_(context_id), members_(std::move(members)) {}
  virtual ~Communicator() = default;

  int context_id() const { return context_id_; }
  int size() const { return static_cast<int>(members_.size()); }

  /// Global task id of communicator rank `r`.
  int global_of(int r) const {
    IMPACC_CHECK(r >= 0 && r < size());
    return members_[static_cast<std::size_t>(r)];
  }

  /// Communicator rank of global task id `g`, or -1 if not a member.
  int rank_of_global(int g) const {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == g) return static_cast<int>(i);
    }
    return -1;
  }

  const std::vector<int>& members() const { return members_; }

 private:
  int context_id_;
  std::vector<int> members_;
};

/// Handle type used by the API (MPI_Comm analog).
using Comm = Communicator*;

/// Cartesian-topology communicator (MPI_Cart_create analog); LULESH uses a
/// 3-D decomposition with 26-neighbour exchange.
class CartComm : public Communicator {
 public:
  CartComm(int context_id, std::vector<int> members, std::vector<int> dims,
           std::vector<int> periods)
      : Communicator(context_id, std::move(members)),
        dims_(std::move(dims)),
        periods_(std::move(periods)) {}

  int ndims() const { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const { return dims_; }
  const std::vector<int>& periods() const { return periods_; }

  /// Coordinates of communicator rank `r` (row-major like MPI).
  std::vector<int> coords(int r) const;

  /// Rank at `coords`; -1 when out of range on a non-periodic dimension.
  int rank_at(const std::vector<int>& coords) const;

  /// MPI_Cart_shift: source and destination ranks for a displacement along
  /// `dim` (-1 for "no neighbour", MPI_PROC_NULL analog).
  void shift(int r, int dim, int disp, int* rank_source,
             int* rank_dest) const;

 private:
  std::vector<int> dims_;
  std::vector<int> periods_;
};

}  // namespace impacc::mpi
