// Tag matching (receiver side).
//
// Each node's message handler owns one Matcher. Posted receives and
// pending (unexpected) sends are kept per destination task in FIFO order,
// which — together with the in-order MPSC command queue — preserves MPI's
// non-overtaking guarantee between any (sender, receiver, tag) triple.
//
// Two interchangeable lookup structures back the same FIFO semantics:
//
//  - legacy: plain deques scanned linearly (the pre-batching code,
//    retained verbatim for the features.handler_batching=off path);
//  - fast (set_fast_path(true)): exact-key (context, source, tag) hash
//    buckets over an insertion-ordered list, plus a wildcard sideline for
//    ANY_SOURCE/ANY_TAG receives. Wildcard-free submits resolve in O(1);
//    wildcard candidates carry monotonic sequence stamps so the chosen
//    partner is always the globally FIFO-earliest match — the two paths
//    pick identical pairs by construction (DESIGN.md section 9).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/message.h"

namespace impacc::mpi {

class Matcher {
 public:
  /// Try to match a newly arrived command. For a kRecv, scans pending
  /// sends; for kSend/kIncoming, scans posted receives. On a match the
  /// partner is removed from its list and returned; otherwise `cmd` is
  /// stored and nullptr returned.
  core::MsgCommand* submit(core::MsgCommand* cmd);

  /// MPI_Probe support: first pending send matching the probe's
  /// (source, tag, context) selector, without removing it.
  core::MsgCommand* find_pending_send(const core::MsgCommand& probe) const;

  /// Park a blocking probe until a matching send arrives.
  void store_probe(core::MsgCommand* probe);

  /// Remove and return every parked probe matched by this newly pending
  /// send.
  std::vector<core::MsgCommand*> take_matching_probes(
      const core::MsgCommand& send);

  /// Select the lookup structure. Must be called before the first submit
  /// (the node handler configures it at startup from
  /// features.handler_batching).
  void set_fast_path(bool on) { fast_path_ = on; }
  bool fast_path() const { return fast_path_; }

  /// Counts for tests/diagnostics.
  std::size_t pending_sends(int dst_task) const;
  std::size_t posted_recvs(int dst_task) const;
  bool drained() const;
  /// Total stranded entries (pending sends + posted recvs + parked
  /// probes) across every task — the stray-message count the quiescence
  /// verifier reports at teardown.
  std::size_t pending() const;

  /// Delete every stored command and clear all structures. Used on
  /// teardown of an aborted (fault-injected) run, where unmatched
  /// commands are expected and must not leak.
  void drain_all();

  /// Multi-line dump of every pending send, posted receive, and parked
  /// probe with its (context, peer, tag, bytes) — the hang watchdog's view
  /// of what never matched. The matcher is handler-fiber-private; the
  /// watchdog calls this only when the scheduler has made no progress for
  /// seconds (every handler idle-blocked) and exits right after, so the
  /// unlocked read is acceptable for a diagnostic.
  std::string debug_dump() const;

  /// Matching effectiveness, published as mpi.matcher.* at the end of a
  /// run (docs/OBSERVABILITY.md). Single-threaded like the matcher itself
  /// (handler fiber only).
  struct Stats {
    std::uint64_t matched = 0;            // pairs completed
    std::uint64_t unexpected_queued = 0;  // sends that waited for a recv
    std::uint64_t recvs_queued = 0;       // recvs that waited for a send
    std::uint64_t probes_parked = 0;      // blocking probes that waited
    // Submits answered purely by O(1) exact-key bucket operations
    // (no linear scan). Always 0 on the legacy path.
    std::uint64_t fastpath_hits = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Exact matching key of a send: (communicator context, sender, tag).
  /// Receives and probes produce the same key from their selector when
  /// they carry no wildcard.
  struct Key {
    int context;
    int src;
    int tag;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(k.context)) *
                        0x9e3779b97f4a7c15ull;
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.src)) *
           0xc2b2ae3d27d4eb4full;
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tag)) *
           0x165667b19e3779f9ull;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };

  using SendList = std::list<core::MsgCommand*>;

  /// A posted receive with its global arrival stamp, so the fast path can
  /// order an exact-bucket candidate against a wildcard-sideline one.
  struct PostedRecv {
    core::MsgCommand* cmd;
    std::uint64_t seq;
  };

  struct PerTask {
    // Legacy structures (linear scans, pre-batching behaviour).
    std::deque<core::MsgCommand*> sends;   // unexpected sends/incomings
    std::deque<core::MsgCommand*> recvs;   // posted receives

    // Parked blocking probes (both paths).
    std::deque<core::MsgCommand*> probes;

    // Fast-path structures. Sends live on an insertion-ordered list
    // (wildcard receives and probes scan it); the bucket indexes list
    // positions by exact key, FIFO within a bucket. Exact receives live
    // only in their bucket; wildcard receives only on the sideline.
    SendList send_list;
    std::unordered_map<Key, std::deque<SendList::iterator>, KeyHash>
        send_buckets;
    std::unordered_map<Key, std::deque<PostedRecv>, KeyHash> recv_buckets;
    std::list<PostedRecv> recv_wild;
    std::size_t recv_count = 0;
  };

  static bool pair_matches(const core::MsgCommand& send,
                           const core::MsgCommand& recv);

  core::MsgCommand* submit_fast(PerTask& pt, core::MsgCommand* cmd);
  /// Remove `it`'s send from both the list and the front of its bucket.
  core::MsgCommand* take_send(PerTask& pt, SendList::iterator it);

  std::unordered_map<int, PerTask> per_task_;
  Stats stats_;
  bool fast_path_ = false;
  std::uint64_t next_seq_ = 0;  // stamps posted receives, fast path only
};

}  // namespace impacc::mpi
