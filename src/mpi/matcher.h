// Tag matching (receiver side).
//
// Each node's message handler owns one Matcher. Posted receives and
// pending (unexpected) sends are kept per destination task in FIFO order,
// which — together with the in-order MPSC command queue — preserves MPI's
// non-overtaking guarantee between any (sender, receiver, tag) triple.
#pragma once

#include <deque>
#include <unordered_map>

#include "core/message.h"

namespace impacc::mpi {

class Matcher {
 public:
  /// Try to match a newly arrived command. For a kRecv, scans pending
  /// sends; for kSend/kIncoming, scans posted receives. On a match the
  /// partner is removed from its list and returned; otherwise `cmd` is
  /// stored and nullptr returned.
  core::MsgCommand* submit(core::MsgCommand* cmd);

  /// MPI_Probe support: first pending send matching the probe's
  /// (source, tag, context) selector, without removing it.
  core::MsgCommand* find_pending_send(const core::MsgCommand& probe) const;

  /// Park a blocking probe until a matching send arrives.
  void store_probe(core::MsgCommand* probe);

  /// Remove and return every parked probe matched by this newly pending
  /// send.
  std::vector<core::MsgCommand*> take_matching_probes(
      const core::MsgCommand& send);

  /// Counts for tests/diagnostics.
  std::size_t pending_sends(int dst_task) const;
  std::size_t posted_recvs(int dst_task) const;
  bool drained() const;

  /// Matching effectiveness, published as mpi.matcher.* at the end of a
  /// run (docs/OBSERVABILITY.md). Single-threaded like the matcher itself
  /// (handler fiber only).
  struct Stats {
    std::uint64_t matched = 0;            // pairs completed
    std::uint64_t unexpected_queued = 0;  // sends that waited for a recv
    std::uint64_t recvs_queued = 0;       // recvs that waited for a send
    std::uint64_t probes_parked = 0;      // blocking probes that waited
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PerTask {
    std::deque<core::MsgCommand*> sends;   // unexpected sends/incomings
    std::deque<core::MsgCommand*> recvs;   // posted receives
    std::deque<core::MsgCommand*> probes;  // parked blocking probes
  };

  static bool pair_matches(const core::MsgCommand& send,
                           const core::MsgCommand& recv);

  std::unordered_map<int, PerTask> per_task_;
  Stats stats_;
};

}  // namespace impacc::mpi
