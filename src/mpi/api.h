// The threaded-MPI public API.
//
// Function names follow MPI (lower-cased) so MPI_* calls translate 1:1.
// All functions must be called from a task fiber (inside impacc::launch).
// The IMPACC directive (#pragma acc mpi -> impacc::acc::mpi()) attaches a
// hint consumed by the immediately following call, enabling device-buffer
// communication and unified-activity-queue enqueueing (sections 3.5, 3.6).
#pragma once

#include <vector>

#include "mpi/comm.h"
#include "mpi/types.h"

namespace impacc::mpi {

/// MPI_COMM_WORLD of the current run.
Comm world();

int comm_rank(Comm comm);
int comm_size(Comm comm);
Comm comm_dup(Comm comm);
/// Split by color (tasks with equal color share the new communicator),
/// ordered by (key, parent rank). color < 0 yields no communicator
/// (MPI_UNDEFINED analog) and returns nullptr.
Comm comm_split(Comm comm, int color, int key);

/// Cartesian topology without reordering (MPI_Cart_create).
CartComm* cart_create(Comm comm, const std::vector<int>& dims,
                      const std::vector<int>& periods);

// --- Point-to-point ---------------------------------------------------------

void send(const void* buf, int count, Datatype dt, int dst, int tag,
          Comm comm);
void recv(void* buf, int count, Datatype dt, int src, int tag, Comm comm,
          MpiStatus* status = nullptr);
Request isend(const void* buf, int count, Datatype dt, int dst, int tag,
              Comm comm);
Request irecv(void* buf, int count, Datatype dt, int src, int tag, Comm comm);
/// MPI_Ssend: synchronous send — always rendezvous, completes only when
/// the receive is matched (never buffered eagerly).
void ssend(const void* buf, int count, Datatype dt, int dst, int tag,
           Comm comm);
void wait(Request& req, MpiStatus* status = nullptr);
void waitall(Request* reqs, int n);
void waitall(std::vector<Request>& reqs);
/// MPI_Waitany: block until one request completes; returns its index and
/// consumes it (-1 if all requests are null).
int waitany(Request* reqs, int n, MpiStatus* status = nullptr);
/// Non-blocking completion check; consumes the request when true.
bool test(Request& req, MpiStatus* status = nullptr);
/// MPI_Testall: true (and consumes) only when every request is complete.
bool testall(Request* reqs, int n);
/// MPI_Probe: block until a matching message is pending, fill status
/// without receiving it.
void probe(int src, int tag, Comm comm, MpiStatus* status);
/// MPI_Iprobe: check once whether a matching message is pending.
bool iprobe(int src, int tag, Comm comm, MpiStatus* status = nullptr);
/// MPI_Get_count analog: elements of `dt` in a received message.
int get_count(const MpiStatus& status, Datatype dt);
void sendrecv(const void* sbuf, int scount, Datatype sdt, int dst, int stag,
              void* rbuf, int rcount, Datatype rdt, int src, int rtag,
              Comm comm, MpiStatus* status = nullptr);

// --- Collectives -------------------------------------------------------------

void barrier(Comm comm);
/// Node-aware broadcast: binomial across node leaders, then intra-node
/// forwarding that can use node heap aliasing when the callers attached
/// readonly hints (section 3.8).
void bcast(void* buf, int count, Datatype dt, int root, Comm comm);
void reduce(const void* sendbuf, void* recvbuf, int count, Datatype dt, Op op,
            int root, Comm comm);
void allreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
               Op op, Comm comm);
void gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
            Datatype rdt, int root, Comm comm);
void gatherv(const void* sbuf, int scount, Datatype sdt, void* rbuf,
             const int* rcounts, const int* displs, Datatype rdt, int root,
             Comm comm);
void scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf,
             int rcount, Datatype rdt, int root, Comm comm);
void scatterv(const void* sbuf, const int* scounts, const int* displs,
              Datatype sdt, void* rbuf, int rcount, Datatype rdt, int root,
              Comm comm);
void allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf,
               int rcount, Datatype rdt, Comm comm);
void alltoall(const void* sbuf, int scount, Datatype sdt, void* rbuf,
              int rcount, Datatype rdt, Comm comm);
/// MPI_Scan: inclusive prefix reduction over ranks 0..r.
void scan(const void* sendbuf, void* recvbuf, int count, Datatype dt, Op op,
          Comm comm);
/// MPI_Reduce_scatter_block: reduce count*size elements, scatter `count`
/// to each rank.
void reduce_scatter_block(const void* sendbuf, void* recvbuf, int count,
                          Datatype dt, Op op, Comm comm);

/// Apply a reduction operator elementwise: inout[i] = op(inout[i], in[i]).
/// Exposed for tests.
void apply_op(void* inout, const void* in, int count, Datatype dt, Op op);

}  // namespace impacc::mpi
