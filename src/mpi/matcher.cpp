#include "mpi/matcher.h"

#include <algorithm>
#include <sstream>

#include "common/types.h"

namespace impacc::mpi {

bool Matcher::pair_matches(const core::MsgCommand& send,
                           const core::MsgCommand& recv) {
  if (send.context_id != recv.context_id) return false;
  if (recv.src_task != kAnySource && recv.src_task != send.src_task) {
    return false;
  }
  if (recv.src_match_tag != kAnyTag && recv.src_match_tag != send.tag) {
    return false;
  }
  return true;
}

namespace {

bool recv_is_exact(const core::MsgCommand& recv) {
  return recv.src_task != kAnySource && recv.src_match_tag != kAnyTag;
}

}  // namespace

core::MsgCommand* Matcher::take_send(PerTask& pt, SendList::iterator it) {
  core::MsgCommand* send = *it;
  const Key key{send->context_id, send->src_task, send->tag};
  auto bucket = pt.send_buckets.find(key);
  IMPACC_CHECK_MSG(bucket != pt.send_buckets.end() &&
                       !bucket->second.empty() && bucket->second.front() == it,
                   "matcher bucket out of sync with send list");
  bucket->second.pop_front();
  if (bucket->second.empty()) pt.send_buckets.erase(bucket);
  pt.send_list.erase(it);
  return send;
}

core::MsgCommand* Matcher::submit_fast(PerTask& pt, core::MsgCommand* cmd) {
  if (cmd->kind == core::MsgCommand::Kind::kRecv) {
    if (recv_is_exact(*cmd)) {
      // Sends never wildcard, so every send this receive can match carries
      // exactly this key: the bucket front IS the FIFO-earliest match.
      const Key key{cmd->context_id, cmd->src_task, cmd->src_match_tag};
      auto bucket = pt.send_buckets.find(key);
      if (bucket != pt.send_buckets.end() && !bucket->second.empty()) {
        ++stats_.matched;
        ++stats_.fastpath_hits;
        return take_send(pt, bucket->second.front());
      }
      pt.recv_buckets[key].push_back(PostedRecv{cmd, next_seq_++});
      ++pt.recv_count;
      ++stats_.recvs_queued;
      return nullptr;
    }
    // Wildcard receive: only the insertion-ordered list can answer "first
    // matching send" — same linear cost the legacy path paid for everyone.
    for (auto it = pt.send_list.begin(); it != pt.send_list.end(); ++it) {
      if (pair_matches(**it, *cmd)) {
        ++stats_.matched;
        return take_send(pt, it);
      }
    }
    pt.recv_wild.push_back(PostedRecv{cmd, next_seq_++});
    ++pt.recv_count;
    ++stats_.recvs_queued;
    return nullptr;
  }

  // kSend / kIncoming: the FIFO-earliest matching receive is either the
  // front of the exact bucket for this send's key or the first matching
  // wildcard on the sideline — whichever was posted first (lower seq).
  const Key key{cmd->context_id, cmd->src_task, cmd->tag};
  auto bucket = pt.recv_buckets.find(key);
  const bool bucket_hit =
      bucket != pt.recv_buckets.end() && !bucket->second.empty();
  auto wild = pt.recv_wild.begin();
  for (; wild != pt.recv_wild.end(); ++wild) {
    if (pair_matches(*cmd, *wild->cmd)) break;
  }
  const bool wild_hit = wild != pt.recv_wild.end();
  if (bucket_hit &&
      (!wild_hit || bucket->second.front().seq < wild->seq)) {
    core::MsgCommand* recv = bucket->second.front().cmd;
    bucket->second.pop_front();
    if (bucket->second.empty()) pt.recv_buckets.erase(bucket);
    --pt.recv_count;
    ++stats_.matched;
    if (pt.recv_wild.empty()) ++stats_.fastpath_hits;
    return recv;
  }
  if (wild_hit) {
    core::MsgCommand* recv = wild->cmd;
    pt.recv_wild.erase(wild);
    --pt.recv_count;
    ++stats_.matched;
    return recv;
  }
  pt.send_list.push_back(cmd);
  pt.send_buckets[key].push_back(std::prev(pt.send_list.end()));
  ++stats_.unexpected_queued;
  return nullptr;
}

core::MsgCommand* Matcher::submit(core::MsgCommand* cmd) {
  PerTask& pt = per_task_[cmd->dst_task];
  if (fast_path_) return submit_fast(pt, cmd);
  if (cmd->kind == core::MsgCommand::Kind::kRecv) {
    for (auto it = pt.sends.begin(); it != pt.sends.end(); ++it) {
      if (pair_matches(**it, *cmd)) {
        core::MsgCommand* send = *it;
        pt.sends.erase(it);
        ++stats_.matched;
        return send;
      }
    }
    pt.recvs.push_back(cmd);
    ++stats_.recvs_queued;
    return nullptr;
  }
  // kSend / kIncoming.
  for (auto it = pt.recvs.begin(); it != pt.recvs.end(); ++it) {
    if (pair_matches(*cmd, **it)) {
      core::MsgCommand* recv = *it;
      pt.recvs.erase(it);
      ++stats_.matched;
      return recv;
    }
  }
  pt.sends.push_back(cmd);
  ++stats_.unexpected_queued;
  return nullptr;
}

core::MsgCommand* Matcher::find_pending_send(
    const core::MsgCommand& probe) const {
  auto it = per_task_.find(probe.dst_task);
  if (it == per_task_.end()) return nullptr;
  const PerTask& pt = it->second;
  if (fast_path_) {
    if (recv_is_exact(probe)) {
      const Key key{probe.context_id, probe.src_task, probe.src_match_tag};
      auto bucket = pt.send_buckets.find(key);
      if (bucket == pt.send_buckets.end() || bucket->second.empty()) {
        return nullptr;
      }
      return *bucket->second.front();
    }
    for (core::MsgCommand* send : pt.send_list) {
      if (pair_matches(*send, probe)) return send;
    }
    return nullptr;
  }
  for (core::MsgCommand* send : pt.sends) {
    if (pair_matches(*send, probe)) return send;
  }
  return nullptr;
}

void Matcher::store_probe(core::MsgCommand* probe) {
  per_task_[probe->dst_task].probes.push_back(probe);
  ++stats_.probes_parked;
}

std::vector<core::MsgCommand*> Matcher::take_matching_probes(
    const core::MsgCommand& send) {
  std::vector<core::MsgCommand*> out;
  auto it = per_task_.find(send.dst_task);
  if (it == per_task_.end()) return out;
  auto& probes = it->second.probes;
  for (auto p = probes.begin(); p != probes.end();) {
    if (pair_matches(send, **p)) {
      out.push_back(*p);
      p = probes.erase(p);
    } else {
      ++p;
    }
  }
  return out;
}

std::size_t Matcher::pending_sends(int dst_task) const {
  auto it = per_task_.find(dst_task);
  if (it == per_task_.end()) return 0;
  return fast_path_ ? it->second.send_list.size() : it->second.sends.size();
}

std::size_t Matcher::posted_recvs(int dst_task) const {
  auto it = per_task_.find(dst_task);
  if (it == per_task_.end()) return 0;
  return fast_path_ ? it->second.recv_count : it->second.recvs.size();
}

bool Matcher::drained() const {
  for (const auto& [task, pt] : per_task_) {
    if (!pt.sends.empty() || !pt.recvs.empty() || !pt.probes.empty() ||
        !pt.send_list.empty() || pt.recv_count != 0) {
      return false;
    }
  }
  return true;
}

std::size_t Matcher::pending() const {
  std::size_t n = 0;
  for (const auto& [task, pt] : per_task_) {
    n += fast_path_ ? pt.send_list.size() : pt.sends.size();
    n += fast_path_ ? pt.recv_count : pt.recvs.size();
    n += pt.probes.size();
  }
  return n;
}

void Matcher::drain_all() {
  for (auto& [task, pt] : per_task_) {
    // On the fast path every send lives on send_list and every recv in
    // exactly one of recv_buckets/recv_wild; on the legacy path the
    // deques own everything. Delete each command exactly once.
    if (fast_path_) {
      for (auto* c : pt.send_list) delete c;
      for (auto& [key, dq] : pt.recv_buckets) {
        for (auto& pr : dq) delete pr.cmd;
      }
      for (auto& pr : pt.recv_wild) delete pr.cmd;
    } else {
      for (auto* c : pt.sends) delete c;
      for (auto* c : pt.recvs) delete c;
    }
    for (auto* c : pt.probes) delete c;
  }
  per_task_.clear();
}

std::string Matcher::debug_dump() const {
  std::ostringstream os;
  auto line = [&os](const char* what, const core::MsgCommand* c, int peer,
                    int tag) {
    os << "      " << what << " peer=" << peer << " dst=" << c->dst_task
       << " context=" << c->context_id << " tag=" << tag
       << " bytes=" << c->bytes << "\n";
  };
  for (const auto& [task, pt] : per_task_) {
    const std::size_t ns =
        fast_path_ ? pt.send_list.size() : pt.sends.size();
    const std::size_t nr = fast_path_ ? pt.recv_count : pt.recvs.size();
    if (ns == 0 && nr == 0 && pt.probes.empty()) continue;
    os << "    matcher (for task " << task << "): " << ns
       << " pending send(s), " << nr << " posted recv(s), "
       << pt.probes.size() << " parked probe(s)\n";
    if (fast_path_) {
      for (const auto* c : pt.send_list) line("send", c, c->src_task, c->tag);
      for (const auto& [key, dq] : pt.recv_buckets) {
        for (const auto& pr : dq) {
          line("recv", pr.cmd, pr.cmd->src_task, pr.cmd->src_match_tag);
        }
      }
      for (const auto& pr : pt.recv_wild) {
        line("recv", pr.cmd, pr.cmd->src_task, pr.cmd->src_match_tag);
      }
    } else {
      for (const auto* c : pt.sends) line("send", c, c->src_task, c->tag);
      for (const auto* c : pt.recvs) {
        line("recv", c, c->src_task, c->src_match_tag);
      }
    }
    for (const auto* c : pt.probes) {
      line("probe", c, c->src_task, c->src_match_tag);
    }
  }
  return os.str();
}

}  // namespace impacc::mpi
