#include "mpi/matcher.h"

#include "common/types.h"

namespace impacc::mpi {

bool Matcher::pair_matches(const core::MsgCommand& send,
                           const core::MsgCommand& recv) {
  if (send.context_id != recv.context_id) return false;
  if (recv.src_task != kAnySource && recv.src_task != send.src_task) {
    return false;
  }
  if (recv.src_match_tag != kAnyTag && recv.src_match_tag != send.tag) {
    return false;
  }
  return true;
}

core::MsgCommand* Matcher::submit(core::MsgCommand* cmd) {
  PerTask& pt = per_task_[cmd->dst_task];
  if (cmd->kind == core::MsgCommand::Kind::kRecv) {
    for (auto it = pt.sends.begin(); it != pt.sends.end(); ++it) {
      if (pair_matches(**it, *cmd)) {
        core::MsgCommand* send = *it;
        pt.sends.erase(it);
        ++stats_.matched;
        return send;
      }
    }
    pt.recvs.push_back(cmd);
    ++stats_.recvs_queued;
    return nullptr;
  }
  // kSend / kIncoming.
  for (auto it = pt.recvs.begin(); it != pt.recvs.end(); ++it) {
    if (pair_matches(*cmd, **it)) {
      core::MsgCommand* recv = *it;
      pt.recvs.erase(it);
      ++stats_.matched;
      return recv;
    }
  }
  pt.sends.push_back(cmd);
  ++stats_.unexpected_queued;
  return nullptr;
}

core::MsgCommand* Matcher::find_pending_send(
    const core::MsgCommand& probe) const {
  auto it = per_task_.find(probe.dst_task);
  if (it == per_task_.end()) return nullptr;
  for (core::MsgCommand* send : it->second.sends) {
    if (pair_matches(*send, probe)) return send;
  }
  return nullptr;
}

void Matcher::store_probe(core::MsgCommand* probe) {
  per_task_[probe->dst_task].probes.push_back(probe);
  ++stats_.probes_parked;
}

std::vector<core::MsgCommand*> Matcher::take_matching_probes(
    const core::MsgCommand& send) {
  std::vector<core::MsgCommand*> out;
  auto it = per_task_.find(send.dst_task);
  if (it == per_task_.end()) return out;
  auto& probes = it->second.probes;
  for (auto p = probes.begin(); p != probes.end();) {
    if (pair_matches(send, **p)) {
      out.push_back(*p);
      p = probes.erase(p);
    } else {
      ++p;
    }
  }
  return out;
}

std::size_t Matcher::pending_sends(int dst_task) const {
  auto it = per_task_.find(dst_task);
  return it == per_task_.end() ? 0 : it->second.sends.size();
}

std::size_t Matcher::posted_recvs(int dst_task) const {
  auto it = per_task_.find(dst_task);
  return it == per_task_.end() ? 0 : it->second.recvs.size();
}

bool Matcher::drained() const {
  for (const auto& [task, pt] : per_task_) {
    if (!pt.sends.empty() || !pt.recvs.empty() || !pt.probes.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace impacc::mpi
