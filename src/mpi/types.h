// MPI-like basic types for the threaded-MPI library.
//
// IMPACC keeps the MPI programming model; tasks only see ranks, tags,
// datatypes, requests and communicators. The names mirror MPI's so the
// source-to-source translator can map MPI_* calls directly.
#pragma once

#include <cstdint>
#include <memory>

#include "dev/stream.h"
#include "sim/time.h"

namespace impacc::mpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Subset of MPI predefined datatypes used by the paper's applications.
enum class Datatype : int {
  kByte = 0,
  kChar,
  kInt,
  kLong,
  kUint64,
  kFloat,
  kDouble,
};

constexpr std::uint64_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kByte:
    case Datatype::kChar:
      return 1;
    case Datatype::kInt:
    case Datatype::kFloat:
      return 4;
    case Datatype::kLong:
    case Datatype::kUint64:
    case Datatype::kDouble:
      return 8;
  }
  return 1;
}

/// Reduction operators.
enum class Op : int { kSum = 0, kProd, kMax, kMin, kLand, kLor, kBand, kBor };

/// Completion status of a receive.
struct MpiStatus {
  int source = kAnySource;
  int tag = kAnyTag;
  std::uint64_t bytes = 0;
};

/// Shared state behind a Request. The handler completes it with the
/// operation's virtual end time.
struct RequestState {
  dev::CompletionRecord rec;
  MpiStatus status;
  bool probe_found = false;  // MPI_Iprobe answer

  // Hang-watchdog diagnostics, filled at command build time (plain
  // descriptive data; never read on any timing path).
  int dbg_context = 0;
  int dbg_peer = kAnySource;
  int dbg_tag = kAnyTag;
  std::uint64_t dbg_bytes = 0;
  bool dbg_is_send = false;
};

/// Non-blocking operation handle (MPI_Request). Copyable; test/wait
/// through the p2p API. A default-constructed Request is "null" and
/// trivially complete (like MPI_REQUEST_NULL).
struct Request {
  std::shared_ptr<RequestState> state;

  bool null() const { return state == nullptr; }
};

}  // namespace impacc::mpi
