#include "mpi/datatype.h"

#include <cstring>
#include <deque>
#include <mutex>

#include "common/types.h"

namespace impacc::mpi {

namespace {

// Derived handles start well above the basic enumerators.
constexpr int kDerivedBase = 1 << 16;

std::mutex g_mutex;
std::deque<TypeDesc> g_types;

Datatype register_type(const TypeDesc& desc) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_types.push_back(desc);
  return static_cast<Datatype>(kDerivedBase +
                               static_cast<int>(g_types.size()) - 1);
}

}  // namespace

Datatype type_vector(int count, int blocklength, int stride, Datatype base) {
  IMPACC_CHECK(count > 0 && blocklength > 0 && stride >= blocklength);
  IMPACC_CHECK_MSG(!is_derived(base), "nested derived types not supported");
  return register_type(TypeDesc{base, count, blocklength, stride});
}

Datatype type_contiguous(int count, Datatype base) {
  return type_vector(/*count=*/1, /*blocklength=*/count, /*stride=*/count,
                     base);
}

bool is_derived(Datatype dt) {
  return static_cast<int>(dt) >= kDerivedBase;
}

const TypeDesc& type_desc(Datatype dt) {
  IMPACC_CHECK(is_derived(dt));
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto idx = static_cast<std::size_t>(static_cast<int>(dt) -
                                            kDerivedBase);
  IMPACC_CHECK_MSG(idx < g_types.size(), "unknown derived datatype");
  return g_types[idx];
}

std::uint64_t type_size(Datatype dt) {
  if (!is_derived(dt)) return datatype_size(dt);
  const TypeDesc& d = type_desc(dt);
  return static_cast<std::uint64_t>(d.count) * d.blocklength *
         datatype_size(d.base);
}

std::uint64_t type_extent(Datatype dt) {
  if (!is_derived(dt)) return datatype_size(dt);
  const TypeDesc& d = type_desc(dt);
  const std::uint64_t elems =
      static_cast<std::uint64_t>(d.count - 1) * d.stride + d.blocklength;
  return elems * datatype_size(d.base);
}

void type_pack(void* dst, const void* src, int count, Datatype dt) {
  if (!is_derived(dt)) {
    std::memcpy(dst, src, static_cast<std::size_t>(count) * datatype_size(dt));
    return;
  }
  const TypeDesc& d = type_desc(dt);
  const std::uint64_t esz = datatype_size(d.base);
  const std::uint64_t block = d.blocklength * esz;
  auto* out = static_cast<unsigned char*>(dst);
  const auto* in = static_cast<const unsigned char*>(src);
  for (int inst = 0; inst < count; ++inst) {
    // Successive instances follow MPI semantics: instance i starts at
    // i * extent.
    const unsigned char* base = in + inst * type_extent(dt);
    for (int b = 0; b < d.count; ++b) {
      std::memcpy(out, base + static_cast<std::uint64_t>(b) * d.stride * esz,
                  block);
      out += block;
    }
  }
}

void type_unpack(void* dst, const void* src, int count, Datatype dt) {
  if (!is_derived(dt)) {
    std::memcpy(dst, src, static_cast<std::size_t>(count) * datatype_size(dt));
    return;
  }
  const TypeDesc& d = type_desc(dt);
  const std::uint64_t esz = datatype_size(d.base);
  const std::uint64_t block = d.blocklength * esz;
  const auto* in = static_cast<const unsigned char*>(src);
  auto* out = static_cast<unsigned char*>(dst);
  for (int inst = 0; inst < count; ++inst) {
    unsigned char* base = out + inst * type_extent(dt);
    for (int b = 0; b < d.count; ++b) {
      std::memcpy(base + static_cast<std::uint64_t>(b) * d.stride * esz, in,
                  block);
      in += block;
    }
  }
}

}  // namespace impacc::mpi
