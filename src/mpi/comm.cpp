#include "mpi/comm.h"

#include <algorithm>
#include <memory>

#include "core/runtime.h"
#include "core/task.h"
#include "mpi/api.h"

namespace impacc::mpi {

namespace {

/// Agree on a fresh context id. Communicator creation is collective and
/// identically ordered on every member, so a per-parent creation counter
/// plus the runtime's agreement table yields the same id everywhere — even
/// in model-only mode, where message payloads don't flow. A barrier keeps
/// the collective synchronization semantics (and its simulated cost).
/// Every member then materializes its own Communicator object; matching
/// only uses the context id, so object identity across tasks is not
/// required.
int agree_context_id(Comm parent) {
  core::Task& t = core::require_task("comm creation outside a task");
  const int seq = t.comm_create_seq[parent->context_id()]++;
  barrier(parent);
  return t.rt->agree_context(parent->context_id(), seq);
}

}  // namespace

Comm comm_dup(Comm comm) {
  core::Task& t = core::require_task("mpi::comm_dup outside a task");
  const int ctx = agree_context_id(comm);
  return t.rt->adopt_comm(
      std::make_unique<Communicator>(ctx, comm->members()));
}

Comm comm_split(Comm comm, int color, int key) {
  core::Task& t = core::require_task("mpi::comm_split outside a task");
  // Group membership travels in message payloads; model-only runs do not
  // move payload bytes, so splitting is a functional-mode operation.
  IMPACC_CHECK_MSG(t.rt->functional(),
                   "mpi::comm_split requires functional execution mode");
  const int size = comm->size();
  const int rank = comm_rank(comm);

  // Exchange (color, key) among all members.
  std::vector<int> mine = {color, key};
  std::vector<int> all(static_cast<std::size_t>(2 * size));
  allgather(mine.data(), 2, Datatype::kInt, all.data(), 2, Datatype::kInt,
            comm);

  const int ctx = agree_context_id(comm);
  if (color < 0) return nullptr;  // MPI_UNDEFINED

  // Members with my color, ordered by (key, parent rank).
  std::vector<std::pair<int, int>> group;  // (key, parent rank)
  for (int r = 0; r < size; ++r) {
    if (all[static_cast<std::size_t>(2 * r)] == color) {
      group.emplace_back(all[static_cast<std::size_t>(2 * r + 1)], r);
    }
  }
  std::sort(group.begin(), group.end());
  std::vector<int> members;
  members.reserve(group.size());
  for (const auto& [k, r] : group) members.push_back(comm->global_of(r));

  // Distinct colors need distinct contexts; derive deterministically from
  // the agreed base so no further agreement round is needed.
  (void)rank;
  return t.rt->adopt_comm(std::make_unique<Communicator>(
      ctx * 4096 + (color & 0xfff), std::move(members)));
}

CartComm* cart_create(Comm comm, const std::vector<int>& dims,
                      const std::vector<int>& periods) {
  core::Task& t = core::require_task("mpi::cart_create outside a task");
  IMPACC_CHECK(dims.size() == periods.size());
  long total = 1;
  for (int d : dims) total *= d;
  IMPACC_CHECK_MSG(total == comm->size(),
                   "cart_create: dims do not cover the communicator");
  const int ctx = agree_context_id(comm);
  auto cart = std::make_unique<CartComm>(ctx, comm->members(), dims, periods);
  auto* raw = cart.get();
  t.rt->adopt_comm(std::move(cart));
  return raw;
}

}  // namespace impacc::mpi
