#include "acc/api.h"

#include "acc/dataenv.h"
#include "common/log.h"
#include "core/handler.h"
#include "dev/copyengine.h"
#include "sim/costmodel.h"
#include "core/runtime.h"
#include "core/task.h"

namespace impacc::acc {

void* copyin(const void* host, std::uint64_t bytes, int async) {
  core::Task& t = core::require_task("acc::copyin outside a task");
  return data_copyin(t, host, bytes, async);
}

void* create(void* host, std::uint64_t bytes) {
  core::Task& t = core::require_task("acc::create outside a task");
  return data_create(t, host, bytes);
}

void copyout(void* host, int async) {
  core::Task& t = core::require_task("acc::copyout outside a task");
  data_copyout(t, host, async);
}

void del(void* host) {
  core::Task& t = core::require_task("acc::del outside a task");
  data_delete(t, host);
}

void update_device(const void* host, std::uint64_t bytes, int async) {
  core::Task& t = core::require_task("acc::update_device outside a task");
  data_update(t, host, bytes, /*to_device=*/true, async);
}

void update_self(void* host, std::uint64_t bytes, int async) {
  core::Task& t = core::require_task("acc::update_self outside a task");
  data_update(t, host, bytes, /*to_device=*/false, async);
}

void* deviceptr(const void* host) {
  core::Task& t = core::require_task("acc::deviceptr outside a task");
  return t.present.deviceptr(host);
}

void* hostptr(const void* dev) {
  core::Task& t = core::require_task("acc::hostptr outside a task");
  return t.present.hostptr(dev);
}

bool is_present(const void* host) {
  core::Task& t = core::require_task("acc::is_present outside a task");
  return t.present.find_host(host) != nullptr;
}

void wait(int async) {
  core::Task& t = core::require_task("acc::wait outside a task");
  core::wait_stream(t, async);
}

void wait_all() {
  core::Task& t = core::require_task("acc::wait_all outside a task");
  for (dev::Stream* s : t.device->streams()) {
    core::wait_stream(t, s->id());
  }
}

void* device_malloc(std::uint64_t bytes) {
  core::Task& t = core::require_task("acc::device_malloc outside a task");
  return t.device->alloc(bytes).dptr;
}

void device_free(void* dev) {
  core::Task& t = core::require_task("acc::device_free outside a task");
  dev::DeviceBuffer buf;
  buf.dptr = dev;
  t.device->free(buf);
}

namespace {

void raw_device_copy(core::Task& t, void* dst, const void* src,
                     std::uint64_t bytes, bool to_device, int async,
                     const char* label) {
  const sim::Time cost =
      sim::pcie_copy_time(t.node_desc(), t.device->desc(), bytes, t.near);
  const auto path = to_device ? dev::CopyPathKind::kHostToDev
                              : dev::CopyPathKind::kDevToHost;
  core::account_copy(t, path, cost, bytes);
  dev::StreamOp op;
  op.kind = dev::StreamOp::Kind::kMemcpy;
  op.label = label;
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  op.functional = t.functional();
  op.model_cost = cost;
  op.copy_path = static_cast<int>(path);
  if (async == kSync) {
    core::sync_stream_op(t, kSync, std::move(op));
  } else {
    core::submit_stream_op(t, async, std::move(op));
  }
}

}  // namespace

void memcpy_to_device(void* dev, const void* host, std::uint64_t bytes,
                      int async) {
  core::Task& t = core::require_task("acc::memcpy_to_device outside a task");
  IMPACC_CHECK_MSG(t.device->owns(dev), "destination is not device memory");
  raw_device_copy(t, dev, host, bytes, true, async, "memcpy_to_device");
}

void memcpy_from_device(void* host, const void* dev, std::uint64_t bytes,
                        int async) {
  core::Task& t =
      core::require_task("acc::memcpy_from_device outside a task");
  IMPACC_CHECK_MSG(t.device->owns(dev), "source is not device memory");
  raw_device_copy(t, host, dev, bytes, false, async, "memcpy_from_device");
}

void map_data(void* host, void* dev, std::uint64_t bytes) {
  core::Task& t = core::require_task("acc::map_data outside a task");
  IMPACC_CHECK_MSG(t.device->owns(dev), "acc_map_data needs device memory");
  acc::PresentEntry* e = t.present.insert(host, dev, bytes, 0);
  e->dynamic_ref = 1;
}

void unmap_data(void* host) {
  core::Task& t = core::require_task("acc::unmap_data outside a task");
  acc::PresentEntry* e = t.present.find_host(host);
  IMPACC_CHECK_MSG(e != nullptr, "acc_unmap_data: data not mapped");
  // The application owns the device memory: just drop the mapping.
  t.present.erase(e);
}

DataRegion::~DataRegion() {
  for (auto it = exits_.rbegin(); it != exits_.rend(); ++it) {
    if (it->copyback) {
      impacc::acc::copyout(it->host, kSync);  // not the member overload
    } else {
      impacc::acc::del(it->host);
    }
  }
}

DataRegion& DataRegion::copy(void* host, std::uint64_t bytes) {
  acc::copyin(host, bytes);
  exits_.push_back({host, true});
  return *this;
}

DataRegion& DataRegion::copyin(void* host, std::uint64_t bytes) {
  acc::copyin(host, bytes);
  exits_.push_back({host, false});
  return *this;
}

DataRegion& DataRegion::copyout(void* host, std::uint64_t bytes) {
  acc::create(host, bytes);
  exits_.push_back({host, true});
  return *this;
}

DataRegion& DataRegion::create(void* host, std::uint64_t bytes) {
  acc::create(host, bytes);
  exits_.push_back({host, false});
  return *this;
}

void kernel(const char* name, std::function<void()> body,
            sim::WorkEstimate est, int async) {
  core::Task& t = core::require_task("acc::kernel outside a task");
  dev::StreamOp op;
  op.kind = dev::StreamOp::Kind::kKernel;
  op.label = name;
  op.model_cost = t.device->kernel_cost(est);
  {
    std::lock_guard<std::mutex> lock(t.stats_mutex);
    t.stats.kernel_busy += op.model_cost;
  }
  if (obs::Observability* ob = t.rt->obs()) {
    ob->kernel_seconds->record(op.model_cost);
  }
  if (t.functional()) op.body = std::move(body);
  if (async == kSync) {
    core::sync_stream_op(t, kSync, std::move(op));
  } else {
    core::submit_stream_op(t, async, std::move(op));
  }
}

void parallel_loop(const char* name, long n, std::function<void(long)> body,
                   sim::WorkEstimate est, int async) {
  kernel(
      name,
      [n, body = std::move(body)] {
        for (long i = 0; i < n; ++i) body(i);
      },
      est, async);
}

void host_callback(std::function<void()> fn, int async) {
  core::Task& t = core::require_task("acc::host_callback outside a task");
  dev::StreamOp op;
  op.kind = dev::StreamOp::Kind::kCallback;
  op.label = "host callback";
  op.body = std::move(fn);
  op.model_cost = 0;
  core::submit_stream_op(t, async == kSync ? kAsyncNoval : async,
                         std::move(op));
}

sim::DeviceKind get_device_type() {
  core::Task& t = core::require_task("acc::get_device_type outside a task");
  return t.device->kind();
}

int get_device_num() {
  core::Task& t = core::require_task("acc::get_device_num outside a task");
  return t.device->local_index();
}

void set_device_num(int num) {
  core::Task& t = core::require_task("acc::set_device_num outside a task");
  // The task-device mapping is fixed for the application's lifetime; the
  // runtime ignores attempts to change it (section 3.2).
  IMPACC_LOG_DEBUG("task %d: acc_set_device_num(%d) ignored by IMPACC", t.id,
                   num);
}

}  // namespace impacc::acc
