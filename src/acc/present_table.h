// OpenACC present table (section 3.4, Fig. 3).
//
// Maps host address ranges to device address ranges. Per the paper, each
// task keeps its own table, and the table is TWO balanced binary trees —
// one indexed by host address, one by device address — so both
// acc_deviceptr() (host -> device) and acc_hostptr() (device -> host) are
// O(log n) worst case. We implement the trees as AVL trees from scratch;
// entries are non-overlapping address intervals.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/types.h"

namespace impacc::acc {

/// One mapping: [host, host+bytes) <-> [dev, dev+bytes).
/// For OpenCL-like backends `handle` is the cl_mem-style object id and
/// `dev` is the reserved mapped range (Fig. 3, Task 1); for CUDA-like
/// backends `handle` is 0 and `dev` is the UVA pointer (Task 0).
struct PresentEntry {
  std::uintptr_t host = 0;
  std::uintptr_t dev = 0;
  std::uint64_t bytes = 0;
  std::uint64_t handle = 0;
  // OpenACC structured/dynamic reference counting: the entry is removed and
  // device memory freed when both counts drop to zero.
  int structured_ref = 0;
  int dynamic_ref = 0;

  int total_ref() const { return structured_ref + dynamic_ref; }
};

namespace detail {

/// AVL tree over PresentEntry*, keyed by a start address extracted with
/// KeyOf. Intervals are assumed non-overlapping (enforced by PresentTable).
class AddrAvlTree {
 public:
  using KeyOf = std::uintptr_t (*)(const PresentEntry*);

  explicit AddrAvlTree(KeyOf key_of) : key_of_(key_of) {}
  ~AddrAvlTree() { clear(); }

  AddrAvlTree(const AddrAvlTree&) = delete;
  AddrAvlTree& operator=(const AddrAvlTree&) = delete;

  void insert(PresentEntry* e);
  void erase(const PresentEntry* e);

  /// Entry whose interval [key, key+bytes) contains `addr`, or nullptr.
  PresentEntry* find_containing(std::uintptr_t addr) const;

  /// Entry with the exact start key.
  PresentEntry* find_exact(std::uintptr_t key) const;

  /// Entry with the smallest key in [lo, hi), or nullptr. Together with
  /// find_containing(lo) this gives complete interval-overlap detection.
  PresentEntry* find_first_in(std::uintptr_t lo, std::uintptr_t hi) const;

  std::size_t size() const { return size_; }
  int height() const;
  void clear();

  /// In-order keys (for tests/invariant checks).
  std::vector<std::uintptr_t> keys() const;

  /// AVL invariant check (tests): every node's balance factor in [-1, 1]
  /// and keys strictly increasing in-order.
  bool check_invariants() const;

 private:
  struct Node {
    PresentEntry* entry;
    Node* left = nullptr;
    Node* right = nullptr;
    int height = 1;
  };

  static int node_height(const Node* n) { return n ? n->height : 0; }
  static void update(Node* n);
  static Node* rotate_left(Node* n);
  static Node* rotate_right(Node* n);
  static Node* rebalance(Node* n);
  Node* insert_rec(Node* n, PresentEntry* e);
  Node* erase_rec(Node* n, std::uintptr_t key);
  static Node* take_min(Node* n, Node** min_out);
  void clear_rec(Node* n);
  bool check_rec(const Node* n, std::uintptr_t* prev, bool* ok) const;

  KeyOf key_of_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Per-task present table: owns its entries and keeps both index trees in
/// sync. Each task keeps its own table (the paper keeps "a distinct
/// present table for each task to avoid the access conflict between
/// them"), but within a task's node the handler fiber and the task fiber
/// can look buffers up concurrently, so the LOOKUP path is thread-safe:
/// a reader/writer lock guards the trees (lookups share it) and the memo
/// caches are sharded atomics, so concurrent fibers resolving different
/// buffers neither serialize nor ping-pong one memo cache line.
/// Structural changes (insert/erase) still come only from the owning task
/// fiber; returned entries stay valid because only the owner erases.
class PresentTable {
 public:
  /// Effectiveness counters of the sharded memo caches that sit in front
  /// of the two AVL trees. Directive-heavy code (and every `acc mpi`
  /// buffer resolution) looks the same few buffers up over and over, so a
  /// remembered entry per (tree, address shard) answers most lookups in
  /// O(1) without touching the lock-protected tree walk.
  struct CacheStats {
    std::uint64_t host_hits = 0;
    std::uint64_t host_misses = 0;  // tree walked (found or not)
    std::uint64_t dev_hits = 0;
    std::uint64_t dev_misses = 0;
    std::uint64_t invalidations = 0;  // insert/erase cleared the memos

    std::uint64_t hits() const { return host_hits + dev_hits; }
    std::uint64_t misses() const { return host_misses + dev_misses; }
  };

  PresentTable();
  ~PresentTable();

  PresentTable(const PresentTable&) = delete;
  PresentTable& operator=(const PresentTable&) = delete;

  /// Create a mapping. The host and device ranges must not overlap any
  /// existing entry (checked). Returns the new entry.
  PresentEntry* insert(const void* host, void* dev, std::uint64_t bytes,
                       std::uint64_t handle);

  /// Remove and destroy an entry.
  void erase(PresentEntry* e);

  /// Entry containing host address `p`, or nullptr.
  PresentEntry* find_host(const void* p) const;

  /// Entry containing device address `p`, or nullptr.
  PresentEntry* find_dev(const void* p) const;

  /// acc_deviceptr(): device address corresponding to host address `p`
  /// (honoring the offset within the mapping); nullptr if not present.
  void* deviceptr(const void* p) const;

  /// acc_hostptr(): inverse of deviceptr().
  void* hostptr(const void* p) const;

  std::size_t size() const { return by_host_.size(); }
  const detail::AddrAvlTree& host_tree() const { return by_host_; }
  const detail::AddrAvlTree& dev_tree() const { return by_dev_; }

  /// All entries (unordered); used at task teardown to release leaks.
  std::vector<PresentEntry*> entries() const;

  /// Snapshot of the memo-cache counters (by value: the live counters are
  /// atomics updated concurrently by lookups).
  CacheStats cache_stats() const;

  /// Number of memo shards per tree. Lookup addresses map to shards at
  /// page granularity, so fibers resolving different buffers hit
  /// different shards.
  static constexpr std::size_t kMemoShards = 8;

 private:
  static std::size_t memo_shard(std::uintptr_t addr) {
    return (addr >> 12) & (kMemoShards - 1);
  }
  void invalidate_memo();

  detail::AddrAvlTree by_host_;
  detail::AddrAvlTree by_dev_;
  // Reader/writer lock: lookups take it shared (concurrent), insert/erase
  // exclusive. Exclusive sections clear every memo shard before an entry
  // is destroyed, so a lookup can never validate a freed entry.
  mutable std::shared_mutex mu_;
  // Sharded memo caches (mutable: lookups are logically const). Any
  // insert or erase invalidates all shards — correctness over cleverness;
  // the hot path is long runs of lookups between structural changes.
  struct MemoShard {
    std::atomic<PresentEntry*> host{nullptr};
    std::atomic<PresentEntry*> dev{nullptr};
  };
  mutable std::array<MemoShard, kMemoShards> memo_;
  struct AtomicCacheStats {
    std::atomic<std::uint64_t> host_hits{0};
    std::atomic<std::uint64_t> host_misses{0};
    std::atomic<std::uint64_t> dev_hits{0};
    std::atomic<std::uint64_t> dev_misses{0};
    std::atomic<std::uint64_t> invalidations{0};
  };
  mutable AtomicCacheStats cache_;
};

}  // namespace impacc::acc
