#include "acc/dataenv.h"

#include "acc/api.h"
#include "core/handler.h"
#include "dev/copyengine.h"
#include "core/runtime.h"
#include "sim/costmodel.h"

namespace impacc::acc {

namespace {

/// Issue a host<->device transfer on an activity queue (sync or async)
/// and account it.
void submit_copy(core::Task& t, void* dst, const void* src,
                 std::uint64_t bytes, bool to_device, int async,
                 const char* label) {
  if (t.device->backend() == sim::BackendKind::kHostShared) return;  // elided
  const sim::Time cost =
      sim::pcie_copy_time(t.node_desc(), t.device->desc(), bytes, t.near);
  const auto path = to_device ? dev::CopyPathKind::kHostToDev
                              : dev::CopyPathKind::kDevToHost;
  core::account_copy(t, path, cost, bytes);

  dev::StreamOp op;
  op.kind = dev::StreamOp::Kind::kMemcpy;
  op.label = label;
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  op.functional = t.functional();
  op.model_cost = cost;
  op.copy_path = static_cast<int>(path);
  if (async == kSync) {
    core::sync_stream_op(t, kSync, std::move(op));
  } else {
    core::submit_stream_op(t, async, std::move(op));
  }
}

}  // namespace

void* data_copyin(core::Task& t, const void* host, std::uint64_t bytes,
                  int async) {
  IMPACC_CHECK(host != nullptr && bytes > 0);
  if (PresentEntry* e = t.present.find_host(host)) {
    // present_or_copyin: already mapped, just add a reference.
    IMPACC_CHECK_MSG(
        reinterpret_cast<std::uintptr_t>(host) + bytes <= e->host + e->bytes,
        "copyin range exceeds existing mapping");
    ++e->dynamic_ref;
    return reinterpret_cast<void*>(
        e->dev + (reinterpret_cast<std::uintptr_t>(host) - e->host));
  }
  if (t.device->backend() == sim::BackendKind::kHostShared) {
    // Integrated accelerator: device memory *is* host memory; the mapping
    // is the identity and the copy is elided (section 2.4).
    PresentEntry* e = t.present.insert(host, const_cast<void*>(host), bytes, 0);
    e->dynamic_ref = 1;
    return const_cast<void*>(host);
  }
  const dev::DeviceBuffer buf = t.device->alloc(bytes);
  PresentEntry* e = t.present.insert(host, buf.dptr, bytes, buf.handle);
  e->dynamic_ref = 1;
  submit_copy(t, buf.dptr, host, bytes, /*to_device=*/true, async, "copyin");
  return buf.dptr;
}

void* data_create(core::Task& t, void* host, std::uint64_t bytes) {
  IMPACC_CHECK(host != nullptr && bytes > 0);
  if (PresentEntry* e = t.present.find_host(host)) {
    ++e->dynamic_ref;
    return reinterpret_cast<void*>(
        e->dev + (reinterpret_cast<std::uintptr_t>(host) - e->host));
  }
  if (t.device->backend() == sim::BackendKind::kHostShared) {
    PresentEntry* e = t.present.insert(host, host, bytes, 0);
    e->dynamic_ref = 1;
    return host;
  }
  const dev::DeviceBuffer buf = t.device->alloc(bytes);
  PresentEntry* e = t.present.insert(host, buf.dptr, bytes, buf.handle);
  e->dynamic_ref = 1;
  return buf.dptr;
}

namespace {

void release_mapping(core::Task& t, PresentEntry* e, bool copyback,
                     int async) {
  if (--e->dynamic_ref > 0 || e->structured_ref > 0) return;
  dev::DeviceBuffer buf;
  buf.dptr = reinterpret_cast<void*>(e->dev);
  buf.handle = e->handle;
  const bool device_backed =
      t.device->backend() != sim::BackendKind::kHostShared;
  if (copyback) {
    submit_copy(t, reinterpret_cast<void*>(e->host),
                reinterpret_cast<void*>(e->dev), e->bytes,
                /*to_device=*/false, async, "copyout");
  }
  if (device_backed) {
    if (copyback && async != kSync) {
      // The device block must outlive the queued copy: free it from the
      // same activity queue, right after the copy drains.
      dev::Device* d = t.device;
      dev::StreamOp op;
      op.kind = dev::StreamOp::Kind::kCallback;
      op.label = "free after copyout";
      op.body = [d, buf] { d->free(buf); };
      core::submit_stream_op(t, async, std::move(op));
    } else {
      t.device->free(buf);
    }
  }
  t.present.erase(e);
}

}  // namespace

void data_copyout(core::Task& t, void* host, int async) {
  PresentEntry* e = t.present.find_host(host);
  IMPACC_CHECK_MSG(e != nullptr, "copyout of non-present data");
  release_mapping(t, e, /*copyback=*/true, async);
}

void data_delete(core::Task& t, void* host) {
  PresentEntry* e = t.present.find_host(host);
  IMPACC_CHECK_MSG(e != nullptr, "delete of non-present data");
  release_mapping(t, e, /*copyback=*/false, kSync);
}

void data_update(core::Task& t, const void* host, std::uint64_t bytes,
                 bool to_device, int async) {
  PresentEntry* e = t.present.find_host(host);
  IMPACC_CHECK_MSG(e != nullptr, "update of non-present data");
  const std::uintptr_t off = reinterpret_cast<std::uintptr_t>(host) - e->host;
  if (bytes == 0) bytes = e->bytes - off;
  IMPACC_CHECK_MSG(off + bytes <= e->bytes, "update range exceeds mapping");
  void* dev = reinterpret_cast<void*>(e->dev + off);
  void* h = const_cast<void*>(host);
  if (to_device) {
    submit_copy(t, dev, h, bytes, true, async, "update device");
  } else {
    submit_copy(t, h, dev, bytes, false, async, "update self");
  }
}

}  // namespace impacc::acc
