// Data-environment operations with OpenACC reference counting.
//
// Split from the public API so the logic is testable against a Task
// directly. All functions must run on the owning task's fiber.
#pragma once

#include <cstdint>

#include "core/task.h"

namespace impacc::acc {

/// present_or_copyin. Returns the device pointer.
void* data_copyin(core::Task& t, const void* host, std::uint64_t bytes,
                  int async);

/// present_or_create.
void* data_create(core::Task& t, void* host, std::uint64_t bytes);

/// exit-data copyout (copy back + unmap at refcount zero).
void data_copyout(core::Task& t, void* host, int async);

/// exit-data delete.
void data_delete(core::Task& t, void* host);

/// update device / update self over [host, host+bytes) (bytes 0 = whole
/// mapping; host may point inside a mapping).
void data_update(core::Task& t, const void* host, std::uint64_t bytes,
                 bool to_device, int async);

}  // namespace impacc::acc
