// OpenACC-style runtime API plus the IMPACC directive entry point.
//
// Data clauses follow OpenACC reference-counting semantics
// (present_or_copyin etc.); kernels are expressed as parallel loops with a
// work estimate that feeds the device roofline model. The async argument
// names an activity queue on the task's device; kSync blocks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/directives.h"
#include "sim/costmodel.h"
#include "sim/topology.h"

namespace impacc::acc {

/// Synchronous execution (no async clause).
constexpr int kSync = -2;
/// acc_async_noval: the default async queue.
constexpr int kAsyncNoval = -1;

// --- Data management (OpenACC data clauses) ---------------------------------

/// enter data copyin: map `host` and copy to device (or bump the refcount
/// when already present). Returns the device pointer.
void* copyin(const void* host, std::uint64_t bytes, int async = kSync);

/// enter data create: map without copying.
void* create(void* host, std::uint64_t bytes);

/// exit data copyout: drop a reference; on the last one, copy back and
/// unmap.
void copyout(void* host, int async = kSync);

/// exit data delete: drop a reference without copyback.
void del(void* host);

/// update device(host[0:bytes]) — bytes 0 means the whole mapping.
void update_device(const void* host, std::uint64_t bytes = 0,
                   int async = kSync);

/// update self(host[0:bytes]).
void update_self(void* host, std::uint64_t bytes = 0, int async = kSync);

void* deviceptr(const void* host);
void* hostptr(const void* dev);
bool is_present(const void* host);

/// acc_malloc / acc_free: raw device memory without a host mapping.
void* device_malloc(std::uint64_t bytes);
void device_free(void* dev);

/// acc_memcpy_to_device / acc_memcpy_from_device on raw device pointers.
void memcpy_to_device(void* dev, const void* host, std::uint64_t bytes,
                      int async = kSync);
void memcpy_from_device(void* host, const void* dev, std::uint64_t bytes,
                        int async = kSync);

/// acc_map_data / acc_unmap_data: associate host data with device memory
/// the application allocated itself (no copies, no refcount).
void map_data(void* host, void* dev, std::uint64_t bytes);
void unmap_data(void* host);

/// RAII structured data region (#pragma acc data { ... }): entry actions
/// run as the clauses are chained, exit actions run in reverse order at
/// scope end.
///
///   acc::DataRegion region;
///   region.copy(a, na).copyin(b, nb).copyout(c, nc);
///   ... kernels ...
///   // leaving scope: copyout(c), del(b), copyout(a)
class DataRegion {
 public:
  DataRegion() = default;
  ~DataRegion();
  DataRegion(const DataRegion&) = delete;
  DataRegion& operator=(const DataRegion&) = delete;

  /// copy(...): copyin on entry, copyout on exit.
  DataRegion& copy(void* host, std::uint64_t bytes);
  /// copyin(...): copyin on entry, delete on exit.
  DataRegion& copyin(void* host, std::uint64_t bytes);
  /// copyout(...): create on entry, copyout on exit.
  DataRegion& copyout(void* host, std::uint64_t bytes);
  /// create(...): create on entry, delete on exit.
  DataRegion& create(void* host, std::uint64_t bytes);

 private:
  struct Exit {
    void* host;
    bool copyback;
  };
  std::vector<Exit> exits_;
};

// --- Synchronization ---------------------------------------------------------

/// acc wait(queue): block until the activity queue drains.
void wait(int async);
/// acc wait: all queues of the task's device.
void wait_all();

// --- Compute -----------------------------------------------------------------

/// A parallel/kernels loop: body(i) for i in [0, n). `est` is the kernel's
/// total work (flops + bytes moved) for the roofline cost model. The body
/// must only dereference device pointers (functional mode executes it on
/// the simulated device).
void parallel_loop(const char* name, long n, std::function<void(long)> body,
                   sim::WorkEstimate est, int async = kSync);

/// A whole compute region with an arbitrary body.
void kernel(const char* name, std::function<void()> body,
            sim::WorkEstimate est, int async = kSync);

/// Host-function enqueue (cuStreamAddCallback / clSetEventCallback analog).
void host_callback(std::function<void()> fn, int async);

// --- Device queries -----------------------------------------------------------

/// acc_get_device_type(): the kind of the task's accelerator. The paper's
/// recipe for manual load balancing across heterogeneous tasks.
sim::DeviceKind get_device_type();
/// acc_get_device_num(): node-local device index.
int get_device_num();
/// acc_set_device_num(): the IMPACC runtime fixes the mapping at launch
/// and ignores this call (section 3.2); it logs a warning.
void set_device_num(int num);

// --- IMPACC directive ----------------------------------------------------------

/// #pragma acc mpi ... : attach a hint to the next MPI call.
///   acc::mpi({.send_device = true, .async = 1});
inline void mpi(const core::MpiHint& hint) { core::set_mpi_hint(hint); }

}  // namespace impacc::acc
