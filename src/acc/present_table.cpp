#include "acc/present_table.h"

#include <algorithm>
#include <mutex>

namespace impacc::acc {
namespace detail {

void AddrAvlTree::update(Node* n) {
  n->height = 1 + std::max(node_height(n->left), node_height(n->right));
}

AddrAvlTree::Node* AddrAvlTree::rotate_left(Node* n) {
  Node* r = n->right;
  n->right = r->left;
  r->left = n;
  update(n);
  update(r);
  return r;
}

AddrAvlTree::Node* AddrAvlTree::rotate_right(Node* n) {
  Node* l = n->left;
  n->left = l->right;
  l->right = n;
  update(n);
  update(l);
  return l;
}

AddrAvlTree::Node* AddrAvlTree::rebalance(Node* n) {
  update(n);
  const int balance = node_height(n->left) - node_height(n->right);
  if (balance > 1) {
    if (node_height(n->left->left) < node_height(n->left->right)) {
      n->left = rotate_left(n->left);
    }
    return rotate_right(n);
  }
  if (balance < -1) {
    if (node_height(n->right->right) < node_height(n->right->left)) {
      n->right = rotate_right(n->right);
    }
    return rotate_left(n);
  }
  return n;
}

AddrAvlTree::Node* AddrAvlTree::insert_rec(Node* n, PresentEntry* e) {
  if (n == nullptr) {
    ++size_;
    return new Node{e};
  }
  const std::uintptr_t key = key_of_(e);
  const std::uintptr_t nkey = key_of_(n->entry);
  IMPACC_CHECK_MSG(key != nkey, "duplicate present-table key");
  if (key < nkey) {
    n->left = insert_rec(n->left, e);
  } else {
    n->right = insert_rec(n->right, e);
  }
  return rebalance(n);
}

void AddrAvlTree::insert(PresentEntry* e) { root_ = insert_rec(root_, e); }

AddrAvlTree::Node* AddrAvlTree::take_min(Node* n, Node** min_out) {
  if (n->left == nullptr) {
    *min_out = n;
    return n->right;
  }
  n->left = take_min(n->left, min_out);
  return rebalance(n);
}

AddrAvlTree::Node* AddrAvlTree::erase_rec(Node* n, std::uintptr_t key) {
  IMPACC_CHECK_MSG(n != nullptr, "erase of absent present-table key");
  const std::uintptr_t nkey = key_of_(n->entry);
  if (key < nkey) {
    n->left = erase_rec(n->left, key);
  } else if (key > nkey) {
    n->right = erase_rec(n->right, key);
  } else {
    --size_;
    if (n->left == nullptr || n->right == nullptr) {
      Node* child = n->left != nullptr ? n->left : n->right;
      delete n;
      return child;  // may be nullptr
    }
    Node* successor = nullptr;
    n->right = take_min(n->right, &successor);
    successor->left = n->left;
    successor->right = n->right;
    delete n;
    n = successor;
  }
  return rebalance(n);
}

void AddrAvlTree::erase(const PresentEntry* e) {
  root_ = erase_rec(root_, key_of_(e));
}

PresentEntry* AddrAvlTree::find_containing(std::uintptr_t addr) const {
  const Node* n = root_;
  const Node* candidate = nullptr;  // greatest key <= addr
  while (n != nullptr) {
    if (key_of_(n->entry) <= addr) {
      candidate = n;
      n = n->right;
    } else {
      n = n->left;
    }
  }
  if (candidate == nullptr) return nullptr;
  PresentEntry* e = candidate->entry;
  const std::uintptr_t start = key_of_(e);
  return addr < start + e->bytes ? e : nullptr;
}

PresentEntry* AddrAvlTree::find_first_in(std::uintptr_t lo,
                                         std::uintptr_t hi) const {
  const Node* n = root_;
  const Node* candidate = nullptr;  // smallest key >= lo
  while (n != nullptr) {
    if (key_of_(n->entry) >= lo) {
      candidate = n;
      n = n->left;
    } else {
      n = n->right;
    }
  }
  if (candidate == nullptr) return nullptr;
  return key_of_(candidate->entry) < hi ? candidate->entry : nullptr;
}

PresentEntry* AddrAvlTree::find_exact(std::uintptr_t key) const {
  const Node* n = root_;
  while (n != nullptr) {
    const std::uintptr_t nkey = key_of_(n->entry);
    if (key == nkey) return n->entry;
    n = key < nkey ? n->left : n->right;
  }
  return nullptr;
}

int AddrAvlTree::height() const { return node_height(root_); }

void AddrAvlTree::clear_rec(Node* n) {
  if (n == nullptr) return;
  clear_rec(n->left);
  clear_rec(n->right);
  delete n;
}

void AddrAvlTree::clear() {
  clear_rec(root_);
  root_ = nullptr;
  size_ = 0;
}

std::vector<std::uintptr_t> AddrAvlTree::keys() const {
  std::vector<std::uintptr_t> out;
  out.reserve(size_);
  // Iterative in-order traversal.
  std::vector<const Node*> stack;
  const Node* n = root_;
  while (n != nullptr || !stack.empty()) {
    while (n != nullptr) {
      stack.push_back(n);
      n = n->left;
    }
    n = stack.back();
    stack.pop_back();
    out.push_back(key_of_(n->entry));
    n = n->right;
  }
  return out;
}

bool AddrAvlTree::check_rec(const Node* n, std::uintptr_t* prev,
                            bool* ok) const {
  if (n == nullptr || !*ok) return *ok;
  check_rec(n->left, prev, ok);
  if (!*ok) return false;
  const std::uintptr_t key = key_of_(n->entry);
  if (*prev != 0 && key <= *prev) *ok = false;
  *prev = key;
  const int balance = node_height(n->left) - node_height(n->right);
  if (balance < -1 || balance > 1) *ok = false;
  if (n->height != 1 + std::max(node_height(n->left), node_height(n->right))) {
    *ok = false;
  }
  check_rec(n->right, prev, ok);
  return *ok;
}

bool AddrAvlTree::check_invariants() const {
  bool ok = true;
  std::uintptr_t prev = 0;
  check_rec(root_, &prev, &ok);
  return ok;
}

}  // namespace detail

// --- PresentTable ------------------------------------------------------------

namespace {
std::uintptr_t host_key(const PresentEntry* e) { return e->host; }
std::uintptr_t dev_key(const PresentEntry* e) { return e->dev; }
}  // namespace

PresentTable::PresentTable() : by_host_(&host_key), by_dev_(&dev_key) {}

PresentTable::~PresentTable() {
  for (PresentEntry* e : entries()) delete e;
}

PresentEntry* PresentTable::insert(const void* host, void* dev,
                                   std::uint64_t bytes, std::uint64_t handle) {
  IMPACC_CHECK(bytes > 0);
  const auto h = reinterpret_cast<std::uintptr_t>(host);
  const auto d = reinterpret_cast<std::uintptr_t>(dev);
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Overlap guard: an existing entry overlaps [x, x+bytes) iff it contains
  // x or starts inside (x, x+bytes).
  IMPACC_CHECK_MSG(by_host_.find_containing(h) == nullptr &&
                       by_host_.find_first_in(h, h + bytes) == nullptr,
                   "overlapping host mapping in present table");
  IMPACC_CHECK_MSG(by_dev_.find_containing(d) == nullptr &&
                       by_dev_.find_first_in(d, d + bytes) == nullptr,
                   "overlapping device mapping in present table");
  auto* e = new PresentEntry;
  e->host = h;
  e->dev = d;
  e->bytes = bytes;
  e->handle = handle;
  by_host_.insert(e);
  by_dev_.insert(e);
  invalidate_memo();
  return e;
}

void PresentTable::erase(PresentEntry* e) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  by_host_.erase(e);
  by_dev_.erase(e);
  // Clear the memos before the entry dies: concurrent lookups are
  // excluded by the writer lock, so none can still validate `e`.
  invalidate_memo();
  delete e;
}

void PresentTable::invalidate_memo() {
  for (MemoShard& s : memo_) {
    s.host.store(nullptr, std::memory_order_relaxed);
    s.dev.store(nullptr, std::memory_order_relaxed);
  }
  cache_.invalidations.fetch_add(1, std::memory_order_relaxed);
}

PresentEntry* PresentTable::find_host(const void* p) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::atomic<PresentEntry*>& memo = memo_[memo_shard(addr)].host;
  PresentEntry* m = memo.load(std::memory_order_acquire);
  if (m != nullptr && addr >= m->host && addr < m->host + m->bytes) {
    cache_.host_hits.fetch_add(1, std::memory_order_relaxed);
    return m;
  }
  cache_.host_misses.fetch_add(1, std::memory_order_relaxed);
  PresentEntry* e = by_host_.find_containing(addr);
  if (e != nullptr) memo.store(e, std::memory_order_release);
  return e;
}

PresentEntry* PresentTable::find_dev(const void* p) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::atomic<PresentEntry*>& memo = memo_[memo_shard(addr)].dev;
  PresentEntry* m = memo.load(std::memory_order_acquire);
  if (m != nullptr && addr >= m->dev && addr < m->dev + m->bytes) {
    cache_.dev_hits.fetch_add(1, std::memory_order_relaxed);
    return m;
  }
  cache_.dev_misses.fetch_add(1, std::memory_order_relaxed);
  PresentEntry* e = by_dev_.find_containing(addr);
  if (e != nullptr) memo.store(e, std::memory_order_release);
  return e;
}

PresentTable::CacheStats PresentTable::cache_stats() const {
  CacheStats out;
  out.host_hits = cache_.host_hits.load(std::memory_order_relaxed);
  out.host_misses = cache_.host_misses.load(std::memory_order_relaxed);
  out.dev_hits = cache_.dev_hits.load(std::memory_order_relaxed);
  out.dev_misses = cache_.dev_misses.load(std::memory_order_relaxed);
  out.invalidations = cache_.invalidations.load(std::memory_order_relaxed);
  return out;
}

void* PresentTable::deviceptr(const void* p) const {
  const PresentEntry* e = find_host(p);
  if (e == nullptr) return nullptr;
  const std::uintptr_t off = reinterpret_cast<std::uintptr_t>(p) - e->host;
  return reinterpret_cast<void*>(e->dev + off);
}

void* PresentTable::hostptr(const void* p) const {
  const PresentEntry* e = find_dev(p);
  if (e == nullptr) return nullptr;
  const std::uintptr_t off = reinterpret_cast<std::uintptr_t>(p) - e->dev;
  return reinterpret_cast<void*>(e->host + off);
}

std::vector<PresentEntry*> PresentTable::entries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<PresentEntry*> out;
  out.reserve(by_host_.size());
  for (std::uintptr_t key : by_host_.keys()) {
    out.push_back(by_host_.find_exact(key));
  }
  return out;
}

}  // namespace impacc::acc
