// Code generation: directives + captured constructs -> runtime API calls.
#pragma once

#include <string>

#include "trans/ast.h"

namespace impacc::trans {

struct TranslateOptions {
  // Work-estimate defaults for translated loops (the source carries no
  // cost model; a real compiler would derive one from the loop body).
  double flops_per_iter = 10.0;
  double bytes_per_iter = 16.0;
  std::string api_ns = "impacc";  // namespace prefix for generated calls
  // Run impacc-lint over the source first and refuse to lower sources
  // with error-level diagnostics (lint warnings are passed through on
  // TranslateResult::warnings).
  bool lint = false;
};

/// A captured canonical for loop:
///   for (<decl> <var> = <first>; <var> < <bound>; <var>++) <body>
struct ForLoop {
  std::string var;
  std::string first;
  std::string bound;
  std::string body;  // statement or compound statement text
};

/// Data-clause lowering: calls made on entry (copyin/create) and on exit
/// (copyout/delete) of a region or around a compute construct.
std::string gen_data_enter(const Directive& d, const TranslateOptions& opt);
std::string gen_data_exit(const Directive& d, const TranslateOptions& opt);

/// update device(...) / self(...).
std::string gen_update(const Directive& d, const TranslateOptions& opt);

/// wait [(n)].
std::string gen_wait(const Directive& d, const TranslateOptions& opt);

/// #pragma acc mpi ... ; `recv_buf_expr` is the receive-buffer argument of
/// the following MPI call (needed for recvbuf(readonly) aliasing).
std::string gen_mpi_hint(const Directive& d, const std::string& recv_buf_expr,
                         const TranslateOptions& opt);

/// parallel/kernels loop + captured for loop.
std::string gen_parallel_loop(const Directive& d, const ForLoop& loop,
                              const TranslateOptions& opt);

/// Rewrite one `MPI_Xxx(args)` call expression into the impacc::mpi API.
/// Returns empty and sets `error` when the routine is unsupported.
std::string rewrite_mpi_call(const std::string& name, const std::string& args,
                             const TranslateOptions& opt, std::string* error);

/// Replace MPI constant identifiers (datatypes, ops, MPI_COMM_WORLD, ...)
/// inside an argument expression.
std::string map_mpi_constants(const std::string& expr,
                              const TranslateOptions& opt);

/// async clause value as generated code (kSync when absent).
std::string async_arg(const Directive& d, const TranslateOptions& opt);

}  // namespace impacc::trans
