// Tokenizer for OpenACC/IMPACC pragma lines and lightweight C scanning.
//
// The IMPACC compiler is a source-to-source translator built on OpenARC;
// this module reimplements the directive surface: it tokenizes pragma
// text (identifiers, integers, punctuation) and provides the helpers the
// translator needs to slice C code (matching parentheses/braces, splitting
// top-level commas in argument lists).
#pragma once

#include <string>
#include <vector>

namespace impacc::trans {

enum class TokKind : int {
  kIdent = 0,
  kNumber,
  kPunct,  // single punctuation char: ( ) [ ] , : | etc.
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;

  bool is(const char* s) const { return text == s; }
};

/// Tokenize a pragma line (after "#pragma").
std::vector<Token> tokenize(const std::string& text);

/// Position of the matching closing delimiter for the opener at `open_pos`
/// in `s` (handles nesting, C strings and char literals). Returns
/// std::string::npos if unbalanced.
std::size_t match_delim(const std::string& s, std::size_t open_pos);

/// Split a delimiter-balanced argument string on top-level commas,
/// trimming whitespace.
std::vector<std::string> split_args(const std::string& s);

/// Trim leading/trailing whitespace.
std::string trim(const std::string& s);

}  // namespace impacc::trans
