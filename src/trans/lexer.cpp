#include "trans/lexer.h"

#include <cctype>

namespace impacc::trans {

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      out.push_back({TokKind::kIdent, text.substr(i, j - i)});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '.')) {
        ++j;
      }
      out.push_back({TokKind::kNumber, text.substr(i, j - i)});
      i = j;
      continue;
    }
    out.push_back({TokKind::kPunct, std::string(1, c)});
    ++i;
  }
  out.push_back({TokKind::kEnd, ""});
  return out;
}

std::size_t match_delim(const std::string& s, std::size_t open_pos) {
  if (open_pos >= s.size()) return std::string::npos;
  const char open = s[open_pos];
  char close = 0;
  switch (open) {
    case '(': close = ')'; break;
    case '[': close = ']'; break;
    case '{': close = '}'; break;
    default: return std::string::npos;
  }
  int depth = 0;
  bool in_str = false;
  bool in_chr = false;
  for (std::size_t i = open_pos; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (in_chr) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_chr = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '\'') {
      in_chr = true;
    } else if (c == open) {
      ++depth;
    } else if (c == close) {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::vector<std::string> split_args(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"' || c == '\'') {
      const char q = c;
      ++i;
      while (i < s.size() && s[i] != q) {
        if (s[i] == '\\') ++i;
        ++i;
      }
    } else if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == ',' && depth == 0) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  const std::string last = trim(s.substr(start));
  if (!last.empty() || !out.empty()) out.push_back(last);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

}  // namespace impacc::trans
