#include "trans/translator.h"

#include <cctype>

#include "trans/analysis/lint.h"
#include "trans/lexer.h"
#include "trans/pragma_parser.h"

namespace impacc::trans {

namespace {

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source with line tracking.
struct Scanner {
  const std::string& s;
  std::size_t pos = 0;
  int line = 1;

  bool eof() const { return pos >= s.size(); }
  char peek() const { return pos < s.size() ? s[pos] : '\0'; }

  char take() {
    const char c = s[pos++];
    if (c == '\n') ++line;
    return c;
  }

  void advance_to(std::size_t p) {
    while (pos < p && !eof()) take();
  }

  /// Skip whitespace and comments; returns skipped text (preserved in the
  /// output by the caller).
  std::string skip_trivia() {
    std::string out;
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        out += take();
      } else if (c == '/' && pos + 1 < s.size() && s[pos + 1] == '/') {
        while (!eof() && peek() != '\n') out += take();
      } else if (c == '/' && pos + 1 < s.size() && s[pos + 1] == '*') {
        out += take();
        out += take();
        while (!eof() && !(peek() == '*' && pos + 1 < s.size() &&
                           s[pos + 1] == '/')) {
          out += take();
        }
        if (!eof()) {
          out += take();
          out += take();
        }
      } else {
        break;
      }
    }
    return out;
  }
};

struct DataRegion {
  int depth = 0;          // brace depth the region's '{' opened
  std::string exit_code;  // emitted before the matching '}'
};

struct Translator {
  Scanner sc;
  const TranslateOptions& opt;
  TranslateResult result;
  std::string out;
  int depth = 0;
  std::vector<DataRegion> regions;

  Translator(const std::string& src, const TranslateOptions& o)
      : sc{src}, opt(o) {}

  void error(int line, const std::string& msg) {
    result.errors.push_back("line " + std::to_string(line) + ": " + msg);
  }

  /// Read a full pragma line including backslash continuations.
  std::string read_line_cont() {
    std::string text;
    while (!sc.eof()) {
      const char c = sc.take();
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          text += ' ';
          continue;
        }
        break;
      }
      text += c;
    }
    return text;
  }

  /// Capture a balanced (...) group; cursor must be at '('. Returns inner
  /// text without the parens.
  bool capture_parens(std::string* inner, int line) {
    const std::size_t close = match_delim(sc.s, sc.pos);
    if (close == std::string::npos) {
      error(line, "unbalanced parentheses");
      return false;
    }
    *inner = sc.s.substr(sc.pos + 1, close - sc.pos - 1);
    sc.advance_to(close + 1);
    return true;
  }

  /// Capture the next statement (up to and including the top-level ';')
  /// or a balanced compound statement.
  bool capture_statement(std::string* stmt, int line) {
    out += sc.skip_trivia();
    if (sc.peek() == '{') {
      const std::size_t close = match_delim(sc.s, sc.pos);
      if (close == std::string::npos) {
        error(line, "unbalanced braces");
        return false;
      }
      *stmt = sc.s.substr(sc.pos, close - sc.pos + 1);
      sc.advance_to(close + 1);
      return true;
    }
    std::string text;
    int pdepth = 0;
    while (!sc.eof()) {
      const char c = sc.take();
      text += c;
      if (c == '(' || c == '[') ++pdepth;
      if (c == ')' || c == ']') --pdepth;
      if (c == ';' && pdepth == 0) break;
    }
    *stmt = text;
    return true;
  }

  /// Parse a canonical for loop at the cursor.
  bool capture_for_loop(ForLoop* loop, int line) {
    out += sc.skip_trivia();
    if (sc.s.compare(sc.pos, 3, "for") != 0) {
      error(line, "expected a for loop after the compute construct");
      return false;
    }
    sc.advance_to(sc.pos + 3);
    sc.skip_trivia();  // spacing between `for` and '(' is not preserved
    if (sc.peek() != '(') {
      error(line, "expected '(' after for");
      return false;
    }
    std::string header;
    if (!capture_parens(&header, line)) return false;

    // init; cond; inc
    const std::vector<std::string> parts = [&header] {
      std::vector<std::string> p;
      int d = 0;
      std::size_t start = 0;
      for (std::size_t i = 0; i < header.size(); ++i) {
        const char c = header[i];
        if (c == '(' || c == '[') ++d;
        if (c == ')' || c == ']') --d;
        if (c == ';' && d == 0) {
          p.push_back(header.substr(start, i - start));
          start = i + 1;
        }
      }
      p.push_back(header.substr(start));
      return p;
    }();
    if (parts.size() != 3) {
      error(line, "for loop header is not canonical (init; cond; inc)");
      return false;
    }
    // init: [type] var = first
    const std::size_t eq = parts[0].find('=');
    if (eq == std::string::npos) {
      error(line, "for loop init must assign the induction variable");
      return false;
    }
    std::string lhs = trim(parts[0].substr(0, eq));
    const std::size_t last_space = lhs.find_last_of(" \t*");
    loop->var = last_space == std::string::npos ? lhs
                                                : trim(lhs.substr(last_space + 1));
    loop->first = trim(parts[0].substr(eq + 1));
    // cond: var < bound  (or <=)
    const std::string cond = trim(parts[1]);
    const std::size_t lt = cond.find('<');
    if (lt == std::string::npos ||
        trim(cond.substr(0, lt)) != loop->var) {
      error(line, "for loop condition must be '<var> < bound'");
      return false;
    }
    const bool le = lt + 1 < cond.size() && cond[lt + 1] == '=';
    std::string bound = trim(cond.substr(lt + (le ? 2 : 1)));
    loop->bound = le ? "(" + bound + ") + 1" : bound;

    // body
    std::string body;
    if (!capture_statement(&body, line)) return false;
    loop->body = body;
    return true;
  }

  /// Handle one parsed acc directive.
  void dispatch(const Directive& d) {
    ++result.directives_translated;
    switch (d.kind) {
      case DirectiveKind::kEnterData:
        out += gen_data_enter(d, opt);
        break;
      case DirectiveKind::kExitData:
        out += gen_data_exit(d, opt);
        break;
      case DirectiveKind::kUpdate:
        out += gen_update(d, opt);
        break;
      case DirectiveKind::kWait:
        out += gen_wait(d, opt);
        break;
      case DirectiveKind::kData: {
        out += sc.skip_trivia();
        if (sc.peek() != '{') {
          error(d.line, "expected '{' after #pragma acc data");
          return;
        }
        sc.take();
        ++depth;
        out += "{ " + gen_data_enter(d, opt);
        regions.push_back({depth, gen_data_exit(d, opt)});
        break;
      }
      case DirectiveKind::kHostData: {
        // host_data use_device(x, y): inside the region, x and y name the
        // DEVICE copies. Lowered by shadowing: temporaries pick up the
        // device pointers in the outer scope, inner declarations shadow
        // the host variables. The region closes with an extra brace.
        out += sc.skip_trivia();
        if (sc.peek() != '{') {
          error(d.line, "expected '{' after #pragma acc host_data");
          return;
        }
        sc.take();
        const Clause* ud = d.find("use_device");
        std::string pre = "{ ";
        std::string shadow;
        if (ud != nullptr) {
          for (const auto& sa : ud->subarrays) {
            pre += "auto __impacc_hd_" + sa.var + " = static_cast<decltype(" +
                   sa.var + ")>(" + opt.api_ns + "::acc::deviceptr(" +
                   sa.var + ")); ";
            shadow += "auto " + sa.var + " = __impacc_hd_" + sa.var + "; ";
          }
        }
        out += pre + "{ " + shadow;
        ++depth;  // the user's brace (now the inner one)
        regions.push_back({depth, "} "});  // close the extra outer brace
        break;
      }
      case DirectiveKind::kParallelLoop: {
        ForLoop loop;
        if (!capture_for_loop(&loop, d.line)) return;
        out += gen_parallel_loop(d, loop, opt);
        break;
      }
      case DirectiveKind::kMpi: {
        std::string stmt;
        if (!capture_statement(&stmt, d.line)) return;
        // Locate the MPI call inside the statement.
        const std::size_t mpi = stmt.find("MPI_");
        if (mpi == std::string::npos) {
          error(d.line, "#pragma acc mpi must precede an MPI call");
          return;
        }
        std::size_t ne = mpi;
        while (ne < stmt.size() && word_char(stmt[ne])) ++ne;
        const std::string name = stmt.substr(mpi, ne - mpi);
        const std::size_t open = stmt.find('(', ne);
        if (open == std::string::npos) {
          error(d.line, "malformed MPI call after #pragma acc mpi");
          return;
        }
        const std::size_t close = match_delim(stmt, open);
        const std::string args = stmt.substr(open + 1, close - open - 1);
        std::string recv_buf;
        const Clause* rb = d.find("recvbuf");
        if (rb != nullptr) {
          const auto parts = split_args(args);
          if (!parts.empty()) recv_buf = parts[0];
        }
        out += gen_mpi_hint(d, recv_buf, opt);
        std::string err;
        const std::string call = rewrite_mpi_call(name, args, opt, &err);
        if (!err.empty()) {
          error(d.line, err);
          return;
        }
        ++result.mpi_calls_translated;
        out += stmt.substr(0, mpi) + call + stmt.substr(close + 1);
        break;
      }
      case DirectiveKind::kUnknown:
        break;
    }
  }

  /// Rewrite an MPI_* call found in ordinary code; cursor sits at 'M'.
  void plain_mpi_call() {
    const int line = sc.line;
    std::size_t ne = sc.pos;
    while (ne < sc.s.size() && word_char(sc.s[ne])) ++ne;
    const std::string name = sc.s.substr(sc.pos, ne - sc.pos);
    // Constants (MPI_COMM_WORLD etc.) are handled by map_mpi_constants.
    std::size_t after = ne;
    while (after < sc.s.size() &&
           std::isspace(static_cast<unsigned char>(sc.s[after]))) {
      ++after;
    }
    if (after >= sc.s.size() || sc.s[after] != '(') {
      out += map_mpi_constants(name, opt);
      sc.advance_to(ne);
      return;
    }
    const std::size_t close = match_delim(sc.s, after);
    if (close == std::string::npos) {
      error(line, "unbalanced MPI call");
      out += name;
      sc.advance_to(ne);
      return;
    }
    const std::string args = sc.s.substr(after + 1, close - after - 1);
    std::string err;
    const std::string call = rewrite_mpi_call(name, args, opt, &err);
    if (!err.empty()) {
      error(line, err);
      sc.advance_to(close + 1);
      return;
    }
    ++result.mpi_calls_translated;
    out += call;
    sc.advance_to(close + 1);
  }

  TranslateResult run() {
    bool at_line_start = true;
    while (!sc.eof()) {
      const char c = sc.peek();
      // Pragma lines.
      if (at_line_start) {
        std::size_t p = sc.pos;
        while (p < sc.s.size() &&
               (sc.s[p] == ' ' || sc.s[p] == '\t')) {
          ++p;
        }
        if (p < sc.s.size() && sc.s[p] == '#') {
          const int line = sc.line;
          std::string ws = sc.s.substr(sc.pos, p - sc.pos);
          sc.advance_to(p);
          const std::string full = read_line_cont();
          const std::string after_hash = trim(full.substr(1));
          if (after_hash.rfind("pragma", 0) == 0) {
            std::string err;
            auto d = parse_pragma(trim(after_hash.substr(6)), line, &err);
            if (d.has_value()) {
              out += ws;
              dispatch(*d);
              out += "\n";
              at_line_start = true;
              continue;
            }
            if (!err.empty()) {
              error(line, err);
              at_line_start = true;
              continue;
            }
          }
          out += ws + full + "\n";  // non-acc preprocessor line
          at_line_start = true;
          continue;
        }
      }
      // Comments and literals: copy verbatim.
      if (c == '/' && sc.pos + 1 < sc.s.size() &&
          (sc.s[sc.pos + 1] == '/' || sc.s[sc.pos + 1] == '*')) {
        out += sc.skip_trivia();
        at_line_start = !out.empty() && out.back() == '\n';
        continue;
      }
      if (c == '"' || c == '\'') {
        const char q = sc.take();
        out += q;
        while (!sc.eof()) {
          const char ch = sc.take();
          out += ch;
          if (ch == '\\' && !sc.eof()) {
            out += sc.take();
            continue;
          }
          if (ch == q) break;
        }
        at_line_start = false;
        continue;
      }
      // MPI identifiers.
      if (c == 'M' && sc.s.compare(sc.pos, 4, "MPI_") == 0 &&
          (sc.pos == 0 || !word_char(sc.s[sc.pos - 1]))) {
        plain_mpi_call();
        at_line_start = false;
        continue;
      }
      // Brace tracking for data regions.
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (!regions.empty() && regions.back().depth == depth) {
          out += regions.back().exit_code;
          regions.pop_back();
        }
        --depth;
      }
      out += sc.take();
      at_line_start = (c == '\n');
    }
    if (!regions.empty()) {
      error(sc.line, "unclosed #pragma acc data region");
    }
    result.ok = result.errors.empty();
    result.output = std::move(out);
    return std::move(result);
  }
};

}  // namespace

TranslateResult translate_source(const std::string& source,
                                 const TranslateOptions& options) {
  TranslateResult lint_carry;
  if (options.lint) {
    const auto lint = analysis::lint_source(source);
    for (const auto& d : lint.diagnostics) {
      const std::string text = "line " + std::to_string(d.line) + ": [" +
                               d.code + "] " + d.message;
      if (d.severity == analysis::Severity::kError) {
        lint_carry.errors.push_back(text);
      } else {
        lint_carry.warnings.push_back(text);
      }
    }
    if (lint.has_errors()) {
      // Refuse to lower a source the verifier diagnosed as broken.
      return lint_carry;
    }
  }
  Translator t(source, options);
  TranslateResult result = t.run();
  result.warnings.insert(result.warnings.begin(),
                         lint_carry.warnings.begin(),
                         lint_carry.warnings.end());
  return result;
}

}  // namespace impacc::trans
