// Directive AST for the translator.
#pragma once

#include <string>
#include <vector>

namespace impacc::trans {

enum class DirectiveKind : int {
  kParallelLoop = 0,  // parallel loop / kernels loop / parallel / kernels
  kData,              // structured data region
  kEnterData,
  kExitData,
  kUpdate,
  kWait,
  kHostData,  // host_data use_device(...): device addresses in host code
  kMpi,  // the IMPACC extension: #pragma acc mpi (section 3.5)
  kUnknown,
};

/// One dimension of a subarray reference: [first:count].
struct SubArrayDim {
  std::string first;  // expression text, may be empty
  std::string count;  // expression text, may be empty
};

/// A subarray reference from a data clause: var[first:count] or a
/// multi-dimensional bounded form var[f0:c0][f1:c1]... A bare `var` has
/// first/count empty (whole object via sizeof) and no dims. For
/// multi-dimensional references, first/count hold the outermost
/// dimension (back-compat with 1-D consumers) and `dims` holds every
/// dimension in source order.
struct SubArray {
  std::string var;
  std::string first;  // outermost dimension, may be empty
  std::string count;  // outermost dimension, may be empty
  std::vector<SubArrayDim> dims;
};

/// One clause: name plus raw argument expressions (and parsed subarrays
/// for data-style clauses).
struct Clause {
  std::string name;
  std::vector<std::string> args;       // raw top-level args
  std::vector<SubArray> subarrays;     // for copyin/copyout/create/...
};

struct Directive {
  DirectiveKind kind = DirectiveKind::kUnknown;
  std::vector<Clause> clauses;
  int line = 0;  // 1-based source line of the pragma

  const Clause* find(const std::string& name) const {
    for (const auto& c : clauses) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
};

}  // namespace impacc::trans
