// Parser for `#pragma acc ...` directive lines.
#pragma once

#include <optional>
#include <string>

#include "trans/ast.h"

namespace impacc::trans {

/// Parse the text of one pragma line (the part after `#pragma`). Returns
/// nullopt for non-acc pragmas. Aborts translation (returns kUnknown) on
/// malformed acc directives, with `error` describing the problem.
std::optional<Directive> parse_pragma(const std::string& after_pragma,
                                      int line, std::string* error);

}  // namespace impacc::trans
