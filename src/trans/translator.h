// Whole-source directive translator.
//
// Reimplements the IMPACC compiler's directive surface as a
// source-to-source pass: `#pragma acc` directives (including the new
// `acc mpi` extension) are lowered to impacc runtime calls, canonical
// parallel loops become acc::parallel_loop lambdas over device pointers,
// and MPI_* calls/constants are rewritten to the threaded-MPI API. The
// kernel-code generation to CUDA/OpenCL that OpenARC performs is out of
// scope here, exactly as it is in the paper (section 3.1).
#pragma once

#include <string>
#include <vector>

#include "trans/codegen.h"

namespace impacc::trans {

struct TranslateResult {
  bool ok = false;
  std::string output;
  std::vector<std::string> errors;    // "line N: message"
  std::vector<std::string> warnings;  // lint warnings (with options.lint)
  int directives_translated = 0;
  int mpi_calls_translated = 0;
};

/// Translate a C-like MPI+OpenACC source into impacc runtime calls.
TranslateResult translate_source(const std::string& source,
                                 const TranslateOptions& options = {});

}  // namespace impacc::trans
