#include "trans/codegen.h"

#include <cctype>
#include <map>

#include "trans/lexer.h"

namespace impacc::trans {

namespace {

/// Pointer expression and byte count for a subarray reference.
std::string sa_ptr(const SubArray& sa) {
  if (sa.first.empty() || sa.first == "0") return sa.var;
  return "(" + sa.var + ") + (" + sa.first + ")";
}

std::string sa_bytes(const SubArray& sa) {
  if (sa.count.empty()) return "sizeof(" + sa.var + ")";
  return "(" + sa.count + ") * sizeof(*(" + sa.var + "))";
}

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Whole-word identifier replacement.
std::string replace_ident(const std::string& s, const std::string& from,
                          const std::string& to) {
  std::string out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (s.compare(i, from.size(), from) == 0 &&
        (i == 0 || !word_char(s[i - 1])) &&
        (i + from.size() >= s.size() || !word_char(s[i + from.size()]))) {
      out += to;
      i += from.size();
    } else {
      out += s[i++];
    }
  }
  return out;
}

}  // namespace

std::string map_mpi_constants(const std::string& expr,
                              const TranslateOptions& opt) {
  static const std::map<std::string, std::string> kMap = {
      {"MPI_COMM_WORLD", "@mpi::world()"},
      {"MPI_BYTE", "@mpi::Datatype::kByte"},
      {"MPI_CHAR", "@mpi::Datatype::kChar"},
      {"MPI_INT", "@mpi::Datatype::kInt"},
      {"MPI_LONG", "@mpi::Datatype::kLong"},
      {"MPI_UINT64_T", "@mpi::Datatype::kUint64"},
      {"MPI_FLOAT", "@mpi::Datatype::kFloat"},
      {"MPI_DOUBLE", "@mpi::Datatype::kDouble"},
      {"MPI_SUM", "@mpi::Op::kSum"},
      {"MPI_PROD", "@mpi::Op::kProd"},
      {"MPI_MAX", "@mpi::Op::kMax"},
      {"MPI_MIN", "@mpi::Op::kMin"},
      {"MPI_LAND", "@mpi::Op::kLand"},
      {"MPI_LOR", "@mpi::Op::kLor"},
      {"MPI_BAND", "@mpi::Op::kBand"},
      {"MPI_BOR", "@mpi::Op::kBor"},
      {"MPI_ANY_SOURCE", "@mpi::kAnySource"},
      {"MPI_ANY_TAG", "@mpi::kAnyTag"},
      {"MPI_STATUS_IGNORE", "nullptr"},
      {"MPI_STATUSES_IGNORE", "nullptr"},
  };
  std::string out = expr;
  for (const auto& [from, to] : kMap) {
    std::string t = to;
    const std::size_t at = t.find('@');
    if (at != std::string::npos) t.replace(at, 1, opt.api_ns + "::");
    out = replace_ident(out, from, t);
  }
  return out;
}

std::string async_arg(const Directive& d, const TranslateOptions& opt) {
  const Clause* c = d.find("async");
  if (c == nullptr) return opt.api_ns + "::acc::kSync";
  if (c->args.empty()) return opt.api_ns + "::acc::kAsyncNoval";
  return c->args[0];
}

std::string gen_data_enter(const Directive& d, const TranslateOptions& opt) {
  std::string out;
  const std::string a = async_arg(d, opt);
  for (const auto& c : d.clauses) {
    for (const auto& sa : c.subarrays) {
      if (c.name == "copyin" || c.name == "copy") {
        out += opt.api_ns + "::acc::copyin(" + sa_ptr(sa) + ", " +
               sa_bytes(sa) + ", " + a + "); ";
      } else if (c.name == "create" || c.name == "copyout") {
        // copyout allocates on entry, copies back on exit.
        out += opt.api_ns + "::acc::create(" + sa_ptr(sa) + ", " +
               sa_bytes(sa) + "); ";
      }
    }
  }
  return out;
}

std::string gen_data_exit(const Directive& d, const TranslateOptions& opt) {
  std::string out;
  const std::string a = async_arg(d, opt);
  for (const auto& c : d.clauses) {
    for (const auto& sa : c.subarrays) {
      if (c.name == "copyout" || c.name == "copy") {
        out += opt.api_ns + "::acc::copyout(" + sa_ptr(sa) + ", " + a + "); ";
      } else if (c.name == "copyin" || c.name == "create" ||
                 c.name == "delete") {
        out += opt.api_ns + "::acc::del(" + sa_ptr(sa) + "); ";
      }
    }
  }
  return out;
}

std::string gen_update(const Directive& d, const TranslateOptions& opt) {
  std::string out;
  const std::string a = async_arg(d, opt);
  for (const auto& c : d.clauses) {
    for (const auto& sa : c.subarrays) {
      if (c.name == "device") {
        out += opt.api_ns + "::acc::update_device(" + sa_ptr(sa) + ", " +
               sa_bytes(sa) + ", " + a + "); ";
      } else if (c.name == "self" || c.name == "host") {
        out += opt.api_ns + "::acc::update_self(" + sa_ptr(sa) + ", " +
               sa_bytes(sa) + ", " + a + "); ";
      }
    }
  }
  return out;
}

std::string gen_wait(const Directive& d, const TranslateOptions& opt) {
  const Clause* c = d.find("wait");
  if (c != nullptr && !c->args.empty()) {
    return opt.api_ns + "::acc::wait(" + c->args[0] + "); ";
  }
  return opt.api_ns + "::acc::wait_all(); ";
}

std::string gen_mpi_hint(const Directive& d, const std::string& recv_buf_expr,
                         const TranslateOptions& opt) {
  // Lower to designated initializers on core::MpiHint (section 3.5).
  std::string fields;
  auto has_flag = [](const Clause* c, const char* flag) {
    if (c == nullptr) return false;
    for (const auto& a : c->args) {
      if (a == flag) return true;
    }
    return false;
  };
  const Clause* sb = d.find("sendbuf");
  const Clause* rb = d.find("recvbuf");
  if (has_flag(sb, "device")) fields += ".send_device = true, ";
  if (has_flag(sb, "readonly")) fields += ".send_readonly = true, ";
  if (has_flag(rb, "device")) fields += ".recv_device = true, ";
  if (has_flag(rb, "readonly")) {
    fields += ".recv_readonly = true, ";
    if (!has_flag(rb, "device") && !recv_buf_expr.empty()) {
      fields += ".recv_ptr_addr = reinterpret_cast<void**>(&(" +
                recv_buf_expr + ")), ";
    }
  }
  const Clause* as = d.find("async");
  if (as != nullptr) {
    fields += ".async = " +
              (as->args.empty() ? opt.api_ns + "::acc::kAsyncNoval"
                                : as->args[0]) +
              ", ";
  }
  if (!fields.empty()) fields.erase(fields.size() - 2);  // trailing ", "
  return opt.api_ns + "::acc::mpi({" + fields + "}); ";
}

std::string gen_parallel_loop(const Directive& d, const ForLoop& loop,
                              const TranslateOptions& opt) {
  const std::string n =
      "(" + loop.bound + ") - (" + (loop.first.empty() ? "0" : loop.first) +
      ")";
  std::string out = "{ ";
  out += gen_data_enter(d, opt);

  // Init-capture every data-clause variable as its device pointer so the
  // loop body (copied verbatim) dereferences device memory — the
  // translation a real OpenACC compiler performs on kernel parameters.
  // reduction(op:var) variables are captured by reference instead: the
  // body accumulates into them directly (the simulated device executes
  // the loop sequentially, so no partial-result combination is needed).
  std::string captures = "=";
  for (const auto& c : d.clauses) {
    if (c.name == "reduction") {
      for (const auto& arg : c.args) {
        const std::size_t colon = arg.find(':');
        if (colon == std::string::npos) continue;
        captures += ", &" + trim(arg.substr(colon + 1));
      }
      continue;
    }
    if (c.name != "copyin" && c.name != "copyout" && c.name != "copy" &&
        c.name != "create" && c.name != "present") {
      continue;
    }
    for (const auto& sa : c.subarrays) {
      captures += ", " + sa.var + " = static_cast<decltype(" + sa.var +
                  ")>(" + opt.api_ns + "::acc::deviceptr(" + sa.var + "))";
    }
  }

  char est[160];
  std::snprintf(est, sizeof(est),
                "%s::sim::WorkEstimate{(double)(%s) * %g, (double)(%s) * %g}",
                opt.api_ns.c_str(), n.c_str(), opt.flops_per_iter, n.c_str(),
                opt.bytes_per_iter);

  out += opt.api_ns + "::acc::parallel_loop(\"acc_kernel_L" +
         std::to_string(d.line) + "\", " + n + ", [" + captures + "](long " +
         loop.var + "__it) { long " + loop.var + " = (" +
         (loop.first.empty() ? "0" : loop.first) + ") + " + loop.var +
         "__it; (void)" + loop.var + "; " + loop.body + " }, " + est + ", " +
         async_arg(d, opt) + "); ";
  out += gen_data_exit(d, opt);
  out += "}";
  return out;
}

std::string rewrite_mpi_call(const std::string& name, const std::string& args,
                             const TranslateOptions& opt, std::string* error) {
  const std::vector<std::string> raw = split_args(args);
  std::vector<std::string> a;
  a.reserve(raw.size());
  for (const auto& r : raw) a.push_back(map_mpi_constants(r, opt));
  const std::string ns = opt.api_ns + "::mpi::";

  auto need = [&](std::size_t n) {
    if (a.size() != n) {
      *error = name + ": expected " + std::to_string(n) + " arguments";
      return false;
    }
    return true;
  };
  auto strip_addr = [](const std::string& s) {
    const std::string t = trim(s);
    return t.size() > 1 && t[0] == '&' ? trim(t.substr(1)) : t;
  };
  auto join = [](const std::vector<std::string>& v) {
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) out += ", ";
      out += v[i];
    }
    return out;
  };

  if (name == "MPI_Init" || name == "MPI_Finalize") {
    return "/* " + name + " handled by impacc::launch */";
  }
  if (name == "MPI_Comm_rank" || name == "MPI_Comm_size") {
    if (!need(2)) return "";
    const std::string fn =
        name == "MPI_Comm_rank" ? "comm_rank" : "comm_size";
    return strip_addr(a[1]) + " = " + ns + fn + "(" + a[0] + ")";
  }
  if (name == "MPI_Send") {
    if (!need(6)) return "";
    return ns + "send(" + join(a) + ")";
  }
  if (name == "MPI_Bcast") {
    if (!need(5)) return "";
    return ns + "bcast(" + join(a) + ")";
  }
  if (name == "MPI_Recv") {
    if (a.size() != 7 && a.size() != 6) {
      *error = "MPI_Recv: expected 6 or 7 arguments";
      return "";
    }
    return ns + "recv(" + join(a) + ")";
  }
  if (name == "MPI_Isend" || name == "MPI_Irecv") {
    if (!need(7)) return "";
    const std::string req = strip_addr(a.back());
    a.pop_back();
    const std::string fn = name == "MPI_Isend" ? "isend" : "irecv";
    return req + " = " + ns + fn + "(" + join(a) + ")";
  }
  if (name == "MPI_Wait") {
    if (a.size() != 2 && a.size() != 1) {
      *error = "MPI_Wait: expected 1 or 2 arguments";
      return "";
    }
    std::string out = ns + "wait(" + strip_addr(a[0]);
    if (a.size() == 2 && a[1] != "nullptr") out += ", " + a[1];
    return out + ")";
  }
  if (name == "MPI_Waitall") {
    if (a.size() != 3 && a.size() != 2) {
      *error = "MPI_Waitall: expected 2 or 3 arguments";
      return "";
    }
    return ns + "waitall(" + a[1] + ", " + a[0] + ")";
  }
  if (name == "MPI_Barrier") {
    if (!need(1)) return "";
    return ns + "barrier(" + a[0] + ")";
  }
  if (name == "MPI_Reduce") {
    if (!need(7)) return "";
    return ns + "reduce(" + join(a) + ")";
  }
  if (name == "MPI_Allreduce") {
    if (!need(6)) return "";
    return ns + "allreduce(" + join(a) + ")";
  }
  if (name == "MPI_Gather" || name == "MPI_Scatter") {
    if (!need(8)) return "";
    const std::string fn = name == "MPI_Gather" ? "gather" : "scatter";
    return ns + fn + "(" + join(a) + ")";
  }
  if (name == "MPI_Allgather" || name == "MPI_Alltoall") {
    if (!need(7)) return "";
    const std::string fn = name == "MPI_Allgather" ? "allgather" : "alltoall";
    return ns + fn + "(" + join(a) + ")";
  }
  if (name == "MPI_Ssend") {
    if (!need(6)) return "";
    return ns + "ssend(" + join(a) + ")";
  }
  if (name == "MPI_Scan") {
    if (!need(6)) return "";
    return ns + "scan(" + join(a) + ")";
  }
  if (name == "MPI_Reduce_scatter_block") {
    if (!need(6)) return "";
    return ns + "reduce_scatter_block(" + join(a) + ")";
  }
  if (name == "MPI_Probe") {
    // MPI_Probe(src, tag, comm, &status)
    if (!need(4)) return "";
    return ns + "probe(" + a[0] + ", " + a[1] + ", " + a[2] + ", " + a[3] +
           ")";
  }
  if (name == "MPI_Iprobe") {
    // MPI_Iprobe(src, tag, comm, &flag, &status)
    if (!need(5)) return "";
    return strip_addr(a[3]) + " = " + ns + "iprobe(" + a[0] + ", " + a[1] +
           ", " + a[2] + ", " + a[4] + ")";
  }
  if (name == "MPI_Get_count") {
    // MPI_Get_count(&status, datatype, &count)
    if (!need(3)) return "";
    return strip_addr(a[2]) + " = " + ns + "get_count(" + strip_addr(a[0]) +
           ", " + a[1] + ")";
  }
  if (name == "MPI_Waitany") {
    // MPI_Waitany(count, reqs, &index, &status)
    if (!need(4)) return "";
    return strip_addr(a[2]) + " = " + ns + "waitany(" + a[1] + ", " + a[0] +
           ", " + (a[3] == "nullptr" ? "nullptr" : a[3]) + ")";
  }
  if (name == "MPI_Type_vector") {
    // MPI_Type_vector(count, blocklength, stride, base, &newtype)
    if (!need(5)) return "";
    return strip_addr(a[4]) + " = " + ns + "type_vector(" + a[0] + ", " +
           a[1] + ", " + a[2] + ", " + a[3] + ")";
  }
  if (name == "MPI_Type_contiguous") {
    if (!need(3)) return "";
    return strip_addr(a[2]) + " = " + ns + "type_contiguous(" + a[0] + ", " +
           a[1] + ")";
  }
  if (name == "MPI_Type_commit" || name == "MPI_Type_free") {
    return "/* " + name + ": types are immediately usable in impacc */";
  }
  *error = "unsupported MPI routine '" + name + "'";
  return "";
}

}  // namespace impacc::trans
