#include "trans/pragma_parser.h"

#include "trans/lexer.h"

namespace impacc::trans {

namespace {

/// Parse "var" or "var[first:count]" into a SubArray.
SubArray parse_subarray(const std::string& text) {
  SubArray sa;
  const std::size_t br = text.find('[');
  if (br == std::string::npos) {
    sa.var = trim(text);
    return sa;
  }
  sa.var = trim(text.substr(0, br));
  const std::size_t close = match_delim(text, br);
  if (close == std::string::npos) {
    sa.var = trim(text);  // malformed; treat as bare name
    return sa;
  }
  const std::string inner = text.substr(br + 1, close - br - 1);
  // Split on the top-level ':'.
  int depth = 0;
  std::size_t colon = std::string::npos;
  for (std::size_t i = 0; i < inner.size(); ++i) {
    const char c = inner[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == ':' && depth == 0) {
      colon = i;
      break;
    }
  }
  if (colon == std::string::npos) {
    sa.first = "0";
    sa.count = trim(inner);
  } else {
    sa.first = trim(inner.substr(0, colon));
    sa.count = trim(inner.substr(colon + 1));
  }
  return sa;
}

bool is_data_clause(const std::string& name) {
  return name == "copyin" || name == "copyout" || name == "copy" ||
         name == "create" || name == "present" || name == "delete" ||
         name == "device" || name == "self" || name == "host" ||
         name == "use_device";
}

}  // namespace

std::optional<Directive> parse_pragma(const std::string& after_pragma,
                                      int line, std::string* error) {
  const std::string text = trim(after_pragma);
  if (text.rfind("acc", 0) != 0) return std::nullopt;  // not ours

  Directive d;
  d.line = line;
  std::string rest = trim(text.substr(3));

  // Directive name (possibly two words: "parallel loop", "enter data").
  auto take_word = [&rest]() {
    std::size_t i = 0;
    while (i < rest.size() && (std::isalnum(static_cast<unsigned char>(
                                   rest[i])) ||
                               rest[i] == '_')) {
      ++i;
    }
    const std::string w = rest.substr(0, i);
    rest = trim(rest.substr(i));
    return w;
  };

  const std::string first = take_word();
  if (first == "parallel" || first == "kernels") {
    d.kind = DirectiveKind::kParallelLoop;
    if (rest.rfind("loop", 0) == 0) take_word();  // optional "loop"
  } else if (first == "loop") {
    d.kind = DirectiveKind::kParallelLoop;
  } else if (first == "data") {
    d.kind = DirectiveKind::kData;
  } else if (first == "enter") {
    if (take_word() != "data") {
      *error = "expected 'data' after 'enter'";
      return std::nullopt;
    }
    d.kind = DirectiveKind::kEnterData;
  } else if (first == "exit") {
    if (take_word() != "data") {
      *error = "expected 'data' after 'exit'";
      return std::nullopt;
    }
    d.kind = DirectiveKind::kExitData;
  } else if (first == "update") {
    d.kind = DirectiveKind::kUpdate;
  } else if (first == "host_data") {
    d.kind = DirectiveKind::kHostData;
  } else if (first == "wait") {
    d.kind = DirectiveKind::kWait;
    // Optional (queue) argument directly after "wait".
    if (!rest.empty() && rest[0] == '(') {
      const std::size_t close = match_delim(rest, 0);
      if (close == std::string::npos) {
        *error = "unbalanced wait argument";
        return std::nullopt;
      }
      Clause c;
      c.name = "wait";
      c.args.push_back(trim(rest.substr(1, close - 1)));
      d.clauses.push_back(c);
      rest = trim(rest.substr(close + 1));
    }
  } else if (first == "mpi") {
    d.kind = DirectiveKind::kMpi;
  } else {
    *error = "unsupported acc directive '" + first + "'";
    return std::nullopt;
  }

  // Clause list: name [(args)]
  while (!rest.empty()) {
    if (rest[0] == ',') {
      rest = trim(rest.substr(1));
      continue;
    }
    Clause c;
    std::size_t i = 0;
    while (i < rest.size() &&
           (std::isalnum(static_cast<unsigned char>(rest[i])) ||
            rest[i] == '_')) {
      ++i;
    }
    if (i == 0) {
      *error = "unexpected character in clause list: '" +
               rest.substr(0, 1) + "'";
      return std::nullopt;
    }
    c.name = rest.substr(0, i);
    rest = trim(rest.substr(i));
    if (!rest.empty() && rest[0] == '(') {
      const std::size_t close = match_delim(rest, 0);
      if (close == std::string::npos) {
        *error = "unbalanced clause arguments for '" + c.name + "'";
        return std::nullopt;
      }
      const std::string inner = rest.substr(1, close - 1);
      c.args = split_args(inner);
      rest = trim(rest.substr(close + 1));
    }
    if (is_data_clause(c.name)) {
      for (const auto& a : c.args) c.subarrays.push_back(parse_subarray(a));
    }
    d.clauses.push_back(std::move(c));
  }
  return d;
}

}  // namespace impacc::trans
