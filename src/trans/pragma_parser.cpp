#include "trans/pragma_parser.h"

#include <cctype>

#include "trans/lexer.h"

namespace impacc::trans {

namespace {

/// Parse one "[first:count]" group's inner text into a dimension.
SubArrayDim parse_dim(const std::string& inner) {
  SubArrayDim dim;
  // Split on the top-level ':'.
  int depth = 0;
  std::size_t colon = std::string::npos;
  for (std::size_t i = 0; i < inner.size(); ++i) {
    const char c = inner[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == ':' && depth == 0) {
      colon = i;
      break;
    }
  }
  if (colon == std::string::npos) {
    dim.first = "0";
    dim.count = trim(inner);
  } else {
    dim.first = trim(inner.substr(0, colon));
    dim.count = trim(inner.substr(colon + 1));
  }
  return dim;
}

/// Parse "var", "var[first:count]", or "var[f0:c0][f1:c1]..." into a
/// SubArray.
SubArray parse_subarray(const std::string& text) {
  SubArray sa;
  const std::size_t br = text.find('[');
  if (br == std::string::npos) {
    sa.var = trim(text);
    return sa;
  }
  sa.var = trim(text.substr(0, br));
  std::size_t open = br;
  while (open < text.size() && text[open] == '[') {
    const std::size_t close = match_delim(text, open);
    if (close == std::string::npos) {
      // Malformed (unbalanced bracket); treat as a bare name.
      sa.var = trim(text);
      sa.dims.clear();
      return sa;
    }
    sa.dims.push_back(parse_dim(text.substr(open + 1, close - open - 1)));
    open = close + 1;
    while (open < text.size() &&
           std::isspace(static_cast<unsigned char>(text[open]))) {
      ++open;
    }
  }
  if (!sa.dims.empty()) {
    sa.first = sa.dims[0].first;
    sa.count = sa.dims[0].count;
  }
  return sa;
}

bool is_data_clause(const std::string& name) {
  return name == "copyin" || name == "copyout" || name == "copy" ||
         name == "create" || name == "present" || name == "delete" ||
         name == "device" || name == "self" || name == "host" ||
         name == "use_device";
}

}  // namespace

std::optional<Directive> parse_pragma(const std::string& after_pragma,
                                      int line, std::string* error) {
  const std::string text = trim(after_pragma);
  if (text.rfind("acc", 0) != 0) return std::nullopt;  // not ours

  Directive d;
  d.line = line;
  std::string rest = trim(text.substr(3));

  // Directive name (possibly two words: "parallel loop", "enter data").
  auto take_word = [&rest]() {
    std::size_t i = 0;
    while (i < rest.size() && (std::isalnum(static_cast<unsigned char>(
                                   rest[i])) ||
                               rest[i] == '_')) {
      ++i;
    }
    const std::string w = rest.substr(0, i);
    rest = trim(rest.substr(i));
    return w;
  };

  const std::string first = take_word();
  if (first == "parallel" || first == "kernels") {
    d.kind = DirectiveKind::kParallelLoop;
    if (rest.rfind("loop", 0) == 0) take_word();  // optional "loop"
  } else if (first == "loop") {
    d.kind = DirectiveKind::kParallelLoop;
  } else if (first == "data") {
    d.kind = DirectiveKind::kData;
  } else if (first == "enter") {
    if (take_word() != "data") {
      *error = "expected 'data' after 'enter'";
      return std::nullopt;
    }
    d.kind = DirectiveKind::kEnterData;
  } else if (first == "exit") {
    if (take_word() != "data") {
      *error = "expected 'data' after 'exit'";
      return std::nullopt;
    }
    d.kind = DirectiveKind::kExitData;
  } else if (first == "update") {
    d.kind = DirectiveKind::kUpdate;
  } else if (first == "host_data") {
    d.kind = DirectiveKind::kHostData;
  } else if (first == "wait") {
    d.kind = DirectiveKind::kWait;
    // Optional (queue) argument directly after "wait".
    if (!rest.empty() && rest[0] == '(') {
      const std::size_t close = match_delim(rest, 0);
      if (close == std::string::npos) {
        *error = "unbalanced wait argument";
        return std::nullopt;
      }
      Clause c;
      c.name = "wait";
      c.args.push_back(trim(rest.substr(1, close - 1)));
      d.clauses.push_back(c);
      rest = trim(rest.substr(close + 1));
    }
  } else if (first == "mpi") {
    d.kind = DirectiveKind::kMpi;
  } else {
    *error = "unsupported acc directive '" + first + "'";
    return std::nullopt;
  }

  // Clause list: name [(args)]
  while (!rest.empty()) {
    if (rest[0] == ',') {
      rest = trim(rest.substr(1));
      continue;
    }
    Clause c;
    std::size_t i = 0;
    while (i < rest.size() &&
           (std::isalnum(static_cast<unsigned char>(rest[i])) ||
            rest[i] == '_')) {
      ++i;
    }
    if (i == 0) {
      *error = "unexpected character in clause list: '" +
               rest.substr(0, 1) + "'";
      return std::nullopt;
    }
    c.name = rest.substr(0, i);
    rest = trim(rest.substr(i));
    if (!rest.empty() && rest[0] == '(') {
      const std::size_t close = match_delim(rest, 0);
      if (close == std::string::npos) {
        *error = "unbalanced clause arguments for '" + c.name + "'";
        return std::nullopt;
      }
      const std::string inner = rest.substr(1, close - 1);
      c.args = split_args(inner);
      rest = trim(rest.substr(close + 1));
    }
    if (is_data_clause(c.name)) {
      for (const auto& a : c.args) c.subarrays.push_back(parse_subarray(a));
    }
    d.clauses.push_back(std::move(c));
  }
  return d;
}

}  // namespace impacc::trans
