// Request/buffer lifetime checks over rank-symbolic traces (ranksim.h).
//
// The loop-aware simulator replays iterative communication patterns
// (halo exchanges in a timestep loop) iteration by iteration, which is
// exactly where nonblocking request discipline breaks in practice:
//
//   IMP021  a buffer with a pending nonblocking operation is reused —
//           written, or read while the pending op writes it — before
//           the completing wait. Accesses ordered by a shared async
//           queue are exempt (the unified activity queue serializes
//           them, §3.5 of the paper).
//   IMP022  a request handle is overwritten by a new nonblocking post
//           while the previous operation it names is still pending
//           (classic loop bug: MPI_Irecv(..., &req) every iteration,
//           one MPI_Wait after the loop). The overwritten request can
//           never be completed — a handle leak.
//   IMP024  a user p2p tag lands in the reserved hierarchical-
//           collective tag window (>= 1<<24, mpi/collectives.cpp):
//           user messages could match the runtime's internal traffic.
//
// IMP021/IMP022 are per-rank sequencing checks: they skip operations
// whose execution is uncertain (undecidable guard, widened loop body)
// but do not require whole-program exactness the way the cross-rank
// matching rules do. IMP024 only needs the tag expression's value.
#pragma once

#include <vector>

#include "trans/analysis/diagnostics.h"
#include "trans/analysis/ranksim.h"

namespace impacc::trans::analysis {

/// First tag reserved for the runtime's hierarchical collectives; keep
/// in sync with kCollTagBase in src/mpi/collectives.cpp.
constexpr long kReservedCollTagBase = 1L << 24;

/// Run the lifetime checks over every simulated rank and append
/// diagnostics (deduplicated per source line across ranks).
void check_lifetimes(const RankSimResult& sim, std::vector<Diagnostic>* out);

}  // namespace impacc::trans::analysis
