#include "trans/analysis/hbclock.h"

#include <set>
#include <tuple>
#include <utility>

namespace impacc::trans::analysis {

namespace {

std::string queue_display(const std::string& q) {
  return q.empty() ? "<no-value>" : q;
}

/// One asynchronous access still potentially in flight.
struct PendingAccess {
  std::string var;
  bool write = false;
  std::string queue;
  int line = 0;
  VectorClock clock;  // queue clock at enqueue time
};

struct RaceChecker {
  std::vector<Diagnostic>* out;
  /// (code, use line, pending line) already reported — the same textual
  /// race shows up once, not once per rank.
  std::set<std::tuple<std::string, int, int>> reported;

  void report(const char* code, const RankOp& op, const PendingAccess& p,
              std::string message, std::string fixit) {
    if (!reported.insert({code, op.line, p.line}).second) return;
    out->push_back(make_diagnostic(code, op.line, op.column,
                                   std::move(message), std::move(fixit)));
  }

  void run_rank(const RankTrace& trace) {
    std::map<std::string, VectorClock> queues;
    VectorClock host;
    std::vector<PendingAccess> pending;

    auto complete_leq = [&](const VectorClock& bound) {
      std::vector<PendingAccess> still;
      for (auto& p : pending) {
        if (!p.clock.leq(bound)) still.push_back(std::move(p));
      }
      pending = std::move(still);
    };

    for (const auto& op : trace.ops) {
      const bool on_queue = op.has_queue;
      if (op.kind == RankOpKind::kAccWait) {
        if (op.wait_all) {
          for (const auto& [q, c] : queues) host.merge(c);
        } else {
          for (const auto& q : op.wait_queues) {
            auto it = queues.find(q);
            if (it != queues.end()) host.merge(it->second);
          }
        }
        host.tick("host");
        complete_leq(host);
        continue;
      }
      if (op.kind == RankOpKind::kHostWait) {
        // Completes host-path requests; async-attached work is ordered
        // by acc wait instead. No queue effect to model.
        host.tick("host");
        continue;
      }
      if (on_queue) {
        VectorClock& c = queues[op.queue];
        c.merge(host);  // the host issues the enqueue
        for (const auto& wq : op.wait_clause) {
          auto it = queues.find(wq);
          if (it != queues.end()) c.merge(it->second);
        }
        c.tick("q:" + op.queue);
        for (const auto& a : op.accesses) {
          for (const auto& p : pending) {
            if (p.var != a.var || p.queue == op.queue) continue;
            if (!(p.write || a.write)) continue;
            if (p.clock.leq(c)) continue;
            if (op.guarded_unknown) continue;
            report("IMP020", op, p,
                   "'" + a.var + "' is " + (a.write ? "written" : "read") +
                       " on async queue " + queue_display(op.queue) +
                       " while queue " + queue_display(p.queue) +
                       " may still be " +
                       (p.write ? "writing" : "reading") +
                       " it (enqueued at line " + std::to_string(p.line) +
                       "); the queues have no ordering edge",
                   "add a 'wait(" + queue_display(p.queue) +
                       ")' clause to this construct or a '#pragma acc "
                       "wait(" + queue_display(p.queue) +
                       ")' between the two");
          }
        }
        if (!op.guarded_unknown) {
          for (const auto& a : op.accesses) {
            pending.push_back({a.var, a.write, op.queue, op.line, c});
          }
        }
        continue;
      }
      // Host-path operation: plain MPI calls, synchronous updates, and
      // synchronous acc mpi all touch their buffers immediately.
      host.tick("host");
      for (const auto& a : op.accesses) {
        for (const auto& p : pending) {
          if (p.var != a.var) continue;
          if (!(p.write || a.write)) continue;
          if (p.clock.leq(host)) continue;
          if (op.guarded_unknown) continue;
          report("IMP019", op, p,
                 "host " + std::string(a.write ? "writes" : "reads") +
                     " '" + a.var + "' while async queue " +
                     queue_display(p.queue) + " may still be " +
                     (p.write ? "writing" : "reading") +
                     " it (enqueued at line " + std::to_string(p.line) +
                     "); no wait orders them",
                 "add '#pragma acc wait(" + queue_display(p.queue) +
                     ")' before this host access");
        }
      }
    }
  }
};

}  // namespace

void check_races(const RankSimResult& sim, std::vector<Diagnostic>* out) {
  RaceChecker checker{out, {}};
  for (const auto& trace : sim.traces) {
    checker.run_rank(trace);
  }
}

}  // namespace impacc::trans::analysis
