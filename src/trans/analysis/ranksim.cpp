#include "trans/analysis/ranksim.h"

#include <cctype>
#include <cstdlib>

#include "trans/lexer.h"

namespace impacc::trans::analysis {

// --- integer expression evaluator -------------------------------------------
//
// A tiny recursive-descent parser over optional<long>: every subterm is
// either a known value or unknown, and unknowns flow upward except where
// short-circuit semantics can decide the result without them.

namespace {

struct ExprTok {
  enum Kind { kNum, kIdent, kOp, kEnd, kBad } kind = kEnd;
  long num = 0;
  std::string text;
};

struct ExprLexer {
  const std::string& s;
  std::size_t pos = 0;

  ExprTok next() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    ExprTok t;
    if (pos >= s.size()) return t;
    const char c = s[pos];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      char* end = nullptr;
      t.kind = ExprTok::kNum;
      t.num = std::strtol(s.c_str() + pos, &end, 0);
      // Swallow integer suffixes (u, l, ul, ...).
      std::size_t np = static_cast<std::size_t>(end - s.c_str());
      while (np < s.size() && (s[np] == 'u' || s[np] == 'U' ||
                               s[np] == 'l' || s[np] == 'L')) {
        ++np;
      }
      pos = np;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t e = pos;
      while (e < s.size() && (std::isalnum(static_cast<unsigned char>(s[e])) ||
                              s[e] == '_')) {
        ++e;
      }
      t.kind = ExprTok::kIdent;
      t.text = s.substr(pos, e - pos);
      pos = e;
      return t;
    }
    static const char* kTwoChar[] = {"&&", "||", "==", "!=", "<=",
                                     ">=", "<<", ">>", nullptr};
    for (const char** p = kTwoChar; *p != nullptr; ++p) {
      if (s.compare(pos, 2, *p) == 0) {
        t.kind = ExprTok::kOp;
        t.text = *p;
        pos += 2;
        return t;
      }
    }
    if (std::string("+-*/%<>&|^!~?:()").find(c) != std::string::npos) {
      t.kind = ExprTok::kOp;
      t.text = std::string(1, c);
      ++pos;
      return t;
    }
    t.kind = ExprTok::kBad;
    return t;
  }
};

using Val = std::optional<long>;

struct ExprParser {
  ExprLexer lex;
  const IntEnv& env;
  ExprTok cur;
  bool failed = false;

  ExprParser(const std::string& s, const IntEnv& e) : lex{s}, env(e) {
    cur = lex.next();
  }

  bool eat(const char* op) {
    if (cur.kind == ExprTok::kOp && cur.text == op) {
      cur = lex.next();
      return true;
    }
    return false;
  }

  Val primary() {
    if (cur.kind == ExprTok::kNum) {
      const long v = cur.num;
      cur = lex.next();
      return v;
    }
    if (cur.kind == ExprTok::kIdent) {
      const std::string name = cur.text;
      cur = lex.next();
      if (name == "MPI_PROC_NULL") return kMpiProcNull;
      if (name == "MPI_ANY_SOURCE") return kMpiAnySource;
      if (name == "MPI_ANY_TAG") return kMpiAnyTag;
      auto it = env.find(name);
      if (it != env.end()) return it->second;
      return std::nullopt;
    }
    if (eat("(")) {
      const Val v = ternary();
      if (!eat(")")) failed = true;
      return v;
    }
    failed = true;
    return std::nullopt;
  }

  Val unary() {
    if (eat("-")) {
      const Val v = unary();
      return v ? Val(-*v) : std::nullopt;
    }
    if (eat("+")) return unary();
    if (eat("!")) {
      const Val v = unary();
      return v ? Val(*v == 0 ? 1 : 0) : std::nullopt;
    }
    if (eat("~")) {
      const Val v = unary();
      return v ? Val(~*v) : std::nullopt;
    }
    return primary();
  }

  Val mul() {
    Val v = unary();
    for (;;) {
      if (eat("*")) {
        const Val r = unary();
        v = (v && r) ? Val(*v * *r) : std::nullopt;
      } else if (eat("/")) {
        const Val r = unary();
        v = (v && r && *r != 0) ? Val(*v / *r) : std::nullopt;
      } else if (eat("%")) {
        const Val r = unary();
        v = (v && r && *r != 0) ? Val(*v % *r) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val add() {
    Val v = mul();
    for (;;) {
      if (eat("+")) {
        const Val r = mul();
        v = (v && r) ? Val(*v + *r) : std::nullopt;
      } else if (eat("-")) {
        const Val r = mul();
        v = (v && r) ? Val(*v - *r) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val shift() {
    Val v = add();
    for (;;) {
      if (eat("<<")) {
        const Val r = add();
        v = (v && r) ? Val(*v << *r) : std::nullopt;
      } else if (eat(">>")) {
        const Val r = add();
        v = (v && r) ? Val(*v >> *r) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val rel() {
    Val v = shift();
    for (;;) {
      if (eat("<=")) {
        const Val r = shift();
        v = (v && r) ? Val(*v <= *r ? 1 : 0) : std::nullopt;
      } else if (eat(">=")) {
        const Val r = shift();
        v = (v && r) ? Val(*v >= *r ? 1 : 0) : std::nullopt;
      } else if (eat("<")) {
        const Val r = shift();
        v = (v && r) ? Val(*v < *r ? 1 : 0) : std::nullopt;
      } else if (eat(">")) {
        const Val r = shift();
        v = (v && r) ? Val(*v > *r ? 1 : 0) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val eq() {
    Val v = rel();
    for (;;) {
      if (eat("==")) {
        const Val r = rel();
        v = (v && r) ? Val(*v == *r ? 1 : 0) : std::nullopt;
      } else if (eat("!=")) {
        const Val r = rel();
        v = (v && r) ? Val(*v != *r ? 1 : 0) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val bit_and() {
    Val v = eq();
    while (cur.kind == ExprTok::kOp && cur.text == "&") {
      eat("&");
      const Val r = eq();
      v = (v && r) ? Val(*v & *r) : std::nullopt;
    }
    return v;
  }

  Val bit_xor() {
    Val v = bit_and();
    while (eat("^")) {
      const Val r = bit_and();
      v = (v && r) ? Val(*v ^ *r) : std::nullopt;
    }
    return v;
  }

  Val bit_or() {
    Val v = bit_xor();
    while (cur.kind == ExprTok::kOp && cur.text == "|") {
      eat("|");
      const Val r = bit_xor();
      v = (v && r) ? Val(*v | *r) : std::nullopt;
    }
    return v;
  }

  Val log_and() {
    Val v = bit_or();
    while (eat("&&")) {
      const Val r = bit_or();
      if (v && *v == 0) {
        v = 0;  // short-circuit: unknown right side is dead
      } else if (r && *r == 0) {
        v = 0;
      } else if (v && r) {
        v = 1;
      } else {
        v = std::nullopt;
      }
    }
    return v;
  }

  Val log_or() {
    Val v = log_and();
    while (eat("||")) {
      const Val r = log_and();
      if (v && *v != 0) {
        v = 1;
      } else if (r && *r != 0) {
        v = 1;
      } else if (v && r) {
        v = 0;
      } else {
        v = std::nullopt;
      }
    }
    return v;
  }

  Val ternary() {
    Val c = log_or();
    if (!eat("?")) return c;
    const Val a = ternary();
    if (!eat(":")) {
      failed = true;
      return std::nullopt;
    }
    const Val b = ternary();
    if (c) return *c != 0 ? a : b;
    if (a && b && *a == *b) return a;  // both arms agree; cond irrelevant
    return std::nullopt;
  }

  Val run() {
    const Val v = ternary();
    if (failed || cur.kind != ExprTok::kEnd) return std::nullopt;
    return v;
  }
};

}  // namespace

std::optional<long> eval_int_expr(const std::string& expr,
                                  const IntEnv& env) {
  if (trim(expr).empty()) return std::nullopt;
  ExprParser p(expr, env);
  return p.run();
}

// --- per-rank interpretation ------------------------------------------------

namespace {

/// MPI calls that neither move data nor order ranks; they are invisible
/// to the communication model.
bool is_neutral_mpi(const std::string& n) {
  static const char* kNeutral[] = {
      "MPI_Init",        "MPI_Init_thread",  "MPI_Finalize",
      "MPI_Initialized", "MPI_Finalized",    "MPI_Abort",
      "MPI_Wtime",       "MPI_Wtick",        "MPI_Get_processor_name",
      "MPI_Comm_dup",    "MPI_Comm_free",    "MPI_Type_commit",
      "MPI_Type_free",   "MPI_Type_vector",  "MPI_Type_contiguous",
      "MPI_Get_count",   "MPI_Request_free", "MPI_Error_string",
      "MPI_Type_create_subarray",            nullptr};
  for (const char** p = kNeutral; *p != nullptr; ++p) {
    if (n == *p) return true;
  }
  return false;
}

bool is_collective_mpi(const std::string& n) {
  static const char* kColl[] = {
      "MPI_Barrier", "MPI_Bcast",     "MPI_Reduce",
      "MPI_Allreduce", "MPI_Scan",    "MPI_Reduce_scatter_block",
      "MPI_Gather", "MPI_Scatter",    "MPI_Allgather",
      "MPI_Alltoall", nullptr};
  for (const char** p = kColl; *p != nullptr; ++p) {
    if (n == *p) return true;
  }
  return false;
}

/// Data clauses on compute constructs / data regions, mapped to the
/// direction of the device-copy access they imply.
bool clause_reads_device(const std::string& name) {
  return name == "copyin" || name == "present" || name == "copyout" ||
         name == "copy" || name == "create" || name == "use_device";
}

bool clause_writes_device(const std::string& name) {
  return name == "copyout" || name == "create" || name == "copy";
}

struct RankInterp {
  const DirectiveStream& stream;
  int nranks;
  int rank;
  RankSimResult& res;

  RankTrace trace;
  IntEnv env;
  std::vector<int> guard_tri;  // 1 taken, 0 dead, -1 unknown
  std::map<std::string, long> extents;
  std::string rank_var;
  std::string size_var;

  RankInterp(const DirectiveStream& s, int n, int r, RankSimResult& out)
      : stream(s), nranks(n), rank(r), res(out) {
    trace.rank = r;
  }

  bool dead() const {
    for (const int t : guard_tri) {
      if (t == 0) return true;
    }
    return false;
  }

  bool unknown_guard() const {
    for (const int t : guard_tri) {
      if (t == -1) return true;
    }
    return false;
  }

  void push_op(RankOp op) {
    op.guarded_unknown = unknown_guard();
    if (op.guarded_unknown &&
        (op.kind == RankOpKind::kSend || op.kind == RankOpKind::kRecv ||
         op.kind == RankOpKind::kCollective ||
         op.kind == RankOpKind::kAccWait ||
         op.kind == RankOpKind::kHostWait)) {
      res.comm_exact = false;
    }
    trace.ops.push_back(std::move(op));
  }

  void record_extents(const Directive& d) {
    for (const auto& c : d.clauses) {
      if (c.name != "copyin" && c.name != "copyout" && c.name != "copy" &&
          c.name != "create") {
        continue;
      }
      for (const auto& sa : c.subarrays) {
        if (sa.dims.empty()) continue;
        long total = 1;
        bool known = true;
        for (const auto& dim : sa.dims) {
          const auto v = eval_int_expr(dim.count, env);
          if (!v.has_value() || *v < 0) {
            known = false;
            break;
          }
          total *= *v;
        }
        if (known) extents[sa.var] = total;
      }
    }
  }

  std::vector<BufferAccess> clause_accesses(const Directive& d) {
    std::vector<BufferAccess> out;
    for (const auto& c : d.clauses) {
      if (!clause_reads_device(c.name) && !clause_writes_device(c.name)) {
        continue;
      }
      for (const auto& sa : c.subarrays) {
        out.push_back({sa.var, clause_writes_device(c.name)});
      }
    }
    return out;
  }

  void handle_p2p(const MpiCall& call, const Directive* d, int line,
                  int column) {
    const bool send = call.name == "MPI_Send" || call.name == "MPI_Ssend" ||
                      call.name == "MPI_Isend";
    const bool nonblocking = is_nonblocking_p2p(call.name);
    if (call.args.size() < 6) {
      res.comm_exact = false;
      return;
    }
    RankOp op;
    op.kind = send ? RankOpKind::kSend : RankOpKind::kRecv;
    op.name = call.name;
    op.line = line;
    op.column = column;
    op.buffer = base_identifier(call.args[0]);
    op.count_text = trim(call.args[1]);
    op.count = eval_int_expr(call.args[1], env);
    op.dtype = trim(call.args[2]);
    op.peer = eval_int_expr(call.args[3], env);
    op.tag = eval_int_expr(call.args[4], env);
    op.comm = trim(call.args[5]);
    if (nonblocking && !call.args.empty()) {
      op.request = base_identifier(call.args.back());
    }
    if (d != nullptr) {
      if (const Clause* as = d->find("async")) {
        op.has_queue = true;
        op.queue = as->args.empty() ? std::string() : as->args[0];
      }
    }
    op.blocking = !nonblocking && !op.has_queue;
    auto it = extents.find(op.buffer);
    if (it != extents.end()) op.extent = it->second;
    op.accesses.push_back({op.buffer, /*write=*/!send});

    if (op.peer.has_value() && *op.peer == kMpiProcNull) return;  // no-op
    if (!op.peer.has_value()) res.comm_exact = false;
    if (!op.tag.has_value()) res.comm_exact = false;
    push_op(std::move(op));
  }

  void handle_collective(const MpiCall& call, const Directive* d, int line,
                         int column) {
    RankOp op;
    op.kind = RankOpKind::kCollective;
    op.name = call.name;
    op.line = line;
    op.column = column;
    if (!call.args.empty()) op.comm = trim(call.args.back());
    if (const auto roles = mpi_buffer_roles(call.name)) {
      if (roles->send_arg >= 0 &&
          roles->send_arg < static_cast<int>(call.args.size())) {
        op.accesses.push_back(
            {base_identifier(call.args[roles->send_arg]), false});
      }
      if (roles->recv_arg >= 0 &&
          roles->recv_arg < static_cast<int>(call.args.size())) {
        op.accesses.push_back(
            {base_identifier(call.args[roles->recv_arg]), true});
      }
    }
    if (d != nullptr) {
      if (const Clause* as = d->find("async")) {
        op.has_queue = true;
        op.queue = as->args.empty() ? std::string() : as->args[0];
      }
    }
    op.blocking = !op.has_queue;
    push_op(std::move(op));
  }

  void handle_call(const MpiCall& call, const Directive* d, int line,
                   int column) {
    const std::string& n = call.name;
    if (n == "MPI_Comm_rank" || n == "MPI_Comm_size") {
      if (call.args.size() >= 2) {
        const std::string var = base_identifier(call.args[1]);
        if (!var.empty()) {
          // Binding under a dead guard never runs; under an unknown
          // guard the value is unreliable, so drop it.
          if (unknown_guard()) {
            env.erase(var);
          } else {
            env[var] = n == "MPI_Comm_rank" ? rank : nranks;
            (n == "MPI_Comm_rank" ? rank_var : size_var) = var;
          }
        }
      }
      return;
    }
    if (n == "MPI_Wait" || n == "MPI_Waitall" || n == "MPI_Waitany") {
      RankOp op;
      op.kind = RankOpKind::kHostWait;
      op.name = n;
      op.line = line;
      op.column = column;
      const int req_arg = n == "MPI_Wait" ? 0 : 1;
      if (req_arg < static_cast<int>(call.args.size())) {
        op.request = base_identifier(call.args[req_arg]);
      }
      push_op(std::move(op));
      return;
    }
    if (n == "MPI_Send" || n == "MPI_Ssend" || n == "MPI_Isend" ||
        n == "MPI_Recv" || n == "MPI_Irecv") {
      handle_p2p(call, d, line, column);
      return;
    }
    if (is_collective_mpi(n)) {
      handle_collective(call, d, line, column);
      return;
    }
    if (is_neutral_mpi(n)) return;
    // An MPI routine the model does not understand may communicate;
    // refuse to reason exactly about this program.
    res.comm_exact = false;
  }

  void handle_directive(const Event& ev) {
    const Directive& d = ev.directive;
    const Clause* as = d.find("async");
    switch (d.kind) {
      case DirectiveKind::kMpi:
        if (ev.call.valid) handle_call(ev.call, &d, ev.line, ev.column);
        break;
      case DirectiveKind::kWait: {
        RankOp op;
        op.kind = RankOpKind::kAccWait;
        op.line = ev.line;
        op.column = ev.column;
        const Clause* w = d.find("wait");
        if (w == nullptr || w->args.empty()) {
          op.wait_all = true;
        } else {
          op.wait_queues = w->args;
        }
        push_op(std::move(op));
        break;
      }
      case DirectiveKind::kEnterData:
        record_extents(d);
        break;
      case DirectiveKind::kExitData:
        break;
      case DirectiveKind::kUpdate: {
        RankOp op;
        op.line = ev.line;
        op.column = ev.column;
        for (const auto& c : d.clauses) {
          if (c.name == "device") {
            for (const auto& sa : c.subarrays) {
              op.accesses.push_back({sa.var, true});
            }
          } else if (c.name == "self" || c.name == "host") {
            for (const auto& sa : c.subarrays) {
              op.accesses.push_back({sa.var, false});
            }
          }
        }
        if (as != nullptr) {
          op.kind = RankOpKind::kQueueOp;
          op.has_queue = true;
          op.queue = as->args.empty() ? std::string() : as->args[0];
        } else {
          op.kind = RankOpKind::kHostAccess;
        }
        if (const Clause* w = d.find("wait")) op.wait_clause = w->args;
        push_op(std::move(op));
        break;
      }
      case DirectiveKind::kParallelLoop: {
        if (as == nullptr) break;  // synchronous compute completes inline
        RankOp op;
        op.kind = RankOpKind::kQueueOp;
        op.line = ev.line;
        op.column = ev.column;
        op.has_queue = true;
        op.queue = as->args.empty() ? std::string() : as->args[0];
        op.accesses = clause_accesses(d);
        if (const Clause* w = d.find("wait")) op.wait_clause = w->args;
        push_op(std::move(op));
        break;
      }
      default:
        break;
    }
  }

  void run() {
    for (const auto& ev : stream.events) {
      if (ev.kind == EventKind::kGuardEnter) {
        int tri = -1;
        if (!dead()) {
          const auto v = eval_int_expr(ev.guard_cond, env);
          if (v.has_value()) tri = *v != 0 ? 1 : 0;
        } else {
          tri = 0;  // inside a dead branch everything is dead
        }
        guard_tri.push_back(tri);
        continue;
      }
      if (ev.kind == EventKind::kGuardExit) {
        if (!guard_tri.empty()) guard_tri.pop_back();
        continue;
      }
      if (dead()) continue;
      switch (ev.kind) {
        case EventKind::kAssign:
          if (unknown_guard() || ev.assign_expr.empty()) {
            env.erase(ev.assign_var);
          } else {
            const auto v = eval_int_expr(ev.assign_expr, env);
            if (v.has_value()) {
              env[ev.assign_var] = *v;
            } else {
              env.erase(ev.assign_var);
            }
          }
          break;
        case EventKind::kMpiCall:
          handle_call(ev.call, nullptr, ev.line, ev.column);
          break;
        case EventKind::kDirective:
          handle_directive(ev);
          break;
        case EventKind::kRegionEnter:
          record_extents(ev.directive);
          break;
        case EventKind::kRegionExit:
        case EventKind::kGuardEnter:
        case EventKind::kGuardExit:
          break;
      }
    }
  }
};

}  // namespace

RankSimResult simulate_ranks(const DirectiveStream& stream, int nranks) {
  RankSimResult res;
  res.nranks = nranks;
  bool saw_rank = false;
  bool saw_size = false;
  for (int r = 0; r < nranks; ++r) {
    RankInterp interp(stream, nranks, r, res);
    interp.run();
    saw_rank = saw_rank || !interp.rank_var.empty();
    saw_size = saw_size || !interp.size_var.empty();
    res.traces.push_back(std::move(interp.trace));
  }
  res.has_rank_size = saw_rank && saw_size;
  return res;
}

}  // namespace impacc::trans::analysis
