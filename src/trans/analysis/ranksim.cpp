#include "trans/analysis/ranksim.h"

#include <cctype>
#include <cstdlib>
#include <set>

#include "trans/lexer.h"

namespace impacc::trans::analysis {

// --- integer expression evaluator -------------------------------------------
//
// A tiny recursive-descent parser over optional<long>: every subterm is
// either a known value or unknown, and unknowns flow upward except where
// short-circuit semantics can decide the result without them.

namespace {

struct ExprTok {
  enum Kind { kNum, kIdent, kOp, kEnd, kBad } kind = kEnd;
  long num = 0;
  std::string text;
};

struct ExprLexer {
  const std::string& s;
  std::size_t pos = 0;

  ExprTok next() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    ExprTok t;
    if (pos >= s.size()) return t;
    const char c = s[pos];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      char* end = nullptr;
      t.kind = ExprTok::kNum;
      t.num = std::strtol(s.c_str() + pos, &end, 0);
      // Swallow integer suffixes (u, l, ul, ...).
      std::size_t np = static_cast<std::size_t>(end - s.c_str());
      while (np < s.size() && (s[np] == 'u' || s[np] == 'U' ||
                               s[np] == 'l' || s[np] == 'L')) {
        ++np;
      }
      pos = np;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t e = pos;
      while (e < s.size() && (std::isalnum(static_cast<unsigned char>(s[e])) ||
                              s[e] == '_')) {
        ++e;
      }
      t.kind = ExprTok::kIdent;
      t.text = s.substr(pos, e - pos);
      pos = e;
      return t;
    }
    static const char* kTwoChar[] = {"&&", "||", "==", "!=", "<=",
                                     ">=", "<<", ">>", nullptr};
    for (const char** p = kTwoChar; *p != nullptr; ++p) {
      if (s.compare(pos, 2, *p) == 0) {
        t.kind = ExprTok::kOp;
        t.text = *p;
        pos += 2;
        return t;
      }
    }
    if (std::string("+-*/%<>&|^!~?:()").find(c) != std::string::npos) {
      t.kind = ExprTok::kOp;
      t.text = std::string(1, c);
      ++pos;
      return t;
    }
    t.kind = ExprTok::kBad;
    return t;
  }
};

using Val = std::optional<long>;

struct ExprParser {
  ExprLexer lex;
  const IntEnv& env;
  ExprTok cur;
  bool failed = false;

  ExprParser(const std::string& s, const IntEnv& e) : lex{s}, env(e) {
    cur = lex.next();
  }

  bool eat(const char* op) {
    if (cur.kind == ExprTok::kOp && cur.text == op) {
      cur = lex.next();
      return true;
    }
    return false;
  }

  Val primary() {
    if (cur.kind == ExprTok::kNum) {
      const long v = cur.num;
      cur = lex.next();
      return v;
    }
    if (cur.kind == ExprTok::kIdent) {
      const std::string name = cur.text;
      cur = lex.next();
      if (name == "MPI_PROC_NULL") return kMpiProcNull;
      if (name == "MPI_ANY_SOURCE") return kMpiAnySource;
      if (name == "MPI_ANY_TAG") return kMpiAnyTag;
      auto it = env.find(name);
      if (it != env.end()) return it->second;
      return std::nullopt;
    }
    if (eat("(")) {
      const Val v = ternary();
      if (!eat(")")) failed = true;
      return v;
    }
    failed = true;
    return std::nullopt;
  }

  Val unary() {
    if (eat("-")) {
      const Val v = unary();
      return v ? Val(-*v) : std::nullopt;
    }
    if (eat("+")) return unary();
    if (eat("!")) {
      const Val v = unary();
      return v ? Val(*v == 0 ? 1 : 0) : std::nullopt;
    }
    if (eat("~")) {
      const Val v = unary();
      return v ? Val(~*v) : std::nullopt;
    }
    return primary();
  }

  Val mul() {
    Val v = unary();
    for (;;) {
      if (eat("*")) {
        const Val r = unary();
        v = (v && r) ? Val(*v * *r) : std::nullopt;
      } else if (eat("/")) {
        const Val r = unary();
        v = (v && r && *r != 0) ? Val(*v / *r) : std::nullopt;
      } else if (eat("%")) {
        const Val r = unary();
        v = (v && r && *r != 0) ? Val(*v % *r) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val add() {
    Val v = mul();
    for (;;) {
      if (eat("+")) {
        const Val r = mul();
        v = (v && r) ? Val(*v + *r) : std::nullopt;
      } else if (eat("-")) {
        const Val r = mul();
        v = (v && r) ? Val(*v - *r) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val shift() {
    Val v = add();
    for (;;) {
      if (eat("<<")) {
        const Val r = add();
        v = (v && r) ? Val(*v << *r) : std::nullopt;
      } else if (eat(">>")) {
        const Val r = add();
        v = (v && r) ? Val(*v >> *r) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val rel() {
    Val v = shift();
    for (;;) {
      if (eat("<=")) {
        const Val r = shift();
        v = (v && r) ? Val(*v <= *r ? 1 : 0) : std::nullopt;
      } else if (eat(">=")) {
        const Val r = shift();
        v = (v && r) ? Val(*v >= *r ? 1 : 0) : std::nullopt;
      } else if (eat("<")) {
        const Val r = shift();
        v = (v && r) ? Val(*v < *r ? 1 : 0) : std::nullopt;
      } else if (eat(">")) {
        const Val r = shift();
        v = (v && r) ? Val(*v > *r ? 1 : 0) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val eq() {
    Val v = rel();
    for (;;) {
      if (eat("==")) {
        const Val r = rel();
        v = (v && r) ? Val(*v == *r ? 1 : 0) : std::nullopt;
      } else if (eat("!=")) {
        const Val r = rel();
        v = (v && r) ? Val(*v != *r ? 1 : 0) : std::nullopt;
      } else {
        return v;
      }
    }
  }

  Val bit_and() {
    Val v = eq();
    while (cur.kind == ExprTok::kOp && cur.text == "&") {
      eat("&");
      const Val r = eq();
      v = (v && r) ? Val(*v & *r) : std::nullopt;
    }
    return v;
  }

  Val bit_xor() {
    Val v = bit_and();
    while (eat("^")) {
      const Val r = bit_and();
      v = (v && r) ? Val(*v ^ *r) : std::nullopt;
    }
    return v;
  }

  Val bit_or() {
    Val v = bit_xor();
    while (cur.kind == ExprTok::kOp && cur.text == "|") {
      eat("|");
      const Val r = bit_xor();
      v = (v && r) ? Val(*v | *r) : std::nullopt;
    }
    return v;
  }

  Val log_and() {
    Val v = bit_or();
    while (eat("&&")) {
      const Val r = bit_or();
      if (v && *v == 0) {
        v = 0;  // short-circuit: unknown right side is dead
      } else if (r && *r == 0) {
        v = 0;
      } else if (v && r) {
        v = 1;
      } else {
        v = std::nullopt;
      }
    }
    return v;
  }

  Val log_or() {
    Val v = log_and();
    while (eat("||")) {
      const Val r = log_and();
      if (v && *v != 0) {
        v = 1;
      } else if (r && *r != 0) {
        v = 1;
      } else if (v && r) {
        v = 0;
      } else {
        v = std::nullopt;
      }
    }
    return v;
  }

  Val ternary() {
    Val c = log_or();
    if (!eat("?")) return c;
    const Val a = ternary();
    if (!eat(":")) {
      failed = true;
      return std::nullopt;
    }
    const Val b = ternary();
    if (c) return *c != 0 ? a : b;
    if (a && b && *a == *b) return a;  // both arms agree; cond irrelevant
    return std::nullopt;
  }

  Val run() {
    const Val v = ternary();
    if (failed || cur.kind != ExprTok::kEnd) return std::nullopt;
    return v;
  }
};

}  // namespace

std::optional<long> eval_int_expr(const std::string& expr,
                                  const IntEnv& env) {
  if (trim(expr).empty()) return std::nullopt;
  ExprParser p(expr, env);
  return p.run();
}

// --- loop-header parsing ----------------------------------------------------

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_plain_ident(const std::string& w) {
  if (w.empty() || std::isdigit(static_cast<unsigned char>(w[0]))) {
    return false;
  }
  for (const char c : w) {
    if (!ident_char(c)) return false;
  }
  return true;
}

/// One parsed loop-header piece: `var = expr` shape, or a step operator
/// rewritten into one (`i++` becomes `i + 1`).
struct LoopBinding {
  bool present = false;  // the header piece is nonempty
  bool ok = false;       // ... and parsed into var/expr
  std::string var;
  std::string expr;
};

std::size_t lead_ident(const std::string& t, std::string* word) {
  std::size_t i = 0;
  while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i]))) {
    ++i;
  }
  std::size_t j = i;
  while (j < t.size() && ident_char(t[j])) ++j;
  *word = t.substr(i, j - i);
  return j;
}

/// `i = 0` (the for-init, type keywords already stripped).
LoopBinding parse_loop_assign(const std::string& text) {
  LoopBinding b;
  const std::string t = trim(text);
  if (t.empty()) return b;
  b.present = true;
  std::string w;
  std::size_t j = lead_ident(t, &w);
  if (!is_plain_ident(w)) return b;
  while (j < t.size() && std::isspace(static_cast<unsigned char>(t[j]))) {
    ++j;
  }
  if (j < t.size() && t[j] == '=' &&
      (j + 1 >= t.size() || t[j + 1] != '=')) {
    b.var = w;
    b.expr = trim(t.substr(j + 1));
    b.ok = !b.expr.empty();
  }
  return b;
}

/// `i++` / `++i` / `i += 2` / `i = i * 2` (the for-increment).
LoopBinding parse_loop_step(const std::string& text) {
  LoopBinding b;
  const std::string t = trim(text);
  if (t.empty()) return b;
  b.present = true;
  if (t.size() > 2 &&
      (t.compare(0, 2, "++") == 0 || t.compare(0, 2, "--") == 0)) {
    const std::string w = trim(t.substr(2));
    if (is_plain_ident(w)) {
      b.var = w;
      b.expr = w + (t[0] == '+' ? " + 1" : " - 1");
      b.ok = true;
    }
    return b;
  }
  std::string w;
  std::size_t j = lead_ident(t, &w);
  if (!is_plain_ident(w)) return b;
  while (j < t.size() && std::isspace(static_cast<unsigned char>(t[j]))) {
    ++j;
  }
  const std::string rest = trim(t.substr(j));
  if (rest == "++") {
    b.var = w;
    b.expr = w + " + 1";
    b.ok = true;
  } else if (rest == "--") {
    b.var = w;
    b.expr = w + " - 1";
    b.ok = true;
  } else if (rest.size() >= 2 && rest[1] == '=' &&
             (rest[0] == '+' || rest[0] == '-' || rest[0] == '*')) {
    const std::string rhs = trim(rest.substr(2));
    if (!rhs.empty()) {
      b.var = w;
      b.expr = w + " " + rest[0] + " (" + rhs + ")";
      b.ok = true;
    }
  } else if (!rest.empty() && rest[0] == '=' &&
             (rest.size() < 2 || rest[1] != '=')) {
    const std::string rhs = trim(rest.substr(1));
    if (!rhs.empty()) {
      b.var = w;
      b.expr = rhs;
      b.ok = true;
    }
  }
  return b;
}

std::string strip_spaces(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

}  // namespace

// --- per-rank interpretation ------------------------------------------------

namespace {

/// MPI calls that neither move data nor order ranks; they are invisible
/// to the communication model.
bool is_neutral_mpi(const std::string& n) {
  static const char* kNeutral[] = {
      "MPI_Init",        "MPI_Init_thread",  "MPI_Finalize",
      "MPI_Initialized", "MPI_Finalized",    "MPI_Abort",
      "MPI_Wtime",       "MPI_Wtick",        "MPI_Get_processor_name",
      "MPI_Comm_dup",    "MPI_Comm_free",    "MPI_Type_commit",
      "MPI_Type_free",   "MPI_Type_vector",  "MPI_Type_contiguous",
      "MPI_Get_count",   "MPI_Request_free", "MPI_Error_string",
      "MPI_Type_create_subarray",            nullptr};
  for (const char** p = kNeutral; *p != nullptr; ++p) {
    if (n == *p) return true;
  }
  return false;
}

bool is_collective_mpi(const std::string& n) {
  static const char* kColl[] = {
      "MPI_Barrier", "MPI_Bcast",     "MPI_Reduce",
      "MPI_Allreduce", "MPI_Scan",    "MPI_Reduce_scatter_block",
      "MPI_Gather", "MPI_Scatter",    "MPI_Allgather",
      "MPI_Alltoall", nullptr};
  for (const char** p = kColl; *p != nullptr; ++p) {
    if (n == *p) return true;
  }
  return false;
}

/// Data clauses on compute constructs / data regions, mapped to the
/// direction of the device-copy access they imply.
bool clause_reads_device(const std::string& name) {
  return name == "copyin" || name == "present" || name == "copyout" ||
         name == "copy" || name == "create" || name == "use_device";
}

bool clause_writes_device(const std::string& name) {
  return name == "copyout" || name == "create" || name == "copy";
}

/// Rank-independent structure of the stream, computed once and shared by
/// every per-rank interpretation: enter/exit pairing for loops and
/// function bodies, the call graph, and the (transitive) set of variables
/// each loop or function may mutate — the set widening must invalidate.
struct StreamIndex {
  std::map<std::size_t, std::size_t> exit_of;  // loop/func enter -> exit
  struct FuncBody {
    std::size_t begin = 0;  // first event inside the body
    std::size_t end = 0;    // the kFuncExit event
  };
  std::map<std::string, FuncBody> funcs;  // first definition wins
  std::set<std::string> called;           // symbols with a kCall site
  std::map<std::size_t, std::set<std::string>> loop_touched;
  std::map<std::string, std::set<std::string>> func_touched;
};

StreamIndex build_index(const DirectiveStream& stream) {
  StreamIndex idx;
  std::vector<std::size_t> loop_stack;
  std::vector<std::size_t> func_stack;
  for (std::size_t i = 0; i < stream.events.size(); ++i) {
    const Event& ev = stream.events[i];
    switch (ev.kind) {
      case EventKind::kLoopEnter:
        loop_stack.push_back(i);
        break;
      case EventKind::kLoopExit:
        if (!loop_stack.empty()) {
          idx.exit_of[loop_stack.back()] = i;
          loop_stack.pop_back();
        }
        break;
      case EventKind::kFuncEnter:
        func_stack.push_back(i);
        break;
      case EventKind::kFuncExit:
        if (!func_stack.empty()) {
          const std::size_t enter = func_stack.back();
          func_stack.pop_back();
          idx.exit_of[enter] = i;
          const std::string& name = stream.events[enter].symbol;
          if (!name.empty() && idx.funcs.find(name) == idx.funcs.end()) {
            idx.funcs[name] = {enter + 1, i};
          }
        }
        break;
      case EventKind::kCall:
        idx.called.insert(ev.symbol);
        break;
      default:
        break;
    }
  }

  // Variables directly mutated in an event range, plus the calls made
  // there (resolved transitively below).
  const auto touched_direct = [&stream](std::size_t b, std::size_t e,
                                        std::set<std::string>* vars,
                                        std::set<std::string>* callees) {
    for (std::size_t i = b; i < e && i < stream.events.size(); ++i) {
      const Event& ev = stream.events[i];
      switch (ev.kind) {
        case EventKind::kAssign:
          if (!ev.assign_var.empty()) vars->insert(ev.assign_var);
          break;
        case EventKind::kLoopEnter: {
          const LoopBinding init = parse_loop_assign(ev.loop_init);
          if (init.ok) vars->insert(init.var);
          const LoopBinding step = parse_loop_step(ev.loop_inc);
          if (step.ok) vars->insert(step.var);
          break;
        }
        case EventKind::kCall:
          callees->insert(ev.symbol);
          break;
        case EventKind::kMpiCall:
        case EventKind::kDirective: {
          const MpiCall* c = nullptr;
          if (ev.kind == EventKind::kMpiCall) {
            c = &ev.call;
          } else if (ev.directive.kind == DirectiveKind::kMpi &&
                     ev.call.valid) {
            c = &ev.call;
          }
          if (c != nullptr &&
              (c->name == "MPI_Comm_rank" || c->name == "MPI_Comm_size") &&
              c->args.size() >= 2) {
            const std::string var = base_identifier(c->args[1]);
            if (!var.empty()) vars->insert(var);
          }
          break;
        }
        default:
          break;
      }
    }
  };

  std::map<std::string, std::set<std::string>> callees_of;
  for (const auto& [name, body] : idx.funcs) {
    touched_direct(body.begin, body.end, &idx.func_touched[name],
                   &callees_of[name]);
  }
  // Transitive closure over the call graph (monotone; terminates).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, callees] : callees_of) {
      for (const auto& cn : callees) {
        const auto it = idx.func_touched.find(cn);
        if (it == idx.func_touched.end()) continue;
        for (const auto& v : it->second) {
          if (idx.func_touched[name].insert(v).second) changed = true;
        }
      }
    }
  }
  for (const auto& [enter, exit] : idx.exit_of) {
    if (stream.events[enter].kind != EventKind::kLoopEnter) continue;
    std::set<std::string> vars;
    std::set<std::string> callees;
    touched_direct(enter, exit, &vars, &callees);
    for (const auto& cn : callees) {
      const auto it = idx.func_touched.find(cn);
      if (it != idx.func_touched.end()) {
        vars.insert(it->second.begin(), it->second.end());
      }
    }
    idx.loop_touched[enter] = std::move(vars);
  }
  return idx;
}

bool clause_has_flag(const Clause* c, const char* flag) {
  if (c == nullptr) return false;
  for (const auto& a : c->args) {
    if (a == flag) return true;
  }
  return false;
}

/// Argument index of (count, datatype) for the collectives whose payload
/// the perf model prices; {-1, -1} when the routine has no single payload
/// (Barrier) or the model does not track it.
std::pair<int, int> collective_count_args(const std::string& name) {
  if (name == "MPI_Bcast") return {1, 2};
  if (name == "MPI_Reduce" || name == "MPI_Allreduce" ||
      name == "MPI_Scan" || name == "MPI_Exscan" ||
      name == "MPI_Reduce_scatter_block") {
    return {2, 3};
  }
  if (name == "MPI_Allgather" || name == "MPI_Gather" ||
      name == "MPI_Scatter" || name == "MPI_Alltoall") {
    return {1, 2};
  }
  return {-1, -1};
}

struct RankInterp {
  const DirectiveStream& stream;
  const StreamIndex& idx;
  const SimOptions& opts;
  int nranks;
  int rank;
  RankSimResult& res;

  RankTrace trace;
  IntEnv env;
  std::vector<int> guard_tri;  // 1 taken, 0 dead, -1 unknown
  std::map<std::string, long> extents;
  std::string rank_var;
  std::string size_var;

  struct LoopCtx {
    int line = 0;
    int iter = -1;  // -1 = widened body
  };
  std::vector<LoopCtx> loops;
  std::vector<std::string> call_stack;
  std::vector<const Directive*> region_stack;
  int widen_depth = 0;

  RankInterp(const DirectiveStream& s, const StreamIndex& ix,
             const SimOptions& o, int n, int r, RankSimResult& out)
      : stream(s), idx(ix), opts(o), nranks(n), rank(r), res(out) {
    trace.rank = r;
  }

  bool dead() const {
    for (const int t : guard_tri) {
      if (t == 0) return true;
    }
    return false;
  }

  bool unknown_guard() const {
    for (const int t : guard_tri) {
      if (t == -1) return true;
    }
    return false;
  }

  /// Execution of the current statement is uncertain: an enclosing guard
  /// is undecidable, or we are replaying a widened loop body.
  bool approx() const { return widen_depth > 0 || unknown_guard(); }

  void push_op(RankOp op) {
    op.guarded_unknown = approx();
    if (!loops.empty()) {
      op.loop_depth = static_cast<int>(loops.size());
      op.loop_line = loops.back().line;
      op.loop_iter = loops.back().iter;
    }
    if (op.guarded_unknown &&
        (op.kind == RankOpKind::kSend || op.kind == RankOpKind::kRecv ||
         op.kind == RankOpKind::kCollective ||
         op.kind == RankOpKind::kAccWait ||
         op.kind == RankOpKind::kHostWait)) {
      res.comm_exact = false;
    }
    trace.ops.push_back(std::move(op));
  }

  /// Evaluated element count of one subarray spec, when every dimension
  /// resolves; nullopt otherwise.
  std::optional<long> subarray_elems(const SubArray& sa) {
    if (sa.dims.empty()) return std::nullopt;
    long total = 1;
    for (const auto& dim : sa.dims) {
      const auto v = eval_int_expr(dim.count, env);
      if (!v.has_value() || *v < 0) return std::nullopt;
      total *= *v;
    }
    return total;
  }

  void record_extents(const Directive& d) {
    for (const auto& c : d.clauses) {
      if (c.name != "copyin" && c.name != "copyout" && c.name != "copy" &&
          c.name != "create") {
        continue;
      }
      for (const auto& sa : c.subarrays) {
        const auto total = subarray_elems(sa);
        if (total.has_value()) extents[sa.var] = *total;
      }
    }
  }

  /// Emit one kDataMove per transferring clause of a data construct
  /// (`to_device` selects the entry clauses copyin/copy vs. the exit
  /// clauses copyout/copy). Data moves carry no accesses and never sit
  /// on a queue, so every correctness analysis sees straight through
  /// them; only the perf model prices them.
  void push_data_moves(const Directive& d, int line, int column,
                       bool to_device) {
    for (const auto& c : d.clauses) {
      const bool entry_move = c.name == "copyin" || c.name == "copy";
      const bool exit_move = c.name == "copyout" || c.name == "copy";
      if (to_device ? !entry_move : !exit_move) continue;
      for (const auto& sa : c.subarrays) {
        RankOp op;
        op.kind = RankOpKind::kDataMove;
        op.line = line;
        op.column = column;
        op.buffer = sa.var;
        op.count = subarray_elems(sa);
        op.move_to_device = to_device;
        push_op(std::move(op));
      }
    }
  }

  std::vector<BufferAccess> clause_accesses(const Directive& d) {
    std::vector<BufferAccess> out;
    for (const auto& c : d.clauses) {
      if (!clause_reads_device(c.name) && !clause_writes_device(c.name)) {
        continue;
      }
      for (const auto& sa : c.subarrays) {
        out.push_back({sa.var, clause_writes_device(c.name),
                       subarray_elems(sa)});
      }
    }
    return out;
  }

  void handle_p2p(const MpiCall& call, const Directive* d, int line,
                  int column) {
    const bool send = call.name == "MPI_Send" || call.name == "MPI_Ssend" ||
                      call.name == "MPI_Isend";
    const bool nonblocking = is_nonblocking_p2p(call.name);
    if (call.args.size() < 6) {
      res.comm_exact = false;
      return;
    }
    RankOp op;
    op.kind = send ? RankOpKind::kSend : RankOpKind::kRecv;
    op.name = call.name;
    op.line = line;
    op.column = column;
    op.buffer = base_identifier(call.args[0]);
    op.count_text = trim(call.args[1]);
    op.count = eval_int_expr(call.args[1], env);
    op.dtype = trim(call.args[2]);
    op.peer = eval_int_expr(call.args[3], env);
    op.tag = eval_int_expr(call.args[4], env);
    op.comm = trim(call.args[5]);
    if (nonblocking && !call.args.empty()) {
      op.request = base_identifier(call.args.back());
      op.request_expr = strip_spaces(call.args.back());
    }
    if (d != nullptr) {
      if (const Clause* as = d->find("async")) {
        op.has_queue = true;
        op.queue = as->args.empty() ? std::string() : as->args[0];
      }
      op.dev_send = clause_has_flag(d->find("sendbuf"), "device");
      op.dev_recv = clause_has_flag(d->find("recvbuf"), "device");
      if (const Clause* ch = d->find("chunk")) {
        op.has_chunk_clause = true;
        if (!ch->args.empty()) {
          op.chunk_bytes_clause = eval_int_expr(ch->args[0], env);
        }
      }
    }
    op.blocking = !nonblocking && !op.has_queue;
    auto it = extents.find(op.buffer);
    if (it != extents.end()) op.extent = it->second;
    op.accesses.push_back({op.buffer, /*write=*/!send, std::nullopt});

    if (op.peer.has_value() && *op.peer == kMpiProcNull) return;  // no-op
    if (!op.peer.has_value()) res.comm_exact = false;
    if (!op.tag.has_value()) res.comm_exact = false;
    push_op(std::move(op));
  }

  void handle_collective(const MpiCall& call, const Directive* d, int line,
                         int column) {
    RankOp op;
    op.kind = RankOpKind::kCollective;
    op.name = call.name;
    op.line = line;
    op.column = column;
    if (!call.args.empty()) op.comm = trim(call.args.back());
    if (const auto roles = mpi_buffer_roles(call.name)) {
      if (roles->send_arg >= 0 &&
          roles->send_arg < static_cast<int>(call.args.size())) {
        op.accesses.push_back(
            {base_identifier(call.args[roles->send_arg]), false,
             std::nullopt});
      }
      if (roles->recv_arg >= 0 &&
          roles->recv_arg < static_cast<int>(call.args.size())) {
        op.accesses.push_back(
            {base_identifier(call.args[roles->recv_arg]), true,
             std::nullopt});
      }
    }
    const auto [count_arg, dtype_arg] = collective_count_args(call.name);
    if (count_arg >= 0 && count_arg < static_cast<int>(call.args.size())) {
      op.count_text = trim(call.args[count_arg]);
      op.count = eval_int_expr(call.args[count_arg], env);
    }
    if (dtype_arg >= 0 && dtype_arg < static_cast<int>(call.args.size())) {
      op.dtype = trim(call.args[dtype_arg]);
    }
    if (d != nullptr) {
      if (const Clause* as = d->find("async")) {
        op.has_queue = true;
        op.queue = as->args.empty() ? std::string() : as->args[0];
      }
      op.forced_flat = d->find("flat") != nullptr;
      op.dev_send = clause_has_flag(d->find("sendbuf"), "device");
      op.dev_recv = clause_has_flag(d->find("recvbuf"), "device");
    }
    op.blocking = !op.has_queue;
    push_op(std::move(op));
  }

  void handle_call(const MpiCall& call, const Directive* d, int line,
                   int column) {
    const std::string& n = call.name;
    if (n == "MPI_Comm_rank" || n == "MPI_Comm_size") {
      if (call.args.size() >= 2) {
        const std::string var = base_identifier(call.args[1]);
        if (!var.empty()) {
          // Binding under a dead guard never runs; under an unknown
          // guard or a widened loop the value is unreliable, so drop it.
          if (approx()) {
            env.erase(var);
          } else {
            env[var] = n == "MPI_Comm_rank" ? rank : nranks;
            (n == "MPI_Comm_rank" ? rank_var : size_var) = var;
          }
        }
      }
      return;
    }
    if (n == "MPI_Wait" || n == "MPI_Waitall" || n == "MPI_Waitany") {
      RankOp op;
      op.kind = RankOpKind::kHostWait;
      op.name = n;
      op.line = line;
      op.column = column;
      const int req_arg = n == "MPI_Wait" ? 0 : 1;
      if (req_arg < static_cast<int>(call.args.size())) {
        op.request = base_identifier(call.args[req_arg]);
      }
      push_op(std::move(op));
      return;
    }
    if (n == "MPI_Send" || n == "MPI_Ssend" || n == "MPI_Isend" ||
        n == "MPI_Recv" || n == "MPI_Irecv") {
      handle_p2p(call, d, line, column);
      return;
    }
    if (is_collective_mpi(n)) {
      handle_collective(call, d, line, column);
      return;
    }
    if (is_neutral_mpi(n)) return;
    // An MPI routine the model does not understand may communicate;
    // refuse to reason exactly about this program.
    res.comm_exact = false;
  }

  void handle_directive(const Event& ev) {
    const Directive& d = ev.directive;
    const Clause* as = d.find("async");
    switch (d.kind) {
      case DirectiveKind::kMpi:
        if (ev.call.valid) handle_call(ev.call, &d, ev.line, ev.column);
        break;
      case DirectiveKind::kWait: {
        RankOp op;
        op.kind = RankOpKind::kAccWait;
        op.line = ev.line;
        op.column = ev.column;
        const Clause* w = d.find("wait");
        if (w == nullptr || w->args.empty()) {
          op.wait_all = true;
        } else {
          op.wait_queues = w->args;
        }
        push_op(std::move(op));
        break;
      }
      case DirectiveKind::kEnterData:
        record_extents(d);
        push_data_moves(d, ev.line, ev.column, /*to_device=*/true);
        break;
      case DirectiveKind::kExitData:
        push_data_moves(d, ev.line, ev.column, /*to_device=*/false);
        break;
      case DirectiveKind::kUpdate: {
        RankOp op;
        op.line = ev.line;
        op.column = ev.column;
        op.is_update = true;
        for (const auto& c : d.clauses) {
          if (c.name == "device") {
            for (const auto& sa : c.subarrays) {
              op.accesses.push_back({sa.var, true, subarray_elems(sa)});
            }
          } else if (c.name == "self" || c.name == "host") {
            for (const auto& sa : c.subarrays) {
              op.accesses.push_back({sa.var, false, subarray_elems(sa)});
            }
          }
        }
        if (as != nullptr) {
          op.kind = RankOpKind::kQueueOp;
          op.has_queue = true;
          op.queue = as->args.empty() ? std::string() : as->args[0];
        } else {
          op.kind = RankOpKind::kHostAccess;
        }
        if (const Clause* w = d.find("wait")) op.wait_clause = w->args;
        push_op(std::move(op));
        break;
      }
      case DirectiveKind::kParallelLoop: {
        if (as == nullptr) break;  // synchronous compute completes inline
        RankOp op;
        op.kind = RankOpKind::kQueueOp;
        op.line = ev.line;
        op.column = ev.column;
        op.has_queue = true;
        op.queue = as->args.empty() ? std::string() : as->args[0];
        op.accesses = clause_accesses(d);
        if (const Clause* w = d.find("wait")) op.wait_clause = w->args;
        push_op(std::move(op));
        break;
      }
      default:
        break;
    }
  }

  /// Matching exit index for the loop/func enter at `i`, clamped to `e`
  /// (an unmatched enter runs to the end of the enclosing range).
  std::size_t exit_at(std::size_t i, std::size_t e) const {
    const auto it = idx.exit_of.find(i);
    if (it != idx.exit_of.end() && it->second <= e) return it->second;
    return e;
  }

  void erase_loop_touched(std::size_t enter) {
    const auto it = idx.loop_touched.find(enter);
    if (it == idx.loop_touched.end()) return;
    for (const auto& v : it->second) env.erase(v);
  }

  /// A loop whose trip count resolves within the unroll budget replays
  /// exactly, the induction variable bound per iteration. Anything else
  /// — unresolvable bounds, budget exceeded, an already-approximate
  /// context — rolls back whatever the attempt emitted and *widens*: the
  /// body contributes once, every variable the loop can mutate becomes
  /// unknown, and ops inside are marked uncertain (which poisons
  /// comm_exact for communication, the pre-unrolling behavior).
  void exec_loop(std::size_t enter, std::size_t exit) {
    const Event& ev = stream.events[enter];
    const std::size_t body_b = enter + 1;
    const std::size_t body_e = exit;

    const LoopBinding init = parse_loop_assign(ev.loop_init);
    const LoopBinding step = parse_loop_step(ev.loop_inc);
    bool attempt = opts.unroll > 0 && !trim(ev.loop_cond).empty() &&
                   (!init.present || init.ok) &&
                   (!step.present || step.ok) && !approx();

    const IntEnv env0 = env;
    const auto extents0 = extents;
    const std::size_t ops0 = trace.ops.size();
    const bool exact0 = res.comm_exact;
    const bool widened0 = res.widened_loops;
    const std::string rank_var0 = rank_var;
    const std::string size_var0 = size_var;

    bool exact = false;
    if (attempt && init.ok) {
      const auto v = eval_int_expr(init.expr, env);
      if (v.has_value()) {
        env[init.var] = *v;
      } else {
        attempt = false;
      }
    }
    if (attempt) {
      loops.push_back({ev.line, 0});
      int iter = 0;
      for (;;) {
        const auto c = eval_int_expr(ev.loop_cond, env);
        if (!c.has_value()) break;  // condition unresolvable -> widen
        if (*c == 0) {
          exact = true;  // terminated within the budget
          break;
        }
        if (iter >= opts.unroll) break;  // trip count exceeds budget
        loops.back().iter = iter;
        exec_range(body_b, body_e);
        if (step.ok) {
          const auto v = eval_int_expr(step.expr, env);
          if (!v.has_value()) break;
          env[step.var] = *v;
        }
        ++iter;
      }
      loops.pop_back();
    }
    if (exact) return;

    // Widen: discard the partial attempt and replay the body once with
    // every loop-mutated variable unknown.
    env = env0;
    extents = extents0;
    trace.ops.resize(ops0);
    res.comm_exact = exact0;
    res.widened_loops = widened0;
    rank_var = rank_var0;
    size_var = size_var0;
    res.widened_loops = true;
    erase_loop_touched(enter);
    ++widen_depth;
    loops.push_back({ev.line, -1});
    exec_range(body_b, body_e);
    loops.pop_back();
    --widen_depth;
    erase_loop_touched(enter);
  }

  /// Inline a statement-level call to a user function defined in this
  /// file. The callee runs on the caller's environment; afterwards the
  /// caller's bindings are restored minus anything the callee (or its
  /// callees) may have reassigned. Recursion and over-deep chains are
  /// not modeled — they poison exactness.
  void exec_call(const Event& ev) {
    const auto it = idx.funcs.find(ev.symbol);
    if (it == idx.funcs.end()) return;  // extern: invisible, as before
    for (const auto& f : call_stack) {
      if (f == ev.symbol) {
        res.comm_exact = false;
        return;
      }
    }
    if (static_cast<int>(call_stack.size()) >= opts.inline_depth) {
      res.comm_exact = false;
      return;
    }
    call_stack.push_back(ev.symbol);
    const IntEnv env0 = env;
    exec_range(it->second.begin, it->second.end);
    call_stack.pop_back();
    IntEnv restored = env0;
    const auto t = idx.func_touched.find(ev.symbol);
    if (t != idx.func_touched.end()) {
      for (const auto& v : t->second) restored.erase(v);
    }
    env = std::move(restored);
  }

  void exec_range(std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end && i < stream.events.size()) {
      const Event& ev = stream.events[i];
      switch (ev.kind) {
        case EventKind::kGuardEnter: {
          int tri = -1;
          if (!dead()) {
            const auto v = eval_int_expr(ev.guard_cond, env);
            if (v.has_value()) tri = *v != 0 ? 1 : 0;
          } else {
            tri = 0;  // inside a dead branch everything is dead
          }
          guard_tri.push_back(tri);
          break;
        }
        case EventKind::kGuardExit:
          if (!guard_tri.empty()) guard_tri.pop_back();
          break;
        case EventKind::kLoopEnter: {
          const std::size_t x = exit_at(i, end);
          if (!dead()) exec_loop(i, x);
          i = x + 1;
          continue;
        }
        case EventKind::kFuncEnter: {
          // A function that is called somewhere runs at its call sites;
          // skip the definition. Never-called functions are interpreted
          // in place (single-function files behave as before).
          if (idx.called.count(ev.symbol) != 0) {
            i = exit_at(i, end) + 1;
            continue;
          }
          break;
        }
        case EventKind::kCall:
          if (!dead()) exec_call(ev);
          break;
        case EventKind::kAssign:
          if (dead()) break;
          if (approx() || ev.assign_expr.empty()) {
            env.erase(ev.assign_var);
          } else {
            const auto v = eval_int_expr(ev.assign_expr, env);
            if (v.has_value()) {
              env[ev.assign_var] = *v;
            } else {
              env.erase(ev.assign_var);
            }
          }
          break;
        case EventKind::kMpiCall:
          if (!dead()) handle_call(ev.call, nullptr, ev.line, ev.column);
          break;
        case EventKind::kDirective:
          if (!dead()) handle_directive(ev);
          break;
        case EventKind::kRegionEnter:
          if (!dead()) {
            record_extents(ev.directive);
            if (ev.directive.kind == DirectiveKind::kData) {
              push_data_moves(ev.directive, ev.line, ev.column,
                              /*to_device=*/true);
            }
          }
          region_stack.push_back(&ev.directive);
          break;
        case EventKind::kRegionExit:
          if (!region_stack.empty()) {
            const Directive* rd = region_stack.back();
            region_stack.pop_back();
            if (!dead() && rd->kind == DirectiveKind::kData) {
              push_data_moves(*rd, ev.line, ev.column, /*to_device=*/false);
            }
          }
          break;
        case EventKind::kLoopExit:
        case EventKind::kFuncExit:
          break;
      }
      ++i;
    }
  }

  void run() { exec_range(0, stream.events.size()); }
};

}  // namespace

RankSimResult simulate_ranks(const DirectiveStream& stream, int nranks,
                             const SimOptions& options) {
  RankSimResult res;
  res.nranks = nranks;
  const StreamIndex idx = build_index(stream);
  bool saw_rank = false;
  bool saw_size = false;
  for (int r = 0; r < nranks; ++r) {
    RankInterp interp(stream, idx, options, nranks, r, res);
    interp.run();
    saw_rank = saw_rank || !interp.rank_var.empty();
    saw_size = saw_size || !interp.size_var.empty();
    res.traces.push_back(std::move(interp.trace));
  }
  res.has_rank_size = saw_rank && saw_size;
  return res;
}

RankSimResult simulate_ranks(const DirectiveStream& stream, int nranks) {
  return simulate_ranks(stream, nranks, SimOptions{});
}

}  // namespace impacc::trans::analysis
