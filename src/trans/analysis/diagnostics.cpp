#include "trans/analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace impacc::trans::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

const RuleInfo* rule_catalog() {
  static const RuleInfo kRules[] = {
      {"IMP001", Severity::kError,
       "enter data allocates a buffer that is already present (double "
       "copyin/create leaks a device reference)"},
      {"IMP002", Severity::kError,
       "exit data / delete / present() names a buffer that is not present "
       "on the device"},
      {"IMP003", Severity::kError,
       "update device/self on a buffer that is not present on the device"},
      {"IMP004", Severity::kError,
       "host_data use_device on a buffer that is not present on the device"},
      {"IMP005", Severity::kError,
       "acc mpi sendbuf(device)/recvbuf(device) on a buffer that is not "
       "present on the device"},
      {"IMP006", Severity::kWarning,
       "work enqueued on an async queue that is never waited on"},
      {"IMP007", Severity::kWarning,
       "wait names an async queue that nothing was enqueued to"},
      {"IMP008", Severity::kError,
       "buffer handed to the runtime as readonly is mutated by a later "
       "receive"},
      {"IMP009", Severity::kWarning,
       "nonblocking MPI_Isend/MPI_Irecv whose request is never completed on "
       "the host path"},
      {"IMP010", Severity::kError,
       "send and receive buffers of one acc mpi directive alias the same "
       "object"},
      {"IMP011", Severity::kWarning,
       "enter data buffer is never released by a matching exit data"},
      {"IMP012", Severity::kError,
       "malformed or unsupported directive"},
      {"IMP013", Severity::kError,
       "blocking communication forms a wait-for cycle across ranks "
       "(deadlock)"},
      {"IMP014", Severity::kError,
       "send is never matched by a receive on the destination rank"},
      {"IMP015", Severity::kError,
       "receive is never matched by a send on the source rank"},
      {"IMP016", Severity::kError,
       "ranks disagree on the order of collective operations"},
      {"IMP017", Severity::kError,
       "matched send/receive disagree on element count or device "
       "extent"},
      {"IMP018", Severity::kError,
       "matched send/receive use incompatible MPI datatypes"},
      {"IMP019", Severity::kError,
       "host accesses a buffer while an asynchronous device operation "
       "may still be using it"},
      {"IMP020", Severity::kWarning,
       "one buffer is touched on two async queues with no ordering edge "
       "between them"},
      {"IMP021", Severity::kError,
       "buffer with a pending nonblocking operation is reused before the "
       "completing wait"},
      {"IMP022", Severity::kWarning,
       "request handle is overwritten by a new nonblocking post while "
       "still pending (handle leak)"},
      {"IMP023", Severity::kError,
       "collective under an iteration-dependent guard makes ranks "
       "diverge across loop iterations"},
      {"IMP024", Severity::kWarning,
       "user p2p tag collides with the tag window reserved for the "
       "runtime's hierarchical collectives (>= 1<<24)"},
      {"IMP030", Severity::kWarning,
       "blocking send/recv pair of independent buffers that a nonblocking "
       "rewrite would overlap"},
      {"IMP031", Severity::kWarning,
       "update moves a full array although the adjacent communication "
       "covers only a subarray"},
      {"IMP032", Severity::kWarning,
       "copyin/copyout repeated identically across loop iterations is "
       "hoistable out of the loop"},
      {"IMP033", Severity::kWarning,
       "hand-rolled point-to-point exchange matches a collective shape "
       "the hierarchical path serves with fewer fabric crossings"},
      {"IMP034", Severity::kWarning,
       "user-forced flat collective above the 64 KiB Rabenseifner "
       "crossover where the hierarchical schedule wins"},
      {"IMP035", Severity::kWarning,
       "independent sends serialized on one async queue that distinct "
       "queues would overlap"},
      {"IMP036", Severity::kWarning,
       "internode device transfer with pipelining disabled or a pessimal "
       "chunk size"},
      {"IMP037", Severity::kWarning,
       "wait placed earlier than the first true use of the in-flight "
       "data (shrinkable overlap window)"},
      {nullptr, Severity::kError, nullptr},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& code) {
  for (const RuleInfo* r = rule_catalog(); r->code != nullptr; ++r) {
    if (code == r->code) return r;
  }
  return nullptr;
}

Diagnostic make_diagnostic(const std::string& code, int line, int column,
                           std::string message, std::string fixit) {
  Diagnostic d;
  d.code = code;
  const RuleInfo* r = find_rule(code);
  d.severity = r != nullptr ? r->default_severity : Severity::kError;
  d.line = line;
  d.column = column;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

std::string render_text(const Diagnostic& d, const std::string& file) {
  std::string out = file + ":" + std::to_string(d.line) + ":" +
                    std::to_string(d.column) + ": " +
                    severity_name(d.severity) + ": " + d.message + " [" +
                    d.code + "]";
  if (d.occurrences > 1) {
    out += " (x" + std::to_string(d.occurrences) + ")";
  }
  if (!d.fixit.empty()) out += "\n  fix-it: " + d.fixit;
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Shortest round-trippable rendering of a double for JSON output.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string diag_json(const Diagnostic& d) {
  std::string out = "{";
  out += "\"code\": \"" + json_escape(d.code) + "\", ";
  out += "\"severity\": \"" + std::string(severity_name(d.severity)) +
         "\", ";
  out += "\"line\": " + std::to_string(d.line) + ", ";
  out += "\"column\": " + std::to_string(d.column) + ", ";
  out += "\"message\": \"" + json_escape(d.message) + "\"";
  if (!d.fixit.empty()) {
    out += ", \"fixit\": \"" + json_escape(d.fixit) + "\"";
  }
  if (d.occurrences > 1) {
    out += ", \"occurrences\": " + std::to_string(d.occurrences);
  }
  if (d.seconds_saved >= 0) {
    out += ", \"estimated_seconds_saved\": " + fmt_double(d.seconds_saved);
  }
  out += "}";
  return out;
}

/// The per-file predicted_makespan block (--perf), shared by JSON and
/// SARIF property bags.
std::string makespan_json(const FileDiagnostics& f) {
  return "{\"seconds\": " + fmt_double(f.predicted_makespan) +
         ", \"exact\": " + (f.perf_exact ? "true" : "false") +
         ", \"model\": \"" + json_escape(f.perf_system) +
         "\", \"ranks\": " + std::to_string(f.perf_ranks) + "}";
}

}  // namespace

std::string to_json(const std::vector<FileDiagnostics>& files) {
  std::string out = "{\n  \"tool\": \"impacc-lint\",\n  \"version\": 1,\n";
  out += "  \"files\": [\n";
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    out += "    {\"file\": \"" + json_escape(files[fi].file) + "\", ";
    if (files[fi].has_perf) {
      out += "\"predicted_makespan\": " + makespan_json(files[fi]) + ", ";
    }
    out += "\"diagnostics\": [";
    const auto& ds = files[fi].diagnostics;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      out += "\n      " + diag_json(ds[i]);
      if (i + 1 < ds.size()) out += ",";
    }
    if (!ds.empty()) out += "\n    ";
    out += "]}";
    if (fi + 1 < files.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string to_sarif(const std::vector<FileDiagnostics>& files) {
  // Emit a rule entry for every code that actually fired.
  std::set<std::string> codes;
  for (const auto& f : files) {
    for (const auto& d : f.diagnostics) codes.insert(d.code);
  }

  std::string out =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"impacc-lint\", "
      "\"informationUri\": \"docs/LINT.md\", \"rules\": [";
  std::size_t ci = 0;
  for (const auto& code : codes) {
    const RuleInfo* r = find_rule(code);
    out += "\n      {\"id\": \"" + json_escape(code) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(r != nullptr ? r->summary : "unknown rule") + "\"}}";
    if (++ci < codes.size()) out += ",";
  }
  if (!codes.empty()) out += "\n    ";
  out += "]}},\n    \"results\": [";

  bool first = true;
  for (const auto& f : files) {
    for (const auto& d : f.diagnostics) {
      if (!first) out += ",";
      first = false;
      // SARIF levels: "error" | "warning" | "note".
      out += "\n      {\"ruleId\": \"" + json_escape(d.code) +
             "\", \"level\": \"" + severity_name(d.severity) +
             "\", \"message\": {\"text\": \"" + json_escape(d.message) +
             "\"}, \"locations\": [{\"physicalLocation\": "
             "{\"artifactLocation\": {\"uri\": \"" +
             json_escape(f.file) +
             "\"}, \"region\": {\"startLine\": " + std::to_string(d.line) +
             ", \"startColumn\": " + std::to_string(d.column) + "}}}]";
      // Perf metadata rides in the SARIF property bag so CI artifacts
      // surface the estimates next to each finding.
      std::string props;
      if (d.seconds_saved >= 0) {
        props += "\"estimatedSecondsSaved\": " + fmt_double(d.seconds_saved);
      }
      if (f.has_perf) {
        if (!props.empty()) props += ", ";
        props +=
            "\"predictedMakespan\": " + fmt_double(f.predicted_makespan);
      }
      if (d.occurrences > 1) {
        if (!props.empty()) props += ", ";
        props += "\"occurrenceCount\": " + std::to_string(d.occurrences);
      }
      if (!props.empty()) out += ", \"properties\": {" + props + "}";
      out += "}";
    }
  }
  if (!first) out += "\n    ";
  out += "]";
  // Run-level property bag: one predicted_makespan entry per file.
  bool any_perf = false;
  for (const auto& f : files) any_perf |= f.has_perf;
  if (any_perf) {
    out += ",\n    \"properties\": {\"predictedMakespan\": [";
    bool pfirst = true;
    for (const auto& f : files) {
      if (!f.has_perf) continue;
      if (!pfirst) out += ",";
      pfirst = false;
      out += "\n      {\"file\": \"" + json_escape(f.file) +
             "\", \"makespan\": " + makespan_json(f) + "}";
    }
    out += "\n    ]}";
  }
  out += "\n  }]\n}\n";
  return out;
}

}  // namespace impacc::trans::analysis
