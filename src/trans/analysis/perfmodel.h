// Static performance model for impacc-lint (`--perf`).
//
// The rank simulator (ranksim.h) already produces per-rank operation
// traces and commgraph.h matches them into a communication graph. This
// pass replays those traces on a virtual clock, pricing every matched
// communication edge, kernel/update node, and bulk data move with the
// closed-form cost models of src/sim/costmodel — the analyzer's analogue
// of the runtime critical-path profiler (src/obs/critpath): a *static*
// critical-path estimate computed before a single run.
//
// The prediction is a model, not a measurement. Known error sources
// (documented in docs/LINT.md "Performance rules"): placement is the
// default round-robin task-per-device mapping, NUMA is assumed near,
// kernels are priced by a per-element roofline heuristic, hierarchical
// collectives use their closed-form estimates, and anything the
// simulator could not resolve (unknown counts, unmatched ops) costs
// zero and clears `exact`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/topology.h"
#include "trans/analysis/commgraph.h"
#include "trans/analysis/diagnostics.h"
#include "trans/analysis/ranksim.h"

namespace impacc::trans::analysis {

/// Machine/model parameters for the static perf pass, derived from a
/// sim system preset (psg / beacon / titan).
struct PerfParams {
  std::string system = "psg";
  sim::NodeDesc node;
  sim::FabricDesc fabric;
  sim::RuntimeCosts costs;
  /// Ranks packed per node; node of rank r is r / tasks_per_node and its
  /// device is (r % tasks_per_node) mod the node's device count.
  int tasks_per_node = 1;
  /// Chunk size of the internode transfer pipeline (the runtime's
  /// default 1 MiB); a `chunk(N)` clause on the op overrides it.
  std::uint64_t chunk_bytes = 1u << 20;
  /// Model GPUDirect RDMA (fabric reads device memory directly). Off by
  /// default: the conservative staged path matches the runtime's
  /// feature default in the shipped workloads.
  bool gpudirect = false;
  /// Roofline heuristic for async compute regions: flops and bytes
  /// moved per element of the largest device array the kernel touches.
  double kernel_flops_per_element = 5.0;
  double kernel_bytes_per_element = 16.0;
  /// Element size assumed when no MPI datatype ever names the buffer.
  std::uint64_t default_elem_size = 8;
};

/// Build PerfParams from a system preset name ("psg", "beacon",
/// "titan"). `tasks_per_node <= 0` selects the preset's device count
/// (the paper's one-task-per-device mapping).
PerfParams make_perf_params(const std::string& system, int tasks_per_node);

/// Static critical-path estimate for one program.
struct PerfPrediction {
  bool ran = false;    // perf pass executed (rank sim available)
  bool exact = false;  // every op was resolvable and fully priced
  double makespan = 0.0;      // seconds, max over ranks of finish time
  int critical_rank = 0;      // rank attaining the makespan
  int ranks = 0;
  int tasks_per_node = 0;
  std::string system;
  // Busy-time breakdown of the critical rank (informational; categories
  // overlap with each other and with other ranks' work, so they do not
  // sum to the makespan).
  double wire_seconds = 0.0;      // fabric crossings
  double staging_seconds = 0.0;   // PCIe / host staging copies
  double kernel_seconds = 0.0;    // async compute regions
  double data_seconds = 0.0;      // data-region / update bulk moves
  double collective_seconds = 0.0;
  double overhead_seconds = 0.0;  // software costs (calls, syncs, queue ops)
};

/// Replay the rank traces on a virtual clock and return the makespan
/// estimate. `graph` must be built over the same `sim` result.
PerfPrediction predict_makespan(const RankSimResult& sim,
                                const CommGraph& graph,
                                const PerfParams& params);

/// Bytes per element of an MPI datatype name ("MPI_DOUBLE" -> 8); 0 when
/// the name is not recognized.
std::uint64_t mpi_dtype_bytes(const std::string& dtype);

/// Element size for `var` inferred from the first p2p/collective op in
/// any trace that names it with a known datatype; `fallback` otherwise.
std::uint64_t infer_elem_size(const RankSimResult& sim,
                              const std::string& var, std::uint64_t fallback);

/// Seconds one point-to-point payload spends in flight between two
/// ranks, including staging through host memory for device-resident
/// endpoints and the chunk pipeline across the fabric. `chunk_bytes`
/// 0 disables pipelining (monolithic stages).
double p2p_transfer_seconds(const PerfParams& params, std::uint64_t bytes,
                            int src_rank, int dst_rank, bool dev_send,
                            bool dev_recv, std::uint64_t chunk_bytes);

/// Fabric busy seconds of the same payload (0 for same-node transfers):
/// the component distinct async queues cannot overlap, since they share
/// the NIC.
double p2p_wire_seconds(const PerfParams& params, std::uint64_t bytes,
                        int src_rank, int dst_rank, bool dev_send,
                        bool dev_recv, std::uint64_t chunk_bytes);

/// Run the IMP030..IMP037 performance rules over the traces and append
/// findings (each carrying an estimated-seconds-saved figure) to `out`.
/// Callers gate this on an exact simulation with a consistent
/// communication graph; the rules assume matched, deadlock-free traces.
void check_perf_rules(const RankSimResult& sim, const CommGraph& graph,
                      const PerfParams& params,
                      std::vector<Diagnostic>* out);

}  // namespace impacc::trans::analysis
