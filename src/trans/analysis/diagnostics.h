// Diagnostic model for impacc-lint: stable rule codes, severities, and
// rendering to human-readable text, JSON, and SARIF 2.1.0.
//
// Every rule has a stable `IMPnnn` code so that suppression lists, golden
// tests, and editor integrations survive message-wording changes. The
// catalog lives in diagnostics.cpp and is documented in docs/LINT.md.
#pragma once

#include <string>
#include <vector>

namespace impacc::trans::analysis {

enum class Severity : int { kNote = 0, kWarning = 1, kError = 2 };

/// "note" / "warning" / "error".
const char* severity_name(Severity s);

/// One reported problem, anchored to a source position.
struct Diagnostic {
  std::string code;                       // stable rule id, e.g. "IMP001"
  Severity severity = Severity::kWarning;
  int line = 0;                           // 1-based; 0 when unknown
  int column = 1;                         // 1-based
  std::string message;
  std::string fixit;  // optional suggested fix; empty when none applies
  /// Perf rules (IMP030..IMP037): cost-model estimate of the seconds the
  /// suggested rewrite saves. Negative = not a perf finding.
  double seconds_saved = -1.0;
  /// How many identical findings (inlined call sites, unrolled
  /// iterations, symbolic ranks) collapsed into this one.
  int occurrences = 1;
};

/// Static description of one lint rule.
struct RuleInfo {
  const char* code;
  Severity default_severity;
  const char* summary;  // one-line description (used for SARIF rules)
};

/// All known rules; the final entry has a null `code` as terminator.
const RuleInfo* rule_catalog();

/// Catalog entry for `code`, or nullptr for unknown codes.
const RuleInfo* find_rule(const std::string& code);

/// One-paragraph documentation of a rule for `impacc-lint --explain`:
/// what it means, a minimal example, and a fix sketch. Generated table
/// in ruledocs.cpp; terminated by a null `code`.
struct RuleDoc {
  const char* code;
  const char* doc;      // one-paragraph explanation
  const char* example;  // minimal triggering snippet
  const char* fix;      // how to resolve it
};

const RuleDoc* rule_doc_table();

/// Doc entry for `code`, or nullptr for unknown codes.
const RuleDoc* find_rule_doc(const std::string& code);

/// Build a diagnostic for `code` with the catalog's default severity.
Diagnostic make_diagnostic(const std::string& code, int line, int column,
                           std::string message, std::string fixit = "");

/// Diagnostics for one linted file.
struct FileDiagnostics {
  std::string file;  // display name; "<stdin>" when piped
  std::vector<Diagnostic> diagnostics;
  /// Static perf prediction (--perf): emitted as a predicted_makespan
  /// block in JSON/SARIF/text when `has_perf` is set.
  bool has_perf = false;
  double predicted_makespan = 0.0;  // seconds
  bool perf_exact = false;
  std::string perf_system;
  int perf_ranks = 0;
};

/// "file:line:col: severity: message [IMPnnn]" plus an indented fix-it
/// line when one is available.
std::string render_text(const Diagnostic& d, const std::string& file);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

/// Machine-readable report:
/// {"tool":"impacc-lint","version":1,"files":[{"file":..,
///   "diagnostics":[{"code","severity","line","column","message","fixit"}]}]}
std::string to_json(const std::vector<FileDiagnostics>& files);

/// SARIF 2.1.0 document with one run; rules are emitted for every code
/// that appears in `files`.
std::string to_sarif(const std::vector<FileDiagnostics>& files);

}  // namespace impacc::trans::analysis
