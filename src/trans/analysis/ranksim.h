// Rank-symbolic execution for impacc-lint (`--ranks N`).
//
// The single-rank passes in dataflow.h see one undifferentiated stream;
// real MPI+OpenACC programs branch on the rank (`if (rank == 0)`,
// even/odd pairing, `rank + 1` neighbours). This pass interprets the
// directive stream once per symbolic rank in [0, N): it binds the rank
// and size variables from MPI_Comm_rank/MPI_Comm_size, evaluates guard
// conditions and scalar assignments with a small integer-expression
// evaluator, and lowers every communication-relevant event into a
// per-rank operation trace. commgraph.h matches those traces into a
// static communication graph (deadlock / match analyses) and hbclock.h
// runs vector clocks over them (race analyses).
//
// Control flow: each branch whose condition evaluates to a known value
// is taken or skipped exactly; branches with unknown conditions are
// included but poison the trace's exactness (comm_exact), which gates
// the deadlock/match analyses so they never report on programs the
// model cannot see precisely.
//
// Loops are unrolled boundedly (SimOptions::unroll, the CLI's
// --unroll): when a `for`/`while` header's trip count resolves to at
// most K iterations the body is replayed exactly, with the induction
// variable bound per iteration. Otherwise the loop *widens* — the body
// contributes its operations once, every variable the loop mutates
// becomes unknown, and any communication inside poisons comm_exact
// (the pre-unrolling behavior, kept as the sound fallback).
//
// Function calls are inlined interprocedurally: a statement-level call
// to a function defined in the same file replays the callee's events
// with the caller's environment (depth-limited; recursion poisons
// exactness). Functions that are never called are interpreted at their
// definition site, so single-function fixture files behave as before.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trans/analysis/dataflow.h"

namespace impacc::trans::analysis {

/// Values of the MPI sentinels the evaluator understands (the common
/// MPICH/Open MPI encodings; only their identity matters here).
constexpr long kMpiProcNull = -2;
constexpr long kMpiAnySource = -1;
constexpr long kMpiAnyTag = -1;

/// Variable bindings for one symbolic rank.
using IntEnv = std::map<std::string, long>;

/// Evaluate a C integer expression over `env`. Supports decimal/hex
/// literals, bound identifiers, MPI_PROC_NULL / MPI_ANY_SOURCE /
/// MPI_ANY_TAG, unary + - ! ~, binary * / % + - << >> < > <= >= == !=
/// & ^ | && ||, parentheses, and the ternary ?: operator. && and ||
/// short-circuit, so an unknown operand on the dead side does not
/// poison a decidable condition. Returns nullopt when the expression
/// references an unbound identifier, divides by zero, or fails to parse.
std::optional<long> eval_int_expr(const std::string& expr, const IntEnv& env);

enum class RankOpKind : int {
  kSend,        // point-to-point send (blocking or nonblocking)
  kRecv,        // point-to-point receive
  kCollective,  // MPI_Barrier / Bcast / Reduce / Allreduce / ...
  kAccWait,     // #pragma acc wait [(q...)]
  kHostWait,    // MPI_Wait / Waitall / Waitany
  kQueueOp,     // non-MPI work on an async queue (compute, update, ...)
  kHostAccess,  // host-path access to buffers (plain call, sync update)
  kDataMove,    // host<->device bulk transfer (enter/exit data, region
                // copyin/copyout) — cost-model input only; invisible to
                // the correctness analyses (no accesses, never queued)
};

/// One buffer touched by an operation, with direction.
struct BufferAccess {
  std::string var;
  bool write = false;
  /// Evaluated subarray element count (`u[0:n]` with n known), when the
  /// clause names one and it resolves. Used only by the perf model.
  std::optional<long> elems;
};

/// One operation in a rank's trace, in program order.
struct RankOp {
  RankOpKind kind = RankOpKind::kHostAccess;
  int line = 0;
  int column = 1;

  // point-to-point
  std::string name;           // MPI routine (also for collectives)
  bool blocking = false;      // MPI_Send/Ssend/Recv not on an async queue
  std::optional<long> peer;   // resolved peer rank (nullopt = unknown)
  std::optional<long> tag;    // nullopt = unknown
  std::string count_text;     // raw count argument
  std::optional<long> count;  // evaluated count, when constant
  std::string dtype;          // raw datatype argument
  std::string buffer;         // base identifier of the data buffer
  std::optional<long> extent; // device extent of `buffer` (elements)
  std::string request;        // base identifier of the request object
  std::string comm;           // raw communicator argument

  // queue attachment (the unified activity queue of §3.5)
  bool has_queue = false;
  std::string queue;  // textual async argument; "" = no-value queue

  // perf-model annotations (ignored by the correctness analyses)
  bool dev_send = false;     // acc mpi sendbuf(device) on this op
  bool dev_recv = false;     // acc mpi recvbuf(device) on this op
  bool forced_flat = false;  // acc mpi flat — user forced flat collective
  bool is_update = false;    // op came from `#pragma acc update`
  bool move_to_device = false;            // kDataMove direction
  bool has_chunk_clause = false;          // acc mpi chunk(N) present
  std::optional<long> chunk_bytes_clause; // evaluated chunk(N) argument

  // kAccWait
  bool wait_all = false;
  std::vector<std::string> wait_queues;

  // kQueueOp / kHostAccess
  std::vector<BufferAccess> accesses;
  std::vector<std::string> wait_clause;  // wait(q) clause on the construct

  /// An enclosing guard was undecidable, or the op sits in a widened
  /// (non-unrolled) loop body — either way its execution is uncertain.
  bool guarded_unknown = false;

  // loop context (innermost enclosing loop, if any)
  int loop_depth = 0;   // 0 = not inside any loop
  int loop_line = 0;    // line of the innermost loop header
  int loop_iter = -1;   // unrolled iteration number; -1 = widened
  /// Whitespace-stripped request argument text ("&req[1]"), which keeps
  /// distinct elements of one request array apart (base `request` does
  /// not). Empty for blocking ops.
  std::string request_expr;
};

struct RankTrace {
  int rank = 0;
  std::vector<RankOp> ops;
};

/// Knobs for the rank-symbolic interpretation.
struct SimOptions {
  /// Maximum loop iterations to unroll exactly (the CLI's --unroll).
  /// 0 disables unrolling: every loop widens.
  int unroll = 4;
  /// Maximum call-inlining depth; deeper chains poison exactness.
  int inline_depth = 8;
};

struct RankSimResult {
  int nranks = 0;
  /// Both MPI_Comm_rank and MPI_Comm_size were seen, so the traces are
  /// genuinely rank-differentiated.
  bool has_rank_size = false;
  /// Every p2p peer/tag resolved to a concrete value, every comm-relevant
  /// guard was decidable, every loop around communication unrolled
  /// exactly, and no unmodeled MPI communication call appeared. The
  /// deadlock/match analyses only run when this holds — the model must
  /// see the program exactly to accuse it.
  bool comm_exact = true;
  /// At least one loop could not be unrolled within the budget and fell
  /// back to widening (informational; widened *communication* also
  /// clears comm_exact).
  bool widened_loops = false;
  std::vector<RankTrace> traces;
};

/// Interpret `stream` once per rank in [0, nranks).
RankSimResult simulate_ranks(const DirectiveStream& stream, int nranks,
                             const SimOptions& options);
RankSimResult simulate_ranks(const DirectiveStream& stream, int nranks);

}  // namespace impacc::trans::analysis
