// Data-flow building blocks for impacc-lint.
//
// The linter works on a *directive stream*: the ordered sequence of
// `#pragma acc` directives, structured-region boundaries, and host-side
// MPI calls extracted from a source file. Over that stream it runs two
// symbolic simulations that mirror what the runtime does at execution
// time (sections 3.4-3.6 of the paper):
//
//   * SymbolicPresentTable — which host variables have a live device
//     copy, tracked by name instead of address (the static analogue of
//     acc/present_table.h).
//   * QueueTracker — which async queues have outstanding work and which
//     waits cover them (the static analogue of the unified activity
//     queue ordering).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "trans/analysis/diagnostics.h"
#include "trans/ast.h"

namespace impacc::trans::analysis {

/// An MPI call observed on the host path (possibly the statement attached
/// to an `#pragma acc mpi` directive).
struct MpiCall {
  std::string name;               // e.g. "MPI_Isend"
  std::vector<std::string> args;  // raw top-level argument expressions
  int line = 0;
  int column = 1;
  bool valid = false;  // false when no call was found / it was malformed
};

enum class EventKind : int {
  kDirective,    // a parsed acc directive (enter/exit data, update, wait,
                 // compute construct, acc mpi, ...)
  kRegionEnter,  // a structured data/host_data region opened
  kRegionExit,   // ... and its matching '}' was reached
  kMpiCall,      // a plain MPI_* call in host code
  kGuardEnter,   // an if/else branch opened; `guard_cond` holds the full
                 // branch condition (else chains fold in the negations)
  kGuardExit,    // ... and the branch closed ('}' or the statement's ';')
  kAssign,       // a simple scalar assignment in host code (`x = expr;`);
                 // `assign_expr` is empty when the value is unknowable
                 // (compound assignment, assignment inside parentheses)
  kLoopEnter,    // a `for`/`while` statement opened; `loop_init`,
                 // `loop_cond`, `loop_inc` hold the raw header pieces
                 // (empty where the header has none)
  kLoopExit,     // ... and its body closed ('}' or the statement's ';')
  kFuncEnter,    // a function definition opened at file scope; `symbol`
                 // is the function name
  kFuncExit,     // ... and its body's closing '}' was reached
  kCall,         // a plain call statement `name(args);`; `symbol` is the
                 // callee name (only statement-level calls are modeled)
};

struct Event {
  EventKind kind = EventKind::kDirective;
  Directive directive;  // kDirective / kRegionEnter
  MpiCall call;         // kMpiCall; also the attached call for `acc mpi`
  int line = 0;
  int column = 1;
  int region_id = -1;  // pairs enter events with their matching exit
  std::string guard_cond;   // kGuardEnter
  std::string assign_var;   // kAssign
  std::string assign_expr;  // kAssign; empty = value unknown
  std::string loop_init;    // kLoopEnter: `i = 0` (type keywords stripped)
  std::string loop_cond;    // kLoopEnter: `i < n`; empty = no condition
  std::string loop_inc;     // kLoopEnter: `i++` / `i += 2` / ...
  std::string symbol;       // kFuncEnter / kFuncExit / kCall: the name
};

struct DirectiveStream {
  std::vector<Event> events;
  /// Scan/parse problems (malformed pragmas, missing region braces,
  /// `acc mpi` with no MPI call, ...), already rendered as IMP012.
  std::vector<Diagnostic> scan_diagnostics;
};

/// Scan a C-like MPI+OpenACC source and extract its directive stream.
/// Comments, string literals, and non-acc pragmas are skipped the same
/// way the translator skips them, so lint and translation agree on what
/// counts as a directive.
DirectiveStream extract_stream(const std::string& source);

/// Base identifier of a buffer expression: "&x" -> "x", "a[0]" -> "a",
/// "(p)" -> "p", "buf + off" -> "buf". Empty when none can be found.
std::string base_identifier(const std::string& expr);

/// Which argument indices of a translated MPI routine carry the send and
/// receive buffers (-1 when the routine has none in that role).
struct BufferRoles {
  int send_arg = -1;
  int recv_arg = -1;
};
std::optional<BufferRoles> mpi_buffer_roles(const std::string& name);

/// True for MPI_Isend / MPI_Irecv (request-producing nonblocking p2p).
bool is_nonblocking_p2p(const std::string& name);

/// Symbolic present-table simulation. Tracks reference counts per host
/// variable name, distinguishing structured-region references (released
/// automatically at the region's closing brace) from unstructured
/// enter/exit data references (released only by an explicit exit).
class SymbolicPresentTable {
 public:
  /// Record a device allocation. Returns the number of *unstructured*
  /// references that already existed (> 0 on a double enter-data).
  int enter(const std::string& var, int line, bool structured);

  /// Record a release. Returns false when `var` was not present at all.
  bool exit(const std::string& var, bool structured);

  bool present(const std::string& var) const;

  /// Variables still holding unstructured references at end of analysis,
  /// with the line of their first enter data.
  std::vector<std::pair<std::string, int>> live_unstructured() const;

 private:
  struct Entry {
    int structured_refs = 0;
    int unstructured_refs = 0;
    int first_enter_line = 0;
  };
  std::map<std::string, Entry> entries_;
};

/// Async-queue data-flow: which queues had work enqueued, and which of
/// those enqueues are covered by a later wait. Queue ids are compared
/// symbolically (the textual async argument), which matches how the
/// translator lowers them.
class QueueTracker {
 public:
  /// `async(queue)` observed (empty string = the no-value async queue).
  void use(const std::string& queue, int line);

  /// `wait(queue)` observed: covers every enqueue on `queue` so far.
  void wait(const std::string& queue, int line);

  /// Bare `wait` / wait-all: covers every enqueue on every queue so far.
  void wait_all(int line);

  /// True when queue had at least one enqueue before `line`.
  bool used_before(const std::string& queue, int line) const;

  struct QueueUse {
    std::string queue;
    int line = 0;
  };

  /// First uncovered enqueue per queue (for IMP006).
  std::vector<QueueUse> unwaited() const;

  /// True when every enqueue on `queue` is covered by a later wait.
  bool fully_waited(const std::string& queue) const;

 private:
  struct UseRec {
    int line = 0;
    bool covered = false;
  };
  std::map<std::string, std::vector<UseRec>> uses_;
};

}  // namespace impacc::trans::analysis
