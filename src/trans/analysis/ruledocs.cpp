// One-paragraph documentation per lint rule, backing
// `impacc-lint --explain IMPnnn`. Kept next to the catalog in
// diagnostics.cpp; docs/LINT.md renders the same material with more
// context.
#include "trans/analysis/diagnostics.h"

namespace impacc::trans::analysis {

const RuleDoc* rule_doc_table() {
  static const RuleDoc kDocs[] = {
      {"IMP001",
       "An `enter data` directive allocates (copyin/create) a buffer that "
       "the present-table already tracks. The runtime reference-counts "
       "device buffers, so the second copyin bumps the count and the "
       "matching single exit data leaks one device reference (and the "
       "device memory behind it).",
       "#pragma acc enter data copyin(a[0:n])\n"
       "#pragma acc enter data copyin(a[0:n])   // IMP001",
       "Remove the duplicate enter data, or pair every enter with its own "
       "exit data."},
      {"IMP002",
       "An `exit data`, `delete`, or `present()` names a buffer that is "
       "not on the device at that point. At run time this aborts (present "
       "table miss) or silently deletes the wrong mapping.",
       "#pragma acc exit data copyout(a[0:n])   // IMP002: never entered",
       "Add the matching enter data / structured data region, or drop the "
       "stale exit."},
      {"IMP003",
       "`update device(...)` / `update self(...)` moves data for a buffer "
       "that has no device copy, which is a run-time error.",
       "#pragma acc update device(a[0:n])   // IMP002-style miss",
       "Create the device copy first (enter data / data region) or delete "
       "the update."},
      {"IMP004",
       "`host_data use_device(...)` asks for the device address of a "
       "buffer that is not present; the runtime returns the host pointer "
       "or aborts, and the MPI call underneath reads the wrong memory.",
       "#pragma acc host_data use_device(a)\n"
       "MPI_Send(a, ...);                       // wrong pointer",
       "Make the buffer present before taking its device address."},
      {"IMP005",
       "`acc mpi sendbuf(device)` / `recvbuf(device)` tells the runtime "
       "to transfer from/into device memory, but the named buffer has no "
       "device copy.",
       "#pragma acc mpi sendbuf(device)\n"
       "MPI_Send(a, n, MPI_DOUBLE, 1, 0, comm);  // a not present",
       "Enter the buffer into device memory first, or drop the device "
       "flag to use the host path."},
      {"IMP006",
       "Work was enqueued on an async queue that is never waited on "
       "before the program (or the enclosing scope) ends, so its "
       "completion and any copyback are never observed.",
       "#pragma acc parallel loop async(1)\n"
       "...                                      // no wait(1) anywhere",
       "Add `#pragma acc wait(1)` (or a blocking op that covers the "
       "queue) before the results are needed."},
      {"IMP007",
       "A `wait` names an async queue that nothing was enqueued to. "
       "Harmless at run time, but it usually means the queue number is a "
       "typo and the real queue is left unsynchronized.",
       "#pragma acc parallel loop async(1)\n"
       "#pragma acc wait(2)                      // IMP007: queue 2 empty",
       "Fix the queue id so the wait covers the intended work."},
      {"IMP008",
       "A buffer handed to the runtime as readonly (e.g. a copyin-only "
       "mapping) is mutated by a later receive, so host and device copies "
       "silently diverge.",
       "#pragma acc enter data copyin(a[0:n])\n"
       "MPI_Recv(a, ...);                        // host copy changes",
       "Use copy/create plus an update, or receive into the device copy "
       "with `acc mpi recvbuf(device)`."},
      {"IMP009",
       "A nonblocking MPI_Isend/MPI_Irecv's request is never completed "
       "with MPI_Wait/MPI_Test on the host path; the transfer may never "
       "finish and the request handle leaks.",
       "MPI_Irecv(a, n, MPI_DOUBLE, 0, 0, comm, &rq);\n"
       "// ... no MPI_Wait(&rq, ...)             // IMP009",
       "Complete every request with MPI_Wait/MPI_Waitall before the "
       "buffer is reused or the scope ends."},
      {"IMP010",
       "The send and receive buffers of one `acc mpi` directive alias the "
       "same object, which MPI forbids for non-in-place operations.",
       "#pragma acc mpi sendbuf(device) recvbuf(device)\n"
       "MPI_Sendrecv(a, ..., a, ...);            // IMP010",
       "Use distinct buffers or the documented in-place form."},
      {"IMP011",
       "A buffer entered with `enter data` is never released by a "
       "matching `exit data`; its device allocation lives until program "
       "end (a leak in any long-running or iterative context).",
       "#pragma acc enter data copyin(a[0:n])\n"
       "// ... no exit data delete/copyout(a)",
       "Pair the enter with `#pragma acc exit data delete(a)` (or "
       "copyout) on every path."},
      {"IMP012",
       "The directive could not be parsed: unknown directive kind, "
       "malformed clause, or an unsupported combination. The analyzer "
       "cannot reason past it, and the translator would reject it.",
       "#pragma acc mpi sendbuf(            // unbalanced parens",
       "Fix the directive syntax; see docs/LINT.md for the accepted "
       "grammar."},
      {"IMP013",
       "Across the simulated ranks, blocking communication forms a "
       "wait-for cycle: every rank in the cycle is blocked in a send or "
       "receive that only another blocked rank can match. Classic "
       "head-to-head MPI_Send deadlock.",
       "MPI_Send(.., to right ..); MPI_Recv(.., from left ..);  // all ranks",
       "Break the cycle: reorder by parity, use MPI_Sendrecv, or switch "
       "one side to nonblocking."},
      {"IMP014",
       "A send is never matched by a receive on the destination rank "
       "(wrong peer, tag, or communicator-order divergence). The payload "
       "is lost and blocking sends may hang.",
       "if (rank == 0) MPI_Send(a, n, MPI_DOUBLE, 1, 7, comm);\n"
       "// rank 1 never posts a tag-7 receive     // IMP014",
       "Post the matching receive, or fix the destination/tag."},
      {"IMP015",
       "A receive is never matched by a send on the source rank; the "
       "receive blocks forever (or its request never completes).",
       "if (rank == 1) MPI_Recv(a, n, MPI_DOUBLE, 0, 7, comm, &st);\n"
       "// rank 0 never sends tag 7               // IMP015",
       "Post the matching send, or fix the source/tag."},
      {"IMP016",
       "The simulated ranks disagree on the order of collective "
       "operations (e.g. one rank reaches a Bcast while another reaches "
       "an Allreduce). MPI requires identical collective sequences per "
       "communicator.",
       "if (rank == 0) MPI_Bcast(...); else MPI_Allreduce(...);",
       "Make every rank execute the same collectives in the same order."},
      {"IMP017",
       "A matched send/receive pair disagrees on element count or on the "
       "device subarray extent, so the receiver truncates or overruns.",
       "rank 0: MPI_Send(a, 100, ...);  rank 1: MPI_Recv(a, 50, ...);",
       "Make the counts (and mapped extents) agree on both sides."},
      {"IMP018",
       "A matched send/receive pair uses incompatible MPI datatypes "
       "(different sizes), which corrupts the payload.",
       "rank 0 sends MPI_DOUBLE, rank 1 receives MPI_FLOAT",
       "Use the same (or same-sized) datatype on both sides."},
      {"IMP019",
       "The host reads or writes a buffer while an asynchronous device "
       "operation that uses the same buffer may still be in flight — a "
       "host/device data race.",
       "#pragma acc parallel loop async(1)  // writes a\n"
       "printf(\"%f\", a[0]);                // IMP019: no wait(1) yet",
       "Insert `#pragma acc wait(queue)` before the host access."},
      {"IMP020",
       "One buffer is touched on two async queues with no ordering edge "
       "(wait or shared queue) between them; the operations may execute "
       "in either order.",
       "#pragma acc parallel loop async(1)  // writes a\n"
       "#pragma acc update self(a) async(2)  // IMP020",
       "Serialize the touches on one queue or add `wait(1) async(2)`."},
      {"IMP021",
       "A buffer with a pending nonblocking operation is reused (written, "
       "sent again, or freed) before the completing wait; MPI may still "
       "be reading or writing it.",
       "MPI_Isend(a, ..., &rq);\n"
       "a[0] = 1.0;                          // IMP021: before MPI_Wait",
       "Complete the request before touching the buffer."},
      {"IMP022",
       "A request handle is overwritten by a new nonblocking post while "
       "the previous operation is still pending, so the old operation can "
       "never be completed (handle leak).",
       "MPI_Irecv(a, ..., &rq);\n"
       "MPI_Irecv(b, ..., &rq);              // IMP022: rq overwritten",
       "Wait on the request before reusing it, or use a request array."},
      {"IMP023",
       "A collective sits under a guard whose value diverges across loop "
       "iterations per rank (e.g. `if (iter % ranks == rank)`), so ranks "
       "stop agreeing on the collective sequence after a few iterations.",
       "for (it = 0; it < n; ++it)\n"
       "  if (it % size == rank) MPI_Allreduce(...);  // IMP023",
       "Hoist the collective out of the guard or make the guard "
       "rank-invariant."},
      {"IMP024",
       "A user point-to-point tag lands in the tag window the runtime "
       "reserves for its hierarchical collectives (>= 1<<24); user and "
       "runtime traffic can cross-match.",
       "MPI_Send(a, n, MPI_DOUBLE, 1, 1 << 24, comm);  // IMP024",
       "Keep user tags below 1<<24."},
      {"IMP030",
       "Adjacent blocking send and receive move independent buffers, so "
       "the second transfer waits for the first although nothing orders "
       "them. A nonblocking pair overlaps the two payloads; the cost "
       "model estimates the saving as the smaller transfer time.",
       "MPI_Send(a, n, MPI_DOUBLE, p, 0, comm);\n"
       "MPI_Recv(b, n, MPI_DOUBLE, p, 0, comm, &st);   // IMP030",
       "Rewrite as MPI_Isend + MPI_Irecv + MPI_Waitall."},
      {"IMP031",
       "An `update` moves a full array although the adjacent send/receive "
       "covers only a subarray (e.g. a halo row). The extra bytes cross "
       "PCIe for nothing; the estimate prices the difference between the "
       "full and the covering move.",
       "#pragma acc update self(u[0:n*n])     // IMP031\n"
       "MPI_Send(u, n, MPI_DOUBLE, p, 0, comm);  // uses only n elements",
       "Shrink the update to the communicated subarray, e.g. "
       "`update self(u[0:n])`."},
      {"IMP032",
       "The same copyin/copyout (identical buffer, extent, and direction) "
       "executes on every iteration of a loop although nothing inside the "
       "loop invalidates the copy. Hoisting it out pays the transfer once "
       "instead of once per iteration.",
       "for (it = 0; it < steps; ++it) {\n"
       "  #pragma acc data copyin(a[0:n])     // IMP032\n"
       "  { ... }\n"
       "}",
       "Hoist the data region (or enter/exit data) out of the loop."},
      {"IMP033",
       "Each rank posts point-to-point sends of the same buffer and "
       "uniform count to every other rank — a hand-rolled allgather/"
       "alltoall. The runtime's hierarchical collective crosses the "
       "fabric once per node pair instead of once per rank pair.",
       "for each peer p != rank:\n"
       "  MPI_Isend(buf, n, MPI_DOUBLE, p, 0, comm, &rq[p]);  // IMP033",
       "Replace the exchange loop with MPI_Allgather (or MPI_Alltoall) "
       "under `#pragma acc mpi`."},
      {"IMP034",
       "A collective forced onto the flat per-rank algorithm (`flat` "
       "clause) carries a payload above the 64 KiB Rabenseifner "
       "crossover, where the hierarchical node-leader schedule is "
       "strictly cheaper on the modeled system.",
       "#pragma acc mpi flat\n"
       "MPI_Allreduce(a, b, 1<<20, MPI_DOUBLE, MPI_SUM, comm);  // IMP034",
       "Drop the `flat` clause and let the runtime pick the hierarchical "
       "schedule."},
      {"IMP035",
       "Consecutive sends of pairwise-distinct buffers share one async "
       "queue, so the device serializes their stagings although only the "
       "fabric is a shared resource. Distinct queues overlap staging with "
       "wire time.",
       "#pragma acc mpi sendbuf(device) async(1)\n"
       "MPI_Isend(a, ...);\n"
       "#pragma acc mpi sendbuf(device) async(1)   // IMP035: same queue\n"
       "MPI_Isend(b, ...);",
       "Spread independent sends across distinct async queues."},
      {"IMP036",
       "An internode device transfer disables the chunk pipeline "
       "(`chunk(0)`) or forces a chunk size far from the modeled optimum, "
       "so PCIe staging and fabric time serialize instead of "
       "pipelining.",
       "#pragma acc mpi sendbuf(device) chunk(0)   // IMP036\n"
       "MPI_Send(a, 1<<20, MPI_DOUBLE, p, 0, comm);",
       "Drop the chunk clause (runtime default 1 MiB) or use the chunk "
       "size named in the fix-it."},
      {"IMP037",
       "An `acc wait` completes an in-flight transfer long before the "
       "first statement that truly needs the data; the work between the "
       "wait and the first use could overlap the transfer.",
       "#pragma acc wait(1)        // IMP037: recv on queue 1 ...\n"
       "#pragma acc update device(other[0:n])  // ... not needed here\n"
       "use(recv_buf);",
       "Move the wait down to just before the first use of the awaited "
       "data."},
      {nullptr, nullptr, nullptr, nullptr},
  };
  return kDocs;
}

const RuleDoc* find_rule_doc(const std::string& code) {
  for (const RuleDoc* d = rule_doc_table(); d->code != nullptr; ++d) {
    if (code == d->code) return d;
  }
  return nullptr;
}

}  // namespace impacc::trans::analysis
