#include "trans/analysis/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "trans/analysis/commgraph.h"
#include "trans/analysis/dataflow.h"
#include "trans/analysis/hbclock.h"
#include "trans/analysis/lifetime.h"
#include "trans/analysis/ranksim.h"
#include "trans/lexer.h"

namespace impacc::trans::analysis {

namespace {

bool has_flag(const Clause* c, const char* flag) {
  if (c == nullptr) return false;
  for (const auto& a : c->args) {
    if (a == flag) return true;
  }
  return false;
}

/// Clauses that allocate device memory on entry of a region/enter data.
bool allocates_on_enter(const std::string& name) {
  return name == "copyin" || name == "copy" || name == "create" ||
         name == "copyout";
}

/// Clauses that release device memory in an exit data directive.
bool releases_on_exit(const std::string& name) {
  return name == "copyout" || name == "copy" || name == "delete" ||
         name == "copyin" || name == "create";
}

std::string queue_key(const Clause* async_clause) {
  return async_clause->args.empty() ? std::string() : async_clause->args[0];
}

std::string queue_display(const std::string& key) {
  return key.empty() ? "<no-value>" : key;
}

/// A recorded host-path request completion (MPI_Wait family).
struct RequestWait {
  std::string base;  // base identifier of the request expression
  int line = 0;
};

struct Linter {
  const DirectiveStream& stream;
  std::vector<Diagnostic> diags;

  QueueTracker queues;
  std::vector<RequestWait> request_waits;

  SymbolicPresentTable table;
  std::map<int, std::vector<std::string>> region_vars;  // region_id -> vars
  std::map<std::string, int> unstructured_enter_line;
  std::map<std::string, int> readonly_since;  // var -> line marked readonly

  explicit Linter(const DirectiveStream& s) : stream(s) {}

  void report(const std::string& code, int line, int column,
              std::string message, std::string fixit = "") {
    diags.push_back(make_diagnostic(code, line, column, std::move(message),
                                    std::move(fixit)));
  }

  // --- pass A: whole-file queue and request-completion knowledge ------------

  void collect_waits() {
    for (const auto& ev : stream.events) {
      if (ev.kind == EventKind::kDirective ||
          ev.kind == EventKind::kRegionEnter) {
        const Directive& d = ev.directive;
        if (const Clause* as = d.find("async")) {
          queues.use(queue_key(as), ev.line);
        }
        const Clause* w = d.find("wait");
        if (d.kind == DirectiveKind::kWait && w == nullptr) {
          queues.wait_all(ev.line);  // bare `#pragma acc wait`
        } else if (w != nullptr) {
          if (w->args.empty()) {
            queues.wait_all(ev.line);
          } else {
            for (const auto& q : w->args) queues.wait(q, ev.line);
          }
        }
      }
      const MpiCall* call = nullptr;
      if (ev.kind == EventKind::kMpiCall) call = &ev.call;
      if (ev.kind == EventKind::kDirective &&
          ev.directive.kind == DirectiveKind::kMpi && ev.call.valid) {
        call = &ev.call;
      }
      if (call == nullptr || !call->valid) continue;
      if (call->name == "MPI_Wait" && !call->args.empty()) {
        request_waits.push_back({base_identifier(call->args[0]), ev.line});
      } else if ((call->name == "MPI_Waitall" ||
                  call->name == "MPI_Waitany") &&
                 call->args.size() >= 2) {
        request_waits.push_back({base_identifier(call->args[1]), ev.line});
      }
    }
  }

  bool request_waited_after(const std::string& base, int line) const {
    for (const auto& w : request_waits) {
      if (w.base == base && w.line >= line) return true;
    }
    return false;
  }

  // --- pass B: present-table simulation and per-event checks ----------------

  void check_present_clause(const Directive& d, int column) {
    const Clause* p = d.find("present");
    if (p == nullptr) return;
    for (const auto& sa : p->subarrays) {
      if (!table.present(sa.var)) {
        report("IMP002", d.line, column,
               "'" + sa.var +
                   "' is asserted present but no enclosing data region or "
                   "enter data makes it present",
               "wrap the construct in '#pragma acc data copyin(" + sa.var +
                   "...)' or add a matching enter data");
      }
    }
  }

  void enter_region(const Event& ev) {
    const Directive& d = ev.directive;
    std::vector<std::string> vars;
    if (d.kind == DirectiveKind::kHostData) {
      if (const Clause* ud = d.find("use_device")) {
        for (const auto& sa : ud->subarrays) {
          if (!table.present(sa.var)) {
            report("IMP004", ev.line, ev.column,
                   "host_data use_device on '" + sa.var +
                       "', which is not present on the device",
                   "copy '" + sa.var +
                       "' in with a data region or enter data before taking "
                       "its device address");
          }
        }
      }
      region_vars[ev.region_id] = {};
      return;
    }
    check_present_clause(d, ev.column);
    for (const auto& c : d.clauses) {
      if (!allocates_on_enter(c.name)) continue;
      for (const auto& sa : c.subarrays) {
        table.enter(sa.var, ev.line, /*structured=*/true);
        vars.push_back(sa.var);
      }
    }
    region_vars[ev.region_id] = std::move(vars);
  }

  void exit_region(const Event& ev) {
    auto it = region_vars.find(ev.region_id);
    if (it == region_vars.end()) return;
    for (const auto& var : it->second) {
      table.exit(var, /*structured=*/true);
    }
    region_vars.erase(it);
  }

  void enter_data(const Event& ev) {
    const Directive& d = ev.directive;
    for (const auto& c : d.clauses) {
      if (!allocates_on_enter(c.name)) continue;
      for (const auto& sa : c.subarrays) {
        const int prior = table.enter(sa.var, ev.line, /*structured=*/false);
        if (prior > 0) {
          report("IMP001", ev.line, ev.column,
                 "'" + sa.var + "' is already present on the device (enter "
                               "data at line " +
                     std::to_string(unstructured_enter_line[sa.var]) +
                     "); this " + c.name + " would leak a device reference",
                 "add '#pragma acc exit data delete(" + sa.var +
                     ")' before re-entering, or drop the duplicate clause");
        } else {
          unstructured_enter_line[sa.var] = ev.line;
        }
      }
    }
  }

  void exit_data(const Event& ev) {
    const Directive& d = ev.directive;
    for (const auto& c : d.clauses) {
      if (!releases_on_exit(c.name)) continue;
      for (const auto& sa : c.subarrays) {
        if (!table.exit(sa.var, /*structured=*/false)) {
          report("IMP002", ev.line, ev.column,
                 "exit data " + c.name + "('" + sa.var + "') but '" +
                     sa.var + "' is not present on the device",
                 "pair every exit data with a matching enter data for '" +
                     sa.var + "'");
        }
      }
    }
  }

  void check_update(const Event& ev) {
    const Directive& d = ev.directive;
    for (const auto& c : d.clauses) {
      if (c.name != "device" && c.name != "self" && c.name != "host") continue;
      for (const auto& sa : c.subarrays) {
        if (!table.present(sa.var)) {
          report("IMP003", ev.line, ev.column,
                 "update " + c.name + "('" + sa.var + "') but '" + sa.var +
                     "' is not present on the device",
                 "copy '" + sa.var +
                     "' in with a data region or enter data before updating");
        }
      }
    }
  }

  void check_wait(const Event& ev) {
    const Directive& d = ev.directive;
    const Clause* w = d.find("wait");
    if (w == nullptr || w->args.empty()) return;  // bare wait covers all
    for (const auto& q : w->args) {
      if (!queues.used_before(q, ev.line)) {
        report("IMP007", ev.line, ev.column,
               "wait(" + q + ") but nothing was enqueued on queue " + q +
                   " before this point",
               "drop the wait or enqueue work with 'async(" + q + ")'");
      }
    }
  }

  /// A receive is about to write into `var` at `line`. `sanctioned` is
  /// true when the directive itself re-marks the buffer readonly (the
  /// runtime swaps the pointer instead of copying — the legal idiom).
  void check_readonly_mutation(const std::string& var, int line, int column,
                               bool sanctioned) {
    if (var.empty() || sanctioned) return;
    auto it = readonly_since.find(var);
    if (it == readonly_since.end()) return;
    report("IMP008", line, column,
           "'" + var + "' was handed to the runtime as readonly (line " +
               std::to_string(it->second) +
               ") but this receive mutates it",
           "drop the readonly hint or receive into a different buffer");
  }

  void check_acc_mpi(const Event& ev) {
    const Directive& d = ev.directive;
    if (!ev.call.valid) return;  // IMP012 already reported by the scanner
    const MpiCall& call = ev.call;
    const auto roles = mpi_buffer_roles(call.name);
    const Clause* sb = d.find("sendbuf");
    const Clause* rb = d.find("recvbuf");

    std::string send_var;
    std::string recv_var;
    if (roles.has_value()) {
      if (roles->send_arg >= 0 &&
          roles->send_arg < static_cast<int>(call.args.size())) {
        send_var = base_identifier(call.args[roles->send_arg]);
      }
      if (roles->recv_arg >= 0 &&
          roles->recv_arg < static_cast<int>(call.args.size())) {
        recv_var = base_identifier(call.args[roles->recv_arg]);
      }
    }

    // IMP010: aliased send/recv buffers under one directive.
    if (sb != nullptr && rb != nullptr && !send_var.empty() &&
        send_var == recv_var && send_var != "MPI_IN_PLACE") {
      report("IMP010", ev.line, ev.column,
             "send and receive buffers both alias '" + send_var +
                 "' within one acc mpi directive",
             "use distinct buffers or MPI_IN_PLACE");
    }

    // IMP005: device-resident buffers must actually be present.
    if (has_flag(sb, "device") && !send_var.empty() &&
        !table.present(send_var)) {
      report("IMP005", ev.line, ev.column,
             "acc mpi sendbuf(device) but '" + send_var +
                 "' is not present on the device",
             "copy '" + send_var +
                 "' in with a data region or enter data before sending");
    }
    if (has_flag(rb, "device") && !recv_var.empty() &&
        !table.present(recv_var)) {
      report("IMP005", ev.line, ev.column,
             "acc mpi recvbuf(device) but '" + recv_var +
                 "' is not present on the device",
             "copy '" + recv_var +
                 "' in with a data region or enter data before receiving");
    }

    // IMP008: mutation of previously-readonly buffers, then (re)marking.
    const bool marks_recv_readonly = has_flag(rb, "readonly");
    check_readonly_mutation(recv_var, ev.line, ev.column,
                            marks_recv_readonly);
    if (has_flag(sb, "readonly") && !send_var.empty()) {
      readonly_since.emplace(send_var, ev.line);
    }
    if (marks_recv_readonly && !recv_var.empty()) {
      readonly_since.emplace(recv_var, ev.line);
    }

    check_nonblocking(d.find("async") != nullptr, call, ev.line, ev.column);
  }

  /// IMP009: host-path Isend/Irecv whose request nothing ever completes.
  /// Calls attached to an async queue complete through the unified
  /// activity queue instead (IMP006 covers an unwaited queue).
  void check_nonblocking(bool on_async_queue, const MpiCall& call, int line,
                         int column) {
    if (!is_nonblocking_p2p(call.name) || call.args.empty()) return;
    if (on_async_queue) return;
    const std::string req = base_identifier(call.args.back());
    if (req.empty()) return;
    if (request_waited_after(req, line)) return;
    report("IMP009", line, column,
           call.name + " request '" + req +
               "' is never completed by MPI_Wait/Waitall on the host path",
           "add 'MPI_Wait(&" + req +
               ", ...)' after the call, or attach it to an async queue "
               "with '#pragma acc mpi ... async(n)'");
  }

  void check_plain_call(const Event& ev) {
    const MpiCall& call = ev.call;
    const auto roles = mpi_buffer_roles(call.name);
    if (roles.has_value() && roles->recv_arg >= 0 &&
        roles->recv_arg < static_cast<int>(call.args.size())) {
      check_readonly_mutation(base_identifier(call.args[roles->recv_arg]),
                              ev.line, ev.column, /*sanctioned=*/false);
    }
    check_nonblocking(/*on_async_queue=*/false, call, ev.line, ev.column);
  }

  void run() {
    collect_waits();
    for (const auto& ev : stream.events) {
      switch (ev.kind) {
        case EventKind::kRegionEnter:
          enter_region(ev);
          break;
        case EventKind::kRegionExit:
          exit_region(ev);
          break;
        case EventKind::kMpiCall:
          check_plain_call(ev);
          break;
        case EventKind::kGuardEnter:
        case EventKind::kGuardExit:
        case EventKind::kAssign:
        case EventKind::kLoopEnter:
        case EventKind::kLoopExit:
        case EventKind::kFuncEnter:
        case EventKind::kFuncExit:
        case EventKind::kCall:
          // Consumed by the rank-symbolic pass (ranksim.h); the
          // single-rank checks treat guarded/looped code as
          // unconditional straight-line code.
          break;
        case EventKind::kDirective:
          switch (ev.directive.kind) {
            case DirectiveKind::kEnterData:
              enter_data(ev);
              break;
            case DirectiveKind::kExitData:
              exit_data(ev);
              break;
            case DirectiveKind::kUpdate:
              check_update(ev);
              break;
            case DirectiveKind::kWait:
              check_wait(ev);
              break;
            case DirectiveKind::kParallelLoop:
              check_present_clause(ev.directive, ev.column);
              check_wait(ev);  // `wait(q)` clause on a compute construct
              break;
            case DirectiveKind::kMpi:
              check_acc_mpi(ev);
              break;
            default:
              break;
          }
          break;
      }
    }

    // Whole-file checks.
    for (const auto& u : queues.unwaited()) {
      report("IMP006", u.line, 1,
             "work enqueued on async queue " + queue_display(u.queue) +
                 " is never waited on",
             u.queue.empty()
                 ? "add a bare '#pragma acc wait' after the last use"
                 : "add '#pragma acc wait(" + u.queue +
                       ")' after the last use of the queue");
    }
    for (const auto& [var, line] : table.live_unstructured()) {
      report("IMP011", line, 1,
             "buffer '" + var + "' entered at line " + std::to_string(line) +
                 " is never released by a matching exit data",
             "add '#pragma acc exit data delete(" + var +
                 ")' when the buffer's device lifetime ends");
    }
  }
};

/// In-source suppressions: `/* impacc-lint: allow(IMP014) */` (or a
/// `//` comment) silences the named codes on its own line and the line
/// below, so it can sit beside or above the offending statement.
std::map<int, std::set<std::string>> collect_suppressions(
    const std::string& source) {
  std::map<int, std::set<std::string>> out;
  std::istringstream in(source);
  std::string text;
  int line = 0;
  while (std::getline(in, text)) {
    ++line;
    std::size_t at = text.find("impacc-lint:");
    if (at == std::string::npos) continue;
    at = text.find("allow", at);
    if (at == std::string::npos) continue;
    const std::size_t open = text.find('(', at);
    const std::size_t close = text.find(')', at);
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      continue;
    }
    std::string codes = text.substr(open + 1, close - open - 1);
    std::size_t pos = 0;
    while (pos < codes.size()) {
      std::size_t comma = codes.find(',', pos);
      if (comma == std::string::npos) comma = codes.size();
      const std::string code = trim(codes.substr(pos, comma - pos));
      if (!code.empty()) {
        out[line].insert(code);
        out[line + 1].insert(code);
      }
      pos = comma + 1;
    }
  }
  return out;
}

}  // namespace

LintResult lint_source(const std::string& source, const LintOptions& options) {
  const DirectiveStream stream = extract_stream(source);

  Linter linter(stream);
  linter.run();

  LintResult result;
  result.diagnostics = stream.scan_diagnostics;
  result.diagnostics.insert(result.diagnostics.end(),
                            linter.diags.begin(), linter.diags.end());

  if (options.ranks >= 2) {
    SimOptions sim_options;
    sim_options.unroll = options.unroll;
    const RankSimResult sim =
        simulate_ranks(stream, options.ranks, sim_options);
    result.multirank_exact = sim.has_rank_size && sim.comm_exact;
    check_comm_graph(sim, &result.diagnostics);
    check_races(sim, &result.diagnostics);
    check_lifetimes(sim, &result.diagnostics);

    if (options.perf && sim.has_rank_size) {
      const PerfParams params =
          make_perf_params(options.perf_system, options.perf_tasks_per_node);
      const CommGraph graph = build_comm_graph(sim.traces);
      result.perf = predict_makespan(sim, graph, params);
      // The perf rules assume a structurally sound program: skip them
      // when the correctness pass found deadlocks, unmatched messages,
      // or count/type mismatches (IMP013-IMP018) — those findings come
      // first, and their traces would make the estimates meaningless.
      bool structural = false;
      for (const auto& d : result.diagnostics) {
        if (d.code >= "IMP013" && d.code <= "IMP018") structural = true;
      }
      if (!structural) {
        check_perf_rules(sim, graph, params, &result.diagnostics);
      }
    }
  }

  const auto suppressions = collect_suppressions(source);
  if (!suppressions.empty()) {
    std::vector<Diagnostic> kept;
    kept.reserve(result.diagnostics.size());
    for (auto& d : result.diagnostics) {
      auto it = suppressions.find(d.line);
      if (it != suppressions.end() && it->second.count(d.code) != 0) {
        ++result.suppressed;
        continue;
      }
      kept.push_back(std::move(d));
    }
    result.diagnostics = std::move(kept);
  }
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.column != b.column) return a.column < b.column;
                     return a.code < b.code;
                   });
  // Collapse identical findings — same position, code, message, and
  // fix-it, typically from inlined call sites or unrolled iterations —
  // into one diagnostic carrying an occurrence count.
  if (!result.diagnostics.empty()) {
    std::vector<Diagnostic> uniq;
    uniq.reserve(result.diagnostics.size());
    for (auto& d : result.diagnostics) {
      if (!uniq.empty()) {
        Diagnostic& prev = uniq.back();
        if (prev.code == d.code && prev.line == d.line &&
            prev.column == d.column && prev.message == d.message &&
            prev.fixit == d.fixit) {
          prev.occurrences += d.occurrences;
          continue;
        }
      }
      uniq.push_back(std::move(d));
    }
    result.diagnostics = std::move(uniq);
  }
  for (auto& d : result.diagnostics) {
    if (options.warnings_as_errors && d.severity == Severity::kWarning) {
      d.severity = Severity::kError;
    }
    if (d.code == "IMP012") ++result.parse_failures;
    switch (d.severity) {
      case Severity::kError:
        ++result.errors;
        break;
      case Severity::kWarning:
        ++result.warnings;
        break;
      case Severity::kNote:
        ++result.notes;
        break;
    }
  }
  return result;
}

}  // namespace impacc::trans::analysis
