// impacc-lint: a static directive data-flow verifier for MPI+OpenACC
// sources using the paper's `#pragma acc mpi` extension.
//
// The translator (trans/translator.h) lowers directives with no semantic
// checking, so mistakes the runtime would only surface as corruption —
// sending a buffer that was never copied in, waiting on a queue nothing
// was enqueued to, receiving into a buffer handed out readonly — are
// cheapest to catch here, over the directive stream, before lowering.
//
// Checks (see docs/LINT.md for the full catalog with examples):
//   IMP001  double enter-data copyin/create of the same buffer
//   IMP002  exit data / delete / present() on a non-present buffer
//   IMP003  update device/self on a non-present buffer
//   IMP004  host_data use_device on a non-present buffer
//   IMP005  acc mpi sendbuf/recvbuf(device) on a non-present buffer
//   IMP006  async(n) queue that is never waited on
//   IMP007  wait(n) on a queue nothing was enqueued to
//   IMP008  readonly buffer mutated by a later receive
//   IMP009  MPI_Isend/Irecv with no matching wait on the host path
//   IMP010  aliased send/recv buffers within one acc mpi directive
//   IMP011  enter data buffer never released by exit data
//   IMP012  malformed or unsupported directive
//
// Multi-rank checks (the rank-symbolic pass; ranksim.h / commgraph.h /
// hbclock.h, enabled whenever options.ranks >= 2):
//   IMP013  blocking communication forms a wait-for cycle (deadlock)
//   IMP014  send never matched by a receive on the destination rank
//   IMP015  receive never matched by a send on the source rank
//   IMP016  ranks disagree on the order of collective operations
//   IMP017  count/extent mismatch on a matched message
//   IMP018  datatype mismatch on a matched message
//   IMP019  host touches a buffer with a pending async device op
//   IMP020  two async queues touch one buffer with no ordering edge
//
// Loop/lifetime checks (loop-aware, interprocedural simulation; loops
// are unrolled up to options.unroll iterations, statement-level calls to
// user functions are inlined):
//   IMP021  nonblocking buffer reused or written before its wait
//   IMP022  request handle overwritten while still pending
//   IMP023  loop-carried collective-order divergence
//   IMP024  user tag collides with the reserved collective tag window
//
// Performance checks (the cost-model-backed perf pass; perfmodel.h /
// perfrules.cpp, enabled with options.perf — the CLI's --perf):
//   IMP030  blocking send/recv pair a nonblocking rewrite would overlap
//   IMP031  full-array update where the use covers only a subarray
//   IMP032  loop-invariant copyin/copyout hoistable out of the loop
//   IMP033  hand-rolled p2p exchange matching a collective shape
//   IMP034  forced-flat collective above the Rabenseifner crossover
//   IMP035  independent sends serialized on one async queue
//   IMP036  chunk pipeline disabled or pessimally sized
//   IMP037  wait placed earlier than the first true use of the data
//
// Any diagnostic can be silenced in-source with a comment on the same
// line or the line above:  /* impacc-lint: allow(IMP014) */
#pragma once

#include <string>
#include <vector>

#include "trans/analysis/diagnostics.h"
#include "trans/analysis/perfmodel.h"

namespace impacc::trans::analysis {

struct LintOptions {
  /// Promote warnings to errors (the CLI's --werror).
  bool warnings_as_errors = false;
  /// Symbolic ranks for the multi-rank pass (the CLI's --ranks N).
  /// Values < 2 disable the pass (IMP013-IMP024 never fire).
  int ranks = 4;
  /// Maximum loop iterations the rank simulator unrolls exactly (the
  /// CLI's --unroll K). 0 = every loop widens (pre-loop-aware behavior).
  int unroll = 4;
  /// Run the cost-model-backed perf pass (the CLI's --perf): predicted
  /// makespan plus the IMP030-IMP037 rules. Off by default so that
  /// default output is unchanged.
  bool perf = false;
  /// System preset pricing the perf pass ("psg", "beacon", "titan";
  /// the CLI's --perf-system).
  std::string perf_system = "psg";
  /// Ranks packed per node for the perf pass; <= 0 selects the preset's
  /// device count (the CLI's --perf-tpn N).
  int perf_tasks_per_node = 0;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by (line, column, code)
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  /// IMP012 count: the source could not even be scanned into a
  /// directive stream (the CLI's exit code 3).
  int parse_failures = 0;
  /// Diagnostics silenced by `impacc-lint: allow(...)` comments.
  int suppressed = 0;
  /// The multi-rank pass ran, saw MPI_Comm_rank/size, and its traces
  /// were exact: every guard decided, every loop around communication
  /// unrolled within the budget, every peer/tag resolved. This is the
  /// "verified deadlock-free" bit — false means the deadlock/match
  /// analyses were gated off, not that the program is wrong.
  bool multirank_exact = false;
  /// Static makespan prediction (options.perf); perf.ran is false when
  /// the pass was off or the multi-rank simulation was unavailable.
  PerfPrediction perf;

  bool clean() const { return diagnostics.empty(); }
  bool has_errors() const { return errors > 0; }
  bool has_parse_failures() const { return parse_failures > 0; }
};

/// Run every check over one source file.
LintResult lint_source(const std::string& source,
                       const LintOptions& options = {});

}  // namespace impacc::trans::analysis
