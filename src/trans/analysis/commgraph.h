// Static communication graph over rank-symbolic traces (ranksim.h).
//
// Matches every point-to-point operation across the simulated ranks
// into edges (greedy in-order matching per (source, destination, tag,
// communicator), mirroring MPI's non-overtaking rule), checks collective
// call order, and runs a scheduling simulation with rendezvous
// semantics to find wait-for cycles. Feeds four rule families:
//
//   IMP013  cyclic blocking pattern (deadlock)
//   IMP014  unmatched send / peer out of range
//   IMP015  unmatched receive / peer out of range
//   IMP016  collective order mismatch across ranks
//   IMP017  count/extent mismatch on a matched edge
//   IMP018  datatype incompatibility on a matched edge
//   IMP023  loop-carried collective divergence (the diverging call sits
//           in an unrolled loop iteration — an iteration-dependent guard)
//
// All of this only runs when the simulation saw the program exactly
// (RankSimResult::comm_exact): a single unresolved peer, tag, or guard
// disables the whole family rather than risk accusing correct code.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "trans/analysis/diagnostics.h"
#include "trans/analysis/ranksim.h"

namespace impacc::trans::analysis {

/// Position of one operation: (rank, index into that rank's trace).
using OpRef = std::pair<int, std::size_t>;

/// A matched send/receive pair.
struct CommEdge {
  OpRef send;
  OpRef recv;
};

struct CommGraph {
  std::vector<CommEdge> edges;
  std::vector<OpRef> unmatched_sends;
  std::vector<OpRef> unmatched_recvs;
  /// Lookup from either endpoint to its edge index.
  std::map<OpRef, std::size_t> edge_of;
};

/// Greedy in-order matching of every p2p op in `traces`.
CommGraph build_comm_graph(const std::vector<RankTrace>& traces);

/// Run all graph analyses and append diagnostics. No-op unless
/// `sim.has_rank_size && sim.comm_exact`.
void check_comm_graph(const RankSimResult& sim,
                      std::vector<Diagnostic>* out);

}  // namespace impacc::trans::analysis
