// Static happens-before race detection over rank-symbolic traces.
//
// Models the ordering structure of §3.5-3.6 with vector clocks, the
// same device the execution simulator uses dynamically (sim/vclock.h):
// one clock axis per async queue plus one for the host path. An async
// enqueue inherits the host clock (the host issues it), a `wait(q)`
// clause merges the named queue into the construct's queue, and an
// `acc wait` merges the waited queues back into the host. Work on one
// queue is totally ordered (the unified activity queue completes in
// order); everything else is ordered only through those merges.
//
// Two rules fall out of "no ordering edge between conflicting
// accesses":
//
//   IMP019  the host touches a buffer while an asynchronous device op
//           that uses it may still be in flight (no covering wait)
//   IMP020  two async queues touch the same present-table entry, at
//           least one writing, with no wait edge between them
#pragma once

#include <map>
#include <string>
#include <vector>

#include "trans/analysis/diagnostics.h"
#include "trans/analysis/ranksim.h"

namespace impacc::trans::analysis {

/// A vector clock keyed by axis name ("host", "q:<queue>"). Missing
/// components read as zero, matching sim/vclock.h's growable vector.
class VectorClock {
 public:
  void tick(const std::string& axis) { ++c_[axis]; }

  void merge(const VectorClock& other) {
    for (const auto& [axis, t] : other.c_) {
      long& mine = c_[axis];
      if (t > mine) mine = t;
    }
  }

  /// True when every component of *this is <= the matching component
  /// of `other` — i.e. *this happens-before-or-equals `other`.
  bool leq(const VectorClock& other) const {
    for (const auto& [axis, t] : c_) {
      auto it = other.c_.find(axis);
      const long theirs = it == other.c_.end() ? 0 : it->second;
      if (t > theirs) return false;
    }
    return true;
  }

  long at(const std::string& axis) const {
    auto it = c_.find(axis);
    return it == c_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, long> c_;
};

/// Run the race analysis over every simulated rank and append IMP019 /
/// IMP020 diagnostics (deduplicated across ranks by source line).
void check_races(const RankSimResult& sim, std::vector<Diagnostic>* out);

}  // namespace impacc::trans::analysis
