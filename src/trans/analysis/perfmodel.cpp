#include "trans/analysis/perfmodel.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "sim/costmodel.h"
#include "sim/systems.h"

namespace impacc::trans::analysis {

namespace {

using sim::Time;

/// Node index and device of one rank under the default packed,
/// round-robin task-per-device mapping.
struct Placement {
  int node = 0;
  const sim::DeviceDesc* dev = nullptr;
};

Placement place(const PerfParams& p, int rank) {
  Placement pl;
  const int tpn = std::max(1, p.tasks_per_node);
  pl.node = rank / tpn;
  if (!p.node.devices.empty()) {
    pl.dev = &p.node.devices[static_cast<std::size_t>(rank % tpn) %
                             p.node.devices.size()];
  }
  return pl;
}

/// Full price of one p2p payload, split by resource for the breakdown.
struct TransferCost {
  double total = 0.0;     // in-flight seconds (excludes handler overhead)
  double wire = 0.0;      // fabric busy time
  double staging = 0.0;   // PCIe / host-memory busy time
  double overhead = 0.0;  // handler commands
};

TransferCost transfer_cost(const PerfParams& p, std::uint64_t bytes,
                           int src, int dst, bool dev_send, bool dev_recv,
                           std::uint64_t chunk) {
  TransferCost c;
  if (bytes == 0) return c;
  const Placement s = place(p, src);
  const Placement d = place(p, dst);
  if (s.node == d.node) {
    Time t = 0;
    if (dev_send && dev_recv && s.dev != nullptr && d.dev != nullptr) {
      if (sim::peer_copy_possible(*s.dev, *d.dev)) {
        t = sim::peer_copy_time(*s.dev, *d.dev, bytes);
      } else {
        t = sim::staged_dtod_time(p.node, *s.dev, *d.dev, bytes,
                                  /*include_host_copy=*/false);
      }
    } else if (dev_send && s.dev != nullptr) {
      t = sim::pcie_copy_time(p.node, *s.dev, bytes, /*near_socket=*/true);
    } else if (dev_recv && d.dev != nullptr) {
      t = sim::pcie_copy_time(p.node, *d.dev, bytes, /*near_socket=*/true);
    } else {
      t = sim::host_copy_time(p.node, bytes);
    }
    c.total = t;
    c.staging = t;
    c.overhead = p.costs.handler_command_overhead;
    return c;
  }
  std::vector<sim::LinkModel> stages;
  if (dev_send && !p.gpudirect && s.dev != nullptr) {
    stages.push_back(sim::staging_link(p.node, *s.dev, /*near_socket=*/true));
  }
  const std::size_t wire_idx = stages.size();
  stages.push_back(sim::wire_link(p.fabric));
  if (dev_recv && !p.gpudirect && d.dev != nullptr) {
    stages.push_back(sim::staging_link(p.node, *d.dev, /*near_socket=*/true));
  }
  if (chunk == 0 || chunk >= bytes || stages.size() == 1) {
    Time t = 0;
    for (const auto& st : stages) t += st.time(bytes);
    c.total = t;
    c.wire = stages[wire_idx].time(bytes);
  } else {
    c.total = sim::pipelined_transfer_time(stages, bytes, chunk);
    c.wire = sim::chunked_stage_total(stages[wire_idx], bytes, chunk);
  }
  c.staging = std::max(0.0, c.total - c.wire);
  c.overhead = 2.0 * p.costs.handler_command_overhead;
  return c;
}

bool is_gather_family(const std::string& name) {
  return name == "MPI_Allgather" || name == "MPI_Alltoall" ||
         name == "MPI_Gather" || name == "MPI_Scatter";
}

/// Estimated makespan of one collective over `nranks`.
double collective_cost(const PerfParams& p, const RankOp& op, int nranks) {
  const int tpn = std::max(1, p.tasks_per_node);
  const int num_nodes = (nranks + tpn - 1) / tpn;
  std::uint64_t bytes = 0;
  if (op.count.has_value() && *op.count > 0) {
    std::uint64_t esz = mpi_dtype_bytes(op.dtype);
    if (esz == 0) esz = p.default_elem_size;
    bytes = static_cast<std::uint64_t>(*op.count) * esz;
  }
  if (op.forced_flat) {
    if (is_gather_family(op.name)) {
      return sim::flat_allgather_estimate(p.node, p.fabric, nranks,
                                          num_nodes, bytes, p.costs);
    }
    return sim::flat_allreduce_estimate(p.node, p.fabric, nranks, num_nodes,
                                        bytes, p.costs);
  }
  if (op.name == "MPI_Barrier") {
    return sim::hier_bcast_bound(p.node, p.fabric, num_nodes, tpn, 0,
                                 p.costs);
  }
  if (op.name == "MPI_Bcast") {
    return sim::hier_bcast_bound(p.node, p.fabric, num_nodes, tpn, bytes,
                                 p.costs);
  }
  if (is_gather_family(op.name)) {
    return sim::hier_allgather_bound(p.node, p.fabric, num_nodes, tpn, bytes,
                                     p.costs);
  }
  return sim::hier_allreduce_estimate(p.node, p.fabric, num_nodes, tpn,
                                      bytes, p.costs);
}

/// Timeline state of one operation.
struct OpState {
  double post = -1.0;  // issued by the host (-1 = not yet)
  double done = -1.0;  // effect complete (-1 = unresolved)
};

struct QueueState {
  std::vector<std::size_t> items;  // op indices, append order
  std::size_t head = 0;            // first unresolved item
  double free_at = 0.0;            // finish of the last resolved item
};

struct RankState {
  double h = 0.0;  // host clock
  std::size_t pc = 0;
  std::vector<OpState> ops;
  std::map<std::string, QueueState> queues;
  std::size_t coll_done = 0;
  // wait(q) clause snapshots: op index -> (queue, #items at post time)
  std::map<std::size_t, std::vector<std::pair<std::string, std::size_t>>>
      deps;
  // busy-time breakdown
  double wire = 0, staging = 0, kernel = 0, data = 0, coll = 0,
         overhead = 0;
};

/// The virtual-clock replay shared by predict_makespan and the rules.
struct Timeline {
  const RankSimResult& sim_res;
  const CommGraph& graph;
  const PerfParams& p;

  std::vector<RankState> ranks;
  std::vector<std::vector<std::size_t>> coll_idx;  // per-rank collectives
  std::map<std::size_t, std::map<int, double>> coll_arrival;
  std::map<std::size_t, double> coll_release;
  bool priced_everything = true;
  bool forced_progress = false;

  Timeline(const RankSimResult& s, const CommGraph& g, const PerfParams& pp)
      : sim_res(s), graph(g), p(pp) {
    ranks.resize(sim_res.traces.size());
    coll_idx.resize(sim_res.traces.size());
    for (std::size_t r = 0; r < sim_res.traces.size(); ++r) {
      ranks[r].ops.resize(sim_res.traces[r].ops.size());
      for (std::size_t i = 0; i < sim_res.traces[r].ops.size(); ++i) {
        if (sim_res.traces[r].ops[i].kind == RankOpKind::kCollective) {
          coll_idx[r].push_back(i);
        }
      }
    }
  }

  const RankOp& op_at(int r, std::size_t i) const {
    return sim_res.traces[static_cast<std::size_t>(r)].ops[i];
  }

  std::uint64_t elem_size_for(const RankOp& op) const {
    const std::uint64_t esz = mpi_dtype_bytes(op.dtype);
    if (esz != 0) return esz;
    return infer_elem_size(sim_res, op.buffer, p.default_elem_size);
  }

  /// Payload bytes of a matched edge (send side preferred), or 0 when
  /// neither side's count resolved.
  std::uint64_t edge_bytes(const CommEdge& e) {
    const RankOp& s = op_at(e.send.first, e.send.second);
    const RankOp& r = op_at(e.recv.first, e.recv.second);
    for (const RankOp* o : {&s, &r}) {
      if (o->count.has_value() && *o->count > 0) {
        return static_cast<std::uint64_t>(*o->count) * elem_size_for(*o);
      }
    }
    priced_everything = false;
    return 0;
  }

  std::uint64_t chunk_for(const RankOp& s) const {
    if (s.has_chunk_clause) {
      if (s.chunk_bytes_clause.has_value() && *s.chunk_bytes_clause >= 0) {
        return static_cast<std::uint64_t>(*s.chunk_bytes_clause);
      }
    }
    return p.chunk_bytes;
  }

  /// Roofline price of an async compute region on this rank's device.
  double kernel_cost(int r, const RankOp& op) {
    long elems = -1;
    for (const auto& a : op.accesses) {
      if (a.elems.has_value()) elems = std::max(elems, *a.elems);
    }
    if (elems < 0) {
      priced_everything = false;
      elems = 0;
    }
    const double flops = p.kernel_flops_per_element *
                         static_cast<double>(elems);
    const double bytes = p.kernel_bytes_per_element *
                         static_cast<double>(elems);
    const Placement pl = place(p, r);
    if (pl.dev != nullptr) return sim::kernel_time(*pl.dev, flops, bytes);
    return bytes / p.node.host_copy.bandwidth;
  }

  /// Host<->device price of an update directive's transfers.
  double update_cost(int r, const RankOp& op) {
    const Placement pl = place(p, r);
    double total = 0;
    for (const auto& a : op.accesses) {
      if (!a.elems.has_value()) {
        priced_everything = false;
        continue;
      }
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(*a.elems) *
          infer_elem_size(sim_res, a.var, p.default_elem_size);
      total += pl.dev != nullptr
                   ? sim::pcie_copy_time(p.node, *pl.dev, bytes, true)
                   : sim::host_copy_time(p.node, bytes);
    }
    return total;
  }

  double data_move_cost(int r, const RankOp& op) {
    if (!op.count.has_value()) {
      priced_everything = false;
      return 0;
    }
    const Placement pl = place(p, r);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(*op.count) *
        infer_elem_size(sim_res, op.buffer, p.default_elem_size);
    return pl.dev != nullptr
               ? sim::pcie_copy_time(p.node, *pl.dev, bytes, true)
               : sim::host_copy_time(p.node, bytes);
  }

  /// Earliest time op (r,i)'s payload may start moving, or -1 when not
  /// yet known (not posted / stuck behind its queue).
  double ready_time(int r, std::size_t i) {
    RankState& st = ranks[static_cast<std::size_t>(r)];
    const OpState& os = st.ops[i];
    if (os.post < 0) return -1;
    const RankOp& op = op_at(r, i);
    if (!op.has_queue) return os.post;
    const QueueState& q = st.queues[op.queue];
    if (q.head >= q.items.size() || q.items[q.head] != i) return -1;
    double t = std::max(os.post, q.free_at);
    const auto dit = st.deps.find(i);
    if (dit != st.deps.end()) {
      for (const auto& [qn, cnt] : dit->second) {
        if (cnt == 0) continue;
        const QueueState& wq = st.queues[qn];
        if (wq.head < cnt) return -1;  // waited work not resolved yet
        t = std::max(t, st.ops[wq.items[cnt - 1]].done);
      }
    }
    return t;
  }

  /// Mark op (r,i) finished at `t`; advance its queue if it was queued.
  void finish(int r, std::size_t i, double t) {
    RankState& st = ranks[static_cast<std::size_t>(r)];
    st.ops[i].done = t;
    const RankOp& op = op_at(r, i);
    if (op.has_queue) {
      QueueState& q = st.queues[op.queue];
      if (q.head < q.items.size() && q.items[q.head] == i) {
        q.free_at = std::max(q.free_at, t);
        ++q.head;
      }
    }
  }

  bool resolve_edge(const CommEdge& e) {
    RankState& ss = ranks[static_cast<std::size_t>(e.send.first)];
    RankState& rs = ranks[static_cast<std::size_t>(e.recv.first)];
    if (ss.ops[e.send.second].done >= 0) return false;  // already resolved
    const double sr = ready_time(e.send.first, e.send.second);
    const double rr = ready_time(e.recv.first, e.recv.second);
    if (sr < 0 || rr < 0) return false;
    const RankOp& sop = op_at(e.send.first, e.send.second);
    const TransferCost c =
        transfer_cost(p, edge_bytes(e), e.send.first, e.recv.first,
                      sop.dev_send,
                      op_at(e.recv.first, e.recv.second).dev_recv,
                      chunk_for(sop));
    const double start = std::max(sr, rr);
    const double done = start + c.total + c.overhead;
    finish(e.send.first, e.send.second, done);
    finish(e.recv.first, e.recv.second, done);
    for (RankState* st : {&ss, &rs}) {
      st->wire += c.wire;
      st->staging += c.staging;
      st->overhead += c.overhead;
    }
    return true;
  }

  /// Resolve every queue-head op that needs no partner (compute, update).
  bool resolve_queue_heads(int r) {
    RankState& st = ranks[static_cast<std::size_t>(r)];
    bool progress = false;
    for (auto& [name, q] : st.queues) {
      (void)name;
      while (q.head < q.items.size()) {
        const std::size_t i = q.items[q.head];
        const RankOp& op = op_at(r, i);
        if (op.kind == RankOpKind::kSend || op.kind == RankOpKind::kRecv) {
          break;  // needs its partner; resolve_edge handles it
        }
        const double ready = ready_time(r, i);
        if (ready < 0) break;
        const double dur =
            op.is_update ? update_cost(r, op) : kernel_cost(r, op);
        finish(r, i, ready + dur);
        (op.is_update ? st.data : st.kernel) += dur;
        progress = true;
      }
    }
    return progress;
  }

  /// Enqueue op i on its activity queue, snapshotting wait(q) clause
  /// dependencies at post time.
  void post_to_queue(RankState& st, const RankOp& op, std::size_t i,
                     OpState& os) {
    os.post = st.h + p.costs.queue_op_overhead;
    st.h = os.post;
    st.overhead += p.costs.queue_op_overhead;
    if (!op.wait_clause.empty()) {
      auto& d = st.deps[i];
      for (const auto& wq : op.wait_clause) {
        d.emplace_back(wq, st.queues[wq].items.size());
      }
    }
    st.queues[op.queue].items.push_back(i);
  }

  /// Step the host program counter of rank r as far as it can go.
  bool advance_pc(int r) {
    RankState& st = ranks[static_cast<std::size_t>(r)];
    const auto& ops = sim_res.traces[static_cast<std::size_t>(r)].ops;
    bool progress = false;
    while (st.pc < ops.size()) {
      const std::size_t i = st.pc;
      const RankOp& op = ops[i];
      OpState& os = st.ops[i];
      switch (op.kind) {
        case RankOpKind::kDataMove: {
          const double dur = data_move_cost(r, op);
          st.h += dur + p.costs.handler_command_overhead;
          st.data += dur;
          st.overhead += p.costs.handler_command_overhead;
          os.post = os.done = st.h;
          break;
        }
        case RankOpKind::kHostAccess: {
          const double dur = op.is_update ? update_cost(r, op) : 0.0;
          st.h += dur;
          st.data += dur;
          os.post = os.done = st.h;
          break;
        }
        case RankOpKind::kQueueOp: {
          post_to_queue(st, op, i, os);
          break;
        }
        case RankOpKind::kSend:
        case RankOpKind::kRecv: {
          if (op.has_queue) {
            post_to_queue(st, op, i, os);
            break;
          }
          if (os.post < 0) {
            os.post = st.h + p.costs.mpi_call_overhead;
            st.overhead += p.costs.mpi_call_overhead;
            progress = true;
            if (graph.edge_of.find({r, i}) == graph.edge_of.end()) {
              os.done = os.post;  // unmatched: modeled as instantaneous
            }
          }
          if (op.blocking) {
            if (os.done < 0) return progress;  // stalled on the partner
            st.h = std::max(st.h, os.done);
          } else {
            st.h = os.post;  // nonblocking: host moves on
          }
          break;
        }
        case RankOpKind::kAccWait: {
          double t = st.h;
          bool all_resolved = true;
          for (auto& [name, q] : st.queues) {
            const bool covered =
                op.wait_all ||
                std::find(op.wait_queues.begin(), op.wait_queues.end(),
                          name) != op.wait_queues.end();
            if (!covered) continue;
            if (q.head < q.items.size()) {
              all_resolved = false;
              break;
            }
            t = std::max(t, q.free_at);
          }
          if (!all_resolved) return progress;
          st.h = t + p.costs.sync_point_overhead;
          st.overhead += p.costs.sync_point_overhead;
          os.post = os.done = st.h;
          break;
        }
        case RankOpKind::kHostWait: {
          double t = st.h;
          for (std::size_t j = 0; j < i; ++j) {
            const RankOp& prev = ops[j];
            if (prev.kind != RankOpKind::kSend &&
                prev.kind != RankOpKind::kRecv) {
              continue;
            }
            if (prev.blocking || prev.has_queue) continue;
            if (!op.request.empty() && prev.request != op.request) continue;
            if (st.ops[j].done < 0) return progress;  // still in flight
            t = std::max(t, st.ops[j].done);
          }
          st.h = t + p.costs.sync_point_overhead;
          st.overhead += p.costs.sync_point_overhead;
          os.post = os.done = st.h;
          break;
        }
        case RankOpKind::kCollective: {
          const std::size_t k = st.coll_done;
          if (os.post < 0) {
            os.post = st.h + p.costs.mpi_call_overhead;
            st.overhead += p.costs.mpi_call_overhead;
            coll_arrival[k][r] = os.post;
            progress = true;
          }
          const auto rit = coll_release.find(k);
          if (rit == coll_release.end()) {
            // Release once every participant of round k has arrived.
            double arrive = 0;
            bool complete = true;
            for (std::size_t r2 = 0; r2 < coll_idx.size(); ++r2) {
              if (coll_idx[r2].size() <= k) continue;
              const auto ait = coll_arrival[k].find(static_cast<int>(r2));
              if (ait == coll_arrival[k].end()) {
                complete = false;
                break;
              }
              arrive = std::max(arrive, ait->second);
            }
            if (!complete) return progress;
            coll_release[k] =
                arrive +
                collective_cost(p, op, static_cast<int>(sim_res.nranks));
          }
          const double release = coll_release[k];
          st.coll += release - os.post;
          st.h = std::max(st.h, release);
          os.done = release;
          ++st.coll_done;
          break;
        }
      }
      ++st.pc;
      progress = true;
    }
    return progress;
  }

  /// Last resort when the program is not exactly resolvable: complete
  /// one posted-but-unresolved op for free so the replay terminates.
  bool force_one() {
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      RankState& st = ranks[r];
      for (auto& [name, q] : st.queues) {
        (void)name;
        if (q.head < q.items.size() &&
            st.ops[q.items[q.head]].post >= 0 &&
            st.ops[q.items[q.head]].done < 0) {
          finish(static_cast<int>(r), q.items[q.head],
                 std::max(st.ops[q.items[q.head]].post, q.free_at));
          return true;
        }
      }
      for (std::size_t i = 0; i < st.ops.size(); ++i) {
        if (st.ops[i].post >= 0 && st.ops[i].done < 0) {
          finish(static_cast<int>(r), i, st.ops[i].post);
          return true;
        }
      }
    }
    return false;
  }

  void run() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t r = 0; r < ranks.size(); ++r) {
        progress |= advance_pc(static_cast<int>(r));
        progress |= resolve_queue_heads(static_cast<int>(r));
      }
      for (const auto& e : graph.edges) {
        progress |= resolve_edge(e);
      }
      bool stuck = false;
      for (std::size_t r = 0; r < ranks.size(); ++r) {
        stuck |= ranks[r].pc < sim_res.traces[r].ops.size();
      }
      if (!progress && stuck) {
        forced_progress = true;
        if (!force_one()) break;  // nothing left to force; give up
        progress = true;
      }
    }
  }

  double rank_end(std::size_t r) const {
    double t = ranks[r].h;
    for (const auto& os : ranks[r].ops) t = std::max(t, os.done);
    return t;
  }
};

}  // namespace

PerfParams make_perf_params(const std::string& system, int tasks_per_node) {
  PerfParams p;
  p.system = system.empty() ? "psg" : system;
  const sim::ClusterDesc cluster = sim::make_system(p.system, 2);
  if (!cluster.nodes.empty()) p.node = cluster.nodes.front();
  p.fabric = cluster.fabric;
  p.costs = cluster.costs;
  p.tasks_per_node =
      tasks_per_node > 0
          ? tasks_per_node
          : std::max(1, static_cast<int>(p.node.devices.size()));
  return p;
}

std::uint64_t mpi_dtype_bytes(const std::string& dtype) {
  if (dtype == "MPI_BYTE" || dtype == "MPI_CHAR" ||
      dtype == "MPI_SIGNED_CHAR" || dtype == "MPI_UNSIGNED_CHAR") {
    return 1;
  }
  if (dtype == "MPI_SHORT" || dtype == "MPI_UNSIGNED_SHORT") return 2;
  if (dtype == "MPI_INT" || dtype == "MPI_UNSIGNED" ||
      dtype == "MPI_FLOAT" || dtype == "MPI_INT32_T" ||
      dtype == "MPI_UINT32_T") {
    return 4;
  }
  if (dtype == "MPI_DOUBLE" || dtype == "MPI_LONG" ||
      dtype == "MPI_UNSIGNED_LONG" || dtype == "MPI_LONG_LONG" ||
      dtype == "MPI_INT64_T" || dtype == "MPI_UINT64_T" ||
      dtype == "MPI_DOUBLE_INT") {
    return 8;
  }
  if (dtype == "MPI_LONG_DOUBLE") return 16;
  return 0;
}

std::uint64_t infer_elem_size(const RankSimResult& sim,
                              const std::string& var,
                              std::uint64_t fallback) {
  if (var.empty()) return fallback;
  for (const auto& trace : sim.traces) {
    for (const auto& op : trace.ops) {
      if (op.kind != RankOpKind::kSend && op.kind != RankOpKind::kRecv &&
          op.kind != RankOpKind::kCollective) {
        continue;
      }
      if (op.buffer != var) continue;
      const std::uint64_t esz = mpi_dtype_bytes(op.dtype);
      if (esz != 0) return esz;
    }
  }
  return fallback;
}

double p2p_transfer_seconds(const PerfParams& params, std::uint64_t bytes,
                            int src_rank, int dst_rank, bool dev_send,
                            bool dev_recv, std::uint64_t chunk_bytes) {
  const TransferCost c = transfer_cost(params, bytes, src_rank, dst_rank,
                                       dev_send, dev_recv, chunk_bytes);
  return c.total + c.overhead;
}

double p2p_wire_seconds(const PerfParams& params, std::uint64_t bytes,
                        int src_rank, int dst_rank, bool dev_send,
                        bool dev_recv, std::uint64_t chunk_bytes) {
  return transfer_cost(params, bytes, src_rank, dst_rank, dev_send, dev_recv,
                       chunk_bytes)
      .wire;
}

PerfPrediction predict_makespan(const RankSimResult& sim,
                                const CommGraph& graph,
                                const PerfParams& params) {
  PerfPrediction pred;
  pred.ran = true;
  pred.ranks = sim.nranks;
  pred.tasks_per_node = std::max(1, params.tasks_per_node);
  pred.system = params.system;
  if (sim.traces.empty()) {
    pred.exact = sim.has_rank_size && sim.comm_exact;
    return pred;
  }
  Timeline tl(sim, graph, params);
  tl.run();
  std::size_t crit = 0;
  for (std::size_t r = 0; r < tl.ranks.size(); ++r) {
    const double end = tl.rank_end(r);
    if (end > pred.makespan) {
      pred.makespan = end;
      crit = r;
    }
  }
  pred.critical_rank = static_cast<int>(crit);
  const RankState& cs = tl.ranks[crit];
  pred.wire_seconds = cs.wire;
  pred.staging_seconds = cs.staging;
  pred.kernel_seconds = cs.kernel;
  pred.data_seconds = cs.data;
  pred.collective_seconds = cs.coll;
  pred.overhead_seconds = cs.overhead;
  pred.exact = sim.has_rank_size && sim.comm_exact &&
               tl.priced_everything && !tl.forced_progress;
  return pred;
}

}  // namespace impacc::trans::analysis
