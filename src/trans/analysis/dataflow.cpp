#include "trans/analysis/dataflow.h"

#include <cctype>

#include "trans/lexer.h"
#include "trans/pragma_parser.h"

namespace impacc::trans::analysis {

namespace {

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source with line/column tracking. Mirrors the
/// translator's scanner so lint sees exactly the directives translation
/// would see.
struct Scanner {
  const std::string& s;
  std::size_t pos = 0;
  int line = 1;
  int col = 1;

  bool eof() const { return pos >= s.size(); }
  char peek() const { return pos < s.size() ? s[pos] : '\0'; }

  char take() {
    const char c = s[pos++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  }

  void advance_to(std::size_t p) {
    while (pos < p && !eof()) take();
  }

  void skip_trivia() {
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        take();
      } else if (c == '/' && pos + 1 < s.size() && s[pos + 1] == '/') {
        while (!eof() && peek() != '\n') take();
      } else if (c == '/' && pos + 1 < s.size() && s[pos + 1] == '*') {
        take();
        take();
        while (!eof() &&
               !(peek() == '*' && pos + 1 < s.size() && s[pos + 1] == '/')) {
          take();
        }
        if (!eof()) {
          take();
          take();
        }
      } else {
        break;
      }
    }
  }
};

struct OpenRegion {
  int depth = 0;
  int region_id = -1;
  int line = 0;   // line of the opening directive (for diagnostics)
  int seq = 0;    // global open order, to disambiguate same-depth closes
};

/// An if/else branch or loop statement currently being scanned.
/// Single-statement bodies (`if (c) stmt;`, `for (...) stmt;`) close at
/// the next top-level ';', braced ones at the matching '}'.
struct OpenGuard {
  int depth = 0;
  int paren_depth = 0;
  int guard_id = -1;
  bool single_stmt = false;
  int seq = 0;
  std::string chain_neg;  // negated condition for a following `else`
  bool is_loop = false;   // emits kLoopExit instead of kGuardExit
};

/// A function definition currently being scanned (file-scope only).
struct OpenFunc {
  int depth = 0;
  int region_id = -1;
  int seq = 0;
  std::string name;
};

/// C keywords the host-code word scanner must never treat as the
/// left-hand side of an assignment.
bool is_c_keyword(const std::string& w) {
  static const char* kWords[] = {
      "if",     "else",     "for",    "while",  "do",     "switch",
      "case",   "default",  "break",  "continue", "return", "goto",
      "sizeof", "typedef",  "struct", "union",  "enum",   "int",
      "long",   "short",    "char",   "float",  "double", "signed",
      "unsigned", "void",   "const",  "static", "extern", "volatile",
      "register", "inline", "auto",   "size_t", "ptrdiff_t", nullptr};
  for (const char** p = kWords; *p != nullptr; ++p) {
    if (w == *p) return true;
  }
  return false;
}

/// Type-ish keywords that may prefix a loop-header declaration
/// (`for (int i = 0; ...)`); stripping them leaves `i = 0`.
bool is_decl_keyword(const std::string& w) {
  static const char* kWords[] = {"int",      "long",     "short",
                                 "char",     "signed",   "unsigned",
                                 "const",    "register", "volatile",
                                 "auto",     "size_t",   "ptrdiff_t",
                                 "static",   nullptr};
  for (const char** p = kWords; *p != nullptr; ++p) {
    if (w == *p) return true;
  }
  return false;
}

std::string strip_decl_prefix(std::string text) {
  for (;;) {
    std::size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() && word_char(text[j])) ++j;
    if (j == i || !is_decl_keyword(text.substr(i, j - i))) break;
    text = text.substr(j);
  }
  return trim(text);
}

struct StreamBuilder {
  Scanner sc;
  DirectiveStream out;
  int depth = 0;
  int pdepth = 0;  // () / [] nesting in host code
  int next_region_id = 0;
  int next_seq = 0;
  std::vector<OpenRegion> regions;
  std::vector<OpenGuard> guards;
  std::vector<OpenFunc> funcs;
  std::string last_guard_neg;  // from the most recently closed guard
  std::string last_word;       // previous identifier in this statement

  explicit StreamBuilder(const std::string& src) : sc{src} {}

  void scan_error(int line, int column, const std::string& msg,
                  std::string fixit = "") {
    out.scan_diagnostics.push_back(
        make_diagnostic("IMP012", line, column, msg, std::move(fixit)));
  }

  std::string read_line_cont() {
    std::string text;
    while (!sc.eof()) {
      const char c = sc.take();
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          text += ' ';
          continue;
        }
        break;
      }
      text += c;
    }
    return text;
  }

  /// Capture the next statement (up to the top-level ';') or a balanced
  /// compound statement. Returns the captured text.
  bool capture_statement(std::string* stmt, int line) {
    sc.skip_trivia();
    if (sc.peek() == '{') {
      const std::size_t close = match_delim(sc.s, sc.pos);
      if (close == std::string::npos) {
        scan_error(line, 1, "unbalanced braces after directive");
        return false;
      }
      *stmt = sc.s.substr(sc.pos, close - sc.pos + 1);
      sc.advance_to(close + 1);
      return true;
    }
    std::string text;
    int pdepth = 0;
    while (!sc.eof()) {
      const char c = sc.take();
      text += c;
      if (c == '(' || c == '[') ++pdepth;
      if (c == ')' || c == ']') --pdepth;
      if (c == ';' && pdepth == 0) break;
    }
    *stmt = text;
    return true;
  }

  /// Locate and parse the MPI_* call inside a captured statement.
  MpiCall parse_call_in(const std::string& stmt, int line) {
    MpiCall call;
    call.line = line;
    const std::size_t mpi = stmt.find("MPI_");
    if (mpi == std::string::npos) return call;
    std::size_t ne = mpi;
    while (ne < stmt.size() && word_char(stmt[ne])) ++ne;
    call.name = stmt.substr(mpi, ne - mpi);
    const std::size_t open = stmt.find('(', ne);
    if (open == std::string::npos) return call;
    const std::size_t close = match_delim(stmt, open);
    if (close == std::string::npos) return call;
    call.args = split_args(stmt.substr(open + 1, close - open - 1));
    call.valid = true;
    return call;
  }

  void dispatch(const Directive& d, int column) {
    Event ev;
    ev.directive = d;
    ev.line = d.line;
    ev.column = column;
    switch (d.kind) {
      case DirectiveKind::kData:
      case DirectiveKind::kHostData: {
        sc.skip_trivia();
        if (sc.peek() != '{') {
          scan_error(d.line, column,
                     std::string("expected '{' after #pragma acc ") +
                         (d.kind == DirectiveKind::kData ? "data"
                                                         : "host_data"));
          return;
        }
        sc.take();
        ++depth;
        ev.kind = EventKind::kRegionEnter;
        ev.region_id = next_region_id++;
        regions.push_back({depth, ev.region_id, d.line, next_seq++});
        out.events.push_back(std::move(ev));
        break;
      }
      case DirectiveKind::kMpi: {
        std::string stmt;
        if (!capture_statement(&stmt, d.line)) return;
        ev.kind = EventKind::kDirective;
        ev.call = parse_call_in(stmt, d.line);
        if (!ev.call.valid) {
          scan_error(d.line, column,
                     "#pragma acc mpi must precede an MPI call");
        }
        out.events.push_back(std::move(ev));
        break;
      }
      default:
        ev.kind = EventKind::kDirective;
        out.events.push_back(std::move(ev));
        break;
    }
  }

  // --- host-code guard / assignment scanning --------------------------------

  void emit_guard_exit(const OpenGuard& g) {
    Event ev;
    ev.kind = g.is_loop ? EventKind::kLoopExit : EventKind::kGuardExit;
    ev.region_id = g.guard_id;
    ev.line = sc.line;
    ev.column = sc.col;
    out.events.push_back(std::move(ev));
    if (!g.is_loop) last_guard_neg = g.chain_neg;
  }

  /// A single-statement branch ends at the first ';' at its paren depth.
  /// Nested single-statement ifs (`if (a) if (b) x;`) close together.
  void close_single_guards() {
    while (!guards.empty() && guards.back().single_stmt &&
           guards.back().depth == depth &&
           guards.back().paren_depth == pdepth) {
      emit_guard_exit(guards.back());
      guards.pop_back();
    }
  }

  /// Open one if/else branch; the cursor sits just before the body.
  void open_branch(std::string cond, std::string chain_neg, int line,
                   int col) {
    Event ev;
    ev.kind = EventKind::kGuardEnter;
    ev.line = line;
    ev.column = col;
    ev.guard_cond = std::move(cond);
    ev.region_id = next_region_id++;
    sc.skip_trivia();
    bool single = true;
    if (sc.peek() == '{') {
      sc.take();
      ++depth;
      single = false;
    }
    guards.push_back({depth, pdepth, ev.region_id, single, next_seq++,
                      std::move(chain_neg)});
    out.events.push_back(std::move(ev));
  }

  /// `if (...)` (cursor after the `if` keyword). `neg` carries the
  /// accumulated negations of earlier branches in an else-if chain.
  void open_guard(const std::string& neg) {
    const int line = sc.line;
    const int col = sc.col;
    sc.skip_trivia();
    if (sc.peek() != '(') return;  // not a form we model
    const std::size_t close = match_delim(sc.s, sc.pos);
    if (close == std::string::npos) {
      sc.take();
      return;
    }
    const std::string text =
        trim(sc.s.substr(sc.pos + 1, close - sc.pos - 1));
    sc.advance_to(close + 1);
    std::string cond = neg.empty() ? "(" + text + ")"
                                   : neg + " && (" + text + ")";
    std::string chain = neg.empty() ? "!(" + text + ")"
                                    : neg + " && !(" + text + ")";
    open_branch(std::move(cond), std::move(chain), line, col);
  }

  /// `for (init; cond; inc)` / `while (cond)` (cursor after the
  /// keyword). The header pieces are captured textually; the rank
  /// simulator decides whether the trip count is resolvable.
  void open_loop(bool is_for) {
    const int line = sc.line;
    const int col = sc.col;
    sc.skip_trivia();
    if (sc.peek() != '(') return;  // not a form we model
    const std::size_t close = match_delim(sc.s, sc.pos);
    if (close == std::string::npos) {
      sc.take();
      return;
    }
    const std::string header = sc.s.substr(sc.pos + 1, close - sc.pos - 1);
    sc.advance_to(close + 1);

    Event ev;
    ev.kind = EventKind::kLoopEnter;
    ev.line = line;
    ev.column = col;
    ev.region_id = next_region_id++;
    if (is_for) {
      std::vector<std::string> parts;
      std::string part;
      int pd = 0;
      for (const char ch : header) {
        if (ch == '(' || ch == '[') ++pd;
        if (ch == ')' || ch == ']') --pd;
        if (ch == ';' && pd == 0 && parts.size() < 2) {
          parts.push_back(part);
          part.clear();
          continue;
        }
        part += ch;
      }
      parts.push_back(part);
      if (parts.size() == 3) {
        ev.loop_init = strip_decl_prefix(parts[0]);
        ev.loop_cond = trim(parts[1]);
        ev.loop_inc = trim(parts[2]);
      }
      // A header without the two ';'s stays empty, which the rank
      // simulator treats as an unresolvable trip count (widening).
    } else {
      ev.loop_cond = trim(header);
    }
    sc.skip_trivia();
    bool single = true;
    if (sc.peek() == '{') {
      sc.take();
      ++depth;
      single = false;
    }
    guards.push_back({depth, pdepth, ev.region_id, single, next_seq++,
                      std::string(), /*is_loop=*/true});
    out.events.push_back(std::move(ev));
  }

  /// `word = expr;` in host code. Values assigned inside parentheses
  /// (loop headers) or via compound assignment are recorded as unknown so
  /// the rank simulator drops stale bindings instead of trusting them.
  void maybe_assignment(const std::string& word, std::size_t word_end,
                        char prev) {
    const int line = sc.line;
    const int col = sc.col;
    sc.advance_to(word_end);
    if (prev == '.' || is_c_keyword(word)) return;  // member access / keyword
    std::size_t p = word_end;
    while (p < sc.s.size() &&
           std::isspace(static_cast<unsigned char>(sc.s[p]))) {
      ++p;
    }
    if (p >= sc.s.size()) return;
    const char c0 = sc.s[p];
    const char c1 = p + 1 < sc.s.size() ? sc.s[p + 1] : '\0';
    bool unknown = false;
    if (c0 == '=' && c1 != '=') {
      // plain assignment
    } else if ((c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/' ||
                c0 == '%' || c0 == '&' || c0 == '|' || c0 == '^') &&
               c1 == '=') {
      unknown = true;
    } else if ((c0 == '+' && c1 == '+') || (c0 == '-' && c1 == '-')) {
      unknown = true;
    } else {
      return;  // not an assignment to `word`
    }
    Event ev;
    ev.kind = EventKind::kAssign;
    ev.line = line;
    ev.column = col;
    ev.assign_var = word;
    if (!unknown && pdepth == 0) {
      // Capture the right-hand side up to the statement's ';'.
      sc.advance_to(p + 1);
      std::string rhs;
      int local = 0;
      while (!sc.eof()) {
        const char ch = sc.take();
        if (ch == '"' || ch == '\'') {
          rhs += ch;
          while (!sc.eof()) {
            const char qc = sc.take();
            rhs += qc;
            if (qc == '\\' && !sc.eof()) {
              rhs += sc.take();
              continue;
            }
            if (qc == ch) break;
          }
          continue;
        }
        if (ch == '(' || ch == '[') ++local;
        if (ch == ')' || ch == ']') --local;
        if (ch == ';' && local <= 0) break;
        rhs += ch;
      }
      ev.assign_expr = trim(rhs);
      out.events.push_back(std::move(ev));
      close_single_guards();  // the ';' we just consumed ends the branch
      last_word.clear();      // ... and the statement
      return;
    }
    out.events.push_back(std::move(ev));  // value unknown; leave the rest
  }

  /// A host-code identifier (not MPI_*); cursor sits at its first char.
  void handle_word() {
    std::size_t ne = sc.pos;
    while (ne < sc.s.size() && word_char(sc.s[ne])) ++ne;
    const std::string word = sc.s.substr(sc.pos, ne - sc.pos);
    const char prev = sc.pos > 0 ? sc.s[sc.pos - 1] : '\0';
    if (word == "if") {
      sc.advance_to(ne);
      last_word.clear();
      open_guard("");
      return;
    }
    if (word == "else") {
      sc.advance_to(ne);
      last_word.clear();
      const std::string neg = last_guard_neg;
      sc.skip_trivia();
      if (sc.s.compare(sc.pos, 2, "if") == 0 &&
          (sc.pos + 2 >= sc.s.size() || !word_char(sc.s[sc.pos + 2]))) {
        sc.advance_to(sc.pos + 2);
        open_guard(neg);
      } else {
        open_branch(neg, /*chain_neg=*/"", sc.line, sc.col);
      }
      return;
    }
    if (word == "for" || word == "while") {
      sc.advance_to(ne);
      last_word.clear();
      open_loop(word == "for");
      return;
    }
    if (prev != '.' && !is_c_keyword(word) && try_func_or_call(word, ne)) {
      return;
    }
    last_word = word;
    maybe_assignment(word, ne, prev);
  }

  /// Distinguish `name(args) {` (function definition at file scope) and
  /// `name(args);` at statement start (plain call) from everything else.
  /// Returns true when the word was consumed as one of the two.
  bool try_func_or_call(const std::string& word, std::size_t word_end) {
    const int line = sc.line;
    const int col = sc.col;
    std::size_t p = word_end;
    while (p < sc.s.size() &&
           std::isspace(static_cast<unsigned char>(sc.s[p]))) {
      ++p;
    }
    if (p >= sc.s.size() || sc.s[p] != '(') return false;
    const std::size_t close = match_delim(sc.s, p);
    if (close == std::string::npos) return false;
    std::size_t q = close + 1;
    while (q < sc.s.size() &&
           std::isspace(static_cast<unsigned char>(sc.s[q]))) {
      ++q;
    }
    if (q < sc.s.size() && sc.s[q] == '{' && depth == 0 && pdepth == 0) {
      Event ev;
      ev.kind = EventKind::kFuncEnter;
      ev.line = line;
      ev.column = col;
      ev.symbol = word;
      ev.region_id = next_region_id++;
      sc.advance_to(q);
      sc.take();  // '{'
      ++depth;
      funcs.push_back({depth, ev.region_id, next_seq++, word});
      out.events.push_back(std::move(ev));
      last_word.clear();
      return true;
    }
    // A call statement starts the statement (no preceding declarator
    // word, so prototypes like `void f(int);` are not calls).
    if (q < sc.s.size() && sc.s[q] == ';' && pdepth == 0 &&
        last_word.empty()) {
      Event ev;
      ev.kind = EventKind::kCall;
      ev.line = line;
      ev.column = col;
      ev.symbol = word;
      out.events.push_back(std::move(ev));
      sc.advance_to(close + 1);  // the ';' closes single-stmt branches
      last_word.clear();
      return true;
    }
    return false;
  }

  /// An MPI_* identifier in plain host code; cursor sits at 'M'.
  void plain_mpi(std::size_t ident_end) {
    const int line = sc.line;
    const int column = sc.col;
    const std::string name = sc.s.substr(sc.pos, ident_end - sc.pos);
    std::size_t after = ident_end;
    while (after < sc.s.size() &&
           std::isspace(static_cast<unsigned char>(sc.s[after]))) {
      ++after;
    }
    if (after >= sc.s.size() || sc.s[after] != '(') {
      sc.advance_to(ident_end);  // an MPI constant, not a call
      return;
    }
    const std::size_t close = match_delim(sc.s, after);
    if (close == std::string::npos) {
      scan_error(line, column, "unbalanced MPI call");
      sc.advance_to(ident_end);
      return;
    }
    Event ev;
    ev.kind = EventKind::kMpiCall;
    ev.line = line;
    ev.column = column;
    ev.call.name = name;
    ev.call.args = split_args(sc.s.substr(after + 1, close - after - 1));
    ev.call.line = line;
    ev.call.column = column;
    ev.call.valid = true;
    out.events.push_back(std::move(ev));
    sc.advance_to(close + 1);
  }

  DirectiveStream run() {
    bool at_line_start = true;
    while (!sc.eof()) {
      const char c = sc.peek();
      if (at_line_start) {
        std::size_t p = sc.pos;
        while (p < sc.s.size() && (sc.s[p] == ' ' || sc.s[p] == '\t')) ++p;
        if (p < sc.s.size() && sc.s[p] == '#') {
          const int line = sc.line;
          const int column = static_cast<int>(p - sc.pos) + sc.col;
          sc.advance_to(p);
          const std::string full = read_line_cont();
          const std::string after_hash = trim(full.substr(1));
          if (after_hash.rfind("pragma", 0) == 0) {
            std::string err;
            auto d = parse_pragma(trim(after_hash.substr(6)), line, &err);
            if (d.has_value()) {
              dispatch(*d, column);
            } else if (!err.empty()) {
              scan_error(line, column, err);
            }
          }
          last_word.clear();
          at_line_start = true;
          continue;
        }
      }
      if (c == '/' && sc.pos + 1 < sc.s.size() &&
          (sc.s[sc.pos + 1] == '/' || sc.s[sc.pos + 1] == '*')) {
        sc.skip_trivia();
        at_line_start = true;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char q = sc.take();
        while (!sc.eof()) {
          const char ch = sc.take();
          if (ch == '\\' && !sc.eof()) {
            sc.take();
            continue;
          }
          if (ch == q) break;
        }
        at_line_start = false;
        continue;
      }
      if (c == 'M' && sc.s.compare(sc.pos, 4, "MPI_") == 0 &&
          (sc.pos == 0 || !word_char(sc.s[sc.pos - 1]))) {
        std::size_t ne = sc.pos;
        while (ne < sc.s.size() && word_char(sc.s[ne])) ++ne;
        plain_mpi(ne);
        at_line_start = false;
        continue;
      }
      if ((std::isalpha(static_cast<unsigned char>(c)) || c == '_') &&
          (sc.pos == 0 || !word_char(sc.s[sc.pos - 1]))) {
        handle_word();
        at_line_start = false;
        continue;
      }
      if (c == '(' || c == '[') {
        ++pdepth;
      } else if (c == ')' || c == ']') {
        --pdepth;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        // The '}' closes whichever same-depth construct opened last: a
        // data/host_data region, a braced if/else or loop body, or a
        // function definition.
        const bool region_match =
            !regions.empty() && regions.back().depth == depth;
        const bool guard_match = !guards.empty() &&
                                 !guards.back().single_stmt &&
                                 guards.back().depth == depth;
        const bool func_match = !funcs.empty() && funcs.back().depth == depth;
        int best = -1;  // 0 guard, 1 region, 2 func
        int best_seq = -1;
        if (guard_match && guards.back().seq > best_seq) {
          best = 0;
          best_seq = guards.back().seq;
        }
        if (region_match && regions.back().seq > best_seq) {
          best = 1;
          best_seq = regions.back().seq;
        }
        if (func_match && funcs.back().seq > best_seq) {
          best = 2;
          best_seq = funcs.back().seq;
        }
        if (best == 0) {
          emit_guard_exit(guards.back());
          guards.pop_back();
        } else if (best == 1) {
          Event ev;
          ev.kind = EventKind::kRegionExit;
          ev.region_id = regions.back().region_id;
          ev.line = sc.line;
          ev.column = sc.col;
          out.events.push_back(std::move(ev));
          regions.pop_back();
        } else if (best == 2) {
          Event ev;
          ev.kind = EventKind::kFuncExit;
          ev.region_id = funcs.back().region_id;
          ev.symbol = funcs.back().name;
          ev.line = sc.line;
          ev.column = sc.col;
          out.events.push_back(std::move(ev));
          funcs.pop_back();
        }
        --depth;
      }
      if (!std::isspace(static_cast<unsigned char>(c)) && c != '*') {
        last_word.clear();
      }
      sc.take();
      if (c == ';') close_single_guards();
      if (c == '}') close_single_guards();
      at_line_start = (c == '\n');
    }
    for (const auto& r : regions) {
      scan_error(r.line, 1, "unclosed #pragma acc data region");
    }
    return std::move(out);
  }
};

}  // namespace

DirectiveStream extract_stream(const std::string& source) {
  StreamBuilder b(source);
  return b.run();
}

std::string base_identifier(const std::string& expr) {
  std::size_t i = 0;
  // Strip leading address-of, dereference, casts-by-parenthesis, spaces.
  while (i < expr.size()) {
    const char c = expr[i];
    if (c == '&' || c == '*' || c == '(' ||
        std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else {
      break;
    }
  }
  std::size_t j = i;
  while (j < expr.size() && word_char(expr[j])) ++j;
  return expr.substr(i, j - i);
}

std::optional<BufferRoles> mpi_buffer_roles(const std::string& name) {
  // Mirrors the routine surface rewrite_mpi_call() supports.
  if (name == "MPI_Send" || name == "MPI_Ssend" || name == "MPI_Isend" ||
      name == "MPI_Bcast") {
    return BufferRoles{0, -1};
  }
  if (name == "MPI_Recv" || name == "MPI_Irecv") {
    return BufferRoles{-1, 0};
  }
  if (name == "MPI_Reduce" || name == "MPI_Allreduce" || name == "MPI_Scan" ||
      name == "MPI_Reduce_scatter_block") {
    return BufferRoles{0, 1};
  }
  if (name == "MPI_Gather" || name == "MPI_Scatter" ||
      name == "MPI_Allgather" || name == "MPI_Alltoall") {
    return BufferRoles{0, 3};
  }
  return std::nullopt;
}

bool is_nonblocking_p2p(const std::string& name) {
  return name == "MPI_Isend" || name == "MPI_Irecv";
}

// --- SymbolicPresentTable ---------------------------------------------------

int SymbolicPresentTable::enter(const std::string& var, int line,
                                bool structured) {
  Entry& e = entries_[var];
  const int prior_unstructured = e.unstructured_refs;
  if (structured) {
    ++e.structured_refs;
  } else {
    ++e.unstructured_refs;
  }
  if (e.first_enter_line == 0) e.first_enter_line = line;
  return prior_unstructured;
}

bool SymbolicPresentTable::exit(const std::string& var, bool structured) {
  auto it = entries_.find(var);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (structured) {
    if (e.structured_refs == 0) return false;
    --e.structured_refs;
  } else {
    if (e.unstructured_refs == 0 && e.structured_refs == 0) return false;
    // An exit data may legally release a structured reference's object in
    // dynamic code; prefer draining unstructured references first.
    if (e.unstructured_refs > 0) {
      --e.unstructured_refs;
    } else {
      --e.structured_refs;
    }
  }
  if (e.structured_refs == 0 && e.unstructured_refs == 0) {
    entries_.erase(it);
  }
  return true;
}

bool SymbolicPresentTable::present(const std::string& var) const {
  return entries_.count(var) != 0;
}

std::vector<std::pair<std::string, int>>
SymbolicPresentTable::live_unstructured() const {
  std::vector<std::pair<std::string, int>> out;
  for (const auto& [var, e] : entries_) {
    if (e.unstructured_refs > 0) out.emplace_back(var, e.first_enter_line);
  }
  return out;
}

// --- QueueTracker -----------------------------------------------------------

void QueueTracker::use(const std::string& queue, int line) {
  uses_[queue].push_back({line, false});
}

void QueueTracker::wait(const std::string& queue, int line) {
  auto it = uses_.find(queue);
  if (it == uses_.end()) return;
  for (auto& u : it->second) {
    if (u.line <= line) u.covered = true;
  }
}

void QueueTracker::wait_all(int line) {
  for (auto& [q, recs] : uses_) {
    (void)q;
    for (auto& u : recs) {
      if (u.line <= line) u.covered = true;
    }
  }
}

bool QueueTracker::used_before(const std::string& queue, int line) const {
  auto it = uses_.find(queue);
  if (it == uses_.end()) return false;
  for (const auto& u : it->second) {
    if (u.line <= line) return true;
  }
  return false;
}

std::vector<QueueTracker::QueueUse> QueueTracker::unwaited() const {
  std::vector<QueueUse> out;
  for (const auto& [q, recs] : uses_) {
    for (const auto& u : recs) {
      if (!u.covered) {
        out.push_back({q, u.line});
        break;  // first uncovered use per queue is enough
      }
    }
  }
  return out;
}

bool QueueTracker::fully_waited(const std::string& queue) const {
  auto it = uses_.find(queue);
  if (it == uses_.end()) return true;
  for (const auto& u : it->second) {
    if (!u.covered) return false;
  }
  return true;
}

}  // namespace impacc::trans::analysis
