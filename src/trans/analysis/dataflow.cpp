#include "trans/analysis/dataflow.h"

#include <cctype>

#include "trans/lexer.h"
#include "trans/pragma_parser.h"

namespace impacc::trans::analysis {

namespace {

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source with line/column tracking. Mirrors the
/// translator's scanner so lint sees exactly the directives translation
/// would see.
struct Scanner {
  const std::string& s;
  std::size_t pos = 0;
  int line = 1;
  int col = 1;

  bool eof() const { return pos >= s.size(); }
  char peek() const { return pos < s.size() ? s[pos] : '\0'; }

  char take() {
    const char c = s[pos++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  }

  void advance_to(std::size_t p) {
    while (pos < p && !eof()) take();
  }

  void skip_trivia() {
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        take();
      } else if (c == '/' && pos + 1 < s.size() && s[pos + 1] == '/') {
        while (!eof() && peek() != '\n') take();
      } else if (c == '/' && pos + 1 < s.size() && s[pos + 1] == '*') {
        take();
        take();
        while (!eof() &&
               !(peek() == '*' && pos + 1 < s.size() && s[pos + 1] == '/')) {
          take();
        }
        if (!eof()) {
          take();
          take();
        }
      } else {
        break;
      }
    }
  }
};

struct OpenRegion {
  int depth = 0;
  int region_id = -1;
  int line = 0;  // line of the opening directive (for diagnostics)
};

struct StreamBuilder {
  Scanner sc;
  DirectiveStream out;
  int depth = 0;
  int next_region_id = 0;
  std::vector<OpenRegion> regions;

  explicit StreamBuilder(const std::string& src) : sc{src} {}

  void scan_error(int line, int column, const std::string& msg,
                  std::string fixit = "") {
    out.scan_diagnostics.push_back(
        make_diagnostic("IMP012", line, column, msg, std::move(fixit)));
  }

  std::string read_line_cont() {
    std::string text;
    while (!sc.eof()) {
      const char c = sc.take();
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          text += ' ';
          continue;
        }
        break;
      }
      text += c;
    }
    return text;
  }

  /// Capture the next statement (up to the top-level ';') or a balanced
  /// compound statement. Returns the captured text.
  bool capture_statement(std::string* stmt, int line) {
    sc.skip_trivia();
    if (sc.peek() == '{') {
      const std::size_t close = match_delim(sc.s, sc.pos);
      if (close == std::string::npos) {
        scan_error(line, 1, "unbalanced braces after directive");
        return false;
      }
      *stmt = sc.s.substr(sc.pos, close - sc.pos + 1);
      sc.advance_to(close + 1);
      return true;
    }
    std::string text;
    int pdepth = 0;
    while (!sc.eof()) {
      const char c = sc.take();
      text += c;
      if (c == '(' || c == '[') ++pdepth;
      if (c == ')' || c == ']') --pdepth;
      if (c == ';' && pdepth == 0) break;
    }
    *stmt = text;
    return true;
  }

  /// Locate and parse the MPI_* call inside a captured statement.
  MpiCall parse_call_in(const std::string& stmt, int line) {
    MpiCall call;
    call.line = line;
    const std::size_t mpi = stmt.find("MPI_");
    if (mpi == std::string::npos) return call;
    std::size_t ne = mpi;
    while (ne < stmt.size() && word_char(stmt[ne])) ++ne;
    call.name = stmt.substr(mpi, ne - mpi);
    const std::size_t open = stmt.find('(', ne);
    if (open == std::string::npos) return call;
    const std::size_t close = match_delim(stmt, open);
    if (close == std::string::npos) return call;
    call.args = split_args(stmt.substr(open + 1, close - open - 1));
    call.valid = true;
    return call;
  }

  void dispatch(const Directive& d, int column) {
    Event ev;
    ev.directive = d;
    ev.line = d.line;
    ev.column = column;
    switch (d.kind) {
      case DirectiveKind::kData:
      case DirectiveKind::kHostData: {
        sc.skip_trivia();
        if (sc.peek() != '{') {
          scan_error(d.line, column,
                     std::string("expected '{' after #pragma acc ") +
                         (d.kind == DirectiveKind::kData ? "data"
                                                         : "host_data"));
          return;
        }
        sc.take();
        ++depth;
        ev.kind = EventKind::kRegionEnter;
        ev.region_id = next_region_id++;
        regions.push_back({depth, ev.region_id, d.line});
        out.events.push_back(std::move(ev));
        break;
      }
      case DirectiveKind::kMpi: {
        std::string stmt;
        if (!capture_statement(&stmt, d.line)) return;
        ev.kind = EventKind::kDirective;
        ev.call = parse_call_in(stmt, d.line);
        if (!ev.call.valid) {
          scan_error(d.line, column,
                     "#pragma acc mpi must precede an MPI call");
        }
        out.events.push_back(std::move(ev));
        break;
      }
      default:
        ev.kind = EventKind::kDirective;
        out.events.push_back(std::move(ev));
        break;
    }
  }

  /// An MPI_* identifier in plain host code; cursor sits at 'M'.
  void plain_mpi(std::size_t ident_end) {
    const int line = sc.line;
    const int column = sc.col;
    const std::string name = sc.s.substr(sc.pos, ident_end - sc.pos);
    std::size_t after = ident_end;
    while (after < sc.s.size() &&
           std::isspace(static_cast<unsigned char>(sc.s[after]))) {
      ++after;
    }
    if (after >= sc.s.size() || sc.s[after] != '(') {
      sc.advance_to(ident_end);  // an MPI constant, not a call
      return;
    }
    const std::size_t close = match_delim(sc.s, after);
    if (close == std::string::npos) {
      scan_error(line, column, "unbalanced MPI call");
      sc.advance_to(ident_end);
      return;
    }
    Event ev;
    ev.kind = EventKind::kMpiCall;
    ev.line = line;
    ev.column = column;
    ev.call.name = name;
    ev.call.args = split_args(sc.s.substr(after + 1, close - after - 1));
    ev.call.line = line;
    ev.call.column = column;
    ev.call.valid = true;
    out.events.push_back(std::move(ev));
    sc.advance_to(close + 1);
  }

  DirectiveStream run() {
    bool at_line_start = true;
    while (!sc.eof()) {
      const char c = sc.peek();
      if (at_line_start) {
        std::size_t p = sc.pos;
        while (p < sc.s.size() && (sc.s[p] == ' ' || sc.s[p] == '\t')) ++p;
        if (p < sc.s.size() && sc.s[p] == '#') {
          const int line = sc.line;
          const int column = static_cast<int>(p - sc.pos) + sc.col;
          sc.advance_to(p);
          const std::string full = read_line_cont();
          const std::string after_hash = trim(full.substr(1));
          if (after_hash.rfind("pragma", 0) == 0) {
            std::string err;
            auto d = parse_pragma(trim(after_hash.substr(6)), line, &err);
            if (d.has_value()) {
              dispatch(*d, column);
            } else if (!err.empty()) {
              scan_error(line, column, err);
            }
          }
          at_line_start = true;
          continue;
        }
      }
      if (c == '/' && sc.pos + 1 < sc.s.size() &&
          (sc.s[sc.pos + 1] == '/' || sc.s[sc.pos + 1] == '*')) {
        sc.skip_trivia();
        at_line_start = true;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char q = sc.take();
        while (!sc.eof()) {
          const char ch = sc.take();
          if (ch == '\\' && !sc.eof()) {
            sc.take();
            continue;
          }
          if (ch == q) break;
        }
        at_line_start = false;
        continue;
      }
      if (c == 'M' && sc.s.compare(sc.pos, 4, "MPI_") == 0 &&
          (sc.pos == 0 || !word_char(sc.s[sc.pos - 1]))) {
        std::size_t ne = sc.pos;
        while (ne < sc.s.size() && word_char(sc.s[ne])) ++ne;
        plain_mpi(ne);
        at_line_start = false;
        continue;
      }
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (!regions.empty() && regions.back().depth == depth) {
          Event ev;
          ev.kind = EventKind::kRegionExit;
          ev.region_id = regions.back().region_id;
          ev.line = sc.line;
          ev.column = sc.col;
          out.events.push_back(std::move(ev));
          regions.pop_back();
        }
        --depth;
      }
      sc.take();
      at_line_start = (c == '\n');
    }
    for (const auto& r : regions) {
      scan_error(r.line, 1, "unclosed #pragma acc data region");
    }
    return std::move(out);
  }
};

}  // namespace

DirectiveStream extract_stream(const std::string& source) {
  StreamBuilder b(source);
  return b.run();
}

std::string base_identifier(const std::string& expr) {
  std::size_t i = 0;
  // Strip leading address-of, dereference, casts-by-parenthesis, spaces.
  while (i < expr.size()) {
    const char c = expr[i];
    if (c == '&' || c == '*' || c == '(' ||
        std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else {
      break;
    }
  }
  std::size_t j = i;
  while (j < expr.size() && word_char(expr[j])) ++j;
  return expr.substr(i, j - i);
}

std::optional<BufferRoles> mpi_buffer_roles(const std::string& name) {
  // Mirrors the routine surface rewrite_mpi_call() supports.
  if (name == "MPI_Send" || name == "MPI_Ssend" || name == "MPI_Isend" ||
      name == "MPI_Bcast") {
    return BufferRoles{0, -1};
  }
  if (name == "MPI_Recv" || name == "MPI_Irecv") {
    return BufferRoles{-1, 0};
  }
  if (name == "MPI_Reduce" || name == "MPI_Allreduce" || name == "MPI_Scan" ||
      name == "MPI_Reduce_scatter_block") {
    return BufferRoles{0, 1};
  }
  if (name == "MPI_Gather" || name == "MPI_Scatter" ||
      name == "MPI_Allgather" || name == "MPI_Alltoall") {
    return BufferRoles{0, 3};
  }
  return std::nullopt;
}

bool is_nonblocking_p2p(const std::string& name) {
  return name == "MPI_Isend" || name == "MPI_Irecv";
}

// --- SymbolicPresentTable ---------------------------------------------------

int SymbolicPresentTable::enter(const std::string& var, int line,
                                bool structured) {
  Entry& e = entries_[var];
  const int prior_unstructured = e.unstructured_refs;
  if (structured) {
    ++e.structured_refs;
  } else {
    ++e.unstructured_refs;
  }
  if (e.first_enter_line == 0) e.first_enter_line = line;
  return prior_unstructured;
}

bool SymbolicPresentTable::exit(const std::string& var, bool structured) {
  auto it = entries_.find(var);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (structured) {
    if (e.structured_refs == 0) return false;
    --e.structured_refs;
  } else {
    if (e.unstructured_refs == 0 && e.structured_refs == 0) return false;
    // An exit data may legally release a structured reference's object in
    // dynamic code; prefer draining unstructured references first.
    if (e.unstructured_refs > 0) {
      --e.unstructured_refs;
    } else {
      --e.structured_refs;
    }
  }
  if (e.structured_refs == 0 && e.unstructured_refs == 0) {
    entries_.erase(it);
  }
  return true;
}

bool SymbolicPresentTable::present(const std::string& var) const {
  return entries_.count(var) != 0;
}

std::vector<std::pair<std::string, int>>
SymbolicPresentTable::live_unstructured() const {
  std::vector<std::pair<std::string, int>> out;
  for (const auto& [var, e] : entries_) {
    if (e.unstructured_refs > 0) out.emplace_back(var, e.first_enter_line);
  }
  return out;
}

// --- QueueTracker -----------------------------------------------------------

void QueueTracker::use(const std::string& queue, int line) {
  uses_[queue].push_back({line, false});
}

void QueueTracker::wait(const std::string& queue, int line) {
  auto it = uses_.find(queue);
  if (it == uses_.end()) return;
  for (auto& u : it->second) {
    if (u.line <= line) u.covered = true;
  }
}

void QueueTracker::wait_all(int line) {
  for (auto& [q, recs] : uses_) {
    (void)q;
    for (auto& u : recs) {
      if (u.line <= line) u.covered = true;
    }
  }
}

bool QueueTracker::used_before(const std::string& queue, int line) const {
  auto it = uses_.find(queue);
  if (it == uses_.end()) return false;
  for (const auto& u : it->second) {
    if (u.line <= line) return true;
  }
  return false;
}

std::vector<QueueTracker::QueueUse> QueueTracker::unwaited() const {
  std::vector<QueueUse> out;
  for (const auto& [q, recs] : uses_) {
    for (const auto& u : recs) {
      if (!u.covered) {
        out.push_back({q, u.line});
        break;  // first uncovered use per queue is enough
      }
    }
  }
  return out;
}

bool QueueTracker::fully_waited(const std::string& queue) const {
  auto it = uses_.find(queue);
  if (it == uses_.end()) return true;
  for (const auto& u : it->second) {
    if (!u.covered) return false;
  }
  return true;
}

}  // namespace impacc::trans::analysis
