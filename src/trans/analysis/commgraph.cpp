#include "trans/analysis/commgraph.h"

#include <algorithm>
#include <set>
#include <string>

namespace impacc::trans::analysis {

namespace {

bool is_p2p(const RankOp& op) {
  return op.kind == RankOpKind::kSend || op.kind == RankOpKind::kRecv;
}

/// MPI basic datatypes the checker can compare by name.
bool is_basic_dtype(const std::string& t) {
  static const char* kBasic[] = {
      "MPI_CHAR",      "MPI_SIGNED_CHAR", "MPI_UNSIGNED_CHAR",
      "MPI_BYTE",      "MPI_SHORT",       "MPI_UNSIGNED_SHORT",
      "MPI_INT",       "MPI_UNSIGNED",    "MPI_LONG",
      "MPI_UNSIGNED_LONG", "MPI_LONG_LONG", "MPI_LONG_LONG_INT",
      "MPI_UNSIGNED_LONG_LONG", "MPI_FLOAT", "MPI_DOUBLE",
      "MPI_LONG_DOUBLE", "MPI_C_BOOL",    "MPI_INT8_T",
      "MPI_INT16_T",   "MPI_INT32_T",     "MPI_INT64_T",
      "MPI_UINT8_T",   "MPI_UINT16_T",    "MPI_UINT32_T",
      "MPI_UINT64_T",  nullptr};
  for (const char** p = kBasic; *p != nullptr; ++p) {
    if (t == *p) return true;
  }
  return false;
}

std::string rank_str(int r) { return "rank " + std::to_string(r); }

}  // namespace

CommGraph build_comm_graph(const std::vector<RankTrace>& traces) {
  CommGraph g;
  const int nranks = static_cast<int>(traces.size());
  // matched[r][i] marks ops already paired.
  std::vector<std::vector<bool>> matched(traces.size());
  for (std::size_t r = 0; r < traces.size(); ++r) {
    matched[r].assign(traces[r].ops.size(), false);
  }

  for (int r = 0; r < nranks; ++r) {
    for (std::size_t i = 0; i < traces[r].ops.size(); ++i) {
      const RankOp& s = traces[r].ops[i];
      if (s.kind != RankOpKind::kSend) continue;
      if (!s.peer.has_value() || !s.tag.has_value()) continue;
      const long p = *s.peer;
      if (p < 0 || p >= nranks) {
        g.unmatched_sends.push_back({r, i});
        continue;
      }
      bool found = false;
      for (std::size_t j = 0; j < traces[p].ops.size(); ++j) {
        const RankOp& d = traces[p].ops[j];
        if (d.kind != RankOpKind::kRecv || matched[p][j]) continue;
        if (!d.peer.has_value() || !d.tag.has_value()) continue;
        if (*d.peer != r && *d.peer != kMpiAnySource) continue;
        if (*d.tag != *s.tag && *d.tag != kMpiAnyTag) continue;
        if (d.comm != s.comm) continue;
        matched[r][i] = true;
        matched[p][j] = true;
        g.edge_of[{r, i}] = g.edges.size();
        g.edge_of[{static_cast<int>(p), j}] = g.edges.size();
        g.edges.push_back({{r, i}, {static_cast<int>(p), j}});
        found = true;
        break;
      }
      if (!found) g.unmatched_sends.push_back({r, i});
    }
  }
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t i = 0; i < traces[r].ops.size(); ++i) {
      const RankOp& d = traces[r].ops[i];
      if (d.kind == RankOpKind::kRecv && !matched[r][i]) {
        g.unmatched_recvs.push_back({r, i});
      }
    }
  }
  return g;
}

namespace {

/// Collective call sequences must agree across ranks (IMP016). Returns
/// true when they do (so the deadlock simulation may treat the k-th
/// collective of each rank as one synchronization round).
bool check_collectives(const std::vector<RankTrace>& traces,
                       std::vector<Diagnostic>* out) {
  std::vector<std::vector<const RankOp*>> seq(traces.size());
  for (std::size_t r = 0; r < traces.size(); ++r) {
    for (const auto& op : traces[r].ops) {
      if (op.kind == RankOpKind::kCollective) seq[r].push_back(&op);
    }
  }
  // A divergence whose diverging call sits inside an unrolled loop
  // iteration is the loop-carried flavor: the guard depends on the
  // iteration variable, so ranks drift apart round by round (IMP023).
  const auto loop_carried = [](const RankOp& op) {
    return op.loop_depth > 0;
  };
  const auto loop_note = [](const RankOp& op) {
    std::string note = " (inside the loop at line " +
                       std::to_string(op.loop_line);
    if (op.loop_iter >= 0) {
      note += ", iteration " + std::to_string(op.loop_iter);
    }
    return note + ")";
  };
  for (std::size_t r = 1; r < traces.size(); ++r) {
    const std::size_t n = std::min(seq[0].size(), seq[r].size());
    for (std::size_t k = 0; k < n; ++k) {
      const RankOp& a = *seq[0][k];
      const RankOp& b = *seq[r][k];
      if (a.name != b.name || a.comm != b.comm) {
        if (loop_carried(a) || loop_carried(b)) {
          const RankOp& at = loop_carried(b) ? b : a;
          out->push_back(make_diagnostic(
              "IMP023", at.line, at.column,
              "loop-carried collective divergence: rank 0 reaches " +
                  a.name + " at line " + std::to_string(a.line) + " but " +
                  rank_str(static_cast<int>(r)) + " reaches " + b.name +
                  " as collective #" + std::to_string(k + 1) +
                  loop_note(at),
              "hoist the collective out of the iteration-dependent "
              "branch, or make its guard agree on every rank in every "
              "iteration"));
        } else {
          out->push_back(make_diagnostic(
              "IMP016", b.line, b.column,
              "collective order diverges across ranks: rank 0 reaches " +
                  a.name + " at line " + std::to_string(a.line) + " but " +
                  rank_str(static_cast<int>(r)) + " reaches " + b.name +
                  " as collective #" + std::to_string(k + 1),
              "make every rank execute the same collective sequence on "
              "the same communicator"));
        }
        return false;
      }
    }
    if (seq[0].size() != seq[r].size()) {
      const bool zero_longer = seq[0].size() > seq[r].size();
      const RankOp& extra = zero_longer ? *seq[0][n] : *seq[r][n];
      const std::string who = zero_longer
                                  ? std::string("rank 0")
                                  : rank_str(static_cast<int>(r));
      const std::string other = zero_longer
                                    ? rank_str(static_cast<int>(r))
                                    : std::string("rank 0");
      if (loop_carried(extra)) {
        out->push_back(make_diagnostic(
            "IMP023", extra.line, extra.column,
            "loop-carried collective divergence: " + who + " calls " +
                extra.name + " at line " + std::to_string(extra.line) +
                loop_note(extra) + " but " + other + " executes only " +
                std::to_string(n) +
                " collectives — an iteration-dependent guard makes the "
                "rounds drift apart",
            "hoist the collective out of the iteration-dependent branch, "
            "or make its guard agree on every rank in every iteration"));
      } else {
        out->push_back(make_diagnostic(
            "IMP016", extra.line, extra.column,
            "collective order diverges across ranks: " + who + " calls " +
                extra.name + " at line " + std::to_string(extra.line) +
                " but " + other + " executes only " + std::to_string(n) +
                " collectives",
            "guard collectives identically on every rank, or move this "
            "one outside the rank-dependent branch"));
      }
      return false;
    }
  }
  return true;
}

/// Unmatched-op diagnostics (IMP014/IMP015), deduplicated per source
/// line so N ranks hitting the same call produce one report.
void report_unmatched(const std::vector<RankTrace>& traces,
                      const std::vector<OpRef>& refs, const char* code,
                      int nranks, std::vector<Diagnostic>* out) {
  std::set<int> seen_lines;
  for (const auto& [r, i] : refs) {
    const RankOp& op = traces[r].ops[i];
    if (!seen_lines.insert(op.line).second) continue;
    const bool send = op.kind == RankOpKind::kSend;
    std::string msg;
    std::string fix;
    if (op.peer.has_value() && (*op.peer < 0 || *op.peer >= nranks)) {
      msg = rank_str(r) + (send ? " sends to" : " receives from") +
            " peer " + std::to_string(*op.peer) + ", which is outside 0.." +
            std::to_string(nranks - 1) + " for " +
            std::to_string(nranks) + " ranks";
      fix = "clamp the neighbour expression at the boundary ranks "
            "(e.g. guard with 'if (rank + 1 < size)' or use "
            "MPI_PROC_NULL)";
    } else {
      msg = op.name + " at " + rank_str(r) +
            (send ? " to " : " from ") + "peer " +
            (op.peer ? std::to_string(*op.peer) : std::string("?")) +
            " (tag " + (op.tag ? std::to_string(*op.tag) : "?") +
            ") is never matched by a " +
            (send ? "receive on the destination rank"
                  : "send on the source rank");
      fix = send ? "post a matching receive (same source, tag, and "
                   "communicator) on the destination rank"
                 : "post a matching send on the source rank, or drop the "
                   "receive";
    }
    out->push_back(
        make_diagnostic(code, op.line, op.column, std::move(msg),
                        std::move(fix)));
  }
}

/// Match-consistency diagnostics on every edge (IMP017/IMP018).
void report_match_consistency(const std::vector<RankTrace>& traces,
                              const CommGraph& g,
                              std::vector<Diagnostic>* out) {
  std::set<std::pair<std::string, int>> seen;
  auto once = [&](const char* code, int line) {
    return seen.insert({code, line}).second;
  };
  for (const auto& e : g.edges) {
    const RankOp& s = traces[e.send.first].ops[e.send.second];
    const RankOp& d = traces[e.recv.first].ops[e.recv.second];
    if (s.count.has_value() && d.count.has_value() &&
        *d.count < *s.count && once("IMP017", d.line)) {
      out->push_back(make_diagnostic(
          "IMP017", d.line, d.column,
          "count mismatch on matched message: " + rank_str(e.send.first) +
              " sends " + std::to_string(*s.count) + " elements at line " +
              std::to_string(s.line) + " but " + rank_str(e.recv.first) +
              " receives only " + std::to_string(*d.count) +
              " (message would be truncated)",
          "make the receive count at least the send count"));
    }
    if (s.dtype != d.dtype && is_basic_dtype(s.dtype) &&
        is_basic_dtype(d.dtype) && once("IMP018", d.line)) {
      out->push_back(make_diagnostic(
          "IMP018", d.line, d.column,
          "datatype mismatch on matched message: " +
              rank_str(e.send.first) + " sends " + s.dtype + " at line " +
              std::to_string(s.line) + " but " + rank_str(e.recv.first) +
              " receives " + d.dtype,
          "use the same MPI datatype on both sides of the message"));
    }
  }
  // Device-extent overflow on either endpoint (the subarray shape the
  // parser extracted bounds the transfer).
  for (const auto& t : traces) {
    for (const auto& op : t.ops) {
      if (!is_p2p(op)) continue;
      if (op.count.has_value() && op.extent.has_value() &&
          *op.count > *op.extent && once("IMP017", op.line)) {
        out->push_back(make_diagnostic(
            "IMP017", op.line, op.column,
            op.name + " transfers " + std::to_string(*op.count) +
                " elements of '" + op.buffer + "' but only " +
                std::to_string(*op.extent) +
                " are present on the device (subarray shape)",
            "grow the data clause's subarray or shrink the transfer "
            "count"));
      }
    }
  }
}

/// Scheduling simulation with rendezvous semantics. Blocking ops block
/// until their matched partner has been posted; nonblocking ops post
/// and complete at the covering acc wait / MPI_Wait; the k-th
/// collective of every rank forms one synchronization round. Unmatched
/// ops are treated as completable so IMP014/IMP015 are not re-reported
/// as a deadlock.
void check_deadlock(const std::vector<RankTrace>& traces,
                    const CommGraph& g, bool collectives_consistent,
                    std::vector<Diagnostic>* out) {
  const int nranks = static_cast<int>(traces.size());
  std::vector<std::size_t> pc(traces.size(), 0);
  std::vector<std::size_t> coll_done(traces.size(), 0);

  // Index of the k-th collective per rank.
  std::vector<std::vector<std::size_t>> coll_idx(traces.size());
  for (std::size_t r = 0; r < traces.size(); ++r) {
    for (std::size_t i = 0; i < traces[r].ops.size(); ++i) {
      if (traces[r].ops[i].kind == RankOpKind::kCollective &&
          traces[r].ops[i].blocking) {
        coll_idx[r].push_back(i);
      }
    }
  }

  // Partner posted: its rank's pc has reached (blocking posts on
  // arrival) or passed (nonblocking posts and advances) the op.
  auto posted = [&](const OpRef& ref) {
    return pc[ref.first] >= ref.second;
  };
  auto partner_posted = [&](int r, std::size_t i) {
    auto it = g.edge_of.find({r, i});
    if (it == g.edge_of.end()) return true;  // unmatched: reported already
    const CommEdge& e = g.edges[it->second];
    const OpRef& other = e.send == OpRef{r, i} ? e.recv : e.send;
    return posted(other);
  };

  auto can_advance = [&](int r) {
    const RankOp& op = traces[r].ops[pc[r]];
    switch (op.kind) {
      case RankOpKind::kSend:
      case RankOpKind::kRecv:
        if (!op.blocking) return true;  // posts, completes later
        return partner_posted(r, pc[r]);
      case RankOpKind::kCollective: {
        if (!collectives_consistent || !op.blocking) return true;
        const std::size_t k = coll_done[r];
        for (int r2 = 0; r2 < nranks; ++r2) {
          if (coll_done[r2] > k) continue;
          if (k >= coll_idx[r2].size()) continue;  // shorter trace
          if (pc[r2] < coll_idx[r2][k]) return false;  // not arrived
        }
        return true;
      }
      case RankOpKind::kAccWait: {
        // The unified activity queue completes in order: everything
        // enqueued earlier on a covered queue must be completable.
        for (std::size_t j = 0; j < pc[r]; ++j) {
          const RankOp& prev = traces[r].ops[j];
          if (!prev.has_queue) continue;
          const bool covered =
              op.wait_all ||
              std::find(op.wait_queues.begin(), op.wait_queues.end(),
                        prev.queue) != op.wait_queues.end();
          if (!covered) continue;
          if ((prev.kind == RankOpKind::kSend ||
               prev.kind == RankOpKind::kRecv) &&
              !partner_posted(r, j)) {
            return false;
          }
        }
        return true;
      }
      case RankOpKind::kHostWait: {
        for (std::size_t j = 0; j < pc[r]; ++j) {
          const RankOp& prev = traces[r].ops[j];
          if (prev.request.empty() || prev.request != op.request) continue;
          if ((prev.kind == RankOpKind::kSend ||
               prev.kind == RankOpKind::kRecv) &&
              !partner_posted(r, j)) {
            return false;
          }
        }
        return true;
      }
      case RankOpKind::kQueueOp:
      case RankOpKind::kHostAccess:
      case RankOpKind::kDataMove:
        return true;
    }
    return true;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < nranks; ++r) {
      while (pc[r] < traces[r].ops.size() && can_advance(r)) {
        if (traces[r].ops[pc[r]].kind == RankOpKind::kCollective &&
            traces[r].ops[pc[r]].blocking) {
          ++coll_done[r];
        }
        ++pc[r];
        progress = true;
      }
    }
  }

  std::vector<int> stuck;
  for (int r = 0; r < nranks; ++r) {
    if (pc[r] < traces[r].ops.size()) stuck.push_back(r);
  }
  if (stuck.empty()) return;

  // Who is each stuck rank waiting on?
  auto waits_on = [&](int r) -> int {
    const RankOp& op = traces[r].ops[pc[r]];
    auto partner_of = [&](std::size_t i) -> int {
      auto it = g.edge_of.find({r, i});
      if (it == g.edge_of.end()) return -1;
      const CommEdge& e = g.edges[it->second];
      const OpRef& other = e.send == OpRef{r, i} ? e.recv : e.send;
      return posted(other) ? -1 : other.first;
    };
    switch (op.kind) {
      case RankOpKind::kSend:
      case RankOpKind::kRecv:
        return partner_of(pc[r]);
      case RankOpKind::kCollective: {
        const std::size_t k = coll_done[r];
        for (int r2 = 0; r2 < nranks; ++r2) {
          if (r2 == r || coll_done[r2] > k) continue;
          if (k < coll_idx[r2].size() && pc[r2] < coll_idx[r2][k]) {
            return r2;
          }
        }
        return -1;
      }
      case RankOpKind::kAccWait:
      case RankOpKind::kHostWait:
        for (std::size_t j = 0; j < pc[r]; ++j) {
          const int p = partner_of(j);
          if (p >= 0) return p;
        }
        return -1;
      default:
        return -1;
    }
  };

  // Follow the waits-on chain from the first stuck rank to a cycle.
  std::vector<int> order;
  std::vector<int> state(traces.size(), 0);  // 0 unvisited, 1 on path
  int cur = stuck.front();
  while (cur >= 0 && state[cur] == 0) {
    state[cur] = 1;
    order.push_back(cur);
    cur = waits_on(cur);
  }
  std::vector<int> cycle;
  if (cur >= 0) {
    auto it = std::find(order.begin(), order.end(), cur);
    cycle.assign(it, order.end());
  } else {
    cycle = stuck;  // fallback: report every stuck rank
  }

  int anchor_line = 0;
  int anchor_col = 1;
  std::string desc;
  for (std::size_t k = 0; k < cycle.size(); ++k) {
    const int r = cycle[k];
    const RankOp& op = traces[r].ops[pc[r]];
    if (anchor_line == 0 || op.line < anchor_line) {
      anchor_line = op.line;
      anchor_col = op.column;
    }
    if (!desc.empty()) desc += ", ";
    desc += rank_str(r) + " blocks in " +
            (op.kind == RankOpKind::kAccWait
                 ? std::string("acc wait")
                 : op.name.empty() ? std::string("a wait") : op.name) +
            " at line " + std::to_string(op.line);
  }
  out->push_back(make_diagnostic(
      "IMP013", anchor_line, anchor_col,
      "blocking communication deadlocks: " + desc +
          "; the waits form a cycle no rank can leave",
      "break the cycle with nonblocking operations on an async queue "
      "('#pragma acc mpi ... async(n)' + a later wait) or reorder the "
      "sends/receives (e.g. even/odd phases)"));
}

}  // namespace

void check_comm_graph(const RankSimResult& sim,
                      std::vector<Diagnostic>* out) {
  if (!sim.has_rank_size || !sim.comm_exact) return;
  if (sim.nranks < 2) return;

  const CommGraph g = build_comm_graph(sim.traces);
  const bool collectives_ok = check_collectives(sim.traces, out);
  report_unmatched(sim.traces, g.unmatched_sends, "IMP014", sim.nranks,
                   out);
  report_unmatched(sim.traces, g.unmatched_recvs, "IMP015", sim.nranks,
                   out);
  report_match_consistency(sim.traces, g, out);
  check_deadlock(sim.traces, g, collectives_ok, out);
}

}  // namespace impacc::trans::analysis
